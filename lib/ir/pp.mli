(** Pretty-printing of PIR in the textual syntax accepted by {!Parser}. *)

val float_literal : float -> string
(** Textual form of a float literal that reparses to the same float with
    the same kind: [nan]/[inf]/[-inf] keywords for non-finite values, a
    precision-preserving decimal otherwise (always containing [.] or an
    exponent so it cannot be read back as an int). *)

val pp_value : Types.value Fmt.t
val pp_operand : Types.operand Fmt.t
val binop_name : Types.binop -> string
val unop_name : Types.unop -> string
val pp_instr : Types.instr Fmt.t
val pp_terminator : Types.terminator Fmt.t
val pp_block : Types.block Fmt.t
val pp_func : Types.func Fmt.t
val pp_program : Types.program Fmt.t
val program_to_string : Types.program -> string
