(** Parser for the textual PIR syntax produced by {!Pp}.

    The grammar is line-oriented:

    {v
    ; program <name> (entry @<func>)
    func @<name>(<param>, ...) {
    <label>:
      %d = add %a, 3
      %d = alloc %n
      %d = load %base[%idx]
      store %base[%idx] := %v
      %d = call @f(%x, 1)
      prim !work(5)
      jump <label>
      br %c ? <label> : <label>
      ret %x
    }
    v}

    [parse] accepts everything [Pp.pp_program] emits (a round-trip
    property covered by the test suite), plus blank lines and [;]
    comments anywhere. *)

open Types

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* -- lexing of one line --------------------------------------------------- *)

type token =
  | Ident of string      (* bare word: opcodes, labels *)
  | Register of string   (* %name *)
  | Global of string     (* @name *)
  | Bang of string       (* !name *)
  | Num of string        (* integer or float literal *)
  | Punct of char        (* ( ) [ ] { } , : ? = *)
  | Assign_mem           (* := *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$' || c = '-'

let is_num_start c = (c >= '0' && c <= '9') || c = '-' || c = '+'

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let read_word start =
    let j = ref start in
    while !j < n && is_ident_char s.[!j] do incr j done;
    let w = String.sub s start (!j - start) in
    i := !j;
    w
  in
  (try
     while !i < n do
       let c = s.[!i] in
       if c = ' ' || c = '\t' then incr i
       else if c = ';' then raise Exit (* comment to end of line *)
       else if c = '%' then begin
         incr i;
         toks := Register (read_word !i) :: !toks
       end
       else if c = '@' then begin
         incr i;
         toks := Global (read_word !i) :: !toks
       end
       else if c = '!' then begin
         (* Primitive names may contain ':' (taint:<param>). *)
         incr i;
         let start = !i in
         while !i < n && (is_ident_char s.[!i] || s.[!i] = ':') do incr i done;
         toks := Bang (String.sub s start (!i - start)) :: !toks
       end
       else if c = ':' && !i + 1 < n && s.[!i + 1] = '=' then begin
         i := !i + 2;
         toks := Assign_mem :: !toks
       end
       else if is_num_start c && (c <> '-' || (!i + 1 < n && (s.[!i + 1] >= '0' && s.[!i + 1] <= '9')))
       then begin
         let start = !i in
         incr i;
         while
           !i < n
           && ((s.[!i] >= '0' && s.[!i] <= '9')
               || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
               || ((s.[!i] = '-' || s.[!i] = '+')
                   && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
         do
           incr i
         done;
         toks := Num (String.sub s start (!i - start)) :: !toks
       end
       else if is_ident_char c then toks := Ident (read_word !i) :: !toks
       else if String.contains "()[]{},:?=" c then begin
         incr i;
         toks := Punct c :: !toks
       end
       else fail lineno "unexpected character %c" c
     done
   with Exit -> ());
  List.rev !toks

(* -- parsing --------------------------------------------------------------- *)

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem
  | "fadd" -> Some FAdd | "fsub" -> Some FSub | "fmul" -> Some FMul
  | "fdiv" -> Some FDiv
  | "eq" -> Some Eq | "ne" -> Some Ne | "lt" -> Some Lt | "le" -> Some Le
  | "gt" -> Some Gt | "ge" -> Some Ge
  | "and" -> Some And | "or" -> Some Or
  | "min" -> Some Min | "max" -> Some Max
  | "fmin" -> Some FMin | "fmax" -> Some FMax
  | _ -> None

let unop_of_name = function
  | "neg" -> Some Neg | "fneg" -> Some FNeg | "not" -> Some Not
  | "float" -> Some FloatOfInt | "int" -> Some IntOfFloat
  | _ -> None

let operand_of_token line = function
  | Register r -> Reg r
  | Num s -> (
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail line "bad numeric literal %s" s))
  | Ident "true" -> Bool true
  | Ident "false" -> Bool false
  (* Non-finite float literals as printed by {!Pp.float_literal}; "-inf"
     lexes as one identifier because '-' is an identifier character. *)
  | Ident "nan" -> Float Float.nan
  | Ident "inf" -> Float Float.infinity
  | Ident "-inf" -> Float Float.neg_infinity
  | Punct '(' -> Unit (* "()" handled by caller *)
  | Ident w -> fail line "expected operand, got %s" w
  | _ -> fail line "expected operand"

(* Operand lists: comma-separated, possibly "()" for unit. *)
let rec parse_operands line = function
  | [] -> []
  | Punct '(' :: Punct ')' :: rest -> Unit :: parse_operands_tail line rest
  | tok :: rest -> operand_of_token line tok :: parse_operands_tail line rest

and parse_operands_tail line = function
  | [] -> []
  | Punct ',' :: rest -> parse_operands line rest
  | t :: _ ->
    ignore t;
    fail line "expected , between operands"

let parse_call_args line toks =
  match toks with
  | Punct '(' :: rest ->
    let rec strip_close acc = function
      | [ Punct ')' ] -> List.rev acc
      | t :: rest -> strip_close (t :: acc) rest
      | [] -> fail line "missing )"
    in
    let inner = strip_close [] rest in
    if inner = [] then [] else parse_operands line inner
  | _ -> fail line "expected ("

(* One operand from a token list, returning the rest. *)
let take_operand line = function
  | Punct '(' :: Punct ')' :: rest -> (Unit, rest)
  | tok :: rest -> (operand_of_token line tok, rest)
  | [] -> fail line "expected operand"

let parse_simple_instr line toks =
  (* Instructions without a destination: store, call, prim. *)
  match toks with
  | Ident "store" :: rest -> (
    (* store <base>[<idx>] := <v> *)
    let base, rest = take_operand line rest in
    match rest with
    | Punct '[' :: rest -> (
      let idx, rest = take_operand line rest in
      match rest with
      | Punct ']' :: Assign_mem :: rest ->
        let v, rest = take_operand line rest in
        if rest <> [] then fail line "trailing tokens after store";
        Store (base, idx, v)
      | _ -> fail line "malformed store")
    | _ -> fail line "malformed store")
  | Ident "call" :: Global f :: rest -> Call (None, f, parse_call_args line rest)
  | Ident "prim" :: Bang p :: rest -> Prim (None, p, parse_call_args line rest)
  | _ -> fail line "unknown instruction"

let parse_assigned_instr line dst toks =
  match toks with
  | Ident "alloc" :: rest ->
    let n, rest = take_operand line rest in
    if rest <> [] then fail line "trailing tokens after alloc";
    Alloc (dst, n)
  | Ident "load" :: rest -> (
    let base, rest = take_operand line rest in
    match rest with
    | Punct '[' :: rest -> (
      let idx, rest = take_operand line rest in
      match rest with
      | [ Punct ']' ] -> Load (dst, base, idx)
      | _ -> fail line "malformed load")
    | _ -> fail line "malformed load")
  | Ident "call" :: Global f :: rest ->
    Call (Some dst, f, parse_call_args line rest)
  | Ident "prim" :: Bang p :: rest ->
    Prim (Some dst, p, parse_call_args line rest)
  | Ident op :: rest -> (
    match binop_of_name op with
    | Some bop -> (
      let a, rest = take_operand line rest in
      match rest with
      | Punct ',' :: rest ->
        let b, rest = take_operand line rest in
        if rest <> [] then fail line "trailing tokens after binop";
        Binop (dst, bop, a, b)
      | _ -> fail line "expected , in binop")
    | None -> (
      match unop_of_name op with
      | Some uop ->
        let a, rest = take_operand line rest in
        if rest <> [] then fail line "trailing tokens after unop";
        Unop (dst, uop, a)
      | None when rest = [] ->
        (* A bare word on the right-hand side: a literal operand such as
           true/false. *)
        Assign (dst, operand_of_token line (Ident op))
      | None -> fail line "unknown opcode %s" op))
  | _ ->
    (* %d = <operand> : a plain assignment *)
    let a, rest = take_operand line toks in
    if rest <> [] then fail line "trailing tokens after assignment";
    Assign (dst, a)

let parse_terminator line toks =
  match toks with
  | Ident "jump" :: Ident l :: [] -> Jump l
  | Ident "br" :: rest -> (
    let c, rest = take_operand line rest in
    match rest with
    | Punct '?' :: Ident t :: Punct ':' :: Ident e :: [] -> Branch (c, t, e)
    | _ -> fail line "malformed br")
  | Ident "ret" :: rest ->
    let v, rest = take_operand line rest in
    if rest <> [] then fail line "trailing tokens after ret";
    Return v
  | _ -> fail line "expected terminator"

type pstate = {
  mutable cur_func : (string * string list) option;
  mutable cur_blocks : block list;       (* reversed *)
  mutable cur_label : string option;
  mutable cur_instrs : instr list;       (* reversed *)
  mutable funcs : func list;             (* reversed *)
  mutable pname : string;
  mutable entry : string;
}

let close_block st line =
  match (st.cur_label, st.cur_instrs) with
  | None, [] -> ()
  | None, _ -> fail line "instructions outside a block"
  | Some _, _ -> fail line "block without terminator"

let finish_block st term =
  match st.cur_label with
  | None -> invalid_arg "finish_block"
  | Some label ->
    st.cur_blocks <-
      { label; instrs = List.rev st.cur_instrs; term } :: st.cur_blocks;
    st.cur_label <- None;
    st.cur_instrs <- []

let close_func st line =
  close_block st line;
  match st.cur_func with
  | None -> fail line "} without open function"
  | Some (name, params) ->
    st.funcs <-
      { fname = name; fparams = params; blocks = List.rev st.cur_blocks }
      :: st.funcs;
    st.cur_func <- None;
    st.cur_blocks <- []

(* The "; program <name> (entry @<f>)" header comment. *)
let try_parse_header st line =
  match String.index_opt line ';' with
  | Some _ ->
    let words =
      String.split_on_char ' ' line
      |> List.filter (fun w -> w <> "" && w <> ";")
    in
    (match words with
    | "program" :: name :: rest ->
      st.pname <- name;
      List.iter
        (fun w ->
          if String.length w > 1 && w.[0] = '@' then begin
            let e = String.sub w 1 (String.length w - 1) in
            let e =
              if String.length e > 0 && e.[String.length e - 1] = ')' then
                String.sub e 0 (String.length e - 1)
              else e
            in
            st.entry <- e
          end)
        rest
    | _ -> ())
  | None -> ()

let parse ?(name = "program") text =
  let st =
    {
      cur_func = None;
      cur_blocks = [];
      cur_label = None;
      cur_instrs = [];
      funcs = [];
      pname = name;
      entry = "main";
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun ix raw ->
      let lineno = ix + 1 in
      let trimmed = String.trim raw in
      if trimmed = "" then ()
      else if trimmed.[0] = ';' then try_parse_header st trimmed
      else
        match tokenize lineno trimmed with
        | [] -> ()
        | Ident "func" :: Global fname :: rest ->
          close_block st lineno;
          if st.cur_func <> None then fail lineno "nested func";
          let params =
            match rest with
            | Punct '(' :: inner ->
              let rec go acc = function
                | Punct ')' :: _ -> List.rev acc
                | Ident p :: rest | Register p :: rest -> (
                  match rest with
                  | Punct ',' :: rest -> go (p :: acc) rest
                  | rest -> go (p :: acc) rest)
                | Punct ',' :: rest -> go acc rest
                | _ -> fail lineno "malformed parameter list"
              in
              go [] inner
            | _ -> fail lineno "expected ( after func name"
          in
          st.cur_func <- Some (fname, params)
        | [ Punct '}' ] -> close_func st lineno
        | Ident label :: Punct ':' :: [] ->
          if st.cur_func = None then fail lineno "label outside function";
          if st.cur_label <> None then fail lineno "block %s not terminated" label;
          st.cur_label <- Some label
        | Register dst :: Punct '=' :: rest ->
          if st.cur_label = None then fail lineno "instruction outside block";
          st.cur_instrs <- parse_assigned_instr lineno dst rest :: st.cur_instrs
        | (Ident ("jump" | "br" | "ret") :: _) as toks ->
          if st.cur_label = None then fail lineno "terminator outside block";
          finish_block st (parse_terminator lineno toks)
        | toks ->
          if st.cur_label = None then fail lineno "instruction outside block";
          st.cur_instrs <- parse_simple_instr lineno toks :: st.cur_instrs)
    lines;
  if st.cur_func <> None then
    fail (List.length lines) "unterminated function at end of input";
  { pname = st.pname; funcs = List.rev st.funcs; entry = st.entry }

(** Parse and validate, raising [Ir_error] on malformed programs. *)
let parse_exn ?name text =
  let p = parse ?name text in
  Validate.check_exn p;
  p

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse ~name:(Filename.remove_extension (Filename.basename path)) text
