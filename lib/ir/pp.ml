(** Pretty-printing of PIR programs in a textual assembly-like syntax. *)

open Types

(* Float literals must survive a parse round trip with their kind intact:
   non-finite values print as the [nan]/[inf]/[-inf] keywords the parser
   accepts, [%g] is upgraded to [%.17g] when it loses precision, and a
   trailing dot keeps integral floats (e.g. 1.0) from reparsing as ints. *)
let float_literal f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ "."

let pp_float ppf f = Fmt.string ppf (float_literal f)

let pp_value ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> pp_float ppf f
  | VBool b -> Fmt.bool ppf b
  | VArr h -> Fmt.pf ppf "arr#%d" h
  | VUnit -> Fmt.string ppf "()"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "%%%s" r
  | Int i -> Fmt.int ppf i
  | Float f -> pp_float ppf f
  | Bool b -> Fmt.bool ppf b
  | Unit -> Fmt.string ppf "()"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | And -> "and" | Or -> "or"
  | Min -> "min" | Max -> "max" | FMin -> "fmin" | FMax -> "fmax"

let unop_name = function
  | Neg -> "neg" | FNeg -> "fneg" | Not -> "not"
  | FloatOfInt -> "float" | IntOfFloat -> "int"

let pp_dst ppf = function
  | Some d -> Fmt.pf ppf "%%%s = " d
  | None -> ()

let pp_instr ppf = function
  | Assign (d, a) -> Fmt.pf ppf "%%%s = %a" d pp_operand a
  | Binop (d, op, a, b) ->
    Fmt.pf ppf "%%%s = %s %a, %a" d (binop_name op) pp_operand a pp_operand b
  | Unop (d, op, a) -> Fmt.pf ppf "%%%s = %s %a" d (unop_name op) pp_operand a
  | Alloc (d, n) -> Fmt.pf ppf "%%%s = alloc %a" d pp_operand n
  | Load (d, b, i) -> Fmt.pf ppf "%%%s = load %a[%a]" d pp_operand b pp_operand i
  | Store (b, i, v) ->
    Fmt.pf ppf "store %a[%a] := %a" pp_operand b pp_operand i pp_operand v
  | Call (d, f, args) ->
    Fmt.pf ppf "%acall @%s(%a)" pp_dst d f Fmt.(list ~sep:(any ", ") pp_operand) args
  | Prim (d, p, args) ->
    Fmt.pf ppf "%aprim !%s(%a)" pp_dst d p Fmt.(list ~sep:(any ", ") pp_operand) args

let pp_terminator ppf = function
  | Jump l -> Fmt.pf ppf "jump %s" l
  | Branch (c, t, e) -> Fmt.pf ppf "br %a ? %s : %s" pp_operand c t e
  | Return op -> Fmt.pf ppf "ret %a" pp_operand op

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@ %a%a@]" b.label
    Fmt.(list ~sep:nop (pp_instr ++ cut)) b.instrs
    pp_terminator b.term

let pp_func ppf f =
  Fmt.pf ppf "@[<v 2>func @%s(%a) {@ %a@]@ }" f.fname
    Fmt.(list ~sep:(any ", ") string) f.fparams
    Fmt.(list ~sep:cut pp_block) f.blocks

let pp_program ppf p =
  Fmt.pf ppf "@[<v>; program %s (entry @%s)@ %a@]" p.pname p.entry
    Fmt.(list ~sep:(cut ++ cut) pp_func) p.funcs

let program_to_string p = Fmt.str "%a" pp_program p
