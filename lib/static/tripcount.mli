(** Static trip-count analysis: the ScalarEvolution stand-in of the
    compile-time phase (paper Section 5.1).  Recognises the canonical
    counted-loop shape (constant init, constant step, constant bound);
    anything else is conservatively [Unknown]. *)

type trip = Constant of int | Unknown

type loop_summary = {
  ls_func : string;
  ls_header : string;          (** label of the loop header block *)
  ls_depth : int;              (** 1 = outermost *)
  ls_parent : string option;   (** header of the enclosing loop *)
  ls_trip : trip;
}

val analyze_function : Ir.Types.func -> loop_summary list
(** Trip-count summaries for every natural loop of the function. *)

val analyze_program : Ir.Types.program -> loop_summary list
(** {!analyze_function} over every function of the program. *)

val is_constant : trip -> bool

val closed_form : init:int -> step:int -> bound:int -> Ir.Types.binop -> trip
(** Trip count of [for (i = init; i <cmp> bound; i += step)]; [Unknown]
    for unsupported comparison/step combinations. *)

val pp_trip : trip Fmt.t
