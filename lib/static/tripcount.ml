(** Static trip-count analysis: the stand-in for LLVM's ScalarEvolution
    query used in the paper's compile-time phase (Section 5.1).

    The analysis recognises the canonical counted-loop shape emitted by
    [Ir.Builder.for_]: an induction register initialised to a constant
    before the loop, updated by a constant step inside the loop, compared
    against a constant bound in the header.  Anything else is [Unknown],
    which is the conservative answer — the loop may depend on program
    parameters and stays in the dynamic analysis. *)

open Ir.Types
module SSet = Ir.Cfg.SSet

type trip = Constant of int | Unknown

type loop_summary = {
  ls_func : string;
  ls_header : string;
  ls_depth : int;
  ls_parent : string option;
  ls_trip : trip;
}

(* All static definitions of each register: (block label, rhs sketch). *)
type def = { in_block : string; rhs : instr }

let collect_defs f =
  let defs : (string, def list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match instr_def i with
          | Some d ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt defs d) in
            Hashtbl.replace defs d ({ in_block = b.label; rhs = i } :: cur)
          | None -> ())
        b.instrs)
    f.blocks;
  defs

(* Resolve an operand to a compile-time integer constant by following
   single-assignment copy/arithmetic chains.  [visited] breaks cycles. *)
let rec const_of_operand defs visited = function
  | Int k -> Some k
  | Reg r -> const_of_reg defs visited r
  | Float _ | Bool _ | Unit -> None

and const_of_reg defs visited r =
  if SSet.mem r visited then None
  else
    match Hashtbl.find_opt defs r with
    | Some [ { rhs; _ } ] -> (
      let visited = SSet.add r visited in
      match rhs with
      | Assign (_, op) -> const_of_operand defs visited op
      | Binop (_, op, a, b) -> (
        match
          (const_of_operand defs visited a, const_of_operand defs visited b)
        with
        | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div when y <> 0 -> Some (x / y)
          | Min -> Some (min x y)
          | Max -> Some (max x y)
          | _ -> None)
        | _ -> None)
      | Unop (_, Neg, a) ->
        Option.map (fun x -> -x) (const_of_operand defs visited a)
      | _ -> None)
    | Some _ | None -> None

(* Is [op] (possibly through copies) an increment of register [iv] by a
   constant?  Returns the step. *)
let rec step_of defs visited iv = function
  | Reg r when r = iv -> None (* i := i is not an increment *)
  | Reg r -> (
    if SSet.mem r visited then None
    else
      match Hashtbl.find_opt defs r with
      | Some [ { rhs; _ } ] -> (
        let visited = SSet.add r visited in
        match rhs with
        | Assign (_, op) -> step_of defs visited iv op
        | Binop (_, Add, Reg a, b) when a = iv ->
          const_of_operand defs visited b
        | Binop (_, Add, b, Reg a) when a = iv ->
          const_of_operand defs visited b
        | Binop (_, Sub, Reg a, b) when a = iv ->
          Option.map (fun k -> -k) (const_of_operand defs visited b)
        | _ -> None)
      | Some _ | None -> None)
  | Int _ | Float _ | Bool _ | Unit -> None

(* Trip count of [iv] from [init], stepping by [step], while compared
   [cmp]-against [bound] keeps the loop running. *)
let closed_form ~init ~step ~bound cmp =
  if step = 0 then Unknown
  else
    let count upper_exclusive =
      if step > 0 then
        if init >= upper_exclusive then Constant 0
        else Constant ((upper_exclusive - init + step - 1) / step)
      else Unknown
    in
    let count_down lower_exclusive =
      if step < 0 then
        if init <= lower_exclusive then Constant 0
        else Constant ((init - lower_exclusive + -step - 1) / -step)
      else Unknown
    in
    match cmp with
    | Lt -> count bound
    | Le -> count (bound + 1)
    | Gt -> count_down bound
    | Ge -> count_down (bound - 1)
    | _ -> Unknown

(* Find the comparison feeding the exit branch of [loop]'s header and try
   to reduce it to a closed-form trip count. *)
let analyze_loop f defs (cfg : Ir.Cfg.t) (loop : Ir.Loops.loop) =
  ignore cfg;
  let header = find_block f loop.Ir.Loops.header in
  let body = loop.Ir.Loops.body in
  match header.term with
  | Branch (Reg c, _, _) -> (
    match Hashtbl.find_opt defs c with
    | Some [ { rhs = Binop (_, ((Lt | Le | Gt | Ge) as cmp), Reg iv, bound); _ } ]
      -> (
      (* Induction register: one constant def outside the body, one
         constant-step def inside. *)
      match Hashtbl.find_opt defs iv with
      | Some [ d1; d2 ] -> (
        let outside, inside =
          if SSet.mem d1.in_block body then (d2, d1) else (d1, d2)
        in
        if SSet.mem outside.in_block body || not (SSet.mem inside.in_block body)
        then Unknown
        else
          let init =
            match outside.rhs with
            | Assign (_, op) -> const_of_operand defs SSet.empty op
            | _ -> None
          in
          let step =
            match inside.rhs with
            | Assign (_, op) -> step_of defs (SSet.singleton iv) iv op
            | Binop (_, Add, Reg a, b) when a = iv ->
              const_of_operand defs SSet.empty b
            | _ -> None
          in
          let bound = const_of_operand defs SSet.empty bound in
          match (init, step, bound) with
          | Some init, Some step, Some bound -> closed_form ~init ~step ~bound cmp
          | _ -> Unknown)
      | Some _ | None -> Unknown)
    | Some _ | None -> Unknown)
  | Branch _ | Jump _ | Return _ -> Unknown

(** Trip-count summaries for every natural loop of [f]. *)
let analyze_function f =
  let cfg = Ir.Cfg.build f in
  let forest = Ir.Loops.detect cfg in
  let defs = collect_defs f in
  List.map
    (fun (l : Ir.Loops.loop) ->
      {
        ls_func = f.fname;
        ls_header = l.Ir.Loops.header;
        ls_depth = l.Ir.Loops.depth;
        ls_parent = l.Ir.Loops.parent;
        ls_trip = analyze_loop f defs cfg l;
      })
    forest.Ir.Loops.loops

(** Trip-count summaries for every loop of every function — the static
    side of the fuzzer's static-vs-dynamic iteration-count oracle. *)
let analyze_program (p : program) = List.concat_map analyze_function p.funcs

let is_constant = function Constant _ -> true | Unknown -> false

let pp_trip ppf = function
  | Constant n -> Fmt.pf ppf "const(%d)" n
  | Unknown -> Fmt.string ppf "unknown"
