(** Structural shrinking of generated programs. *)

val size : Gen.prog -> int
(** Structural size; every candidate produced by {!candidates} is
    strictly smaller, which makes {!minimize} terminate. *)

val candidates : Gen.prog -> Gen.prog list
(** Strictly smaller variants of a program, most aggressive first:
    drop unused helpers, collapse to one parameter, then pointwise
    statement/bound/condition reductions. *)

val minimize : (Gen.prog -> bool) -> Gen.prog -> Gen.prog
(** [minimize still_failing p] greedily applies the first candidate that
    still satisfies the predicate, to a fixpoint.  Terminates because
    {!size} strictly decreases on every step. *)

val arbitrary : Gen.prog QCheck.arbitrary
(** QCheck arbitrary combining {!Gen.gen}, {!candidates} and a [.pir]
    printer — the drop-in replacement for ad-hoc suite generators. *)
