(** Fuzzing campaigns: generate, check against every oracle, shrink the
    first failure per oracle, persist minimized counterexamples as
    replayable [.pir] files. *)

type counterexample = {
  cx_oracle : string;
  cx_message : string;
  cx_index : int;
  cx_program : Ir.Types.program;
  cx_text : string;
  cx_lines : int;
}

type oracle_result = {
  or_name : string;
  or_runs : int;
  or_cx : counterexample option;
}

type report = { rp_seed : int; rp_budget : int; rp_results : oracle_result list }

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s
  + if s <> "" && s.[String.length s - 1] <> '\n' then 1 else 0

let make_cx oracle ~index p0 =
  (* Shrink against this oracle only; the minimized program must still
     fail it (minimize only moves between failing programs). *)
  let failing q =
    match Oracle.check oracle (Gen.to_program q) with
    | Oracle.Fail _ -> true
    | Oracle.Pass -> false
  in
  let small = Shrink.minimize failing p0 in
  let prog = Gen.to_program small in
  let message =
    match Oracle.check oracle prog with
    | Oracle.Fail m -> m
    | Oracle.Pass -> "unshrunk failure (minimized form passes?)"
  in
  let text = Ir.Pp.program_to_string prog in
  {
    cx_oracle = oracle.Oracle.name;
    cx_message = message;
    cx_index = index;
    cx_program = prog;
    cx_text = text;
    cx_lines = count_lines text;
  }

(* [max_steps] rebuilds the default oracle set under an explicit budget;
   an explicit [oracles] list wins when both are given. *)
let oracle_set oracles max_steps =
  match (oracles, max_steps) with
  | Some os, _ -> os
  | None, Some n -> Oracle.all_with ~max_steps:n
  | None, None -> Oracle.all

let oneline s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* The fuzz.* event vocabulary; doc/OBSERVABILITY.md lists exactly these
   (a drift test compares). *)
let event_names =
  [
    ("fuzz.oracle", "one oracle's campaign summary: runs checked, verdict");
    ("fuzz.counterexample", "a minimized counterexample for one oracle");
  ]

let run_campaign ?pool ?oracles ?max_steps
    ?(events = Obs_events.disabled) ~seed ~budget () =
  let oracles = oracle_set oracles max_steps in
  let st = Random.State.make [| seed |] in
  let slots =
    List.map (fun o -> (o, ref 0, ref None)) oracles
  in
  (match pool with
  | Some pl when Par.Pool.jobs pl > 1 ->
    (* Parallel checking. Generation stays a serial pass over the single
       PRNG stream — the corpus is byte-identical to the serial
       campaign's — and only the oracle checks (pure functions of the
       program) fan out, one wave at a time. Slot updates then replay in
       case order on the submitting domain: runs counting, first-failure
       selection and shrinking are exactly the serial fold, so the
       report is bit-identical. *)
    let cases = ref [] in
    for index = 0 to budget - 1 do
      cases := (index, Gen.generate st) :: !cases
    done;
    let cases = List.rev !cases in
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let wave_size = Par.Pool.jobs pl * 4 in
    let rec process = function
      | [] -> ()
      | pending -> (
        (* Oracles already failed check nothing — same work the serial
           loop skips; an oracle failing mid-wave wastes at most the
           rest of its wave. When every oracle has failed, remaining
           cases can be skipped outright (the serial loop only burns
           PRNG there, and generation already happened above). *)
        match List.filter (fun (_, _, cx) -> !cx = None) slots with
        | [] -> ()
        | live ->
          let wave, rest = take wave_size [] pending in
          let checked =
            Par.Pool.map pl ~chunk:1
              (fun (index, p) ->
                let prog = Gen.to_program p in
                ( index,
                  p,
                  List.map (fun (o, _, _) -> Oracle.check o prog) live ))
              wave
          in
          List.iter
            (fun (index, p, verdicts) ->
              List.iter2
                (fun (o, runs, cx) verdict ->
                  if !cx = None then begin
                    incr runs;
                    match verdict with
                    | Oracle.Pass -> ()
                    | Oracle.Fail _ -> cx := Some (make_cx o ~index p)
                  end)
                live verdicts)
            checked;
          process rest)
    in
    process cases
  | _ ->
    for index = 0 to budget - 1 do
      (* Generation consumes the PRNG identically whichever oracles are
         still live, so a campaign is reproducible from its seed alone. *)
      let p = Gen.generate st in
      let prog = Gen.to_program p in
      List.iter
        (fun (o, runs, cx) ->
          if !cx = None then begin
            incr runs;
            match Oracle.check o prog with
            | Oracle.Pass -> ()
            | Oracle.Fail _ -> cx := Some (make_cx o ~index p)
          end)
        slots
    done);
  let report =
    {
      rp_seed = seed;
      rp_budget = budget;
      rp_results =
        List.map
          (fun (o, runs, cx) ->
            { or_name = o.Oracle.name; or_runs = !runs; or_cx = !cx })
          slots;
    }
  in
  (* Events are derived from the finished report on the calling domain,
     in oracle order — deterministic, and identical at any [--jobs]. *)
  if Obs_events.enabled events then
    List.iter
      (fun r ->
        Obs_events.emit events ~component:"fuzz"
          ~fields:
            [
              ("oracle", Obs_events.Str r.or_name);
              ("runs", Obs_events.Int r.or_runs);
              ("failed", Obs_events.Bool (r.or_cx <> None));
            ]
          "fuzz.oracle";
        match r.or_cx with
        | None -> ()
        | Some cx ->
          Obs_events.emit events ~severity:Obs_events.Error ~component:"fuzz"
            ~fields:
              [
                ("oracle", Obs_events.Str cx.cx_oracle);
                ("index", Obs_events.Int cx.cx_index);
                ("lines", Obs_events.Int cx.cx_lines);
                ("message", Obs_events.Str (oneline cx.cx_message));
              ]
            "fuzz.counterexample")
      report.rp_results;
  report

let counterexamples r = List.filter_map (fun o -> o.or_cx) r.rp_results

let save ~dir ~seed cx =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file =
    Printf.sprintf "cx-%s-seed%d-%d.pir" cx.cx_oracle seed cx.cx_index
  in
  let path = Filename.concat dir file in
  let oc = open_out path in
  Printf.fprintf oc "; counterexample: oracle %s (seed %d, program %d)\n"
    cx.cx_oracle seed cx.cx_index;
  Printf.fprintf oc "; %s\n" (oneline cx.cx_message);
  Printf.fprintf oc "; replay: perf_taint fuzz %s\n" path;
  output_string oc cx.cx_text;
  close_out oc;
  path

let replay_file ?oracles ?max_steps path =
  let oracles = oracle_set oracles max_steps in
  let prog = Ir.Parser.parse_file path in
  List.map (fun o -> (o.Oracle.name, Oracle.check o prog)) oracles
