let default = 42

let env_var = "FUZZ_SEED"

let get () =
  match Sys.getenv_opt env_var with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> default)

let state () = Random.State.make [| get () |]
