(** Differential and metamorphic oracles over PIR programs.

    Each oracle takes a whole [Ir.Types.program] (not the generator AST),
    so the same checks run on freshly generated programs and on replayed
    [.pir] corpus files.  All oracles are exception-safe through {!check}:
    an unexpected exception is itself a finding, not a campaign abort. *)

module M = Interp.Machine
module P = Interp.Plain
module C = Interp.Coverage
module O = Interp.Observations
module L = Taint.Label
module T = Static_an.Tripcount
open Ir.Types

type verdict = Pass | Fail of string

type t = { name : string; check : Ir.Types.program -> verdict }

(* A deliberately small budget: generated loop nests can be exponential in
   depth, and a campaign must never hang.  Budget exhaustion is a skip
   (Pass), not a finding — Budget_exceeded is distinct from Runtime_error
   exactly so we can tell the two apart. *)
let interp_config = { M.default_config with max_steps = 500_000 }

let base_value = VInt 3
let perturbed_value = VInt 7

type exec_result = Finished of M.t * value | Budget | Crash of string

let exec ?(config = interp_config) ?metrics ?trace prog args =
  let m =
    match (metrics, trace) with
    | None, None -> M.create ~config prog
    | Some im, None -> M.create ~config ~metrics:im prog
    | None, Some tr -> M.create ~config ~trace:tr prog
    | Some im, Some tr -> M.create ~config ~metrics:im ~trace:tr prog
  in
  match M.run m args with
  | v, _ -> Finished (m, v)
  | exception M.Budget_exceeded _ -> Budget
  | exception M.Runtime_error msg -> Crash msg

let entry_func p = List.find_opt (fun f -> f.fname = p.entry) p.funcs

let entry_params p =
  match entry_func p with Some f -> f.fparams | None -> []

let base_args p = List.map (fun _ -> base_value) (entry_params p)

(* -- taint soundness ------------------------------------------------------ *)

let marked_params p =
  match entry_func p with
  | None -> []
  | Some f ->
    List.concat_map
      (fun blk ->
        List.filter_map
          (function
            | Prim (_, name, [ Reg r ]) when List.mem r f.fparams -> (
              match L.source_prim name with
              | Some pname -> Some (r, pname)
              | None -> None)
            | _ -> None)
          blk.instrs)
      f.blocks

(* Does the loop observation (or, transitively, a dynamically enclosing
   loop) carry the base label of [pname]? *)
let loop_carries m pname key0 =
  let obs = M.observations m and tbl = M.label_table m in
  let rec go seen key =
    match Hashtbl.find_opt obs.O.loops key with
    | None -> false
    | Some lo ->
      L.has tbl lo.O.lo_dep pname
      || List.exists
           (fun k -> (not (List.mem k seen)) && go (key :: seen) k)
           lo.O.lo_enclosing
  in
  go [] key0

let loop_keys m =
  Hashtbl.fold (fun k _ acc -> k :: acc) (M.observations m).O.loops []

let loop_counts m key =
  match Hashtbl.find_opt (M.observations m).O.loops key with
  | None -> (0, 0)
  | Some lo -> (lo.O.lo_iters, lo.O.lo_entries)

let loop_func m key =
  match Hashtbl.find_opt (M.observations m).O.loops key with
  | None -> None
  | Some lo -> Some lo.O.lo_func

(* The soundness rule mirrors what the analysis actually guarantees.
   Control taint is scoped to a function (it does not flow into callees),
   so for loops outside the entry function a count difference is only
   required to be labelled when both runs performed the same number of
   entries — then the difference comes from a data-flow-propagated
   argument.  For entry-function loops every count difference (iterations
   or entries) must be reflected in the loop's labels or those of a
   dynamically enclosing loop. *)
let soundness_violation m1 m2 ~entry ~pname =
  let keys = List.sort_uniq compare (loop_keys m1 @ loop_keys m2) in
  List.find_map
    (fun key ->
      let i1, e1 = loop_counts m1 key and i2, e2 = loop_counts m2 key in
      if (i1, e1) = (i2, e2) then None
      else
        let func =
          match loop_func m1 key with
          | Some f -> Some f
          | None -> loop_func m2 key
        in
        let checkable =
          match func with
          | Some f when f = entry -> true
          | Some _ -> e1 = e2 (* helper loop: only when call counts agree *)
          | None -> false
        in
        if not checkable then None
        else if loop_carries m1 pname key || loop_carries m2 pname key then
          None
        else
          let cp, header = key in
          Some
            (Printf.sprintf
               "loop %s at %s: iters %d vs %d (entries %d vs %d) when \
                perturbing %s, but its labels never mention %s"
               header cp i1 i2 e1 e2 pname pname))
    keys

let taint_soundness_with config =
  let check p =
    let marked = marked_params p in
    if marked = [] then Pass
    else
      let formals = entry_params p in
      match exec ~config p (base_args p) with
      | Budget | Crash _ -> Pass
      | Finished (m1, _) ->
        let rec try_params = function
          | [] -> Pass
          | (formal, pname) :: rest -> (
            let args =
              List.map
                (fun f -> if f = formal then perturbed_value else base_value)
                formals
            in
            match exec ~config p args with
            | Budget | Crash _ -> try_params rest
            | Finished (m2, _) -> (
              match soundness_violation m1 m2 ~entry:p.entry ~pname with
              | Some msg -> Fail msg
              | None -> try_params rest))
        in
        try_params marked
  in
  { name = "taint-soundness"; check }

let taint_soundness = taint_soundness_with interp_config

(* -- printer/parser round trip ------------------------------------------- *)

let printer_roundtrip =
  let check p =
    let text = Ir.Pp.program_to_string p in
    match Ir.Parser.parse text with
    | exception Ir.Parser.Parse_error { line; message } ->
      Fail (Printf.sprintf "printed program fails to reparse (line %d: %s)" line message)
    | p' ->
      if compare p p' = 0 then Pass
      else
        Fail
          (Printf.sprintf
             "print/parse round trip changed the program (reprint differs: %b)"
             (String.equal text (Ir.Pp.program_to_string p')))
  in
  { name = "printer-roundtrip"; check }

(* -- validator / interpreter agreement ------------------------------------ *)

let validator_interp_with config =
  let check p =
    match Ir.Validate.errors (Ir.Validate.check_program p) with
    | _ :: _ as errs ->
      let e = List.hd errs in
      Fail
        (Printf.sprintf "validator rejects a generated program: %s: %s"
           e.Ir.Validate.where e.Ir.Validate.message)
    | [] -> (
      match exec ~config p (base_args p) with
      | Finished _ | Budget -> Pass
      | Crash msg ->
        Fail (Printf.sprintf "validated program crashed the interpreter: %s" msg))
  in
  { name = "validator-interp"; check }

let validator_interp = validator_interp_with interp_config

(* -- static trip counts vs dynamic iteration counts ----------------------- *)

let tripcount_with config =
  let check p =
    let static = T.analyze_program p in
    match exec ~config p (base_args p) with
    | Budget | Crash _ -> Pass
    | Finished (m, _) ->
      let obs = M.observations m in
      let bad =
        Hashtbl.fold
          (fun _ (lo : O.loop_obs) acc ->
            match acc with
            | Some _ -> acc
            | None -> (
              let summary =
                List.find_opt
                  (fun (s : T.loop_summary) ->
                    s.T.ls_func = lo.O.lo_func
                    && s.T.ls_header = lo.O.lo_header)
                  static
              in
              match summary with
              | Some { T.ls_trip = T.Constant n; _ }
                when lo.O.lo_iters <> n * lo.O.lo_entries ->
                Some
                  (Printf.sprintf
                     "static trip count of %s.%s is %d but dynamics saw %d \
                      iters over %d entries"
                     lo.O.lo_func lo.O.lo_header n lo.O.lo_iters
                     lo.O.lo_entries)
              | _ -> None))
          obs.O.loops None
      in
      (match bad with Some msg -> Fail msg | None -> Pass)
  in
  { name = "tripcount"; check }

let tripcount = tripcount_with interp_config

(* -- metamorphic: observability must not change observations --------------- *)

type snapshot = {
  sn_value : value;
  sn_loops : (string * string * int * int * string list) list;
  sn_funcs : (string * int * int * int) list;
  sn_events : int;
  sn_steps : int;
}

let snapshot m v =
  let obs = M.observations m and tbl = M.label_table m in
  {
    sn_value = v;
    sn_loops =
      O.loop_list obs
      |> List.map (fun (lo : O.loop_obs) ->
             ( O.callpath_key lo.O.lo_callpath,
               lo.O.lo_header,
               lo.O.lo_iters,
               lo.O.lo_entries,
               L.names tbl lo.O.lo_dep ))
      |> List.sort compare;
    sn_funcs =
      O.func_list obs
      |> List.map (fun (fo : O.func_obs) ->
             (fo.O.fo_func, fo.O.fo_calls, fo.O.fo_instrs, fo.O.fo_work))
      |> List.sort compare;
    sn_events = List.length (O.event_list obs);
    sn_steps = M.steps_executed m;
  }

let obs_invariance_with config =
  let check p =
    let args = base_args p in
    let plain = exec ~config p args in
    let instrumented =
      exec ~config
        ~metrics:(Obs_metrics.create ())
        ~trace:(Obs_trace.create ())
        p args
    in
    match (plain, instrumented) with
    | Budget, Budget -> Pass
    | Crash a, Crash b when String.equal a b -> Pass
    | Finished (m1, v1), Finished (m2, v2) ->
      if compare (snapshot m1 v1) (snapshot m2 v2) = 0 then Pass
      else Fail "enabling metrics+trace instrumentation changed observations"
    | _ ->
      Fail "enabling metrics+trace instrumentation changed the run outcome"
  in
  { name = "obs-invariance"; check }

let obs_invariance = obs_invariance_with interp_config

(* -- differential: Taint vs Plain policies --------------------------------- *)

(* Label-free view of one run: result value, loop and branch dynamics per
   callpath, per-function statistics, event and step counts — everything
   the two policies must agree on ("identical modulo labels"). *)
type clean_snapshot = {
  cl_value : value;
  cl_loops : (string * string * int * int) list;
  cl_branches : (string * string * int * int) list;
  cl_funcs : (string * int * int * int) list;
  cl_events : int;
  cl_steps : int;
}

let clean_of (obs : O.t) steps v =
  {
    cl_value = v;
    cl_loops =
      O.loop_list obs
      |> List.map (fun (lo : O.loop_obs) ->
             ( O.callpath_key lo.O.lo_callpath,
               lo.O.lo_header,
               lo.O.lo_iters,
               lo.O.lo_entries ))
      |> List.sort compare;
    cl_branches =
      O.branch_list obs
      |> List.map (fun (bo : O.branch_obs) ->
             ( O.callpath_key bo.O.br_callpath,
               bo.O.br_block,
               bo.O.br_taken,
               bo.O.br_not_taken ))
      |> List.sort compare;
    cl_funcs =
      O.func_list obs
      |> List.map (fun (fo : O.func_obs) ->
             (fo.O.fo_func, fo.O.fo_calls, fo.O.fo_instrs, fo.O.fo_work))
      |> List.sort compare;
    cl_events = List.length (O.event_list obs);
    cl_steps = steps;
  }

let exec_taint_clean ~config p args =
  let m = M.create ~config p in
  match M.run m args with
  | v, _ -> `Finished (clean_of (M.observations m) (M.steps_executed m) v)
  | exception M.Budget_exceeded _ -> `Budget
  | exception M.Runtime_error msg -> `Crash msg

let exec_plain_clean ~config p args =
  let m = P.create ~config p in
  match P.run m args with
  | v, _ -> `Finished (clean_of (P.observations m) (P.steps_executed m) v)
  | exception M.Budget_exceeded _ -> `Budget
  | exception M.Runtime_error msg -> `Crash msg

let diff_component a b =
  if a.cl_value <> b.cl_value then Some "result value"
  else if a.cl_loops <> b.cl_loops then Some "loop observations"
  else if a.cl_branches <> b.cl_branches then Some "branch observations"
  else if a.cl_funcs <> b.cl_funcs then Some "function statistics"
  else if a.cl_events <> b.cl_events then Some "event count"
  else if a.cl_steps <> b.cl_steps then Some "step count"
  else None

let taint_vs_plain_with config =
  let check p =
    let args = base_args p in
    match (exec_taint_clean ~config p args, exec_plain_clean ~config p args) with
    | `Budget, `Budget -> Pass
    | `Crash a, `Crash b when String.equal a b -> Pass
    | `Finished a, `Finished b -> (
      match diff_component a b with
      | None -> Pass
      | Some what ->
        Fail
          (Printf.sprintf
             "Taint and Plain policies disagree on %s (steps %d vs %d)" what
             a.cl_steps b.cl_steps))
    | _ -> Fail "Taint and Plain policy runs diverged in outcome"
  in
  { name = "taint-vs-plain"; check }

let taint_vs_plain = taint_vs_plain_with interp_config

(* -- coverage accounting vs observations ----------------------------------- *)

(* Block hit counts must be consistent with the engine's own dynamics:
   summed over callpaths, a branch block is arrived at exactly
   taken + not-taken times, and a loop header exactly
   iterations + entries times. *)
let coverage_consistency_with config =
  let check p =
    let m = C.create ~config p in
    match C.run m (base_args p) with
    | exception M.Budget_exceeded _ -> Pass
    | exception M.Runtime_error _ -> Pass
    | _ ->
      let cov = C.policy_state m in
      let obs = C.observations m in
      let sum tbl key n =
        Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      let expect = Hashtbl.create 32 in
      Hashtbl.iter
        (fun _ (lo : O.loop_obs) ->
          sum expect
            ("loop", lo.O.lo_func, lo.O.lo_header)
            (lo.O.lo_iters + lo.O.lo_entries))
        obs.O.loops;
      Hashtbl.iter
        (fun _ (bo : O.branch_obs) ->
          sum expect
            ("branch", bo.O.br_func, bo.O.br_block)
            (bo.O.br_taken + bo.O.br_not_taken))
        obs.O.branches;
      let bad =
        Hashtbl.fold
          (fun (kind, func, block) n acc ->
            match acc with
            | Some _ -> acc
            | None ->
              let hits = Interp.Coverage_policy.hits_of cov ~func ~block in
              if hits = n then None
              else
                Some
                  (Printf.sprintf
                     "%s block %s.%s: coverage counted %d arrivals but \
                      observations imply %d"
                     kind func block hits n))
          expect None
      in
      (match bad with Some msg -> Fail msg | None -> Pass)
  in
  { name = "coverage-consistency"; check }

let coverage_consistency = coverage_consistency_with interp_config

(* -- campaign resilience --------------------------------------------------- *)

module Sp = Measure.Spec
module Exp = Measure.Experiment
module Camp = Measure.Campaign
module Flt = Measure.Fault

(* A tiny analytic app plus a design derived deterministically from the
   program's hash: the fuzz corpus steers the campaign layer through
   ever-different grids, noise seeds, and fault draws without requiring
   the generated programs to be measurable themselves. *)
let campaign_fixture p =
  let h = abs (Hashtbl.hash p) in
  let scale = 0.05 +. (0.02 *. float_of_int (h mod 7)) in
  let pvals =
    if h land 1 = 0 then [ 4.; 8.; 16.; 32. ] else [ 8.; 16.; 32.; 64. ]
  in
  let app =
    {
      Sp.aname = Printf.sprintf "fuzz-campaign-%d" (h mod 1000);
      kernels =
        [
          Sp.kernel
            ~calls:(fun _ -> 16.)
            ~base_time:(fun ps _ -> scale *. Sp.param ps "p")
            ~truth_deps:[ "p" ] "linear_p";
          Sp.kernel
            ~calls:(fun _ -> 8.)
            ~base_time:(fun _ _ -> 0.2 *. scale)
            ~truth_deps:[] "constant";
        ];
      model_params = [ "p" ];
    }
  in
  let design =
    {
      Exp.default_design with
      Exp.grid = [ ("p", pvals) ];
      reps = 3;
      sigma = 0.005;
      seed = 1 + (h mod 997);
    }
  in
  (app, Mpi_sim.Machine.skylake_cluster, design, h)

let term_shape (m : Model.Expr.model) =
  List.sort compare (List.map (fun t -> t.Model.Expr.factors) m.Model.Expr.terms)

(* A restricted search space keeps the per-program fitting cost trivial
   while still distinguishing constant, linear, and quadratic shapes. *)
let campaign_search_config =
  {
    Model.Search.default_config with
    Model.Search.exponents = [ 0.; 1.; 2. ];
    log_exponents = [ 0 ];
    max_terms = 1;
  }

let campaign_identity =
  let check p =
    let app, machine, design, _ = campaign_fixture p in
    let clean = Exp.run_design app machine design in
    let report = Camp.run app machine design in
    if compare report.Camp.cp_runs clean = 0 then Pass
    else
      Fail
        "fault-free campaign is not bit-identical to Experiment.run_design"
  in
  { name = "campaign-identity"; check }

(* Transient crashes/hangs only, with more attempts than any transient
   fault survives: every coordinate recovers, so the campaign's runs are
   the clean runs and the robust (median + MAD) fit must land on the
   same best model term as the classic fit of the clean campaign. *)
let campaign_recovery =
  let check p =
    let app, machine, design, h = campaign_fixture p in
    let plan =
      {
        Flt.none with
        Flt.fp_seed = h mod 9001;
        fp_crash = 0.06;
        fp_hang = 0.04;
        fp_persistent = 0.;
        fp_transient_attempts = 2;
      }
    in
    let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
    let clean = Exp.run_design app machine design in
    let report = Camp.run ~plan ~retry app machine design in
    if compare report.Camp.cp_runs clean <> 0 then
      Fail "transient-fault campaign with retries lost or altered runs"
    else begin
      let data_clean = Exp.total_dataset clean ~params:[ "p" ] in
      let data_camp = Exp.total_dataset report.Camp.cp_runs ~params:[ "p" ] in
      let best_clean =
        Model.Search.multi ~config:campaign_search_config data_clean
      in
      let best_camp, _rejected =
        Model.Search.multi_robust ~config:campaign_search_config data_camp
      in
      if
        term_shape best_clean.Model.Search.model
        = term_shape best_camp.Model.Search.model
      then Pass
      else
        Fail
          "robust fit after transient faults selected a different best model \
           term than the clean run"
    end
  in
  { name = "campaign-recovery"; check }

(* Parallel-vs-serial bit-identity: the same faulty campaign executed
   serially and on a 3-worker domain pool must produce identical records
   (hence identical journals — the journal is a pure function of the
   records), and the model search over the resulting dataset must choose
   the identical model with identical error from serial and pooled
   scoring.  This is the determinism contract of [Par.Pool]'s ordered
   collection, exercised across the fuzz corpus's designs and fault
   draws. *)
let par_identity =
  let check p =
    let app, machine, design, h = campaign_fixture p in
    let plan =
      {
        Flt.none with
        Flt.fp_seed = h mod 7919;
        fp_crash = 0.05;
        fp_hang = 0.03;
        fp_persistent = 0.;
        fp_transient_attempts = 2;
      }
    in
    let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
    Par.Pool.with_pool ~jobs:3 (fun pool ->
        let serial = Camp.run ~plan ~retry app machine design in
        let parallel = Camp.run ~pool ~plan ~retry app machine design in
        if compare serial.Camp.cp_records parallel.Camp.cp_records <> 0 then
          Fail "parallel campaign records are not bit-identical to serial"
        else begin
          let data = Exp.total_dataset serial.Camp.cp_runs ~params:[ "p" ] in
          let s = Model.Search.multi ~config:campaign_search_config data in
          let q =
            Model.Search.multi
              ~config:
                { campaign_search_config with Model.Search.pool = Some pool }
              data
          in
          if
            compare
              ( s.Model.Search.model, s.Model.Search.error,
                s.Model.Search.hypotheses_tried )
              ( q.Model.Search.model, q.Model.Search.error,
                q.Model.Search.hypotheses_tried )
            <> 0
          then Fail "pooled model search differs from the serial search"
          else Pass
        end)
  in
  { name = "par-identity"; check }

(* Sharded-vs-single bit-identity: the same faulty campaign split over
   M journal-writing shards (in-process workers, each narrowed to its
   [Shard.owns] subset) and merged back must reproduce the single
   serial campaign exactly — records, merged journal bytes, every
   [campaign.*] counter, and the event stream (which the merge replays
   in design order, followed by one [shard.merge] summary).  A second
   variant kills one worker mid-shard — stops it early and tears its
   journal's trailing line, the on-disk state a SIGKILL mid-write
   leaves — and the restart/resume/merge path must converge on the
   same bytes. *)
let shard_identity =
  let module Shd = Measure.Shard in
  (* Tear the journal's trailing line: keep a strict nonempty prefix of
     the final line, exactly what a writer killed mid-[output_string]
     leaves behind. *)
  let tear_trailing_line path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let body = String.sub content 0 (String.length content - 1) in
    let last_nl = String.rindex body '\n' in
    let len = String.length body - last_nl - 1 in
    let keep = last_nl + 1 + max 1 (len / 2) in
    let oc = open_out_bin path in
    output_string oc (String.sub content 0 keep);
    close_out oc
  in
  let check p =
    let app, machine, design, h = campaign_fixture p in
    let plan =
      {
        Flt.none with
        Flt.fp_seed = h mod 6007;
        fp_crash = 0.05;
        fp_hang = 0.03;
        fp_persistent = 0.;
        fp_transient_attempts = 2;
      }
    in
    let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
    let header = Camp.header_line ~app_name:app.Sp.aname ~plan ~retry design in
    let shards = 2 + (h mod 3) in
    let base_metrics = Obs_metrics.create () in
    let base_events = Obs_events.create ~ts:false () in
    let baseline =
      Camp.run ~metrics:base_metrics ~events:base_events ~plan ~retry app
        machine design
    in
    let expected_journal =
      String.concat ""
        (List.map
           (fun l -> l ^ "\n")
           (header :: List.map Camp.record_to_line baseline.Camp.cp_records))
    in
    let journal = Filename.temp_file "fuzz-shard" ".jsonl" in
    let shard_paths = List.init shards (Shd.journal_path ~journal) in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          (journal :: shard_paths))
    @@ fun () ->
    let run_variant ~kill =
      List.iteri
        (fun k path ->
          if Sys.file_exists path then Sys.remove path;
          let t = { Shd.sh_index = k; sh_count = shards } in
          let keep params rep = Shd.owns t ~params ~rep in
          let full ~resume =
            ignore
              (Camp.run_journaled ~plan ~retry ~keep ~journal:path ~resume
                 app machine design)
          in
          let own = List.length (Shd.coordinates t design) in
          if kill && k = h mod shards && own >= 2 then begin
            (* Worker dies after [cut] coordinates, torn mid-write. *)
            let cut = 1 + (h mod (own - 1)) in
            ignore
              (Camp.run_journaled ~plan ~retry ~keep ~limit:cut
                 ~journal:path ~resume:false app machine design);
            tear_trailing_line path;
            full ~resume:true
          end
          else full ~resume:false)
        shard_paths;
      let metrics = Obs_metrics.create () in
      let events = Obs_events.create ~ts:false () in
      match
        Shd.merge_journals ~metrics ~events ~mode:design.Exp.mode
          ~expected_header:header ~design shard_paths
      with
      | Error e -> Error e
      | Ok mg ->
        Shd.write_journal ~header ~records:mg.Shd.mg_records journal;
        let ic = open_in_bin journal in
        let bytes = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok (mg, bytes, Obs_metrics.snapshot metrics, Obs_events.lines events)
    in
    let check_variant label = function
      | Error e -> Fail (Printf.sprintf "%s: merge failed: %s" label e)
      | Ok (mg, bytes, snap, lines) ->
        if compare mg.Shd.mg_records baseline.Camp.cp_records <> 0 then
          Fail (label ^ ": merged records differ from the serial campaign")
        else if not (String.equal bytes expected_journal) then
          Fail (label ^ ": merged journal bytes differ from the serial \
                         campaign's")
        else begin
          let base_snap = Obs_metrics.snapshot base_metrics in
          let value s n = Option.value ~default:0 (Obs_metrics.find_counter s n) in
          let drift =
            List.find_opt
              (fun (n, _) -> value snap n <> value base_snap n)
              Camp.counters
          in
          match drift with
          | Some (n, _) ->
            Fail (Printf.sprintf "%s: counter %s diverged (%d vs %d)" label n
                    (value snap n) (value base_snap n))
          | None ->
            let base_lines = Obs_events.lines base_events in
            let nb = List.length base_lines in
            if
              List.filteri (fun i _ -> i < nb) lines <> base_lines
              || List.length lines <> nb + 1
            then
              Fail (label ^ ": merged event stream is not the serial stream \
                             plus one shard.merge event")
            else Pass
        end
    in
    match check_variant "sharded" (run_variant ~kill:false) with
    | Fail _ as f -> f
    | Pass -> check_variant "sharded+kill" (run_variant ~kill:true)
  in
  { name = "shard-identity"; check }

(* Served-model identity: a model answered out of the serve catalog —
   from the in-memory LRU, after a second cold fit, or by a fresh
   process reopening the on-disk index (the daemon-restart path) — must
   be bit-identical to the cold fit: the serialized entry (model
   expression, coefficients, fit quality, campaign counters) down to the
   byte, and the model's predictions at every grid coordinate.  The key
   binds the generated program's printed text, so the corpus also
   exercises ever-different catalog keys. *)
let serve_identity =
  let module Cat = Serve.Catalog in
  let check p =
    let app, machine, design, h = campaign_fixture p in
    let plan =
      {
        Flt.none with
        Flt.fp_seed = h mod 4999;
        fp_crash = 0.05;
        fp_hang = 0.03;
        fp_persistent = 0.;
        fp_transient_attempts = 2;
      }
    in
    let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
    let program_text = Ir.Pp.program_to_string p in
    let key =
      Cat.key ~app_name:app.Sp.aname ~program_text ~design ~plan ~retry
    in
    let cold = Cat.fit ~app ~machine ~design ~plan ~retry ~key () in
    let cold_line = Cat.entry_to_line cold in
    let dir = Filename.temp_file "fuzz-serve" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        let index = Filename.concat dir "catalog.jsonl" in
        if Sys.file_exists index then Sys.remove index;
        if Sys.file_exists dir then Sys.rmdir dir)
    @@ fun () ->
    let with_catalog f =
      match Cat.open_ ~dir () with
      | Error e -> Fail (Printf.sprintf "catalog open failed: %s" e)
      | Ok cat -> Fun.protect ~finally:(fun () -> Cat.close cat) (fun () -> f cat)
    in
    let predictions (e : Cat.entry) =
      List.map
        (fun v -> Model.Expr.eval e.Cat.e_model [ ("p", v) ])
        (List.assoc "p" design.Exp.grid)
    in
    with_catalog @@ fun cat ->
    if Cat.find cat key <> None then Fail "fresh catalog claims a hit"
    else begin
      Cat.insert cat cold;
      match Cat.find cat key with
      | None -> Fail "inserted entry not found (memory hit)"
      | Some warm ->
        if not (String.equal (Cat.entry_to_line warm) cold_line) then
          Fail "memory-hit entry is not bit-identical to the cold fit"
        else if
          not
            (String.equal
               (Cat.entry_to_line
                  (Cat.fit ~app ~machine ~design ~plan ~retry ~key ()))
               cold_line)
        then Fail "a second cold fit is not bit-identical to the first"
        else begin
          Cat.close cat;
          (* the daemon-restart path: a fresh process, disk index only *)
          with_catalog @@ fun reopened ->
          match Cat.find reopened key with
          | None -> Fail "reopened catalog lost the entry (restart miss)"
          | Some restored ->
            if not (String.equal (Cat.entry_to_line restored) cold_line)
            then
              Fail
                "entry restored from the on-disk index is not bit-identical \
                 to the cold fit"
            else if compare (predictions restored) (predictions cold) <> 0
            then
              Fail
                "restored model predicts differently from the cold fit's \
                 model"
            else Pass
        end
    end
  in
  { name = "serve-identity"; check }

(* -- differential: compiled tier vs the interpreter ------------------------- *)

(* The full-fidelity view of one run that the compiled tier must
   reproduce bit-for-bit: outcome (including trap messages and budget
   behavior), result value and label, every observation with its
   dependency label names, metric counters, profiler samples, and the
   label-table statistics (ids and union traffic — sensitive to the
   exact [Label.union] call order). *)
type tier_snapshot = {
  ts_outcome : string;
  ts_value : (value * string list) option;
  ts_loops :
    (string * string * int * string option * int * int * string list
    * (string * string) list)
    list;
  ts_branches : (string * string * int * int * string list) list;
  ts_funcs : (string * int * int * int) list;
  ts_events : (string * string * string * (value * string list) list) list;
  ts_steps : int;
  ts_metrics : Obs_metrics.snapshot;
  ts_profile : Obs_profile.snapshot;
  ts_labels : int * int * int;  (** table stats: labels, unions, dedup hits *)
}

let tier_snapshot (type a) (module E : Interp.Engine.S with type t = a)
    ~config p args =
  let metrics = Obs_metrics.create () in
  let profile = Obs_profile.create () in
  let m = E.create ~config ~metrics ~profile p in
  let outcome, value =
    match E.run m args with
    | v, l -> ("finished", Some (v, L.names (E.label_table m) l))
    | exception M.Budget_exceeded n -> (Printf.sprintf "budget after %d" n, None)
    | exception M.Runtime_error msg -> ("runtime error: " ^ msg, None)
    | exception Ir_error msg -> ("invalid IR: " ^ msg, None)
  in
  let obs = E.observations m in
  let tbl = E.label_table m in
  let stats = L.table_stats tbl in
  {
    ts_outcome = outcome;
    ts_value = value;
    ts_loops =
      O.loop_list obs
      |> List.map (fun (lo : O.loop_obs) ->
             ( O.callpath_key lo.O.lo_callpath,
               lo.O.lo_header,
               lo.O.lo_depth,
               lo.O.lo_parent,
               lo.O.lo_iters,
               lo.O.lo_entries,
               L.names tbl lo.O.lo_dep,
               List.sort compare lo.O.lo_enclosing ))
      |> List.sort compare;
    ts_branches =
      O.branch_list obs
      |> List.map (fun (bo : O.branch_obs) ->
             ( O.callpath_key bo.O.br_callpath,
               bo.O.br_block,
               bo.O.br_taken,
               bo.O.br_not_taken,
               L.names tbl bo.O.br_dep ))
      |> List.sort compare;
    ts_funcs =
      O.func_list obs
      |> List.map (fun (fo : O.func_obs) ->
             (fo.O.fo_func, fo.O.fo_calls, fo.O.fo_instrs, fo.O.fo_work))
      |> List.sort compare;
    ts_events =
      O.event_list obs
      |> List.map (fun (ev : O.event) ->
             ( ev.O.ev_func,
               O.callpath_key ev.O.ev_callpath,
               ev.O.ev_prim,
               List.map (fun (v, l) -> (v, L.names tbl l)) ev.O.ev_args ));
    ts_steps = E.steps_executed m;
    ts_metrics = Obs_metrics.snapshot metrics;
    ts_profile = Obs_profile.snapshot profile;
    ts_labels = (stats.L.labels, stats.L.unions, stats.L.dedup_hits);
  }

let tier_diff a b =
  if a.ts_outcome <> b.ts_outcome then
    Some (Printf.sprintf "outcome (%s vs %s)" a.ts_outcome b.ts_outcome)
  else if compare a.ts_value b.ts_value <> 0 then Some "result value or label"
  else if a.ts_steps <> b.ts_steps then
    Some (Printf.sprintf "step count (%d vs %d)" a.ts_steps b.ts_steps)
  else if compare a.ts_loops b.ts_loops <> 0 then Some "loop observations"
  else if compare a.ts_branches b.ts_branches <> 0 then
    Some "branch observations"
  else if compare a.ts_funcs b.ts_funcs <> 0 then Some "function statistics"
  else if compare a.ts_events b.ts_events <> 0 then Some "primitive events"
  else if compare a.ts_metrics b.ts_metrics <> 0 then Some "metric counters"
  else if compare a.ts_profile b.ts_profile <> 0 then Some "profiler samples"
  else if compare a.ts_labels b.ts_labels <> 0 then
    Some "label-table statistics"
  else None

(* Coverage runs additionally compare the policy's own block/edge hit
   tables, which live outside the engine's observations. *)
let coverage_hits (type a)
    (module E : Interp.Engine.S
      with type t = a and type pstate = Interp.Coverage_policy.state) ~config p
    args =
  let m = E.create ~config p in
  let outcome =
    match E.run m args with
    | _ -> "finished"
    | exception M.Budget_exceeded n -> Printf.sprintf "budget after %d" n
    | exception M.Runtime_error msg -> "runtime error: " ^ msg
    | exception Ir_error msg -> "invalid IR: " ^ msg
  in
  let cov = E.policy_state m in
  ( outcome,
    Interp.Coverage_policy.block_hits cov,
    Interp.Coverage_policy.edge_hits cov )

let compile_identity_with config =
  let check p =
    let args = base_args p in
    let it = tier_snapshot (module M) ~config p args in
    let ct = tier_snapshot (module Interp.Compiled.Taint) ~config p args in
    match tier_diff it ct with
    | Some what ->
      Fail (Printf.sprintf "compiled Taint run differs from interpreter: %s" what)
    | None -> (
      let ip = tier_snapshot (module P) ~config p args in
      let cp = tier_snapshot (module Interp.Compiled.Plain) ~config p args in
      match tier_diff ip cp with
      | Some what ->
        Fail
          (Printf.sprintf "compiled Plain run differs from interpreter: %s" what)
      | None ->
        let ic = coverage_hits (module C) ~config p args in
        let cc =
          coverage_hits (module Interp.Compiled.Coverage) ~config p args
        in
        if compare ic cc <> 0 then
          Fail "compiled Coverage run differs from interpreter (hit tables)"
        else Pass)
  in
  { name = "compile-identity"; check }

let compile_identity = compile_identity_with interp_config

(* -- suites ---------------------------------------------------------------- *)

let oracles_with config =
  [
    taint_soundness_with config;
    printer_roundtrip;
    validator_interp_with config;
    tripcount_with config;
    obs_invariance_with config;
    taint_vs_plain_with config;
    compile_identity_with config;
    coverage_consistency_with config;
    campaign_identity;
    campaign_recovery;
    par_identity;
    shard_identity;
    serve_identity;
  ]

let all_with ~max_steps = oracles_with { interp_config with max_steps }

let all = oracles_with interp_config

let check o p =
  match o.check p with
  | v -> v
  | exception exn ->
    Fail (Printf.sprintf "oracle raised %s" (Printexc.to_string exn))
