(** Random PIR program generation.

    Generated programs are described by a structured AST ({!prog}) —
    the unit of shrinking — and emitted through {!Ir.Builder}, so every
    program is well-formed and terminating by construction.  The grammar
    covers calls into helper functions, memory aliasing through a shared
    array, float arithmetic, block-argument-free canonical loops,
    irregular (triangular) nests, non-canonical halving loops, and
    branches on tainted conditions. *)

(** Upper bound of a counted loop. *)
type bound =
  | Bconst of int  (** constant *)
  | Bparam of int  (** a marked parameter *)
  | Bhalf of int   (** param / 2 *)
  | Bmem of int    (** param round-tripped through fresh memory *)
  | Bouter         (** induction variable of the enclosing loop *)
  | Bfloat of int  (** param scaled through float arithmetic *)
  | Bshared of int (** load from the shared (aliased) array *)

(** Branch conditions. *)
type cond =
  | Cparam of int * int  (** param i > k *)
  | Cpair of int * int   (** param i < param j *)
  | Cfloat of int        (** float comparison on param i *)

type stmt =
  | Work of int
  | Seq of stmt * stmt
  | For of bound * stmt
  | While_half of int          (** non-canonical halving loop on param i *)
  | If of cond * stmt * stmt
  | Call_helper of int * bound (** call helper [i] with the bound's value *)
  | Shared_store of int * int  (** store param [i] into a shared slot *)
  | Float_work of int          (** float chain on param [i] fed into work *)

type prog = {
  nparams : int;       (** marked entry parameters, at least 1 *)
  helpers : stmt list; (** bodies of the callable helper functions *)
  main : stmt;
}

val shared_slots : int
val param_name : int -> string

val helper_name : int -> string
(** Function name of helper [i] ("h0", "h1", ...). *)

val to_program : ?name:string -> prog -> Ir.Types.program
(** Emit the AST as a well-formed PIR program.  The entry function
    "main" marks each parameter with the [taint:<name>] primitive;
    parameter indices in the AST wrap modulo [nparams], so shrinking
    [nparams] never produces an invalid reference. *)

val print : prog -> string
(** The emitted program in [.pir] concrete syntax. *)

val gen : prog QCheck.Gen.t

val generate : Random.State.t -> prog
(** One random program from an explicit PRNG state. *)
