(** Structural shrinking of generated programs.

    [candidates] proposes strictly smaller variants of a failing program;
    [minimize] greedily applies them to a fixpoint.  Every candidate has a
    strictly smaller {!size} (bounds and conditions shrink toward
    [Bconst 0]/[Cparam (0,0)], statements toward [Work 1], helper lists
    toward empty, [nparams] toward 1), so minimization terminates. *)

open Gen

let bound_size = function
  | Bconst k -> if k = 0 then 1 else 2
  | Bouter -> 3
  | Bparam _ -> 4
  | Bhalf _ | Bshared _ -> 5
  | Bmem _ | Bfloat _ -> 6

let cond_size = function
  | Cparam (i, k) -> 1 + (if i = 0 then 0 else 1) + if k = 0 then 0 else 1
  | Cpair _ -> 4
  | Cfloat _ -> 5

let rec stmt_size = function
  | Work k -> if k = 1 then 1 else 2
  | Seq (a, b) -> 1 + stmt_size a + stmt_size b
  | For (bd, s) -> 1 + bound_size bd + stmt_size s
  | While_half _ -> 6
  | If (c, a, b) -> 1 + cond_size c + stmt_size a + stmt_size b
  | Call_helper (_, bd) -> 4 + bound_size bd
  | Shared_store (_, _) -> 5
  | Float_work _ -> 5

let size p =
  stmt_size p.main
  + List.fold_left (fun acc s -> acc + 2 + stmt_size s) 0 p.helpers
  + (p.nparams - 1)

(* Each shrinker returns candidates strictly smaller under the matching
   size measure, most aggressive first. *)

let shrink_bound = function
  | Bconst 0 -> []
  | Bconst _ -> [ Bconst 0 ]
  | Bouter -> [ Bconst 0; Bconst 2 ]
  | Bparam _ -> [ Bconst 0; Bconst 2; Bouter ]
  | Bhalf i | Bshared i -> [ Bconst 0; Bparam i ]
  | Bmem i | Bfloat i -> [ Bconst 0; Bparam i; Bhalf i ]

let shrink_cond = function
  | Cparam (0, 0) -> []
  | Cparam (i, k) ->
    (if i = 0 then [] else [ Cparam (0, k) ])
    @ if k = 0 then [] else [ Cparam (i, 0) ]
  | Cpair (i, _) -> [ Cparam (0, 0); Cparam (i, 0) ]
  | Cfloat i -> [ Cparam (0, 0); Cparam (i, 0); Cpair (i, i) ]

let rec shrink_stmt = function
  | Work 1 -> []
  | Work _ -> [ Work 1 ]
  | Seq (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Seq (a', b)) (shrink_stmt a)
    @ List.map (fun b' -> Seq (a, b')) (shrink_stmt b)
  | For (bd, s) ->
    [ s ]
    @ List.map (fun bd' -> For (bd', s)) (shrink_bound bd)
    @ List.map (fun s' -> For (bd, s')) (shrink_stmt s)
  | While_half _ -> [ Work 1 ]
  | If (c, a, b) ->
    [ a; b ]
    @ List.map (fun c' -> If (c', a, b)) (shrink_cond c)
    @ List.map (fun a' -> If (c, a', b)) (shrink_stmt a)
    @ List.map (fun b' -> If (c, a, b')) (shrink_stmt b)
  | Call_helper (h, bd) ->
    [ Work 1 ] @ List.map (fun bd' -> Call_helper (h, bd')) (shrink_bound bd)
  | Shared_store _ -> [ Work 1 ]
  | Float_work _ -> [ Work 1 ]

let rec stmt_calls = function
  | Call_helper _ -> true
  | Seq (a, b) | If (_, a, b) -> stmt_calls a || stmt_calls b
  | For (_, s) -> stmt_calls s
  | Work _ | While_half _ | Shared_store _ | Float_work _ -> false

let candidates p =
  (* Drop all helpers at once when main never calls (size strictly drops
     because each helper costs at least 3). *)
  (if p.helpers <> [] && not (stmt_calls p.main) then
     [ { p with helpers = [] } ]
   else [])
  @ (if p.nparams > 1 then [ { p with nparams = 1 } ] else [])
  @ List.map (fun m -> { p with main = m }) (shrink_stmt p.main)
  @ List.concat
      (List.mapi
         (fun k s ->
           List.map
             (fun s' ->
               { p with
                 helpers = List.mapi (fun j t -> if j = k then s' else t) p.helpers
               })
             (shrink_stmt s))
         p.helpers)

let minimize pred p0 =
  let rec go p =
    match List.find_opt pred (candidates p) with
    | Some p' -> go p'
    | None -> p
  in
  go p0

let arbitrary =
  QCheck.make ~print:Gen.print
    ~shrink:(fun p yield -> List.iter yield (candidates p))
    Gen.gen
