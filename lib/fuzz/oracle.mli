(** Differential and metamorphic oracles over PIR programs.

    Every oracle checks a whole [Ir.Types.program], so the same checks
    apply to freshly generated programs and to replayed [.pir] corpus
    files.  Run them through {!check}, which converts an unexpected
    exception into a [Fail] — in differential testing an escaping
    exception is a finding, not an abort. *)

type verdict = Pass | Fail of string

type t = { name : string; check : Ir.Types.program -> verdict }

val interp_config : Interp.Machine.config
(** Oracle execution budget (500k steps): exhausting it is a skip, not a
    finding — generated loop nests can be exponential in depth and a
    campaign must never hang. *)

val marked_params : Ir.Types.program -> (string * string) list
(** Entry parameters marked as taint sources, as
    [(formal, source name)] pairs — found by scanning the entry function
    for [!taint:<name>(%formal)] primitives (recognized by
    {!Taint.Label.source_prim}, the shared definition). *)

val taint_soundness : t
(** Perturb each marked parameter in turn (3 → 7) and re-execute: any
    loop whose dynamic counts change must carry the parameter in its
    labels (or in a dynamically enclosing loop's).  Loops outside the
    entry function are only required to be labelled when both runs
    entered them equally often, because control taint is function-scoped
    and does not flow into callees. *)

val taint_soundness_with : Interp.Machine.config -> t
(** {!taint_soundness} under an explicit interpreter configuration —
    used by the suite to demonstrate that the oracle catches the
    [control_flow_taint = false] ablation as a genuine soundness bug. *)

val printer_roundtrip : t
(** Printing and reparsing must reproduce the program exactly. *)

val validator_interp : t
(** A program the validator accepts must not raise [Runtime_error]
    (budget exhaustion excepted); a generated program the validator
    rejects is equally a finding. *)

val tripcount : t
(** Static [Constant n] trip counts must agree with dynamics:
    [iterations = n * entries] for every observation of the loop. *)

val obs_invariance : t
(** Metamorphic: enabling the [lib/obs] metrics and trace instrumentation
    must not change the result value, observations, or step count. *)

val taint_vs_plain : t
(** Differential: running through the Taint policy ({!Interp.Machine})
    and the Plain policy ({!Interp.Plain}) must produce the same result
    value, loop/branch dynamics, function statistics, event count and
    step count — identical runs modulo taint labels. *)

val compile_identity : t
(** Differential: the compiled tier ({!Interp.Compiled}) must be
    bit-identical to the interpreter under every bundled policy —
    outcome (result value and its label, trap messages, budget
    behavior), loop/branch/event/function observations with their
    dependency label names, step counts, metric counters, profiler
    samples, label-table statistics (ids and union traffic), and the
    Coverage policy's block/edge hit tables. *)

val compile_identity_with : Interp.Machine.config -> t

val coverage_consistency : t
(** The Coverage policy's block hit counts must be consistent with the
    engine's own observations: summed over callpaths, a branch block is
    arrived at taken + not-taken times and a loop header
    iterations + entries times. *)

val campaign_identity : t
(** A fault-free {!Measure.Campaign.run} must be bit-identical to
    {!Measure.Experiment.run_design} on an app/design derived
    deterministically from the program's hash. *)

val campaign_recovery : t
(** A campaign under transient crash/hang faults (with enough retries to
    outlast them) must recover every run, and the robust fit
    ({!Model.Search.multi_robust}) of its dataset must select the same
    best model term as the classic fit of the clean campaign. *)

val par_identity : t
(** Parallel-vs-serial bit-identity: the fixture campaign executed on a
    3-worker {!Par.Pool} must produce records identical to the serial
    run, and pooled model-search scoring must select the identical model
    with identical error and candidate count. *)

val shard_identity : t
(** Sharded-vs-single bit-identity: the fixture campaign split over
    2–4 journal-writing shards and merged back through
    {!Measure.Shard.merge_journals} must reproduce the serial campaign
    exactly — records, merged journal bytes, [campaign.*] counters, and
    event stream — both on the clean path and with one worker killed
    mid-shard (journal torn mid-line, restarted with resume). *)

val serve_identity : t
(** Served-model identity: the fixture campaign's fit, memoized through
    a {!Serve.Catalog} in a temp directory, must come back bit-identical
    to the cold fit — the serialized entry bytes and the model's
    predictions — from the in-memory LRU, from a repeated cold fit, and
    from a fresh catalog reopening the on-disk index (the daemon-restart
    path).  The key binds the generated program's printed text. *)

val validator_interp_with : Interp.Machine.config -> t
val tripcount_with : Interp.Machine.config -> t
val obs_invariance_with : Interp.Machine.config -> t
val taint_vs_plain_with : Interp.Machine.config -> t
val coverage_consistency_with : Interp.Machine.config -> t

val oracles_with : Interp.Machine.config -> t list
(** Every oracle, executing under the given configuration. *)

val all_with : max_steps:int -> t list
(** {!oracles_with} at the default oracle configuration with an explicit
    step budget — the CLI's [--max-steps]. *)

val all : t list
(** [oracles_with interp_config]. *)

val check : t -> Ir.Types.program -> verdict
(** Exception-safe oracle application. *)
