(** Fuzzing campaigns over the {!Gen} grammar and {!Oracle} checks. *)

type counterexample = {
  cx_oracle : string;           (** name of the violated oracle *)
  cx_message : string;          (** failure message on the minimized program *)
  cx_index : int;               (** index of the generated program in the campaign *)
  cx_program : Ir.Types.program; (** minimized failing program *)
  cx_text : string;             (** its [.pir] concrete syntax *)
  cx_lines : int;               (** line count of [cx_text] *)
}

type oracle_result = {
  or_name : string;
  or_runs : int;                (** programs this oracle checked *)
  or_cx : counterexample option; (** first failure, minimized *)
}

type report = { rp_seed : int; rp_budget : int; rp_results : oracle_result list }

val event_names : (string * string) list
(** The [fuzz.*] structured-event vocabulary (name, meaning) — kept in
    sync with doc/OBSERVABILITY.md by a drift test. *)

val run_campaign :
  ?pool:Par.Pool.t -> ?oracles:Oracle.t list -> ?max_steps:int ->
  ?events:Obs_events.sink -> seed:int -> budget:int -> unit -> report
(** Generate [budget] programs from [seed] and check each against every
    oracle.  An oracle stops checking after its first failure, which is
    shrunk with {!Shrink.minimize} before being reported.  Generation
    consumes the PRNG identically regardless of oracle outcomes, so a
    campaign is reproducible from its seed alone.  [max_steps] runs the
    default oracle set under an explicit interpreter budget
    ({!Oracle.all_with}); an explicit [oracles] list takes precedence.

    [pool] checks cases on a domain pool: generation remains one serial
    PRNG pass (identical corpus), checks fan out in waves, and slot
    updates replay in case order on the submitting domain — verdicts,
    first-failure indices, shrunk counterexamples and [or_runs] are
    bit-identical to the serial campaign.

    [events] receives one [fuzz.oracle] summary per oracle plus a
    [fuzz.counterexample] (error severity) per failure, derived from the
    finished report in oracle order — identical at any [--jobs]. *)

val counterexamples : report -> counterexample list

val save : dir:string -> seed:int -> counterexample -> string
(** Persist a minimized counterexample under [dir] (created if missing)
    as a replayable [.pir] file with a provenance header; returns the
    path. *)

val replay_file :
  ?oracles:Oracle.t list -> ?max_steps:int -> string ->
  (string * Oracle.verdict) list
(** Parse a corpus [.pir] file and run each oracle on it.  [max_steps]
    as in {!run_campaign}. *)
