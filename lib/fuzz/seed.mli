(** Deterministic seeding for every randomized test and campaign.

    Randomized suites are reproducible by default: they all draw their
    PRNG state from here, the fixed default seed is {!default}, and the
    [FUZZ_SEED] environment variable overrides it (failure output prints
    the seed to replay with). *)

val default : int
(** The fixed default seed (42). *)

val env_var : string
(** ["FUZZ_SEED"]. *)

val get : unit -> int
(** [FUZZ_SEED] when set to an integer, {!default} otherwise. *)

val state : unit -> Random.State.t
(** A fresh PRNG state seeded from {!get}. *)
