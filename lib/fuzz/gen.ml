(** Random PIR program generation for the fuzzing subsystem.

    Programs are described by a small structured AST — the [prog] type —
    rather than generated as raw instruction lists: the AST is what the
    structural shrinker minimizes, and emitting it through {!Ir.Builder}
    guarantees every generated program is well-formed (reducible CFG,
    def-before-use, existing call targets) and terminating, so oracle
    failures always indicate analysis bugs, never generator bugs.

    The grammar goes well beyond the counted-loops-only generator the
    soundness suite started with: direct calls into helper functions,
    memory aliasing through a shared array reachable by two registers,
    float arithmetic (including float-compared branches), irregular
    (triangular) loop nests whose inner bound is the outer induction
    variable, non-canonical halving loops the static trip-count analysis
    must refuse, and branches on tainted conditions. *)

open Ir.Types
module B = Ir.Builder

(** Upper bound of a counted loop. *)
type bound =
  | Bconst of int  (** constant *)
  | Bparam of int  (** a marked parameter *)
  | Bhalf of int   (** param / 2 *)
  | Bmem of int    (** param round-tripped through fresh memory *)
  | Bouter         (** induction variable of the enclosing loop *)
  | Bfloat of int  (** int_of_float (float_of_int param *. 0.75) *)
  | Bshared of int (** load from the shared array (aliased stores) *)

(** Branch conditions. *)
type cond =
  | Cparam of int * int  (** param i > k *)
  | Cpair of int * int   (** param i < param j *)
  | Cfloat of int        (** float_of_int param i *. 0.5 > 2.0 *)

type stmt =
  | Work of int
  | Seq of stmt * stmt
  | For of bound * stmt
  | While_half of int          (** while p > 1 do p <- p / 2: non-canonical *)
  | If of cond * stmt * stmt
  | Call_helper of int * bound (** call helper [i] with the bound's value *)
  | Shared_store of int * int  (** store param [i] into shared slot *)
  | Float_work of int          (** float chain on param [i] folded into work *)

type prog = {
  nparams : int;       (** marked entry parameters, 1..3 *)
  helpers : stmt list; (** bodies of the callable helper functions *)
  main : stmt;
}

let shared_slots = 4

let param_name i = Printf.sprintf "p%d" i
let helper_name i = Printf.sprintf "h%d" i

(* -- emission through the builder ----------------------------------------- *)

type ctx = {
  params : operand array;        (** registers holding the tainted values *)
  outers : operand list;         (** enclosing induction variables, innermost first *)
  shared : operand option;       (** shared array, load side *)
  shared_alias : operand option; (** shared array, aliasing store side *)
  ncallees : int;                (** helpers callable from this context *)
}

(* Parameter indices wrap instead of failing so the shrinker may reduce
   [nparams] without remapping every index in the tree. *)
let pidx ctx i = ctx.params.(i mod Array.length ctx.params)

let emit_bound b ctx = function
  | Bconst k -> Int k
  | Bparam i -> pidx ctx i
  | Bhalf i -> B.div b (pidx ctx i) (Int 2)
  | Bmem i ->
    (* The parameter round-trips through memory: exercises the shadow. *)
    let a = B.alloc b (Int 1) in
    B.store b a (Int 0) (pidx ctx i);
    B.load b a (Int 0)
  | Bouter -> ( match ctx.outers with iv :: _ -> iv | [] -> Int 2)
  | Bfloat i ->
    let f = B.unop b FloatOfInt (pidx ctx i) in
    B.unop b IntOfFloat (B.fmul b f (Float 0.75))
  | Bshared s -> (
    match ctx.shared with
    | Some arr -> B.load b arr (Int (s mod shared_slots))
    | None -> Int 1)

let emit_cond b ctx = function
  | Cparam (i, k) -> B.gt b (pidx ctx i) (Int k)
  | Cpair (i, j) -> B.lt b (pidx ctx i) (pidx ctx j)
  | Cfloat i ->
    let f = B.unop b FloatOfInt (pidx ctx i) in
    B.binop b Gt (B.fmul b f (Float 0.5)) (Float 2.0)

let rec emit_stmt b ctx depth = function
  | Work k -> B.work b (Int (max 1 k))
  | Seq (s1, s2) ->
    emit_stmt b ctx depth s1;
    emit_stmt b ctx depth s2
  | For (bd, body) ->
    let below = emit_bound b ctx bd in
    B.for_ b (Printf.sprintf "i%d" depth) ~from:(Int 0) ~below (fun iv ->
        emit_stmt b { ctx with outers = iv :: ctx.outers } (depth + 1) body)
  | While_half i ->
    let v = B.fresh_name b "w" in
    B.set b v (pidx ctx i);
    B.while_ b
      ~cond:(fun () -> B.gt b (Reg v) (Int 1))
      ~body:(fun () ->
        B.work b (Int 1);
        B.set b v (B.div b (Reg v) (Int 2)))
  | If (c, s1, s2) ->
    let cv = emit_cond b ctx c in
    B.if_ b cv
      ~then_:(fun () -> emit_stmt b ctx (depth + 1) s1)
      ~else_:(fun () -> emit_stmt b ctx (depth + 1) s2)
      ()
  | Call_helper (h, bd) ->
    if ctx.ncallees = 0 then B.work b (Int 1)
    else
      let arg = emit_bound b ctx bd in
      B.call_unit b (helper_name (h mod ctx.ncallees)) [ arg ]
  | Shared_store (slot, i) -> (
    match ctx.shared_alias with
    | Some arr -> B.store b arr (Int (slot mod shared_slots)) (pidx ctx i)
    | None -> B.work b (Int 1))
  | Float_work i ->
    let f = B.unop b FloatOfInt (pidx ctx i) in
    let f = B.fadd b (B.fmul b f (Float 0.5)) (Float 1.0) in
    B.work b (B.imax b (B.unop b IntOfFloat f) (Int 0))

let bound_uses_shared = function Bshared _ -> true | _ -> false

let rec stmt_uses_shared = function
  | Shared_store _ -> true
  | For (bd, s) -> bound_uses_shared bd || stmt_uses_shared s
  | Call_helper (_, bd) -> bound_uses_shared bd
  | Seq (a, b) | If (_, a, b) -> stmt_uses_shared a || stmt_uses_shared b
  | Work _ | While_half _ | Float_work _ -> false

let to_program ?(name = "fuzz") p =
  let nh = List.length p.helpers in
  let helpers =
    List.mapi
      (fun k body ->
        B.define (helper_name k) ~params:[ "a" ] (fun b ->
            let ctx =
              { params = [| Reg "a" |]; outers = []; shared = None;
                shared_alias = None; ncallees = 0 }
            in
            emit_stmt b ctx 0 body;
            if B.in_block b then B.ret_unit b))
      p.helpers
  in
  let main =
    B.define "main" ~params:(List.init p.nparams param_name) (fun b ->
        let params =
          Array.init p.nparams (fun i ->
              B.prim b ("taint:" ^ param_name i) [ Reg (param_name i) ])
        in
        (* One shared array reachable through two registers: stores go
           through the alias, loads through the original handle.  Only
           emitted when the body uses it, so shrunk counterexamples stay
           free of dead setup code. *)
        let shared, shared_alias =
          if stmt_uses_shared p.main then begin
            let arr = B.alloc b (Int shared_slots) in
            B.set b "sh" arr;
            (Some arr, Some (Reg "sh"))
          end
          else (None, None)
        in
        let ctx = { params; outers = []; shared; shared_alias; ncallees = nh } in
        emit_stmt b ctx 0 p.main;
        if B.in_block b then B.ret_unit b)
  in
  { pname = name; funcs = main :: helpers; entry = "main" }

let print p = Ir.Pp.program_to_string (to_program p)

(* -- generation ------------------------------------------------------------ *)

let gen_bound ~nparams ~in_helper =
  let open QCheck.Gen in
  let pi = int_bound (nparams - 1) in
  frequency
    ([ (3, map (fun k -> Bconst (k mod 5)) small_nat);
       (4, map (fun i -> Bparam i) pi);
       (2, map (fun i -> Bhalf i) pi);
       (2, map (fun i -> Bmem i) pi);
       (1, map (fun i -> Bfloat i) pi);
       (1, return Bouter) ]
    @
    if in_helper then []
    else [ (1, map (fun s -> Bshared (s mod shared_slots)) small_nat) ])

let gen_cond ~nparams =
  let open QCheck.Gen in
  let pi = int_bound (nparams - 1) in
  frequency
    [ (3, map2 (fun i k -> Cparam (i, k mod 5)) pi small_nat);
      (2, map2 (fun i j -> Cpair (i, j)) pi pi);
      (1, map (fun i -> Cfloat i) pi) ]

let gen_stmt ~nparams ~ncallees ~in_helper =
  let open QCheck.Gen in
  let pi = int_bound (nparams - 1) in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n = 0 then map (fun k -> Work (1 + (k mod 3))) small_nat
         else
           frequency
             ([ (2, map (fun k -> Work (1 + (k mod 3))) small_nat);
                (3, map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2)));
                ( 4,
                  map2
                    (fun bd t -> For (bd, t))
                    (gen_bound ~nparams ~in_helper)
                    (self (n - 1)) );
                (1, map (fun i -> While_half i) pi);
                ( 2,
                  map3
                    (fun c a b -> If (c, a, b))
                    (gen_cond ~nparams) (self (n / 2)) (self (n / 2)) );
                (1, map (fun i -> Float_work i) pi) ]
             @ (if in_helper then []
                else
                  [ ( 1,
                      map2
                        (fun s i -> Shared_store (s mod shared_slots, i))
                        small_nat pi ) ])
             @
             if ncallees = 0 || in_helper then []
             else
               [ ( 2,
                   map2
                     (fun h bd -> Call_helper (h mod ncallees, bd))
                     small_nat
                     (gen_bound ~nparams ~in_helper) ) ]))

let gen =
  let open QCheck.Gen in
  int_range 1 3 >>= fun nparams ->
  int_bound 2 >>= fun nhelpers ->
  list_repeat nhelpers (gen_stmt ~nparams ~ncallees:0 ~in_helper:true)
  >>= fun helpers ->
  gen_stmt ~nparams ~ncallees:nhelpers ~in_helper:false >>= fun main ->
  return { nparams; helpers; main }

let generate st = gen st
