(** A deterministic domain pool.

    A pool owns a fixed set of worker domains fed from a chunked work
    queue. All scheduling nondeterminism is confined to *when* a task
    runs; results are collected into a slot keyed by the input index, so
    [map pool f xs] returns exactly what [List.map f xs] returns — the
    same values in the same order — for any pool size and any chunking.
    When the tasks themselves are pure (all the call sites in this
    codebase are), the output is bit-identical to serial execution.

    Concurrency contract: a pool is driven by one domain at a time (the
    one that called {!create}). [map]/[map_init] must not be called
    reentrantly or from two domains at once; tasks must not submit to
    the pool they run on. Tasks may only share data through their return
    value — anything else they touch must be domain-local. *)

type t

val create : ?metrics:Obs_metrics.t -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is
    clamped to at least 1); the submitting domain participates in every
    [map], so [jobs = 1] spawns nothing and degenerates to plain serial
    iteration. [?metrics] registers the [par.*] counters in the given
    registry; they are only ever bumped from the submitting domain. *)

val jobs : t -> int
(** Worker-domain count including the submitter (i.e. the [~jobs] given
    to {!create}, clamped). *)

val shutdown : t -> unit
(** Close the queue and join all worker domains. Idempotent. Any
    subsequent [map] runs serially on the submitter. *)

val with_pool : ?metrics:Obs_metrics.t -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] = [create], apply [f], and {!shutdown} on all
    exits, including exceptions. *)

val map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs] on the pool and
    returns the results in input order. If one or more tasks raise, all
    tasks still run to completion, the pool stays usable, and the
    exception of the *lowest-indexed* failing element is re-raised (with
    its backtrace) — again independent of scheduling. [?chunk] overrides
    the items-per-task grain (default: [length / (jobs * 4)], clamped to
    [1, 64]). *)

val map_init :
  t -> ?chunk:int -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a list -> 'b list
(** [map_init t ~init f xs] is {!map} where each participating domain
    lazily creates one private state with [init ()] (at most one per
    domain per call) and every task it executes receives that state.
    Used to reuse scratch buffers worker-locally without sharing. *)

val counters : (string * string) list
(** Name and description of every [par.*] counter, in the order they
    appear in doc/OBSERVABILITY.md (the doc table is drift-tested
    against this list). *)
