(** Deterministic domain pool: fixed workers, chunked queue, ordered
    collection. See pool.mli for the contract. *)

type task = unit -> unit

type t = {
  pjobs : int;
  mu : Mutex.t;
  cond : Condition.t; (* signalled when the queue grows or closes *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  (* Completion of the in-flight map: the submitter waits here after
     draining its own share of the queue. *)
  done_mu : Mutex.t;
  done_cond : Condition.t;
  remaining : int Atomic.t;
  (* Counters, bumped only from the submitting domain so the registry
     never sees cross-domain writes. *)
  c_pools : Obs_metrics.counter option;
  c_maps : Obs_metrics.counter option;
  c_chunks : Obs_metrics.counter option;
  c_tasks : Obs_metrics.counter option;
}

let counters =
  [
    ("par.pools", "domain pools created");
    ("par.maps", "parallel map operations dispatched");
    ("par.chunks", "work-queue chunks enqueued (grain is scheduling policy)");
    ("par.tasks", "individual tasks executed through a pool");
  ]

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.cond t.mu
    done;
    let job =
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
    in
    Mutex.unlock t.mu;
    match job with
    | None -> () (* closed and drained *)
    | Some task ->
      (* Tasks wrap their own exceptions into the result slot; a raise
         here would only mean a bug in the pool itself, but never let it
         kill the domain and wedge a join. *)
      (try task () with _ -> ());
      loop ()
  in
  loop ()

let create ?metrics ~jobs () =
  let pjobs = max 1 jobs in
  let c name =
    Option.map (fun reg -> Obs_metrics.counter reg name) metrics
  in
  let t =
    {
      pjobs;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      done_mu = Mutex.create ();
      done_cond = Condition.create ();
      remaining = Atomic.make 0;
      c_pools = c "par.pools";
      c_maps = c "par.maps";
      c_chunks = c "par.chunks";
      c_tasks = c "par.tasks";
    }
  in
  t.domains <- List.init (pjobs - 1) (fun _ -> Domain.spawn (worker_loop t));
  Option.iter Obs_metrics.incr t.c_pools;
  t

let jobs t = t.pjobs

let shutdown t =
  Mutex.lock t.mu;
  let ds = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  List.iter Domain.join ds

let with_pool ?metrics ~jobs f =
  let t = create ?metrics ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_chunk n jobs = max 1 (min 64 (n / (jobs * 4)))

(* One slot per input element; [Error] carries the backtrace so the
   deterministic re-raise below points at the task, not at the pool. *)
type 'b slot = ('b, exn * Printexc.raw_backtrace) result option

let map t ?chunk f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk n t.pjobs
    in
    let results : _ slot array = Array.make n None in
    let nchunks = (n + chunk - 1) / chunk in
    Option.iter Obs_metrics.incr t.c_maps;
    Option.iter (fun c -> Obs_metrics.add c nchunks) t.c_chunks;
    Option.iter (fun c -> Obs_metrics.add c n) t.c_tasks;
    Atomic.set t.remaining nchunks;
    let run_chunk lo () =
      let hi = min n (lo + chunk) in
      for i = lo to hi - 1 do
        let r =
          try Ok (f arr.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r
      done;
      (* The fetch-and-add is the release point publishing the slots; the
         submitter's read of [remaining] acquires them. *)
      if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
        Mutex.lock t.done_mu;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.done_mu
      end
    in
    let chunks = List.init nchunks (fun k -> run_chunk (k * chunk)) in
    (match chunks with
    | [] -> ()
    | first :: rest ->
      if t.pjobs > 1 && not t.closed then begin
        Mutex.lock t.mu;
        List.iter (fun c -> Queue.push c t.queue) rest;
        Condition.broadcast t.cond;
        Mutex.unlock t.mu;
        (* The submitter works too: its first chunk is the head of the
           list, then it steals from the shared queue until dry. *)
        first ();
        let rec help () =
          Mutex.lock t.mu;
          let job =
            if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
          in
          Mutex.unlock t.mu;
          match job with
          | Some task ->
            task ();
            help ()
          | None -> ()
        in
        help ();
        Mutex.lock t.done_mu;
        while Atomic.get t.remaining > 0 do
          Condition.wait t.done_cond t.done_mu
        done;
        Mutex.unlock t.done_mu
      end
      else List.iter (fun c -> c ()) chunks);
    (* Ordered collection: walk slots in input order; first Error wins,
       which makes the raised exception independent of scheduling. *)
    let out = ref [] in
    let err = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Ok v) -> out := v :: !out
      | Some (Error e) -> err := Some e
      | None -> assert false
    done;
    (match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    !out
  end

let map_init t ?chunk ~init f xs =
  let states : (int, _) Hashtbl.t = Hashtbl.create 8 in
  let smu = Mutex.create () in
  let state_of_self () =
    let id = (Domain.self () :> int) in
    Mutex.lock smu;
    let s =
      match Hashtbl.find_opt states id with
      | Some s -> s
      | None ->
        let s = init () in
        Hashtbl.add states id s;
        s
    in
    Mutex.unlock smu;
    s
  in
  map t ?chunk (fun x -> f (state_of_self ()) x) xs
