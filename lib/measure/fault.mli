(** Deterministic, seeded fault plans for measurement campaigns: which
    run coordinates (configuration × repetition) fail, how (crash, hang,
    straggler inflation, corrupted durations), and whether the fault is
    transient (retryable) or persistent. *)

type kind =
  | Crash              (** the run dies partway through; no data *)
  | Hang               (** the run never terminates; killed when the
                           per-run step budget expires *)
  | Straggler of float (** completes with durations inflated by the
                           factor (2–8×: a slow node) *)
  | Corrupt of float   (** completes with duration outliers scaled by the
                           factor (25–100×: a broken timer) *)

type persistence =
  | Transient of int  (** fires on the first [n] attempts only *)
  | Persistent        (** fires on every attempt *)

type fault = { f_kind : kind; f_persistence : persistence }

type plan = {
  fp_seed : int;
  fp_crash : float;       (** per-coordinate crash probability *)
  fp_hang : float;
  fp_straggler : float;
  fp_corrupt : float;
  fp_persistent : float;  (** share of faults that are persistent *)
  fp_transient_attempts : int;
      (** a transient fault fires on the first 1..n attempts *)
}

val none : plan
(** The clean world: no faults, ever. *)

val uniform : ?seed:int -> ?persistent:float -> float -> plan
(** Same rate for all four fault kinds. *)

val total_rate : plan -> float

val kind_name : kind -> string
val kind_names : string list
(** All kind names, in declaration order — the metrics/journal vocabulary. *)

val at : plan -> params:Spec.params -> rep:int -> fault option
(** The fault (if any) injected at one run coordinate.  Deterministic in
    [(plan.fp_seed, params, rep)]; independent of the measurement-noise
    stream. *)

val active : fault -> attempt:int -> kind option
(** Does the fault fire on the [attempt]-th try (0-based)? *)

val of_spec : string -> (plan, string) result
(** Parse a ["crash=0.05,hang=0.02,persistent=0.2,seed=7"]-style spec
    (keys: crash, hang, straggler, corrupt, persistent, attempts, seed;
    all optional, empty string = {!none}). *)

val spec_of : plan -> string
(** Canonical spec string; [of_spec (spec_of p) = Ok p]. *)
