(** Distributed campaign sharding: deterministic partition of an
    {!Experiment.design} across worker processes, worker supervision
    (timeouts, restart-with-resume), and crash-tolerant merge of the
    per-shard checkpoint journals back into one campaign.

    The identity contract, enforced by the [shard-identity] fuzz
    oracle: 1 shard ≡ M shards ≡ M shards with injected worker kills —
    bit-identical records, journal bytes, [campaign.*] counters, and
    event stream. *)

type t = { sh_index : int; sh_count : int }
(** Shard [sh_index] of [sh_count], with [0 <= sh_index < sh_count]. *)

val of_spec : string -> (t, string) result
(** Parse a ["K/M"] worker spec (the CLI's [--shard]); the error is a
    one-line message naming the expected shape. *)

val spec_of : t -> string
(** ["K/M"], the inverse of {!of_spec}. *)

val assign : shards:int -> params:Spec.params -> rep:int -> int
(** The owning shard of a run coordinate: a salted hash of the sorted
    parameter bindings and the repetition, mod [shards].  Deterministic
    across processes of the same binary and independent of grid axis
    order.
    @raise Invalid_argument when [shards < 1]. *)

val owns : t -> params:Spec.params -> rep:int -> bool
(** [assign ~shards:t.sh_count ~params ~rep = t.sh_index] — the [keep]
    predicate a worker passes to {!Campaign.run_journaled}. *)

val coordinates : t -> Experiment.design -> (Spec.params * int) list
(** The shard's subset of {!Campaign.coordinates}, in design order.
    The subsets over [0 .. sh_count-1] partition the design exactly. *)

val journal_path : journal:string -> int -> string
(** [journal_path ~journal k] is ["<journal>.shard<k>"] — where the
    coordinator places shard [k]'s worker journal. *)

val counters : (string * string) list
(** The [shard.*] counter vocabulary (name, meaning) — kept in sync
    with doc/OBSERVABILITY.md by a drift test. *)

val event_names : (string * string) list
(** The [shard.*] structured-event vocabulary (name, meaning) — kept in
    sync with doc/OBSERVABILITY.md by a drift test. *)

(** {1 Journal merge} *)

type merge = {
  mg_records : Campaign.record list;  (** global design order *)
  mg_journals : int;                  (** journals merged *)
  mg_duplicates : int;   (** restart overlaps dropped (first completed wins) *)
  mg_torn : int;         (** torn trailing lines skipped across journals *)
  mg_missing : (Spec.params * int) list;
      (** design coordinates no journal covered (incomplete shards) *)
}

val merge_journals :
  ?metrics:Obs_metrics.t ->
  ?events:Obs_events.sink ->
  mode:Instrument.mode ->
  expected_header:string ->
  design:Experiment.design ->
  string list ->
  (merge, string) result
(** Reassemble per-shard journals into one campaign.  Every header must
    equal [expected_header] (a journal from a different app, design,
    fault plan or retry policy is refused with a one-line error);
    coordinates appearing in several journals after a restart are
    deduplicated — first completed record wins, each duplicate counted
    in [campaign.shard_dup]; torn trailing lines are skipped (counted
    in [campaign.journal_torn]); records naming coordinates outside the
    design are an error.  Records come back in {!Campaign.coordinates}
    order with their [campaign.*] counter bumps and fault/record events
    replayed in that order — byte-identical to a single-process
    campaign's registry and stream — followed by one [shard.merge]
    summary event. *)

val write_journal :
  header:string -> records:Campaign.record list -> string -> unit
(** Write a canonical journal (header plus one line per record) — the
    merged journal the coordinator leaves at [--journal], byte-identical
    to what one fault-free shard would have written. *)

(** {1 Worker supervision} *)

val complete :
  mode:Instrument.mode ->
  expected_header:string ->
  design:Experiment.design ->
  t -> string -> bool
(** Does the journal at [path] parse against the campaign header and
    cover every coordinate the shard owns? *)

val run_workers :
  ?metrics:Obs_metrics.t ->
  ?events:Obs_events.sink ->
  mode:Instrument.mode ->
  expected_header:string ->
  design:Experiment.design ->
  shards:int ->
  journal:string ->
  timeout_s:float ->
  max_restarts:int ->
  argv:(shard:t -> journal:string -> resume:bool -> string array) ->
  unit ->
  (unit, string) result
(** Spawn one worker process per shard ([argv] builds each command
    line; workers write to {!journal_path} and log to
    ["<shard journal>.log"]) and supervise them: a worker that dies, is
    killed by its [timeout_s] wall-clock budget, or exits leaving its
    shard incomplete is restarted with [resume:true] up to
    [max_restarts] times, re-executing only unjournaled coordinates.
    Returns [Error] with a one-line message when a shard exhausts its
    restarts.  Spawn/death/restart are counted in the [shard.*]
    counters and reported as [shard.*] events (supervision events are
    timing-dependent — determinism lives in the journals, not here). *)
