(** The cluster run simulator: one simulated application run at a
    parameter configuration under an instrumentation mode, with ground
    truth + contention + hooks + intrusion + noise. *)

module Machine = Mpi_sim.Machine

type kernel_measurement = {
  km_name : string;
  km_calls : float;
  km_per_call : float;  (** measured seconds per invocation *)
  km_total : float;
}

type run = {
  rn_params : Spec.params;
  rn_mode : Instrument.mode;
  rn_rep : int;
  rn_ranks_per_node : int;
  rn_kernels : kernel_measurement list;  (** observed kernels only *)
  rn_total : float;       (** measured wall time, hooks included *)
  rn_base_total : float;  (** uninstrumented noise-free wall time *)
}

val ranks_of : Spec.params -> int
val ranks_per_node_of : Machine.t -> Spec.params -> int
(** The explicit ["r"] parameter, or all cores filled. *)

val true_time : Machine.t -> ranks_per_node:int -> Spec.kernel -> Spec.params -> float

val measure :
  ?sigma:float -> ?seed:int -> ?rep:int -> ?metrics:Obs_metrics.t ->
  Spec.app -> Machine.t -> params:Spec.params -> mode:Instrument.mode -> run
(** [metrics] tags the campaign with its simulated cost: a [sim.runs]
    counter, a [sim.run_wall_s] histogram, and an accumulated
    [sim.core_hours] gauge. *)

type replay = {
  rp_params : Spec.params;
  rp_value : Ir.Types.value;  (** entry-function result *)
  rp_steps : int;             (** instructions + terminators executed *)
  rp_work : (string * int) list;
      (** per-function synthetic-work units, sorted by name *)
  rp_calls : (string * int) list;  (** per-function invocation counts *)
}

val replay :
  ?engine:Interp.Engine.tier -> ?config:Interp.Engine.config ->
  ?world:Mpi_sim.Runtime.world ->
  Ir.Types.program -> params:Spec.params -> replay
(** Execute a PIR program at one configuration through the Plain
    (shadow-free) engine — a clean measurement run on the same programs
    the tainted pipeline analyzes.  [engine] selects the execution tier
    (default {!Interp.Engine.default_tier}, the compiled one); both tiers
    are bit-identical, checked continuously by the [compile-identity]
    fuzz oracle.  Entry parameters are bound by name from [params]
    (truncated to int); ["p"] configures the MPI world size when the
    entry does not take it explicitly.
    @raise Invalid_argument when an entry parameter has no value.
    @raise Interp.Machine.Budget_exceeded / Interp.Machine.Runtime_error
    as the engine does. *)

val replay_work : replay -> string -> int
(** Synthetic-work units attributed to one function (0 if absent). *)

val overhead : run -> float
(** Relative instrumentation overhead (0.0 = none). *)

val kernel_measurement : run -> string -> kernel_measurement option

val kernel_time : run -> string -> float option
(** Measured per-invocation time, when observed. *)

val kernel_total : run -> string -> float option
(** Measured aggregate time, when observed. *)
