(** Distributed campaign sharding: partition an {!Experiment.design}
    across worker processes by deterministic coordinate hash, supervise
    the workers (wall-clock timeouts, restart-with-resume on death), and
    merge their checkpoint journals back into one campaign in global
    design order.

    The partition is a pure function of the coordinate — salted hash of
    the sorted parameter bindings and the repetition index, mod the
    shard count — so every process of the same binary computes the same
    ownership, no shard map ever needs to be exchanged, and the same
    [k/M] spec always names the same subset of the design.

    The merge holds the sharded story to the same bar as every layer
    below it: records are reassembled in {!Campaign.coordinates} order,
    headers are validated against the campaign identity line, restart
    duplicates are dropped (first completed record wins), torn trailing
    lines from killed workers are tolerated, and the resulting journal,
    report, metrics replay and event stream are bit-identical to a
    single fault-free shard's (the [shard-identity] fuzz oracle). *)

type t = { sh_index : int; sh_count : int }

let spec_of t = Printf.sprintf "%d/%d" t.sh_index t.sh_count

let of_spec s =
  let invalid () =
    Error
      (Printf.sprintf
         "bad shard spec %S: expected K/M with 0 <= K < M (e.g. --shard 0/3)"
         s)
  in
  match String.index_opt s '/' with
  | None -> invalid ()
  | Some i -> (
    let k = String.sub s 0 i in
    let m = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt k, int_of_string_opt m) with
    | Some k, Some m when m >= 1 && k >= 0 && k < m ->
      Ok { sh_index = k; sh_count = m }
    | _ -> invalid ())

(* The coordinate hash is salted so it cannot collide with the fault
   plan's draw (which hashes ("fault", params, rep)); parameters are
   sorted so the assignment is independent of grid axis order, exactly
   like the fault draw.  [Hashtbl.hash] is specified over the structure
   of its argument, so separate processes of the same binary agree. *)
let assign ~shards ~params ~rep =
  if shards < 1 then invalid_arg "Measure.Shard.assign: shards must be >= 1";
  abs (Hashtbl.hash ("shard", List.sort compare params, rep)) mod shards

let owns t ~params ~rep = assign ~shards:t.sh_count ~params ~rep = t.sh_index

let coordinates t design =
  List.filter
    (fun (params, rep) -> owns t ~params ~rep)
    (Campaign.coordinates design)

let journal_path ~journal k = Printf.sprintf "%s.shard%d" journal k

(* The shard.* vocabularies; doc/OBSERVABILITY.md lists exactly these
   (a drift test compares). *)
let counters =
  [
    ("shard.spawned", "worker processes spawned by the shard coordinator");
    ("shard.deaths", "workers that died, timed out, or stopped short");
    ("shard.restarts", "dead workers restarted on their journal with resume");
    ("shard.merged", "per-shard journals merged into one campaign");
  ]

let event_names =
  [
    ("shard.spawn", "the coordinator spawned a worker process for one shard");
    ("shard.death", "a worker died, timed out, or left its shard incomplete");
    ("shard.restart", "a dead worker was restarted to resume its journal");
    ("shard.merge", "per-shard journals were merged in global design order");
  ]

(* -- journal merge ---------------------------------------------------------- *)

type merge = {
  mg_records : Campaign.record list;
  mg_journals : int;
  mg_duplicates : int;
  mg_torn : int;
  mg_missing : (Spec.params * int) list;
}

let merge_journals ?metrics ?(events = Obs_events.disabled) ~mode
    ~expected_header ~design paths =
  let tbl = Hashtbl.create 256 in
  let dups = ref 0 in
  let torn = ref 0 in
  let ingest (r : Campaign.record) =
    let key = (r.Campaign.rc_params, r.Campaign.rc_rep) in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.replace tbl key r
    | Some (prev : Campaign.record) -> (
      (* A coordinate in two journals is a restart overlap.  First
         completed record wins: a completion may supersede an earlier
         abandonment (the retry lottery is deterministic per coordinate,
         so two completions are bit-identical anyway), never vice
         versa. *)
      incr dups;
      match (prev.Campaign.rc_outcome, r.Campaign.rc_outcome) with
      | Campaign.Abandoned _, Campaign.Completed _ -> Hashtbl.replace tbl key r
      | _ -> ())
  in
  let rec load = function
    | [] -> Ok ()
    | path :: rest -> (
      match Campaign.load_journal ~mode ~expected_header path with
      | Error e -> Error e
      | Ok (records, t) ->
        torn := !torn + t;
        List.iter ingest records;
        load rest)
  in
  match load paths with
  | Error e -> Error e
  | Ok () ->
    let coords = Campaign.coordinates design in
    let known = Hashtbl.create 256 in
    List.iter (fun c -> Hashtbl.replace known c ()) coords;
    let alien =
      Hashtbl.fold
        (fun key _ n -> if Hashtbl.mem known key then n else n + 1)
        tbl 0
    in
    if alien > 0 then
      Error
        (Printf.sprintf
           "shard merge: %d record(s) name coordinates outside the campaign \
            design"
           alien)
    else begin
      let records, missing =
        List.fold_left
          (fun (rs, ms) c ->
            match Hashtbl.find_opt tbl c with
            | Some r -> (r :: rs, ms)
            | None -> (rs, c :: ms))
          ([], []) coords
      in
      let records = List.rev records in
      let missing = List.rev missing in
      (* Replay the per-record effects in design order, exactly as the
         serial executor emits them — the merged registry and event
         stream continue where a single-process campaign's would. *)
      (match metrics with
      | None -> ()
      | Some reg ->
        List.iter (Campaign.replay_metrics reg) records;
        Obs_metrics.add
          (Obs_metrics.counter reg "campaign.shard_dup")
          !dups;
        if !torn > 0 then
          Obs_metrics.add
            (Obs_metrics.counter reg "campaign.journal_torn")
            !torn;
        Obs_metrics.add
          (Obs_metrics.counter reg "shard.merged")
          (List.length paths));
      List.iter (Campaign.record_events events) records;
      if Obs_events.enabled events then
        Obs_events.emit events ~severity:Obs_events.Debug ~component:"shard"
          ~fields:
            [
              ("journals", Obs_events.Int (List.length paths));
              ("records", Obs_events.Int (List.length records));
              ("duplicates", Obs_events.Int !dups);
              ("torn", Obs_events.Int !torn);
              ("missing", Obs_events.Int (List.length missing));
            ]
          "shard.merge";
      Ok
        {
          mg_records = records;
          mg_journals = List.length paths;
          mg_duplicates = !dups;
          mg_torn = !torn;
          mg_missing = missing;
        }
    end

let write_journal ~header ~records path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc (Campaign.record_to_line r);
          output_char oc '\n')
        records)

(* -- worker supervision ----------------------------------------------------- *)

(* A shard is complete when its journal parses against the campaign
   header and covers every coordinate the shard owns.  A worker that
   exits cleanly but short (an injected --max-runs kill, an interrupted
   wave) is treated exactly like a crash: death, then restart with
   resume. *)
let complete ~mode ~expected_header ~design shard path =
  Sys.file_exists path
  && (match Campaign.load_journal ~mode ~expected_header path with
     | Error _ -> false
     | Ok (records, _) ->
       let have = Hashtbl.create 64 in
       List.iter
         (fun (r : Campaign.record) ->
           Hashtbl.replace have (r.Campaign.rc_params, r.Campaign.rc_rep) ())
         records;
       List.for_all
         (fun c -> Hashtbl.mem have c)
         (coordinates shard design))

type wstate =
  | Running of { pid : int; deadline : float }
  | Done
  | Failed of string

let run_workers ?metrics ?(events = Obs_events.disabled) ~mode
    ~expected_header ~design ~shards ~journal ~timeout_s ~max_restarts ~argv
    () =
  let counter name =
    Option.map (fun reg -> Obs_metrics.counter reg name) metrics
  in
  let bump ?(n = 1) c =
    match c with None -> () | Some c -> Obs_metrics.add c n
  in
  let spawned_c = counter "shard.spawned" in
  let deaths_c = counter "shard.deaths" in
  let restarts_c = counter "shard.restarts" in
  let emit ?severity name k extra =
    if Obs_events.enabled events then
      Obs_events.emit events ?severity ~component:"shard"
        ~fields:
          (( "shard",
             Obs_events.Str (spec_of { sh_index = k; sh_count = shards }) )
          :: extra)
        name
  in
  let states = Array.make shards Done in
  let restarts = Array.make shards 0 in
  let spawn k ~resume =
    let path = journal_path ~journal k in
    let av = argv ~shard:{ sh_index = k; sh_count = shards } ~journal:path ~resume in
    (* Worker stdout/stderr go to a per-shard log (appended across
       restarts): the coordinator's own report stays clean and the logs
       survive as artifacts for a post-mortem. *)
    let log =
      Unix.openfile (path ^ ".log")
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    let pid =
      Fun.protect
        ~finally:(fun () -> Unix.close log)
        (fun () -> Unix.create_process av.(0) av Unix.stdin log log)
    in
    bump spawned_c;
    emit "shard.spawn" k
      [ ("pid", Obs_events.Int pid); ("resume", Obs_events.Bool resume) ];
    states.(k) <- Running { pid; deadline = Unix.gettimeofday () +. timeout_s }
  in
  let death k ~reason =
    bump deaths_c;
    emit ~severity:Obs_events.Warn "shard.death" k
      [ ("reason", Obs_events.Str reason) ];
    if restarts.(k) >= max_restarts then
      states.(k) <-
        Failed
          (Printf.sprintf "shard %d/%d %s after %d restart(s)" k shards reason
             restarts.(k))
    else begin
      restarts.(k) <- restarts.(k) + 1;
      bump restarts_c;
      emit "shard.restart" k
        [ ("attempt", Obs_events.Int restarts.(k)) ];
      spawn k ~resume:true
    end
  in
  let check k =
    match states.(k) with
    | Done | Failed _ -> ()
    | Running { pid; deadline } -> (
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (* Past the wall-clock budget: kill, reap, and treat as a
             death (the journal keeps everything flushed so far). *)
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          death k ~reason:(Printf.sprintf "timed out after %.0fs" timeout_s)
        end
      | _, status ->
        if complete ~mode ~expected_header ~design
             { sh_index = k; sh_count = shards }
             (journal_path ~journal k)
        then states.(k) <- Done
        else
          death k
            ~reason:
              (match status with
              | Unix.WEXITED 0 -> "exited with an incomplete shard"
              | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
              | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s))
  in
  for k = 0 to shards - 1 do
    spawn k ~resume:false
  done;
  let running () =
    Array.exists (function Running _ -> true | _ -> false) states
  in
  while running () do
    for k = 0 to shards - 1 do
      check k
    done;
    if running () then Unix.sleepf 0.05
  done;
  let failures =
    Array.to_list states
    |> List.filter_map (function Failed msg -> Some msg | _ -> None)
  in
  match failures with
  | [] -> Ok ()
  | msg :: _ -> Error msg
