(** Regression-aware bench reporting: compare [BENCH_<exp>.json] files
    against committed baselines with a relative tolerance, and merge
    bench results, a campaign journal, and a metrics-snapshot JSON into
    one markdown report.

    Baselines are ordinary [BENCH_<exp>.json] files checked into
    [bench/baselines/].  Comparison flattens both documents into dotted
    leaf paths ([fit.error], [kernels[2].total]); numbers must agree
    within the tolerance (relative, with an absolute floor near zero),
    strings and booleans must agree exactly, and a baseline key missing
    from the actual file is a failure.  Extra keys in the actual file
    are ignored, so experiments may grow new headline numbers without
    invalidating old baselines.  A baseline file may override the
    tolerance for itself via a top-level ["tolerance"] key. *)

let default_tolerance = 0.05

(* Keys that describe the comparison rather than participate in it. *)
let meta_key = function "experiment" | "tolerance" -> true | _ -> false

(* -- flattening ------------------------------------------------------------ *)

(** Leaves of a JSON document as (dotted path, scalar) pairs, in document
    order.  Lists index as [path[i]]. *)
let flatten j =
  let acc = ref [] in
  let rec go prefix = function
    | Jsonio.Obj fields ->
      List.iter
        (fun (k, v) ->
          let p = if prefix = "" then k else prefix ^ "." ^ k in
          go p v)
        fields
    | Jsonio.List items ->
      List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v) items
    | leaf -> acc := (prefix, leaf) :: !acc
  in
  go "" j;
  List.rev !acc

let leaf_repr = function
  | Jsonio.Null -> "null"
  | Jsonio.Bool b -> string_of_bool b
  | Jsonio.Int i -> string_of_int i
  | Jsonio.Float f -> Printf.sprintf "%.6g" f
  | Jsonio.Str s -> s
  | (Jsonio.List _ | Jsonio.Obj _) as j -> Jsonio.to_string j

(* -- comparison ------------------------------------------------------------ *)

type mismatch = {
  mm_path : string;
  mm_expected : string;
  mm_actual : string;   (** ["<missing>"] when the key is absent *)
  mm_reason : string;
}

let close ~tolerance a b =
  if Float.is_nan a && Float.is_nan b then true
  else
    let scale = Float.max (Float.abs a) (Float.abs b) in
    Float.abs (a -. b) <= Float.max 1e-12 (tolerance *. scale)

let num = function
  | Jsonio.Int i -> Some (float_of_int i)
  | Jsonio.Float f -> Some f
  | _ -> None

(** Mismatches of [actual] against [expected], in baseline key order.
    Keys present only in [actual] are not mismatches. *)
let compare_values ~tolerance ~expected ~actual =
  let actual_leaves = flatten actual in
  List.filter_map
    (fun (path, exp_leaf) ->
      if meta_key path then None
      else
        let mk reason actual_repr =
          Some
            {
              mm_path = path;
              mm_expected = leaf_repr exp_leaf;
              mm_actual = actual_repr;
              mm_reason = reason;
            }
        in
        match List.assoc_opt path actual_leaves with
        | None -> mk "missing from actual" "<missing>"
        | Some act_leaf -> (
          match (num exp_leaf, num act_leaf) with
          | Some e, Some a ->
            if close ~tolerance e a then None
            else
              mk
                (Printf.sprintf "outside %.3g relative tolerance" tolerance)
                (leaf_repr act_leaf)
          | _ ->
            if exp_leaf = act_leaf then None
            else mk "value differs" (leaf_repr act_leaf)))
    (flatten expected)

(* -- file-level checks ----------------------------------------------------- *)

type check = {
  ck_name : string;        (** experiment name (from the baseline) *)
  ck_baseline : string;    (** baseline path *)
  ck_tolerance : float;
  ck_mismatches : mismatch list;  (** empty = pass *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Jsonio.parse (String.trim (read_file path)) with
  | Ok j -> Ok j
  | Error e -> Error (path ^ ": " ^ e)

let check_baseline ?(tolerance = default_tolerance) ~baseline ~actual () =
  match parse_file baseline with
  | Error e -> Error e
  | Ok base ->
    let tolerance =
      match Option.bind (Jsonio.member "tolerance" base) Jsonio.to_float with
      | Some t -> t
      | None -> tolerance
    in
    let name =
      match Option.bind (Jsonio.member "experiment" base) Jsonio.to_str with
      | Some n -> n
      | None -> Filename.basename baseline
    in
    if not (Sys.file_exists actual) then
      Ok
        {
          ck_name = name;
          ck_baseline = baseline;
          ck_tolerance = tolerance;
          ck_mismatches =
            [
              {
                mm_path = "<file>";
                mm_expected = Filename.basename actual;
                mm_actual = "<missing>";
                mm_reason = "actual results file not found (run the \
                             experiment first)";
              };
            ];
        }
    else
      Result.map
        (fun act ->
          {
            ck_name = name;
            ck_baseline = baseline;
            ck_tolerance = tolerance;
            ck_mismatches = compare_values ~tolerance ~expected:base ~actual:act;
          })
        (parse_file actual)

(** Check every [BENCH_*.json] baseline in [dir] against the file of the
    same name in [actual_dir], in filename order. *)
let check_dir ?tolerance ~dir ~actual_dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (dir ^ ": no such baseline directory")
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if files = [] then Error (dir ^ ": no BENCH_*.json baselines")
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
          match
            check_baseline ?tolerance ~baseline:(Filename.concat dir f)
              ~actual:(Filename.concat actual_dir f) ()
          with
          | Ok c -> go (c :: acc) rest
          | Error e -> Error e)
      in
      go [] files

let passed checks = List.for_all (fun c -> c.ck_mismatches = []) checks

let pp_checks ppf checks =
  List.iter
    (fun c ->
      if c.ck_mismatches = [] then
        Fmt.pf ppf "  PASS %-12s (tolerance %.3g)@." c.ck_name c.ck_tolerance
      else begin
        Fmt.pf ppf "  FAIL %-12s (tolerance %.3g)@." c.ck_name c.ck_tolerance;
        List.iter
          (fun m ->
            Fmt.pf ppf "       %s: expected %s, got %s (%s)@." m.mm_path
              m.mm_expected m.mm_actual m.mm_reason)
          c.ck_mismatches
      end)
    checks

(* -- markdown report ------------------------------------------------------- *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* One bench-results section: flattened leaves as a table, with baseline
   and delta columns when a baseline value exists for the path. *)
let render_bench buf ~baseline file j =
  let name =
    match Option.bind (Jsonio.member "experiment" j) Jsonio.to_str with
    | Some n -> n
    | None -> Filename.basename file
  in
  let base_leaves =
    match baseline with
    | Some b -> flatten b
    | None -> []
  in
  buf_addf buf "## %s\n\n" name;
  if base_leaves = [] then begin
    buf_addf buf "| metric | value |\n|---|---|\n";
    List.iter
      (fun (p, v) ->
        if not (meta_key p) then buf_addf buf "| `%s` | %s |\n" p (leaf_repr v))
      (flatten j)
  end
  else begin
    buf_addf buf "| metric | value | baseline | delta |\n|---|---|---|---|\n";
    List.iter
      (fun (p, v) ->
        if not (meta_key p) then
          let base = List.assoc_opt p base_leaves in
          let delta =
            match (Option.bind base num, num v) with
            | Some b, Some a when b <> 0. ->
              Printf.sprintf "%+.2f%%" (100. *. (a -. b) /. Float.abs b)
            | Some b, Some a when a = b -> "+0.00%"
            | _ -> ""
          in
          buf_addf buf "| `%s` | %s | %s | %s |\n" p (leaf_repr v)
            (match base with Some b -> leaf_repr b | None -> "")
            delta)
      (flatten j)
  end;
  Buffer.add_char buf '\n'

(* Campaign-journal summary, computed from the raw JSON lines (no
   dependence on the run mode: only attempt/fault/outcome fields are
   read). *)
let render_journal buf path =
  match String.split_on_char '\n' (read_file path) with
  | [] -> ()
  | header :: body ->
    buf_addf buf "## campaign journal `%s`\n\n" (Filename.basename path);
    (match Jsonio.parse (String.trim header) with
    | Ok h ->
      (match Option.bind (Jsonio.member "app" h) Jsonio.to_str with
      | Some app -> buf_addf buf "app: `%s`" app
      | None -> ());
      (match Option.bind (Jsonio.member "faults" h) Jsonio.to_str with
      | Some f when f <> "" -> buf_addf buf ", faults: `%s`" f
      | _ -> ());
      buf_addf buf "\n\n"
    | Error _ -> ());
    let records = ref 0 and completed = ref 0 and abandoned = ref 0 in
    let attempts = ref 0 and wasted = ref 0. and backoff = ref 0. in
    let faults = Hashtbl.create 4 in
    List.iter
      (fun line ->
        if String.trim line <> "" then
          match Jsonio.parse (String.trim line) with
          | Error _ -> ()
          | Ok j -> (
            match Option.bind (Jsonio.member "outcome" j) Jsonio.to_str with
            | None -> ()
            | Some outcome ->
              incr records;
              if outcome = "completed" then incr completed else incr abandoned;
              (match
                 Option.bind (Jsonio.member "attempts" j) Jsonio.to_int
               with
              | Some a -> attempts := !attempts + a
              | None -> ());
              (match
                 Option.bind (Jsonio.member "wasted_s" j) Jsonio.to_float
               with
              | Some w -> wasted := !wasted +. w
              | None -> ());
              (match
                 Option.bind (Jsonio.member "backoff_s" j) Jsonio.to_float
               with
              | Some b -> backoff := !backoff +. b
              | None -> ());
              (match Option.bind (Jsonio.member "faults" j) Jsonio.to_list with
              | Some fs ->
                List.iter
                  (fun f ->
                    match Jsonio.to_str f with
                    | Some k ->
                      Hashtbl.replace faults k
                        (1 + Option.value ~default:0 (Hashtbl.find_opt faults k))
                    | None -> ())
                  fs
              | None -> ())))
      body;
    buf_addf buf "| records | completed | abandoned | attempts | wasted s | backoff s |\n";
    buf_addf buf "|---|---|---|---|---|---|\n";
    buf_addf buf "| %d | %d | %d | %d | %.3f | %.3f |\n\n" !records !completed
      !abandoned !attempts !wasted !backoff;
    let fs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) faults [] in
    if fs <> [] then begin
      buf_addf buf "faults: %s\n\n"
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "`%s`=%d" k v)
              (List.sort compare fs)))
    end

(* Metrics-snapshot section from a `stats --json` file: counters and
   gauges as tables, histograms with their percentile summary. *)
let render_stats buf path =
  match parse_file path with
  | Error e -> buf_addf buf "## metrics snapshot\n\n(unreadable: %s)\n\n" e
  | Ok j ->
    buf_addf buf "## metrics snapshot `%s`\n\n" (Filename.basename path);
    let metrics =
      match Jsonio.member "metrics" j with Some m -> m | None -> j
    in
    let table title key =
      match Jsonio.member key metrics with
      | Some (Jsonio.Obj fields) when fields <> [] ->
        buf_addf buf "### %s\n\n| name | value |\n|---|---|\n" title;
        List.iter
          (fun (n, v) -> buf_addf buf "| `%s` | %s |\n" n (leaf_repr v))
          fields;
        Buffer.add_char buf '\n'
      | _ -> ()
    in
    table "counters" "counters";
    table "gauges" "gauges";
    (match Jsonio.member "histograms" metrics with
    | Some (Jsonio.Obj hists) when hists <> [] ->
      buf_addf buf
        "### histograms\n\n| name | n | sum | min | p50 | p95 | p99 | max |\n";
      buf_addf buf "|---|---|---|---|---|---|---|---|\n";
      List.iter
        (fun (n, h) ->
          let fld k =
            match Option.bind (Jsonio.member k h) num with
            | Some f -> Printf.sprintf "%.4g" f
            | None -> ""
          in
          buf_addf buf "| `%s` | %s | %s | %s | %s | %s | %s | %s |\n" n
            (fld "count") (fld "sum") (fld "min") (fld "p50") (fld "p95")
            (fld "p99") (fld "max"))
        hists;
      Buffer.add_char buf '\n'
    | _ -> ())

(** The merged markdown report.  [bench_files] are [BENCH_*.json] result
    files (rendered in the given order); [baselines_dir] adds baseline
    and delta columns where a same-named baseline exists; [journal] and
    [stats] append campaign-journal and metrics-snapshot sections. *)
let report ?baselines_dir ?journal ?stats ~bench_files () =
  let buf = Buffer.create 4096 in
  buf_addf buf "# perf-taint bench report\n\n";
  if bench_files = [] && journal = None && stats = None then
    buf_addf buf "(no inputs)\n";
  List.iter
    (fun file ->
      match parse_file file with
      | Error e -> buf_addf buf "## %s\n\n(unreadable: %s)\n\n" file e
      | Ok j ->
        let baseline =
          match baselines_dir with
          | None -> None
          | Some dir -> (
            let b = Filename.concat dir (Filename.basename file) in
            if Sys.file_exists b then
              match parse_file b with Ok bj -> Some bj | Error _ -> None
            else None)
        in
        render_bench buf ~baseline file j)
    bench_files;
  (match journal with
  | Some path when Sys.file_exists path -> render_journal buf path
  | Some path -> buf_addf buf "## campaign journal\n\n(missing: %s)\n\n" path
  | None -> ());
  (match stats with Some path -> render_stats buf path | None -> ());
  Buffer.contents buf
