(** Resilient measurement campaigns: an {!Experiment.design} executed
    under a {!Fault.plan} with retries, exponential backoff, a JSON-lines
    checkpoint journal, and a campaign report.

    Under {!Fault.none} the executor performs exactly the
    [Simulator.measure] calls of {!Experiment.run_design}, in the same
    order with the same arguments — the produced run list is
    bit-identical (a fuzz oracle enforces this). *)

type retry = {
  rt_max_attempts : int;     (** total attempts per coordinate, >= 1 *)
  rt_backoff_s : float;      (** backoff before the first retry, seconds *)
  rt_backoff_mult : float;   (** exponential backoff multiplier *)
  rt_hang_timeout_s : float; (** wall time a hung run burns before the kill *)
}

val default_retry : retry
(** 3 attempts, 30 s initial backoff doubling, 300 s hang timeout. *)

type outcome =
  | Completed of Simulator.run
  | Abandoned of string  (** fault kind that exhausted the attempts *)

type record = {
  rc_params : Spec.params;
  rc_rep : int;
  rc_attempts : int;        (** attempts consumed, >= 1 *)
  rc_faults : string list;  (** fault kind per faulty attempt, in order *)
  rc_wasted_s : float;      (** wall seconds burned by failed attempts *)
  rc_backoff_s : float;     (** wall seconds spent backing off *)
  rc_outcome : outcome;
}

type report = {
  cp_records : record list;       (** design order *)
  cp_runs : Simulator.run list;   (** completed runs only, design order *)
  cp_attempts : int;
  cp_retries : int;
  cp_faults : (string * int) list;  (** per {!Fault.kind_names}, all four *)
  cp_abandoned : int;
  cp_resumed : int;               (** coordinates restored from a journal *)
  cp_interrupted : bool;          (** stopped early by [limit] *)
  cp_wasted_core_hours : float;
  cp_backoff_core_hours : float;
}

val completed_run : record -> Simulator.run option

val counters : (string * string) list
(** The [campaign.*] counter vocabulary (name, meaning) — kept in sync
    with doc/OBSERVABILITY.md by a drift test. *)

val event_names : (string * string) list
(** The [campaign.*] structured-event vocabulary (name, meaning) — kept
    in sync with doc/OBSERVABILITY.md by a drift test. *)

val coordinates : Experiment.design -> (Spec.params * int) list
(** The design's run coordinates in execution order (configurations in
    grid order, repetitions innermost) — {!Experiment.run_design}'s
    iteration order. *)

val summarize : resumed:int -> interrupted:bool -> record list -> report
(** Roll a record list (in design order) up into a report — the same
    aggregation {!run} performs on its own records.  The shard merge
    uses this to report on records reassembled from worker journals. *)

val replay_metrics : Obs_metrics.t -> record -> unit
(** Re-derive the [campaign.*] counter bumps of an already-finished
    record: [rc_attempts] attempts, one retry per non-final attempt, one
    fault bump per [rc_faults] entry, one abandonment if abandoned —
    exactly what executing the coordinate would have bumped. *)

val record_events : Obs_events.sink -> record -> unit
(** Emit the [campaign.fault] events and the [campaign.record] event of
    a finished record, exactly as the executor does — replaying merged
    records through this in design order reproduces the serial stream. *)

val run :
  ?pool:Par.Pool.t ->
  ?metrics:Obs_metrics.t ->
  ?trace:Obs_trace.sink ->
  ?events:Obs_events.sink ->
  ?plan:Fault.plan ->
  ?retry:retry ->
  ?hang_budget:int ->
  ?done_:record list ->
  ?keep:(Spec.params -> int -> bool) ->
  ?limit:int ->
  ?on_record:(record -> unit) ->
  Spec.app -> Mpi_sim.Machine.t -> Experiment.design -> report
(** Execute the design under the fault plan.  [done_] records are
    restored verbatim instead of re-executed (checkpoint resume);
    [keep params rep] narrows the walk to the coordinates it accepts
    (shard workers pass {!Shard.owns}; the default keeps everything);
    [limit] stops after that many {e newly executed} coordinates and
    marks the report interrupted; [on_record] fires after each new
    coordinate finishes (journal writers hook here).  Hung runs are
    killed via [Interp.Machine.Budget_exceeded hang_budget], raised and
    caught inside the retry loop.

    [events] receives the structured {!event_names} stream.  Record,
    fault and resume events are derived from each finished record and
    emitted on the submitting domain in design order, so the stream is
    deterministic; the serial and parallel paths differ only in the
    parallel-only [campaign.wave] events.

    [pool] executes coordinates on a domain pool in waves.  Records,
    journals and metric registries are bit-identical to serial: results
    are collected in design order, every shared effect ([on_record],
    instrument bumps, metric merges) happens on the submitting domain in
    design order, and faults/noise are deterministic per coordinate.
    [limit]/resume semantics are unchanged; a kill loses at most the
    in-flight wave (roughly [4 * jobs] coordinates) instead of one.
    @raise Invalid_argument naming the offending [retry] field when
    [rt_max_attempts < 1], [rt_backoff_s < 0], [rt_backoff_mult < 1],
    or [rt_hang_timeout_s <= 0] (NaN fields are rejected too). *)

(** {1 Checkpoint journal} *)

val header_line :
  app_name:string -> plan:Fault.plan -> retry:retry ->
  Experiment.design -> string
(** The identity line pinning app, design, fault plan, and retry policy;
    a journal may only resume a campaign with an equal header. *)

val record_to_line : record -> string
(** One JSON object on one line; floats printed exactly (["%.17g"]). *)

val run_to_line : Simulator.run -> string
(** One completed run as a deterministic JSON line (the CLI's [--dump]
    format) — byte-identical runs produce byte-identical lines. *)

val record_of_line :
  mode:Instrument.mode -> string -> (record, string) result

val load_journal :
  mode:Instrument.mode -> expected_header:string -> string ->
  (record list * int, string) result
(** Parse a journal file, validating its header.  Returns the records
    plus the number of torn trailing lines skipped (0 or 1): a parse
    failure on the last nonempty line is the partial flush of a killed
    writer and is tolerated; a failure on any earlier line is
    corruption and stays an [Error]. *)

val run_journaled :
  ?pool:Par.Pool.t ->
  ?metrics:Obs_metrics.t ->
  ?trace:Obs_trace.sink ->
  ?events:Obs_events.sink ->
  ?plan:Fault.plan ->
  ?retry:retry ->
  ?hang_budget:int ->
  ?keep:(Spec.params -> int -> bool) ->
  ?limit:int ->
  journal:string -> resume:bool ->
  Spec.app -> Mpi_sim.Machine.t -> Experiment.design -> report
(** {!run} with the journal wired up: when [resume] is set and the
    journal exists with a matching header, finished coordinates are
    restored and new records appended; otherwise the journal is
    (re)created.  Each record is flushed as it completes, so a killed
    campaign loses at most the in-flight coordinate.  A torn trailing
    line is cut off on resume (the journal is rewritten to its clean
    prefix, its coordinate re-executed), counted in the
    [campaign.journal_torn] counter and reported as a
    [campaign.journal_torn] event.  [events] additionally carries a
    [campaign.checkpoint] event per flushed record.
    @raise Failure when resuming from an unreadable or mismatched
    journal. *)

val pp_report : report Fmt.t
