(** Minimal JSON values with an exact-round-trip writer and a parser —
    just enough for the campaign checkpoint journal (the toolchain has
    no JSON library).  Floats print via ["%.17g"], so every IEEE double
    survives [parse (to_string v)] bit-for-bit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line, no insignificant whitespace. *)

val parse : string -> (t, string) result
(** Accepts what {!to_string} emits (plus whitespace); rejects trailing
    input.  Unicode escapes above [0x7f] are unsupported. *)

val member : string -> t -> t option
val to_float : t -> float option
(** Accepts [Float] and [Int]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
