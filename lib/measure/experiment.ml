(** Experiment design and execution: parameter grids, repetitions, and the
    bookkeeping the paper reports — number of required runs and core-hour
    cost (A1/A3).  Converts collections of simulated runs into modeling
    datasets for Extra-P. *)

type design = {
  grid : (string * float list) list;  (** full-factorial parameter values *)
  reps : int;
  mode : Instrument.mode;
  sigma : float;   (** relative measurement noise level *)
  seed : int;
}

let default_design =
  { grid = []; reps = 5; mode = Instrument.Full; sigma = 0.02; seed = 42 }

(** Cartesian product of a parameter grid: every combination. *)
let grid_configs grid =
  List.fold_left
    (fun acc (name, values) ->
      List.concat_map
        (fun partial -> List.map (fun v -> partial @ [ (name, v) ]) values)
        acc)
    [ [] ] grid

let configs design = grid_configs design.grid

let run_design ?pool ?metrics app machine design =
  (match metrics with
  | None -> ()
  | Some reg -> Obs_metrics.incr (Obs_metrics.counter reg "sim.campaigns"));
  let coords =
    List.concat_map
      (fun params -> List.init design.reps (fun rep -> (params, rep)))
      (configs design)
  in
  let measure ?metrics (params, rep) =
    Simulator.measure ~sigma:design.sigma ~seed:design.seed ~rep ?metrics app
      machine ~params ~mode:design.mode
  in
  match pool with
  | Some p when Par.Pool.jobs p > 1 ->
    (* Each coordinate measures into a private registry; the submitter
       merges them back in design order, so metric float sums accumulate
       in exactly the serial order. [Simulator.measure] is deterministic
       in its arguments, so the runs themselves are bit-identical. *)
    let results =
      Par.Pool.map p
        (fun coord ->
          let local = Option.map (fun _ -> Obs_metrics.create ()) metrics in
          (measure ?metrics:local coord, local))
        coords
    in
    List.map
      (fun (run, local) ->
        (match (metrics, local) with
        | Some reg, Some l -> Obs_metrics.merge ~into:reg l
        | _ -> ());
        run)
      results
  | _ -> List.map (fun coord -> measure ?metrics coord) coords

(** Clean-replay campaign: execute a PIR program at every grid
    configuration through the Plain engine.  Replays are deterministic,
    so there are no repetitions — one run per configuration, the paper's
    "many clean measurement runs" against actual programs rather than the
    analytic spec. *)
let replay_runs ?engine ?config ?world program ~grid =
  List.map
    (fun params -> Simulator.replay ?engine ?config ?world program ~params)
    (grid_configs grid)

(** Modeling dataset for one kernel: one point per configuration, one
    repetition per run.  Configurations where the kernel was not observed
    (filtered out by the instrumentation mode) produce no points — the
    false-negative effect of bad filters. *)
let kernel_dataset runs ~params ~kernel =
  let tbl : (Spec.params, float list) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (r : Simulator.run) ->
      match Simulator.kernel_time r kernel with
      | None -> ()
      | Some t ->
        let key = List.filter (fun (n, _) -> List.mem n params) r.rn_params in
        (match Hashtbl.find_opt tbl key with
        | None ->
          order := key :: !order;
          Hashtbl.replace tbl key [ t ]
        | Some ts -> Hashtbl.replace tbl key (t :: ts)))
    runs;
  Model.Dataset.of_rows params
    (List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order)

(** Dataset of total application wall time. *)
let total_dataset runs ~params =
  let tbl : (Spec.params, float list) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (r : Simulator.run) ->
      let key = List.filter (fun (n, _) -> List.mem n params) r.rn_params in
      match Hashtbl.find_opt tbl key with
      | None ->
        order := key :: !order;
        Hashtbl.replace tbl key [ r.rn_total ]
      | Some ts -> Hashtbl.replace tbl key (r.rn_total :: ts))
    runs;
  Model.Dataset.of_rows params
    (List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order)

(** Aggregate cost of an experiment campaign in core-hours: each run
    occupies p cores for its (instrumented) wall time. *)
let core_hours runs =
  List.fold_left
    (fun acc (r : Simulator.run) ->
      let p = float_of_int (Simulator.ranks_of r.rn_params) in
      acc +. (r.rn_total *. p /. 3600.))
    0. runs

let run_count = List.length
