(** Resilient measurement campaigns: execute an {!Experiment.design}
    under a {!Fault.plan} with retries, exponential backoff, a
    JSON-lines checkpoint journal, and a post-mortem report.

    The executor walks the design's run coordinates in exactly the order
    {!Experiment.run_design} does (configurations in grid order,
    repetitions innermost).  Per coordinate it loops attempts: a crash
    wastes half the run's wall time and is retried after a backoff; a
    hang burns the configured timeout before the harness kills it (the
    kill is modelled as the engine's [Budget_exceeded], raised and caught
    in the retry loop); stragglers and corrupt timers *complete* with
    inflated durations, which is precisely why the fitting layer needs
    outlier rejection — the campaign cannot tell a slow node from a slow
    configuration.  Under the empty fault plan the executor collapses to
    the same [Simulator.measure] calls with the same arguments as
    [run_design], so a fault-free campaign is bit-identical to the plain
    experiment (a fuzz oracle holds us to that).

    The journal makes campaigns restartable: one header line pinning the
    campaign identity (app, design, fault plan, retry policy), then one
    JSON object per finished coordinate.  Resuming replays finished
    records from the journal instead of re-measuring, then continues
    with the live executor — and because faults and noise are both
    deterministic in the coordinates, the resumed campaign's dataset is
    bit-identical to an uninterrupted one. *)

(* -- retry policy ---------------------------------------------------------- *)

type retry = {
  rt_max_attempts : int;     (** total attempts per coordinate, >= 1 *)
  rt_backoff_s : float;      (** backoff before the first retry, seconds *)
  rt_backoff_mult : float;   (** exponential backoff multiplier *)
  rt_hang_timeout_s : float; (** wall time a hung run burns before the kill *)
}

let default_retry =
  { rt_max_attempts = 3; rt_backoff_s = 30.; rt_backoff_mult = 2.;
    rt_hang_timeout_s = 300. }

(* -- per-coordinate records ------------------------------------------------ *)

type outcome =
  | Completed of Simulator.run
  | Abandoned of string  (** fault kind that exhausted the attempts *)

type record = {
  rc_params : Spec.params;
  rc_rep : int;
  rc_attempts : int;        (** attempts consumed, >= 1 *)
  rc_faults : string list;  (** fault kind per attempt that was hit, in order *)
  rc_wasted_s : float;      (** wall seconds burned by failed attempts *)
  rc_backoff_s : float;     (** wall seconds spent backing off *)
  rc_outcome : outcome;
}

type report = {
  cp_records : record list;       (** design order *)
  cp_runs : Simulator.run list;   (** completed runs only, design order *)
  cp_attempts : int;
  cp_retries : int;
  cp_faults : (string * int) list;  (** per {!Fault.kind_names}, all four *)
  cp_abandoned : int;
  cp_resumed : int;               (** coordinates restored from a journal *)
  cp_interrupted : bool;          (** stopped early by [limit] *)
  cp_wasted_core_hours : float;
  cp_backoff_core_hours : float;
}

let completed_run r =
  match r.rc_outcome with Completed run -> Some run | Abandoned _ -> None

(* The campaign.* metrics vocabulary; doc/OBSERVABILITY.md lists exactly
   these (a drift test compares). *)
let counters =
  [
    ("campaign.attempts", "measurement attempts executed, retries included");
    ("campaign.retries", "failed attempts that were retried after a backoff");
    ("campaign.abandoned", "run coordinates given up after exhausting attempts");
    ("campaign.resumed", "run coordinates restored from a checkpoint journal");
    ("campaign.faults.crash", "injected crashes (run died, no data)");
    ("campaign.faults.hang", "injected hangs killed by the step-budget timeout");
    ("campaign.faults.straggler", "runs kept with straggler-inflated durations");
    ("campaign.faults.corrupt", "runs kept with corrupted outlier durations");
    ("campaign.journal_torn", "torn trailing journal lines skipped on load");
    ("campaign.shard_dup", "duplicate coordinates dropped by the shard merge");
  ]

(* The campaign.* event vocabulary (structured JSON-lines stream);
   doc/OBSERVABILITY.md lists exactly these (a drift test compares). *)
let event_names =
  [
    ("campaign.record", "a run coordinate finished: params, rep, attempts, outcome");
    ("campaign.fault", "an injected fault hit one attempt of a coordinate");
    ("campaign.resume", "a coordinate was restored from the checkpoint journal");
    ("campaign.wave", "a wave of fresh coordinates was dispatched to the pool");
    ("campaign.checkpoint", "a finished record was flushed to the journal");
    ("campaign.journal_torn", "a torn trailing journal line was skipped on load");
  ]

(* -- executor -------------------------------------------------------------- *)

let coordinates design =
  List.concat_map
    (fun params -> List.init design.Experiment.reps (fun rep -> (params, rep)))
    (Experiment.configs design)

let scale_run factor (r : Simulator.run) =
  {
    r with
    Simulator.rn_kernels =
      List.map
        (fun (km : Simulator.kernel_measurement) ->
          {
            km with
            Simulator.km_per_call = km.Simulator.km_per_call *. factor;
            km_total = km.Simulator.km_total *. factor;
          })
        r.Simulator.rn_kernels;
    rn_total = r.Simulator.rn_total *. factor;
  }

let core_hours_of ~params seconds =
  seconds *. float_of_int (Simulator.ranks_of params) /. 3600.

type instruments = {
  i_attempts : Obs_metrics.counter;
  i_retries : Obs_metrics.counter;
  i_abandoned : Obs_metrics.counter;
  i_resumed : Obs_metrics.counter;
  i_faults : (string * Obs_metrics.counter) list;
}

let instruments_of = function
  | None -> None
  | Some reg ->
    (* Intern the journal/merge counters too, so every campaign exposes
       the full [counters] vocabulary (at zero when nothing tore and
       nothing was deduplicated). *)
    ignore (Obs_metrics.counter reg "campaign.journal_torn");
    ignore (Obs_metrics.counter reg "campaign.shard_dup");
    Some
      {
        i_attempts = Obs_metrics.counter reg "campaign.attempts";
        i_retries = Obs_metrics.counter reg "campaign.retries";
        i_abandoned = Obs_metrics.counter reg "campaign.abandoned";
        i_resumed = Obs_metrics.counter reg "campaign.resumed";
        i_faults =
          List.map
            (fun k -> (k, Obs_metrics.counter reg ("campaign.faults." ^ k)))
            Fault.kind_names;
      }

let bump inst f = match inst with None -> () | Some i -> Obs_metrics.incr (f i)

let bump_fault inst kind =
  match inst with
  | None -> ()
  | Some i -> Obs_metrics.incr (List.assoc (Fault.kind_name kind) i.i_faults)

(* One coordinate under the retry loop.  The measurement itself is only
   performed on attempts the fault plan lets through; failed attempts
   probe the run's would-be duration (no metrics — the probe is costing,
   not measuring) to charge wasted core-hours. *)
let execute_coordinate ?metrics ~trace ~inst ~plan ~retry ~hang_budget app
    machine design ~params ~rep =
  let fault = Fault.at plan ~params ~rep in
  let probe_total =
    lazy
      (Simulator.measure ~sigma:design.Experiment.sigma
         ~seed:design.Experiment.seed ~rep app machine ~params
         ~mode:design.Experiment.mode)
        .Simulator.rn_total
  in
  let attempts = ref 0 in
  let faults = ref [] in
  let wasted = ref 0. in
  let backoff = ref 0. in
  let rec attempt n =
    incr attempts;
    bump inst (fun i -> i.i_attempts);
    let span_args =
      if Obs_trace.enabled trace then
        [ ("rep", Obs_trace.Int rep); ("attempt", Obs_trace.Int n) ]
      else []
    in
    (* The attempt body runs inside one span; the retry recursion stays
       outside it so the trace shows one span per attempt. *)
    let result =
      Obs_trace.with_span trace ~cat:"campaign" ~args:span_args
        "campaign.attempt" (fun () ->
          let active_kind =
            Option.bind fault (fun f -> Fault.active f ~attempt:n)
          in
          match active_kind with
          | Some Fault.Crash ->
            (* The run died partway through: on average half the wall
               time is burned before the node goes down. *)
            `Failed (Fault.Crash, 0.5 *. Lazy.force probe_total)
          | Some Fault.Hang -> (
            (* The run never terminates; the harness's per-run step budget
               expires and kills it.  The kill is the engine's budget trap —
               raised here, caught by the same handler that would catch a
               genuine runaway replay. *)
            try raise (Interp.Machine.Budget_exceeded hang_budget)
            with Interp.Machine.Budget_exceeded _ ->
              `Failed (Fault.Hang, retry.rt_hang_timeout_s))
          | (Some (Fault.Straggler _ | Fault.Corrupt _) | None) as k ->
            (* The run completes (possibly with inflated durations):
               measure with the exact arguments run_design uses, so the
               fault-free path is bit-identical to the plain experiment. *)
            let run =
              Simulator.measure ~sigma:design.Experiment.sigma
                ~seed:design.Experiment.seed ~rep ?metrics app machine ~params
                ~mode:design.Experiment.mode
            in
            let run =
              match k with
              | Some (Fault.Straggler f as kind) | Some (Fault.Corrupt f as kind)
                ->
                bump_fault inst kind;
                faults := Fault.kind_name kind :: !faults;
                scale_run f run
              | _ -> run
            in
            `Completed run)
    in
    match result with
    | `Completed run -> Completed run
    | `Failed (kind, waste) ->
      (* A failed attempt: record the fault, charge the waste, and either
         back off and retry or abandon the coordinate. *)
      bump_fault inst kind;
      faults := Fault.kind_name kind :: !faults;
      wasted := !wasted +. waste;
      if n + 1 < retry.rt_max_attempts then begin
        bump inst (fun i -> i.i_retries);
        backoff :=
          !backoff
          +. (retry.rt_backoff_s *. (retry.rt_backoff_mult ** float_of_int n));
        attempt (n + 1)
      end
      else begin
        bump inst (fun i -> i.i_abandoned);
        Abandoned (Fault.kind_name kind)
      end
  in
  let outcome = attempt 0 in
  {
    rc_params = params;
    rc_rep = rep;
    rc_attempts = !attempts;
    rc_faults = List.rev !faults;
    rc_wasted_s = !wasted;
    rc_backoff_s = !backoff;
    rc_outcome = outcome;
  }

let summarize ~resumed ~interrupted records =
  let fault_counts =
    List.map
      (fun k ->
        ( k,
          List.fold_left
            (fun acc r ->
              acc + List.length (List.filter (String.equal k) r.rc_faults))
            0 records ))
      Fault.kind_names
  in
  {
    cp_records = records;
    cp_runs = List.filter_map completed_run records;
    cp_attempts = List.fold_left (fun acc r -> acc + r.rc_attempts) 0 records;
    cp_retries =
      List.fold_left (fun acc r -> acc + (r.rc_attempts - 1)) 0 records;
    cp_faults = fault_counts;
    cp_abandoned =
      List.length
        (List.filter
           (fun r ->
             match r.rc_outcome with Abandoned _ -> true | Completed _ -> false)
           records);
    cp_resumed = resumed;
    cp_interrupted = interrupted;
    cp_wasted_core_hours =
      List.fold_left
        (fun acc r -> acc +. core_hours_of ~params:r.rc_params r.rc_wasted_s)
        0. records;
    cp_backoff_core_hours =
      List.fold_left
        (fun acc r -> acc +. core_hours_of ~params:r.rc_params r.rc_backoff_s)
        0. records;
  }

(* Every campaign.* instrument bump of a coordinate's retry loop is a
   function of its finished record, so the parallel path can run
   coordinates with [inst = None] on worker domains and replay the bumps
   on the submitting domain in design order: [rc_attempts] attempts, one
   retry per non-final attempt, one fault bump per entry of [rc_faults]
   (failed attempts and kept straggler/corrupt completions alike), one
   abandonment if the outcome is [Abandoned]. *)
let bump_from_record inst r =
  match inst with
  | None -> ()
  | Some i ->
    Obs_metrics.add i.i_attempts r.rc_attempts;
    Obs_metrics.add i.i_retries (r.rc_attempts - 1);
    List.iter
      (fun k -> Obs_metrics.incr (List.assoc k i.i_faults))
      r.rc_faults;
    (match r.rc_outcome with
    | Abandoned _ -> Obs_metrics.incr i.i_abandoned
    | Completed _ -> ())

(* Events, like instrument bumps, are a function of the finished record:
   both the serial and the parallel path emit them from the submitting
   domain in design order, so the stream is deterministic and identical
   across the two paths (apart from the parallel-only wave events). *)
let params_str params =
  String.concat ";"
    (List.map (fun (n, v) -> Printf.sprintf "%s=%g" n v) params)

let emit_record_events events r =
  if Obs_events.enabled events then begin
    List.iteri
      (fun i kind ->
        Obs_events.emit events ~severity:Obs_events.Warn ~component:"campaign"
          ~fields:
            [
              ("params", Obs_events.Str (params_str r.rc_params));
              ("rep", Obs_events.Int r.rc_rep);
              ("attempt", Obs_events.Int i);
              ("kind", Obs_events.Str kind);
            ]
          "campaign.fault")
      r.rc_faults;
    Obs_events.emit events ~component:"campaign"
      ~fields:
        [
          ("params", Obs_events.Str (params_str r.rc_params));
          ("rep", Obs_events.Int r.rc_rep);
          ("attempts", Obs_events.Int r.rc_attempts);
          ( "outcome",
            Obs_events.Str
              (match r.rc_outcome with
              | Completed _ -> "completed"
              | Abandoned reason -> "abandoned:" ^ reason) );
        ]
      "campaign.record"
  end

let emit_resume_event events r =
  if Obs_events.enabled events then
    Obs_events.emit events ~component:"campaign"
      ~fields:
        [
          ("params", Obs_events.Str (params_str r.rc_params));
          ("rep", Obs_events.Int r.rc_rep);
        ]
      "campaign.resume"

(* Public replay faces (the shard merge uses them): re-derive the
   campaign.* instrument bumps and the fault/record events of an
   already-finished record, exactly as the executor emits them. *)
let replay_metrics reg r = bump_from_record (instruments_of (Some reg)) r
let record_events events r = emit_record_events events r

(* Reject a retry policy at entry, naming the offending field: a
   negative backoff or a sub-1 multiplier would silently *shrink* the
   backoff accounting, and a non-positive hang timeout would credit
   hangs with zero waste.  The comparisons are written negated so NaN
   fields are rejected too. *)
let validate_retry retry =
  if retry.rt_max_attempts < 1 then
    invalid_arg "Measure.Campaign.run: rt_max_attempts must be >= 1";
  if not (retry.rt_backoff_s >= 0.) then
    invalid_arg "Measure.Campaign.run: rt_backoff_s must be >= 0";
  if not (retry.rt_backoff_mult >= 1.) then
    invalid_arg "Measure.Campaign.run: rt_backoff_mult must be >= 1";
  if not (retry.rt_hang_timeout_s > 0.) then
    invalid_arg "Measure.Campaign.run: rt_hang_timeout_s must be > 0"

let run ?pool ?metrics ?(trace = Obs_trace.disabled)
    ?(events = Obs_events.disabled) ?(plan = Fault.none)
    ?(retry = default_retry) ?(hang_budget = 1_000_000)
    ?(done_ : record list = []) ?keep ?limit ?on_record app machine design =
  validate_retry retry;
  (* The campaign counter matches run_design's, so a fault-free campaign
     leaves the metrics registry in exactly the run_design state. *)
  (match metrics with
  | None -> ()
  | Some reg -> Obs_metrics.incr (Obs_metrics.counter reg "sim.campaigns"));
  let inst = instruments_of metrics in
  let restored = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace restored (r.rc_params, r.rc_rep) r) done_;
  let resumed = ref 0 in
  let executed = ref 0 in
  let interrupted = ref false in
  let records = ref [] in
  (* [keep] narrows the walk to a subset of the design (shard workers
     pass their ownership predicate); everything downstream — limit,
     resume, journal order — sees only the kept coordinates. *)
  let coords =
    match keep with
    | None -> coordinates design
    | Some f ->
      List.filter (fun (params, rep) -> f params rep) (coordinates design)
  in
  match pool with
  | Some p when Par.Pool.jobs p > 1 ->
    (* Parallel execution. The walk below replicates the serial limit
       semantics exactly (stop where the serial loop raises [Exit], i.e.
       on meeting the (limit+1)-th new coordinate), then coordinates are
       executed on the pool in waves. All shared effects stay on the
       submitting domain, in design order: restored-record accounting,
       instrument bumps replayed from each record, per-coordinate metric
       registries merged back, and [on_record] (the journal writer) — so
       journals and registries are bit-identical to serial, and a kill
       loses at most the in-flight wave. Workers touch only domain-local
       state plus the mutex-guarded trace sink. *)
    let items = ref [] in
    (try
       List.iter
         (fun (params, rep) ->
           match Hashtbl.find_opt restored (params, rep) with
           | Some r -> items := `Restored r :: !items
           | None ->
             if (match limit with Some l -> !executed >= l | None -> false)
             then begin
               interrupted := true;
               raise Exit
             end;
             incr executed;
             items := `Fresh (params, rep) :: !items)
         coords
     with Exit -> ());
    let items = List.rev !items in
    let emit = function
      | `Restored r ->
        incr resumed;
        bump inst (fun i -> i.i_resumed);
        emit_resume_event events r;
        records := r :: !records
      | `Done (r, local) ->
        (match (metrics, local) with
        | Some reg, Some l -> Obs_metrics.merge ~into:reg l
        | _ -> ());
        bump_from_record inst r;
        emit_record_events events r;
        (match on_record with None -> () | Some f -> f r);
        records := r :: !records
    in
    let wave_size = Par.Pool.jobs p * 4 in
    let wave_idx = ref 0 in
    let rec process = function
      | [] -> ()
      | pending ->
        (* Take one wave: up to [wave_size] fresh coordinates (restored
           records ride along for free, they cost nothing to emit). *)
        let rec split taken nfresh = function
          | it :: rest when
              (match it with `Restored _ -> true | `Fresh _ -> nfresh < wave_size)
            ->
            let nfresh' =
              match it with `Fresh _ -> nfresh + 1 | `Restored _ -> nfresh
            in
            split (it :: taken) nfresh' rest
          | rest -> (List.rev taken, rest)
        in
        let wave, rest = split [] 0 pending in
        let fresh =
          List.filter_map
            (function `Fresh c -> Some c | `Restored _ -> None)
            wave
        in
        if Obs_events.enabled events && fresh <> [] then begin
          Obs_events.emit events ~severity:Obs_events.Debug
            ~component:"campaign"
            ~fields:
              [
                ("wave", Obs_events.Int !wave_idx);
                ("fresh", Obs_events.Int (List.length fresh));
              ]
            "campaign.wave";
          incr wave_idx
        end;
        let done_q =
          Queue.of_seq
            (List.to_seq
               (Par.Pool.map p ~chunk:1
                  (fun (params, rep) ->
                    let local =
                      Option.map (fun _ -> Obs_metrics.create ()) metrics
                    in
                    let r =
                      execute_coordinate ?metrics:local ~trace ~inst:None
                        ~plan ~retry ~hang_budget app machine design ~params
                        ~rep
                    in
                    (r, local))
                  fresh))
        in
        List.iter
          (function
            | `Restored _ as it -> emit it
            | `Fresh _ -> emit (`Done (Queue.pop done_q)))
          wave;
        process rest
    in
    process items;
    summarize ~resumed:!resumed ~interrupted:!interrupted (List.rev !records)
  | _ ->
    (try
       List.iter
         (fun (params, rep) ->
           match Hashtbl.find_opt restored (params, rep) with
           | Some r ->
             incr resumed;
             bump inst (fun i -> i.i_resumed);
             emit_resume_event events r;
             records := r :: !records
           | None ->
             if (match limit with Some l -> !executed >= l | None -> false)
             then begin
               interrupted := true;
               raise Exit
             end;
             incr executed;
             let r =
               execute_coordinate ?metrics ~trace ~inst ~plan ~retry
                 ~hang_budget app machine design ~params ~rep
             in
             emit_record_events events r;
             (match on_record with None -> () | Some f -> f r);
             records := r :: !records)
         coords
     with Exit -> ());
    summarize ~resumed:!resumed ~interrupted:!interrupted (List.rev !records)

(* -- journal --------------------------------------------------------------- *)

let journal_magic = "perf-taint-campaign-journal"
let journal_version = 1

let json_of_params params =
  Jsonio.List
    (List.map
       (fun (n, v) -> Jsonio.List [ Jsonio.Str n; Jsonio.Float v ])
       params)

let params_of_json j =
  match Jsonio.to_list j with
  | None -> None
  | Some items ->
    let pair = function
      | Jsonio.List [ Jsonio.Str n; v ] ->
        Option.map (fun f -> (n, f)) (Jsonio.to_float v)
      | _ -> None
    in
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | x :: rest -> (
        match pair x with None -> None | Some p -> all (p :: acc) rest)
    in
    all [] items

let json_of_run (r : Simulator.run) =
  Jsonio.Obj
    [
      ("rpn", Jsonio.Int r.Simulator.rn_ranks_per_node);
      ( "kernels",
        Jsonio.List
          (List.map
             (fun (km : Simulator.kernel_measurement) ->
               Jsonio.Obj
                 [
                   ("name", Jsonio.Str km.Simulator.km_name);
                   ("calls", Jsonio.Float km.Simulator.km_calls);
                   ("per_call", Jsonio.Float km.Simulator.km_per_call);
                   ("total", Jsonio.Float km.Simulator.km_total);
                 ])
             r.Simulator.rn_kernels) );
      ("total", Jsonio.Float r.Simulator.rn_total);
      ("base_total", Jsonio.Float r.Simulator.rn_base_total);
    ]

(** One completed run as a single deterministic JSON line — the CLI's
    [--dump] format, byte-comparable across invocations. *)
let run_to_line (r : Simulator.run) =
  Jsonio.to_string
    (Jsonio.Obj
       [
         ("params", json_of_params r.Simulator.rn_params);
         ("rep", Jsonio.Int r.Simulator.rn_rep);
         ("run", json_of_run r);
       ])

let run_of_json ~params ~rep ~mode j =
  let open Jsonio in
  match
    ( Option.bind (member "rpn" j) to_int,
      Option.bind (member "kernels" j) to_list,
      Option.bind (member "total" j) to_float,
      Option.bind (member "base_total" j) to_float )
  with
  | Some rpn, Some kernels, Some total, Some base_total ->
    let kernel kj =
      match
        ( Option.bind (member "name" kj) to_str,
          Option.bind (member "calls" kj) to_float,
          Option.bind (member "per_call" kj) to_float,
          Option.bind (member "total" kj) to_float )
      with
      | Some name, Some calls, Some per_call, Some ktotal ->
        Some
          {
            Simulator.km_name = name;
            km_calls = calls;
            km_per_call = per_call;
            km_total = ktotal;
          }
      | _ -> None
    in
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | x :: rest -> (
        match kernel x with None -> None | Some k -> all (k :: acc) rest)
    in
    Option.map
      (fun kms ->
        {
          Simulator.rn_params = params;
          rn_mode = mode;
          rn_rep = rep;
          rn_ranks_per_node = rpn;
          rn_kernels = kms;
          rn_total = total;
          rn_base_total = base_total;
        })
      (all [] kernels)
  | _ -> None

let record_to_line r =
  let open Jsonio in
  let base =
    [
      ("params", json_of_params r.rc_params);
      ("rep", Int r.rc_rep);
      ("attempts", Int r.rc_attempts);
      ("faults", List (List.map (fun f -> Str f) r.rc_faults));
      ("wasted_s", Float r.rc_wasted_s);
      ("backoff_s", Float r.rc_backoff_s);
    ]
  in
  let outcome =
    match r.rc_outcome with
    | Completed run -> [ ("outcome", Str "completed"); ("run", json_of_run run) ]
    | Abandoned reason ->
      [ ("outcome", Str "abandoned"); ("reason", Str reason) ]
  in
  to_string (Obj (base @ outcome))

let record_of_line ~mode line =
  let open Jsonio in
  match parse line with
  | Error msg -> Error ("bad journal line: " ^ msg)
  | Ok j -> (
    let str key = Option.bind (member key j) to_str in
    match
      ( Option.bind (member "params" j) params_of_json,
        Option.bind (member "rep" j) to_int,
        Option.bind (member "attempts" j) to_int,
        Option.bind (member "faults" j) to_list,
        Option.bind (member "wasted_s" j) to_float,
        Option.bind (member "backoff_s" j) to_float,
        str "outcome" )
    with
    | ( Some params,
        Some rep,
        Some attempts,
        Some faults,
        Some wasted_s,
        Some backoff_s,
        Some outcome ) -> (
      let faults = List.filter_map to_str faults in
      let mk rc_outcome =
        Ok
          {
            rc_params = params;
            rc_rep = rep;
            rc_attempts = attempts;
            rc_faults = faults;
            rc_wasted_s = wasted_s;
            rc_backoff_s = backoff_s;
            rc_outcome;
          }
      in
      match outcome with
      | "completed" -> (
        match Option.bind (member "run" j) (run_of_json ~params ~rep ~mode) with
        | Some run -> mk (Completed run)
        | None -> Error "bad journal line: malformed run object")
      | "abandoned" ->
        mk (Abandoned (Option.value ~default:"unknown" (str "reason")))
      | o -> Error (Printf.sprintf "bad journal line: unknown outcome %S" o))
    | _ -> Error "bad journal line: missing field")

(* The header pins everything that decides the campaign's content;
   resuming under a different design / plan / policy would silently mix
   incompatible measurements, so it is an error instead. *)
let header_line ~app_name ~plan ~retry (design : Experiment.design) =
  let open Jsonio in
  to_string
    (Obj
       [
         ("journal", Str journal_magic);
         ("version", Int journal_version);
         ("app", Str app_name);
         ( "design",
           Obj
             [
               ( "grid",
                 List
                   (List.map
                      (fun (n, vs) ->
                        List
                          [
                            Str n; List (List.map (fun v -> Float v) vs);
                          ])
                      design.Experiment.grid) );
               ("reps", Int design.Experiment.reps);
               ("mode", Str (Instrument.mode_name design.Experiment.mode));
               ("sigma", Float design.Experiment.sigma);
               ("seed", Int design.Experiment.seed);
             ] );
         ("faults", Str (Fault.spec_of plan));
         ( "retry",
           Obj
             [
               ("max_attempts", Int retry.rt_max_attempts);
               ("backoff_s", Float retry.rt_backoff_s);
               ("backoff_mult", Float retry.rt_backoff_mult);
               ("hang_timeout_s", Float retry.rt_hang_timeout_s);
             ] );
       ])

let load_journal ~mode ~expected_header path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  match List.rev !lines with
  | [] -> Error (path ^ ": empty journal")
  | header :: body ->
    if String.trim header <> expected_header then
      Error
        (path
       ^ ": journal header does not match this campaign (different app, \
          design, fault plan, or retry policy)")
    else
      (* A parse failure on the *last* nonempty line is a torn write — a
         worker killed mid-flush leaves a partial final record — and is
         skipped (the coordinate is simply re-executed on resume).  A
         failure anywhere earlier is genuine corruption and stays an
         error: silently dropping an interior record would desynchronize
         the resumed campaign from the design walk. *)
      let body = List.filter (fun l -> String.trim l <> "") body in
      let rec go acc = function
        | [] -> Ok (List.rev acc, 0)
        | [ last ] -> (
          match record_of_line ~mode last with
          | Ok r -> Ok (List.rev (r :: acc), 0)
          | Error _ -> Ok (List.rev acc, 1))
        | line :: rest -> (
          match record_of_line ~mode line with
          | Ok r -> go (r :: acc) rest
          | Error e -> Error (path ^ ": " ^ e))
      in
      go [] body

let run_journaled ?pool ?metrics ?trace ?(events = Obs_events.disabled) ?plan
    ?retry ?hang_budget ?keep ?limit ~journal ~resume app machine design =
  let plan_v = Option.value ~default:Fault.none plan in
  let retry_v = Option.value ~default:default_retry retry in
  let header =
    header_line ~app_name:app.Spec.aname ~plan:plan_v ~retry:retry_v design
  in
  let existing, torn =
    if resume && Sys.file_exists journal then
      match
        load_journal ~mode:design.Experiment.mode ~expected_header:header
          journal
      with
      | Ok (records, torn) -> (records, torn)
      | Error e -> failwith e
    else ([], 0)
  in
  if torn > 0 then begin
    (match metrics with
    | None -> ()
    | Some reg ->
      Obs_metrics.add (Obs_metrics.counter reg "campaign.journal_torn") torn);
    if Obs_events.enabled events then
      Obs_events.emit events ~severity:Obs_events.Warn ~component:"campaign"
        ~fields:
          [ ("journal", Obs_events.Str journal);
            ("lines", Obs_events.Int torn) ]
        "campaign.journal_torn"
  end;
  let oc =
    if existing <> [] && torn = 0 then
      open_out_gen [ Open_append; Open_creat ] 0o644 journal
    else begin
      (* Fresh journal, or a torn tail to cut off: rewrite header plus
         the surviving records.  Records round-trip exactly, so the
         rewritten prefix is byte-identical to the original clean one
         and appending continues the canonical journal. *)
      let oc = open_out journal in
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc (record_to_line r);
          output_char oc '\n')
        existing;
      flush oc;
      oc
    end
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      run ?pool ?metrics ?trace ~events ?plan ?retry ?hang_budget
        ~done_:existing ?keep ?limit
        ~on_record:(fun r ->
          output_string oc (record_to_line r);
          output_char oc '\n';
          (* Flush per record: the journal must survive a kill at any
             point with only the in-flight coordinate lost. *)
          flush oc;
          if Obs_events.enabled events then
            Obs_events.emit events ~severity:Obs_events.Debug
              ~component:"campaign"
              ~fields:
                [
                  ("params", Obs_events.Str (params_str r.rc_params));
                  ("rep", Obs_events.Int r.rc_rep);
                ]
              "campaign.checkpoint")
        app machine design)

(* -- report rendering ------------------------------------------------------ *)

let pp_report ppf r =
  let fault_total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.cp_faults in
  Fmt.pf ppf "campaign: %d runs, %d attempts, %d retries, %d abandoned%s@,"
    (List.length r.cp_runs) r.cp_attempts r.cp_retries r.cp_abandoned
    (if r.cp_interrupted then " (interrupted)" else "");
  if r.cp_resumed > 0 then
    Fmt.pf ppf "resumed from journal: %d runs@," r.cp_resumed;
  if fault_total > 0 then
    Fmt.pf ppf "faults: %a@,"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, n) -> Fmt.pf ppf "%s=%d" k n))
      (List.filter (fun (_, n) -> n > 0) r.cp_faults);
  Fmt.pf ppf "wasted %.3f core-hours, %.3f core-hours of backoff"
    r.cp_wasted_core_hours r.cp_backoff_core_hours
