(** Regression-aware bench reporting: tolerance-based comparison of
    [BENCH_<exp>.json] result files against committed baselines, and a
    merged markdown report (bench results + campaign journal + metrics
    snapshot) with baseline deltas. *)

val default_tolerance : float
(** Relative tolerance for numeric comparisons (0.05).  A baseline file
    may override it for itself with a top-level ["tolerance"] key. *)

val flatten : Jsonio.t -> (string * Jsonio.t) list
(** Scalar leaves as (dotted path, value) pairs in document order; list
    elements index as [path[i]]. *)

type mismatch = {
  mm_path : string;
  mm_expected : string;
  mm_actual : string;   (** ["<missing>"] when the key is absent *)
  mm_reason : string;
}

val compare_values :
  tolerance:float -> expected:Jsonio.t -> actual:Jsonio.t -> mismatch list
(** Baseline-key-ordered mismatches: numbers compare within the relative
    tolerance (absolute floor [1e-12] near zero), strings and booleans
    exactly; a baseline key missing from [actual] is a mismatch, extra
    keys in [actual] are not.  ["experiment"]/["tolerance"] are metadata
    and skipped. *)

type check = {
  ck_name : string;        (** experiment name (from the baseline) *)
  ck_baseline : string;    (** baseline path *)
  ck_tolerance : float;
  ck_mismatches : mismatch list;  (** empty = pass *)
}

val check_baseline :
  ?tolerance:float -> baseline:string -> actual:string -> unit ->
  (check, string) result
(** Compare one baseline file against the actual results file.  A
    missing actual file is a failing check (not an error); an unparsable
    file is an [Error]. *)

val check_dir :
  ?tolerance:float -> dir:string -> actual_dir:string -> unit ->
  (check list, string) result
(** Check every [BENCH_*.json] baseline in [dir] against the same-named
    file in [actual_dir], in filename order.  [Error] when [dir] is
    missing or holds no baselines. *)

val passed : check list -> bool

val pp_checks : check list Fmt.t
(** One PASS/FAIL line per check, with per-mismatch detail on failures. *)

val report :
  ?baselines_dir:string ->
  ?journal:string ->
  ?stats:string ->
  bench_files:string list ->
  unit ->
  string
(** The merged markdown report: one section per [BENCH_*.json] result
    file (with baseline and delta columns where [baselines_dir] has a
    same-named baseline), then an optional campaign-journal summary and
    an optional metrics-snapshot section (from a [stats --json] file). *)
