(** A minimal JSON reader/writer for the campaign checkpoint journal.

    The sealed toolchain carries no JSON library; `Core.Export` emits
    JSON but never reads it back.  The journal must round-trip — a
    resumed campaign has to reproduce the interrupted one bit for bit —
    so this module pairs a writer with a parser and prints floats with
    ["%.17g"], which reconstructs every IEEE double exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- writer ---------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* -- parser ---------------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at offset %d, got %c" c !pos c'
    | None -> fail "expected %c at offset %d, got end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape %s" hex
          in
          (* The writer only escapes control characters; everything the
             journal emits is below 0x80. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape %s" hex;
          pos := !pos + 4
        | _ -> fail "bad escape at offset %d" !pos);
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" text start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Bad msg -> Error msg

(* -- accessors ------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
