(** Deterministic fault plans for measurement campaigns.

    Real campaigns (Piz Daint, the Skylake system) lose runs to node
    crashes, hung jobs, straggler nodes, and corrupted timers.  A fault
    plan decides, *deterministically from the run coordinates*
    (configuration × repetition) and a seed, whether a given run is
    faulty, what kind of fault it suffers, and whether the fault is
    transient (goes away after a bounded number of retries) or persistent
    (every attempt fails until the campaign gives the coordinate up).

    Determinism matters twice: campaigns are reproducible from their
    seed, and a checkpoint/resume cycle re-derives exactly the faults the
    interrupted campaign saw. *)

type kind =
  | Crash              (** the run dies partway through; no data *)
  | Hang               (** the run never terminates; the harness kills it
                           when the per-run step budget expires
                           ([Interp.Machine.Budget_exceeded]) *)
  | Straggler of float (** the run completes with all durations inflated
                           by the factor (a slow node) *)
  | Corrupt of float   (** the run completes but its recorded durations
                           are outliers scaled by the factor (a broken
                           timer) *)

type persistence =
  | Transient of int  (** the fault fires on the first [n] attempts only *)
  | Persistent        (** the fault fires on every attempt *)

type fault = { f_kind : kind; f_persistence : persistence }

type plan = {
  fp_seed : int;
  fp_crash : float;
  fp_hang : float;
  fp_straggler : float;
  fp_corrupt : float;
  fp_persistent : float;
      (** share of injected faults that are persistent rather than
          transient *)
  fp_transient_attempts : int;
      (** a transient fault fires on the first 1..n attempts, drawn
          per coordinate *)
}

let none =
  { fp_seed = 0; fp_crash = 0.; fp_hang = 0.; fp_straggler = 0.;
    fp_corrupt = 0.; fp_persistent = 0.; fp_transient_attempts = 2 }

let uniform ?(seed = 0) ?(persistent = 0.) rate =
  { none with fp_seed = seed; fp_crash = rate; fp_hang = rate;
    fp_straggler = rate; fp_corrupt = rate; fp_persistent = persistent }

let total_rate p = p.fp_crash +. p.fp_hang +. p.fp_straggler +. p.fp_corrupt

let kind_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Straggler _ -> "straggler"
  | Corrupt _ -> "corrupt"

let kind_names = [ "crash"; "hang"; "straggler"; "corrupt" ]

(* Mix seed and run coordinates exactly like {!Noise.create}: the fault
   stream is independent of the measurement-noise stream (different salt
   prefix) but equally reproducible. *)
let state plan ~params ~rep =
  let h = Hashtbl.hash ("fault", List.sort compare params, rep) in
  Random.State.make [| plan.fp_seed; h |]

let at plan ~(params : Spec.params) ~rep =
  if total_rate plan <= 0. then None
  else begin
    let st = state plan ~params ~rep in
    let u = Random.State.float st 1. in
    let pick =
      if u < plan.fp_crash then Some Crash
      else if u < plan.fp_crash +. plan.fp_hang then Some Hang
      else if u < plan.fp_crash +. plan.fp_hang +. plan.fp_straggler then
        (* Slow node: 2-8x inflation, the straggler band of real systems. *)
        Some (Straggler (2. +. (6. *. Random.State.float st 1.)))
      else if u < total_rate plan then
        (* Broken timer: a 25-100x outlier, far outside any noise band. *)
        Some (Corrupt (25. +. (75. *. Random.State.float st 1.)))
      else None
    in
    match pick with
    | None -> None
    | Some kind ->
      let persistence =
        if Random.State.float st 1. < plan.fp_persistent then Persistent
        else
          Transient (1 + Random.State.int st (max 1 plan.fp_transient_attempts))
      in
      Some { f_kind = kind; f_persistence = persistence }
  end

let active fault ~attempt =
  match fault.f_persistence with
  | Persistent -> Some fault.f_kind
  | Transient n -> if attempt < n then Some fault.f_kind else None

(* -- textual plan specs (CLI flags, journal headers) ----------------------- *)

let spec_of p =
  Printf.sprintf
    "crash=%g,hang=%g,straggler=%g,corrupt=%g,persistent=%g,attempts=%d,seed=%d"
    p.fp_crash p.fp_hang p.fp_straggler p.fp_corrupt p.fp_persistent
    p.fp_transient_attempts p.fp_seed

let of_spec s =
  let parse_field plan field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault spec field %S is not key=value" field)
    | Some i ->
      let key = String.sub field 0 i in
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      let rate () =
        match float_of_string_opt v with
        | Some r when r >= 0. && r <= 1. -> Ok r
        | _ -> Error (Printf.sprintf "fault rate %s=%s is not in [0,1]" key v)
      in
      (match key with
      | "crash" -> Result.map (fun r -> { plan with fp_crash = r }) (rate ())
      | "hang" -> Result.map (fun r -> { plan with fp_hang = r }) (rate ())
      | "straggler" ->
        Result.map (fun r -> { plan with fp_straggler = r }) (rate ())
      | "corrupt" -> Result.map (fun r -> { plan with fp_corrupt = r }) (rate ())
      | "persistent" ->
        Result.map (fun r -> { plan with fp_persistent = r }) (rate ())
      | "attempts" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Ok { plan with fp_transient_attempts = n }
        | _ -> Error (Printf.sprintf "attempts=%s is not a positive int" v))
      | "seed" -> (
        match int_of_string_opt v with
        | Some n -> Ok { plan with fp_seed = n }
        | None -> Error (Printf.sprintf "seed=%s is not an int" v))
      | _ ->
        Error
          (Printf.sprintf
             "unknown fault spec key %s (crash, hang, straggler, corrupt, \
              persistent, attempts, seed)"
             key))
  in
  if String.trim s = "" then Ok none
  else
    List.fold_left
      (fun acc field -> Result.bind acc (fun plan -> parse_field plan field))
      (Ok none)
      (String.split_on_char ',' (String.trim s))
