(** Experiment design and execution: parameter grids, repetitions, and
    the bookkeeping the paper reports (run counts, core-hours). *)

type design = {
  grid : (string * float list) list;  (** full-factorial values *)
  reps : int;
  mode : Instrument.mode;
  sigma : float;
  seed : int;
}

val default_design : design

val grid_configs : (string * float list) list -> Spec.params list
(** The cartesian product of a parameter grid. *)

val configs : design -> Spec.params list
(** [grid_configs design.grid]. *)

val run_design :
  ?pool:Par.Pool.t ->
  ?metrics:Obs_metrics.t ->
  Spec.app -> Mpi_sim.Machine.t -> design -> Simulator.run list
(** Execute the full-factorial design.  [metrics] counts campaigns and
    runs and accumulates the simulated core-hour cost (see
    {!Simulator.measure}).  [pool] runs the coordinates on a domain pool;
    runs and metrics are bit-identical to the serial execution (ordered
    collection; per-coordinate registries merged in design order). *)

val replay_runs :
  ?engine:Interp.Engine.tier -> ?config:Interp.Engine.config ->
  ?world:Mpi_sim.Runtime.world ->
  Ir.Types.program -> grid:(string * float list) list ->
  Simulator.replay list
(** One deterministic clean {!Simulator.replay} per grid configuration,
    on the selected execution tier (default compiled). *)

val kernel_dataset :
  Simulator.run list -> params:string list -> kernel:string -> Model.Dataset.t
(** Per-invocation measurements of one kernel, keyed by the given
    parameters; unobserved configurations yield no points. *)

val total_dataset : Simulator.run list -> params:string list -> Model.Dataset.t

val core_hours : Simulator.run list -> float
val run_count : Simulator.run list -> int
