(** The cluster run simulator: produces the "measurements" that the
    empirical modeler consumes.

    One simulated run executes an application at a parameter configuration
    under an instrumentation mode and yields per-kernel measurements and
    the total wall time.  Effects modeled, in order:

    - true kernel cost from the application's ground-truth spec;
    - memory-bandwidth contention scaling with ranks per node (Figure 5);
    - instrumentation hook overhead per observed call (Figures 3 and 4);
    - measurement intrusion under full instrumentation (B2);
    - multiplicative noise plus an additive per-invocation jitter floor
      that disproportionately disturbs short functions (B1). *)

module Machine = Mpi_sim.Machine

(** One observed function in one run.  [km_per_call] is the per-invocation
    exclusive time — the metric modeled by Extra-P, so that functions with
    parameter-independent bodies have constant models no matter how often
    an enclosing loop calls them. *)
type kernel_measurement = {
  km_name : string;
  km_calls : float;
  km_per_call : float;   (** measured seconds per invocation *)
  km_total : float;      (** measured aggregate seconds *)
}

type run = {
  rn_params : Spec.params;
  rn_mode : Instrument.mode;
  rn_rep : int;
  rn_ranks_per_node : int;
  rn_kernels : kernel_measurement list;  (** observed kernels only *)
  rn_total : float;       (** measured wall time, hooks included *)
  rn_base_total : float;  (** wall time of the same run uninstrumented, no noise *)
}

let ranks_of params =
  match List.assoc_opt "p" params with Some p -> int_of_float p | None -> 1

let ranks_per_node_of machine params =
  match List.assoc_opt "r" params with
  | Some r -> int_of_float r
  | None -> min (ranks_of params) (Machine.cores_per_node machine)

(* True (noise-free, uninstrumented) aggregate time of one kernel at this
   configuration, contention included. *)
let true_time machine ~ranks_per_node (k : Spec.kernel) params =
  let t0 = k.Spec.base_time params machine in
  let slow = Machine.contention_slowdown machine ~ranks_per_node in
  (t0 *. (1. -. k.Spec.memory_bound)) +. (t0 *. k.Spec.memory_bound *. slow)

(* Additive jitter per invocation, seconds: timer granularity and OS
   interference that a short function cannot amortise. *)
let per_call_jitter = 4.0e-9

let measure ?(sigma = 0.02) ?(seed = 42) ?(rep = 0) ?metrics app machine
    ~params ~mode =
  let ranks_per_node = ranks_per_node_of machine params in
  let base_total = ref 0. in
  let wall = ref 0. in
  let kernels = ref [] in
  List.iter
    (fun (k : Spec.kernel) ->
      let calls = k.Spec.calls params in
      if calls > 0. then begin
        let t = true_time machine ~ranks_per_node k params in
        base_total := !base_total +. t;
        let per_call = t /. calls in
        let intrusion =
          match mode with
          | Instrument.Full -> k.Spec.full_instr_extra params machine
          | Instrument.Uninstrumented | Instrument.Default
          | Instrument.Selective _ -> 0.
        in
        let hooks =
          if Instrument.instrumented mode k then
            2. *. machine.Machine.hook_cost_s *. calls
          else 0.
        in
        wall := !wall +. t +. (intrusion *. calls) +. hooks;
        if Instrument.observed mode k then begin
          let rng =
            Noise.create ~seed ~salt:(app.Spec.aname, k.Spec.kname, params, rep)
          in
          let measured_per_call =
            Noise.perturb ~floor:per_call_jitter rng ~sigma (per_call +. intrusion)
          in
          kernels :=
            {
              km_name = k.Spec.kname;
              km_calls = calls;
              km_per_call = measured_per_call;
              km_total = measured_per_call *. calls;
            }
            :: !kernels
        end
      end)
    app.Spec.kernels;
  let rng_total = Noise.create ~seed ~salt:(app.Spec.aname, "$total", params, rep) in
  let run =
    {
      rn_params = params;
      rn_mode = mode;
      rn_rep = rep;
      rn_ranks_per_node = ranks_per_node;
      rn_kernels = List.rev !kernels;
      rn_total = Noise.perturb ~floor:1e-4 rng_total ~sigma !wall;
      rn_base_total = !base_total;
    }
  in
  (match metrics with
  | None -> ()
  | Some reg ->
    (* Tag the campaign with its simulated cost: run count, wall time
       distribution, and aggregate core-hours (paper Table 3's budget). *)
    Obs_metrics.incr (Obs_metrics.counter reg "sim.runs");
    Obs_metrics.observe (Obs_metrics.histogram reg "sim.run_wall_s") run.rn_total;
    Obs_metrics.add_gauge
      (Obs_metrics.gauge reg "sim.core_hours")
      (run.rn_total *. float_of_int (ranks_of params) /. 3600.));
  run

(* -- clean program replay ------------------------------------------------ *)

(* The analytic simulator above plays measurement campaigns out of a
   ground-truth spec; [replay] executes an actual PIR program at one
   configuration through the Plain (shadow-free) engine — the "many clean
   measurement runs" half of the paper's economy, on the same programs
   the tainted pipeline analyzed. *)

type replay = {
  rp_params : Spec.params;
  rp_value : Ir.Types.value;    (** entry-function result *)
  rp_steps : int;               (** instructions + terminators executed *)
  rp_work : (string * int) list;
      (** per-function synthetic-work units, sorted by name — the
          replay's analogue of exclusive kernel time *)
  rp_calls : (string * int) list;  (** per-function invocation counts *)
}

(* The replay body over any shadow-free engine: the interpreted and the
   compiled tier expose the same {!Interp.Engine.S} face, so one
   first-class-module helper serves both. *)
let replay_via (type a) (module E : Interp.Engine.S with type t = a) ?config
    ~world program ~params =
  let entry = Ir.Types.find_func program program.Ir.Types.entry in
  (* "p" doubles as the MPI world size when the entry does not take it
     explicitly: the communicator size enters through mpi_comm_size. *)
  let world =
    if List.mem "p" entry.Ir.Types.fparams then world
    else
      match List.assoc_opt "p" params with
      | Some p -> { world with Mpi_sim.Runtime.ranks = int_of_float p }
      | None -> world
  in
  let m = E.create ?config program in
  Mpi_sim.Runtime.install_host (module E) world m;
  let bindings =
    List.map
      (fun name ->
        match List.assoc_opt name params with
        | Some v -> (name, Ir.Types.VInt (int_of_float v))
        | None ->
          invalid_arg
            (Printf.sprintf "replay: no value for entry parameter %s" name))
      entry.Ir.Types.fparams
  in
  let v, _ = E.run_named m bindings in
  let obs = E.observations m in
  let fold f =
    Hashtbl.fold
      (fun name fo acc -> (name, f fo) :: acc)
      obs.Interp.Observations.funcs []
    |> List.sort compare
  in
  {
    rp_params = params;
    rp_value = v;
    rp_steps = E.steps_executed m;
    rp_work = fold (fun fo -> fo.Interp.Observations.fo_work);
    rp_calls = fold (fun fo -> fo.Interp.Observations.fo_calls);
  }

let replay ?(engine = Interp.Engine.default_tier) ?config
    ?(world = Mpi_sim.Runtime.default_world) program ~params =
  match engine with
  | Interp.Engine.Interpreted ->
    replay_via (module Interp.Plain) ?config ~world program ~params
  | Interp.Engine.Compiled ->
    replay_via (module Interp.Compiled.Plain) ?config ~world program ~params

let replay_work r name =
  Option.value ~default:0 (List.assoc_opt name r.rp_work)

(** Instrumentation overhead of a run relative to the uninstrumented wall
    time of the same configuration, as a fraction (0.0 = no overhead). *)
let overhead run =
  if run.rn_base_total <= 0. then 0.
  else (run.rn_total -. run.rn_base_total) /. run.rn_base_total

let kernel_measurement run name =
  List.find_opt (fun km -> km.km_name = name) run.rn_kernels

(** Measured per-invocation time of [name], if observed in this run. *)
let kernel_time run name =
  Option.map (fun km -> km.km_per_call) (kernel_measurement run name)

(** Measured aggregate time of [name], if observed in this run. *)
let kernel_total run name =
  Option.map (fun km -> km.km_total) (kernel_measurement run name)
