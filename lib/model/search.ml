(** PMNF hypothesis search — the Extra-P model generator (paper Section
    4.5), including the two published heuristics: single-parameter search
    over a fixed exponent menu, and multi-parameter search restricted to
    combinations of the best single-parameter models.

    The hybrid (tainted) mode threads [constraints] through the search:
    parameters proven irrelevant by the taint analysis are excluded from
    the hypothesis space, and multiplicative terms are only generated for
    parameter pairs whose loops actually nest (Section 5.2's explicit
    multiplicative and additive dependencies). *)

(* How a point's repeated measurements collapse into the value the
   search fits.  The mean is the classic Extra-P choice; the median
   survives corrupted repetitions (broken timers, stragglers) that
   would otherwise drag the fit — the degradation-tolerant mode. *)
type aggregate = Mean | Median

type config = {
  exponents : float list;      (** the set I of polynomial exponents *)
  log_exponents : int list;    (** the set J of logarithm exponents *)
  max_terms : int;             (** n in the PMNF; the paper uses 2 *)
  min_improvement : float;
      (** a parametric hypothesis must beat the constant model's
          cross-validated error by this relative margin to be accepted —
          the guard against modeling noise on constant functions *)
  aggregate : aggregate;
      (** how repeated measurements collapse into one fitted value *)
  metrics : Obs_metrics.t option;
      (** when set, the search counts candidates generated (per term
          class), evaluated, and rejected into this registry *)
  pool : Par.Pool.t option;
      (** when set, candidate hypotheses are scored on this domain pool;
          the selected model is bit-identical to the serial search *)
  events : Obs_events.sink;
      (** structured event stream: best-so-far improvements and the
          final selection; [Obs_events.disabled] by default *)
}

(* The exact single-parameter search space printed in the paper. *)
let default_config =
  {
    exponents =
      [ 0.; 0.25; 1. /. 3.; 0.5; 2. /. 3.; 0.75; 1.; 1.25; 4. /. 3.; 1.5;
        5. /. 3.; 1.75; 2.; 2.25; 2.5; 8. /. 3.; 2.75; 3. ];
    log_exponents = [ 0; 1; 2 ];
    max_terms = 2;
    (* Extra-P 3.0 (the paper's version) selects the best cross-validated
       fit with no acceptance margin — which is exactly why black-box
       modeling overfits noise on constant functions (B1).  The margin is
       an opt-in guard. *)
    min_improvement = 0.;
    aggregate = Mean;
    metrics = None;
    pool = None;
    events = Obs_events.disabled;
  }

(* The paper notes the sets can be expanded when expectations about the
   application exist; strong-scaling studies need decreasing per-process
   terms, so this variant adds negative polynomial exponents (matching
   Extra-P's configurable search space). *)
let extended_config =
  {
    default_config with
    exponents =
      [ -2.; -1.5; -1.; -2. /. 3.; -0.5; -1. /. 3.; -0.25 ]
      @ default_config.exponents;
  }

type constraints = {
  allowed : string list option;
      (** parameters permitted to appear; [None] = all (black-box mode) *)
  multiplicative : (string -> string -> bool) option;
      (** may these two parameters share a product term? [None] = yes *)
}

let unconstrained = { allowed = None; multiplicative = None }

type result = {
  model : Expr.model;
  error : float;        (** leave-one-out cross-validated SMAPE, percent *)
  rss : float;
  hypotheses_tried : int;
}

(* -- hypothesis machinery ------------------------------------------------ *)

(* A hypothesis is a list of basis terms (products of per-parameter simple
   terms); coefficients are fitted by least squares with an intercept. *)
type hypothesis = (string * Expr.simple_term) list list

let simple_terms config =
  List.concat_map
    (fun e ->
      List.filter_map
        (fun j ->
          if e = 0. && j = 0 then None else Some { Expr.expo = e; logexp = j })
        config.log_exponents)
    config.exponents

let design_row (h : hypothesis) coords =
  Array.of_list (1. :: List.map (fun factors -> Expr.eval_factors factors coords) h)

let model_of_fit (h : hypothesis) coeffs =
  {
    Expr.const = coeffs.(0);
    terms =
      List.mapi (fun i factors -> { Expr.coeff = coeffs.(i + 1); factors }) h;
  }

(* -- allocation-light scoring -------------------------------------------- *)

(* Worker-local scratch for {!eval_hypothesis}: the leave-one-out
   sub-design is an array of pointers into the shared row set plus a
   sub-observation buffer, both reused across every candidate a worker
   scores instead of rebuilt per (candidate, left-out point). *)
type scratch = {
  mutable sc_rows : float array array;
  mutable sc_y : float array;
}

let scratch_for n =
  let m = max 0 (n - 1) in
  { sc_rows = Array.make m [||]; sc_y = Array.make m 0. }

(* Score one hypothesis against the shared evaluation context: full fit,
   RSS, and leave-one-out cross-validated SMAPE (falling back to the
   training SMAPE when there are too few points to refit).  The floats
   are bit-identical to the historical per-candidate path that rebuilt
   the design matrix for every sub-fit: rows are built once and shared
   between the full fit and every leave-one-out sub-fit (same values,
   same consumption order), and predictions accumulate in the same
   (reversed) order fed to [Dataset.smape]. *)
let eval_hypothesis ~points ~coords ~y scratch (h : hypothesis) =
  let n = Array.length coords in
  let cols = List.length h + 1 in
  let rows = Array.map (fun c -> design_row h c) coords in
  match Linalg.least_squares rows y with
  | None -> None
  | Some coeffs ->
    let rss = Linalg.residual_sum_of_squares rows y coeffs in
    let m = model_of_fit h coeffs in
    let err =
      if n <= cols then
        Some (Dataset.smape (List.map (fun (c, yv) -> (Expr.eval m c, yv)) points))
      else begin
        if Array.length scratch.sc_rows <> n - 1 then begin
          scratch.sc_rows <- Array.make (n - 1) [||];
          scratch.sc_y <- Array.make (n - 1) 0.
        end;
        let sub = scratch.sc_rows and suby = scratch.sc_y in
        let preds = ref [] in
        let ok = ref true in
        let i = ref 0 in
        while !ok && !i < n do
          let left_out = !i in
          let k = ref 0 in
          for j = 0 to n - 1 do
            if j <> left_out then begin
              sub.(!k) <- rows.(j);
              suby.(!k) <- y.(j);
              incr k
            end
          done;
          (match Linalg.least_squares sub suby with
          | None -> ok := false
          | Some sub_coeffs ->
            let sm = model_of_fit h sub_coeffs in
            preds := (Expr.eval sm coords.(left_out), y.(left_out)) :: !preds);
          incr i
        done;
        if !ok then Some (Dataset.smape !preds) else None
      end
    in
    (match err with
    | None -> None
    | Some err -> Some (m, err, rss, List.length h))

(* Search-cost accounting: resolved once per select_best call; a [None]
   registry costs nothing on the scoring path. *)
let bump = function None -> () | Some c -> Obs_metrics.incr c
let bump_n n = function None -> () | Some c -> Obs_metrics.add c n

let candidate_counter metrics cls =
  Option.map
    (fun reg -> Obs_metrics.counter reg ("search.candidates." ^ cls))
    metrics

(* The search.* event vocabulary; doc/OBSERVABILITY.md lists exactly
   these (a drift test compares). *)
let event_names =
  [
    ("search.best", "a candidate hypothesis improved on the best so far");
    ("search.selected", "the search finished and selected its model");
  ]

(* Score every hypothesis; return the winner as a [result].  The constant
   model (intercept only) always participates; a parametric hypothesis
   must beat its cross-validated error by [min_improvement] (relative) to
   be selected — otherwise noise on constant functions gets modeled.

   Scoring each candidate is independent of every other, so with a pool
   the evaluations fan out over worker domains ([map_init] gives each
   worker one private scratch); selection stays a serial fold on the
   submitting domain, in candidate order, replicating the serial
   accounting and tie-breaking exactly — the chosen model, error and
   every search.* counter are bit-identical to the serial search. *)
let select_best ?(min_improvement = 0.) ?metrics ?pool
    ?(events = Obs_events.disabled) hypotheses points =
  let record_select_s =
    match
      Option.map (fun reg -> Obs_metrics.gauge reg "search.select_s") metrics
    with
    | None -> fun _ -> ()
    | Some g -> Obs_metrics.add_gauge g
  in
  Obs_clock.timed record_select_s @@ fun () ->
  let evaluated =
    Option.map (fun reg -> Obs_metrics.counter reg "search.evaluated") metrics
  in
  let rej_unfit =
    Option.map
      (fun reg -> Obs_metrics.counter reg "search.rejected.unfit")
      metrics
  in
  let rej_threshold =
    Option.map
      (fun reg -> Obs_metrics.counter reg "search.rejected.threshold")
      metrics
  in
  let coords = Array.of_list (List.map fst points) in
  let y = Array.of_list (List.map snd points) in
  let n = Array.length coords in
  (* The constant hypothesis [] is scored first to anchor the threshold;
     it rides at the head of the evaluation batch. *)
  let scored =
    match pool with
    | Some p when Par.Pool.jobs p > 1 ->
      Par.Pool.map_init p
        ~init:(fun () -> scratch_for n)
        (fun scratch h -> eval_hypothesis ~points ~coords ~y scratch h)
        ([] :: hypotheses)
    | _ ->
      let scratch = scratch_for n in
      List.map (eval_hypothesis ~points ~coords ~y scratch) ([] :: hypotheses)
  in
  let tried = ref 0 in
  (* Best-so-far improvements are reported from the serial selection fold
     on the submitting domain, so the event stream is deterministic and
     identical with or without a pool. *)
  let emit_best (_, err, _, terms) =
    if Obs_events.enabled events then
      Obs_events.emit events ~severity:Obs_events.Debug ~component:"search"
        ~fields:
          [
            ("error", Obs_events.Float err);
            ("terms", Obs_events.Int terms);
            ("tried", Obs_events.Int !tried);
          ]
        "search.best"
  in
  let consider best scored_cand =
    incr tried;
    bump evaluated;
    match scored_cand with
    | Some ((_, cerr, crss, cterms) as cand) -> (
      match best with
      | None -> Some cand
      | Some (_, berr, brss, bterms) ->
        (* Prefer lower CV error; break near-ties toward fewer terms,
           then lower RSS. *)
        if
          cerr < berr -. 1e-9
          || (Float.abs (cerr -. berr) <= 1e-9
              && (cterms < bterms
                  || (cterms = bterms && crss < brss)))
        then Some cand
        else best)
    | None ->
      bump rej_unfit;
      best
  in
  let constant_eval, hyp_evals =
    match scored with c :: rest -> (c, rest) | [] -> (None, [])
  in
  let constant = consider None constant_eval in
  (match constant with Some c -> emit_best c | None -> ());
  let threshold =
    match constant with
    | Some (_, cerr, _, _) -> cerr *. (1. -. min_improvement)
    | None -> Float.infinity
  in
  let best =
    List.fold_left
      (fun best scored_cand ->
        let cand = consider best scored_cand in
        match cand with
        | Some ((_, err, _, terms) as c)
          when terms = 0 || err <= threshold +. 1e-12 ->
          if cand != best then emit_best c;
          cand
        | _ ->
          (* Only a *new* candidate reaching this branch was beaten by
             the constant-model margin; an unchanged best was counted
             already. *)
          if cand != best then bump rej_threshold;
          best)
      constant hyp_evals
  in
  let result =
    match best with
    | Some (model, error, rss, _) ->
      { model; error; rss; hypotheses_tried = !tried }
    | None ->
      (* Degenerate data (e.g. no points): report a constant zero model. *)
      { model = Expr.constant 0.; error = 0.; rss = 0.;
        hypotheses_tried = !tried }
  in
  if Obs_events.enabled events then
    Obs_events.emit events ~component:"search"
      ~fields:
        [
          ("error", Obs_events.Float result.error);
          ("terms", Obs_events.Int (List.length result.model.Expr.terms));
          ("tried", Obs_events.Int result.hypotheses_tried);
        ]
      "search.selected";
  result

(* -- single-parameter search --------------------------------------------- *)

let allowed_param constraints p =
  match constraints.allowed with None -> true | Some l -> List.mem p l

(** Fit a model in one parameter from [(x, y-mean)] samples. *)
let single ?(config = default_config) ?(constraints = unconstrained) ~param
    samples =
  let points = List.map (fun (x, y) -> ([ (param, x) ], y)) samples in
  let select_best =
    select_best ~min_improvement:config.min_improvement ?metrics:config.metrics
      ?pool:config.pool ~events:config.events
  in
  if not (allowed_param constraints param) then select_best [] points
  else begin
    let terms = simple_terms config in
    let n1 = List.map (fun t -> [ [ (param, t) ] ]) terms in
    let n2 =
      if config.max_terms < 2 then []
      else
        let arr = Array.of_list terms in
        let acc = ref [] in
        Array.iteri
          (fun i a ->
            Array.iteri
              (fun j b ->
                if j > i then acc := [ [ (param, a) ]; [ (param, b) ] ] :: !acc)
              arr)
          arr;
        !acc
    in
    bump_n (List.length n1) (candidate_counter config.metrics "single_term");
    bump_n (List.length n2) (candidate_counter config.metrics "two_term");
    select_best (n1 @ n2) points
  end

(* -- multi-parameter search ---------------------------------------------- *)

(* All partitions of a list into non-empty groups (Bell-number many; fine
   for <= 4 parameters). *)
let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    List.concat_map
      (fun part ->
        (* x joins an existing group, or starts its own. *)
        let extended =
          List.mapi
            (fun i _ ->
              List.mapi (fun j g -> if i = j then x :: g else g) part)
            part
        in
        ([ x ] :: part) :: extended)
      (partitions rest)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    s @ List.map (fun sub -> x :: sub) s

(* The dominant simple term of a fitted single-parameter model: the term
   whose contribution has the largest magnitude anywhere on the sampled
   range — the representative used when composing multi-parameter
   hypotheses.  (Choosing by asymptotic growth instead would mis-rank
   decreasing terms such as p^-1 against small increasing ones.) *)
let dominant_term param (m : Expr.model) xs =
  let magnitude coeff (st : Expr.simple_term) =
    List.fold_left
      (fun acc x -> Float.max acc (Float.abs (coeff *. Expr.eval_simple st x)))
      0. xs
  in
  List.filter_map
    (fun (t : Expr.compound_term) ->
      match List.assoc_opt param t.factors with
      | Some st when not (st.expo = 0. && st.logexp = 0) ->
        Some (magnitude t.coeff st, st)
      | _ -> None)
    m.terms
  |> List.fold_left
       (fun best (mag, st) ->
         match best with
         | Some (bmag, _) when bmag >= mag -> best
         | _ -> Some (mag, st))
       None
  |> Option.map snd

let group_allowed constraints group =
  match constraints.multiplicative with
  | None -> true
  | Some ok ->
    let rec pairs = function
      | [] | [ _ ] -> true
      | a :: rest -> List.for_all (fun b -> ok a b || ok b a) rest && pairs rest
    in
    pairs (List.map fst group)

(** Fit a model in all of [data]'s parameters.  Implements Extra-P's
    multi-parameter heuristic: best single-parameter model per parameter
    (on the slice where the other parameters sit at their minimum), then
    all additive/multiplicative compositions of the dominant terms. *)
(* The configured collapse of a point's repetitions. *)
let point_value config (pt : Dataset.point) =
  match config.aggregate with
  | Mean -> Dataset.point_mean pt
  | Median -> Stats.median pt.Dataset.reps

let multi ?(config = default_config) ?(constraints = unconstrained) data =
  if data.Dataset.points = [] then
    invalid_arg "Model.Search.multi: empty dataset (no observed configurations)";
  let params = List.filter (allowed_param constraints) data.Dataset.params in
  let points =
    List.map
      (fun p -> (p.Dataset.coords, point_value config p))
      data.Dataset.points
  in
  let select_best =
    select_best ~min_improvement:config.min_improvement ?metrics:config.metrics
      ?pool:config.pool ~events:config.events
  in
  match params with
  | [] -> select_best [] points
  | [ p ] ->
    (* Single free parameter: collapse coordinates and delegate. *)
    let samples =
      List.map (fun pt -> (Dataset.coord pt p, point_value config pt)) data.points
    in
    let r = single ~config ~constraints ~param:p samples in
    (* Re-express the error against the full point set for comparability. *)
    { r with
      error =
        Dataset.smape
          (List.map (fun (c, y) -> (Expr.eval r.model c, y)) points) }
  | _ ->
    (* Phase 1: candidate terms per parameter — the dominant term of the
       best single-parameter model plus the term of the best one-term
       hypothesis (often cleaner when the full model slightly overfits). *)
    let candidate_terms =
      List.filter_map
        (fun p ->
          let fixed =
            List.filter_map
              (fun q ->
                if q = p then None else Some (q, Dataset.min_value data q))
              data.Dataset.params
          in
          let sliced = Dataset.slice data ~fixed in
          let samples =
            List.map
              (fun pt -> (Dataset.coord pt p, point_value config pt))
              sliced.Dataset.points
          in
          if List.length samples < 2 then None
          else begin
            let xs = List.map fst samples in
            let best = single ~config ~constraints ~param:p samples in
            let best1 =
              single ~config:{ config with max_terms = 1 } ~constraints
                ~param:p samples
            in
            let terms =
              List.filter_map
                (fun (m : Expr.model) -> dominant_term p m xs)
                [ best.model; best1.model ]
              |> List.sort_uniq compare
            in
            if terms = [] then None else Some (p, terms)
          end)
        params
    in
    (* Phase 2: all subset/partition compositions over the candidate
       terms. *)
    let rec assignments = function
      | [] -> [ [] ]
      | (p, terms) :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun st -> List.map (fun tail -> (p, st) :: tail) tails)
          terms
    in
    let hypotheses =
      subsets candidate_terms
      |> List.filter (fun s -> s <> [])
      |> List.concat_map assignments
      |> List.concat_map (fun subset ->
             partitions subset
             |> List.filter_map (fun part ->
                    if List.for_all (group_allowed constraints) part then
                      Some (part : hypothesis)
                    else None))
      |> List.sort_uniq compare
    in
    bump_n (List.length hypotheses)
      (candidate_counter config.metrics "multi_param");
    select_best hypotheses points

(* -- degradation-tolerant search ------------------------------------------ *)

(** Outlier-robust fit: per configuration, reject repetitions whose
    modified z-score exceeds [threshold] (MAD-based, see
    {!Stats.mad_filter}), drop configurations left with no repetitions,
    aggregate the survivors by median, and run {!multi}.  Returns the
    result plus the number of rejected measurements — campaigns report
    it so a model fitted from degraded data says so. *)
let multi_robust ?(threshold = 3.5) ?(config = default_config)
    ?(constraints = unconstrained) data =
  let rejected = ref 0 in
  let points =
    List.filter_map
      (fun (pt : Dataset.point) ->
        let kept = Stats.mad_filter ~threshold pt.Dataset.reps in
        rejected := !rejected + (List.length pt.Dataset.reps - List.length kept);
        if kept = [] then None else Some { pt with Dataset.reps = kept })
      data.Dataset.points
  in
  let r =
    multi
      ~config:{ config with aggregate = Median }
      ~constraints
      { data with Dataset.points }
  in
  (r, !rejected)
