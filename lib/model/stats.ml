(** Model-quality statistics beyond the selection metric: coefficient of
    determination, adjusted R^2, the Akaike information criterion used by
    newer Extra-P versions, and simple bootstrap confidence intervals for
    model predictions. *)

(** Pairs of (prediction, observation). *)
type fit = (float * float) list

let sum = List.fold_left ( +. ) 0.

let mean xs =
  match xs with [] -> 0. | _ -> sum xs /. float_of_int (List.length xs)

let rss (pairs : fit) =
  sum (List.map (fun (p, o) -> (p -. o) ** 2.) pairs)

let tss (pairs : fit) =
  let m = mean (List.map snd pairs) in
  sum (List.map (fun (_, o) -> (o -. m) ** 2.) pairs)

(** Coefficient of determination; 1 = perfect fit, can be negative for
    models worse than the mean. *)
let r_squared pairs =
  let t = tss pairs in
  if t = 0. then if rss pairs = 0. then 1. else 0.
  else 1. -. (rss pairs /. t)

(** Adjusted R^2 penalising the [k] fitted coefficients. *)
let adjusted_r_squared ~k pairs =
  let n = List.length pairs in
  if n <= k + 1 then neg_infinity
  else
    let r2 = r_squared pairs in
    1. -. ((1. -. r2) *. float_of_int (n - 1) /. float_of_int (n - k - 1))

(** Akaike information criterion under Gaussian residuals, with the
    small-sample correction (AICc).  Lower is better. *)
let aic ?(corrected = true) ~k pairs =
  let n = float_of_int (List.length pairs) in
  if n <= 0. then infinity
  else
    let sigma2 = Float.max 1e-300 (rss pairs /. n) in
    let kf = float_of_int (k + 1) (* + variance parameter *) in
    let base = (n *. Float.log sigma2) +. (2. *. kf) in
    if corrected && n -. kf -. 1. > 0. then
      base +. (2. *. kf *. (kf +. 1.) /. (n -. kf -. 1.))
    else base

(** Relative prediction error at one configuration. *)
let relative_error ~predicted ~observed =
  if observed = 0. then Float.abs predicted
  else Float.abs (predicted -. observed) /. Float.abs observed

(** Median of a sample; [nan] on empty input. *)
let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

(** Raw (unscaled) median absolute deviation; [nan] on empty input. *)
let mad xs =
  match xs with
  | [] -> nan
  | _ ->
    let m = median xs in
    median (List.map (fun x -> Float.abs (x -. m)) xs)

(* Consistency constant: 1.4826 * MAD estimates sigma under Gaussians,
   so the threshold below is a modified z-score (Iglewicz-Hoaglin). *)
let mad_sigma = 1.4826

(** Drop sample values whose modified z-score exceeds [threshold] — the
    standard robust outlier rejection (default 3.5).  When the MAD is
    zero (at least half the values identical) only exact-median values
    survive, since any deviation then has infinite z-score. *)
let mad_filter ?(threshold = 3.5) xs =
  match xs with
  | [] | [ _ ] -> xs
  | _ ->
    let med = median xs in
    let scale = mad_sigma *. mad xs in
    if scale = 0. then List.filter (fun x -> x = med) xs
    else List.filter (fun x -> Float.abs (x -. med) /. scale <= threshold) xs

(** Percentile (nearest-rank) of a sample. *)
let percentile q xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    let rank =
      int_of_float (Float.round (q /. 100. *. float_of_int (n - 1)))
    in
    List.nth sorted (max 0 (min (n - 1) rank))

(** Bootstrap confidence interval of a model's prediction at [coords]:
    refit on resampled points [trials] times and take the 2.5/97.5
    percentiles.  [fitter] maps a point list to a prediction function. *)
let bootstrap_ci ?(trials = 200) ?(seed = 17) ~fitter ~coords points =
  let n = List.length points in
  if n = 0 then (nan, nan)
  else begin
    let rng = Random.State.make [| seed |] in
    let arr = Array.of_list points in
    let preds = ref [] in
    for _ = 1 to trials do
      let resample =
        List.init n (fun _ -> arr.(Random.State.int rng n))
      in
      match fitter resample with
      | Some predict -> preds := predict coords :: !preds
      | None -> ()
    done;
    (percentile 2.5 !preds, percentile 97.5 !preds)
  end

(** Pairs of a model against a dataset's point means. *)
let pairs_of_model (m : Expr.model) (data : Dataset.t) : fit =
  List.map
    (fun (pt : Dataset.point) ->
      (Expr.eval m pt.Dataset.coords, Dataset.point_mean pt))
    data.Dataset.points

(** Number of fitted coefficients of a model (terms + intercept). *)
let coefficients (m : Expr.model) = 1 + List.length m.Expr.terms

(** One-stop evaluation of a fitted model against its dataset. *)
type summary = {
  s_r2 : float;
  s_adj_r2 : float;
  s_aicc : float;
  s_smape : float;
  s_rss : float;
}

let summarize (m : Expr.model) (data : Dataset.t) =
  let pairs = pairs_of_model m data in
  let k = coefficients m in
  {
    s_r2 = r_squared pairs;
    s_adj_r2 = adjusted_r_squared ~k pairs;
    s_aicc = aic ~k pairs;
    s_smape = Dataset.smape pairs;
    s_rss = rss pairs;
  }

let pp_summary ppf s =
  Fmt.pf ppf "R2=%.4f adjR2=%.4f AICc=%.1f SMAPE=%.2f%% RSS=%.3g" s.s_r2
    s.s_adj_r2 s.s_aicc s.s_smape s.s_rss
