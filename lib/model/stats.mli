(** Model-quality statistics: R^2, adjusted R^2, AICc, relative errors,
    bootstrap confidence intervals. *)

type fit = (float * float) list
(** Pairs of (prediction, observation). *)

val mean : float list -> float
val rss : fit -> float
val tss : fit -> float

val r_squared : fit -> float
(** 1 = perfect; negative = worse than predicting the mean. *)

val adjusted_r_squared : k:int -> fit -> float
(** Penalises the [k] fitted coefficients. *)

val aic : ?corrected:bool -> k:int -> fit -> float
(** Akaike information criterion under Gaussian residuals (AICc by
    default); lower is better. *)

val relative_error : predicted:float -> observed:float -> float

val median : float list -> float
(** Median; [nan] on empty input. *)

val mad : float list -> float
(** Raw (unscaled) median absolute deviation; [nan] on empty input. *)

val mad_filter : ?threshold:float -> float list -> float list
(** Drop values whose modified z-score ([|x - median| / (1.4826 * MAD)])
    exceeds [threshold] (default 3.5).  Zero MAD keeps only exact-median
    values; lists of length <= 1 pass through. *)

val percentile : float -> float list -> float
(** Nearest-rank percentile; [nan] on empty input. *)

val bootstrap_ci :
  ?trials:int ->
  ?seed:int ->
  fitter:('a list -> ((string * float) list -> float) option) ->
  coords:(string * float) list ->
  'a list ->
  float * float
(** 95% bootstrap interval of a prediction at [coords], refitting on
    resampled points. *)

val pairs_of_model : Expr.model -> Dataset.t -> fit
val coefficients : Expr.model -> int

type summary = {
  s_r2 : float;
  s_adj_r2 : float;
  s_aicc : float;
  s_smape : float;
  s_rss : float;
}

val summarize : Expr.model -> Dataset.t -> summary
val pp_summary : summary Fmt.t
