(** PMNF hypothesis search — the Extra-P model generator (paper Section
    4.5), with the published single-parameter search space and the
    multi-parameter best-single-models heuristic.  The hybrid (tainted)
    mode restricts the space through {!constraints}. *)

type aggregate =
  | Mean    (** classic Extra-P: fit the mean of the repetitions *)
  | Median  (** robust to corrupted repetitions *)

type config = {
  exponents : float list;    (** the set I of polynomial exponents *)
  log_exponents : int list;  (** the set J of logarithm exponents *)
  max_terms : int;           (** n in the PMNF; the paper uses 2 *)
  min_improvement : float;
      (** relative cross-validated-error margin a parametric hypothesis
          must gain over the constant model.  Default 0 — Extra-P 3.0's
          pure best-fit selection, which is what lets noise on constant
          functions be modeled (the B1 failure mode); set to ~0.1 as an
          opt-in guard. *)
  aggregate : aggregate;
      (** how a point's repeated measurements collapse into the fitted
          value; default [Mean] *)
  metrics : Obs_metrics.t option;
      (** when set, the search records [search.candidates.single_term],
          [search.candidates.two_term], [search.candidates.multi_param],
          [search.evaluated], [search.rejected.unfit] and
          [search.rejected.threshold] counters into this registry.
          Default [None]: no accounting, no overhead. *)
  pool : Par.Pool.t option;
      (** when set, candidate hypotheses are scored on this domain pool
          (each worker reuses a private scratch design matrix); selection
          stays a serial fold in candidate order, so the chosen model,
          error, and every search.* counter are bit-identical to the
          serial search.  Default [None]: serial scoring. *)
  events : Obs_events.sink;
      (** structured {!event_names} stream — best-so-far improvements
          ([search.best], debug) and the final selection
          ([search.selected]).  Emitted from the serial selection fold,
          so the stream is identical with or without a pool.  Default
          [Obs_events.disabled]. *)
}

val default_config : config
(** The exact single-parameter search space printed in the paper. *)

val extended_config : config
(** [default_config] plus negative polynomial exponents, for
    strong-scaling metrics that shrink with a parameter. *)

val event_names : (string * string) list
(** The [search.*] structured-event vocabulary (name, meaning) — kept in
    sync with doc/OBSERVABILITY.md by a drift test. *)

type constraints = {
  allowed : string list option;
      (** parameters permitted to appear; [None] = all (black-box mode) *)
  multiplicative : (string -> string -> bool) option;
      (** may these two parameters share a product term? [None] = yes *)
}

val unconstrained : constraints

type result = {
  model : Expr.model;
  error : float;  (** leave-one-out cross-validated SMAPE, percent *)
  rss : float;
  hypotheses_tried : int;
}

val single :
  ?config:config ->
  ?constraints:constraints ->
  param:string ->
  (float * float) list ->
  result
(** Best single-parameter model of [(x, y)] samples.  The constant model
    always participates; a hypothesis must beat it on cross-validated
    error to be selected. *)

val multi :
  ?config:config -> ?constraints:constraints -> Dataset.t -> result
(** Multi-parameter search: per-parameter best single models on slices
    where the other parameters sit at their minimum, then all
    additive/multiplicative compositions of their dominant terms.
    @raise Invalid_argument on a dataset with no points
    (["Model.Search.multi: empty dataset (no observed configurations)"]). *)

val multi_robust :
  ?threshold:float ->
  ?config:config ->
  ?constraints:constraints ->
  Dataset.t ->
  result * int
(** Degradation-tolerant {!multi}: per configuration, repetitions whose
    modified z-score exceeds [threshold] (default 3.5; see
    {!Stats.mad_filter}) are rejected, configurations left empty are
    dropped, and the survivors are aggregated by median.  Returns the
    fit plus the number of rejected measurements.
    @raise Invalid_argument when rejection leaves no points at all. *)
