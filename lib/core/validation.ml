(** Validation of measurements and experiment designs (paper Section C).

    Two checks: (C1) hardware-contention detection — a statistically sound
    empirical model depends on a parameter the taint analysis proved
    cannot influence the code, so the effect must be external to the
    program; (C2) experiment-design validation — parameter-dependent
    branches flip between configurations of the experiment, so the data
    mixes qualitatively different behaviors and the modeling domain should
    be split. *)

module SSet = Ir.Cfg.SSet
module Obs = Interp.Observations

(* -- C1: contention ------------------------------------------------------ *)

type contention_finding = {
  cf_func : string;
  cf_external_params : string list;
      (** parameters the model uses but taint rules out *)
  cf_model : Model.Expr.model;
  cf_error : float;
}

(** [detect_contention t datasets] fits a black-box model to every
    function dataset and reports functions whose (statistically sound,
    CoV <= [max_cov]) model contradicts the taint-derived dependency set. *)
let detect_contention ?(max_cov = 0.1) ?config (t : Pipeline.t) datasets =
  List.filter_map
    (fun (fname, data) ->
      if Model.Dataset.max_cov data > max_cov then None
      else
        let r = Model.Search.multi ?config data in
        let external_params =
          Modeling.contradicts_taint t ~fname r |> SSet.elements
        in
        if external_params = [] then None
        else
          Some
            {
              cf_func = fname;
              cf_external_params = external_params;
              cf_model = r.Model.Search.model;
              cf_error = r.Model.Search.error;
            })
    datasets

(* -- C2: experiment design ----------------------------------------------- *)

type branch_behavior = Not_visited | Then_only | Else_only | Both

let behavior_name = function
  | Not_visited -> "not-visited"
  | Then_only -> "then"
  | Else_only -> "else"
  | Both -> "both"

type design_finding = {
  df_func : string;
  df_block : string;
  df_params : string list;  (** parameters tainting the branch condition *)
  df_behaviors : ((string * Ir.Types.value) list * branch_behavior) list;
      (** taint-run configuration -> observed behavior *)
}

(* Aggregate behavior of one static branch (function, block) in one run,
   summed over all call paths that reached it. *)
let branch_behavior (t : Pipeline.t) ~fname ~block =
  let taken = ref 0 and not_taken = ref 0 in
  Hashtbl.iter
    (fun _ (bo : Obs.branch_obs) ->
      if bo.Obs.br_func = fname && bo.Obs.br_block = block then begin
        taken := !taken + bo.Obs.br_taken;
        not_taken := !not_taken + bo.Obs.br_not_taken
      end)
    t.obs.Obs.branches;
  match (!taken > 0, !not_taken > 0) with
  | true, true -> Both
  | true, false -> Then_only
  | false, true -> Else_only
  | false, false -> Not_visited

let branch_deps (t : Pipeline.t) ~fname ~block =
  Hashtbl.fold
    (fun _ (bo : Obs.branch_obs) s ->
      if bo.Obs.br_func = fname && bo.Obs.br_block = block then
        List.fold_left
          (fun s n -> SSet.add n s)
          s
          (Taint.Label.names t.labels bo.Obs.br_dep)
      else s)
    t.obs.Obs.branches SSet.empty

(** Compare branch coverage across several tainted runs (one per
    configuration).  A finding is produced for every parameter-dependent
    static branch whose behavior is not uniform across the runs: the
    application (or a library) qualitatively changes behavior inside the
    modeling domain. *)
let validate_design ~model_params (runs : Pipeline.t list) =
  (* All static branches observed in any run. *)
  let keys = Hashtbl.create 64 in
  List.iter
    (fun (t : Pipeline.t) ->
      Hashtbl.iter
        (fun _ (bo : Obs.branch_obs) ->
          Hashtbl.replace keys (bo.Obs.br_func, bo.Obs.br_block) ())
        t.obs.Obs.branches)
    runs;
  Hashtbl.fold
    (fun (fname, block) () acc ->
      let dep_params =
        List.fold_left
          (fun s t -> SSet.union s (branch_deps t ~fname ~block))
          SSet.empty runs
      in
      if not (SSet.exists (fun p -> List.mem p model_params) dep_params) then
        acc
      else
        let behaviors =
          List.map
            (fun (t : Pipeline.t) ->
              (t.Pipeline.taint_args, branch_behavior t ~fname ~block))
            runs
        in
        let distinct = List.sort_uniq compare (List.map snd behaviors) in
        if List.length distinct <= 1 then acc
        else
          {
            df_func = fname;
            df_block = block;
            df_params = SSet.elements dep_params;
            df_behaviors = behaviors;
          }
          :: acc)
    keys []
  |> List.sort compare

(* -- C3: grid completeness ------------------------------------------------ *)

(* Resilient campaigns can abandon run coordinates; the dataset builders
   skip unobserved configurations silently, so a model fitted from an
   incomplete grid looks exactly like one fitted from a full grid.  The
   gap report makes the difference visible: which configurations of the
   design arrived short of repetitions, and which not at all. *)

type gap_report = {
  gr_expected : int;  (** configurations in the design *)
  gr_complete : int;  (** configurations with all repetitions present *)
  gr_partial : (Measure.Spec.params * int) list;
      (** configuration -> completed repetitions, 0 < n < reps *)
  gr_missing : Measure.Spec.params list;
      (** configurations with no completed run at all *)
}

let grid_gaps ~(design : Measure.Experiment.design)
    (runs : Measure.Simulator.run list) =
  let count params =
    List.length
      (List.filter
         (fun (r : Measure.Simulator.run) -> r.Measure.Simulator.rn_params = params)
         runs)
  in
  let configs = Measure.Experiment.configs design in
  let complete = ref 0 in
  let partial = ref [] in
  let missing = ref [] in
  List.iter
    (fun params ->
      let n = count params in
      if n >= design.Measure.Experiment.reps then incr complete
      else if n > 0 then partial := (params, n) :: !partial
      else missing := params :: !missing)
    configs;
  {
    gr_expected = List.length configs;
    gr_complete = !complete;
    gr_partial = List.rev !partial;
    gr_missing = List.rev !missing;
  }

let complete_grid r = r.gr_partial = [] && r.gr_missing = []

let pp_params ppf params =
  Fmt.pf ppf "(%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, v) -> Fmt.pf ppf "%s=%g" n v))
    params

let pp_gap_report ppf r =
  Fmt.pf ppf "grid: %d/%d configurations complete" r.gr_complete r.gr_expected;
  if r.gr_partial <> [] then
    Fmt.pf ppf "@,partial: %a"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (p, n) ->
           Fmt.pf ppf "%a with %d reps" pp_params p n))
      r.gr_partial;
  if r.gr_missing <> [] then
    Fmt.pf ppf "@,missing: %a"
      (Fmt.list ~sep:(Fmt.any "; ") pp_params)
      r.gr_missing
