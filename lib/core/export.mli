(** Machine-readable (JSON) export of analysis results, datasets and
    fitted models. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val pp : json Fmt.t
val to_string : json -> string

val model_json : Model.Expr.model -> json
val result_json : Model.Search.result -> json
val dataset_json : Model.Dataset.t -> json
val func_deps_json : Deps.func_deps -> json

val analysis_json : Pipeline.t -> model_params:string list -> json
(** Program summary, per-function classification/dependencies, warnings. *)

val snapshot_json : Obs_metrics.snapshot -> json
(** Counters, gauges, and histograms keyed by metric name. *)

val stats_json : Pipeline.t -> json
(** Self-profile of one analysis: phase durations, instruction counts by
    class, label-table statistics, full metrics snapshot. *)

val models_json :
  (string * Model.Search.result * Model.Dataset.t) list -> json
(** Fitted models of a campaign, with quality statistics. *)
