(** The Perf-Taint pipeline (paper Figure 2): static analysis, one tainted
    run, and the post-processing that classifies every function and
    loop. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type t = {
  program : Ir.Types.program;
  static : Static_an.Classify.report;
  obs : Interp.Observations.t;
  labels : Taint.Label.table;
  deps : Deps.func_deps SMap.t;
  mpi_params : SSet.t SMap.t;
      (** per-MPI-routine dependencies (library database) *)
  world : Mpi_sim.Runtime.world;
  taint_args : (string * Ir.Types.value) list;
  steps : int;  (** instructions interpreted by the tainted run *)
  snapshot : Obs_metrics.snapshot;
      (** self-profile: phase durations ([pipeline.phase.*_s] gauges),
          label-table traffic ([taint.*] counters), and — when {!analyze}
          was given a registry — instruction-class counters *)
}

type func_status =
  | Pruned_static
  | Pruned_dynamic
  | Kernel
  | Comm_routine
  | Unexecuted

val status_name : func_status -> string

val analyze :
  ?engine:Interp.Engine.tier ->
  ?config:Interp.Machine.config ->
  ?world:Mpi_sim.Runtime.world ->
  ?metrics:Obs_metrics.t ->
  ?trace:Obs_trace.sink ->
  ?profile:Obs_profile.t ->
  Ir.Types.program ->
  args:Ir.Types.value list ->
  t
(** Validate, statically classify, then run the tainted execution.  The
    three phases (static analysis, tainted run, post-processing) are
    individually timed; [engine] selects the execution tier of the
    tainted run (default compiled; both tiers are bit-identical);
    [metrics] additionally enables per-instruction
    accounting in the engine, [trace] records phase/function
    spans and loop-entry instants, and [profile] samples the tainted
    run's call stack every [interval] executed steps (deterministic:
    driven by the step count, never wall time).
    @raise Ir.Types.Ir_error on malformed programs
    @raise Interp.Machine.Runtime_error on dynamic errors. *)

val phases : t -> (string * float) list
(** Phase durations of this analysis in seconds: [static], [taint_run],
    [post], [total]. *)

val executed : t -> string -> bool
val status : t -> model_params:string list -> string -> func_status
val function_names : t -> string list
val functions_with : t -> model_params:string list -> func_status -> string list

val relevant_functions : t -> model_params:string list -> string list
(** The instrumentation selection: kernels and comm routines (A3). *)

val mpi_routines_used : t -> SSet.t
val observed_params : t -> SSet.t

val relevant_loops : t -> model_params:string list -> int
(** Distinct static loops depending on a model parameter (Table 2). *)

val functions_affected_by : t -> string -> string list
val loops_affected_by : t -> string -> int
val distinct_loops_observed : t -> int
