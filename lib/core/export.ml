(** Machine-readable export of analysis results and fitted models, as
    JSON.  A deliberately tiny hand-rolled emitter: the sealed toolchain
    carries no JSON library, and emission (not parsing) is all the
    pipeline needs to feed dashboards or the original Extra-P tooling. *)

module SSet = Ir.Cfg.SSet
module SMap = Ir.Cfg.SMap

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* NaN and the infinities have no JSON representation — "%g" would print
   "nan"/"inf" and corrupt the document — so they all become null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_repr f)
  | String s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List items ->
    Fmt.pf ppf "@[<hv 2>[%a]@]" Fmt.(list ~sep:(any ",@ ") pp) items
  | Obj fields ->
    let pfield ppf (k, v) = Fmt.pf ppf "\"%s\": %a" (escape k) pp v in
    Fmt.pf ppf "@[<hv 2>{%a}@]" Fmt.(list ~sep:(any ",@ ") pfield) fields

let to_string j = Fmt.str "%a" pp j

let strings ss = List (List.map (fun s -> String s) ss)

(* -- model expressions ------------------------------------------------------ *)

let simple_term_json (st : Model.Expr.simple_term) =
  Obj [ ("exponent", Float st.Model.Expr.expo);
        ("log_exponent", Int st.Model.Expr.logexp) ]

let model_json (m : Model.Expr.model) =
  Obj
    [
      ("constant", Float m.Model.Expr.const);
      ( "terms",
        List
          (List.map
             (fun (t : Model.Expr.compound_term) ->
               Obj
                 [
                   ("coefficient", Float t.Model.Expr.coeff);
                   ( "factors",
                     Obj
                       (List.map
                          (fun (p, st) -> (p, simple_term_json st))
                          t.Model.Expr.factors) );
                 ])
             m.Model.Expr.terms) );
      ("human_readable", String (Model.Expr.to_string m));
    ]

let result_json (r : Model.Search.result) =
  Obj
    [
      ("model", model_json r.Model.Search.model);
      ("smape_percent", Float r.Model.Search.error);
      ("rss", Float r.Model.Search.rss);
      ("hypotheses_tried", Int r.Model.Search.hypotheses_tried);
    ]

(* -- datasets ----------------------------------------------------------------- *)

let dataset_json (d : Model.Dataset.t) =
  Obj
    [
      ("parameters", strings d.Model.Dataset.params);
      ( "points",
        List
          (List.map
             (fun (pt : Model.Dataset.point) ->
               Obj
                 [
                   ( "coordinates",
                     Obj
                       (List.map (fun (p, v) -> (p, Float v)) pt.Model.Dataset.coords)
                   );
                   ("measurements",
                    List (List.map (fun v -> Float v) pt.Model.Dataset.reps));
                 ])
             d.Model.Dataset.points) );
    ]

(* -- analysis ------------------------------------------------------------------ *)

let func_deps_json (fd : Deps.func_deps) =
  Obj
    [
      ("parameters", strings (SSet.elements fd.Deps.fd_params));
      ("loop_parameters", strings (SSet.elements fd.Deps.fd_loop_params));
      ("comm_parameters", strings (SSet.elements fd.Deps.fd_comm_params));
      ( "multiplicative_pairs",
        List
          (List.map
             (fun (a, b) -> List [ String a; String b ])
             fd.Deps.fd_multiplicative) );
      ( "loops",
        List
          (List.map
             (fun (ld : Deps.loop_dep) ->
               Obj
                 [
                   ("header", String ld.Deps.ld_header);
                   ("callpath", String ld.Deps.ld_callpath);
                   ("depth", Int ld.Deps.ld_depth);
                   ("iterations", Int ld.Deps.ld_iters);
                   ("entries", Int ld.Deps.ld_entries);
                   ("parameters", strings (SSet.elements ld.Deps.ld_params));
                 ])
             fd.Deps.fd_loops) );
      ("mpi_routines", strings (SSet.elements fd.Deps.fd_mpi_routines));
    ]

(** Full analysis report: program summary, per-function classification and
    dependencies, static warnings. *)
let analysis_json (t : Pipeline.t) ~model_params =
  let ov = Report.overview t ~model_params in
  Obj
    [
      ("program", String t.program.Ir.Types.pname);
      ("model_parameters", strings model_params);
      ( "taint_run",
        Obj
          [
            ( "arguments",
              Obj
                (List.map
                   (fun (p, v) ->
                     ( p,
                       match v with
                       | Ir.Types.VInt i -> Int i
                       | Ir.Types.VFloat f -> Float f
                       | Ir.Types.VBool b -> Bool b
                       | Ir.Types.VArr _ | Ir.Types.VUnit -> Null ))
                   t.taint_args) );
            ("ranks", Int t.world.Mpi_sim.Runtime.ranks);
            ("instructions", Int t.steps);
          ] );
      ( "overview",
        Obj
          [
            ("functions", Int ov.Report.ov_functions);
            ("pruned_static", Int ov.Report.ov_pruned_static);
            ("pruned_dynamic", Int ov.Report.ov_pruned_dynamic);
            ("kernels", Int ov.Report.ov_kernels);
            ("comm_routines", Int ov.Report.ov_comm_routines);
            ("mpi_functions", Int ov.Report.ov_mpi_functions);
            ("loops", Int ov.Report.ov_loops);
            ("loops_pruned_static", Int ov.Report.ov_loops_pruned_static);
            ("loops_relevant", Int ov.Report.ov_loops_relevant);
          ] );
      ( "functions",
        Obj
          (List.map
             (fun fname ->
               let status =
                 Pipeline.status_name (Pipeline.status t ~model_params fname)
               in
               let deps =
                 match Deps.find t.deps fname with
                 | Some fd -> func_deps_json fd
                 | None -> Obj []
               in
               (fname, Obj [ ("status", String status); ("deps", deps) ]))
             (Pipeline.function_names t)) );
      ( "warnings",
        strings t.static.Static_an.Classify.warnings );
    ]

(* -- self-profile ------------------------------------------------------------ *)

let hist_snapshot_json (hs : Obs_metrics.hist_snapshot) =
  Obj
    [
      ( "buckets",
        List
          (List.map
             (fun (bound, count) ->
               Obj [ ("le", Float bound); ("count", Int count) ])
             hs.Obs_metrics.hs_buckets) );
      ("overflow", Int hs.Obs_metrics.hs_overflow);
      ("count", Int hs.Obs_metrics.hs_count);
      ("sum", Float hs.Obs_metrics.hs_sum);
      ("min", Float hs.Obs_metrics.hs_min);
      ("p50", Float (Obs_metrics.quantile hs 0.50));
      ("p95", Float (Obs_metrics.quantile hs 0.95));
      ("p99", Float (Obs_metrics.quantile hs 0.99));
      ("max", Float hs.Obs_metrics.hs_max);
    ]

(** A metrics snapshot: counters, gauges, histograms, each as an object
    keyed by metric name. *)
let snapshot_json (s : Obs_metrics.snapshot) =
  Obj
    [
      ( "counters",
        Obj (List.map (fun (n, v) -> (n, Int v)) s.Obs_metrics.counters) );
      ("gauges", Obj (List.map (fun (n, v) -> (n, Float v)) s.Obs_metrics.gauges));
      ( "histograms",
        Obj
          (List.map
             (fun (n, hs) -> (n, hist_snapshot_json hs))
             s.Obs_metrics.histograms) );
    ]

(** Self-profile of one analysis: phase durations, instruction counts by
    opcode class, label-table statistics, and the raw metrics snapshot. *)
let stats_json (t : Pipeline.t) =
  let s = t.Pipeline.snapshot in
  let lstats = Taint.Label.table_stats t.Pipeline.labels in
  Obj
    [
      ("program", String t.Pipeline.program.Ir.Types.pname);
      ( "phases",
        Obj (List.map (fun (n, v) -> (n, Float v)) (Pipeline.phases t)) );
      ( "instructions",
        Obj
          (("total", Int t.Pipeline.steps)
          :: List.map
               (fun (cls, v) -> (cls, Int v))
               (Obs_metrics.counters_with_prefix s "interp.instr.")) );
      ( "label_table",
        Obj
          [
            ("labels", Int lstats.Taint.Label.labels);
            ("unions", Int lstats.Taint.Label.unions);
            ("dedup_hits", Int lstats.Taint.Label.dedup_hits);
          ] );
      ("metrics", snapshot_json s);
    ]

(** Fitted models of a campaign, with quality statistics. *)
let models_json entries =
  Obj
    (List.map
       (fun (fname, (r : Model.Search.result), (data : Model.Dataset.t)) ->
         let stats = Model.Stats.summarize r.Model.Search.model data in
         ( fname,
           Obj
             [
               ("fit", result_json r);
               ("r_squared", Float stats.Model.Stats.s_r2);
               ("adjusted_r_squared", Float stats.Model.Stats.s_adj_r2);
               ("aicc", Float stats.Model.Stats.s_aicc);
               ("max_cov", Float (Model.Dataset.max_cov data));
             ] ))
       entries)
