(** Validation of measurements and experiment designs (paper Section C):
    hardware-contention detection and qualitative-behavior checks. *)

module SSet = Ir.Cfg.SSet

type contention_finding = {
  cf_func : string;
  cf_external_params : string list;
  cf_model : Model.Expr.model;
  cf_error : float;
}

val detect_contention :
  ?max_cov:float ->
  ?config:Model.Search.config ->
  Pipeline.t ->
  (string * Model.Dataset.t) list ->
  contention_finding list
(** Fit a black-box model per function dataset; report those whose
    statistically sound (CoV <= [max_cov], default 0.1) model contradicts
    the taint-derived dependency set. *)

type branch_behavior = Not_visited | Then_only | Else_only | Both

val behavior_name : branch_behavior -> string

type design_finding = {
  df_func : string;
  df_block : string;
  df_params : string list;
  df_behaviors : ((string * Ir.Types.value) list * branch_behavior) list;
      (** taint-run configuration -> observed behavior *)
}

val branch_behavior : Pipeline.t -> fname:string -> block:string -> branch_behavior

val validate_design :
  model_params:string list -> Pipeline.t list -> design_finding list
(** Compare branch coverage across tainted runs; report parameter-tainted
    static branches whose behavior is not uniform (C2). *)

type gap_report = {
  gr_expected : int;  (** configurations in the design *)
  gr_complete : int;  (** configurations with all repetitions present *)
  gr_partial : (Measure.Spec.params * int) list;
      (** configuration -> completed repetitions, 0 < n < reps *)
  gr_missing : Measure.Spec.params list;
      (** configurations with no completed run at all *)
}

val grid_gaps :
  design:Measure.Experiment.design -> Measure.Simulator.run list -> gap_report
(** Which configurations of the design the run list actually covers —
    the visibility layer over dataset builders that skip unobserved
    configurations silently (C3, resilient campaigns). *)

val complete_grid : gap_report -> bool

val pp_gap_report : gap_report Fmt.t
