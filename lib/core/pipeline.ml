(** The Perf-Taint pipeline (paper Figure 2): static analysis, a tainted
    run of the program, and the post-processing that classifies every
    function and loop.  The result feeds experiment design, hybrid
    modeling, and validation. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet
module Obs = Interp.Observations

type t = {
  program : Ir.Types.program;
  static : Static_an.Classify.report;
  obs : Obs.t;
  labels : Taint.Label.table;
  deps : Deps.func_deps SMap.t;
  mpi_params : SSet.t SMap.t;
      (** per-MPI-routine dependencies from the library database *)
  world : Mpi_sim.Runtime.world;
  taint_args : (string * Ir.Types.value) list;
      (** entry bindings used for the tainted run *)
  steps : int;  (** instructions interpreted during the tainted run *)
  snapshot : Obs_metrics.snapshot;
      (** self-profile of this analysis: phase durations, label-table
          traffic, and (when a registry was supplied) per-instruction
          accounting *)
}

(** How a function is treated after the two pruning phases, relative to a
    set of modeling parameters (Table 2's categories). *)
type func_status =
  | Pruned_static      (** constant, proven at compile time *)
  | Pruned_dynamic     (** constant w.r.t. the model parameters, proven by
                           the tainted run *)
  | Kernel             (** computational kernel: tainted loops *)
  | Comm_routine       (** calls parameter-dependent MPI routines *)
  | Unexecuted         (** never reached by the tainted run *)

let status_name = function
  | Pruned_static -> "pruned-static"
  | Pruned_dynamic -> "pruned-dynamic"
  | Kernel -> "kernel"
  | Comm_routine -> "comm"
  | Unexecuted -> "unexecuted"

(* Phase gauge names; `phases` below extracts them from the snapshot. *)
let phase_static = "pipeline.phase.static_s"
let phase_taint_run = "pipeline.phase.taint_run_s"
let phase_post = "pipeline.phase.post_s"
let phase_total = "pipeline.phase.total_s"

(* The analysis body over any taint-policy engine: the interpreted
   machine and the compiled tier expose the same {!Interp.Engine.S}
   face, so one first-class-module helper serves both. *)
let analyze_via (type a) (module E : Interp.Engine.S with type t = a) ~config
    ~world ?metrics ~trace ?profile program ~args =
  let reg = match metrics with Some m -> m | None -> Obs_metrics.create () in
  (* Lowering-cache traffic of this run: the counts live in domain-local
     refs inside Interp.Compiled (outside any engine registry, which the
     compile-identity oracle compares across tiers), so the pipeline
     snapshots the delta.  The interpreted tier never lowers — its delta
     is zero. *)
  let cache_h0, cache_m0 = Interp.Compiled.cache_stats () in
  let timed gauge_name span_name f =
    let record = Obs_metrics.set_gauge (Obs_metrics.gauge reg gauge_name) in
    Obs_clock.timed record (fun () ->
        Obs_trace.with_span trace ~cat:"pipeline" span_name f)
  in
  let total_record =
    Obs_metrics.set_gauge (Obs_metrics.gauge reg phase_total)
  in
  let static, m, entry, obs, labels, deps, mpi_params =
    Obs_clock.timed total_record (fun () ->
        let static =
          timed phase_static "pipeline.static" (fun () ->
              Ir.Validate.check_exn program;
              Static_an.Classify.classify program
                ~relevant_prim:Mpi_sim.Costdb.relevant_prim)
        in
        let m = E.create ~config ?metrics ~trace ?profile program in
        let entry = Ir.Types.find_func program program.Ir.Types.entry in
        timed phase_taint_run "pipeline.taint_run" (fun () ->
            Mpi_sim.Runtime.install_host (module E) world m;
            ignore (E.run m args));
        let obs = E.observations m in
        let labels = E.label_table m in
        let deps, mpi_params =
          timed phase_post "pipeline.post" (fun () ->
              (Deps.of_observations labels obs, Deps.routine_params labels obs))
        in
        (static, m, entry, obs, labels, deps, mpi_params))
  in
  let lstats = Taint.Label.table_stats labels in
  Obs_metrics.add (Obs_metrics.counter reg "taint.labels") lstats.Taint.Label.labels;
  Obs_metrics.add (Obs_metrics.counter reg "taint.unions") lstats.Taint.Label.unions;
  Obs_metrics.add
    (Obs_metrics.counter reg "taint.dedup_hits")
    lstats.Taint.Label.dedup_hits;
  Obs_metrics.add
    (Obs_metrics.counter reg "interp.steps")
    (E.steps_executed m);
  let cache_h1, cache_m1 = Interp.Compiled.cache_stats () in
  Obs_metrics.add
    (Obs_metrics.counter reg "compile.cache_hit")
    (cache_h1 - cache_h0);
  Obs_metrics.add
    (Obs_metrics.counter reg "compile.cache_miss")
    (cache_m1 - cache_m0);
  (* Per-function instruction-count distribution: the quantile view of
     where the tainted run spent its steps.  Fed in function-name order
     so the float sum accumulates identically across runs. *)
  let func_hist =
    Obs_metrics.histogram reg
      ~bounds:[| 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 |]
      "interp.func_instrs"
  in
  List.iter
    (fun (fo : Interp.Observations.func_obs) ->
      if fo.Interp.Observations.fo_calls > 0 then
        Obs_metrics.observe func_hist
          (float_of_int fo.Interp.Observations.fo_instrs))
    (List.sort
       (fun a b ->
         compare a.Interp.Observations.fo_func b.Interp.Observations.fo_func)
       (Interp.Observations.func_list obs));
  {
    program;
    static;
    obs;
    labels;
    deps;
    mpi_params;
    world;
    taint_args = List.combine entry.Ir.Types.fparams args;
    steps = E.steps_executed m;
    snapshot = Obs_metrics.snapshot reg;
  }

(** Run the full analysis: static classification, then one tainted run of
    [program] with entry arguments [args] under MPI world [world].

    [engine] selects the execution tier for the tainted run (default
    {!Interp.Engine.default_tier}, the compiled one); the tiers are
    bit-identical, checked continuously by the [compile-identity] fuzz
    oracle.  [metrics] turns on per-instruction accounting in the engine
    and collects everything into the given registry; without it a private
    registry still captures phase durations and label-table statistics
    (three clock reads and a handful of counters — negligible next to the
    run itself).  [trace] records pipeline-phase spans, per-call function
    spans and loop-entry instants.  [profile] attaches a deterministic
    sampling profiler to the tainted run. *)
let analyze ?(engine = Interp.Engine.default_tier)
    ?(config = Interp.Machine.default_config)
    ?(world = Mpi_sim.Runtime.default_world) ?metrics
    ?(trace = Obs_trace.disabled) ?profile program ~args =
  match engine with
  | Interp.Engine.Interpreted ->
    analyze_via (module Interp.Machine) ~config ~world ?metrics ~trace
      ?profile program ~args
  | Interp.Engine.Compiled ->
    analyze_via (module Interp.Compiled.Taint) ~config ~world ?metrics ~trace
      ?profile program ~args

(** Phase durations of this analysis, seconds, in pipeline order:
    [static], [taint_run], [post]. *)
let phases t =
  List.filter_map
    (fun (key, name) ->
      Option.map (fun v -> (name, v)) (Obs_metrics.find_gauge t.snapshot key))
    [
      (phase_static, "static");
      (phase_taint_run, "taint_run");
      (phase_post, "post");
      (phase_total, "total");
    ]

let executed t fname =
  match Hashtbl.find_opt t.obs.Obs.funcs fname with
  | Some fo -> fo.Obs.fo_calls > 0
  | None -> false

(** Classification of one function w.r.t. the chosen model parameters. *)
let status t ~model_params fname =
  if Static_an.Classify.is_pruned t.static fname then Pruned_static
  else if not (executed t fname) then Unexecuted
  else
    match Deps.find t.deps fname with
    | None -> Pruned_dynamic
    | Some fd ->
      let relevant s = SSet.exists (fun p -> List.mem p model_params) s in
      if relevant fd.Deps.fd_comm_params then Comm_routine
      else if relevant fd.Deps.fd_loop_params then Kernel
      else Pruned_dynamic

let function_names t =
  List.map (fun (f : Ir.Types.func) -> f.Ir.Types.fname) t.program.Ir.Types.funcs

(** Functions with a given status. *)
let functions_with t ~model_params st =
  List.filter (fun f -> status t ~model_params f = st) (function_names t)

(** The instrumentation selection: every function whose model can change
    with the parameters — kernels and communication routines (A3). *)
let relevant_functions t ~model_params =
  functions_with t ~model_params Kernel
  @ functions_with t ~model_params Comm_routine

(** Distinct MPI routines invoked anywhere in the program. *)
let mpi_routines_used t =
  SMap.fold
    (fun _ fd acc -> SSet.union acc fd.Deps.fd_mpi_routines)
    t.deps SSet.empty

(** All parameters observed anywhere (explicit labels and implicit p). *)
let observed_params t =
  SMap.fold (fun _ fd acc -> SSet.union acc fd.Deps.fd_params) t.deps SSet.empty

(* Distinct static loops (function, header) satisfying [pred]. *)
let count_loops t pred =
  SMap.fold
    (fun fname fd acc ->
      List.fold_left
        (fun acc (ld : Deps.loop_dep) ->
          if pred ld then
            let key = (fname, ld.Deps.ld_header) in
            if List.mem key acc then acc else key :: acc
          else acc)
        acc fd.Deps.fd_loops)
    t.deps []
  |> List.length

(** Loops whose iteration count depends on at least one model parameter:
    the "relevant" loop count of Table 2.  Loops observed on several call
    paths count once. *)
let relevant_loops t ~model_params =
  count_loops t (fun ld ->
      SSet.exists (fun p -> List.mem p model_params) ld.Deps.ld_params)

(** Functions (resp. loops) affected by one specific parameter — the
    per-parameter coverage counts of Table 3. *)
let functions_affected_by t param =
  SMap.fold
    (fun fname fd acc ->
      if SSet.mem param fd.Deps.fd_params then fname :: acc else acc)
    t.deps []
  |> List.sort compare

let loops_affected_by t param =
  count_loops t (fun ld -> SSet.mem param ld.Deps.ld_params)

(** Count loop observations deduplicated per static loop (function,
    header). *)
let distinct_loops_observed t =
  SMap.fold
    (fun fname fd acc ->
      List.fold_left
        (fun acc (ld : Deps.loop_dep) ->
          let key = (fname, ld.Deps.ld_header) in
          if List.mem key acc then acc else key :: acc)
        acc fd.Deps.fd_loops)
    t.deps []
  |> List.length
