(** Interpreter bindings for the simulated MPI world: one representative
    rank of an SPMD program, with taint-source routines (MPI_Comm_size)
    returning values labelled with the implicit parameter p. *)

type world = {
  ranks : int;  (** communicator size: the implicit parameter p *)
  rank : int;   (** identity of the interpreted rank *)
}

val default_world : world

(** MPI bindings over any engine instantiation (Taint, Plain, Coverage):
    routine semantics only need the prim-registration face. *)
module Install (E : Interp.Engine.HOST) : sig
  val install : world -> E.t -> unit
end

val install : world -> Interp.Machine.t -> unit
(** Register every database routine as a PIR primitive on the machine. *)

val install_plain : world -> Interp.Plain.t -> unit
(** Same bindings on the clean-replay engine (labels are dropped). *)

val install_coverage : world -> Interp.Coverage.t -> unit
(** Same bindings on the coverage engine. *)

val install_host :
  (module Interp.Engine.HOST with type t = 'a) -> world -> 'a -> unit
(** Tier-generic install against a first-class engine module — serves
    both the interpreted and the compiled tier of any policy. *)
