(** Interpreter bindings for the simulated MPI world.

    A tainted run executes one representative rank of an SPMD program
    (the paper runs the real application under DFSan; we interpret rank 0
    and answer MPI queries from the world configuration).  The routines
    declared as taint sources in the library database return values
    carrying the implicit parameter label [p] — this is how, e.g.,
    [MPI_Comm_size] seeds the communicator-size dependency without any
    source annotation. *)

module Label = Taint.Label

type world = {
  ranks : int;          (** communicator size: the implicit parameter p *)
  rank : int;           (** identity of the interpreted rank *)
}

let default_world = { ranks = 8; rank = 0 }

(** The MPI primitives over any engine instantiation: the routine
    semantics only need the prim-registration face ({!Interp.Engine.HOST}),
    so the same bindings serve the Taint machine, Plain replay and the
    Coverage runner.  Under a label-free policy the [p] base label is
    interned in the policy's private table and dropped on import — the
    returned values are identical either way. *)
module Install (E : Interp.Engine.HOST) = struct
  (** Install MPI primitives into an engine instance.  Every routine in
      the cost database becomes callable as a PIR primitive; calls are
      also recorded as events by the interpreter core, which the pipeline
      later joins with the database to derive communication
      dependencies. *)
  let install world (m : E.t) =
    let labels = E.label_table m in
    List.iter
      (fun (r : Costdb.routine) ->
        let fn _t _frame (args : (Ir.Types.value * Label.t) list) =
          ignore args;
          match r.name with
          | "mpi_comm_size" ->
            (* The communicator size is tainted with the implicit label p. *)
            (Ir.Types.VInt world.ranks, Label.base labels "p")
          | "mpi_comm_rank" -> (Ir.Types.VInt world.rank, Label.empty)
          | _ -> (Ir.Types.VUnit, Label.empty)
        in
        E.register_prim m r.Costdb.name fn)
      Costdb.routines
end

module Machine_install = Install (Interp.Machine)
module Plain_install = Install (Interp.Plain)
module Coverage_install = Install (Interp.Coverage)

let install = Machine_install.install
let install_plain = Plain_install.install
let install_coverage = Coverage_install.install

(* Tier-generic entry point: install against a first-class engine module,
   so callers parameterized over Interp.Engine.S (interpreted or
   compiled) need no per-tier install function. *)
let install_host (type a) (module E : Interp.Engine.HOST with type t = a)
    world (m : a) =
  let module I = Install (E) in
  I.install world m
