(** Shadow memory: the taint label attached to every program memory cell,
    kept as a parallel label array per heap allocation (a flat growable
    table indexed by the dense allocation handle). *)

type t

val create : ?hint:int -> unit -> t
(** [hint] presizes the per-allocation table; purely a capacity hint. *)

val on_alloc : t -> alloc:int -> size:int -> unit
(** Register a fresh allocation; all cells start untainted. *)

val get : t -> alloc:int -> offset:int -> Label.t
(** Label of a cell; empty for unknown allocations or out-of-range
    offsets. *)

val set : t -> alloc:int -> offset:int -> Label.t -> unit
(** Write a cell's label; silently ignores unknown/out-of-range targets. *)

val taint_all : t -> alloc:int -> Label.t -> unit
(** Taint every cell of an allocation (whole-buffer taint sources). *)

val summary : Label.table -> t -> alloc:int -> Label.t
(** Union of all cell labels: the taint of the array as a single datum. *)
