(** Taint labels, mirroring the DataFlowSanitizer runtime (paper Section
    5.2): labels form a union tree where each node is the union of at most
    two labels, each label has a 16-bit identifier, and unions are
    deduplicated against equivalent existing combinations. *)

type t = private int
(** A label handle.  Label 0 is the empty taint. *)

val empty : t
val is_empty : t -> bool

type node =
  | Base of string  (** a named taint source (an input parameter) *)
  | Union of t * t

type table
(** The label store: allocation, interning and memoised name expansion. *)

exception Label_overflow
(** Raised when more than 2^16 distinct labels are required. *)

val max_labels : int
(** The 2^16 identifier-space bound of the DFSan label encoding;
    {!label_count} never reaches it (label 0 is the empty taint). *)

val create : ?hint:int -> unit -> table
(** [hint] presizes the node array and union-dedup table to the expected
    label population (clamped to [64, max_labels]), avoiding grow/rehash
    churn on the taint hot path.  Purely a capacity hint: allocation
    order, ids and stats are identical for any value. *)

val base : table -> string -> t
(** [base tbl name] interns the base label for parameter [name]. *)

val node : table -> t -> node
(** Structure of a non-empty label.  @raise Invalid_argument on [empty]. *)

val names : table -> t -> string list
(** Sorted, duplicate-free base-parameter names covered by a label. *)

val union : table -> t -> t -> t
(** DFSan's [dfsan_union]: fast paths for equal/empty/subsuming operands,
    then an interned pair lookup, then allocation of a fresh union node. *)

val union_all : table -> t list -> t

val subsumes : table -> t -> t -> bool
(** [subsumes tbl big small] — does [big] cover every name of [small]? *)

val has : table -> t -> string -> bool
(** Does the label carry the base label for this parameter name? *)

val label_count : table -> int
(** Number of allocated labels (excluding the empty label). *)

type stats = {
  labels : int;      (** allocated labels — also the peak table size *)
  unions : int;      (** total {!union} calls *)
  dedup_hits : int;  (** union calls resolved without a new node *)
}

val table_stats : table -> stats
(** Runtime statistics: table size, union traffic, dedup effectiveness
    (DFSan's runtime statistics counterpart). *)

val pp : table -> t Fmt.t

val source_prim : string -> string option
(** [source_prim "taint:size"] is [Some "size"] — the primitive-name
    convention by which PIR programs declare taint sources.  The single
    definition shared by the interpreter policies (which implement the
    pass-through semantics) and the fuzzing oracles (which look for
    marked parameters). *)
