(** Taint labels, mirroring the DataFlowSanitizer runtime the paper builds
    on (Section 5.2): labels form a union tree where each node represents
    the union of at most two other labels; each label has a 16-bit
    identifier; creating a union first checks whether an equivalent
    combination already exists.  Label 0 is the empty taint. *)

type t = int

let empty : t = 0
let is_empty l = l = 0

type node =
  | Base of string           (** a named taint source (an input parameter) *)
  | Union of t * t

type table = {
  mutable nodes : node array;  (** index 0 unused: the empty label *)
  mutable count : int;
  by_name : (string, t) Hashtbl.t;
  by_pair : (int, t) Hashtbl.t;
      (** interned unions, keyed by the packed ordered pair
          [(min lsl 16) lor max] (labels are 16-bit); subsuming pairs
          are interned too, mapping to the surviving operand *)
  mutable memo_sets : string list option array;
      (** cached base-name expansion per label *)
  mutable union_calls : int;
      (** total {!union} invocations (DFSan's dfsan_union count) *)
  mutable dedup_hits : int;
      (** union calls satisfied without allocating a node: fast paths
          (equal/empty/subsuming operands) plus interned-pair reuse *)
}

let max_labels = 1 lsl 16

(* [hint] is the expected label population (callers pass a program-size
   proxy): presizing the node array and the union-dedup table here moves
   the doubling/rehash churn out of the interpretation hot path. Sizing
   is invisible to semantics — ids are allocated sequentially either
   way. *)
let create ?(hint = 0) () =
  let cap = max 64 (min max_labels hint) in
  {
    nodes = Array.make cap (Base "");
    count = 1;
    by_name = Hashtbl.create 16;
    by_pair = Hashtbl.create cap;
    memo_sets = Array.make cap None;
    union_calls = 0;
    dedup_hits = 0;
  }

exception Label_overflow

let grow tbl =
  let cap = Array.length tbl.nodes in
  if tbl.count >= cap then begin
    let cap' = min max_labels (cap * 2) in
    if tbl.count >= cap' then raise Label_overflow;
    let nodes' = Array.make cap' (Base "") in
    Array.blit tbl.nodes 0 nodes' 0 cap;
    tbl.nodes <- nodes';
    let memo' = Array.make cap' None in
    Array.blit tbl.memo_sets 0 memo' 0 cap;
    tbl.memo_sets <- memo'
  end

let alloc tbl node =
  if tbl.count >= max_labels then raise Label_overflow;
  grow tbl;
  let id = tbl.count in
  tbl.nodes.(id) <- node;
  tbl.count <- tbl.count + 1;
  id

(** Intern the base label for parameter [name]. *)
let base tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some l -> l
  | None ->
    let l = alloc tbl (Base name) in
    Hashtbl.replace tbl.by_name name l;
    l

let node tbl l =
  if l <= 0 || l >= tbl.count then invalid_arg "Label.node: bad label";
  tbl.nodes.(l)

(** Base parameter names covered by [l], sorted; memoised per label. *)
let rec names tbl l =
  if l = 0 then []
  else
    match tbl.memo_sets.(l) with
    | Some s -> s
    | None ->
      let s =
        match node tbl l with
        | Base n -> [ n ]
        | Union (a, b) ->
          List.sort_uniq compare (names tbl a @ names tbl b)
      in
      tbl.memo_sets.(l) <- Some s;
      s

let subsumes tbl big small =
  if small = 0 || big = small then true
  else
    let bn = names tbl big and sn = names tbl small in
    List.for_all (fun n -> List.mem n bn) sn

(** Union of two labels.  Fast paths: identical or empty operands, an
    interned pair, one operand subsuming the other; otherwise allocate a
    new union node — exactly DFSan's [dfsan_union].  The pair table is
    probed before the subsumption test and caches subsumption winners
    too, so the repeated unions of steady-state loops resolve with one
    integer-keyed probe instead of walking base-name sets; results and
    both statistics counters are identical either way. *)
let union tbl a b =
  tbl.union_calls <- tbl.union_calls + 1;
  if a = b || b = 0 then begin
    tbl.dedup_hits <- tbl.dedup_hits + 1;
    a
  end
  else if a = 0 then begin
    tbl.dedup_hits <- tbl.dedup_hits + 1;
    b
  end
  else
    let lo, hi = if a < b then (a, b) else (b, a) in
    let key = (lo lsl 16) lor hi in
    match Hashtbl.find_opt tbl.by_pair key with
    | Some l ->
      tbl.dedup_hits <- tbl.dedup_hits + 1;
      l
    | None ->
      let l =
        if subsumes tbl a b then begin
          tbl.dedup_hits <- tbl.dedup_hits + 1;
          a
        end
        else if subsumes tbl b a then begin
          tbl.dedup_hits <- tbl.dedup_hits + 1;
          b
        end
        else alloc tbl (Union (lo, hi))
      in
      Hashtbl.replace tbl.by_pair key l;
      l

let union_all tbl = List.fold_left (union tbl) empty

(** Does [l] carry the base label for [name]? *)
let has tbl l name = List.mem name (names tbl l)

let label_count tbl = tbl.count - 1

type stats = { labels : int; unions : int; dedup_hits : int }

(** Runtime statistics of the label store.  [labels] is also the peak
    table size: labels are never reclaimed, so the count is monotonic. *)
let table_stats tbl =
  {
    labels = label_count tbl;
    unions = tbl.union_calls;
    dedup_hits = tbl.dedup_hits;
  }

let pp tbl ppf l =
  if l = 0 then Fmt.string ppf "{}"
  else Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) (names tbl l)

(* The [taint:<param>] primitive-name convention: the one syntactic hook
   by which PIR programs declare taint sources (PIR's register_variable).
   Shared by every interpreter policy and by the fuzzing oracles, so the
   recognizer lives next to the labels it creates. *)
let source_prim name =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "taint" ->
    Some (String.sub name (i + 1) (String.length name - i - 1))
  | _ -> None
