(** Shadow memory: the taint label attached to every program memory cell.

    The DFSan runtime maps each application byte to a shadow label through
    a fixed address transformation; our interpreter heap is a set of
    dynamically allocated arrays, so shadow memory is a parallel label
    array per allocation plus a register-shadow map per stack frame (kept
    by the interpreter itself). *)

type address = { alloc : int; offset : int }

type t = {
  arrays : (int, Label.t array) Hashtbl.t;
}

(* [hint] presizes the allocation table (expected live allocations);
   capacity only, no semantic effect. *)
let create ?(hint = 0) () = { arrays = Hashtbl.create (max 64 (min 65536 hint)) }

(** Register a fresh allocation of [size] cells, all initially untainted. *)
let on_alloc t ~alloc ~size =
  Hashtbl.replace t.arrays alloc (Array.make (max size 0) Label.empty)

let get t { alloc; offset } =
  match Hashtbl.find_opt t.arrays alloc with
  | Some a when offset >= 0 && offset < Array.length a -> a.(offset)
  | Some _ | None -> Label.empty

let set t { alloc; offset } label =
  match Hashtbl.find_opt t.arrays alloc with
  | Some a when offset >= 0 && offset < Array.length a -> a.(offset) <- label
  | Some _ | None -> ()

(** Taint every cell of an allocation (used when a taint source writes a
    whole buffer, e.g. [MPI_Comm_size]'s output argument). *)
let taint_all t ~alloc label =
  match Hashtbl.find_opt t.arrays alloc with
  | Some a -> Array.iteri (fun i _ -> a.(i) <- label) a
  | None -> ()

(** Union of the labels of every cell in the allocation: the taint of the
    array viewed as a single datum. *)
let summary tbl t ~alloc =
  match Hashtbl.find_opt t.arrays alloc with
  | Some a -> Array.fold_left (Label.union tbl) Label.empty a
  | None -> Label.empty
