(** Shadow memory: the taint label attached to every program memory cell.

    The DFSan runtime maps each application byte to a shadow label through
    a fixed address transformation; our interpreter heap is a set of
    dynamically allocated arrays, so shadow memory is a parallel label
    array per allocation plus a register-shadow map per stack frame (kept
    by the interpreter itself).

    Allocation handles are small dense non-negative integers in every
    execution tier, so the per-allocation table is a flat growable array
    — the per-load lookup is two bounds checks and two reads, with no
    hashing and no address-record allocation. *)

let no_cells : Label.t array = [||]

type t = {
  mutable arrays : Label.t array array;
      (** indexed by allocation handle; [no_cells] = unregistered *)
  mutable limit : int;  (** handles [>= limit] are unregistered *)
}

(* [hint] presizes the allocation table (expected live allocations);
   capacity only, no semantic effect. *)
let create ?(hint = 0) () =
  { arrays = Array.make (max 64 (min 65536 hint)) no_cells; limit = 0 }

let ensure t alloc =
  if alloc >= Array.length t.arrays then begin
    let cap = max (alloc + 1) (2 * Array.length t.arrays) in
    let bigger = Array.make cap no_cells in
    Array.blit t.arrays 0 bigger 0 (Array.length t.arrays);
    t.arrays <- bigger
  end;
  if alloc >= t.limit then t.limit <- alloc + 1

(** Register a fresh allocation of [size] cells, all initially untainted. *)
let on_alloc t ~alloc ~size =
  if alloc >= 0 then begin
    ensure t alloc;
    t.arrays.(alloc) <- Array.make (max size 0) Label.empty
  end

let cells t alloc =
  if alloc >= 0 && alloc < t.limit then Array.unsafe_get t.arrays alloc
  else no_cells

(** Label of a cell; empty for unknown allocations or out-of-range
    offsets. *)
let get t ~alloc ~offset =
  let a = cells t alloc in
  if offset >= 0 && offset < Array.length a then Array.unsafe_get a offset
  else Label.empty

(** Write a cell's label; silently ignores unknown/out-of-range targets. *)
let set t ~alloc ~offset label =
  let a = cells t alloc in
  if offset >= 0 && offset < Array.length a then
    Array.unsafe_set a offset label

(** Taint every cell of an allocation (used when a taint source writes a
    whole buffer, e.g. [MPI_Comm_size]'s output argument). *)
let taint_all t ~alloc label =
  let a = cells t alloc in
  Array.fill a 0 (Array.length a) label

(** Union of the labels of every cell in the allocation: the taint of the
    array viewed as a single datum. *)
let summary tbl t ~alloc =
  Array.fold_left (Label.union tbl) Label.empty (cells t alloc)
