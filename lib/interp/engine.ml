(** The policy-parameterized PIR execution engine (see engine.mli).

    The functor body is the former [Machine] interpreter with every
    shadow-related operation routed through the policy: the engine keeps
    program values, the heap, frames, observations, metrics, tracing and
    the step budget; the policy keeps shadow registers, shadow memory,
    control scopes — or nothing at all.

    This tier walks the IR tree directly with string-keyed lookups; the
    {!Compiled} tier lowers each function to a slot-resolved form first
    and is the default executor.  The interpreter remains the semantic
    reference: the [compile_identity] fuzzing oracle holds the two tiers
    bit-identical. *)

open Ir.Types
module Label = Taint.Label
module Obs = Observations

exception Budget_exceeded of int

type config = {
  control_flow_taint : bool;
  max_steps : int;
}

let default_config = { control_flow_taint = true; max_steps = 200_000_000 }

(* -- execution tiers ------------------------------------------------------- *)

type tier = Interpreted | Compiled

let default_tier = Compiled
let tier_name = function Interpreted -> "interp" | Compiled -> "compiled"

let tier_of_name = function
  | "interp" | "interpreted" -> Some Interpreted
  | "compiled" -> Some Compiled
  | _ -> None

(* The per-instruction counters live in {!Icounters}, shared with the
   compiled tier; re-exported here for the documentation drift test. *)
let instr_counters = Icounters.instr_counters

(* -- module types ---------------------------------------------------------- *)

module type POLICY = sig
  val name : string
  val tracks_labels : bool
  val observes_blocks : bool

  type state
  type label
  type fstate

  val create : control_flow_taint:bool -> hint:int -> state
  val table : state -> Taint.Label.table
  val frame_state : state -> fstate
  val clean : label
  val is_clean : label -> bool
  val read_reg : fstate -> string -> label
  val write_reg : state -> fstate -> string -> label -> unit
  val bind_param : fstate -> string -> label -> unit

  val frame_slots : state -> int -> fstate
  val read_slot : fstate -> int -> label
  val write_slot : state -> fstate -> int -> label -> unit
  val bind_slot : fstate -> int -> label -> unit

  val join2 : state -> label -> label -> label
  val on_alloc : state -> alloc:int -> size:int -> label -> label

  val on_load :
    state -> alloc:int -> offset:int -> base:label -> index:label -> label

  val on_store :
    state -> fstate -> alloc:int -> offset:int -> base:label -> index:label ->
    data:label -> unit

  val source : state -> param:string -> Ir.Types.value * label ->
    Ir.Types.value * label

  val export : state -> label -> Taint.Label.t
  val import : state -> Taint.Label.t -> label

  val export_args :
    state -> (Ir.Types.value * label) list ->
    (Ir.Types.value * Taint.Label.t) list

  val branch_dep : state -> fstate -> label -> label
  val return_label : state -> fstate -> label -> label
  val wants_scope : state -> label -> bool
  val scope_push : state -> fstate -> join:string -> label -> unit

  val block_enter :
    state -> fstate -> func:string -> block:string -> prev:string option ->
    unit
end

module type HOST = sig
  type t
  type frame

  type prim_fn =
    t -> frame -> (Ir.Types.value * Taint.Label.t) list ->
    Ir.Types.value * Taint.Label.t

  val register_prim : t -> string -> prim_fn -> unit
  val label_table : t -> Taint.Label.table
end

module type S = sig
  val policy_name : string

  type pstate

  include HOST

  val create :
    ?config:config -> ?metrics:Obs_metrics.t -> ?trace:Obs_trace.sink ->
    ?profile:Obs_profile.t -> Ir.Types.program -> t

  val run : t -> Ir.Types.value list -> Ir.Types.value * Taint.Label.t

  val run_named :
    t -> (string * Ir.Types.value) list -> Ir.Types.value * Taint.Label.t

  val observations : t -> Observations.t
  val steps_executed : t -> int
  val trace_sink : t -> Obs_trace.sink
  val policy_state : t -> pstate
end

(* -- the engine ------------------------------------------------------------ *)

module Make (P : POLICY) : S with type pstate = P.state = struct
  let policy_name = P.name

  type pstate = P.state

  (* Static per-function facts needed during execution: the shared
     block-resolution table plus the function's statistics record. *)
  type fstatic = {
    fst : Fstatic.t;
    sfobs : Obs.func_obs;
        (** the function's statistics record, shared by every frame *)
  }

  type frame = {
    ffunc : func;
    fstat : fstatic;
    fobs : Obs.func_obs;
        (** this function's statistics record, resolved once per call so
            the per-instruction increment is a plain field write *)
    regs : (string, value) Hashtbl.t;
    pframe : P.fstate;  (** policy context: shadow registers, control scopes *)
    mutable active_loops : (string * string) list;
        (** observation keys of loops currently being executed in this
            frame, innermost first *)
    enclosing : (string * string) list;
        (** loop observation keys active in the caller chain at call time *)
    callpath : Obs.callpath;
    cp_key : string;
  }

  type t = {
    program : program;
    config : config;
    pstate : P.state;
    heap : (int, value array) Hashtbl.t;
    mutable next_alloc : int;
    mutable steps : int;
    statics : (string, fstatic) Hashtbl.t;
    ftable : (string, func) Hashtbl.t;
        (** function name -> definition, so calls skip the linear scan
            of the program's function list *)
    cp_keys : (string * string, Obs.callpath * string) Hashtbl.t;
        (** (caller's callpath key, callee) -> callee's callpath and its
            key, memoized because call trees revisit the same paths
            constantly *)
    mutable reg_pool : (string, value) Hashtbl.t list;
        (** register tables of completed frames, cleared and reused so
            each call does not allocate a fresh table *)
    obs : Obs.t;
    prims : (string, prim_fn) Hashtbl.t;
    mutable call_depth : int;
    im : Icounters.t option;   (** instruction metrics, when enabled *)
    trace : Obs_trace.sink;    (** span/instant sink, [disabled] by default *)
    prof : Obs_profile.t option;
        (** deterministic sampling profiler, off by default; driven by the
            executed-step count, never wall time *)
  }

  and prim_fn = t -> frame -> (value * Label.t) list -> value * Label.t

  let max_call_depth = 10_000

  (* Cached [find_func]; the fallback keeps the original error message
     for unknown functions. *)
  let func_named t fname =
    match Hashtbl.find_opt t.ftable fname with
    | Some f -> f
    | None -> find_func t.program fname

  (* -- static info cache ------------------------------------------------- *)

  let fstatic_of t fname =
    match Hashtbl.find_opt t.statics fname with
    | Some s -> s
    | None ->
      let f = func_named t fname in
      let s = { fst = Fstatic.of_func f; sfobs = Obs.func_obs t.obs fname } in
      Hashtbl.replace t.statics fname s;
      s

  let block_in frame label = Fstatic.block_in frame.fstat.fst frame.ffunc label

  (* -- operands ----------------------------------------------------------- *)

  let operand_value frame = function
    | Reg r -> (
      try Hashtbl.find frame.regs r
      with Not_found ->
        Eval.error "read of unset register %%%s in %s" r frame.ffunc.fname)
    | Int i -> Eval.vint i
    | Float f -> VFloat f
    | Bool b -> Eval.vbool b
    | Unit -> VUnit

  let operand_label frame = function
    | Reg r -> P.read_reg frame.pframe r
    | Int _ | Float _ | Bool _ | Unit -> P.clean

  let eval_operand frame op = (operand_value frame op, operand_label frame op)

  (* Write a register together with its shadow; the policy folds control
     context in as appropriate. *)
  let write_reg t frame r v l =
    Hashtbl.replace frame.regs r v;
    P.write_reg t.pstate frame.pframe r l

  (* -- primitives --------------------------------------------------------- *)

  let register_prim t name fn = Hashtbl.replace t.prims name fn

  let emit_event t frame prim args =
    t.obs.Obs.events <-
      { Obs.ev_func = frame.ffunc.fname;
        ev_callpath = frame.callpath;
        ev_prim = prim;
        ev_args = args }
      :: t.obs.Obs.events

  (* [taint:<name>] is a pass-through taint source: the Taint policy
     unions the base label <name> in (PIR's register_variable); the other
     policies pass the value through untouched. *)
  let dispatch_prim t frame name argv xargs =
    match Label.source_prim name with
    | Some param -> (
      match argv with
      | [ vl ] -> P.source t.pstate ~param vl
      | _ -> Eval.error "taint:%s expects one argument" param)
    | None -> (
      match Hashtbl.find_opt t.prims name with
      | Some fn ->
        let v, l = fn t frame xargs in
        (v, P.import t.pstate l)
      | None -> Eval.error "unknown primitive !%s" name)

  let builtin_work frame = function
    | [ (VInt n, _) ] ->
      let fo = frame.fobs in
      fo.Obs.fo_work <- fo.Obs.fo_work + n;
      (VUnit, P.clean)
    | _ -> Eval.error "work expects one int argument"

  let builtin_print t xargs =
    List.iter
      (fun (v, l) ->
        Fmt.epr "[pir] %a %a@." Ir.Pp.pp_value v
          (Label.pp (P.table t.pstate)) l)
      xargs;
    (VUnit, P.clean)

  (* -- allocation --------------------------------------------------------- *)

  let alloc_array t size =
    let h = t.next_alloc in
    t.next_alloc <- t.next_alloc + 1;
    Hashtbl.replace t.heap h (Array.make (max size 0) (VInt 0));
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.add ic.Icounters.ic_heap_cells (max size 0));
    h

  let heap_get t h i =
    match Hashtbl.find_opt t.heap h with
    | Some a when i >= 0 && i < Array.length a -> a.(i)
    | Some a -> Eval.error "index %d out of bounds (size %d)" i (Array.length a)
    | None -> Eval.error "dangling array handle %d" h

  let heap_set t h i v =
    match Hashtbl.find_opt t.heap h with
    | Some a when i >= 0 && i < Array.length a -> a.(i) <- v
    | Some a -> Eval.error "index %d out of bounds (size %d)" i (Array.length a)
    | None -> Eval.error "dangling array handle %d" h

  (* -- execution ---------------------------------------------------------- *)

  let step t =
    t.steps <- t.steps + 1;
    (match t.prof with None -> () | Some p -> Obs_profile.tick p);
    if t.steps > t.config.max_steps then
      raise (Budget_exceeded t.config.max_steps)

  let rec exec_instr t frame instr =
    step t;
    let fo = frame.fobs in
    fo.Obs.fo_instrs <- fo.Obs.fo_instrs + 1;
    (match t.im with None -> () | Some ic -> Icounters.count_instr ic instr);
    match instr with
    | Assign (d, a) ->
      let v = operand_value frame a and l = operand_label frame a in
      write_reg t frame d v l
    | Binop (d, op, a, b) ->
      let va = operand_value frame a and la = operand_label frame a in
      let vb = operand_value frame b and lb = operand_label frame b in
      write_reg t frame d (Eval.binop op va vb) (P.join2 t.pstate la lb)
    | Unop (d, op, a) ->
      let v = operand_value frame a and l = operand_label frame a in
      write_reg t frame d (Eval.unop op v) l
    | Alloc (d, n) ->
      let v = operand_value frame n and l = operand_label frame n in
      let size = Eval.as_int v in
      let h = alloc_array t size in
      (* The allocation size's shadow flows to the handle: indexing
         computations derived from the handle itself stay clean, but the
         summary label of the array keeps the size dependency visible. *)
      write_reg t frame d (VArr h) (P.on_alloc t.pstate ~alloc:h ~size l)
    | Load (d, base, idx) ->
      let vb = operand_value frame base and lb = operand_label frame base in
      let vi = operand_value frame idx and li = operand_label frame idx in
      let h = Eval.as_arr vb and i = Eval.as_int vi in
      let v = heap_get t h i in
      write_reg t frame d v
        (P.on_load t.pstate ~alloc:h ~offset:i ~base:lb ~index:li)
    | Store (base, idx, x) ->
      let vb = operand_value frame base and lb = operand_label frame base in
      let vi = operand_value frame idx and li = operand_label frame idx in
      let vx = operand_value frame x and lx = operand_label frame x in
      let h = Eval.as_arr vb and i = Eval.as_int vi in
      heap_set t h i vx;
      P.on_store t.pstate frame.pframe ~alloc:h ~offset:i ~base:lb ~index:li
        ~data:lx
    | Call (d, fname, args) ->
      let argv = List.map (eval_operand frame) args in
      let enclosing = frame.active_loops @ frame.enclosing in
      let v, l =
        call ~enclosing ~parent_key:frame.cp_key t frame.callpath fname argv
      in
      (match d with Some d -> write_reg t frame d v l | None -> ())
    | Prim (d, p, args) ->
      let argv = List.map (eval_operand frame) args in
      let v, l =
        (* [work] is pure cost accounting: charged to [fo_work] and kept
           out of the event log (symmetric with the compiled tier). *)
        if p = "work" then builtin_work frame argv
        else begin
          let xargs = P.export_args t.pstate argv in
          emit_event t frame p xargs;
          if p = "print" then builtin_print t xargs
          else dispatch_prim t frame p argv xargs
        end
      in
      (match d with Some d -> write_reg t frame d v l | None -> ())

  and call ?(enclosing = []) ?parent_key t callpath fname argv =
    t.call_depth <- t.call_depth + 1;
    if t.call_depth > max_call_depth then Eval.error "call depth exceeded";
    let f = func_named t fname in
    if List.length f.fparams <> List.length argv then
      Eval.error "arity mismatch calling %s: %d formals, %d actuals" fname
        (List.length f.fparams) (List.length argv);
    let fstat = fstatic_of t fname in
    let callpath, cp_key =
      match parent_key with
      | None ->
        let cp = callpath @ [ fname ] in
        (cp, Obs.callpath_key cp)
      | Some pk -> (
        let mk = (pk, fname) in
        match Hashtbl.find_opt t.cp_keys mk with
        | Some cached -> cached
        | None ->
          let cp = callpath @ [ fname ] in
          let cached = (cp, Obs.callpath_key cp) in
          Hashtbl.add t.cp_keys mk cached;
          cached)
    in
    let regs =
      match t.reg_pool with
      | h :: rest ->
        t.reg_pool <- rest;
        h
      | [] -> Hashtbl.create 16
    in
    let frame =
      {
        ffunc = f;
        fstat;
        fobs = fstat.sfobs;
        regs;
        pframe = P.frame_state t.pstate;
        active_loops = [];
        enclosing;
        callpath;
        cp_key;
      }
    in
    List.iter2
      (fun p (v, l) ->
        Hashtbl.replace frame.regs p v;
        P.bind_param frame.pframe p l)
      f.fparams argv;
    let fo = frame.fobs in
    fo.Obs.fo_calls <- fo.Obs.fo_calls + 1;
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.incr ic.Icounters.ic_calls);
    let entry =
      match fstat.fst.Fstatic.bentry with
      | Some b -> b
      | None ->
        {
          Fstatic.blk = entry_block f;
          bloop = None;
          bexits = [];
          bheaders = [];
          bjoin = Fstatic.never_join;
        }
    in
    let body () =
      if Obs_trace.enabled t.trace then begin
        Obs_trace.span_begin t.trace ~cat:"interp" fname;
        Fun.protect
          ~finally:(fun () -> Obs_trace.span_end t.trace fname)
          (fun () -> exec_from t frame entry ~prev:None)
      end
      else exec_from t frame entry ~prev:None
    in
    let result =
      match t.prof with
      | None -> body ()
      | Some p ->
        Obs_profile.enter p fname;
        Fun.protect ~finally:(fun () -> Obs_profile.leave p) body
    in
    t.call_depth <- t.call_depth - 1;
    (* Recycle the register table (dropped on the exception path, where
       the pool is best-effort anyway). *)
    Hashtbl.clear frame.regs;
    t.reg_pool <- frame.regs :: t.reg_pool;
    result

  (* Record loop entry / iteration when arriving at [bi.blk] from [prev]. *)
  and note_loop_arrival t frame (bi : Fstatic.binfo) ~prev =
    match bi.bloop with
    | None -> ()
    | Some loop ->
      let block = bi.blk in
      let from_inside =
        match prev with
        | Some p -> Ir.Cfg.SSet.mem p loop.Ir.Loops.body
        | None -> false
      in
      let lo =
        Dynobs.loop_obs t.obs ~cp_key:frame.cp_key ~func:frame.ffunc.fname
          ~header:block.label ~callpath:frame.callpath
          ~depth:loop.Ir.Loops.depth ~parent:loop.Ir.Loops.parent
      in
      Dynobs.record_arrival lo ~from_inside;
      (match t.im with
      | None -> ()
      | Some ic ->
        if from_inside then Obs_metrics.incr ic.Icounters.ic_loop_iters
        else Obs_metrics.incr ic.Icounters.ic_loop_entries);
      if (not from_inside) && Obs_trace.enabled t.trace then
        Obs_trace.instant t.trace ~cat:"loop"
          (frame.ffunc.fname ^ "/" ^ block.label);
      Dynobs.merge_enclosing lo
        ~self:(frame.cp_key, block.label)
        ~active:frame.active_loops ~enclosing:frame.enclosing

  and exec_from t frame (bi : Fstatic.binfo) ~prev =
    let block = bi.blk in
    (* Policy block hook: pop control scopes ending here (Taint), count
       blocks and edges (Coverage). *)
    P.block_enter t.pstate frame.pframe ~func:frame.ffunc.fname
      ~block:block.label ~prev;
    (* Maintain the dynamic loop stack: drop loops whose body we left. *)
    (match frame.active_loops with
    | [] -> ()
    | _ :: _ ->
      frame.active_loops <-
        List.filter
          (fun (_, header) -> List.exists (String.equal header) bi.bheaders)
          frame.active_loops);
    note_loop_arrival t frame bi ~prev;
    (match bi.bloop with
    | Some _ ->
      let self = (frame.cp_key, block.label) in
      if not (List.mem self frame.active_loops) then
        frame.active_loops <- self :: frame.active_loops
    | None -> ());
    List.iter (exec_instr t frame) block.instrs;
    step t;
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.incr ic.Icounters.ic_ctl);
    match block.term with
    | Return op ->
      let v = operand_value frame op and l = operand_label frame op in
      (v, P.return_label t.pstate frame.pframe l)
    | Jump l ->
      exec_from t frame (block_in frame l) ~prev:(Some block.label)
    | Branch (c, then_l, else_l) ->
      let v = operand_value frame c and l = operand_label frame c in
      let dep = P.branch_dep t.pstate frame.pframe l in
      let taken = Eval.as_bool v in
      (match t.im with
      | None -> ()
      | Some ic ->
        Obs_metrics.incr ic.Icounters.ic_branches;
        if not (P.is_clean dep) then
          Obs_metrics.incr ic.Icounters.ic_tainted_branches);
      let odep = P.export t.pstate dep in
      let bo =
        Dynobs.branch_obs t.obs ~cp_key:frame.cp_key ~func:frame.ffunc.fname
          ~block:block.label ~callpath:frame.callpath
      in
      Dynobs.record_branch (P.table t.pstate) bo ~dep:odep ~taken;
      Dynobs.loop_sink (P.table t.pstate) t.obs ~cp_key:frame.cp_key bi.bexits
        odep;
      (if P.wants_scope t.pstate l then
         P.scope_push t.pstate frame.pframe ~join:bi.Fstatic.bjoin l);
      let target = if taken then then_l else else_l in
      exec_from t frame (block_in frame target) ~prev:(Some block.label)

  (* -- entry points -------------------------------------------------------- *)

  let create ?(config = default_config) ?metrics ?(trace = Obs_trace.disabled)
      ?profile program =
    (* Static instruction count: the capacity hint policies use to
       presize label/shadow tables (see POLICY.create). *)
    let hint =
      List.fold_left
        (fun acc (f : func) ->
          List.fold_left
            (fun a (b : Ir.Types.block) -> a + List.length b.instrs)
            acc f.blocks)
        0 program.funcs
    in
    {
      program;
      config;
      pstate = P.create ~control_flow_taint:config.control_flow_taint ~hint;
      heap = Hashtbl.create 64;
      next_alloc = 0;
      steps = 0;
      statics = Hashtbl.create 16;
      ftable =
        (* First-wins on duplicate names, matching [find_func]'s scan. *)
        (let tbl = Hashtbl.create 16 in
         List.iter
           (fun (f : func) ->
             if not (Hashtbl.mem tbl f.fname) then Hashtbl.add tbl f.fname f)
           program.funcs;
         tbl);
      cp_keys = Hashtbl.create 64;
      reg_pool = [];
      obs = Obs.create ();
      prims = Hashtbl.create 16;
      call_depth = 0;
      im = Option.map Icounters.of_metrics metrics;
      trace;
      prof = profile;
    }

  (** Run the program's entry function with the given positional arguments
      (matched against the entry function's parameters).  Returns the
      result value and its exported shadow label. *)
  let run t args =
    let entry = find_func t.program t.program.entry in
    if List.length entry.fparams <> List.length args then
      Eval.error "entry %s expects %d arguments, got %d" entry.fname
        (List.length entry.fparams) (List.length args);
    let v, l =
      call t [] t.program.entry (List.map (fun v -> (v, P.clean)) args)
    in
    (v, P.export t.pstate l)

  (** Convenience: run with named integer parameters, in the order declared
      by the entry function. *)
  let run_named t bindings =
    let entry = find_func t.program t.program.entry in
    let args =
      List.map
        (fun p ->
          match List.assoc_opt p bindings with
          | Some v -> v
          | None -> Eval.error "missing binding for entry parameter %s" p)
        entry.fparams
    in
    run t args

  let observations t = t.obs
  let label_table t = P.table t.pstate
  let steps_executed t = t.steps
  let trace_sink t = t.trace
  let policy_state t = t.pstate
end
