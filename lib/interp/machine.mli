(** The PIR interpreter with inline dynamic taint analysis — the
    DataFlowSanitizer-instrumented execution of the paper: data-flow
    propagation through every instruction, control-flow taint scoped by
    the branch's immediate postdominator, loop-exit conditions as taint
    sinks, and an extensible host-primitive registry.

    Since the policy split this is {!Engine.Make}[(Taint_policy)] plus
    backward-compatible aliases; {!Plain} and {!Coverage} run the same
    engine under the other policies. *)

exception Runtime_error of string

exception Budget_exceeded of int
(** Raised when the [max_steps] instruction budget is exhausted — kept
    distinct from {!Runtime_error} so callers (notably the fuzzing
    oracles and the CLI) can tell a genuinely too-long execution from a
    dynamic error in the program.  The same exception as
    {!Engine.Budget_exceeded}. *)

type config = Engine.config = {
  control_flow_taint : bool;
      (** propagate taint through control dependencies (paper default:
          on; off reproduces plain DFSan for the ablation) *)
  max_steps : int;  (** instruction budget *)
}

val default_config : config

val policy_name : string

type pstate = Taint_policy.state
(** The taint policy's whole-run analysis state. *)

type t
(** An interpreter instance: program, heap, shadow memory, label table,
    observations, primitive registry. *)

type frame
(** A call frame (opaque; passed to primitive implementations). *)

type prim_fn =
  t -> frame -> (Ir.Types.value * Taint.Label.t) list ->
  Ir.Types.value * Taint.Label.t
(** A host primitive: receives evaluated arguments with their labels and
    returns the result value and label. *)

val create :
  ?config:config ->
  ?metrics:Obs_metrics.t ->
  ?trace:Obs_trace.sink ->
  ?profile:Obs_profile.t ->
  Ir.Types.program ->
  t
(** [metrics] enables per-instruction accounting (opcode classes,
    memory/shadow traffic, branches, loop entries) into the given
    registry; [trace] records a function-call span per invocation and a
    loop-entry instant event per dynamic loop entry; [profile] attaches
    a deterministic sampling profiler driven by the executed-step count.
    All default to off, in which case the interpreter's hot path is
    unchanged: one field test per instruction, no allocation. *)

val register_prim : t -> string -> prim_fn -> unit
(** Install or replace a primitive.  [taint:<name>], [work] and [print]
    are built in; the MPI runtime installs the library routines. *)

val run : t -> Ir.Types.value list -> Ir.Types.value * Taint.Label.t
(** Execute the entry function with positional arguments.
    @raise Runtime_error on dynamic errors (kind mismatch, out-of-bounds,
    unknown primitive, ...).
    @raise Budget_exceeded when [max_steps] instructions were executed. *)

val run_named :
  t -> (string * Ir.Types.value) list -> Ir.Types.value * Taint.Label.t
(** Like {!run}, with arguments given by entry-parameter name. *)

val observations : t -> Observations.t
val label_table : t -> Taint.Label.table
val steps_executed : t -> int

val trace_sink : t -> Obs_trace.sink
(** The sink passed at creation ([Obs_trace.disabled] otherwise). *)

val policy_state : t -> pstate
(** Direct access to the policy's analysis state.  With these, the
    module satisfies {!Engine.S} and can be packed first-class next to
    {!Compiled.Taint} for tier-generic code. *)
