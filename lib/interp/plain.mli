(** Clean PIR execution: the {!Engine} instantiated with
    {!Plain_policy}.  Identical program results, observations and step
    counts to {!Machine} (modulo taint labels, which are always empty),
    with no shadow registers, no shadow memory, no label unions and no
    control-taint stack on the hot path. *)

include Engine.S with type pstate = Plain_policy.state
