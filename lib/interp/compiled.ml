(** The compiled execution tier: the {!Engine} semantics over the
    slot-resolved lowered form produced by {!Lower}.

    Same policy split, same observations, same traps and budget
    accounting as {!Engine.Make} — but the dispatch loop does zero name
    lookups: registers are array slots, block transfers are array
    indices, callees are function indices, and primitives are
    pre-classified.  Functions are lowered lazily at first call, exactly
    when the interpreter would build its static facts, so programs with
    malformed never-executed functions behave identically.

    The two tiers must stay bit-identical — result values, taint labels
    (including label-table ids and stats, which depend on the
    [Label.union] call order), loop/branch/event/function observations,
    metric counters, profiler samples, trap messages and budget
    behavior.  Every policy hook and observation call below is placed in
    the same sequence as the interpreter's; the [compile_identity]
    fuzzing oracle enforces the contract on generated programs. *)

open Ir.Types
open Lower
module Label = Taint.Label
module Obs = Observations

let max_call_depth = 10_000

(* Physically unique sentinel for "no enclosing-context merge applied
   yet" — never [==] to a runtime active-loops list (including [[]]). *)
let merge_pending = [ ("", "") ]

(* Lowering is a pure function of the program: slot numbers, block
   indices and callee indices are all deterministic (first-wins function
   table, program-order blocks), so lowered code is shared across engine
   instances of the same program — one compilation serves a whole
   campaign of replays.  The cache is domain-local (no synchronization
   under --jobs; each worker lowers at most once) and keeps only the
   last few programs, keyed by physical identity, so fuzzing over
   thousands of generated programs does not accumulate. *)
let lower_cache_capacity = 4

let lower_cache :
    (program * (string, Lower.lfunc) Hashtbl.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Hit/miss accounting for the lowering cache.  Deliberately plain
   domain-local refs, not engine-registry counters: the compile-identity
   oracle compares engine-attached registries bit-for-bit between the
   tiers, and only this tier lowers.  The pipeline reads the delta
   around a run and publishes it as compile.cache_hit/cache_miss. *)
let cache_hits : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let cache_misses : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let cache_stats () =
  (!(Domain.DLS.get cache_hits), !(Domain.DLS.get cache_misses))

let cache_counters =
  [
    ( "compile.cache_hit",
      "lowered functions reused from the domain-local cache" );
    ( "compile.cache_miss",
      "functions lowered afresh into the domain-local cache" );
  ]

let lowered_table (program : program) =
  let cache = Domain.DLS.get lower_cache in
  match !cache with
  | (p, tbl) :: _ when p == program -> tbl
  | entries -> (
    match List.find_opt (fun (p, _) -> p == program) entries with
    | Some (_, tbl) ->
      (* Move-to-front keeps the working set resident. *)
      cache :=
        (program, tbl) :: List.filter (fun (p, _) -> p != program) entries;
      tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      cache :=
        (program, tbl) :: List.filteri (fun i _ -> i < lower_cache_capacity - 1) entries;
      tbl)

let count_linstr ic li =
  let open Icounters in
  match li with
  | LAssign _ | LBinop _ | LUnop _ -> Obs_metrics.incr ic.ic_alu
  | LAlloc _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_allocs
  | LLoad _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_loads
  | LStore _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_stores
  | LCall _ -> Obs_metrics.incr ic.ic_call
  | LPrim _ -> Obs_metrics.incr ic.ic_prim

module Make (P : Engine.POLICY) : Engine.S with type pstate = P.state = struct
  let policy_name = P.name

  (* Static policy capabilities, read once at functor application: when
     the policy carries no slot labels, every label it would produce is
     [P.clean] by contract, so the shadow plumbing below is skipped
     outright (the interpreter always calls the hooks, and the
     differential oracle cross-checks the promise). *)
  let labels = P.tracks_labels

  let blocks_observed = P.observes_blocks

  (* With neither capability, the policy's per-frame state is
     unobservable — every hook that receives it is a contractual no-op —
     so frames can be pooled per callpath edge and reused without
     rebuilding the policy frame. *)
  let poolable = (not labels) && not blocks_observed

  type pstate = P.state

  (* A compiled function together with its statistics record, built at
     first call (the compiled analogue of the interpreter's static-info
     cache). *)
  type cfunc = {
    code : Lower.lfunc;
    sfobs : Obs.func_obs;
    has_loops : bool;  (** any block is a loop header *)
  }

  (* Loop/branch observation records resolved once per callpath: the
     records live in string-keyed tables on [Obs.t] (shared with the
     interpreter), but within one callpath the (cp_key, label) keys are
     fixed per block, so the compiled tier finds each record once and
     thereafter reaches it by block index.  [sites] similarly caches the
     callee's callpath entry per [LCall] site, turning the per-call
     string-pair hash probe into an array read. *)
  type ocache = {
    locs : Obs.loop_obs option array;
    bocs : Obs.branch_obs option array;
    sites : cpentry option array;
    selfs : (string * string) array;
        (** per loop-header block: the interned [(cp_key, header)] pair
            used as the active-loops entry.  Every arrival at a given
            header within one callpath pushes the same physical pair, so
            the membership test is [List.memq] instead of a structural
            compare over long callpath keys (and the pair is allocated
            once, not per arrival).  Non-header blocks hold a dummy. *)
    keeps : (string * string) list array;
        (** per block: the interned selfs of the loop headers enclosing
            it ([Fstatic.bheaders] resolved first-wins by label — the
            same resolution branch targets use, so only first-wins
            blocks ever execute and push entries).  Active-loops pruning
            is then a [memq] test against this list instead of a string
            comparison per (entry, header) pair. *)
  }

  (* The cached per-edge callpath data, extended with the observation
     cache (filled at the first call through this edge). *)
  and cpentry = {
    cpi_path : Obs.callpath;
    cpi_key : string;
    mutable cpi_cache : ocache option;
    mutable cpi_free : frame option;
        (** pooled frame for this edge (policies with no per-frame state
            only, see [poolable]).  Call stacks visit a given callpath at
            most once at a time — live paths form a strictly growing
            chain — so one slot suffices; it is taken out for the
            duration of the call, and a frame lost to an exception is
            simply rebuilt on the next call. *)
  }

  and frame = {
    code : Lower.lfunc;
    fname : string;
    fobs : Obs.func_obs;
    regs : value array;   (** slot-indexed values; unset = {!Lower.vunset} *)
    pframe : P.fstate;    (** policy context, slot-addressed *)
    mutable active_loops : (string * string) list;
    mutable enclosing : (string * string) list;
        (** fixed per invocation; mutable only so pooled frames can be
            re-armed for the next call through the same edge *)
    mutable enc_active : (string * string) list;
    mutable enc_list : (string * string) list;
        (** cached [active_loops @ enclosing] keyed by the physical
            identity of [active_loops] ([enc_active]): loops push and
            prune [active_loops] by whole-list replacement, so physical
            equality means the append result is unchanged.  Armed with
            the {!merge_pending} sentinel, which is never a real active
            list. *)
    callpath : Obs.callpath;
    cp_key : string;
    ocache : ocache;
    lmerged : (string * string) list array;
    lmerged_enc : (string * string) list array;
        (** per loop-header block: the [(active_loops, enclosing)] pair
            (by physical identity) whose enclosing-context merge was last
            applied — re-merging an identical context is a no-op, so it
            is skipped.  Not reset on pooled reuse: stale entries only
            match when both lists are physically unchanged, in which case
            the merge is the same no-op.  [| |] when the function has no
            loops. *)
    push_key : (string * string) list array;
    push_val : (string * string) list array;
        (** per loop-header block: memoized [self :: active_loops] cons,
            keyed by the physical identity of [active_loops]
            ([push_key]).  Re-entering a header from the same context
            then re-installs the physically same list, which is what lets
            [lmerged]/[enc_active] hits cascade across pooled
            invocations.  [| |] when the function has no loops. *)
  }

  type t = {
    program : program;
    config : Engine.config;
    max_steps : int;  (** [config.max_steps], lifted out for the hot path *)
    pstate : P.state;
    ltable : Label.table;
        (** [P.table pstate], lifted out of the per-branch path *)
    mutable harr : value array array;
        (** dense heap: handle = index; handles are never freed, so every
            index below [next_alloc] is live *)
    mutable next_alloc : int;
    mutable steps : int;
    mutable argv_buf : value array;
    mutable argl_buf : P.label array;
        (** scratch for call-argument evaluation: arguments are consumed
            into the callee frame before any nested call re-uses the
            buffers, so one pair per engine suffices — no per-call list *)
    funcs : func array;
        (** the program's functions in order, duplicate names dropped
            (first wins, as in [find_func]) *)
    findex : (string, int) Hashtbl.t;  (** function name -> index *)
    compiled : cfunc option array;     (** lazily filled, same order *)
    cp_keys : (string * string, cpentry) Hashtbl.t;
    obs : Obs.t;
    prims : (string, prim_fn) Hashtbl.t;
    mutable call_depth : int;
    im : Icounters.t option;
    trace : Obs_trace.sink;
    prof : Obs_profile.t option;
  }

  and prim_fn = t -> frame -> (value * Label.t) list -> value * Label.t

  (* -- compilation cache --------------------------------------------------- *)

  let resolve t name =
    match Hashtbl.find_opt t.findex name with
    | Some i -> Some (i, t.funcs.(i))
    | None -> None

  let compiled_of t idx =
    match t.compiled.(idx) with
    | Some cf -> cf
    | None ->
      let f = t.funcs.(idx) in
      let tbl = lowered_table t.program in
      let code =
        match Hashtbl.find_opt tbl f.fname with
        | Some code ->
          incr (Domain.DLS.get cache_hits);
          code
        | None ->
          incr (Domain.DLS.get cache_misses);
          let code = Lower.func ~resolve:(resolve t) f (Fstatic.of_func f) in
          Hashtbl.add tbl f.fname code;
          code
      in
      let has_loops =
        Array.exists
          (fun (lb : Lower.lblock) -> lb.lbi.Fstatic.bloop <> None)
          code.lblocks
      in
      let cf = { code; sfobs = Obs.func_obs t.obs f.fname; has_loops } in
      t.compiled.(idx) <- Some cf;
      cf

  let no_self = ("", "")

  let fresh_ocache cp_key (code : Lower.lfunc) =
    let n = Array.length code.lblocks in
    let selfs =
      Array.map
        (fun (lb : Lower.lblock) ->
          match lb.lbi.Fstatic.bloop with
          | Some _ -> (cp_key, lb.lbi.Fstatic.blk.label)
          | None -> no_self)
        code.lblocks
    in
    let self_of = Hashtbl.create 8 in
    Array.iteri
      (fun i (lb : Lower.lblock) ->
        let lbl = lb.lbi.Fstatic.blk.label in
        if selfs.(i) != no_self && not (Hashtbl.mem self_of lbl) then
          Hashtbl.add self_of lbl selfs.(i))
      code.lblocks;
    let keeps =
      Array.map
        (fun (lb : Lower.lblock) ->
          List.filter_map (Hashtbl.find_opt self_of) lb.lbi.Fstatic.bheaders)
        code.lblocks
    in
    {
      locs = Array.make n None;
      bocs = Array.make n None;
      sites = Array.make (max 1 code.lnsites) None;
      selfs;
      keeps;
    }

  (* -- operands ------------------------------------------------------------ *)

  (* Slot indices are in-bounds by construction (the lowering allocates
     them densely below [lnslots], the frame array's size), so the reads
     and writes are unchecked. *)
  let lop_value frame = function
    | LConst v -> v
    | LSlot i ->
      let v = Array.unsafe_get frame.regs i in
      if v == vunset then
        Eval.error "read of unset register %%%s in %s" frame.code.lsnames.(i)
          frame.fname
      else v

  let lop_label frame = function
    | LConst _ -> P.clean
    | LSlot i -> if labels then P.read_slot frame.pframe i else P.clean

  (* Matches the interpreter's argument-list evaluation order (head
     first); builds the (value, label) list host primitives and
     [export_args] consume. *)
  let rec eval_args frame (args : lop array) i =
    if i >= Array.length args then []
    else
      let v = lop_value frame args.(i) in
      let l = lop_label frame args.(i) in
      (v, l) :: eval_args frame args (i + 1)

  let set_slot t frame d v l =
    Array.unsafe_set frame.regs d v;
    if labels then P.write_slot t.pstate frame.pframe d l

  (* -- primitives ---------------------------------------------------------- *)

  let register_prim t name fn = Hashtbl.replace t.prims name fn

  let emit_event t frame prim args =
    t.obs.Obs.events <-
      { Obs.ev_func = frame.fname;
        ev_callpath = frame.callpath;
        ev_prim = prim;
        ev_args = args }
      :: t.obs.Obs.events

  let builtin_print t xargs =
    List.iter
      (fun (v, l) ->
        Fmt.epr "[pir] %a %a@." Ir.Pp.pp_value v
          (Label.pp (P.table t.pstate)) l)
      xargs;
    (VUnit, P.clean)

  (* -- allocation ---------------------------------------------------------- *)

  let alloc_array t size =
    let h = t.next_alloc in
    if h >= Array.length t.harr then begin
      let bigger = Array.make ((2 * Array.length t.harr) + 1) [||] in
      Array.blit t.harr 0 bigger 0 (Array.length t.harr);
      t.harr <- bigger
    end;
    t.harr.(h) <- Array.make (max size 0) (VInt 0);
    t.next_alloc <- h + 1;
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.add ic.Icounters.ic_heap_cells (max size 0));
    h

  (* Handles are array indices and never freed, so validity is a bounds
     check; the trap messages match the interpreter's hashed heap. *)
  let heap_arr t h =
    if h >= 0 && h < t.next_alloc then Array.unsafe_get t.harr h
    else Eval.error "dangling array handle %d" h

  let heap_get t h i =
    let a = heap_arr t h in
    if i >= 0 && i < Array.length a then Array.unsafe_get a i
    else Eval.error "index %d out of bounds (size %d)" i (Array.length a)

  let heap_set t h i v =
    let a = heap_arr t h in
    if i >= 0 && i < Array.length a then a.(i) <- v
    else Eval.error "index %d out of bounds (size %d)" i (Array.length a)

  (* -- execution ----------------------------------------------------------- *)

  let step t =
    t.steps <- t.steps + 1;
    (match t.prof with None -> () | Some p -> Obs_profile.tick p);
    if t.steps > t.max_steps then raise (Engine.Budget_exceeded t.max_steps)

  let grow_args t n =
    let cap = max n (2 * Array.length t.argv_buf) in
    t.argv_buf <- Array.make cap vunset;
    t.argl_buf <- Array.make cap P.clean

  let rec exec_linstr t frame li =
    step t;
    let fo = frame.fobs in
    fo.Obs.fo_instrs <- fo.Obs.fo_instrs + 1;
    (match t.im with None -> () | Some ic -> count_linstr ic li);
    match li with
    | LAssign (d, a) ->
      let v = lop_value frame a and l = lop_label frame a in
      set_slot t frame d v l
    | LBinop (d, op, a, b) ->
      let va = lop_value frame a and la = lop_label frame a in
      let vb = lop_value frame b and lb = lop_label frame b in
      (* The interpreter's argument order evaluates the label join
         before the operation (which may trap); keep that order so label
         tables agree even on crashing runs. *)
      let l = if labels then P.join2 t.pstate la lb else P.clean in
      let v = Eval.binop op va vb in
      set_slot t frame d v l
    | LUnop (d, op, a) ->
      let v = lop_value frame a and l = lop_label frame a in
      let v = Eval.unop op v in
      set_slot t frame d v l
    | LAlloc (d, n) ->
      let v = lop_value frame n and l = lop_label frame n in
      let size = Eval.as_int v in
      let h = alloc_array t size in
      let l = if labels then P.on_alloc t.pstate ~alloc:h ~size l else P.clean in
      set_slot t frame d (VArr h) l
    | LLoad (d, base, idx) ->
      let vb = lop_value frame base and lb = lop_label frame base in
      let vi = lop_value frame idx and li = lop_label frame idx in
      let h = Eval.as_arr vb and i = Eval.as_int vi in
      let v = heap_get t h i in
      let l =
        if labels then P.on_load t.pstate ~alloc:h ~offset:i ~base:lb ~index:li
        else P.clean
      in
      set_slot t frame d v l
    | LStore (base, idx, x) ->
      let vb = lop_value frame base and lb = lop_label frame base in
      let vi = lop_value frame idx and li = lop_label frame idx in
      let vx = lop_value frame x and lx = lop_label frame x in
      let h = Eval.as_arr vb and i = Eval.as_int vi in
      heap_set t h i vx;
      if labels then
        P.on_store t.pstate frame.pframe ~alloc:h ~offset:i ~base:lb ~index:li
          ~data:lx
    | LCall (d, callee, args, site) ->
      let n = Array.length args in
      if n > Array.length t.argv_buf then grow_args t n;
      let av = t.argv_buf and al = t.argl_buf in
      for i = 0 to n - 1 do
        av.(i) <- lop_value frame args.(i);
        al.(i) <- lop_label frame args.(i)
      done;
      let v, l = call_site t frame callee site n in
      if d >= 0 then set_slot t frame d v l
    | LPrim (d, PWork, _, args) ->
      (* [work] is pure cost accounting: charged to [fo_work] and kept
         out of the event log (symmetric with the interpreter). *)
      let v, l =
        if Array.length args = 1 then (
          match lop_value frame args.(0) with
          | VInt n ->
            let fo = frame.fobs in
            fo.Obs.fo_work <- fo.Obs.fo_work + n;
            (VUnit, P.clean)
          | _ -> Eval.error "work expects one int argument")
        else begin
          (* Arguments still evaluate (and may trap) before the arity
             error, as in the interpreter. *)
          ignore (eval_args frame args 0);
          Eval.error "work expects one int argument"
        end
      in
      if d >= 0 then set_slot t frame d v l
    | LPrim (d, kind, name, args) ->
      let argv = eval_args frame args 0 in
      let xargs = P.export_args t.pstate argv in
      emit_event t frame name xargs;
      let v, l =
        match kind with
        | PWork -> assert false (* handled above *)
        | PPrint -> builtin_print t xargs
        | PSource param -> (
          match argv with
          | [ vl ] -> P.source t.pstate ~param vl
          | _ -> Eval.error "taint:%s expects one argument" param)
        | PDyn -> (
          match Hashtbl.find_opt t.prims name with
          | Some fn ->
            let v, l = fn t frame xargs in
            (v, P.import t.pstate l)
          | None -> Eval.error "unknown primitive !%s" name)
      in
      if d >= 0 then set_slot t frame d v l

  (* Build the callee frame: slots unset, parameters not yet bound
     (each call shape binds from its own argument source). *)
  and callee_frame t ~enclosing (cf : cfunc) fname callpath cp_key ocache =
    let nslots = cf.code.lnslots in
    {
      code = cf.code;
      fname;
      fobs = cf.sfobs;
      regs = Array.make nslots vunset;
      pframe = P.frame_slots t.pstate nslots;
      active_loops = [];
      enclosing;
      enc_active = merge_pending;
      enc_list = [];
      callpath;
      cp_key;
      ocache;
      lmerged =
        (if cf.has_loops then
           Array.make (Array.length cf.code.lblocks) merge_pending
         else [||]);
      lmerged_enc =
        (if cf.has_loops then
           Array.make (Array.length cf.code.lblocks) merge_pending
         else [||]);
      push_key =
        (if cf.has_loops then
           Array.make (Array.length cf.code.lblocks) merge_pending
         else [||]);
      push_val =
        (if cf.has_loops then
           Array.make (Array.length cf.code.lblocks) merge_pending
         else [||]);
    }

  (* Count the call and run the bound frame's entry block, with the same
     trace/profile wrapping and trap placement as the interpreter. *)
  and run_frame t frame (cf : cfunc) =
    let fo = frame.fobs in
    fo.Obs.fo_calls <- fo.Obs.fo_calls + 1;
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.incr ic.Icounters.ic_calls);
    (* Empty functions trap exactly where the interpreter resolves the
       entry block: after the call was counted, before the trace span. *)
    if Array.length cf.code.lblocks = 0 then ignore (entry_block cf.code.lf);
    let result =
      match t.prof with
      | None ->
        (* No closure in the common (unprofiled, untraced) path. *)
        if Obs_trace.enabled t.trace then begin
          Obs_trace.span_begin t.trace ~cat:"interp" frame.fname;
          Fun.protect
            ~finally:(fun () -> Obs_trace.span_end t.trace frame.fname)
            (fun () -> exec_block t frame 0 ~prev:None ~from_inside:false)
        end
        else exec_block t frame 0 ~prev:None ~from_inside:false
      | Some p ->
        let body () =
          if Obs_trace.enabled t.trace then begin
            Obs_trace.span_begin t.trace ~cat:"interp" frame.fname;
            Fun.protect
              ~finally:(fun () -> Obs_trace.span_end t.trace frame.fname)
              (fun () -> exec_block t frame 0 ~prev:None ~from_inside:false)
          end
          else exec_block t frame 0 ~prev:None ~from_inside:false
        in
        Obs_profile.enter p frame.fname;
        Fun.protect ~finally:(fun () -> Obs_profile.leave p) body
    in
    t.call_depth <- t.call_depth - 1;
    result

  (* The entry-point call shape: list arguments, fresh observation
     cache (the root callpath is never shared). *)
  and call t callee argv =
    t.call_depth <- t.call_depth + 1;
    if t.call_depth > max_call_depth then Eval.error "call depth exceeded";
    let idx = match callee with CIdx i -> i | CTrap e -> raise e in
    let cf = compiled_of t idx in
    let fname = t.funcs.(idx).fname in
    let cp = [ fname ] in
    let cp_key = Obs.callpath_key cp in
    let frame =
      callee_frame t ~enclosing:[] cf fname cp cp_key
        (fresh_ocache cp_key cf.code)
    in
    (* Parameters occupy slots 0 .. n-1 by construction. *)
    List.iteri
      (fun i (v, l) ->
        frame.regs.(i) <- v;
        P.bind_slot frame.pframe i l)
      argv;
    run_frame t frame cf

  (* The in-program call shape: [nargs] arguments staged in the scratch
     buffers, callpath data cached per [LCall] site.  Unknown-callee and
     arity traps fire here, where the interpreter performs its lookup
     and check — after the depth guard. *)
  and call_site t frame callee site nargs =
    t.call_depth <- t.call_depth + 1;
    if t.call_depth > max_call_depth then Eval.error "call depth exceeded";
    let idx = match callee with CIdx i -> i | CTrap e -> raise e in
    let cf = compiled_of t idx in
    let fname = t.funcs.(idx).fname in
    let entry =
      match frame.ocache.sites.(site) with
      | Some e -> e
      | None ->
        let mk = (frame.cp_key, fname) in
        let e =
          match Hashtbl.find_opt t.cp_keys mk with
          | Some e -> e
          | None ->
            let cp = frame.callpath @ [ fname ] in
            let e =
              { cpi_path = cp; cpi_key = Obs.callpath_key cp;
                cpi_cache = None; cpi_free = None }
            in
            Hashtbl.add t.cp_keys mk e;
            e
        in
        frame.ocache.sites.(site) <- Some e;
        e
    in
    let ocache =
      match entry.cpi_cache with
      | Some oc -> oc
      | None ->
        let oc = fresh_ocache entry.cpi_key cf.code in
        entry.cpi_cache <- Some oc;
        oc
    in
    let enclosing =
      match frame.active_loops with
      | [] -> frame.enclosing
      | al ->
        if al == frame.enc_active then frame.enc_list
        else begin
          let e = al @ frame.enclosing in
          frame.enc_active <- al;
          frame.enc_list <- e;
          e
        end
    in
    let callee =
      match if poolable then entry.cpi_free else None with
      | Some f ->
        entry.cpi_free <- None;
        Array.fill f.regs 0 (Array.length f.regs) vunset;
        f.active_loops <- [];
        (* [lmerged]/[push_key] caches are keyed by physical identity,
           so stale entries are safe and steady-state callers (whose
           context lists are physically unchanged call over call) keep
           hitting them; only a changed enclosing context invalidates
           the append cache. *)
        if f.enclosing != enclosing then begin
          f.enclosing <- enclosing;
          f.enc_active <- merge_pending
        end;
        f
      | None ->
        callee_frame t ~enclosing cf fname entry.cpi_path entry.cpi_key ocache
    in
    let av = t.argv_buf in
    if labels then begin
      let al = t.argl_buf in
      for i = 0 to nargs - 1 do
        callee.regs.(i) <- av.(i);
        P.bind_slot callee.pframe i al.(i)
      done
    end
    else for i = 0 to nargs - 1 do callee.regs.(i) <- av.(i) done;
    let result = run_frame t callee cf in
    if poolable then entry.cpi_free <- Some callee;
    result

  and exec_block t frame idx ~prev ~from_inside =
    (* Block indices come from [BGo] targets and are in-bounds by
       construction. *)
    let lb = Array.unsafe_get frame.code.lblocks idx in
    let bi = lb.lbi in
    let label = bi.Fstatic.blk.label in
    if blocks_observed then
      P.block_enter t.pstate frame.pframe ~func:frame.fname ~block:label ~prev;
    (match frame.active_loops with
    | [] -> ()
    | loops ->
      (* Same pruning as the interpreter's unconditional [List.filter],
         but allocation-free when nothing leaves scope (the steady state
         of a loop body), and by physical identity against the interned
         per-block header selfs. *)
      let allowed = frame.ocache.keeps.(idx) in
      let keep e = List.memq e allowed in
      if not (List.for_all keep loops) then
        frame.active_loops <- List.filter keep loops);
    (match bi.Fstatic.bloop with
    | None -> ()
    | Some loop ->
      let lo =
        match frame.ocache.locs.(idx) with
        | Some lo -> lo
        | None ->
          let lo =
            Dynobs.loop_obs t.obs ~cp_key:frame.cp_key ~func:frame.fname
              ~header:label ~callpath:frame.callpath
              ~depth:loop.Ir.Loops.depth ~parent:loop.Ir.Loops.parent
          in
          frame.ocache.locs.(idx) <- Some lo;
          lo
      in
      Dynobs.record_arrival lo ~from_inside;
      (match t.im with
      | None -> ()
      | Some ic ->
        if from_inside then Obs_metrics.incr ic.Icounters.ic_loop_iters
        else Obs_metrics.incr ic.Icounters.ic_loop_entries);
      if (not from_inside) && Obs_trace.enabled t.trace then
        Obs_trace.instant t.trace ~cat:"loop" (frame.fname ^ "/" ^ label);
      (* [merge_enclosing] only ever adds context keys, so re-merging a
         physically identical (active, enclosing) context is a no-op and
         is skipped. *)
      let self = frame.ocache.selfs.(idx) in
      if
        frame.lmerged.(idx) != frame.active_loops
        || frame.lmerged_enc.(idx) != frame.enclosing
      then begin
        Dynobs.merge_enclosing lo ~self ~active:frame.active_loops
          ~enclosing:frame.enclosing;
        frame.lmerged.(idx) <- frame.active_loops;
        frame.lmerged_enc.(idx) <- frame.enclosing
      end;
      if not (List.memq self frame.active_loops) then
        if frame.push_key.(idx) == frame.active_loops then
          frame.active_loops <- frame.push_val.(idx)
        else begin
          let pushed = self :: frame.active_loops in
          frame.push_key.(idx) <- frame.active_loops;
          frame.push_val.(idx) <- pushed;
          frame.active_loops <- pushed
        end);
    let instrs = lb.linstrs in
    for i = 0 to Array.length instrs - 1 do
      exec_linstr t frame (Array.unsafe_get instrs i)
    done;
    step t;
    (match t.im with
    | None -> ()
    | Some ic -> Obs_metrics.incr ic.Icounters.ic_ctl);
    (* [prev] is only ever read by [P.block_enter]; skip the [Some]
       allocation per block transition when blocks are unobserved. *)
    let pv = if blocks_observed then Some label else None in
    match lb.lterm with
    | LReturn op ->
      let v = lop_value frame op and l = lop_label frame op in
      (v, if labels then P.return_label t.pstate frame.pframe l else P.clean)
    | LJump (BGo (tgt, fi)) -> exec_block t frame tgt ~prev:pv ~from_inside:fi
    | LJump (BTrap e) -> raise e
    | LBranch (c, bthen, belse) -> (
      let v = lop_value frame c and l = lop_label frame c in
      let dep =
        if labels then P.branch_dep t.pstate frame.pframe l else P.clean
      in
      let taken = Eval.as_bool v in
      (match t.im with
      | None -> ()
      | Some ic ->
        Obs_metrics.incr ic.Icounters.ic_branches;
        if not (P.is_clean dep) then
          Obs_metrics.incr ic.Icounters.ic_tainted_branches);
      let odep = if labels then P.export t.pstate dep else Label.empty in
      let bo =
        match frame.ocache.bocs.(idx) with
        | Some bo -> bo
        | None ->
          let bo =
            Dynobs.branch_obs t.obs ~cp_key:frame.cp_key ~func:frame.fname
              ~block:label ~callpath:frame.callpath
          in
          frame.ocache.bocs.(idx) <- Some bo;
          bo
      in
      Dynobs.record_branch t.ltable bo ~dep:odep ~taken;
      (match bi.Fstatic.bexits with
      | [] -> ()
      | bexits ->
        Dynobs.loop_sink t.ltable t.obs ~cp_key:frame.cp_key bexits odep);
      (if labels && P.wants_scope t.pstate l then
         P.scope_push t.pstate frame.pframe ~join:bi.Fstatic.bjoin l);
      match (if taken then bthen else belse) with
      | BGo (tgt, fi) -> exec_block t frame tgt ~prev:pv ~from_inside:fi
      | BTrap e -> raise e)

  (* -- entry points -------------------------------------------------------- *)

  let create ?(config = Engine.default_config) ?metrics
      ?(trace = Obs_trace.disabled) ?profile (program : Ir.Types.program) =
    let hint =
      List.fold_left
        (fun acc (f : func) ->
          List.fold_left
            (fun a (b : Ir.Types.block) -> a + List.length b.instrs)
            acc f.blocks)
        0 program.funcs
    in
    let findex = Hashtbl.create 16 in
    let funcs =
      (* First-wins on duplicate names, matching [find_func]'s scan. *)
      List.filter
        (fun (f : func) ->
          if Hashtbl.mem findex f.fname then false
          else begin
            Hashtbl.add findex f.fname (-1);
            true
          end)
        program.funcs
      |> Array.of_list
    in
    Array.iteri (fun i (f : func) -> Hashtbl.replace findex f.fname i) funcs;
    let pstate =
      P.create ~control_flow_taint:config.Engine.control_flow_taint ~hint
    in
    {
      program;
      config;
      max_steps = config.Engine.max_steps;
      pstate;
      ltable = P.table pstate;
      harr = Array.make 64 [||];
      next_alloc = 0;
      steps = 0;
      argv_buf = Array.make 8 vunset;
      argl_buf = Array.make 8 P.clean;
      funcs;
      findex;
      compiled = Array.make (max 1 (Array.length funcs)) None;
      cp_keys = Hashtbl.create 64;
      obs = Obs.create ();
      prims = Hashtbl.create 16;
      call_depth = 0;
      im = Option.map Icounters.of_metrics metrics;
      trace;
      prof = profile;
    }

  let entry_callee t =
    (* [run] has already resolved the entry through [find_func], so the
       name is present; the lookup cannot fail. *)
    CIdx (Hashtbl.find t.findex t.program.entry)

  let run t args =
    let entry = find_func t.program t.program.entry in
    if List.length entry.fparams <> List.length args then
      Eval.error "entry %s expects %d arguments, got %d" entry.fname
        (List.length entry.fparams) (List.length args);
    let v, l =
      call t (entry_callee t) (List.map (fun v -> (v, P.clean)) args)
    in
    (v, P.export t.pstate l)

  let run_named t bindings =
    let entry = find_func t.program t.program.entry in
    let args =
      List.map
        (fun p ->
          match List.assoc_opt p bindings with
          | Some v -> v
          | None -> Eval.error "missing binding for entry parameter %s" p)
        entry.fparams
    in
    run t args

  let observations t = t.obs
  let label_table t = t.ltable
  let steps_executed t = t.steps
  let trace_sink t = t.trace
  let policy_state t = t.pstate
end

(** The compiled tier under each bundled policy — the drop-in
    counterparts of {!Machine}, {!Plain} and {!Coverage}. *)
module Taint = Make (Taint_policy)

module Plain = Make (Plain_policy)
module Coverage = Make (Coverage_policy)
