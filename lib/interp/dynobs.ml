(** Dynamic observation recording shared by the interpreted and compiled
    execution tiers: find-or-create of loop and branch records, the
    arrival/taken counters, the enclosing-loop context merge, and the
    loop-exit taint sink.

    Both tiers call exactly these functions in the same order, so loop,
    branch and dependency observations — including the [Label.union]
    call order that determines label-table identity — cannot drift
    between them. *)

module Obs = Observations
module Label = Taint.Label

let loop_obs (obs : Obs.t) ~cp_key ~func ~header ~callpath ~depth ~parent =
  let key = (cp_key, header) in
  match Hashtbl.find_opt obs.Obs.loops key with
  | Some lo -> lo
  | None ->
    let lo =
      {
        Obs.lo_func = func;
        lo_header = header;
        lo_callpath = callpath;
        lo_depth = depth;
        lo_parent = parent;
        lo_iters = 0;
        lo_entries = 0;
        lo_dep = Label.empty;
        lo_enclosing = [];
      }
    in
    Hashtbl.replace obs.Obs.loops key lo;
    lo

let record_arrival (lo : Obs.loop_obs) ~from_inside =
  if from_inside then lo.Obs.lo_iters <- lo.Obs.lo_iters + 1
  else lo.Obs.lo_entries <- lo.Obs.lo_entries + 1

(** Merge the dynamically enclosing loop keys (this frame's active loops
    minus the loop itself, then the caller chain's) into
    [lo.lo_enclosing], preserving first-seen order. *)
let merge_enclosing (lo : Obs.loop_obs) ~self ~active ~enclosing =
  let ctx = List.filter (fun k -> k <> self) active @ enclosing in
  List.iter
    (fun k ->
      if not (List.mem k lo.Obs.lo_enclosing) then
        lo.Obs.lo_enclosing <- k :: lo.Obs.lo_enclosing)
    ctx

let branch_obs (obs : Obs.t) ~cp_key ~func ~block ~callpath =
  let key = (cp_key, block) in
  match Hashtbl.find_opt obs.Obs.branches key with
  | Some bo -> bo
  | None ->
    let bo =
      {
        Obs.br_func = func;
        br_block = block;
        br_callpath = callpath;
        br_taken = 0;
        br_not_taken = 0;
        br_dep = Label.empty;
      }
    in
    Hashtbl.replace obs.Obs.branches key bo;
    bo

let record_branch table (bo : Obs.branch_obs) ~dep ~taken =
  if taken then bo.Obs.br_taken <- bo.Obs.br_taken + 1
  else bo.Obs.br_not_taken <- bo.Obs.br_not_taken + 1;
  (* A clean dependency cannot change the record; skipping the union
     here (in shared code, so identically in both tiers) keeps the
     label-table stats free of no-op unions from untainted branches —
     the overwhelmingly common case of plain runs. *)
  if not (Label.is_empty dep) then
    bo.Obs.br_dep <- Label.union table bo.Obs.br_dep dep

(** Union [dep] into the recorded dependency of every loop in [exits]
    (the loops for which the current block is an exiting block): the
    loop-exit taint sink.  Loops never yet entered have no record and
    are skipped, exactly as in the historical interpreter. *)
let loop_sink table (obs : Obs.t) ~cp_key exits dep =
  (* As in {!record_branch}, a clean dependency is a no-op sink. *)
  if not (Label.is_empty dep) then
    List.iter
      (fun (l : Ir.Loops.loop) ->
        match Hashtbl.find_opt obs.Obs.loops (cp_key, l.Ir.Loops.header) with
        | Some lo -> lo.Obs.lo_dep <- Label.union table lo.Obs.lo_dep dep
        | None -> ())
      exits
