(** Coverage-collecting PIR execution: the {!Engine} instantiated with
    {!Coverage_policy}.  Counts block arrivals and intra-function edge
    traversals; read them back via {!policy_state} and the
    {!Coverage_policy} accessors. *)

include Engine.Make (Coverage_policy)
