(** Evaluation of PIR scalar operations, with dynamic kind checking. *)

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val as_int : Ir.Types.value -> int
val as_float : Ir.Types.value -> float
val as_bool : Ir.Types.value -> bool
val as_arr : Ir.Types.value -> int

val vint : int -> Ir.Types.value
(** [VInt i], shared from a pre-boxed pool for small [i] (values are
    immutable, so sharing is unobservable). *)

val vbool : bool -> Ir.Types.value
(** [VBool b], shared. *)

val binop : Ir.Types.binop -> Ir.Types.value -> Ir.Types.value -> Ir.Types.value
val unop : Ir.Types.unop -> Ir.Types.value -> Ir.Types.value
