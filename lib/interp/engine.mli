(** The policy-parameterized PIR execution engine.

    One execution substrate, many analyses: the engine owns program
    values, the heap, call frames, loop/branch/function observations,
    instruction metrics, tracing and the step budget, while an analysis
    {e policy} supplies everything shadow-related — the per-value shadow
    state, the transfer functions per instruction class, the branch hook
    and the control-scope discipline.

    This is the architectural split the paper's economy rests on
    (Section 5.2): {e one} instrumented tainted run, {e many} clean
    measurement runs.  {!Machine} instantiates the engine with the
    DFSan-style {!Taint_policy}; {!Plain} runs the same programs with
    zero shadow bookkeeping; {!Coverage} counts block and edge
    executions.  All three produce identical program results and
    identical observations modulo taint labels. *)

exception Budget_exceeded of int
(** Raised when the [max_steps] instruction budget is exhausted — kept
    distinct from {!Eval.Runtime_error} so callers (notably the fuzzing
    oracles and the CLI) can tell a genuinely too-long execution from a
    dynamic error in the program. *)

type config = {
  control_flow_taint : bool;
      (** propagate taint through control dependencies (paper default:
          on; off reproduces plain DFSan for the ablation).  Only the
          Taint policy reads it. *)
  max_steps : int;  (** instruction budget; guards against runaway loops *)
}

val default_config : config

(** The two execution tiers sharing these semantics: the tree-walking
    interpreter ({!Make}) and the slot-resolved lowered form
    ({!Compiled.Make}).  The compiled tier is the default everywhere a
    program is executed; the interpreter is the semantic reference the
    [compile_identity] fuzzing oracle differences against. *)
type tier = Interpreted | Compiled

val default_tier : tier
(** {!Compiled}. *)

val tier_name : tier -> string
(** ["interp"] / ["compiled"] — the names accepted by the CLI's
    [--engine] flag. *)

val tier_of_name : string -> tier option

val instr_counters : (string * string) list
(** The per-instruction metric names the engine registers when a metrics
    registry is attached, with a one-line meaning each.  This list is the
    single definition behind both the engine's pre-interned counters and
    the counter table of [doc/OBSERVABILITY.md] (kept in sync by a test),
    so the documentation cannot drift from the implementation. *)

(** An analysis policy: the shadow semantics layered over one execution
    of the program.  [label] is the shadow of one value, [fstate] the
    per-frame shadow context (e.g. the control-taint stack), [state] the
    whole-run analysis state (e.g. the label table and shadow memory). *)
module type POLICY = sig
  val name : string

  val tracks_labels : bool
  (** Whether slot labels carry information.  [false] promises that
      {!read_slot}/{!write_slot}/{!bind_slot}, {!join2}, {!on_alloc},
      {!on_load}, {!on_store}, {!branch_dep} and {!return_label} are
      pure no-ops whose every result is {!clean} (with [export clean =
      Taint.Label.empty]), and that {!wants_scope} is constant [false].
      The compiled tier specializes on it, skipping the label plumbing
      altogether; the interpreter always calls the hooks, so the promise
      is cross-checked by the differential oracle. *)

  val observes_blocks : bool
  (** Whether {!block_enter} has observable effects ([false] lets a
      tier skip the call — true of the Plain policy only). *)

  type state
  type label
  type fstate

  val create : control_flow_taint:bool -> hint:int -> state
  (** [hint] is a program-size proxy (static instruction count) for
      presizing policy tables; it must not affect semantics. *)

  val table : state -> Taint.Label.table
  (** The label table backing {!export}/{!import}; policies without
      labels return a private empty table. *)

  val frame_state : state -> fstate
  (** Fresh per-frame context, built at every function call. *)

  val clean : label
  (** Shadow of literals and of values without dependencies. *)

  val is_clean : label -> bool

  val read_reg : fstate -> string -> label
  val write_reg : state -> fstate -> string -> label -> unit
  (** Record a register write; the Taint policy folds the active control
      scopes into the written label here. *)

  val bind_param : fstate -> string -> label -> unit
  (** Bind a formal parameter at call entry (no control-scope fold). *)

  val frame_slots : state -> int -> fstate
  (** Fresh per-frame context for the compiled tier, where the lowering
      pass has resolved the frame's registers to [n] dense integer
      slots.  The slot accessors below must implement exactly the same
      shadow semantics as their register-named counterparts. *)

  val read_slot : fstate -> int -> label
  val write_slot : state -> fstate -> int -> label -> unit
  (** Slot analogue of {!write_reg} (control-scope fold included). *)

  val bind_slot : fstate -> int -> label -> unit
  (** Slot analogue of {!bind_param} (no control-scope fold). *)

  val join2 : state -> label -> label -> label
  (** Transfer function of two-operand ALU instructions. *)

  val on_alloc : state -> alloc:int -> size:int -> label -> label
  (** Register a fresh allocation; receives the size operand's label and
      returns the label of the array handle. *)

  val on_load :
    state -> alloc:int -> offset:int -> base:label -> index:label -> label

  val on_store :
    state -> fstate -> alloc:int -> offset:int -> base:label -> index:label ->
    data:label -> unit

  val source : state -> param:string -> Ir.Types.value * label ->
    Ir.Types.value * label
  (** Semantics of the [taint:<param>] pass-through source primitive. *)

  val export : state -> label -> Taint.Label.t
  (** Project a policy label into the shared observation/label-table
      domain (identity for Taint, the empty label otherwise). *)

  val import : state -> Taint.Label.t -> label
  (** Inject a host-primitive result label into the policy domain. *)

  val export_args :
    state -> (Ir.Types.value * label) list ->
    (Ir.Types.value * Taint.Label.t) list
  (** Batch {!export} of evaluated primitive arguments; the Taint policy
      returns the list physically unchanged. *)

  val branch_dep : state -> fstate -> label -> label
  (** Dependency recorded for a conditional branch (and for the loop-exit
      sinks on the same block): condition label plus control context. *)

  val return_label : state -> fstate -> label -> label

  val wants_scope : state -> label -> bool
  (** Should the engine resolve the branch's immediate postdominator and
      open a control scope for this condition label? *)

  val scope_push : state -> fstate -> join:string -> label -> unit

  val block_enter :
    state -> fstate -> func:string -> block:string -> prev:string option ->
    unit
  (** Called on every block arrival, before loop accounting: the Taint
      policy pops control scopes whose join this block is; the Coverage
      policy counts blocks and edges. *)
end

(** The prim-registration face of an engine instance — what host-runtime
    layers (the MPI simulation) need, independent of the policy. *)
module type HOST = sig
  type t
  type frame

  type prim_fn =
    t -> frame -> (Ir.Types.value * Taint.Label.t) list ->
    Ir.Types.value * Taint.Label.t
  (** A host primitive: receives evaluated arguments with their exported
      labels and returns the result value and label (imported back into
      the policy domain by the engine). *)

  val register_prim : t -> string -> prim_fn -> unit
  val label_table : t -> Taint.Label.table
end

(** An instantiated engine. *)
module type S = sig
  val policy_name : string

  type pstate
  (** The policy's whole-run analysis state. *)

  include HOST

  val create :
    ?config:config -> ?metrics:Obs_metrics.t -> ?trace:Obs_trace.sink ->
    ?profile:Obs_profile.t -> Ir.Types.program -> t
  (** [profile] attaches a deterministic sampling profiler: every
      [interval] executed steps the current call stack is credited with
      one sample.  Sampling is driven by the step count, never wall
      time, so profiles are bit-identical across runs. *)

  val run : t -> Ir.Types.value list -> Ir.Types.value * Taint.Label.t
  (** Execute the entry function with positional arguments.
      @raise Eval.Runtime_error on dynamic errors.
      @raise Budget_exceeded when [max_steps] instructions were executed. *)

  val run_named :
    t -> (string * Ir.Types.value) list -> Ir.Types.value * Taint.Label.t

  val observations : t -> Observations.t
  val steps_executed : t -> int
  val trace_sink : t -> Obs_trace.sink

  val policy_state : t -> pstate
  (** Direct access to the policy's analysis state (e.g. the Coverage
      policy's block/edge counters). *)
end

module Make (P : POLICY) : S with type pstate = P.state
