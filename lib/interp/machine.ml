(** The PIR interpreter with inline dynamic taint analysis: the
    policy-parameterized {!Engine} instantiated with {!Taint_policy}.

    This module is the analogue of DataFlowSanitizer's instrumented
    execution (paper Section 5.2): every instruction propagates taint
    labels from its operands to its result; conditional branches push the
    label of their condition onto a control-taint stack scoped by the
    branch's immediate postdominator, implementing the paper's explicit
    control-flow tainting extension; the exit conditions of natural loops
    act as taint sinks and feed the loop-count parameter identification of
    Section 4.1.

    Host primitives (MPI routines, synthetic work, taint sources) are
    dispatched through an extensible registry so higher layers (the MPI
    simulation, the applications) can install their own semantics. *)

exception Runtime_error = Eval.Runtime_error

exception Budget_exceeded = Engine.Budget_exceeded

type config = Engine.config = {
  control_flow_taint : bool;
  max_steps : int;
}

let default_config = Engine.default_config

include Engine.Make (Taint_policy)
