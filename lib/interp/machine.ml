(** The PIR interpreter with inline dynamic taint analysis.

    This module is the analogue of DataFlowSanitizer's instrumented
    execution (paper Section 5.2): every instruction propagates taint
    labels from its operands to its result; conditional branches push the
    label of their condition onto a control-taint stack scoped by the
    branch's immediate postdominator, implementing the paper's explicit
    control-flow tainting extension; the exit conditions of natural loops
    act as taint sinks and feed the loop-count parameter identification of
    Section 4.1.

    Host primitives (MPI routines, synthetic work, taint sources) are
    dispatched through an extensible registry so higher layers (the MPI
    simulation, the applications) can install their own semantics. *)

open Ir.Types
module Label = Taint.Label
module Shadow = Taint.Shadow
module Obs = Observations

exception Runtime_error = Eval.Runtime_error

exception Budget_exceeded of int

type config = {
  control_flow_taint : bool;
      (** propagate taint through control dependencies (paper default:
          on; exposed for the ablation benchmarks) *)
  max_steps : int;  (** instruction budget; guards against runaway loops *)
}

let default_config = { control_flow_taint = true; max_steps = 200_000_000 }

(* Pre-interned instruction counters (opcode classes, memory and shadow
   traffic, control flow, loops).  Held as an [option] on the machine:
   the disabled path is one field load and branch per instruction, with
   no hashing and no allocation. *)
type icounters = {
  ic_alu : Obs_metrics.counter;      (** Assign/Binop/Unop *)
  ic_mem : Obs_metrics.counter;      (** Alloc/Load/Store *)
  ic_call : Obs_metrics.counter;     (** Call instructions *)
  ic_prim : Obs_metrics.counter;     (** Prim instructions *)
  ic_ctl : Obs_metrics.counter;      (** block terminators *)
  ic_loads : Obs_metrics.counter;
  ic_stores : Obs_metrics.counter;
  ic_allocs : Obs_metrics.counter;
  ic_heap_cells : Obs_metrics.counter;
  ic_branches : Obs_metrics.counter;
  ic_tainted_branches : Obs_metrics.counter;
  ic_loop_entries : Obs_metrics.counter;
  ic_loop_iters : Obs_metrics.counter;
  ic_calls : Obs_metrics.counter;    (** function invocations *)
}

let icounters_of m =
  let c = Obs_metrics.counter m in
  {
    ic_alu = c "interp.instr.alu";
    ic_mem = c "interp.instr.mem";
    ic_call = c "interp.instr.call";
    ic_prim = c "interp.instr.prim";
    ic_ctl = c "interp.instr.ctl";
    ic_loads = c "interp.mem.loads";
    ic_stores = c "interp.mem.stores";
    ic_allocs = c "interp.mem.allocs";
    ic_heap_cells = c "interp.mem.heap_cells";
    ic_branches = c "interp.ctl.branches";
    ic_tainted_branches = c "interp.ctl.tainted_branches";
    ic_loop_entries = c "interp.loop.entries";
    ic_loop_iters = c "interp.loop.iterations";
    ic_calls = c "interp.calls";
  }

(* Static per-function facts needed during execution. *)
type fstatic = {
  cfg : Ir.Cfg.t;
  forest : Ir.Loops.forest;
  exit_of : (string, Ir.Loops.loop list) Hashtbl.t;
      (** block label -> loops for which this block is exiting *)
}

type frame = {
  ffunc : func;
  fstat : fstatic;
  regs : (string, value) Hashtbl.t;
  rshadow : (string, Label.t) Hashtbl.t;
  mutable ctl : (string * Label.t) list;
      (** (join label, condition taint); "$never" join is function-scoped *)
  mutable active_loops : (string * string) list;
      (** observation keys of loops currently being executed in this
          frame, innermost first *)
  enclosing : (string * string) list;
      (** loop observation keys active in the caller chain at call time *)
  callpath : Obs.callpath;
  cp_key : string;
}

type t = {
  program : program;
  config : config;
  labels : Label.table;
  heap : (int, value array) Hashtbl.t;
  shadow : Shadow.t;
  mutable next_alloc : int;
  mutable steps : int;
  statics : (string, fstatic) Hashtbl.t;
  obs : Obs.t;
  prims : (string, prim_fn) Hashtbl.t;
  mutable call_depth : int;
  im : icounters option;     (** instruction metrics, when enabled *)
  trace : Obs_trace.sink;    (** span/instant sink, [disabled] by default *)
}

and prim_fn = t -> frame -> (value * Label.t) list -> value * Label.t

let never_join = "$never"
let max_call_depth = 10_000

(* -- static info cache --------------------------------------------------- *)

let fstatic_of t fname =
  match Hashtbl.find_opt t.statics fname with
  | Some s -> s
  | None ->
    let f = find_func t.program fname in
    let cfg = Ir.Cfg.build f in
    let forest = Ir.Loops.detect cfg in
    let exit_of = Hashtbl.create 8 in
    List.iter
      (fun (l : Ir.Loops.loop) ->
        List.iter
          (fun blk ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt exit_of blk) in
            Hashtbl.replace exit_of blk (l :: cur))
          (Ir.Loops.exiting_blocks l))
      forest.loops;
    let s = { cfg; forest; exit_of } in
    Hashtbl.replace t.statics fname s;
    s

(* -- taint helpers ------------------------------------------------------- *)

let ctl_taint t frame =
  List.fold_left (fun acc (_, l) -> Label.union t.labels acc l) Label.empty frame.ctl

let reg_label frame r =
  Option.value ~default:Label.empty (Hashtbl.find_opt frame.rshadow r)

let operand_value frame = function
  | Reg r -> (
    match Hashtbl.find_opt frame.regs r with
    | Some v -> v
    | None -> Eval.error "read of unset register %%%s in %s" r frame.ffunc.fname)
  | Int i -> VInt i
  | Float f -> VFloat f
  | Bool b -> VBool b
  | Unit -> VUnit

let operand_label frame = function
  | Reg r -> reg_label frame r
  | Int _ | Float _ | Bool _ | Unit -> Label.empty

let eval_operand frame op = (operand_value frame op, operand_label frame op)

(* Write a register together with its shadow label; control taint is folded
   in when control-flow tainting is enabled. *)
let write_reg t frame r v l =
  let l =
    if t.config.control_flow_taint then Label.union t.labels l (ctl_taint t frame)
    else l
  in
  Hashtbl.replace frame.regs r v;
  Hashtbl.replace frame.rshadow r l

(* -- primitives ---------------------------------------------------------- *)

let register_prim t name fn = Hashtbl.replace t.prims name fn

let emit_event t frame prim args =
  t.obs.Obs.events <-
    { Obs.ev_func = frame.ffunc.fname;
      ev_callpath = frame.callpath;
      ev_prim = prim;
      ev_args = args }
    :: t.obs.Obs.events

(* [taint:<name>] is a pass-through taint source: it returns its argument
   with the base label <name> unioned in — PIR's register_variable. *)
let dispatch_prim t frame name (args : (value * Label.t) list) =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "taint" ->
    let param = String.sub name (i + 1) (String.length name - i - 1) in
    let base = Label.base t.labels param in
    (match args with
    | [ (VArr h, l) ] ->
      (* Tainting an array taints every cell. *)
      Shadow.taint_all t.shadow ~alloc:h base;
      (VArr h, Label.union t.labels l base)
    | [ (v, l) ] -> (v, Label.union t.labels l base)
    | _ -> Eval.error "taint:%s expects one argument" param)
  | _ -> (
    match Hashtbl.find_opt t.prims name with
    | Some fn -> fn t frame args
    | None -> Eval.error "unknown primitive !%s" name)

let builtin_work t frame = function
  | [ (VInt n, _) ] ->
    let fo = Obs.func_obs t.obs frame.ffunc.fname in
    fo.Obs.fo_work <- fo.Obs.fo_work + n;
    (VUnit, Label.empty)
  | _ -> Eval.error "work expects one int argument"

let builtin_print t frame args =
  ignore frame;
  List.iter
    (fun (v, l) ->
      Fmt.epr "[pir] %a %a@." Ir.Pp.pp_value v (Label.pp t.labels) l)
    args;
  (VUnit, Label.empty)

(* -- allocation ---------------------------------------------------------- *)

let alloc_array t size =
  let h = t.next_alloc in
  t.next_alloc <- t.next_alloc + 1;
  Hashtbl.replace t.heap h (Array.make (max size 0) (VInt 0));
  Shadow.on_alloc t.shadow ~alloc:h ~size;
  (match t.im with
  | None -> ()
  | Some ic -> Obs_metrics.add ic.ic_heap_cells (max size 0));
  h

let heap_get t h i =
  match Hashtbl.find_opt t.heap h with
  | Some a when i >= 0 && i < Array.length a -> a.(i)
  | Some a -> Eval.error "index %d out of bounds (size %d)" i (Array.length a)
  | None -> Eval.error "dangling array handle %d" h

let heap_set t h i v =
  match Hashtbl.find_opt t.heap h with
  | Some a when i >= 0 && i < Array.length a -> a.(i) <- v
  | Some a -> Eval.error "index %d out of bounds (size %d)" i (Array.length a)
  | None -> Eval.error "dangling array handle %d" h

(* -- execution ----------------------------------------------------------- *)

let step t =
  t.steps <- t.steps + 1;
  if t.steps > t.config.max_steps then raise (Budget_exceeded t.config.max_steps)

let count_instr ic = function
  | Assign _ | Binop _ | Unop _ -> Obs_metrics.incr ic.ic_alu
  | Alloc _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_allocs
  | Load _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_loads
  | Store _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_stores
  | Call _ -> Obs_metrics.incr ic.ic_call
  | Prim _ -> Obs_metrics.incr ic.ic_prim

let rec exec_instr t frame instr =
  step t;
  let fo = Obs.func_obs t.obs frame.ffunc.fname in
  fo.Obs.fo_instrs <- fo.Obs.fo_instrs + 1;
  (match t.im with None -> () | Some ic -> count_instr ic instr);
  match instr with
  | Assign (d, a) ->
    let v, l = eval_operand frame a in
    write_reg t frame d v l
  | Binop (d, op, a, b) ->
    let va, la = eval_operand frame a in
    let vb, lb = eval_operand frame b in
    write_reg t frame d (Eval.binop op va vb) (Label.union t.labels la lb)
  | Unop (d, op, a) ->
    let v, l = eval_operand frame a in
    write_reg t frame d (Eval.unop op v) l
  | Alloc (d, n) ->
    let v, l = eval_operand frame n in
    let h = alloc_array t (Eval.as_int v) in
    (* The allocation size's taint flows to the handle: indexing
       computations derived from the handle itself stay clean, but the
       summary label of the array keeps the size dependency visible. *)
    write_reg t frame d (VArr h) l
  | Load (d, base, idx) ->
    let vb, lb = eval_operand frame base in
    let vi, li = eval_operand frame idx in
    let h = Eval.as_arr vb and i = Eval.as_int vi in
    let v = heap_get t h i in
    let lmem = Shadow.get t.shadow { alloc = h; offset = i } in
    write_reg t frame d v (Label.union_all t.labels [ lb; li; lmem ])
  | Store (base, idx, x) ->
    let vb, lb = eval_operand frame base in
    let vi, li = eval_operand frame idx in
    let vx, lx = eval_operand frame x in
    let h = Eval.as_arr vb and i = Eval.as_int vi in
    heap_set t h i vx;
    let l = Label.union_all t.labels [ lb; li; lx ] in
    let l =
      if t.config.control_flow_taint then Label.union t.labels l (ctl_taint t frame)
      else l
    in
    Shadow.set t.shadow { alloc = h; offset = i } l
  | Call (d, fname, args) ->
    let argv = List.map (eval_operand frame) args in
    let enclosing = frame.active_loops @ frame.enclosing in
    let v, l = call ~enclosing t frame.callpath fname argv in
    (match d with Some d -> write_reg t frame d v l | None -> ())
  | Prim (d, p, args) ->
    let argv = List.map (eval_operand frame) args in
    emit_event t frame p argv;
    let v, l =
      if p = "work" then builtin_work t frame argv
      else if p = "print" then builtin_print t frame argv
      else dispatch_prim t frame p argv
    in
    (match d with Some d -> write_reg t frame d v l | None -> ())

and call ?(enclosing = []) t callpath fname argv =
  t.call_depth <- t.call_depth + 1;
  if t.call_depth > max_call_depth then Eval.error "call depth exceeded";
  let f = find_func t.program fname in
  if List.length f.fparams <> List.length argv then
    Eval.error "arity mismatch calling %s: %d formals, %d actuals" fname
      (List.length f.fparams) (List.length argv);
  let fstat = fstatic_of t fname in
  let callpath = callpath @ [ fname ] in
  let frame =
    {
      ffunc = f;
      fstat;
      regs = Hashtbl.create 32;
      rshadow = Hashtbl.create 32;
      ctl = [];
      active_loops = [];
      enclosing;
      callpath;
      cp_key = Obs.callpath_key callpath;
    }
  in
  List.iter2
    (fun p (v, l) ->
      Hashtbl.replace frame.regs p v;
      Hashtbl.replace frame.rshadow p l)
    f.fparams argv;
  let fo = Obs.func_obs t.obs fname in
  fo.Obs.fo_calls <- fo.Obs.fo_calls + 1;
  (match t.im with None -> () | Some ic -> Obs_metrics.incr ic.ic_calls);
  let result =
    if Obs_trace.enabled t.trace then begin
      Obs_trace.span_begin t.trace ~cat:"interp" fname;
      Fun.protect
        ~finally:(fun () -> Obs_trace.span_end t.trace fname)
        (fun () -> exec_from t frame (entry_block f) ~prev:None)
    end
    else exec_from t frame (entry_block f) ~prev:None
  in
  t.call_depth <- t.call_depth - 1;
  result

(* Record loop entry / iteration when arriving at [block] from [prev]. *)
and note_loop_arrival t frame block ~prev =
  match Ir.Loops.find frame.fstat.forest block.label with
  | None -> ()
  | Some loop ->
    let from_inside =
      match prev with
      | Some p -> Ir.Cfg.SSet.mem p loop.Ir.Loops.body
      | None -> false
    in
    let key = (frame.cp_key, block.label) in
    let lo =
      match Hashtbl.find_opt t.obs.Obs.loops key with
      | Some lo -> lo
      | None ->
        let lo =
          {
            Obs.lo_func = frame.ffunc.fname;
            lo_header = block.label;
            lo_callpath = frame.callpath;
            lo_depth = loop.Ir.Loops.depth;
            lo_parent = loop.Ir.Loops.parent;
            lo_iters = 0;
            lo_entries = 0;
            lo_dep = Label.empty;
            lo_enclosing = [];
          }
        in
        Hashtbl.replace t.obs.Obs.loops key lo;
        lo
    in
    (if from_inside then lo.Obs.lo_iters <- lo.Obs.lo_iters + 1
     else lo.Obs.lo_entries <- lo.Obs.lo_entries + 1);
    (match t.im with
    | None -> ()
    | Some ic ->
      if from_inside then Obs_metrics.incr ic.ic_loop_iters
      else Obs_metrics.incr ic.ic_loop_entries);
    if (not from_inside) && Obs_trace.enabled t.trace then
      Obs_trace.instant t.trace ~cat:"loop"
        (frame.ffunc.fname ^ "/" ^ block.label);
    let self = (frame.cp_key, block.label) in
    let ctx =
      List.filter (fun k -> k <> self) frame.active_loops @ frame.enclosing
    in
    List.iter
      (fun k ->
        if not (List.mem k lo.Obs.lo_enclosing) then
          lo.Obs.lo_enclosing <- k :: lo.Obs.lo_enclosing)
      ctx

(* Union [dep] into the recorded dependency of every loop for which
   [block] is an exiting block: the loop-exit taint sink. *)
and note_loop_sink t frame block dep =
  match Hashtbl.find_opt frame.fstat.exit_of block.label with
  | None -> ()
  | Some loops ->
    List.iter
      (fun (l : Ir.Loops.loop) ->
        let key = (frame.cp_key, l.Ir.Loops.header) in
        match Hashtbl.find_opt t.obs.Obs.loops key with
        | Some lo -> lo.Obs.lo_dep <- Label.union t.labels lo.Obs.lo_dep dep
        | None -> ())
      loops

and note_branch t frame block dep taken =
  let key = (frame.cp_key, block.label) in
  let bo =
    match Hashtbl.find_opt t.obs.Obs.branches key with
    | Some bo -> bo
    | None ->
      let bo =
        {
          Obs.br_func = frame.ffunc.fname;
          br_block = block.label;
          br_callpath = frame.callpath;
          br_taken = 0;
          br_not_taken = 0;
          br_dep = Label.empty;
        }
      in
      Hashtbl.replace t.obs.Obs.branches key bo;
      bo
  in
  if taken then bo.Obs.br_taken <- bo.Obs.br_taken + 1
  else bo.Obs.br_not_taken <- bo.Obs.br_not_taken + 1;
  bo.Obs.br_dep <- Label.union t.labels bo.Obs.br_dep dep

and exec_from t frame block ~prev =
  (* Pop control-taint scopes that end at this block. *)
  frame.ctl <- List.filter (fun (join, _) -> join <> block.label) frame.ctl;
  (* Maintain the dynamic loop stack: drop loops whose body we left. *)
  frame.active_loops <-
    List.filter
      (fun (_, header) ->
        match Ir.Loops.find frame.fstat.forest header with
        | Some l -> Ir.Cfg.SSet.mem block.label l.Ir.Loops.body
        | None -> false)
      frame.active_loops;
  note_loop_arrival t frame block ~prev;
  (match Ir.Loops.find frame.fstat.forest block.label with
  | Some _ ->
    let self = (frame.cp_key, block.label) in
    if not (List.mem self frame.active_loops) then
      frame.active_loops <- self :: frame.active_loops
  | None -> ());
  List.iter (exec_instr t frame) block.instrs;
  step t;
  (match t.im with None -> () | Some ic -> Obs_metrics.incr ic.ic_ctl);
  match block.term with
  | Return op ->
    let v, l = eval_operand frame op in
    let l =
      if t.config.control_flow_taint then Label.union t.labels l (ctl_taint t frame)
      else l
    in
    (v, l)
  | Jump l -> exec_from t frame (find_block frame.ffunc l) ~prev:(Some block.label)
  | Branch (c, then_l, else_l) ->
    let v, l = eval_operand frame c in
    let dep =
      if t.config.control_flow_taint then Label.union t.labels l (ctl_taint t frame)
      else l
    in
    let taken = Eval.as_bool v in
    (match t.im with
    | None -> ()
    | Some ic ->
      Obs_metrics.incr ic.ic_branches;
      if not (Label.is_empty dep) then
        Obs_metrics.incr ic.ic_tainted_branches);
    note_branch t frame block dep taken;
    note_loop_sink t frame block dep;
    (if t.config.control_flow_taint && not (Label.is_empty l) then
       let join =
         Option.value ~default:never_join (Ir.Cfg.ipostdom frame.fstat.cfg block.label)
       in
       frame.ctl <- (join, l) :: frame.ctl);
    let target = if taken then then_l else else_l in
    exec_from t frame (find_block frame.ffunc target) ~prev:(Some block.label)

(* -- entry points -------------------------------------------------------- *)

let create ?(config = default_config) ?metrics ?(trace = Obs_trace.disabled)
    program =
  let t =
    {
      program;
      config;
      labels = Label.create ();
      heap = Hashtbl.create 64;
      shadow = Shadow.create ();
      next_alloc = 0;
      steps = 0;
      statics = Hashtbl.create 16;
      obs = Obs.create ();
      prims = Hashtbl.create 16;
      call_depth = 0;
      im = Option.map icounters_of metrics;
      trace;
    }
  in
  t

(** Run the program's entry function with the given positional arguments
    (matched against the entry function's parameters).  Returns the result
    value and its taint label. *)
let run t args =
  let entry = find_func t.program t.program.entry in
  if List.length entry.fparams <> List.length args then
    Eval.error "entry %s expects %d arguments, got %d" entry.fname
      (List.length entry.fparams) (List.length args);
  call t [] t.program.entry (List.map (fun v -> (v, Label.empty)) args)

(** Convenience: run with named integer parameters, in the order declared
    by the entry function. *)
let run_named t bindings =
  let entry = find_func t.program t.program.entry in
  let args =
    List.map
      (fun p ->
        match List.assoc_opt p bindings with
        | Some v -> v
        | None -> Eval.error "missing binding for entry parameter %s" p)
      entry.fparams
  in
  run t args

let observations t = t.obs
let label_table t = t.labels
let steps_executed t = t.steps
let trace_sink t = t.trace
