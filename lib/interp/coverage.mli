(** Coverage-collecting PIR execution: the {!Engine} instantiated with
    {!Coverage_policy}.  [policy_state] exposes the block/edge hit
    tables; see {!Coverage_policy.block_hits} and friends. *)

include Engine.S with type pstate = Coverage_policy.state
