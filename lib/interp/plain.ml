(** Clean PIR execution: the {!Engine} instantiated with
    {!Plain_policy}.  Same programs, same observations and step counts as
    {!Machine}, zero shadow bookkeeping — the replay substrate for the
    measurement layer and the reference side of the taint-vs-plain
    differential oracle. *)

include Engine.Make (Plain_policy)
