(** The DFSan-style taint policy — the paper's instrumented execution.

    Shadow registers per frame, shadow memory per allocation, and the
    control-taint stack scoped by the branch's immediate postdominator
    (the paper's explicit control-flow tainting extension).  Instantiated
    by {!Machine}; the transfer functions below are the exact shadow
    semantics the monolithic interpreter used to inline, in the same
    [Label.union] call order, so label tables (ids, stats) and
    observations are bit-for-bit identical. *)

module Label = Taint.Label
module Shadow = Taint.Shadow

let name = "taint"

type state = {
  labels : Label.table;
  shadow : Shadow.t;
  cf : bool;  (** control-flow tainting enabled *)
}

type label = Label.t

type fstate = {
  rshadow : (string, Label.t) Hashtbl.t;
      (** shadow registers by name (interpreted tier) *)
  slots : Label.t array;
      (** shadow registers by slot (compiled tier); [ [||] ] in frames of
          the interpreted tier *)
  mutable ctl : (string * Label.t) list;
      (** (join label, condition taint); "$never" join is function-scoped *)
}

let create ~control_flow_taint ~hint =
  { labels = Label.create ~hint (); shadow = Shadow.create ~hint ();
    cf = control_flow_taint }

let table s = s.labels

(* Each frame uses either the named or the slotted shadow registers,
   never both; the unused side is a shared empty structure.  The dummy
   table is never written: the compiled tier routes every register
   access through slots. *)
let no_slots : Label.t array = [||]
let no_rshadow : (string, Label.t) Hashtbl.t = Hashtbl.create 1

let frame_state _ =
  { rshadow = Hashtbl.create 32; slots = no_slots; ctl = [] }

let frame_slots _ n =
  { rshadow = no_rshadow; slots = Array.make n Label.empty; ctl = [] }
let clean = Label.empty
let is_clean = Label.is_empty

let read_reg f r =
  Option.value ~default:Label.empty (Hashtbl.find_opt f.rshadow r)

let ctl_taint s f =
  List.fold_left (fun acc (_, l) -> Label.union s.labels acc l) Label.empty f.ctl

(* Fold the active control scopes into [l] when control-flow tainting is
   enabled — the common suffix of register writes, stores, branch
   dependencies and returns. *)
let with_ctl s f l =
  if s.cf then Label.union s.labels l (ctl_taint s f) else l

let write_reg s f r l = Hashtbl.replace f.rshadow r (with_ctl s f l)
let bind_param f p l = Hashtbl.replace f.rshadow p l
let tracks_labels = true
let observes_blocks = true
let read_slot f i = f.slots.(i)
let write_slot s f i l = f.slots.(i) <- with_ctl s f l
let bind_slot f i l = f.slots.(i) <- l
let join2 s a b = Label.union s.labels a b

let on_alloc s ~alloc ~size l =
  Shadow.on_alloc s.shadow ~alloc ~size;
  (* The allocation size's taint flows to the handle. *)
  l

let on_load s ~alloc ~offset ~base ~index =
  let lmem = Shadow.get s.shadow ~alloc ~offset in
  Label.union_all s.labels [ base; index; lmem ]

let on_store s f ~alloc ~offset ~base ~index ~data =
  let l = Label.union_all s.labels [ base; index; data ] in
  Shadow.set s.shadow ~alloc ~offset (with_ctl s f l)

let source s ~param ((v, l) : Ir.Types.value * label) =
  let base = Label.base s.labels param in
  (match v with
  | Ir.Types.VArr h ->
    (* Tainting an array taints every cell. *)
    Shadow.taint_all s.shadow ~alloc:h base
  | _ -> ());
  (v, Label.union s.labels l base)

let export _ l = l
let import _ l = l
let export_args _ args = args
let branch_dep s f l = with_ctl s f l
let return_label s f l = with_ctl s f l
let wants_scope s l = s.cf && not (Label.is_empty l)
let scope_push _ f ~join l = f.ctl <- (join, l) :: f.ctl

(* Pop control-taint scopes that end at this block. *)
let block_enter _ f ~func:_ ~block ~prev:_ =
  f.ctl <- List.filter (fun (join, _) -> join <> block) f.ctl
