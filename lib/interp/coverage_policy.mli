(** The coverage policy: block and edge hit counts over a clean run
    (no shadow state; the only active hook is block entry).  {!Coverage}
    is the engine instantiated with this policy; read the counts back
    through [Coverage.policy_state] and the accessors below. *)

include Engine.POLICY with type label = unit

val block_hits : state -> ((string * string) * int) list
(** Sorted ((function, block), dynamic arrivals) pairs. *)

val edge_hits : state -> ((string * string * string) * int) list
(** Sorted ((function, predecessor, block), traversals) pairs; edges are
    intra-function — calls do not create edges. *)

val blocks_covered : state -> int
val edges_covered : state -> int

val hits_of : state -> func:string -> block:string -> int
(** Arrivals at one block; 0 when never executed. *)
