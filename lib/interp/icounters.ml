(** Pre-interned per-instruction metric counters, shared by the
    interpreted and compiled execution tiers.

    The counter names are defined once, here; [instr_counters] re-exports
    them with their meaning for the documentation and its drift test.
    Held as an [option] on the machine: the disabled path is one field
    load and branch per instruction, with no hashing and no allocation. *)

open Ir.Types

let n_alu = "interp.instr.alu"
let n_mem = "interp.instr.mem"
let n_call = "interp.instr.call"
let n_prim = "interp.instr.prim"
let n_ctl = "interp.instr.ctl"
let n_loads = "interp.mem.loads"
let n_stores = "interp.mem.stores"
let n_allocs = "interp.mem.allocs"
let n_heap_cells = "interp.mem.heap_cells"
let n_branches = "interp.ctl.branches"
let n_tainted_branches = "interp.ctl.tainted_branches"
let n_loop_entries = "interp.loop.entries"
let n_loop_iters = "interp.loop.iterations"
let n_calls = "interp.calls"

let instr_counters =
  [
    (n_alu, "Assign/Binop/Unop instructions executed");
    (n_mem, "Alloc/Load/Store instructions executed");
    (n_call, "Call instructions executed");
    (n_prim, "Prim instructions executed");
    (n_ctl, "block terminators executed");
    (n_loads, "array loads");
    (n_stores, "array stores");
    (n_allocs, "array allocations");
    (n_heap_cells, "heap cells allocated");
    (n_branches, "conditional branches executed");
    (n_tainted_branches, "branches whose condition carried a shadow dependency");
    (n_loop_entries, "loop-header arrivals from outside the loop");
    (n_loop_iters, "loop-header arrivals from inside the body");
    (n_calls, "function invocations");
  ]

type t = {
  ic_alu : Obs_metrics.counter;      (** Assign/Binop/Unop *)
  ic_mem : Obs_metrics.counter;      (** Alloc/Load/Store *)
  ic_call : Obs_metrics.counter;     (** Call instructions *)
  ic_prim : Obs_metrics.counter;     (** Prim instructions *)
  ic_ctl : Obs_metrics.counter;      (** block terminators *)
  ic_loads : Obs_metrics.counter;
  ic_stores : Obs_metrics.counter;
  ic_allocs : Obs_metrics.counter;
  ic_heap_cells : Obs_metrics.counter;
  ic_branches : Obs_metrics.counter;
  ic_tainted_branches : Obs_metrics.counter;
  ic_loop_entries : Obs_metrics.counter;
  ic_loop_iters : Obs_metrics.counter;
  ic_calls : Obs_metrics.counter;    (** function invocations *)
}

let of_metrics m =
  let c = Obs_metrics.counter m in
  {
    ic_alu = c n_alu;
    ic_mem = c n_mem;
    ic_call = c n_call;
    ic_prim = c n_prim;
    ic_ctl = c n_ctl;
    ic_loads = c n_loads;
    ic_stores = c n_stores;
    ic_allocs = c n_allocs;
    ic_heap_cells = c n_heap_cells;
    ic_branches = c n_branches;
    ic_tainted_branches = c n_tainted_branches;
    ic_loop_entries = c n_loop_entries;
    ic_loop_iters = c n_loop_iters;
    ic_calls = c n_calls;
  }

let count_instr ic = function
  | Assign _ | Binop _ | Unop _ -> Obs_metrics.incr ic.ic_alu
  | Alloc _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_allocs
  | Load _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_loads
  | Store _ ->
    Obs_metrics.incr ic.ic_mem;
    Obs_metrics.incr ic.ic_stores
  | Call _ -> Obs_metrics.incr ic.ic_call
  | Prim _ -> Obs_metrics.incr ic.ic_prim
