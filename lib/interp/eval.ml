(** Evaluation of PIR scalar operations, with dynamic kind checking. *)

open Ir.Types

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | VInt i -> i
  | v -> error "expected int, got %s" (value_kind v)

let as_float = function
  | VFloat f -> f
  | v -> error "expected float, got %s" (value_kind v)

let as_bool = function
  | VBool b -> b
  | v -> error "expected bool, got %s" (value_kind v)

let as_arr = function
  | VArr h -> h
  | v -> error "expected array, got %s" (value_kind v)

(* Scalar results are produced at interpreter rates, so booleans and
   small ints are shared pre-boxed values rather than fresh allocations
   (values are immutable, so sharing is unobservable). *)
let vtrue = VBool true
let vfalse = VBool false
let vbool b = if b then vtrue else vfalse
let small_ints = Array.init 1024 (fun i -> VInt (i - 256))

let vint i =
  if i >= -256 && i < 768 then Array.unsafe_get small_ints (i + 256)
  else VInt i

(* Comparisons accept both int and float operands of matching kind. *)
let compare_values op a b =
  let c =
    match (a, b) with
    | VInt x, VInt y -> compare x y
    | VFloat x, VFloat y -> compare x y
    | VBool x, VBool y -> compare x y
    | _ -> error "comparison of %s and %s" (value_kind a) (value_kind b)
  in
  let r =
    match op with
    | Eq -> c = 0 | Ne -> c <> 0
    | Lt -> c < 0 | Le -> c <= 0
    | Gt -> c > 0 | Ge -> c >= 0
    | _ -> assert false
  in
  vbool r

let binop op a b =
  match op with
  | Add -> vint (as_int a + as_int b)
  | Sub -> vint (as_int a - as_int b)
  | Mul -> vint (as_int a * as_int b)
  | Div ->
    let d = as_int b in
    if d = 0 then error "integer division by zero" else vint (as_int a / d)
  | Rem ->
    let d = as_int b in
    if d = 0 then error "integer remainder by zero" else vint (as_int a mod d)
  | Min -> vint (min (as_int a) (as_int b))
  | Max -> vint (max (as_int a) (as_int b))
  | FAdd -> VFloat (as_float a +. as_float b)
  | FSub -> VFloat (as_float a -. as_float b)
  | FMul -> VFloat (as_float a *. as_float b)
  | FDiv -> VFloat (as_float a /. as_float b)
  | FMin -> VFloat (Float.min (as_float a) (as_float b))
  | FMax -> VFloat (Float.max (as_float a) (as_float b))
  | And -> vbool (as_bool a && as_bool b)
  | Or -> vbool (as_bool a || as_bool b)
  | (Eq | Ne | Lt | Le | Gt | Ge) as cmp -> compare_values cmp a b

let unop op a =
  match op with
  | Neg -> vint (-as_int a)
  | FNeg -> VFloat (-.as_float a)
  | Not -> vbool (not (as_bool a))
  | FloatOfInt -> VFloat (float_of_int (as_int a))
  | IntOfFloat -> vint (int_of_float (as_float a))
