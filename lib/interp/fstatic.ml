(** Static per-function facts shared by the interpreted and compiled
    execution tiers: the CFG, the loop forest, and a per-block record of
    everything a control transfer needs (the block itself, loop
    membership, loop exits, and the pre-resolved immediate-postdominator
    join of its terminator).

    This module is the {e single} definition of block resolution.  In
    particular the first-wins rule for duplicate block labels — matching
    [Ir.Types.find_block]'s linear scan — lives only here, so the two
    tiers cannot drift on which block a label denotes. *)

open Ir.Types

(** The join label pushed for control scopes whose branch has no
    immediate postdominator: control taint then persists to function
    exit ("$never" is not a valid block label). *)
let never_join = "$never"

(** Per-block static facts, resolved once when the function is first
    executed or lowered. *)
type binfo = {
  blk : Ir.Types.block;
  bloop : Ir.Loops.loop option;  (** the loop this block heads, if any *)
  bexits : Ir.Loops.loop list;
      (** loops for which this block is an exiting block *)
  bheaders : string list;
      (** headers of this function's loops whose body contains this
          block, so the dynamic loop-stack filter is a membership test
          on a short pre-resolved list *)
  bjoin : string;
      (** the control-scope join of a branch terminating here: the
          block's immediate postdominator, or {!never_join} when only
          the function exit postdominates *)
}

type t = {
  cfg : Ir.Cfg.t;
  forest : Ir.Loops.forest;
  binfos : (string, binfo) Hashtbl.t;
      (** block label -> pre-resolved static facts, so each control
          transfer costs a single lookup instead of a block-list scan
          plus separate loop-forest and exit-table queries *)
  border : binfo array;
      (** the function's blocks in program order with later duplicate
          labels dropped — exactly the blocks reachable through
          label resolution; the lowering pass indexes these *)
  bentry : binfo option;  (** the function's entry block, [None] iff empty *)
}

let of_func (f : Ir.Types.func) =
  let cfg = Ir.Cfg.build f in
  let forest = Ir.Loops.detect cfg in
  let exit_of = Hashtbl.create 8 in
  List.iter
    (fun (l : Ir.Loops.loop) ->
      List.iter
        (fun blk ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt exit_of blk) in
          Hashtbl.replace exit_of blk (l :: cur))
        (Ir.Loops.exiting_blocks l))
    forest.loops;
  let binfo_of (b : Ir.Types.block) =
    {
      blk = b;
      bloop = Ir.Loops.find forest b.label;
      bexits = Option.value ~default:[] (Hashtbl.find_opt exit_of b.label);
      bheaders =
        List.filter_map
          (fun (l : Ir.Loops.loop) ->
            if Ir.Cfg.SSet.mem b.label l.body then Some l.header else None)
          forest.loops;
      bjoin = Option.value ~default:never_join (Ir.Cfg.ipostdom cfg b.label);
    }
  in
  let binfos = Hashtbl.create 16 in
  (* First-wins on duplicate labels, matching [find_block]'s scan. *)
  let border =
    List.filter_map
      (fun (b : Ir.Types.block) ->
        if Hashtbl.mem binfos b.label then None
        else begin
          let bi = binfo_of b in
          Hashtbl.add binfos b.label bi;
          Some bi
        end)
      f.blocks
    |> Array.of_list
  in
  let bentry = if Array.length border = 0 then None else Some border.(0) in
  { cfg; forest; binfos; border; bentry }

(** Resolve [label] in [f]'s static facts.  The fallback keeps
    [find_block]'s original error message for labels outside the
    function (and is only reachable for such labels: every label present
    in the function is in [binfos]). *)
let block_in t (f : Ir.Types.func) label =
  match Hashtbl.find_opt t.binfos label with
  | Some b -> b
  | None ->
    {
      blk = find_block f label;
      bloop = None;
      bexits = [];
      bheaders = [];
      bjoin = never_join;
    }
