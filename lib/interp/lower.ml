(** The lowering pass: one PIR function to its slot-resolved lowered
    form, compiled once at first call and executed by {!Compiled}.

    Lowering resolves every name the interpreter would look up at
    runtime:

    - register names become dense integer {e slots} (parameters first,
      then every other register in first-occurrence order), so frames
      are plain arrays instead of string-keyed hash tables;
    - branch and jump targets become block {e indices} into the
      function's deduplicated block array, with the from-inside-the-loop
      test of loop accounting precomputed per edge;
    - callees are resolved to function indices against the program's
      first-wins function table;
    - primitives are classified once ([work] / [print] / taint source /
      registry dispatch).

    Resolution failures are {e lazy}: an unknown callee, block label or
    arity mismatch lowers to a trap carrying the exact exception the
    interpreter would raise, thrown only if that instruction or edge
    actually executes.  A program that never reaches the bad site
    behaves identically under both tiers, and error messages are
    byte-identical when it does. *)

open Ir.Types

(** A lowered operand: a frame slot or a pre-built constant value
    (integers and booleans interned through {!Eval.vint}/{!Eval.vbool};
    values are immutable, so the sharing is unobservable). *)
type lop = LSlot of int | LConst of value

(** The sentinel stored in unbound slots, recognized by physical
    equality.  No program value can alias it: array handles are
    non-negative and every other [VArr] allocation is distinct. *)
let vunset : value = VArr min_int

(** A lowered control-transfer target: a block index plus the
    precomputed does-this-edge-come-from-inside-the-target's-loop flag,
    or a lazy trap for labels the function does not define. *)
type btarget = BGo of int * bool | BTrap of exn

(** A lowered callee: a function index, or a lazy trap (unknown function
    or arity mismatch, with the interpreter's exact message). *)
type callee = CIdx of int | CTrap of exn

(** Primitive classification, mirroring the interpreter's dispatch
    precedence: [work] and [print] builtins, then [taint:<param>]
    sources, then the runtime registry ([PDyn] keeps the name and looks
    the registry up at execution time, because hosts may register
    primitives after compilation). *)
type prim_kind = PWork | PPrint | PSource of string | PDyn

(** Lowered instructions.  Destination slots use [-1] for "no
    destination" (calls and prims in statement position).  The final
    [int] of [LCall] is the call site's dense index within the function
    (see {!lfunc.lnsites}): the executing tier caches per-callpath data
    (resolved callpath keys, observation records) per site. *)
type linstr =
  | LAssign of int * lop
  | LBinop of int * Ir.Types.binop * lop * lop
  | LUnop of int * Ir.Types.unop * lop
  | LAlloc of int * lop
  | LLoad of int * lop * lop
  | LStore of lop * lop * lop
  | LCall of int * callee * lop array * int
  | LPrim of int * prim_kind * string * lop array

type lterm = LReturn of lop | LJump of btarget | LBranch of lop * btarget * btarget

type lblock = {
  lbi : Fstatic.binfo;
      (** the shared static facts of this block: label, loop membership,
          loop exits, control-scope join *)
  linstrs : linstr array;
  lterm : lterm;
}

type lfunc = {
  lf : Ir.Types.func;  (** the source function (name, parameters) *)
  lnslots : int;
  lsnames : string array;
      (** slot -> register name, for the unset-register diagnostic *)
  lblocks : lblock array;
      (** the function's blocks in program order, duplicate labels
          dropped (first wins, as in {!Fstatic}); entry is index 0 *)
  lnsites : int;  (** number of call sites (dense [LCall] indices) *)
  lstatic : Fstatic.t;
}

(** The instruction layout, one row per lowered opcode — the single
    definition behind the "Lowered IR" table of doc/IR.md (kept in sync
    by a drift test, like {!Engine.instr_counters}). *)
let lowered_ops =
  [
    ("LAssign", "dst slot := operand");
    ("LBinop", "dst slot := binop(operand, operand)");
    ("LUnop", "dst slot := unop(operand)");
    ("LAlloc", "dst slot := fresh array handle, size from operand");
    ("LLoad", "dst slot := heap cell at (base operand, index operand)");
    ("LStore", "heap cell at (base operand, index operand) := operand");
    ("LCall", "invoke a pre-resolved function index, result into dst slot");
    ("LPrim", "invoke a pre-classified primitive, result into dst slot");
    ("LReturn", "return operand to the caller");
    ("LJump", "transfer to a pre-resolved block index");
    ("LBranch", "conditional transfer between two pre-resolved block indices");
  ]

(* -- slot allocation ------------------------------------------------------- *)

type slots = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string list;  (** reversed *)
  mutable count : int;
}

let slot_of sl r =
  match Hashtbl.find_opt sl.by_name r with
  | Some i -> i
  | None ->
    let i = sl.count in
    Hashtbl.add sl.by_name r i;
    sl.names <- r :: sl.names;
    sl.count <- i + 1;
    i

let lop_of sl = function
  | Reg r -> LSlot (slot_of sl r)
  | Int i -> LConst (Eval.vint i)
  | Float f -> LConst (VFloat f)
  | Bool b -> LConst (Eval.vbool b)
  | Unit -> LConst VUnit

let dst_of sl = function Some r -> slot_of sl r | None -> -1

(* -- lowering -------------------------------------------------------------- *)

let unknown_block_trap fname label =
  BTrap (Ir_error (Printf.sprintf "unknown block %s in %s" label fname))

let lower_callee ~resolve fname args_len =
  match resolve fname with
  | None -> CTrap (Ir_error (Printf.sprintf "unknown function %s" fname))
  | Some (idx, (f : Ir.Types.func)) ->
    let formals = List.length f.fparams in
    if formals <> args_len then
      CTrap
        (Eval.Runtime_error
           (Printf.sprintf "arity mismatch calling %s: %d formals, %d actuals"
              fname formals args_len))
    else CIdx idx

let lower_prim name =
  if name = "work" then PWork
  else if name = "print" then PPrint
  else
    match Taint.Label.source_prim name with
    | Some param -> PSource param
    | None -> PDyn

let lower_instr ~resolve sl sites = function
  | Assign (d, a) ->
    let a = lop_of sl a in
    LAssign (slot_of sl d, a)
  | Binop (d, op, a, b) ->
    let a = lop_of sl a in
    let b = lop_of sl b in
    LBinop (slot_of sl d, op, a, b)
  | Unop (d, op, a) ->
    let a = lop_of sl a in
    LUnop (slot_of sl d, op, a)
  | Alloc (d, n) ->
    let n = lop_of sl n in
    LAlloc (slot_of sl d, n)
  | Load (d, base, idx) ->
    let base = lop_of sl base in
    let idx = lop_of sl idx in
    LLoad (slot_of sl d, base, idx)
  | Store (base, idx, x) ->
    let base = lop_of sl base in
    let idx = lop_of sl idx in
    let x = lop_of sl x in
    LStore (base, idx, x)
  | Call (d, fname, args) ->
    let args = Array.of_list (List.map (lop_of sl) args) in
    let site = !sites in
    incr sites;
    LCall
      (dst_of sl d, lower_callee ~resolve fname (Array.length args), args, site)
  | Prim (d, p, args) ->
    let args = Array.of_list (List.map (lop_of sl) args) in
    LPrim (dst_of sl d, lower_prim p, p, args)

(** Lower one function against [static] (its shared block-resolution
    facts).  [resolve] maps a callee name to its index in the program's
    first-wins function table together with its definition (for the
    arity check); it is total over defined functions and [None]
    otherwise. *)
let func ~resolve (f : Ir.Types.func) (static : Fstatic.t) =
  let sl = { by_name = Hashtbl.create 32; names = []; count = 0 } in
  let sites = ref 0 in
  (* Parameters occupy slots [0 .. n-1], in declaration order. *)
  List.iter (fun p -> ignore (slot_of sl p)) f.fparams;
  let kept = static.Fstatic.border in
  let index_of = Hashtbl.create (Array.length kept * 2) in
  Array.iteri
    (fun i (bi : Fstatic.binfo) ->
      Hashtbl.add index_of bi.Fstatic.blk.label i)
    kept;
  (* Resolve an edge from [src] to label [l]: block index plus the
     static from-inside test of the target's loop (the target's loop
     body containing the source block). *)
  let target_of (src : Ir.Types.block) l =
    match Hashtbl.find_opt index_of l with
    | None -> unknown_block_trap f.fname l
    | Some i ->
      let from_inside =
        match kept.(i).Fstatic.bloop with
        | Some loop -> Ir.Cfg.SSet.mem src.label loop.Ir.Loops.body
        | None -> false
      in
      BGo (i, from_inside)
  in
  let lower_block (bi : Fstatic.binfo) =
    let b = bi.Fstatic.blk in
    let linstrs =
      Array.of_list (List.map (lower_instr ~resolve sl sites) b.instrs)
    in
    let lterm =
      match b.term with
      | Return op -> LReturn (lop_of sl op)
      | Jump l -> LJump (target_of b l)
      | Branch (c, then_l, else_l) ->
        let c = lop_of sl c in
        LBranch (c, target_of b then_l, target_of b else_l)
    in
    { lbi = bi; linstrs; lterm }
  in
  let lblocks = Array.map lower_block kept in
  {
    lf = f;
    lnslots = sl.count;
    lsnames = Array.of_list (List.rev sl.names);
    lblocks;
    lnsites = !sites;
    lstatic = static;
  }
