(** The no-analysis policy: clean execution with zero shadow bookkeeping.

    [label] is {!Taint.Label.t} but every produced label is
    [Label.empty]: no unions, no shadow tables, no control stack, and
    [export_args] is the identity (no per-prim copying).  This is the
    "many clean measurement runs" side of the paper's economy: the same
    programs, observations and step counts as {!Taint_policy}, minus all
    taint costs.  The private label table exists only so exported
    observation labels (always empty) have a home. *)

module Label = Taint.Label

let name = "plain"

(* Every hook below is a no-op producing [Label.empty]; the compiled
   tier specializes both away. *)
let tracks_labels = false
let observes_blocks = false

type state = { labels : Label.table }
type label = Label.t
type fstate = unit

let create ~control_flow_taint:_ ~hint:_ = { labels = Label.create () }
let table s = s.labels
let frame_state _ = ()
let clean = Label.empty
let is_clean _ = true
let read_reg () _ = Label.empty
let write_reg _ () _ _ = ()
let bind_param () _ _ = ()
let frame_slots _ _ = ()
let read_slot () _ = Label.empty
let write_slot _ () _ _ = ()
let bind_slot () _ _ = ()
let join2 _ _ _ = Label.empty
let on_alloc _ ~alloc:_ ~size:_ _ = Label.empty
let on_load _ ~alloc:_ ~offset:_ ~base:_ ~index:_ = Label.empty
let on_store _ () ~alloc:_ ~offset:_ ~base:_ ~index:_ ~data:_ = ()
let source _ ~param:_ (vl : Ir.Types.value * label) = vl

(* Every producer above yields [empty], so identity export is safe. *)
let export _ l = l
let import _ _ = Label.empty
let export_args _ args = args
let branch_dep _ () _ = Label.empty
let return_label _ () _ = Label.empty
let wants_scope _ _ = false
let scope_push _ () ~join:_ _ = ()
let block_enter _ () ~func:_ ~block:_ ~prev:_ = ()
