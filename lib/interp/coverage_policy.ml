(** The coverage policy: block and edge hit counts over a clean run.

    Like {!Plain_policy} there is no shadow state at all ([label] is
    [unit]); the only hook doing work is [block_enter], which bumps the
    (function, block) hit count and — when the arrival came from a
    predecessor in the same frame — the (function, prev, block) edge
    count.  Feeds the fuzzing corpus heuristics and the [coverage] CLI
    subcommand. *)

let name = "coverage"

(* No shadow labels at all, but [block_enter] is the whole point. *)
let tracks_labels = false
let observes_blocks = true

type state = {
  labels : Taint.Label.table;
  blocks : (string * string, int ref) Hashtbl.t;
      (** (function, block) -> dynamic arrivals *)
  edges : (string * string * string, int ref) Hashtbl.t;
      (** (function, predecessor, block) -> dynamic traversals *)
}

type label = unit
type fstate = unit

let create ~control_flow_taint:_ ~hint =
  {
    labels = Taint.Label.create ();
    blocks = Hashtbl.create (max 64 hint);
    edges = Hashtbl.create (max 64 hint);
  }

let table s = s.labels
let frame_state _ = ()
let clean = ()
let is_clean () = true
let read_reg () _ = ()
let write_reg _ () _ () = ()
let bind_param () _ () = ()
let frame_slots _ _ = ()
let read_slot () _ = ()
let write_slot _ () _ () = ()
let bind_slot () _ () = ()
let join2 _ () () = ()
let on_alloc _ ~alloc:_ ~size:_ () = ()
let on_load _ ~alloc:_ ~offset:_ ~base:() ~index:() = ()
let on_store _ () ~alloc:_ ~offset:_ ~base:() ~index:() ~data:() = ()
let source _ ~param:_ (vl : Ir.Types.value * label) = vl
let export _ () = Taint.Label.empty
let import _ _ = ()
let export_args _ args = List.map (fun (v, ()) -> (v, Taint.Label.empty)) args
let branch_dep _ () () = ()
let return_label _ () () = ()
let wants_scope _ () = false
let scope_push _ () ~join:_ () = ()

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let block_enter s () ~func ~block ~prev =
  bump s.blocks (func, block);
  match prev with
  | Some p -> bump s.edges (func, p, block)
  | None -> ()

(* -- accessors (beyond the POLICY signature) ------------------------------ *)

let block_hits s =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.blocks []
  |> List.sort compare

let edge_hits s =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.edges []
  |> List.sort compare

let blocks_covered s = Hashtbl.length s.blocks
let edges_covered s = Hashtbl.length s.edges

let hits_of s ~func ~block =
  match Hashtbl.find_opt s.blocks (func, block) with
  | Some r -> !r
  | None -> 0
