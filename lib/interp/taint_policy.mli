(** The DFSan-style taint policy (paper Section 5.2): shadow registers,
    shadow memory, and postdominator-scoped control-flow taint.
    {!Machine} is the engine instantiated with this policy; the transfer
    functions preserve the historical monolithic interpreter's
    [Label.union] call order exactly, so label tables and observations
    are bit-for-bit identical to it. *)

include Engine.POLICY with type label = Taint.Label.t
