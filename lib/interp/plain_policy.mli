(** The no-analysis policy: clean execution with zero shadow bookkeeping
    (every transfer function is a no-op producing {!Taint.Label.empty}).
    {!Plain} is the engine instantiated with this policy — the fast
    replay substrate for {!Measure} and the reference side of the
    taint-vs-plain differential fuzzing oracle. *)

include Engine.POLICY with type label = Taint.Label.t
