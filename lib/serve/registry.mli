(** The applications the daemon serves models for: each simulated app
    with its printed program text (the code component of the catalog
    key) and the default campaign grid — the same grid the [campaign]
    CLI subcommand measures. *)

type app = {
  r_name : string;
  r_app : Measure.Spec.app;
  r_program_text : string Lazy.t;
  r_grid : (string * float list) list;
}

val apps : app list
val names : string list
val find : string -> app option

val machine : Mpi_sim.Machine.t
(** The simulated cluster every served fit measures on. *)

val program_text : app -> string
