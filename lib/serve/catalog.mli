(** The content-addressed model catalog: fitted performance models keyed
    by a stable hash of the campaign identity, memoized in memory (an
    LRU of decoded entries) over an on-disk JSON-lines index, so a
    restarted daemon answers from disk instead of refitting.

    The {e answer} contract: an entry restored from the catalog — from
    the in-memory LRU, from the disk index, or after a full process
    restart — is bit-identical to the entry a cold fit produces: the
    model expression and coefficients, the fit-quality numbers, and the
    campaign counters all survive the round trip exactly (floats are
    serialized with ["%.17g"] via {!Measure.Jsonio}).  The
    [serve-identity] fuzz oracle and the [serve] bench enforce this. *)

(** {1 Keys} *)

val key :
  app_name:string ->
  program_text:string ->
  design:Measure.Experiment.design ->
  plan:Measure.Fault.plan ->
  retry:Measure.Campaign.retry ->
  string
(** The catalog key: an MD5 hex digest over the program text digest plus
    {!Measure.Campaign.header_line} — the same identity line that pins a
    checkpoint journal to its campaign, so anything that would forbid a
    journal resume (app, grid, reps, mode, noise sigma and seed, fault
    plan, retry policy) also changes the key. *)

(** {1 Entries} *)

type entry = {
  e_key : string;
  e_app : string;
  e_model : Model.Expr.model;
  e_error : float;  (** leave-one-out cross-validated SMAPE, percent *)
  e_rss : float;
  e_hypotheses : int;
  e_rejected : int;  (** repetitions rejected by the robust fit *)
  e_runs : int;  (** completed measurement runs behind the fit *)
  e_core_hours : float;  (** simulated core-hours of the completed runs *)
  e_attempts : int;
  e_retries : int;
  e_abandoned : int;
  e_faults : (string * int) list;  (** per {!Measure.Fault.kind_names} *)
  e_wasted_core_hours : float;
  e_backoff_core_hours : float;
}

val total_core_hours : entry -> float
(** Everything the fit's campaign burned: completed runs plus wasted
    attempts plus backoff — the admission-budget charge. *)

val entry_to_line : entry -> string
(** One JSON object on one line; floats printed exactly (["%.17g"]). *)

val entry_of_line : string -> (entry, string) result
(** Exact inverse of {!entry_to_line}: [entry_of_line (entry_to_line e)]
    returns [e] bit-for-bit. *)

val fit :
  app:Measure.Spec.app ->
  machine:Mpi_sim.Machine.t ->
  design:Measure.Experiment.design ->
  plan:Measure.Fault.plan ->
  retry:Measure.Campaign.retry ->
  key:string ->
  unit ->
  entry
(** The cold path a catalog miss pays: execute the fault-injected
    campaign and fit an outlier-robust total-runtime model over the grid
    axes with more than one value (exactly what the [campaign] CLI
    fits).  Deliberately serial — the daemon parallelizes {e across}
    concurrent fits on its domain pool, and {!Par.Pool.map} must not be
    entered reentrantly.
    @raise Invalid_argument on an invalid retry policy or a dataset the
    search cannot fit (e.g. every coordinate abandoned). *)

(** {1 The store} *)

type t

val open_ :
  ?metrics:Obs_metrics.t ->
  ?events:Obs_events.sink ->
  ?capacity:int ->
  dir:string ->
  unit ->
  (t, string) result
(** Open (or create) the catalog index [dir/catalog.jsonl].  [dir] must
    already exist — a missing directory is an [Error] naming the path,
    never a silently created one.  Existing entries are indexed by key
    (raw lines; decoded lazily on first {!find}), so a warm restart
    serves every previously fitted model without refitting.  A torn
    trailing line — the partial flush of a killed writer — is skipped;
    corruption anywhere earlier is an [Error] naming the line.
    [capacity] bounds the in-memory LRU of {e decoded} entries (default
    {!default_capacity}); the disk index is never evicted.  [metrics]
    registers the [serve.evictions] counter; [events] receives a
    [serve.evict] event per LRU drop. *)

val default_capacity : int

val close : t -> unit
(** Flush and close the index append handle.  Safe to call twice. *)

val index_path : t -> string

val length : t -> int
(** Persisted entries (disk index size). *)

val resident : t -> int
(** Decoded entries currently held by the in-memory LRU. *)

val find : t -> string -> entry option
(** Look a key up: the LRU first, then the disk index (decoding and
    promoting into the LRU).  [None] means a cold fit is required. *)

val mem : t -> string -> bool
(** Key present (memory or disk) without promoting it. *)

val insert : t -> entry -> unit
(** Memoize a fitted entry: append one line to the disk index (flushed,
    so a killed daemon loses at most the in-flight entry) and promote it
    into the LRU, evicting the least-recently-used decoded entry beyond
    capacity. *)

val invalidate : t -> key:string -> bool
(** Remove one entry from memory and disk (the index is atomically
    rewritten).  Returns whether the key was present. *)

val invalidate_app : t -> app:string -> int
(** Remove every entry fitted for the named app; returns how many. *)
