(* The content-addressed model catalog.  An entry is the full answer a
   cold fit produces — model, fit quality, campaign counters — written
   as one JSON line via Measure.Jsonio (exact float round-trip), so a
   cache hit from memory, disk, or a restarted process is bit-identical
   to refitting. *)

module J = Measure.Jsonio

let default_capacity = 64

(* -- keys ---------------------------------------------------------- *)

let key ~app_name ~program_text ~design ~plan ~retry =
  let header = Measure.Campaign.header_line ~app_name ~plan ~retry design in
  Digest.to_hex
    (Digest.string (Digest.to_hex (Digest.string program_text) ^ "\n" ^ header))

(* -- entries ------------------------------------------------------- *)

type entry = {
  e_key : string;
  e_app : string;
  e_model : Model.Expr.model;
  e_error : float;
  e_rss : float;
  e_hypotheses : int;
  e_rejected : int;
  e_runs : int;
  e_core_hours : float;
  e_attempts : int;
  e_retries : int;
  e_abandoned : int;
  e_faults : (string * int) list;
  e_wasted_core_hours : float;
  e_backoff_core_hours : float;
}

let total_core_hours e =
  e.e_core_hours +. e.e_wasted_core_hours +. e.e_backoff_core_hours

let model_to_json (m : Model.Expr.model) =
  J.Obj
    [
      ("const", J.Float m.const);
      ( "terms",
        J.List
          (List.map
             (fun (t : Model.Expr.compound_term) ->
               J.Obj
                 [
                   ("coeff", J.Float t.coeff);
                   ( "factors",
                     J.List
                       (List.map
                          (fun (p, (s : Model.Expr.simple_term)) ->
                            J.Obj
                              [
                                ("param", J.Str p);
                                ("expo", J.Float s.expo);
                                ("logexp", J.Int s.logexp);
                              ])
                          t.factors) );
                 ])
             m.terms) );
    ]

let entry_to_line e =
  J.to_string
    (J.Obj
       [
         ("key", J.Str e.e_key);
         ("app", J.Str e.e_app);
         ("model", model_to_json e.e_model);
         ("error", J.Float e.e_error);
         ("rss", J.Float e.e_rss);
         ("hypotheses", J.Int e.e_hypotheses);
         ("rejected", J.Int e.e_rejected);
         ("runs", J.Int e.e_runs);
         ("core_hours", J.Float e.e_core_hours);
         ("attempts", J.Int e.e_attempts);
         ("retries", J.Int e.e_retries);
         ("abandoned", J.Int e.e_abandoned);
         ("faults", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) e.e_faults));
         ("wasted_core_hours", J.Float e.e_wasted_core_hours);
         ("backoff_core_hours", J.Float e.e_backoff_core_hours);
       ])

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let float_field name j =
  let* v = field name j in
  match J.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let int_field name j =
  let* v = field name j in
  match J.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let list_field name j =
  let* v = field name j in
  match J.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S: expected a list" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let factor_of_json j =
  let* p = str_field "param" j in
  let* expo = float_field "expo" j in
  let* logexp = int_field "logexp" j in
  Ok (p, { Model.Expr.expo; logexp })

let term_of_json j =
  let* coeff = float_field "coeff" j in
  let* fs = list_field "factors" j in
  let* factors = map_result factor_of_json fs in
  Ok { Model.Expr.coeff; factors }

let model_of_json j =
  let* const = float_field "const" j in
  let* ts = list_field "terms" j in
  let* terms = map_result term_of_json ts in
  Ok { Model.Expr.const; terms }

let faults_of_json j =
  match j with
  | J.Obj pairs ->
      map_result
        (fun (k, v) ->
          match J.to_int v with
          | Some n -> Ok (k, n)
          | None -> Error (Printf.sprintf "fault %S: expected an integer" k))
        pairs
  | _ -> Error "field \"faults\": expected an object"

let entry_of_line line =
  let* j = J.parse line in
  let* e_key = str_field "key" j in
  let* e_app = str_field "app" j in
  let* m = field "model" j in
  let* e_model = model_of_json m in
  let* e_error = float_field "error" j in
  let* e_rss = float_field "rss" j in
  let* e_hypotheses = int_field "hypotheses" j in
  let* e_rejected = int_field "rejected" j in
  let* e_runs = int_field "runs" j in
  let* e_core_hours = float_field "core_hours" j in
  let* e_attempts = int_field "attempts" j in
  let* e_retries = int_field "retries" j in
  let* e_abandoned = int_field "abandoned" j in
  let* f = field "faults" j in
  let* e_faults = faults_of_json f in
  let* e_wasted_core_hours = float_field "wasted_core_hours" j in
  let* e_backoff_core_hours = float_field "backoff_core_hours" j in
  Ok
    {
      e_key;
      e_app;
      e_model;
      e_error;
      e_rss;
      e_hypotheses;
      e_rejected;
      e_runs;
      e_core_hours;
      e_attempts;
      e_retries;
      e_abandoned;
      e_faults;
      e_wasted_core_hours;
      e_backoff_core_hours;
    }

(* -- the cold path ------------------------------------------------- *)

let fit ~app ~machine ~design ~plan ~retry ~key () =
  let report = Measure.Campaign.run ~plan ~retry app machine design in
  let params =
    List.filter_map
      (fun (p, vs) -> if List.length vs > 1 then Some p else None)
      design.Measure.Experiment.grid
  in
  let dataset = Measure.Experiment.total_dataset report.cp_runs ~params in
  let result, rejected = Model.Search.multi_robust dataset in
  {
    e_key = key;
    e_app = app.Measure.Spec.aname;
    e_model = result.model;
    e_error = result.error;
    e_rss = result.rss;
    e_hypotheses = result.hypotheses_tried;
    e_rejected = rejected;
    e_runs = List.length report.cp_runs;
    e_core_hours = Measure.Experiment.core_hours report.cp_runs;
    e_attempts = report.cp_attempts;
    e_retries = report.cp_retries;
    e_abandoned = report.cp_abandoned;
    e_faults = report.cp_faults;
    e_wasted_core_hours = report.cp_wasted_core_hours;
    e_backoff_core_hours = report.cp_backoff_core_hours;
  }

(* -- the store ----------------------------------------------------- *)

type t = {
  path : string;
  capacity : int;
  evictions : Obs_metrics.counter option;
  events : Obs_events.sink;
  disk : (string, string) Hashtbl.t; (* key -> raw index line *)
  apps : (string, string) Hashtbl.t; (* key -> app name *)
  mutable order : string list; (* keys, oldest first; rewrite order *)
  mutable lru : (string * entry) list; (* decoded entries, MRU first *)
  mutable out : out_channel option;
}

let index_path t = t.path
let length t = Hashtbl.length t.disk
let resident t = List.length t.lru

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

exception Corrupt of string

let load_index t =
  if Sys.file_exists t.path then begin
    let lines = Array.of_list (read_lines t.path) in
    let last_nonempty = ref (-1) in
    Array.iteri
      (fun i l -> if String.trim l <> "" then last_nonempty := i)
      lines;
    Array.iteri
      (fun i line ->
        if String.trim line <> "" then
          match entry_of_line line with
          | Ok e ->
              if not (Hashtbl.mem t.disk e.e_key) then
                t.order <- e.e_key :: t.order;
              Hashtbl.replace t.disk e.e_key line;
              Hashtbl.replace t.apps e.e_key e.e_app
          | Error msg ->
              (* the partial flush of a killed writer is tolerated;
                 anything earlier is corruption *)
              if i <> !last_nonempty then
                raise
                  (Corrupt (Printf.sprintf "%s:%d: %s" t.path (i + 1) msg)))
      lines;
    t.order <- List.rev t.order
  end

let open_ ?metrics ?(events = Obs_events.disabled)
    ?(capacity = default_capacity) ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "catalog directory %s does not exist" dir)
  else begin
    let t =
      {
        path = Filename.concat dir "catalog.jsonl";
        capacity = max 1 capacity;
        evictions =
          Option.map (fun m -> Obs_metrics.counter m "serve.evictions") metrics;
        events;
        disk = Hashtbl.create 64;
        apps = Hashtbl.create 64;
        order = [];
        lru = [];
        out = None;
      }
    in
    match load_index t with
    | () ->
        t.out <-
          Some
            (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path);
        Ok t
    | exception Corrupt msg -> Error msg
    | exception Sys_error msg -> Error msg
  end

let close t =
  match t.out with
  | None -> ()
  | Some oc ->
      t.out <- None;
      flush oc;
      close_out_noerr oc

let promote t e =
  let rest = List.filter (fun (k, _) -> k <> e.e_key) t.lru in
  t.lru <- (e.e_key, e) :: rest;
  if List.length t.lru > t.capacity then begin
    match List.rev t.lru with
    | (victim, _) :: kept_rev ->
        t.lru <- List.rev kept_rev;
        Option.iter Obs_metrics.incr t.evictions;
        Obs_events.emit t.events ~component:"serve"
          ~fields:[ ("key", Obs_events.Str victim) ]
          "serve.evict"
    | [] -> ()
  end

let find t key =
  match List.assoc_opt key t.lru with
  | Some e ->
      promote t e;
      Some e
  | None -> (
      match Hashtbl.find_opt t.disk key with
      | None -> None
      | Some line -> (
          match entry_of_line line with
          | Ok e ->
              promote t e;
              Some e
          | Error _ -> None))

let mem t key = List.mem_assoc key t.lru || Hashtbl.mem t.disk key

let insert t e =
  let line = entry_to_line e in
  (match t.out with
  | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | None -> ());
  if not (Hashtbl.mem t.disk e.e_key) then t.order <- t.order @ [ e.e_key ];
  Hashtbl.replace t.disk e.e_key line;
  Hashtbl.replace t.apps e.e_key e.e_app;
  promote t e

let rewrite t =
  close t;
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.disk k with
      | Some line ->
          output_string oc line;
          output_char oc '\n'
      | None -> ())
    t.order;
  close_out oc;
  Sys.rename tmp t.path;
  t.out <-
    Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path)

let drop t key =
  Hashtbl.remove t.disk key;
  Hashtbl.remove t.apps key;
  t.order <- List.filter (fun k -> k <> key) t.order;
  t.lru <- List.filter (fun (k, _) -> k <> key) t.lru

let invalidate t ~key =
  if Hashtbl.mem t.disk key then begin
    drop t key;
    rewrite t;
    true
  end
  else false

let invalidate_app t ~app =
  let victims =
    List.filter
      (fun k -> Hashtbl.find_opt t.apps k = Some app)
      t.order
  in
  List.iter (drop t) victims;
  if victims <> [] then rewrite t;
  List.length victims
