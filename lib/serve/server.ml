module J = Measure.Jsonio

let counters =
  [
    ("serve.requests", "request lines handled, all ops (counter)");
    ("serve.hits", "predict/fit answers served from the catalog (counter)");
    ("serve.misses", "predict/fit answers that paid a cold fit (counter)");
    ("serve.evictions", "decoded entries dropped by the catalog LRU (counter)");
    ("serve.rejected", "cold fits refused by the core-hour budget (counter)");
    ("serve.invalidated", "catalog entries removed by invalidate (counter)");
    ("serve.batches", "request batches drained (counter)");
    ("serve.queue_depth", "largest batch drained so far (gauge)");
    ("serve.core_hours", "simulated core-hours charged by admitted fits \
                          (gauge)");
    ("serve.batch_size", "requests per drained batch (histogram)");
    ("serve.latency_s", "per-request turnaround seconds (histogram; \
                         p50/p95/p99 in stats)");
  ]

let event_names =
  [
    ("serve.admit", "a cold fit admitted under the core-hour budget");
    ("serve.fit", "a cold fit completed and was memoized");
    ("serve.evict", "the catalog LRU dropped a decoded entry");
    ("serve.reject", "a cold fit refused: the core-hour budget is spent");
    ("serve.invalidate", "an invalidate request removed catalog entries");
  ]

type t = {
  catalog : Catalog.t;
  pool : Par.Pool.t option;
  metrics : Obs_metrics.t;
  events : Obs_events.sink;
  max_core_hours : float option;
  mutable spent : float;
  c_requests : Obs_metrics.counter;
  c_hits : Obs_metrics.counter;
  c_misses : Obs_metrics.counter;
  c_rejected : Obs_metrics.counter;
  c_invalidated : Obs_metrics.counter;
  c_batches : Obs_metrics.counter;
  g_queue : Obs_metrics.gauge;
  g_core : Obs_metrics.gauge;
  h_batch : Obs_metrics.histogram;
  h_latency : Obs_metrics.histogram;
}

let latency_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let batch_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]

let create ?pool ?metrics ?(events = Obs_events.disabled) ?max_core_hours
    ~catalog () =
  let metrics =
    match metrics with Some m -> m | None -> Obs_metrics.create ()
  in
  {
    catalog;
    pool;
    metrics;
    events;
    max_core_hours;
    spent = 0.;
    c_requests = Obs_metrics.counter metrics "serve.requests";
    c_hits = Obs_metrics.counter metrics "serve.hits";
    c_misses = Obs_metrics.counter metrics "serve.misses";
    c_rejected = Obs_metrics.counter metrics "serve.rejected";
    c_invalidated = Obs_metrics.counter metrics "serve.invalidated";
    c_batches = Obs_metrics.counter metrics "serve.batches";
    g_queue = Obs_metrics.gauge metrics "serve.queue_depth";
    g_core = Obs_metrics.gauge metrics "serve.core_hours";
    h_batch = Obs_metrics.histogram metrics ~bounds:batch_bounds
        "serve.batch_size";
    h_latency = Obs_metrics.histogram metrics ~bounds:latency_bounds
        "serve.latency_s";
  }

let metrics t = t.metrics
let spent_core_hours t = t.spent

(* -- request resolution -------------------------------------------- *)

type resolved = {
  rs_app : Registry.app;
  rs_design : Measure.Experiment.design;
  rs_plan : Measure.Fault.plan;
  rs_retry : Measure.Campaign.retry;
  rs_key : string;
}

let resolve (spec : Protocol.fit_spec) =
  match Registry.find spec.fs_app with
  | None ->
      Error
        (Printf.sprintf "unknown app %S (known: %s)" spec.fs_app
           (String.concat ", " Registry.names))
  | Some r -> (
      match Measure.Fault.of_spec spec.fs_faults with
      | Error msg -> Error (Printf.sprintf "faults: %s" msg)
      | Ok plan ->
          let grid = Option.value ~default:r.Registry.r_grid spec.fs_grid in
          let design =
            {
              Measure.Experiment.grid;
              reps = spec.fs_reps;
              mode = Measure.Instrument.Full;
              sigma = spec.fs_sigma;
              seed = spec.fs_seed;
            }
          in
          let retry =
            {
              Measure.Campaign.default_retry with
              Measure.Campaign.rt_max_attempts = spec.fs_retries;
              rt_backoff_s = spec.fs_backoff;
            }
          in
          let key =
            Catalog.key ~app_name:r.Registry.r_app.Measure.Spec.aname
              ~program_text:(Registry.program_text r)
              ~design ~plan ~retry
          in
          Ok { rs_app = r; rs_design = design; rs_plan = plan;
               rs_retry = retry; rs_key = key })

(* -- stats --------------------------------------------------------- *)

let stats_response t =
  let snap = Obs_metrics.snapshot t.metrics in
  let c name =
    Option.value ~default:0 (Obs_metrics.find_counter snap name)
  in
  let hits = c "serve.hits" and misses = c "serve.misses" in
  let lat = List.assoc_opt "serve.latency_s" snap.Obs_metrics.histograms in
  let q p =
    match lat with
    | Some hs when hs.Obs_metrics.hs_count > 0 ->
        J.Float (Obs_metrics.quantile hs p)
    | _ -> J.Null
  in
  Protocol.stats_line
    [
      ("requests", J.Int (c "serve.requests"));
      ("hits", J.Int hits);
      ("misses", J.Int misses);
      ("evictions", J.Int (c "serve.evictions"));
      ("rejected", J.Int (c "serve.rejected"));
      ("invalidated", J.Int (c "serve.invalidated"));
      ("batches", J.Int (c "serve.batches"));
      ( "hit_rate",
        if hits + misses = 0 then J.Null
        else J.Float (float_of_int hits /. float_of_int (hits + misses)) );
      ("resident", J.Int (Catalog.resident t.catalog));
      ("persisted", J.Int (Catalog.length t.catalog));
      ("core_hours_spent", J.Float t.spent);
      ( "core_hours_budget",
        match t.max_core_hours with Some b -> J.Float b | None -> J.Null );
      ("latency_p50_s", q 0.5);
      ("latency_p95_s", q 0.95);
      ("latency_p99_s", q 0.99);
    ]

(* -- batch handling ------------------------------------------------ *)

type kind = K_predict of (string * float) list | K_fit

type slot =
  | Ready of string (* response already final *)
  | Waiting of kind * resolved * bool (* cached flag for the response *)

let handle_batch t lines =
  Obs_metrics.incr t.c_batches;
  let n = List.length lines in
  Obs_metrics.observe t.h_batch (float_of_int n);
  Obs_metrics.max_gauge t.g_queue (float_of_int n);
  let start = Obs_clock.now_ns () in
  let shutdown = ref false in
  let slots = Array.make n (Ready "") in
  let done_at = Array.make n 0. in
  (* keys scheduled for a cold fit in this batch, in first-appearance
     order — the deterministic memoization order *)
  let scheduled = Hashtbl.create 8 in
  let fits = ref [] in
  let emit ?severity name fields =
    Obs_events.emit t.events ?severity ~component:"serve" ~fields name
  in
  let answer_from_entry kind cached (e : Catalog.entry) =
    match kind with
    | K_fit -> Protocol.fit_line ~cached e
    | K_predict coords -> (
        match Model.Expr.eval e.Catalog.e_model coords with
        | v ->
            Protocol.predict_line ~key:e.Catalog.e_key ~cached
              ~app:e.Catalog.e_app ~prediction:v
              ~model:(Model.Expr.to_string e.Catalog.e_model)
              ~smape:e.Catalog.e_error
        | exception Invalid_argument msg -> Protocol.error_line msg)
  in
  (* phase 1 — serial, in request order: parse, resolve, classify.
     Hits are answered right here; only cold fits are deferred. *)
  let classify_model kind (spec : Protocol.fit_spec) =
    match resolve spec with
    | Error msg -> Ready (Protocol.error_line msg)
    | Ok rs -> (
        match Catalog.find t.catalog rs.rs_key with
        | Some e ->
            Obs_metrics.incr t.c_hits;
            Ready (answer_from_entry kind true e)
        | None ->
            if Hashtbl.mem scheduled rs.rs_key then begin
              (* rides the fit the first occurrence admitted *)
              Obs_metrics.incr t.c_hits;
              Waiting (kind, rs, true)
            end
            else
              let over_budget =
                match t.max_core_hours with
                | Some b -> t.spent >= b
                | None -> false
              in
              if over_budget then begin
                Obs_metrics.incr t.c_rejected;
                emit ~severity:Obs_events.Warn "serve.reject"
                  [ ("key", Obs_events.Str rs.rs_key);
                    ("app", Obs_events.Str spec.fs_app) ];
                Ready
                  (Protocol.error_line
                     (Printf.sprintf
                        "core-hour budget exhausted (%.3f spent of %.3f)"
                        t.spent
                        (Option.value ~default:0. t.max_core_hours)))
              end
              else begin
                Obs_metrics.incr t.c_misses;
                emit "serve.admit"
                  [ ("key", Obs_events.Str rs.rs_key);
                    ("app", Obs_events.Str spec.fs_app) ];
                Hashtbl.add scheduled rs.rs_key ();
                fits := rs :: !fits;
                Waiting (kind, rs, false)
              end)
  in
  List.iteri
    (fun i line ->
      Obs_metrics.incr t.c_requests;
      let slot =
        match Protocol.request_of_line line with
        | Error msg -> Ready (Protocol.error_line msg)
        | Ok Stats -> Ready (stats_response t)
        | Ok Shutdown ->
            shutdown := true;
            Ready Protocol.shutdown_line
        | Ok (Invalidate_key key) ->
            let removed = if Catalog.invalidate t.catalog ~key then 1 else 0 in
            Obs_metrics.add t.c_invalidated removed;
            emit "serve.invalidate"
              [ ("key", Obs_events.Str key);
                ("removed", Obs_events.Int removed) ];
            Ready (Protocol.invalidate_line ~removed)
        | Ok (Invalidate_app app) ->
            let removed = Catalog.invalidate_app t.catalog ~app in
            Obs_metrics.add t.c_invalidated removed;
            emit "serve.invalidate"
              [ ("app", Obs_events.Str app);
                ("removed", Obs_events.Int removed) ];
            Ready (Protocol.invalidate_line ~removed)
        | Ok (Predict (spec, coords)) -> classify_model (K_predict coords) spec
        | Ok (Fit spec) -> classify_model K_fit spec
      in
      slots.(i) <- slot;
      match slot with
      | Ready _ -> done_at.(i) <- Obs_clock.seconds_since start
      | Waiting _ -> ())
    lines;
  (* phase 2 — the distinct cold fits, concurrently across the pool;
     each fit is internally serial (the pool is not reentrant) *)
  let tasks = List.rev !fits in
  let run rs =
    ( rs.rs_key,
      try
        Ok
          (Catalog.fit ~app:rs.rs_app.Registry.r_app ~machine:Registry.machine
             ~design:rs.rs_design ~plan:rs.rs_plan ~retry:rs.rs_retry
             ~key:rs.rs_key ())
      with Invalid_argument msg | Failure msg -> Error msg )
  in
  let results =
    match t.pool with
    | Some pool when List.length tasks > 1 -> Par.Pool.map pool run tasks
    | _ -> List.map run tasks
  in
  (* phase 3 — serial, in first-appearance order: memoize + charge *)
  let completed = Hashtbl.create 8 in
  List.iter
    (fun (key, res) ->
      (match res with
      | Ok e ->
          Catalog.insert t.catalog e;
          t.spent <- t.spent +. Catalog.total_core_hours e;
          Obs_metrics.set_gauge t.g_core t.spent;
          emit "serve.fit"
            [ ("key", Obs_events.Str key);
              ("app", Obs_events.Str e.Catalog.e_app);
              ("core_hours", Obs_events.Float (Catalog.total_core_hours e)) ]
      | Error _ -> ());
      Hashtbl.replace completed key res)
    results;
  (* phase 4 — deferred responses, in request order *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Ready _ -> ()
      | Waiting (kind, rs, cached) ->
          let resp =
            match Hashtbl.find_opt completed rs.rs_key with
            | Some (Error msg) -> Protocol.error_line msg
            | Some (Ok e) -> answer_from_entry kind cached e
            | None -> Protocol.error_line "internal: fit result missing"
          in
          slots.(i) <- Ready resp;
          done_at.(i) <- Obs_clock.seconds_since start)
    slots;
  Array.iter (fun d -> Obs_metrics.observe t.h_latency d) done_at;
  let responses =
    Array.to_list
      (Array.map (function Ready r -> r | Waiting _ -> assert false) slots)
  in
  (responses, !shutdown)

let handle_line t line =
  match handle_batch t [ line ] with
  | [ resp ], stop -> (resp, stop)
  | _ -> assert false

(* -- sockets ------------------------------------------------------- *)

type endpoint = Unix_socket of string | Tcp of int

let endpoint_name = function
  | Unix_socket p -> p
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

let sockaddr = function
  | Unix_socket p -> Unix.ADDR_UNIX p
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let domain = function
  | Unix_socket _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let bind_and_listen ep =
  let fd = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
  try
    (match ep with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_socket _ -> ());
    Unix.bind fd (sockaddr ep);
    Unix.listen fd 64;
    Ok fd
  with Unix.Unix_error (err, _, _) ->
    Unix.close fd;
    Error
      (match (ep, err) with
      | Unix_socket p, (Unix.EADDRINUSE | Unix.EEXIST) ->
          Printf.sprintf "socket %s is already in use" p
      | Tcp port, Unix.EADDRINUSE ->
          Printf.sprintf "port %d is already in use" port
      | _ ->
          Printf.sprintf "cannot bind %s: %s" (endpoint_name ep)
            (Unix.error_message err))

let bind_endpoint ep =
  match ep with
  | Tcp _ -> bind_and_listen ep
  | Unix_socket path ->
      if Sys.file_exists path then begin
        (* a live daemon, or the stale socket file of a dead one? *)
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let live =
          try
            Unix.connect probe (Unix.ADDR_UNIX path);
            true
          with Unix.Unix_error _ -> false
        in
        Unix.close probe;
        if live then Error (Printf.sprintf "socket %s is already in use" path)
        else begin
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          bind_and_listen ep
        end
      end
      else bind_and_listen ep

let close_endpoint ep fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match ep with
  | Unix_socket p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let connect ?(attempts = 100) ep =
  let rec go n =
    let fd = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr ep) with
    | () -> Ok (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT), _, _)
      when n > 1 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (n - 1)
    | exception Unix.Unix_error (err, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot connect to %s: %s" (endpoint_name ep)
             (Unix.error_message err))
  in
  go (max 1 attempts)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* complete lines before the last '\n', and the unfinished remainder *)
let split_complete s =
  match String.rindex_opt s '\n' with
  | None -> ([], s)
  | Some i ->
      let head = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (String.split_on_char '\n' head, rest)

let serve_loop ?max_requests t listen_fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let conns : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let chunk = Bytes.create 65536 in
  let handled = ref 0 in
  let stop = ref false in
  let close_conn fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns fd
  in
  while not !stop do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd == listen_fd || fd = listen_fd then begin
              match Unix.accept listen_fd with
              | conn, _ -> Hashtbl.replace conns conn (Buffer.create 256)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some buf -> (
                  let n =
                    try Unix.read fd chunk 0 (Bytes.length chunk)
                    with Unix.Unix_error _ -> 0
                  in
                  if n = 0 then close_conn fd
                  else begin
                    Buffer.add_subbytes buf chunk 0 n;
                    let lines, rest = split_complete (Buffer.contents buf) in
                    Buffer.clear buf;
                    Buffer.add_string buf rest;
                    let lines =
                      List.filter (fun l -> String.trim l <> "") lines
                    in
                    if lines <> [] then begin
                      let responses, shutdown = handle_batch t lines in
                      handled := !handled + List.length lines;
                      let out = String.concat "\n" responses ^ "\n" in
                      (try write_all fd out 0 (String.length out)
                       with Unix.Unix_error _ -> close_conn fd);
                      if shutdown then stop := true;
                      match max_requests with
                      | Some m when !handled >= m -> stop := true
                      | _ -> ()
                    end
                  end))
          ready
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns
