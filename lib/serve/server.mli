(** The model-serving daemon: a line-delimited-JSON request loop over a
    Unix or TCP socket, answering {!Protocol.request}s out of a
    {!Catalog.t}.

    Requests drain in batches (everything readable on a connection is
    one batch).  Within a batch, hits are answered immediately; the
    distinct cold fits are executed concurrently on the domain pool
    (each fit is internally serial — {!Par.Pool} is not reentrant) and
    memoized in first-appearance order, so the catalog contents and
    every response are bit-identical to handling the same lines one at a
    time.  Duplicate keys within a batch fit once: the first occurrence
    is the miss, the rest are hits riding it.

    Admission control: when a core-hour budget is set, a cold fit is
    only admitted while the simulated core-hours already spent (runs +
    wasted attempts + backoff) are below the budget; rejected fits get a
    one-line error, hits are still served. *)

type t

val counters : (string * string) list
(** The [serve.*] metrics vocabulary (counters, gauges, histograms) —
    kept in sync with doc/OBSERVABILITY.md by a drift test. *)

val event_names : (string * string) list
(** The [serve.*] structured-event vocabulary — drift-tested likewise. *)

val create :
  ?pool:Par.Pool.t ->
  ?metrics:Obs_metrics.t ->
  ?events:Obs_events.sink ->
  ?max_core_hours:float ->
  catalog:Catalog.t ->
  unit ->
  t
(** [metrics] should be the registry the catalog was opened with, so
    [serve.evictions] lands beside the server's own instruments. *)

val metrics : t -> Obs_metrics.t
val spent_core_hours : t -> float
(** Simulated core-hours charged by this process's admitted fits. *)

val handle_batch : t -> string list -> string list * bool
(** Handle one batch of request lines; returns one response line per
    request (in request order) and whether a [shutdown] was seen.  This
    is the whole daemon minus the socket — tests, the bench, and the
    fuzz oracle drive it in-process. *)

val handle_line : t -> string -> string * bool
(** A batch of one. *)

(** {1 Sockets} *)

type endpoint = Unix_socket of string | Tcp of int

val endpoint_name : endpoint -> string

val bind_endpoint : endpoint -> (Unix.file_descr, string) result
(** Bind and listen.  A Unix-socket path with a live daemon behind it is
    refused ([Error] naming the path); a stale socket file (nothing
    accepting) is unlinked and rebound.  A TCP port already in use is
    refused likewise. *)

val close_endpoint : endpoint -> Unix.file_descr -> unit
(** Close the listener and unlink a Unix socket path. *)

val connect :
  ?attempts:int -> endpoint -> (in_channel * out_channel, string) result
(** Client side.  Retries connection-refused/not-found every 50 ms up to
    [attempts] (default 100) — the daemon may still be binding. *)

val serve_loop : ?max_requests:int -> t -> Unix.file_descr -> unit
(** Accept connections and answer until a [shutdown] request arrives (or
    [max_requests] lines have been handled).  A malformed line gets a
    one-line JSON error and the connection survives; a disconnecting
    client never stops the loop. *)
