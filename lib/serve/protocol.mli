(** The daemon's wire protocol: one JSON object per line in each
    direction, reusing {!Measure.Jsonio} (exact float round-trip).  The
    grammar is documented in doc/SERVE.md; a drift test keeps the two in
    sync via {!ops}. *)

type fit_spec = {
  fs_app : string;
  fs_grid : (string * float list) list option;
      (** design-grid override; [None] = the app's registry grid *)
  fs_reps : int;  (** default 5 *)
  fs_sigma : float;  (** default 0.02 *)
  fs_seed : int;  (** default 42 *)
  fs_faults : string;  (** {!Measure.Fault.of_spec} syntax; default "" *)
  fs_retries : int;  (** default 3 *)
  fs_backoff : float;  (** default 30 s *)
}
(** Everything that enters the catalog key besides the program text —
    the defaults mirror the [campaign] subcommand's. *)

type request =
  | Predict of fit_spec * (string * float) list  (** spec, coordinates *)
  | Fit of fit_spec
  | Invalidate_key of string
  | Invalidate_app of string
  | Stats
  | Shutdown

val ops : (string * string) list
(** The request-op vocabulary (name, meaning) — kept in sync with
    doc/SERVE.md by a drift test. *)

val request_of_line : string -> (request, string) result
(** Parse one request line.  Every error is a one-line message suitable
    for {!error_line}; the connection survives it. *)

val error_line : string -> string
(** [{"ok":false,"error":...}] — the one-line failure response. *)

val predict_line :
  key:string ->
  cached:bool ->
  app:string ->
  prediction:float ->
  model:string ->
  smape:float ->
  string

val fit_line : cached:bool -> Catalog.entry -> string
(** Embeds the full catalog entry, so a client sees exactly what was
    memoized. *)

val invalidate_line : removed:int -> string
val shutdown_line : string

val stats_line : (string * Measure.Jsonio.t) list -> string
(** [{"ok":true,"op":"stats",...fields}]. *)
