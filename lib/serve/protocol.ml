module J = Measure.Jsonio

type fit_spec = {
  fs_app : string;
  fs_grid : (string * float list) list option;
  fs_reps : int;
  fs_sigma : float;
  fs_seed : int;
  fs_faults : string;
  fs_retries : int;
  fs_backoff : float;
}

type request =
  | Predict of fit_spec * (string * float) list
  | Fit of fit_spec
  | Invalidate_key of string
  | Invalidate_app of string
  | Stats
  | Shutdown

let ops =
  [
    ("predict", "evaluate the app's (possibly cached) model at coordinates");
    ("fit", "run the campaign and fit on a miss; answer from the catalog \
             on a hit");
    ("invalidate", "drop one catalog key or every entry of an app");
    ("stats", "serve.* counters, hit rate, and latency quantiles");
    ("shutdown", "answer, then stop the daemon");
  ]

let ( let* ) = Result.bind

let opt_field name j = J.member name j

let str_field name j =
  match J.member name j with
  | Some v -> (
      match J.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S: expected a string" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int name ~default j =
  match opt_field name j with
  | None -> Ok default
  | Some v -> (
      match J.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected an integer" name))

let opt_float name ~default j =
  match opt_field name j with
  | None -> Ok default
  | Some v -> (
      match J.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected a number" name))

let opt_str name ~default j =
  match opt_field name j with
  | None -> Ok default
  | Some v -> (
      match J.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S: expected a string" name))

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let coords_of_json j =
  match j with
  | J.Obj pairs ->
      map_result
        (fun (k, v) ->
          match J.to_float v with
          | Some f -> Ok (k, f)
          | None ->
              Error (Printf.sprintf "coordinate %S: expected a number" k))
        pairs
  | _ -> Error "field \"coords\": expected an object"

let grid_of_json j =
  match j with
  | J.Obj pairs ->
      map_result
        (fun (k, v) ->
          match J.to_list v with
          | Some vs -> (
              match map_result (fun x ->
                  match J.to_float x with
                  | Some f -> Ok f
                  | None ->
                      Error
                        (Printf.sprintf "grid axis %S: expected numbers" k))
                  vs
              with
              | Ok [] -> Error (Printf.sprintf "grid axis %S: empty" k)
              | r -> r)
              |> Result.map (fun fs -> (k, fs))
          | None ->
              Error (Printf.sprintf "grid axis %S: expected a list" k))
        pairs
  | _ -> Error "field \"grid\": expected an object"

let fit_spec_of j =
  let* fs_app = str_field "app" j in
  let* fs_grid =
    match opt_field "grid" j with
    | None -> Ok None
    | Some g -> Result.map Option.some (grid_of_json g)
  in
  let* fs_reps = opt_int "reps" ~default:5 j in
  let* fs_sigma = opt_float "sigma" ~default:0.02 j in
  let* fs_seed = opt_int "seed" ~default:42 j in
  let* fs_faults = opt_str "faults" ~default:"" j in
  let* fs_retries = opt_int "retries" ~default:3 j in
  let* fs_backoff = opt_float "backoff" ~default:30. j in
  Ok { fs_app; fs_grid; fs_reps; fs_sigma; fs_seed; fs_faults; fs_retries;
       fs_backoff }

let request_of_line line =
  let* j = J.parse line in
  let* op = str_field "op" j in
  match op with
  | "predict" ->
      let* spec = fit_spec_of j in
      let* coords =
        match opt_field "coords" j with
        | Some c -> coords_of_json c
        | None -> Error "missing field \"coords\""
      in
      if coords = [] then Error "field \"coords\": empty"
      else Ok (Predict (spec, coords))
  | "fit" ->
      let* spec = fit_spec_of j in
      Ok (Fit spec)
  | "invalidate" -> (
      match (opt_field "key" j, opt_field "app" j) with
      | Some k, None -> (
          match J.to_str k with
          | Some s -> Ok (Invalidate_key s)
          | None -> Error "field \"key\": expected a string")
      | None, Some a -> (
          match J.to_str a with
          | Some s -> Ok (Invalidate_app s)
          | None -> Error "field \"app\": expected a string")
      | Some _, Some _ -> Error "invalidate: give \"key\" or \"app\", not both"
      | None, None -> Error "invalidate: missing \"key\" or \"app\"")
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* -- responses ----------------------------------------------------- *)

let error_line msg =
  J.to_string (J.Obj [ ("ok", J.Bool false); ("error", J.Str msg) ])

let predict_line ~key ~cached ~app ~prediction ~model ~smape =
  J.to_string
    (J.Obj
       [
         ("ok", J.Bool true);
         ("op", J.Str "predict");
         ("key", J.Str key);
         ("cached", J.Bool cached);
         ("app", J.Str app);
         ("prediction", J.Float prediction);
         ("model", J.Str model);
         ("smape", J.Float smape);
       ])

let fit_line ~cached (e : Catalog.entry) =
  let entry_json =
    match J.parse (Catalog.entry_to_line e) with
    | Ok j -> j
    | Error _ -> J.Null (* entry_to_line always parses *)
  in
  J.to_string
    (J.Obj
       [
         ("ok", J.Bool true);
         ("op", J.Str "fit");
         ("key", J.Str e.Catalog.e_key);
         ("cached", J.Bool cached);
         ("app", J.Str e.Catalog.e_app);
         ("entry", entry_json);
       ])

let invalidate_line ~removed =
  J.to_string
    (J.Obj
       [ ("ok", J.Bool true); ("op", J.Str "invalidate");
         ("removed", J.Int removed) ])

let shutdown_line =
  J.to_string (J.Obj [ ("ok", J.Bool true); ("op", J.Str "shutdown") ])

let stats_line fields =
  J.to_string
    (J.Obj ([ ("ok", J.Bool true); ("op", J.Str "stats") ] @ fields))
