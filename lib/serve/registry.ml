(* The apps the daemon can serve.  The program text entering the catalog
   key is the printed PIR of the real program, so a change to an app's
   code changes every key derived from it. *)

type app = {
  r_name : string;
  r_app : Measure.Spec.app;
  r_program_text : string Lazy.t;
  r_grid : (string * float list) list;
}

let apps =
  [
    {
      r_name = "lulesh";
      r_app = Apps.Lulesh_spec.app;
      r_program_text = lazy (Ir.Pp.program_to_string Apps.Lulesh.program);
      r_grid =
        [
          ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values);
          ("r", [ 8. ]);
        ];
    };
    {
      r_name = "milc";
      r_app = Apps.Milc_spec.app;
      r_program_text = lazy (Ir.Pp.program_to_string Apps.Milc.program);
      r_grid =
        [
          ("p", Apps.Milc_spec.p_values);
          ("size", Apps.Milc_spec.size_values);
          ("r", [ 8. ]);
        ];
    };
    {
      r_name = "minicg";
      r_app = Apps.Minicg_spec.app;
      r_program_text = lazy (Ir.Pp.program_to_string Apps.Minicg.program);
      r_grid =
        [
          ("p", Apps.Minicg_spec.p_values);
          ("n", Apps.Minicg_spec.n_values);
          ("r", [ 8. ]);
        ];
    };
  ]

let names = List.map (fun a -> a.r_name) apps
let find name = List.find_opt (fun a -> a.r_name = name) apps
let machine = Mpi_sim.Machine.skylake_cluster
let program_text a = Lazy.force a.r_program_text
