(** Monotonic time source for the observability layer.  All spans and
    phase timings are measured against this clock, never wall time, so
    NTP adjustments cannot produce negative durations. *)

val now_ns : unit -> int64
(** Nanoseconds on the system monotonic clock (CLOCK_MONOTONIC). *)

val seconds_since : int64 -> float
(** Elapsed seconds between an earlier {!now_ns} reading and now. *)
