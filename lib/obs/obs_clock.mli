(** Monotonic time source for the observability layer.  All spans and
    phase timings are measured against this clock, never wall time, so
    NTP adjustments cannot produce negative durations. *)

val now_ns : unit -> int64
(** Nanoseconds on the system monotonic clock (CLOCK_MONOTONIC). *)

val seconds_since : int64 -> float
(** Elapsed seconds between an earlier {!now_ns} reading and now. *)

val with_timer : (unit -> 'a) -> 'a * float
(** Run the thunk and return its result with the elapsed seconds — the
    one idiom behind every hand-rolled [now_ns]/[seconds_since] pair. *)

val timed : (float -> unit) -> (unit -> 'a) -> 'a
(** [timed record f] runs [f] and passes its elapsed seconds to
    [record] (typically a gauge write).  [record] is not called when
    [f] raises. *)
