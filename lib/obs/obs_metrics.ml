(** Metrics registry: interned counters, gauges, and fixed-bucket
    histograms.  Instruments are plain mutable records; the registry is a
    name -> instrument table consulted only at interning time, never on
    the update path. *)

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_written : bool }

type histogram = {
  h_name : string;
  h_bounds : float array;   (* strictly increasing upper bounds *)
  h_counts : int array;     (* one per bound *)
  mutable h_overflow : int;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  m_counters : (string, counter) Hashtbl.t;
  m_gauges : (string, gauge) Hashtbl.t;
  m_histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    m_counters = Hashtbl.create 32;
    m_gauges = Hashtbl.create 16;
    m_histograms = Hashtbl.create 8;
  }

(* -- counters ------------------------------------------------------------ *)

let counter t name =
  match Hashtbl.find_opt t.m_counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_count = 0 } in
    Hashtbl.replace t.m_counters name c;
    c

let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let counter_value c = c.c_count

(* -- gauges -------------------------------------------------------------- *)

let gauge t name =
  match Hashtbl.find_opt t.m_gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.; g_written = false } in
    Hashtbl.replace t.m_gauges name g;
    g

let set_gauge g v =
  g.g_value <- v;
  g.g_written <- true

let add_gauge g v =
  g.g_value <- (if g.g_written then g.g_value +. v else v);
  g.g_written <- true

let max_gauge g v =
  g.g_value <- (if g.g_written then Float.max g.g_value v else v);
  g.g_written <- true

(* -- histograms ---------------------------------------------------------- *)

(* Decade-ish default: good enough for durations in seconds and sizes. *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10.; 100.; 1000. |]

let histogram t ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.m_histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_bounds = Array.copy bounds;
        h_counts = Array.make (Array.length bounds) 0;
        h_overflow = 0;
        h_count = 0;
        h_sum = 0.;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
      }
    in
    Hashtbl.replace t.m_histograms name h;
    h

let observe h v =
  let n = Array.length h.h_bounds in
  let rec place i =
    if i >= n then h.h_overflow <- h.h_overflow + 1
    else if v <= h.h_bounds.(i) then h.h_counts.(i) <- h.h_counts.(i) + 1
    else place (i + 1)
  in
  place 0;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_min <- Float.min h.h_min v;
  h.h_max <- Float.max h.h_max v

(* -- merging ------------------------------------------------------------- *)

(* Fold a registry into another. Registries are single-domain by design
   (plain mutable cells, no locks); parallel sections therefore give each
   task its own local registry and the submitting domain merges them back
   *in task order*, which reproduces the serial accumulation order of
   every float sum. Counters add; gauges add (the merged paths only use
   accumulating gauges like [sim.core_hours] — last-written gauges do not
   cross domain boundaries here); histograms add bucket-wise, which
   requires both sides to have been created with the same bounds. *)
let merge ~into src =
  Hashtbl.iter
    (fun name c -> if c.c_count <> 0 then add (counter into name) c.c_count)
    src.m_counters;
  Hashtbl.iter
    (fun name g -> if g.g_written then add_gauge (gauge into name) g.g_value)
    src.m_gauges;
  Hashtbl.iter
    (fun name h ->
      if h.h_count <> 0 then begin
        let d = histogram into ~bounds:h.h_bounds name in
        Array.iteri
          (fun i n -> if i < Array.length d.h_counts then
              d.h_counts.(i) <- d.h_counts.(i) + n)
          h.h_counts;
        d.h_overflow <- d.h_overflow + h.h_overflow;
        d.h_count <- d.h_count + h.h_count;
        d.h_sum <- d.h_sum +. h.h_sum;
        d.h_min <- Float.min d.h_min h.h_min;
        d.h_max <- Float.max d.h_max h.h_max
      end)
    src.m_histograms

(* -- snapshots ----------------------------------------------------------- *)

type hist_snapshot = {
  hs_buckets : (float * int) list;
  hs_overflow : int;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot t =
  let counters =
    Hashtbl.fold (fun name c acc -> (name, c.c_count) :: acc) t.m_counters []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold
      (fun name g acc -> if g.g_written then (name, g.g_value) :: acc else acc)
      t.m_gauges []
    |> List.sort by_name
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        let buckets =
          Array.to_list (Array.mapi (fun i b -> (b, h.h_counts.(i))) h.h_bounds)
        in
        ( name,
          {
            hs_buckets = buckets;
            hs_overflow = h.h_overflow;
            hs_count = h.h_count;
            hs_sum = h.h_sum;
            hs_min = h.h_min;
            hs_max = h.h_max;
          } )
        :: acc)
      t.m_histograms []
    |> List.sort by_name
  in
  { counters; gauges; histograms }

let empty_snapshot = { counters = []; gauges = []; histograms = [] }

(* Monotone linear interpolation within buckets.  The q-th value is
   located by cumulative count; within its bucket the value interpolates
   linearly between the bucket's edges, with the first bucket's lower
   edge anchored at the observed minimum and the overflow bucket's upper
   edge at the observed maximum.  The result is clamped to
   [hs_min, hs_max], so quantiles can never leave the observed range. *)
let quantile hs q =
  if hs.hs_count = 0 then Float.nan
  else if q <= 0. then hs.hs_min
  else if q >= 1. then hs.hs_max
  else begin
    let target = q *. float_of_int hs.hs_count in
    let interp lower upper n cum =
      let lo = Float.max lower hs.hs_min in
      let hi = Float.min upper hs.hs_max in
      lo +. ((target -. cum) /. float_of_int n *. (hi -. lo))
    in
    let rec walk lower cum = function
      | [] ->
        if hs.hs_overflow = 0 then hs.hs_max
        else interp lower hs.hs_max hs.hs_overflow cum
      | (bound, n) :: rest ->
        if n > 0 && cum +. float_of_int n >= target then
          interp lower bound n cum
        else walk bound (cum +. float_of_int n) rest
    in
    let v = walk Float.neg_infinity 0. hs.hs_buckets in
    Float.min hs.hs_max (Float.max hs.hs_min v)
  end

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges

let counters_with_prefix s prefix =
  let plen = String.length prefix in
  List.filter_map
    (fun (name, v) ->
      if String.length name > plen && String.sub name 0 plen = prefix then
        Some (String.sub name plen (String.length name - plen), v)
      else None)
    s.counters

let pp_summary ppf s =
  let open Fmt in
  List.iter (fun (n, v) -> pf ppf "  %-40s %12d@." n v) s.counters;
  List.iter (fun (n, v) -> pf ppf "  %-40s %12.6g@." n v) s.gauges;
  List.iter
    (fun (n, hs) ->
      if hs.hs_count = 0 then pf ppf "  %-40s (empty)@." n
      else
        pf ppf
          "  %-40s n=%d sum=%.6g min=%.3g p50=%.3g p95=%.3g p99=%.3g \
           max=%.3g@."
          n hs.hs_count hs.hs_sum hs.hs_min (quantile hs 0.50)
          (quantile hs 0.95) (quantile hs 0.99) hs.hs_max)
    s.histograms
