(** Monotonic time source: a thin veneer over the CLOCK_MONOTONIC stub
    that ships with bechamel, so the observability layer needs no
    additional system dependency. *)

let now_ns () = Monotonic_clock.now ()

let seconds_since t0 =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9

let with_timer f =
  let t0 = now_ns () in
  let r = f () in
  (r, seconds_since t0)

let timed record f =
  let t0 = now_ns () in
  let r = f () in
  record (seconds_since t0);
  r
