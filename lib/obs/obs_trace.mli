(** A trace sink recording phase spans and instant events, exportable as
    Chrome [trace_event] JSON ([chrome://tracing] / Perfetto "JSON array
    format") and as a compact per-span text summary.

    The sink is either [Disabled] — every recording entry point
    short-circuits on a single match, allocating nothing — or [Recording]
    into an in-memory buffer with a hard event cap.  When the cap is hit,
    further span begins and instants are dropped (and counted), but ends
    of already-recorded spans are still recorded so the emitted trace
    always has matched begin/end pairs.

    Sinks are safe to record into from multiple domains: the buffer is
    mutex-guarded and every event is stamped with its emitting domain id
    ([ev_tid]). Spans nest per domain lane — [balanced] and
    {!span_totals} match Begin/End pairs within each lane, and the
    Chrome export maps lanes to ["tid"]s. *)

type arg = Int of int | Float of float | String of string
(** A typed event argument (the Chrome trace ["args"] payload). *)

type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_ns : int64;  (** monotonic nanoseconds since the sink was created *)
  ev_tid : int;  (** emitting domain id; lanes nest independently *)
  ev_args : (string * arg) list;
}

type sink
(** Either disabled or an in-memory recorder. *)

val disabled : sink

val create : ?max_events:int -> unit -> sink
(** A recording sink.  [max_events] (default [1_000_000]) caps the buffer;
    see the drop policy above. *)

val enabled : sink -> bool
(** [true] on recording sinks — guard argument construction with this. *)

val span_begin : sink -> ?cat:string -> ?args:(string * arg) list -> string -> unit
val span_end : sink -> ?args:(string * arg) list -> string -> unit
(** Spans nest by call order within the emitting domain (Chrome's
    duration-event stack discipline); [span_end]'s name must match the
    innermost open [span_begin] of the same domain. *)

val instant : sink -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val with_span :
  sink -> ?cat:string -> ?args:(string * arg) list -> string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a span; the end event is recorded even when the
    thunk raises.  [args] attach to the Begin event. *)

val events : sink -> event list
(** Recorded events in chronological order (empty when disabled). *)

val dropped_events : sink -> int
(** Events discarded because the buffer cap was reached. *)

val balanced : event list -> bool
(** Are the Begin/End events properly nested and matched by name, within
    every per-domain lane? *)

val to_chrome_string : sink -> string
(** The Chrome trace: [{"traceEvents": [...], ...}] with ["ph"] of
    ["B"]/["E"]/["i"] and microsecond ["ts"], loadable by Perfetto and
    [chrome://tracing]. *)

val write_file : sink -> string -> unit
(** Serialize {!to_chrome_string} to a file. *)

type span_total = {
  st_name : string;
  st_count : int;
  st_total_s : float;  (** inclusive wall time over all instances *)
}

val span_totals : sink -> span_total list
(** Per-name span instance counts and inclusive totals, sorted by
    descending total time.  Unclosed spans are ignored. *)

val pp_summary : sink Fmt.t
(** Compact text summary: one line per span name, then drop counts. *)
