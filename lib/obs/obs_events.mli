(** A structured event log: one JSON object per line with a sequence
    number, optional timestamp, severity, component, event name and
    typed key/value fields.

    The sink is either {!disabled} — every entry point is a single-match
    no-op — or recording, in memory and optionally into a file flushed
    per line (so a killed process loses at most the in-flight event).

    Determinism: emitters route every event through a single writer
    domain (the campaign executor and the model search emit only from
    the submitting domain), so sequence numbers and event order are
    identical at any [--jobs] count.  Timestamps are the one wall-clock
    field; create the sink with [~ts:false] for byte-identical logs. *)

type severity = Debug | Info | Warn | Error

val severity_name : severity -> string

type value = Int of int | Float of float | Str of string | Bool of bool
(** A typed event field. *)

type sink

val disabled : sink

val create : ?ts:bool -> unit -> sink
(** An in-memory sink.  [ts] (default [true]) stamps each event with
    seconds since sink creation ([ts_s], monotonic clock). *)

val to_file : ?ts:bool -> string -> sink
(** A sink writing (and flushing) one JSON line per event to [path],
    also retained in memory for {!lines}.  Call {!close} when done. *)

val close : sink -> unit
(** Close the backing file, if any.  Safe on any sink. *)

val enabled : sink -> bool

val emit :
  sink -> ?severity:severity -> component:string ->
  ?fields:(string * value) list -> string -> unit
(** Emit one event.  [severity] defaults to [Info]; [fields] are
    appended to the JSON object in order. *)

val lines : sink -> string list
(** Every emitted line, in emission order (empty when disabled). *)

val count : sink -> int
(** Events emitted so far. *)
