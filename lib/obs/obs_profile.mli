(** A deterministic sampling profiler for the interpreter.

    Instead of a wall-clock timer, the profiler is driven by the
    engine's simulated cost: every [interval] executed steps ({!tick})
    it charges one sample to the current call-tree node, maintained by
    {!enter}/{!leave} at every function call.  Because nothing reads a
    clock, the profile is a pure function of the executed instruction
    stream — bit-identical across runs, machines, and [--jobs] counts.

    Profiles are {!merge}-able in task order, like [Obs_metrics]
    registries: parallel sections give each task a private profiler and
    the submitting domain folds them back deterministically.

    Exports: a top-N text table ({!pp_table}), JSON ({!to_json}), and
    collapsed-stacks text ({!to_folded}) loadable by flamegraph tools
    (flamegraph.pl, inferno, speedscope). *)

type t

val default_interval : int
(** 1000 steps per sample. *)

val create : ?interval:int -> unit -> t
(** A fresh profiler sampling every [interval] steps (default
    {!default_interval}).
    @raise Invalid_argument when [interval < 1]. *)

val interval : t -> int
val samples : t -> int
(** Samples taken so far. *)

val enter : t -> string -> unit
(** Push a function onto the profiled call stack (engine call entry). *)

val leave : t -> unit
(** Pop the profiled call stack (engine call return).  A leave without a
    matching enter is ignored. *)

val tick : t -> unit
(** Count one executed step; every [interval] ticks, charge a sample to
    the current call-tree node.  The engine calls this from its step
    hot path — one decrement and branch per step. *)

val merge : into:t -> t -> unit
(** Fold one profiler into another: samples add per call path, paths are
    visited in the source's deterministic creation order.  Parallel
    sections merge per-task profiles back in task order, reproducing
    the serial profile exactly.
    @raise Invalid_argument when the intervals differ. *)

(** {1 Snapshots and exports} *)

type row = {
  pr_func : string;
  pr_self : int;   (** samples with this function innermost *)
  pr_total : int;  (** samples with this function anywhere on the stack *)
}

type snapshot = {
  ps_interval : int;
  ps_samples : int;
  ps_funcs : row list;  (** self-samples descending, then by name *)
  ps_paths : (string list * int) list;
      (** (root-first call path, samples), lexicographic order *)
}

val snapshot : t -> snapshot

val to_folded : t -> string
(** Collapsed-stacks text, one ["main;solve;spmv 42"] line per sampled
    call path in lexicographic order — loadable by flamegraph tools and
    byte-identical across runs of the same program. *)

val folded_of_snapshot : snapshot -> string

val pp_table : ?top:int -> snapshot Fmt.t
(** Top-N table (default 20 rows): function, self and total samples,
    self percentage. *)

val to_json : t -> string
(** The profile as a single JSON document; see {!json_fields} for the
    schema vocabulary. *)

val json_fields : (string * string) list
(** The [profile.*] output-field vocabulary (name, meaning) — kept in
    sync with doc/OBSERVABILITY.md by a drift test. *)
