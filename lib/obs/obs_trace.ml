(** In-memory trace recorder with Chrome [trace_event] export.  Events are
    prepended to a list (reversed on read); timestamps are monotonic
    nanoseconds relative to sink creation. *)

type arg = Int of int | Float of float | String of string
type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_ns : int64;
  ev_tid : int;
  ev_args : (string * arg) list;
}

type recorder = {
  t0 : int64;
  max_events : int;
  mu : Mutex.t;
      (* spans may be emitted from pool worker domains; every access to
         the mutable buffer state below goes through this mutex *)
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  skip_depth : (int, int ref) Hashtbl.t;
      (* per-domain-lane depth of spans whose Begin was dropped at the
         cap: their End must be dropped too so each lane stays matched *)
}

type sink = Disabled | Recording of recorder

let disabled = Disabled

let create ?(max_events = 1_000_000) () =
  Recording
    {
      t0 = Obs_clock.now_ns ();
      max_events;
      mu = Mutex.create ();
      rev_events = [];
      count = 0;
      dropped = 0;
      skip_depth = Hashtbl.create 4;
    }

let enabled = function Disabled -> false | Recording _ -> true

let now r = Int64.sub (Obs_clock.now_ns ()) r.t0
let self_tid () = (Domain.self () :> int)

let push r ev =
  r.rev_events <- ev :: r.rev_events;
  r.count <- r.count + 1

let skip_of r tid =
  match Hashtbl.find_opt r.skip_depth tid with
  | Some s -> s
  | None ->
    let s = ref 0 in
    Hashtbl.add r.skip_depth tid s;
    s

let locked r f =
  Mutex.lock r.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mu) f

let span_begin sink ?(cat = "perf-taint") ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    let tid = self_tid () in
    locked r (fun () ->
        if r.count >= r.max_events then begin
          r.dropped <- r.dropped + 1;
          incr (skip_of r tid)
        end
        else
          push r
            { ev_name = name; ev_cat = cat; ev_ph = Begin; ev_ts_ns = now r;
              ev_tid = tid; ev_args = args })

let span_end sink ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    let tid = self_tid () in
    locked r (fun () ->
        let skip = skip_of r tid in
        if !skip > 0 then begin
          r.dropped <- r.dropped + 1;
          decr skip
        end
        else
          (* Ends of spans whose Begin made it into the buffer are
             recorded even past the cap, keeping every emitted pair in
             this lane matched. *)
          push r
            { ev_name = name; ev_cat = ""; ev_ph = End; ev_ts_ns = now r;
              ev_tid = tid; ev_args = args })

let instant sink ?(cat = "perf-taint") ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    let tid = self_tid () in
    locked r (fun () ->
        if r.count >= r.max_events then r.dropped <- r.dropped + 1
        else
          push r
            { ev_name = name; ev_cat = cat; ev_ph = Instant; ev_ts_ns = now r;
              ev_tid = tid; ev_args = args })

let with_span sink ?cat ?args name f =
  match sink with
  | Disabled -> f ()
  | Recording _ ->
    span_begin sink ?cat ?args name;
    let finally () = span_end sink name in
    Fun.protect ~finally f

let events = function
  | Disabled -> []
  | Recording r -> locked r (fun () -> List.rev r.rev_events)

let dropped_events = function
  | Disabled -> 0
  | Recording r -> locked r (fun () -> r.dropped)

(* Spans nest per emitting domain, not globally: events from concurrent
   lanes interleave freely in the buffer, so structural checks and span
   accounting first split the stream into per-tid lanes. *)
let lanes evs =
  let order = ref [] in
  let by_tid : (int, event list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt by_tid ev.ev_tid with
      | Some l -> l := ev :: !l
      | None ->
        Hashtbl.add by_tid ev.ev_tid (ref [ ev ]);
        order := ev.ev_tid :: !order)
    evs;
  List.rev_map (fun tid -> List.rev !(Hashtbl.find by_tid tid)) !order
  |> List.rev

let balanced evs =
  let lane_balanced evs =
    let rec go stack = function
      | [] -> stack = []
      | ev :: rest -> (
        match ev.ev_ph with
        | Begin -> go (ev.ev_name :: stack) rest
        | End -> (
          match stack with
          | top :: stack' when top = ev.ev_name -> go stack' rest
          | _ -> false)
        | Instant -> go stack rest)
    in
    go [] evs
  in
  List.for_all lane_balanced (lanes evs)

(* -- Chrome trace_event serialization ------------------------------------ *)

(* The JSON subset needed here: names/categories are identifiers plus the
   odd '/' or ':', but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_repr = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f || not (Float.is_finite f) then "null"
    else Printf.sprintf "%.12g" f
  | String s -> Printf.sprintf "\"%s\"" (escape s)

let ts_us ns = Int64.to_float ns /. 1e3

let event_repr buf ev =
  let ph =
    match ev.ev_ph with Begin -> "B" | End -> "E" | Instant -> "i"
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d"
       (escape ev.ev_name) ph (ts_us ev.ev_ts_ns) (ev.ev_tid + 1));
  if ev.ev_cat <> "" then
    Buffer.add_string buf (Printf.sprintf ", \"cat\": \"%s\"" (escape ev.ev_cat));
  (* Instant events need a scope; thread scope renders as a tick mark. *)
  if ev.ev_ph = Instant then Buffer.add_string buf ", \"s\": \"t\"";
  (match ev.ev_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": %s" (escape k) (arg_repr v)))
      args;
    Buffer.add_string buf "}");
  Buffer.add_string buf "}"

let to_chrome_string sink =
  let evs = events sink in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n ";
      event_repr buf ev)
    evs;
  Buffer.add_string buf "],\n \"displayTimeUnit\": \"ms\"";
  let d = dropped_events sink in
  if d > 0 then
    Buffer.add_string buf (Printf.sprintf ",\n \"droppedEvents\": %d" d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string sink))

(* -- summary ------------------------------------------------------------- *)

type span_total = { st_name : string; st_count : int; st_total_s : float }

let span_totals sink =
  let totals : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let rec go stack = function
    | [] -> ()
    | ev :: rest ->
      (match ev.ev_ph with
      | Begin -> go ((ev.ev_name, ev.ev_ts_ns) :: stack) rest
      | End -> (
        match stack with
        | (name, t0) :: stack' when name = ev.ev_name ->
          let dt = Int64.to_float (Int64.sub ev.ev_ts_ns t0) *. 1e-9 in
          let n, total =
            Option.value ~default:(0, 0.) (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name (n + 1, total +. dt);
          go stack' rest
        | _ -> go stack rest)
      | Instant -> go stack rest)
  in
  List.iter (go []) (lanes (events sink));
  Hashtbl.fold
    (fun name (n, total) acc ->
      { st_name = name; st_count = n; st_total_s = total } :: acc)
    totals []
  |> List.sort (fun a b -> compare b.st_total_s a.st_total_s)

let pp_summary ppf sink =
  List.iter
    (fun st ->
      Fmt.pf ppf "  %-40s %8d x %12.6f s@." st.st_name st.st_count st.st_total_s)
    (span_totals sink);
  let d = dropped_events sink in
  if d > 0 then Fmt.pf ppf "  (%d events dropped at buffer cap)@." d
