(** In-memory trace recorder with Chrome [trace_event] export.  Events are
    prepended to a list (reversed on read); timestamps are monotonic
    nanoseconds relative to sink creation. *)

type arg = Int of int | Float of float | String of string
type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_ns : int64;
  ev_args : (string * arg) list;
}

type recorder = {
  t0 : int64;
  max_events : int;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  mutable skip_depth : int;
      (* spans whose Begin was dropped at the cap: their End must be
         dropped too so recorded pairs stay matched *)
}

type sink = Disabled | Recording of recorder

let disabled = Disabled

let create ?(max_events = 1_000_000) () =
  Recording
    {
      t0 = Obs_clock.now_ns ();
      max_events;
      rev_events = [];
      count = 0;
      dropped = 0;
      skip_depth = 0;
    }

let enabled = function Disabled -> false | Recording _ -> true

let now r = Int64.sub (Obs_clock.now_ns ()) r.t0

let push r ev =
  r.rev_events <- ev :: r.rev_events;
  r.count <- r.count + 1

let span_begin sink ?(cat = "perf-taint") ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    if r.count >= r.max_events then begin
      r.dropped <- r.dropped + 1;
      r.skip_depth <- r.skip_depth + 1
    end
    else
      push r
        { ev_name = name; ev_cat = cat; ev_ph = Begin; ev_ts_ns = now r;
          ev_args = args }

let span_end sink ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    if r.skip_depth > 0 then begin
      r.dropped <- r.dropped + 1;
      r.skip_depth <- r.skip_depth - 1
    end
    else
      (* Ends of spans whose Begin made it into the buffer are recorded
         even past the cap, keeping every emitted pair matched. *)
      push r
        { ev_name = name; ev_cat = ""; ev_ph = End; ev_ts_ns = now r;
          ev_args = args }

let instant sink ?(cat = "perf-taint") ?(args = []) name =
  match sink with
  | Disabled -> ()
  | Recording r ->
    if r.count >= r.max_events then r.dropped <- r.dropped + 1
    else
      push r
        { ev_name = name; ev_cat = cat; ev_ph = Instant; ev_ts_ns = now r;
          ev_args = args }

let with_span sink ?cat name f =
  match sink with
  | Disabled -> f ()
  | Recording _ ->
    span_begin sink ?cat name;
    let finally () = span_end sink name in
    Fun.protect ~finally f

let events = function
  | Disabled -> []
  | Recording r -> List.rev r.rev_events

let dropped_events = function Disabled -> 0 | Recording r -> r.dropped

let balanced evs =
  let rec go stack = function
    | [] -> stack = []
    | ev :: rest -> (
      match ev.ev_ph with
      | Begin -> go (ev.ev_name :: stack) rest
      | End -> (
        match stack with
        | top :: stack' when top = ev.ev_name -> go stack' rest
        | _ -> false)
      | Instant -> go stack rest)
  in
  go [] evs

(* -- Chrome trace_event serialization ------------------------------------ *)

(* The JSON subset needed here: names/categories are identifiers plus the
   odd '/' or ':', but escape defensively anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_repr = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f || not (Float.is_finite f) then "null"
    else Printf.sprintf "%.12g" f
  | String s -> Printf.sprintf "\"%s\"" (escape s)

let ts_us ns = Int64.to_float ns /. 1e3

let event_repr buf ev =
  let ph =
    match ev.ev_ph with Begin -> "B" | End -> "E" | Instant -> "i"
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": 1"
       (escape ev.ev_name) ph (ts_us ev.ev_ts_ns));
  if ev.ev_cat <> "" then
    Buffer.add_string buf (Printf.sprintf ", \"cat\": \"%s\"" (escape ev.ev_cat));
  (* Instant events need a scope; thread scope renders as a tick mark. *)
  if ev.ev_ph = Instant then Buffer.add_string buf ", \"s\": \"t\"";
  (match ev.ev_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": %s" (escape k) (arg_repr v)))
      args;
    Buffer.add_string buf "}");
  Buffer.add_string buf "}"

let to_chrome_string sink =
  let evs = events sink in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n ";
      event_repr buf ev)
    evs;
  Buffer.add_string buf "],\n \"displayTimeUnit\": \"ms\"";
  let d = dropped_events sink in
  if d > 0 then
    Buffer.add_string buf (Printf.sprintf ",\n \"droppedEvents\": %d" d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string sink))

(* -- summary ------------------------------------------------------------- *)

type span_total = { st_name : string; st_count : int; st_total_s : float }

let span_totals sink =
  let totals : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let rec go stack = function
    | [] -> ()
    | ev :: rest ->
      (match ev.ev_ph with
      | Begin -> go ((ev.ev_name, ev.ev_ts_ns) :: stack) rest
      | End -> (
        match stack with
        | (name, t0) :: stack' when name = ev.ev_name ->
          let dt = Int64.to_float (Int64.sub ev.ev_ts_ns t0) *. 1e-9 in
          let n, total =
            Option.value ~default:(0, 0.) (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name (n + 1, total +. dt);
          go stack' rest
        | _ -> go stack rest)
      | Instant -> go stack rest)
  in
  go [] (events sink);
  Hashtbl.fold
    (fun name (n, total) acc ->
      { st_name = name; st_count = n; st_total_s = total } :: acc)
    totals []
  |> List.sort (fun a b -> compare b.st_total_s a.st_total_s)

let pp_summary ppf sink =
  List.iter
    (fun st ->
      Fmt.pf ppf "  %-40s %8d x %12.6f s@." st.st_name st.st_count st.st_total_s)
    (span_totals sink);
  let d = dropped_events sink in
  if d > 0 then Fmt.pf ppf "  (%d events dropped at buffer cap)@." d
