(** Structured JSON-lines event stream (see obs_events.mli).  One JSON
    object per line, flushed per event when backed by a file, guarded by
    a mutex; emitters keep all ordering on a single writer domain so the
    sequence numbers are deterministic. *)

type severity = Debug | Info | Warn | Error

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type value = Int of int | Float of float | Str of string | Bool of bool

type recorder = {
  e_mu : Mutex.t;
  e_t0 : int64;
  e_ts : bool;
  e_oc : out_channel option;
  mutable e_seq : int;
  mutable e_rev : string list;  (* every emitted line, newest first *)
}

type sink = Disabled | Recording of recorder

let disabled = Disabled

let make ~ts oc =
  Recording
    {
      e_mu = Mutex.create ();
      e_t0 = Obs_clock.now_ns ();
      e_ts = ts;
      e_oc = oc;
      e_seq = 0;
      e_rev = [];
    }

let create ?(ts = true) () = make ~ts None
let to_file ?(ts = true) path = make ~ts (Some (open_out path))

let enabled = function Disabled -> false | Recording _ -> true

let close = function
  | Disabled -> ()
  | Recording r -> (
    match r.e_oc with None -> () | Some oc -> close_out oc)

(* Same minimal JSON escaping as the trace sink; obs has no JSON
   library. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_repr = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f || not (Float.is_finite f) then "null"
    else Printf.sprintf "%.12g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let emit sink ?(severity = Info) ~component ?(fields = []) event =
  match sink with
  | Disabled -> ()
  | Recording r ->
    Mutex.lock r.e_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock r.e_mu)
      (fun () ->
        let buf = Buffer.create 128 in
        Buffer.add_string buf (Printf.sprintf "{\"seq\": %d" r.e_seq);
        r.e_seq <- r.e_seq + 1;
        if r.e_ts then
          Buffer.add_string buf
            (Printf.sprintf ", \"ts_s\": %.6f"
               (Int64.to_float (Int64.sub (Obs_clock.now_ns ()) r.e_t0)
               *. 1e-9));
        Buffer.add_string buf
          (Printf.sprintf
             ", \"severity\": \"%s\", \"component\": \"%s\", \"event\": \"%s\""
             (severity_name severity) (escape component) (escape event));
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf ", \"%s\": %s" (escape k) (value_repr v)))
          fields;
        Buffer.add_char buf '}';
        let line = Buffer.contents buf in
        r.e_rev <- line :: r.e_rev;
        match r.e_oc with
        | None -> ()
        | Some oc ->
          output_string oc line;
          output_char oc '\n';
          (* Flush per event: the log must survive a kill with only the
             in-flight line lost, like the campaign journal. *)
          flush oc)

let lines = function
  | Disabled -> []
  | Recording r ->
    Mutex.lock r.e_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock r.e_mu)
      (fun () -> List.rev r.e_rev)

let count = function
  | Disabled -> 0
  | Recording r ->
    Mutex.lock r.e_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.e_mu) (fun () -> r.e_seq)
