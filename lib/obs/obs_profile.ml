(** Deterministic sampling profiler for the interpreter (see
    obs_profile.mli).

    The profiler is a call-tree trie plus a countdown.  [enter]/[leave]
    maintain the current trie node (one hash lookup per call, amortized
    by interning); [tick] decrements the countdown and, every
    [interval] executed steps, charges one sample to the current node.
    Nothing reads a clock, so two runs of the same program produce
    bit-identical profiles — the sample stream is a pure function of the
    executed instruction sequence. *)

type node = {
  n_id : int;           (* creation order; the deterministic merge order *)
  n_parent : int;       (* -1 for the root *)
  n_func : string;      (* "" for the root *)
  mutable n_count : int;
}

type t = {
  p_interval : int;
  mutable p_countdown : int;
  mutable p_samples : int;
  mutable p_next_id : int;
  p_by_id : (int, node) Hashtbl.t;
  p_children : (int * string, node) Hashtbl.t;
      (* (parent id, callee) -> node: the trie edges *)
  mutable p_stack : node list;  (* head = current node; empty = root *)
}

let default_interval = 1000

let create ?(interval = default_interval) () =
  if interval < 1 then
    invalid_arg "Obs_profile.create: interval must be >= 1";
  let root = { n_id = 0; n_parent = -1; n_func = ""; n_count = 0 } in
  let by_id = Hashtbl.create 64 in
  Hashtbl.replace by_id 0 root;
  {
    p_interval = interval;
    p_countdown = interval;
    p_samples = 0;
    p_next_id = 1;
    p_by_id = by_id;
    p_children = Hashtbl.create 64;
    p_stack = [];
  }

let interval t = t.p_interval
let samples t = t.p_samples

let root t = Hashtbl.find t.p_by_id 0

let current t = match t.p_stack with n :: _ -> n | [] -> root t

let child t parent fname =
  let key = (parent.n_id, fname) in
  match Hashtbl.find_opt t.p_children key with
  | Some n -> n
  | None ->
    let n =
      { n_id = t.p_next_id; n_parent = parent.n_id; n_func = fname;
        n_count = 0 }
    in
    t.p_next_id <- t.p_next_id + 1;
    Hashtbl.replace t.p_by_id n.n_id n;
    Hashtbl.replace t.p_children key n;
    n

let enter t fname = t.p_stack <- child t (current t) fname :: t.p_stack

let leave t =
  match t.p_stack with [] -> () | _ :: rest -> t.p_stack <- rest

let tick t =
  t.p_countdown <- t.p_countdown - 1;
  if t.p_countdown = 0 then begin
    t.p_countdown <- t.p_interval;
    t.p_samples <- t.p_samples + 1;
    let n = current t in
    n.n_count <- n.n_count + 1
  end

(* -- paths ---------------------------------------------------------------- *)

(* The root-to-node function path; the root itself contributes nothing. *)
let path_of t n =
  let rec up acc n =
    if n.n_parent < 0 then acc
    else up (n.n_func :: acc) (Hashtbl.find t.p_by_id n.n_parent)
  in
  up [] n

(* Nodes in creation order: the id is assigned on first visit, so this
   order is a deterministic function of the execution. *)
let nodes_in_order t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.p_by_id []
  |> List.sort (fun a b -> compare a.n_id b.n_id)

(* -- merging -------------------------------------------------------------- *)

let merge ~into src =
  if into.p_interval <> src.p_interval then
    invalid_arg
      (Printf.sprintf
         "Obs_profile.merge: interval mismatch (%d vs %d)"
         into.p_interval src.p_interval);
  into.p_samples <- into.p_samples + src.p_samples;
  List.iter
    (fun n ->
      if n.n_count > 0 then begin
        let dst =
          List.fold_left (fun parent f -> child into parent f) (root into)
            (path_of src n)
        in
        dst.n_count <- dst.n_count + n.n_count
      end)
    (nodes_in_order src)

(* -- snapshots ------------------------------------------------------------ *)

type row = { pr_func : string; pr_self : int; pr_total : int }

type snapshot = {
  ps_interval : int;
  ps_samples : int;
  ps_funcs : row list;                  (* self-samples descending *)
  ps_paths : (string list * int) list;  (* lexicographic path order *)
}

let snapshot t =
  let self : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let total : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let bump tbl f n =
    Hashtbl.replace tbl f (n + Option.value ~default:0 (Hashtbl.find_opt tbl f))
  in
  let paths = ref [] in
  List.iter
    (fun n ->
      if n.n_count > 0 then begin
        let path = path_of t n in
        (match path with
        | [] -> ()  (* samples on the root: outside any function *)
        | _ ->
          bump self (List.nth path (List.length path - 1)) n.n_count;
          (* Total cost counts a function once per path even when it
             recurses into itself. *)
          List.iter (fun f -> bump total f n.n_count)
            (List.sort_uniq compare path));
        paths := (path, n.n_count) :: !paths
      end)
    (nodes_in_order t);
  let funcs =
    Hashtbl.fold
      (fun f s acc ->
        { pr_func = f; pr_self = s;
          pr_total = Option.value ~default:s (Hashtbl.find_opt total f) }
        :: acc)
      self []
    |> List.sort (fun a b ->
           match compare b.pr_self a.pr_self with
           | 0 -> compare a.pr_func b.pr_func
           | c -> c)
  in
  {
    ps_interval = t.p_interval;
    ps_samples = t.p_samples;
    ps_funcs = funcs;
    ps_paths = List.sort compare !paths;
  }

(* -- exports -------------------------------------------------------------- *)

(* Collapsed-stacks text: "main;solve;spmv 42" per line, loadable by
   flamegraph.pl / speedscope / inferno.  Root samples render as
   "(root)". *)
let folded_of_snapshot s =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, count) ->
      let stack = match path with [] -> "(root)" | p -> String.concat ";" p in
      Buffer.add_string buf stack;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int count);
      Buffer.add_char buf '\n')
    s.ps_paths;
  Buffer.contents buf

let to_folded t = folded_of_snapshot (snapshot t)

let pp_table ?(top = 20) ppf s =
  Fmt.pf ppf "sampling profile: %d samples, 1 per %d steps@." s.ps_samples
    s.ps_interval;
  if s.ps_funcs <> [] then begin
    Fmt.pf ppf "%-36s %10s %10s %7s@." "function" "self" "total" "self%";
    let shown = ref 0 in
    List.iter
      (fun r ->
        if !shown < top then begin
          incr shown;
          Fmt.pf ppf "%-36s %10d %10d %6.1f%%@." r.pr_func r.pr_self r.pr_total
            (100. *. float_of_int r.pr_self
             /. float_of_int (max 1 s.ps_samples))
        end)
      s.ps_funcs;
    let rest = List.length s.ps_funcs - !shown in
    if rest > 0 then Fmt.pf ppf "  (%d more functions)@." rest
  end

(* The same tiny JSON escaping the trace sink uses; obs carries no JSON
   library. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The profile JSON schema; [json_fields] re-exports the field names and
   meanings for doc/OBSERVABILITY.md and its drift test. *)
let json_fields =
  [
    ("profile.interval", "steps between samples (the sampling period)");
    ("profile.samples", "samples taken = executed steps / interval");
    ("profile.funcs", "per-function rows: func, self, total sample counts");
    ("profile.paths", "per-callpath rows: stack (root first) and samples");
  ]

let to_json t =
  let s = snapshot t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"interval\": %d, \"samples\": %d, \"funcs\": ["
       s.ps_interval s.ps_samples);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"func\": \"%s\", \"self\": %d, \"total\": %d}"
           (escape r.pr_func) r.pr_self r.pr_total))
    s.ps_funcs;
  Buffer.add_string buf "], \"paths\": [";
  List.iteri
    (fun i (path, count) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "{\"stack\": [";
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape f)))
        path;
      Buffer.add_string buf (Printf.sprintf "], \"samples\": %d}" count))
    s.ps_paths;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
