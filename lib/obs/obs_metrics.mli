(** A metrics registry for the analysis pipeline itself: named counters,
    gauges, and fixed-bucket histograms.

    Instruments are interned by name: fetching a counter twice returns
    the same mutable cell, so hot paths resolve their instruments once at
    setup time and then pay a single unboxed increment per event.  Code
    that may run without a registry holds an [instrument option] (or a
    record of them) and matches on it — the [None] branch performs no
    allocation and no hashing, which is what keeps the interpreter's
    disabled path free. *)

type t
(** A registry: a namespace of counters, gauges, and histograms. *)

val create : unit -> t

(** {1 Counters} — monotonically increasing integer totals. *)

type counter

val counter : t -> string -> counter
(** Intern the counter named [name]; created at zero on first use. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-written (or accumulated) float values. *)

type gauge

val gauge : t -> string -> gauge
(** Intern the gauge named [name]; created unset (absent from
    snapshots until first written). *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** Keep the running maximum of the observed values. *)

(** {1 Histograms} — fixed upper-bound buckets plus an overflow bucket. *)

type histogram

val histogram : t -> ?bounds:float array -> string -> histogram
(** Intern the histogram named [name].  [bounds] are strictly increasing
    bucket upper bounds; values above the last bound land in the
    overflow bucket.  [bounds] is only consulted on first creation. *)

val observe : histogram -> float -> unit

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Fold one registry into another: counters add, written gauges add
    (accumulating-gauge semantics), histograms add bucket-wise (both
    sides must use the same bounds). Registries are single-domain —
    instruments are plain mutable cells — so parallel code gives each
    task a private registry and the submitting domain merges them back in
    task order, reproducing the serial float-accumulation order exactly. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_buckets : (float * int) list;  (** (upper bound, count) per bucket *)
  hs_overflow : int;
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** +inf when empty *)
  hs_max : float;  (** -inf when empty *)
}

type snapshot = {
  counters : (string * int) list;          (** sorted by name *)
  gauges : (string * float) list;          (** sorted; only written gauges *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : t -> snapshot
(** An immutable copy of the current registry contents. *)

val empty_snapshot : snapshot

val quantile : hist_snapshot -> float -> float
(** [quantile hs q] estimates the [q]-th quantile (0 to 1) by monotone
    linear interpolation within the bucket holding the q-th observation:
    the first bucket's lower edge is the observed minimum, the overflow
    bucket's upper edge the observed maximum, and the result is clamped
    to [[hs_min, hs_max]].  Returns [nan] on an empty histogram;
    [q <= 0] gives the minimum, [q >= 1] the maximum. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option

val counters_with_prefix : snapshot -> string -> (string * int) list
(** Counters whose name starts with [prefix], prefix stripped. *)

val pp_summary : snapshot Fmt.t
(** A compact text table: counters, then gauges, then histograms. *)
