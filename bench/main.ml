(** The experiment harness: one sub-command per table / figure / section
    of the paper's evaluation.  With no argument, every experiment runs in
    paper order and prints paper-reported versus measured results
    (recorded in EXPERIMENTS.md). *)

let experiments =
  [
    ("table2", "Table 2: two-phase function/loop pruning", Exp_table2.run);
    ("table3", "Table 3: per-parameter coverage", Exp_table3.run);
    ("deps", "A2: multiplicative vs additive dependencies", Exp_deps.run);
    ("fig3", "Figure 3: LULESH instrumentation overhead", Exp_fig3.run);
    ("fig4", "Figure 4: MILC instrumentation overhead", Exp_fig4.run);
    ("cost", "A3: core-hour cost of experiments", Exp_cost.run);
    ("quality", "B1: noise resilience", Exp_quality.run);
    ("noise", "Ablation: model correctness vs noise level", Exp_noise.run);
    ("intrusion", "B2: instrumentation intrusion", Exp_intrusion.run);
    ("fig5", "Figure 5 / C1: contention detection", Exp_fig5.run);
    ("c2", "C2: experiment-design validation", Exp_c2.run);
    ("ablation", "Ablations: control-flow taint / library DB / static phase", Exp_ablation.run);
    ("scaling", "Extension: scalability-bug hunt", Exp_scaling.run);
    ("minicg", "Appendix: third application (miniCG) end to end", Exp_minicg.run);
    ("catalog", "Model catalog: every fitted hybrid model", Exp_catalog.run);
    ("micro", "bechamel microbenchmarks", Micro.run);
    ("policy", "policy overhead: taint vs plain, interp vs compiled",
     (fun () -> Micro.policy_speedup ()));
    ("resilience", "campaign executor overhead and retry cost",
     Micro.resilience);
    ("parallel", "domain-pool speedup: campaign / search / fuzz at 1-8 jobs",
     Exp_parallel.run);
    ("shard", "distributed sharding: journal write + merge overhead, identity",
     Exp_shard.run);
    ("serve", "model serving: catalog hit latency vs cold fits, identity",
     Exp_serve.run);
  ]

let usage () =
  Fmt.pr "usage: bench/main.exe [experiment | --check-baseline [DIR]]@.@.experiments:@.";
  List.iter (fun (name, doc, _) -> Fmt.pr "  %-10s %s@." name doc) experiments;
  Fmt.pr "  %-10s %s@." "all" "run everything (default)";
  Fmt.pr "  %-10s %s@." "policy --engine both|compiled|interp"
    "restrict the policy experiment to one execution tier";
  Fmt.pr "  %-10s %s@." "--check-baseline"
    "compare BENCH_*.json in the cwd against committed baselines \
     (default dir: bench/baselines); nonzero exit on regression"

(* The regression gate: every baseline BENCH_*.json under [dir] must
   match the same-named result file in the cwd within its tolerance.
   Run the corresponding experiments first to produce the actuals. *)
let check_baseline dir =
  match Measure.Bench_report.check_dir ~dir ~actual_dir:"." () with
  | Error msg ->
    Fmt.epr "check-baseline: %s@." msg;
    exit 2
  | Ok checks ->
    Fmt.pr "%a@." Measure.Bench_report.pp_checks checks;
    if not (Measure.Bench_report.passed checks) then exit 1

let () =
  match Sys.argv with
  | [| _ |] | [| _; "all" |] ->
    List.iter (fun (_, _, run) -> run ()) experiments
  | [| _; "--check-baseline" |] -> check_baseline "bench/baselines"
  | [| _; "--check-baseline"; dir |] -> check_baseline dir
  | [| _; "policy"; "--engine"; tier |] -> (
    match tier with
    | "both" -> Micro.policy_speedup ~engine:`Both ()
    | "compiled" -> Micro.policy_speedup ~engine:`Compiled ()
    | "interp" | "interpreted" -> Micro.policy_speedup ~engine:`Interp ()
    | t ->
      Fmt.epr "unknown --engine %s (expected both, compiled or interp)@." t;
      exit 2)
  | [| _; name |] -> (
    match List.find_opt (fun (n, _, _) -> n = name) experiments with
    | Some (_, _, run) -> run ()
    | None ->
      (match name with "-h" | "--help" -> () | n -> Fmt.epr "unknown experiment %s@." n);
      usage ())
  | _ -> usage ()
