(** Section A3's cost accounting: core-hours of the full modeling
    experiment campaign under full versus taint-based selective
    instrumentation, plus the cost of the taint analysis itself. *)

let campaign app design = Measure.Experiment.run_design app Exp_common.machine design

let core_hours app ~mode ~designf =
  Measure.Experiment.core_hours (campaign app (designf ~mode))

let run () =
  Exp_common.section "A3: core-hour cost of the modeling experiments";
  Exp_common.paper_vs
    "LULESH: 20483 h (full) -> 547 h (taint-based), -97.3%%; MILC: 364 h -> \
     321 h, -13.4%%; taint analysis itself costs 1 h / 16 h";
  let lulesh_full =
    core_hours Apps.Lulesh_spec.app ~mode:Measure.Instrument.Full
      ~designf:Exp_common.lulesh_design
  in
  let lulesh_sel =
    core_hours Apps.Lulesh_spec.app
      ~mode:(Measure.Instrument.Selective (Lazy.force Exp_common.lulesh_selective))
      ~designf:Exp_common.lulesh_design
  in
  let milc_full =
    core_hours Apps.Milc_spec.app ~mode:Measure.Instrument.Full
      ~designf:Exp_common.milc_design
  in
  let milc_sel =
    core_hours Apps.Milc_spec.app
      ~mode:(Measure.Instrument.Selective (Lazy.force Exp_common.milc_selective))
      ~designf:Exp_common.milc_design
  in
  let reduction full sel = 100. *. (full -. sel) /. full in
  Exp_common.measured
    "LULESH: %.0f h (full) -> %.0f h (selective), -%.1f%%" lulesh_full
    lulesh_sel
    (reduction lulesh_full lulesh_sel);
  Exp_common.measured "MILC:   %.0f h (full) -> %.0f h (selective), -%.1f%%"
    milc_full milc_sel
    (reduction milc_full milc_sel);
  (* Cost of the taint analysis: one interpreted run at a small
     configuration. *)
  let la = Lazy.force Exp_common.lulesh_analysis in
  let ma = Lazy.force Exp_common.milc_analysis in
  Exp_common.measured
    "taint analysis: one run at a small configuration (%d / %d interpreted \
     instructions) — negligible next to the experiment savings"
    la.Perf_taint.Pipeline.steps ma.Perf_taint.Pipeline.steps;
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"cost"
    [
      ("lulesh_full_core_hours", J.Float lulesh_full);
      ("lulesh_selective_core_hours", J.Float lulesh_sel);
      ("lulesh_reduction_pct", J.Float (reduction lulesh_full lulesh_sel));
      ("milc_full_core_hours", J.Float milc_full);
      ("milc_selective_core_hours", J.Float milc_sel);
      ("milc_reduction_pct", J.Float (reduction milc_full milc_sel));
      ("lulesh_taint_steps", J.Int la.Perf_taint.Pipeline.steps);
      ("milc_taint_steps", J.Int ma.Perf_taint.Pipeline.steps);
    ]
