(** Noise-level ablation: B1 as a curve.  The paper argues measurement
    noise is what drives black-box Extra-P to wrong models while the taint
    prior is structural and immune; sweeping the simulated noise level
    makes that quantitative — black-box accuracy decays with sigma,
    tainted accuracy stays flat. *)

let accuracy_at sigma =
  let t = Lazy.force Exp_common.lulesh_analysis in
  let selective = Lazy.force Exp_common.lulesh_selective in
  let design =
    {
      Measure.Experiment.grid =
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ];
      reps = 5;
      mode = Measure.Instrument.Selective selective;
      sigma;
      seed = 42;
    }
  in
  let kernels = Measure.Instrument.SSet.elements selective in
  let _, datasets =
    Exp_common.run_and_collect Apps.Lulesh_spec.app design
      ~params:[ "p"; "size" ] ~kernels
  in
  let verdicts =
    Exp_quality.evaluate t Apps.Lulesh_spec.app ~model_params:[ "p"; "size" ]
      datasets
  in
  let sound, black_ok, tainted_ok = Exp_quality.summarize verdicts in
  let all = List.length verdicts in
  let count f = List.length (List.filter f verdicts) in
  ( all,
    List.length sound,
    black_ok,
    tainted_ok,
    count (fun v -> v.Exp_quality.v_black_ok),
    count (fun v -> v.Exp_quality.v_tainted_ok) )

let run () =
  Exp_common.section "Noise ablation: model correctness vs noise level";
  Exp_common.paper_vs
    "the impact of noise grows with the number of parameters and drives \
     black-box false dependencies (B1, Ritter et al.); the taint prior is \
     structural and unaffected";
  Fmt.pr "  %6s | %5s %9s %7s (CoV<=0.1) | %9s %7s (all %s)@." "sigma"
    "sound" "black-box" "tainted" "black-box" "tainted" "functions";
  let rows =
    List.map
      (fun sigma ->
        let all, sound, bs, ts, ba, ta = accuracy_at sigma in
        Fmt.pr "  %6.3f | %5d %9d %7d            | %9d %7d (of %d)@." sigma
          sound bs ts ba ta all;
        (sigma, all, sound, bs, ts, ba, ta))
      [ 0.005; 0.02; 0.05; 0.10; 0.20 ]
  in
  Exp_common.note "at sigma >= 0.1 no dataset passes the CoV soundness filter";
  Exp_common.note
    "unfiltered: tainted models hold at ~40/41 across every noise level;"
;
  Exp_common.note
    "black-box both invents false dependencies and (at extreme noise) loses true ones";
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"noise"
    [
      ( "levels",
        J.List
          (List.map
             (fun (sigma, all, sound, bs, ts, ba, ta) ->
               J.Obj
                 [
                   ("sigma", J.Float sigma);
                   ("functions", J.Int all);
                   ("sound", J.Int sound);
                   ("black_box_sound_correct", J.Int bs);
                   ("tainted_sound_correct", J.Int ts);
                   ("black_box_all_correct", J.Int ba);
                   ("tainted_all_correct", J.Int ta);
                 ])
             rows) );
    ]

