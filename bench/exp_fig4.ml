(** Figure 4: MILC instrumentation overhead — the C-code counterpoint to
    Figure 3: the default filter provides little benefit over full
    instrumentation, while the taint-based selection is nearly free. *)

let run () =
  Exp_common.section
    "Figure 4: MILC instrumentation overhead (full / default / selective)";
  Exp_common.paper_vs
    "geometric mean overheads: 1.6%% selective, 23%% full and default \
     (default provides little to no benefit for C code)";
  let series =
    Exp_fig3.overhead_series Apps.Milc_spec.app
      (Lazy.force Exp_common.milc_selective)
      ~p_values:Apps.Milc_spec.p_values
      ~size_values:[ 32.; 128.; 512. ]
  in
  Exp_fig3.print_series series;
  let full, dflt, sel = Exp_fig3.series_stats series in
  let pct xs = 100. *. (Exp_common.geomean xs -. 1.) in
  Exp_common.measured
    "geometric mean overheads — selective: %.1f%%, full: %.1f%%, default: \
     %.1f%%"
    (pct sel) (pct full) (pct dflt);
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"fig4"
    [
      ("selective_geomean_overhead_pct", J.Float (pct sel));
      ("full_geomean_overhead_pct", J.Float (pct full));
      ("default_geomean_overhead_pct", J.Float (pct dflt));
    ]
