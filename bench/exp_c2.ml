(** C2: validating the experiment design.  MILC's gather layer switches
    algorithm at a rank-count threshold, so measurements spanning the
    threshold mix two qualitatively different behaviors and no single
    PMNF expression fits them well.  Tainted runs at each configuration
    expose the parameter-dependent branch flip. *)

module E = Model.Expr

let analyze_at p =
  Perf_taint.Pipeline.analyze
    ~world:{ Mpi_sim.Runtime.ranks = p; rank = 0 }
    Apps.Milc.program ~args:Apps.Milc.taint_args

let fit_gather ~p_values =
  let d =
    {
      Measure.Experiment.grid =
        [ ("p", p_values); ("size", [ 128. ]); ("r", [ 8. ]) ];
      reps = 5;
      mode = Measure.Instrument.Selective (Lazy.force Exp_common.milc_selective);
      sigma = 0.02;
      seed = 11;
    }
  in
  let runs =
    Measure.Experiment.run_design Apps.Milc_spec.app Exp_common.machine d
  in
  let data =
    Measure.Experiment.kernel_dataset runs ~params:[ "p" ] ~kernel:"start_gather"
  in
  Model.Search.multi data

let run () =
  Exp_common.section "C2: experiment-design validation (MILC gather)";
  Exp_common.paper_vs
    "communication routines behave qualitatively differently on 4-8 ranks \
     vs larger counts; models spanning the change cannot fit; expanded \
     taint analysis reports the branches that flip";
  (* Branch-coverage comparison across taint runs at different p. *)
  let runs = List.map analyze_at [ 4; 8; 16; 32 ] in
  let findings =
    Perf_taint.Validation.validate_design ~model_params:[ "p" ] runs
  in
  Exp_common.measured "%d parameter-dependent branches flip across p in {4,8,16,32}:"
    (List.length findings);
  List.iter
    (fun (f : Perf_taint.Validation.design_finding) ->
      let behavior args =
        List.assoc args (f.df_behaviors)
        |> Perf_taint.Validation.behavior_name
      in
      ignore behavior;
      Fmt.pr "    %s/%s depends on {%s}: %s@." f.df_func f.df_block
        (String.concat "," f.df_params)
        (String.concat " "
           (List.map
              (fun (_, b) -> Perf_taint.Validation.behavior_name b)
              f.df_behaviors)))
    findings;
  (* Model fit quality across vs within the behavioral regimes. *)
  let across = fit_gather ~p_values:[ 4.; 8.; 16.; 32.; 64. ] in
  let small = fit_gather ~p_values:[ 2.; 4.; 6.; 8. ] in
  let large = fit_gather ~p_values:[ 16.; 32.; 64.; 128. ] in
  Exp_common.measured
    "start_gather fit error (SMAPE): %.1f%% across the switch vs %.1f%% / \
     %.1f%% within each regime"
    across.Model.Search.error small.Model.Search.error
    large.Model.Search.error;
  Exp_common.measured "across-regimes model: %s"
    (E.to_string across.Model.Search.model);
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"c2"
    [
      ("flipping_branches", J.Int (List.length findings));
      ("across_smape_pct", J.Float across.Model.Search.error);
      ("small_regime_smape_pct", J.Float small.Model.Search.error);
      ("large_regime_smape_pct", J.Float large.Model.Search.error);
      ("across_model", J.Str (E.to_string across.Model.Search.model));
    ]
