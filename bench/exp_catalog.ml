(** The model catalog: every fitted hybrid model for both paper
    applications with quality statistics — the artefact a performance
    engineer actually consumes (Extra-P's per-function output), plus the
    JSON export exercised end to end. *)

let catalog name (t : Perf_taint.Pipeline.t) app ~selective ~designf
    ~model_params ~aliases ~config =
  let design = designf ~mode:(Measure.Instrument.Selective selective) in
  let runs = Measure.Experiment.run_design app Exp_common.machine design in
  let entries =
    List.filter_map
      (fun fname ->
        let data =
          Measure.Experiment.kernel_dataset runs ~params:model_params
            ~kernel:fname
        in
        if data.Model.Dataset.points = [] then None
        else
          let c =
            Perf_taint.Modeling.constraints_aliased t
              Perf_taint.Modeling.Tainted ~model_params ~aliases fname
          in
          let r = Model.Search.multi ~config ~constraints:c data in
          Some (fname, r, data))
      (Measure.Instrument.SSet.elements selective)
  in
  Fmt.pr "  %s (%d functions):@." name (List.length entries);
  List.iter
    (fun (fname, (r : Model.Search.result), data) ->
      let st = Model.Stats.summarize r.Model.Search.model data in
      Fmt.pr "    %-36s %-52s R2=%.3f SMAPE=%.1f%%@." fname
        (Model.Expr.to_string r.Model.Search.model)
        st.Model.Stats.s_r2 r.Model.Search.error)
    entries;
  (* The JSON export of the same catalog (checked, not printed). *)
  let json = Perf_taint.Export.models_json entries in
  let len = String.length (Perf_taint.Export.to_string json) in
  Exp_common.note "JSON export: %d bytes (Export.models_json)" len;
  let smapes =
    List.map (fun (_, (r : Model.Search.result), _) -> r.Model.Search.error)
      entries
  in
  let mean xs =
    List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))
  in
  (List.length entries, len, mean smapes)

let run () =
  Exp_common.section "Model catalog: every fitted hybrid model";
  let l_funcs, l_bytes, l_smape =
    catalog "lulesh"
      (Lazy.force Exp_common.lulesh_analysis)
      Apps.Lulesh_spec.app
      ~selective:(Lazy.force Exp_common.lulesh_selective)
      ~designf:Exp_common.lulesh_design ~model_params:[ "p"; "size" ]
      ~aliases:[] ~config:Model.Search.default_config
  in
  let m_funcs, m_bytes, m_smape =
    catalog "milc"
      (Lazy.force Exp_common.milc_analysis)
      Apps.Milc_spec.app
      ~selective:(Lazy.force Exp_common.milc_selective)
      ~designf:Exp_common.milc_design ~model_params:[ "p"; "size" ]
      ~aliases:Exp_common.milc_aliases ~config:Model.Search.extended_config
  in
  let module J = Measure.Jsonio in
  let app name funcs bytes smape =
    J.Obj
      [
        ("app", J.Str name);
        ("modeled_functions", J.Int funcs);
        ("json_bytes", J.Int bytes);
        ("mean_smape_pct", J.Float smape);
      ]
  in
  Exp_common.emit_json ~name:"catalog"
    [
      ( "apps",
        J.List
          [ app "lulesh" l_funcs l_bytes l_smape;
            app "milc" m_funcs m_bytes m_smape ] );
    ]
