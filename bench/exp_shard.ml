(** Extension experiment: what distributed sharding costs and what it
    buys.  The same faulty campaign is executed serially in one process
    and split over in-process shard "workers" (each journaling its
    subset, then merged) — the merge result is structurally compared
    against the serial reference before any time is reported, the same
    pay-for-wall-clock-never-for-answers policy as the parallel
    experiment.  The reported overhead is the full journal round trip:
    per-shard journal writes, parse-back, header validation, dedup, and
    design-order reassembly. *)

module Exp = Measure.Experiment
module Camp = Measure.Campaign
module Shard = Measure.Shard
module Fault = Measure.Fault
module Instr = Measure.Instrument
module J = Measure.Jsonio

let machine = Mpi_sim.Machine.skylake_cluster
let shard_axis = [ 1; 2; 4; 8 ]

let best_of n f =
  let r = ref None and best = ref infinity in
  for _ = 1 to n do
    let v, dt = Obs_clock.with_timer f in
    if dt < !best then best := dt;
    r := Some v
  done;
  (Option.get !r, !best)

let run () =
  Exp_common.section "shard: journal write + merge overhead, identity";
  let design =
    { Exp.grid =
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ];
      reps = 5; mode = Instr.Full; sigma = 0.02; seed = 42 }
  in
  let app = Apps.Lulesh_spec.app in
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  let plan =
    { Fault.none with
      Fault.fp_seed = 11; fp_crash = 0.05; fp_hang = 0.03; fp_persistent = 0.;
      fp_transient_attempts = 2 }
  in
  let header = Camp.header_line ~app_name:app.Measure.Spec.aname ~plan ~retry design in
  let reference, t1 =
    best_of 3 (fun () -> Camp.run ~plan ~retry app machine design)
  in
  let base = Filename.temp_file "bench-shard" ".jsonl" in
  let mismatches = ref 0 in
  let sharded shards =
    let paths = List.init shards (Shard.journal_path ~journal:base) in
    let round () =
      List.iteri
        (fun k path ->
          if Sys.file_exists path then Sys.remove path;
          let t = { Shard.sh_index = k; sh_count = shards } in
          ignore
            (Camp.run_journaled ~plan ~retry
               ~keep:(fun params rep -> Shard.owns t ~params ~rep)
               ~journal:path ~resume:false app machine design))
        paths;
      match
        Shard.merge_journals ~mode:design.Exp.mode ~expected_header:header
          ~design paths
      with
      | Error e -> failwith e
      | Ok mg -> mg.Shard.mg_records
    in
    let records, t = best_of 3 round in
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
    (records, t)
  in
  let rows =
    List.map
      (fun m ->
        let records, t = sharded m in
        let ok = compare records reference.Camp.cp_records = 0 in
        if not ok then incr mismatches;
        let overhead = (t -. t1) /. t1 *. 100. in
        Fmt.pr
          "  shards=%d  %9.6f s  journal+merge overhead %6.2f%%%s@." m t
          overhead
          (if ok then "" else "  << NOT BIT-IDENTICAL TO SERIAL");
        J.Obj
          [
            ("shards", J.Int m);
            ("seconds", J.Float t);
            ("overhead_pct", J.Float overhead);
            ("identical", J.Bool ok);
          ])
      shard_axis
  in
  (try Sys.remove base with Sys_error _ -> ());
  Exp_common.note "serial reference: %.6f s, %d records" t1
    (List.length reference.Camp.cp_records);
  Exp_common.emit_json ~name:"shard"
    [
      ("serial_seconds", J.Float t1);
      ("records", J.Int (List.length reference.Camp.cp_records));
      ("runs", J.List rows);
    ];
  if !mismatches > 0 then begin
    Fmt.epr "shard: %d merge(s) were not bit-identical to serial@."
      !mismatches;
    exit 1
  end
