(** B2: measurement intrusion.  The model of CalcQForElems derived from
    fully instrumented runs differs *qualitatively* from the model derived
    from selectively instrumented runs: the intrusion of hooks turns the
    true multiplicative dependency c * p^0.25 * size^3 into an apparent
    additive one, 3e-3 * p^0.5 + 1e-5 * size^3. *)

module E = Model.Expr

let fit_from_mode ~mode =
  let design = Exp_common.lulesh_design ~mode in
  let runs =
    Measure.Experiment.run_design Apps.Lulesh_spec.app Exp_common.machine design
  in
  let data =
    Measure.Experiment.kernel_dataset runs ~params:[ "p"; "size" ]
      ~kernel:"calc_q_for_elems"
  in
  (Model.Search.multi data, runs)

let run () =
  Exp_common.section "B2: instrumentation intrusion changes models qualitatively";
  Exp_common.paper_vs
    "CalcQForElems: full instrumentation yields the additive model \
     3e-3*p^0.5 + 1e-5*size^3; selective instrumentation yields the \
     multiplicative 2.4e-8*p^0.25*size^3 (validated against prior work); \
     runtimes under full instrumentation are ~2 orders of magnitude larger";
  let full_fit, full_runs = fit_from_mode ~mode:Measure.Instrument.Full in
  let sel_fit, sel_runs =
    fit_from_mode
      ~mode:(Measure.Instrument.Selective (Lazy.force Exp_common.lulesh_selective))
  in
  Exp_common.measured "full instrumentation model:      %s"
    (E.to_string full_fit.Model.Search.model);
  Exp_common.measured "selective instrumentation model: %s"
    (E.to_string sel_fit.Model.Search.model);
  let interaction m = E.has_interaction m "p" "size" in
  Exp_common.measured
    "multiplicative p x size dependency: full=%b selective=%b (paper: \
     false / true)"
    (interaction full_fit.Model.Search.model)
    (interaction sel_fit.Model.Search.model);
  (* Mean measured CalcQForElems time inflation under full instrumentation. *)
  let mean_per_call runs =
    let ts =
      List.filter_map
        (fun r -> Measure.Simulator.kernel_time r "calc_q_for_elems")
        runs
    in
    List.fold_left ( +. ) 0. ts /. float_of_int (max 1 (List.length ts))
  in
  Exp_common.measured
    "measured CalcQForElems per-call time: %.3g s (full) vs %.3g s \
     (selective): %.0fx inflation"
    (mean_per_call full_runs) (mean_per_call sel_runs)
    (mean_per_call full_runs /. mean_per_call sel_runs);
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"intrusion"
    [
      ("full_model", J.Str (E.to_string full_fit.Model.Search.model));
      ("selective_model", J.Str (E.to_string sel_fit.Model.Search.model));
      ("full_interaction", J.Bool (interaction full_fit.Model.Search.model));
      ( "selective_interaction",
        J.Bool (interaction sel_fit.Model.Search.model) );
      ("full_per_call_s", J.Float (mean_per_call full_runs));
      ("selective_per_call_s", J.Float (mean_per_call sel_runs));
      ( "inflation_factor",
        J.Float (mean_per_call full_runs /. mean_per_call sel_runs) );
    ]
