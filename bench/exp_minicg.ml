(** Appendix: the full pipeline on a third application (miniCG), showing
    the method is not tuned to the paper's two benchmarks — analysis,
    dependency structure, hybrid models against ground truth, and the
    strong-scaling crossover between SpMV and the reductions. *)

module E = Model.Expr

let analysis =
  lazy
    (Perf_taint.Pipeline.analyze ~world:Apps.Minicg.taint_world
       Apps.Minicg.program ~args:Apps.Minicg.taint_args)

let run () =
  Exp_common.section "Appendix: miniCG end to end (third application)";
  let t = Lazy.force analysis in
  let ov =
    Perf_taint.Report.overview t ~model_params:Apps.Minicg.model_params
  in
  Fmt.pr "  %a@." Perf_taint.Report.pp_overview ov;
  (* Key dependency facts. *)
  Exp_common.measured "spmv deps = {%s}; n x nnz multiplicative: %b"
    (String.concat ","
       (Ir.Cfg.SSet.elements (Perf_taint.Deps.params t.deps "spmv")))
    (Perf_taint.Deps.multiplicative_ok t.deps "spmv" "n" "nnz");
  Exp_common.measured "maxit is a global factor: %b"
    (Perf_taint.Design.is_global_factor t "maxit");
  (* Hybrid models vs ground truth on a (p, n) campaign. *)
  let selective =
    Measure.Instrument.SSet.of_list
      (Perf_taint.Pipeline.relevant_functions t
         ~model_params:Apps.Minicg.model_params
      @ Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used t))
  in
  let design =
    {
      Measure.Experiment.grid =
        [ ("p", Apps.Minicg_spec.p_values); ("n", Apps.Minicg_spec.n_values);
          ("r", [ 8. ]) ];
      reps = 5;
      mode = Measure.Instrument.Selective selective;
      sigma = 0.02;
      seed = 23;
    }
  in
  let runs =
    Measure.Experiment.run_design Apps.Minicg_spec.app Exp_common.machine
      design
  in
  let fit fname =
    let data =
      Measure.Experiment.kernel_dataset runs ~params:[ "p"; "n" ] ~kernel:fname
    in
    let c =
      Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
        ~model_params:[ "p"; "n" ] fname
    in
    Model.Search.multi ~config:Model.Search.extended_config ~constraints:c data
  in
  List.iter
    (fun fname ->
      let r = fit fname in
      Fmt.pr "    %-24s %s  (SMAPE %.1f%%)@." fname
        (E.to_string r.Model.Search.model)
        r.Model.Search.error)
    [ "spmv"; "dot_product"; "axpy"; "exchange_halo"; "mpi_allreduce" ];
  (* B1-style quality accounting on the third app. *)
  let _ =
    (* The third-app study opts into the acceptance margin: both modes
       then refuse sub-10%-improvement parametric fits. *)
    Exp_quality.campaign
      ~config:{ Model.Search.extended_config with min_improvement = 0.1 } t
      Apps.Minicg_spec.app ~selective
      ~designf:(fun ~mode ->
        {
          Measure.Experiment.grid =
            [ ("p", Apps.Minicg_spec.p_values);
              ("n", Apps.Minicg_spec.n_values); ("r", [ 8. ]) ];
          reps = 5;
          mode;
          sigma = 0.02;
          seed = 23;
        })
      ~model_params:[ "p"; "n" ] ~aliases:[]
  in
  (* The strong-scaling crossover: at what p do the log p reductions
     overtake the shrinking SpMV?  Project with the fitted models. *)
  let spmv = (fit "spmv").Model.Search.model in
  let dot = (fit "dot_product").Model.Search.model in
  let crossover =
    List.find_opt
      (fun p ->
        E.eval dot [ ("p", p); ("n", 1.0e6) ]
        > E.eval spmv [ ("p", p); ("n", 1.0e6) ])
      [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096. ]
  in
  (match crossover with
  | Some p ->
    Exp_common.measured
      "projected crossover at n=1e6: reductions overtake SpMV around p=%.0f"
      p
  | None ->
    Exp_common.measured
      "no crossover below p=4096 at n=1e6 (SpMV stays dominant)");
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"minicg"
    [
      ( "spmv_deps",
        J.List
          (List.map
             (fun p -> J.Str p)
             (Ir.Cfg.SSet.elements (Perf_taint.Deps.params t.deps "spmv"))) );
      ( "spmv_n_nnz_multiplicative",
        J.Bool (Perf_taint.Deps.multiplicative_ok t.deps "spmv" "n" "nnz") );
      ( "maxit_global_factor",
        J.Bool (Perf_taint.Design.is_global_factor t "maxit") );
      ("spmv_model", J.Str (E.to_string spmv));
      ("dot_model", J.Str (E.to_string dot));
      ( "crossover_p",
        match crossover with Some p -> J.Float p | None -> J.Null );
    ];
  (* Ground truth: spmv per call = 1.2e-9 * 27 * n/p; dot per call =
     4e-10 * n/p + 2 * lat * log2 p.  Crossover where they meet. *)
  Exp_common.note
    "(analytic truth: crossover where 3.2e-8*n/p = 4e-10*n/p + 3e-6*log2 p)"
