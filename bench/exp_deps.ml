(** A2: parameter dependencies for experiment design.  The taint analysis
    distinguishes multiplicative from additive parameter pairs; additive
    pairs can be sampled with decoupled one-dimensional designs, and a
    parameter that multiplies everything (LULESH's iters) can be dropped
    from the sampling space entirely. *)

module SSet = Ir.Cfg.SSet

let run () =
  Exp_common.section "A2: multiplicative vs additive parameter dependencies";
  Exp_common.paper_vs
    "LULESH: iters appears once, in the main loop, and is therefore \
     multiplicative with every other parameter — the sample-space \
     dimensionality can be reduced by fixing it";
  let t = Lazy.force Exp_common.lulesh_analysis in
  (* Where does iters appear directly? *)
  let direct = Perf_taint.Pipeline.functions_affected_by t "iters" in
  Exp_common.measured "iters taints loops in: %s" (String.concat ", " direct);
  let iters_loops = Perf_taint.Pipeline.loops_affected_by t "iters" in
  Exp_common.measured "iters affects %d loop(s) directly" iters_loops;
  (* How many functions have an iters-multiplicative dependency through
     the enclosing time loop? *)
  let module SMap = Ir.Cfg.SMap in
  let mult_with_iters =
    SMap.fold
      (fun fname (fd : Perf_taint.Deps.func_deps) acc ->
        if
          List.exists
            (fun (a, b) -> a = "iters" || b = "iters")
            fd.fd_multiplicative
        then fname :: acc
        else acc)
      t.deps []
  in
  Exp_common.measured
    "%d functions inherit a multiplicative iters dependency through the \
     time loop -> iters scales the entire computation linearly and can be \
     fixed during sampling"
    (List.length mult_with_iters);
  (* Additive pairs: decoupled designs. *)
  let additive_report =
    SMap.fold
      (fun fname fd acc ->
        match Perf_taint.Deps.additive_pairs fd with
        | [] -> acc
        | pairs ->
          (fname,
           List.map (fun (a, b) -> Printf.sprintf "%s+%s" a b) pairs)
          :: acc)
      t.deps []
    |> List.sort compare
  in
  Exp_common.measured "functions with additive-only pairs (decoupled designs):";
  List.iter
    (fun (fname, prs) ->
      Fmt.pr "    %-36s %s@." fname (String.concat " " prs))
    (List.filteri (fun i _ -> i < 8) additive_report);
  (* Experiment-count arithmetic via the design planner. *)
  let axes =
    List.map
      (fun param ->
        { Perf_taint.Design.param; values = [ 1.; 2.; 3.; 4.; 5. ] })
      (SSet.elements (Perf_taint.Pipeline.observed_params t))
  in
  let plan = Perf_taint.Design.propose t ~axes ~reps:1 in
  Exp_common.measured "design plan from the taint results:";
  Fmt.pr "    @[<v>%a@]@." Perf_taint.Design.pp_plan plan;
  Exp_common.measured
    "the paper's study narrows further to the 2 broadest parameters \
     (p, size): 25 runs";
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"deps"
    [
      ("iters_direct_functions", J.List (List.map (fun f -> J.Str f) direct));
      ("iters_direct_loops", J.Int iters_loops);
      ("multiplicative_with_iters", J.Int (List.length mult_with_iters));
      ("additive_only_functions", J.Int (List.length additive_report));
    ]
