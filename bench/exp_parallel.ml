(** Extension experiment: multicore wall-clock of the three stages that
    run on the {!Par.Pool} domain scheduler — measurement campaigns,
    model-candidate scoring, and fuzz checking — at 1/2/4/8 workers.

    Every parallel run is structurally compared against the serial
    reference *before* its time is reported: the pool is allowed to buy
    wall-clock, never different answers, so a mismatch fails the whole
    experiment.  Speedups are hardware-dependent; on a single-core
    container every ratio sits near 1.0x and the efficiency column shows
    only the scheduling tax.  CI runners with real cores are where the
    headline numbers come from. *)

module Exp = Measure.Experiment
module Camp = Measure.Campaign
module Fault = Measure.Fault
module Instr = Measure.Instrument
module J = Measure.Jsonio

let machine = Mpi_sim.Machine.skylake_cluster
let jobs_axis = [ 1; 2; 4; 8 ]

(* Best-of-N: the minimum over repetitions is the robust estimator
   against scheduler noise (same policy as the micro benchmarks). *)
let best_of n f =
  let r = ref None and best = ref infinity in
  for _ = 1 to n do
    let v, dt = Obs_clock.with_timer f in
    if dt < !best then best := dt;
    r := Some v
  done;
  (Option.get !r, !best)

let mismatches = ref 0

(* One stage: time the serial closure, then the pooled closure at each
   point of the jobs axis, comparing results structurally each time.
   jobs=1 is reported from the serial reference run itself — that is
   literally the code path --jobs 1 takes. *)
let stage ~reps name serialf parf =
  let reference, t1 = best_of reps serialf in
  let rows =
    List.map
      (fun j ->
        if j = 1 then (1, t1, true)
        else
          Par.Pool.with_pool ~jobs:j (fun pool ->
              let v, t = best_of reps (fun () -> parf pool) in
              (j, t, compare reference v = 0)))
      jobs_axis
  in
  Fmt.pr "  %s:@." name;
  List.iter
    (fun (j, t, ok) ->
      let s = t1 /. t in
      if not ok then incr mismatches;
      Fmt.pr "    jobs=%d  %9.6f s  speedup %5.2fx  efficiency %3.0f%%%s@." j t
        s
        (s /. float_of_int j *. 100.)
        (if ok then "" else "  << NOT BIT-IDENTICAL TO SERIAL"))
    rows;
  ( name,
    List.map
      (fun (j, t, ok) ->
        J.Obj
          [
            ("jobs", J.Int j);
            ("seconds", J.Float t);
            ("speedup", J.Float (t1 /. t));
            ("efficiency", J.Float (t1 /. t /. float_of_int j));
            ("identical", J.Bool ok);
          ])
      rows )

let run () =
  Exp_common.section "parallel: domain-pool speedup at 1/2/4/8 workers";
  let design =
    { Exp.grid =
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ];
      reps = 5; mode = Instr.Full; sigma = 0.02; seed = 42 }
  in
  let app = Apps.Lulesh_spec.app in
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  let plan =
    { Fault.none with
      Fault.fp_seed = 11; fp_crash = 0.05; fp_hang = 0.03; fp_persistent = 0.;
      fp_transient_attempts = 2 }
  in
  let campaign =
    stage ~reps:3 "campaign (lulesh, 5% transient faults)"
      (fun () -> Camp.run ~plan ~retry app machine design)
      (fun pool -> Camp.run ~pool ~plan ~retry app machine design)
  in
  (* Model search scores every candidate hypothesis against the same
     dataset — the classic embarrassingly parallel inner loop. *)
  let runs = Exp.run_design app machine design in
  let data = Exp.total_dataset runs ~params:[ "p"; "size" ] in
  let search =
    stage ~reps:5 "model search (robust total fit, extended hypothesis space)"
      (fun () ->
        Model.Search.multi_robust ~config:Model.Search.extended_config data)
      (fun pool ->
        Model.Search.multi_robust
          ~config:{ Model.Search.extended_config with Model.Search.pool = Some pool }
          data)
  in
  (* Fuzzing: the program-shaped oracles only (the campaign-shaped ones
     spawn their own pools, which belongs to the fuzz suite, not a
     timing harness). Generation is serial either way; checks fan out. *)
  let oracles =
    [ Fuzz.Oracle.printer_roundtrip; Fuzz.Oracle.validator_interp;
      Fuzz.Oracle.tripcount; Fuzz.Oracle.taint_vs_plain;
      Fuzz.Oracle.coverage_consistency ]
  in
  let fuzz =
    stage ~reps:3 "fuzz checking (5 oracles, 60 programs)"
      (fun () -> Fuzz.Driver.run_campaign ~oracles ~seed:7 ~budget:60 ())
      (fun pool ->
        Fuzz.Driver.run_campaign ~pool ~oracles ~seed:7 ~budget:60 ())
  in
  let cores =
    match Sys.getenv_opt "NPROC" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> Domain.recommended_domain_count ()
  in
  Exp_common.note "host reports %d recommended domain(s)" cores;
  Exp_common.emit_json ~name:"parallel"
    [
      ("recommended_domains", J.Int cores);
      ( "stages",
        J.List
          (List.map
             (fun (name, rows) ->
               J.Obj [ ("stage", J.Str name); ("runs", J.List rows) ])
             [ campaign; search; fuzz ]) );
    ];
  if !mismatches > 0 then begin
    Fmt.epr "parallel: %d run(s) were not bit-identical to serial@."
      !mismatches;
    exit 1
  end
