(** Figure 5 / C1: hardware-contention detection.  Keep p = 64 and
    size = 30 fixed and sweep the number of ranks per node r from 2 to 18.
    The taint analysis proves no function depends on r, yet the
    measurements of memory-bound kernels grow — the white-box pipeline
    flags the contradiction as an external (hardware) effect, which
    black-box modeling cannot distinguish from application behavior. *)

module E = Model.Expr

let r_values = [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18. ]

let design ~mode =
  {
    Measure.Experiment.grid =
      [ ("p", [ 64. ]); ("size", [ 30. ]); ("r", r_values) ];
    reps = 5;
    mode;
    sigma = 0.02;
    seed = 7;
  }

let run () =
  Exp_common.section "Figure 5 / C1: detecting hardware contention";
  Exp_common.paper_vs
    "application time grows from 130 s to 195 s (+50%%); total model \
     2.86*log2^2(r) + 127; 31 of 73 functions show an increasing model \
     although taint proves they cannot depend on the rank placement";
  let t = Lazy.force Exp_common.lulesh_analysis in
  let selective = Lazy.force Exp_common.lulesh_selective in
  let d = design ~mode:(Measure.Instrument.Selective selective) in
  let runs =
    Measure.Experiment.run_design Apps.Lulesh_spec.app Exp_common.machine d
  in
  (* Whole-application model over r. *)
  let total = Measure.Experiment.total_dataset runs ~params:[ "r" ] in
  let total_fit = Model.Search.multi total in
  let at r = E.eval total_fit.Model.Search.model [ ("r", r) ] in
  Exp_common.measured "application time: %.0f s (r=2) -> %.0f s (r=18), %+.0f%%"
    (at 2.) (at 18.)
    (100. *. (at 18. -. at 2.) /. at 2.);
  Exp_common.measured "whole-application model: %s"
    (E.to_string total_fit.Model.Search.model);
  (* Per-function datasets over r; contention detection via the taint
     contradiction. *)
  let kernels = Measure.Instrument.SSet.elements selective in
  let datasets =
    List.filter_map
      (fun k ->
        let data = Measure.Experiment.kernel_dataset runs ~params:[ "r" ] ~kernel:k in
        if data.Model.Dataset.points = [] then None else Some (k, data))
      kernels
  in
  let findings = Perf_taint.Validation.detect_contention t datasets in
  Exp_common.measured
    "%d of %d measured functions have a statistically sound increasing \
     model although taint excludes a dependency on r -> contention detected"
    (List.length findings) (List.length datasets);
  List.iter
    (fun (f : Perf_taint.Validation.contention_finding) ->
      Fmt.pr "    %-36s %s@." f.cf_func (E.to_string f.cf_model))
    (List.filteri (fun i _ -> i < 6) findings);
  if List.length findings > 6 then
    Fmt.pr "    ... and %d more@." (List.length findings - 6);
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"fig5"
    [
      ("time_at_r2_s", J.Float (at 2.));
      ("time_at_r18_s", J.Float (at 18.));
      ("growth_pct", J.Float (100. *. (at 18. -. at 2.) /. at 2.));
      ("total_model", J.Str (E.to_string total_fit.Model.Search.model));
      ("contention_findings", J.Int (List.length findings));
      ("measured_functions", J.Int (List.length datasets));
    ]
