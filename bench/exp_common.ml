(** Shared infrastructure for the experiment reproductions: the analysis
    runs (memoised), selective-instrumentation sets, experiment designs,
    and table printing. *)

module SSet = Measure.Instrument.SSet

let machine = Mpi_sim.Machine.skylake_cluster

(* -- memoised taint analyses ---------------------------------------------- *)

let lulesh_analysis =
  lazy
    (Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
       Apps.Lulesh.program ~args:Apps.Lulesh.taint_args)

let milc_analysis =
  lazy
    (Perf_taint.Pipeline.analyze ~world:Apps.Milc.taint_world
       Apps.Milc.program ~args:Apps.Milc.taint_args)

(* MILC models in (p, size) while the program's parameters are the four
   lattice extents. *)
let milc_aliases = [ ("size", [ "nx"; "ny"; "nz"; "nt" ]) ]

(** Taint-derived instrumentation selection: the relevant application
    functions plus the MPI routines they use. *)
let selective_set (t : Perf_taint.Pipeline.t) ~model_params =
  let funcs = Perf_taint.Pipeline.relevant_functions t ~model_params in
  let mpi =
    Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used t)
  in
  SSet.of_list (funcs @ mpi)

let lulesh_selective =
  lazy
    (selective_set (Lazy.force lulesh_analysis)
       ~model_params:Apps.Lulesh.all_params)

let milc_selective =
  lazy
    (selective_set (Lazy.force milc_analysis) ~model_params:Apps.Milc.all_params)

(* -- experiment designs ---------------------------------------------------- *)

(** The paper's 5x5 grid with 5 repetitions; ranks-per-node pinned to 8 so
    that hardware contention stays constant across the design (the paper
    notes models are hardware-independent only at such saturation levels). *)
let design ?(reps = 5) ?(sigma = 0.02) ?(seed = 42) ~mode ~p_values
    ~size_values () =
  {
    Measure.Experiment.grid =
      [ ("p", p_values); ("size", size_values); ("r", [ 8. ]) ];
    reps;
    mode;
    sigma;
    seed;
  }

let lulesh_design ~mode =
  design ~mode ~p_values:Apps.Lulesh_spec.p_values
    ~size_values:Apps.Lulesh_spec.size_values ()

let milc_design ~mode =
  design ~mode ~p_values:Apps.Milc_spec.p_values
    ~size_values:Apps.Milc_spec.size_values ()

(* -- machine-readable output ------------------------------------------------ *)

(** Write an experiment's headline numbers as [BENCH_<name>.json] in the
    working directory, next to the human-readable log, so CI can archive
    and diff them without scraping text.  The journal's JSON writer is
    reused — floats are printed with ["%.17g"] and survive a round trip
    bit-for-bit. *)
let emit_json ~name fields =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let v =
    Measure.Jsonio.Obj (("experiment", Measure.Jsonio.Str name) :: fields)
  in
  let oc = open_out file in
  output_string oc (Measure.Jsonio.to_string v);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "    machine-readable: %s@." file

(* -- formatting ------------------------------------------------------------ *)

let section title =
  Fmt.pr "@.=== %s ===@." title

let note fmt = Fmt.pr ("    " ^^ fmt ^^ "@.")

let paper_vs fmt = Fmt.pr ("  paper:    " ^^ fmt ^^ "@.")
let measured fmt = Fmt.pr ("  measured: " ^^ fmt ^^ "@.")

let geomean = function
  | [] -> 0.
  | xs ->
    exp (List.fold_left (fun a x -> a +. Float.log (Float.max 1e-12 x)) 0. xs
         /. float_of_int (List.length xs))

(** Run an experiment design and return runs plus per-kernel datasets. *)
let run_and_collect app design ~params ~kernels =
  let runs = Measure.Experiment.run_design app machine design in
  let datasets =
    List.filter_map
      (fun k ->
        let d = Measure.Experiment.kernel_dataset runs ~params ~kernel:k in
        if d.Model.Dataset.points = [] then None else Some (k, d))
      kernels
  in
  (runs, datasets)
