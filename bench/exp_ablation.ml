(** Ablation studies of the design choices DESIGN.md calls out:

    1. Control-flow tainting off (plain DFSan, no extension): which
       dependencies disappear?  The paper's Section 5.2 argues the
       extension is necessary for real applications — the LULESH region
       loops are the canonical example.
    2. The MPI library database off: communication routines lose their
       implicit dependency on p, so every comm model silently degrades to
       constant.
    3. The static phase off: how much work the dynamic phase would have to
       shoulder alone (every helper would need a tainted-run visit to be
       pruned). *)

module SSet = Ir.Cfg.SSet
module SMap = Ir.Cfg.SMap

let analyze ?(control_flow = true) program args world =
  let config =
    { Interp.Machine.default_config with control_flow_taint = control_flow }
  in
  Perf_taint.Pipeline.analyze ~config ~world program ~args

let dep_diff (full : Perf_taint.Pipeline.t) (ablated : Perf_taint.Pipeline.t) =
  SMap.fold
    (fun fname (fd : Perf_taint.Deps.func_deps) acc ->
      let ab = Perf_taint.Deps.params ablated.deps fname in
      let missed = SSet.diff fd.Perf_taint.Deps.fd_params ab in
      if SSet.is_empty missed then acc else (fname, missed) :: acc)
    full.deps []
  |> List.sort compare

let control_flow_ablation () =
  Exp_common.note "-- ablation 1: control-flow tainting off --";
  List.map
    (fun (name, program, args, world) ->
      let full = analyze program args world in
      let ablated = analyze ~control_flow:false program args world in
      let missed = dep_diff full ablated in
      Exp_common.measured
        "%s: without control-flow tainting, %d functions lose dependencies:"
        name (List.length missed);
      List.iter
        (fun (fname, params) ->
          Fmt.pr "    %-36s loses {%s}@." fname
            (String.concat "," (SSet.elements params)))
        missed;
      (name, List.length missed))
    [ ("lulesh", Apps.Lulesh.program, Apps.Lulesh.taint_args,
       Apps.Lulesh.taint_world);
      ("milc", Apps.Milc.program, Apps.Milc.taint_args, Apps.Milc.taint_world)
    ]

let library_db_ablation () =
  Exp_common.note "-- ablation 2: MPI library database off --";
  let t = Lazy.force Exp_common.lulesh_analysis in
  let affected =
    SMap.fold
      (fun fname (fd : Perf_taint.Deps.func_deps) acc ->
        let only_comm =
          SSet.diff fd.Perf_taint.Deps.fd_comm_params
            fd.Perf_taint.Deps.fd_loop_params
        in
        if SSet.is_empty only_comm then acc
        else (fname, only_comm) :: acc)
      t.deps []
    |> List.sort compare
  in
  Exp_common.measured
    "lulesh: without the library database, %d functions would lose their \
     communication dependencies (and be misclassified constant):"
    (List.length affected);
  List.iter
    (fun (fname, params) ->
      Fmt.pr "    %-36s loses {%s}@." fname
        (String.concat "," (SSet.elements params)))
    affected;
  List.length affected

let static_phase_ablation () =
  Exp_common.note "-- ablation 3: static phase off --";
  List.map
    (fun (name, t) ->
      let t : Perf_taint.Pipeline.t = Lazy.force t in
      let statically_pruned =
        t.static.Static_an.Classify.pruned_functions
      in
      (* Without the static phase, only *executed* constant functions can
         be pruned (by the dynamic phase); the rest must be conservatively
         instrumented. *)
      let executed_constant =
        List.filter
          (fun (f : Ir.Types.func) ->
            Static_an.Classify.is_pruned t.static f.Ir.Types.fname
            && Perf_taint.Pipeline.executed t f.Ir.Types.fname)
          t.program.Ir.Types.funcs
        |> List.length
      in
      Exp_common.measured
        "%s: static phase prunes %d functions at zero runtime cost; the \
         dynamic phase alone could only prune the %d of them that the \
         taint run happens to execute"
        name statically_pruned executed_constant;
      (name, statically_pruned, executed_constant))
    [ ("lulesh", Exp_common.lulesh_analysis); ("milc", Exp_common.milc_analysis) ]

let run () =
  Exp_common.section "Ablations: control-flow taint, library database, static phase";
  let cf = control_flow_ablation () in
  let db_affected = library_db_ablation () in
  let static = static_phase_ablation () in
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"ablation"
    [
      ( "control_flow_losses",
        J.List
          (List.map
             (fun (name, n) ->
               J.Obj [ ("app", J.Str name); ("functions_losing_deps", J.Int n) ])
             cf) );
      ("library_db_affected", J.Int db_affected);
      ( "static_phase",
        J.List
          (List.map
             (fun (name, pruned, executed) ->
               J.Obj
                 [
                   ("app", J.Str name);
                   ("statically_pruned", J.Int pruned);
                   ("dynamic_only_prunable", J.Int executed);
                 ])
             static) );
    ]
