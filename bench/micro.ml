(** Bechamel microbenchmarks of the infrastructure itself: taint-label
    operations, a full tainted run of a didactic program, trip-count
    analysis, and PMNF model search. *)

module Sim = Measure.Simulator
module Instr = Measure.Instrument
module Exp = Measure.Experiment
module Camp = Measure.Campaign
module Fault = Measure.Fault

(* [open Bechamel] below shadows [Measure] (bechamel ships a module of
   that name), so the JSON writer needs its alias taken here. *)
module J = Measure.Jsonio

open Bechamel
open Toolkit

let label_union_test =
  Test.make ~name:"label-union"
    (Staged.stage (fun () ->
         let tbl = Taint.Label.create () in
         let a = Taint.Label.base tbl "a" in
         let b = Taint.Label.base tbl "b" in
         let c = Taint.Label.base tbl "c" in
         let ab = Taint.Label.union tbl a b in
         ignore (Taint.Label.union tbl ab c)))

let tainted_run_test =
  Test.make ~name:"tainted-run-iterate"
    (Staged.stage (fun () ->
         let m = Interp.Machine.create Apps.Didactic.iterate_example in
         ignore (Interp.Machine.run m [ Ir.Types.VInt 10; Ir.Types.VInt 2 ])))

(* The same program through the Plain (shadow-free) policy: the gap to
   the tainted run above is the interpreter-level instrumentation
   overhead the paper's one-tainted-run economy avoids paying per
   measurement. *)
let plain_run_test =
  Test.make ~name:"plain-run-iterate"
    (Staged.stage (fun () ->
         let m = Interp.Plain.create Apps.Didactic.iterate_example in
         ignore (Interp.Plain.run m [ Ir.Types.VInt 10; Ir.Types.VInt 2 ])))

(* Same run with per-instruction metrics on: the pair quantifies the
   observability overhead (the disabled path above must stay flat). *)
let tainted_run_metrics_test =
  Test.make ~name:"tainted-run-iterate-metrics"
    (Staged.stage (fun () ->
         let reg = Obs_metrics.create () in
         let m =
           Interp.Machine.create ~metrics:reg Apps.Didactic.iterate_example
         in
         ignore (Interp.Machine.run m [ Ir.Types.VInt 10; Ir.Types.VInt 2 ])))

let counter_incr_test =
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg "bench.counter" in
  Test.make ~name:"obs-counter-incr"
    (Staged.stage (fun () -> Obs_metrics.incr c))

let trace_span_test =
  let sink = Obs_trace.create () in
  Test.make ~name:"obs-trace-span"
    (Staged.stage (fun () ->
         Obs_trace.span_begin sink "bench";
         Obs_trace.span_end sink "bench"))

let tripcount_test =
  Test.make ~name:"static-tripcount-lulesh"
    (Staged.stage (fun () ->
         List.iter
           (fun f -> ignore (Static_an.Tripcount.analyze_function f))
           Apps.Lulesh.program.Ir.Types.funcs))

let pmnf_search_test =
  let samples =
    List.map (fun x -> (x, 1. +. (0.5 *. x *. sqrt x))) [ 4.; 8.; 16.; 32.; 64. ]
  in
  Test.make ~name:"pmnf-single-search"
    (Staged.stage (fun () -> ignore (Model.Search.single ~param:"p" samples)))

let full_analysis_test =
  Test.make ~name:"full-taint-analysis-lulesh"
    (Staged.stage (fun () ->
         ignore
           (Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
              Apps.Lulesh.program ~args:Apps.Lulesh.taint_args)))

let simulator_test =
  Test.make ~name:"simulated-run-lulesh"
    (Staged.stage (fun () ->
         ignore
           (Sim.measure Apps.Lulesh_spec.app Mpi_sim.Machine.skylake_cluster
              ~params:[ ("p", 64.); ("size", 30.) ]
              ~mode:Instr.Full)))

let tests =
  Test.make_grouped ~name:"perf-taint"
    [ label_union_test; tainted_run_test; plain_run_test;
      tainted_run_metrics_test; counter_incr_test; trace_span_test;
      tripcount_test; pmnf_search_test; simulator_test; full_analysis_test ]

(* -- taint vs plain policy overhead on the mini-app kernels ---------------- *)

(* Best-of-N wall timing of an interleaved pair: the minimum over
   repetitions is the standard robust estimator against scheduler noise,
   and alternating the two variants makes both sample the same noise
   environment so the ratio survives load drift. *)
let best_of_pair n f g =
  let time h = snd (Obs_clock.with_timer h) in
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to n do
    let dt = time f in
    if dt < !bf then bf := dt;
    let dt = time g in
    if dt < !bg then bg := dt
  done;
  (!bf, !bg)

let policy_kernels =
  [
    ("lulesh", Apps.Lulesh.program, Apps.Lulesh.taint_args,
     Apps.Lulesh.taint_world);
    ("minicg", Apps.Minicg.program, Apps.Minicg.taint_args,
     Apps.Minicg.taint_world);
  ]

(* One fresh engine per run, so the compiled tier pays its lowering cost
   inside the timed region — the fair comparison for one-shot analyses. *)
let engine_runner (type a) (module E : Interp.Engine.S with type t = a)
    program args world () =
  let m = E.create program in
  Mpi_sim.Runtime.install_host (module E) world m;
  ignore (E.run m args)

let pr_geomean = Exp_common.geomean

(* The instrumentation-overhead story (paper Table 3) on our substrate,
   now crossed with the execution tier: each mini-app runs under the
   Taint and Plain policies on both the tree-walking interpreter and the
   slot-resolved compiled engine.  [`Both] reports the compiled-over-
   interpreted speedup per policy; a single tier reports the classic
   taint-vs-plain overhead within that tier. *)
let policy_speedup ?(engine = `Both) () =
  let tier_label = function
    | `Both -> "interp vs compiled"
    | `Compiled -> "compiled tier"
    | `Interp -> "interpreted tier"
  in
  Exp_common.section
    (Printf.sprintf "policy overhead: taint vs plain (%s)" (tier_label engine));
  let series (name, program, args, world) =
    let ti = engine_runner (module Interp.Machine) program args world in
    let tc = engine_runner (module Interp.Compiled.Taint) program args world in
    let pi = engine_runner (module Interp.Plain) program args world in
    let pc = engine_runner (module Interp.Compiled.Plain) program args world in
    (* Warm up allocators and caches, then start timing from a compact
       heap: the bechamel phase above leaves major-GC debt behind that
       would otherwise be paid unevenly across the timed runs. *)
    ti (); tc (); pi (); pc ();
    Gc.compact ();
    (name, ti, tc, pi, pc)
  in
  match engine with
  | (`Compiled | `Interp) as tier ->
    (* Single-tier view: the classic taint-vs-plain overhead table. *)
    let rows =
      List.map
        (fun kernel ->
          let name, ti, tc, pi, pc = series kernel in
          let taint, plain =
            match tier with `Compiled -> (tc, pc) | `Interp -> (ti, pi)
          in
          let tt, tp = best_of_pair 9 taint plain in
          Fmt.pr "  %-10s taint %9.6f s   plain %9.6f s   speedup %.2fx@."
            name tt tp (tt /. tp);
          (name, tt, tp))
        policy_kernels
    in
    let geomean = pr_geomean (List.map (fun (_, tt, tp) -> tt /. tp) rows) in
    Fmt.pr "  plain-policy speedup over taint (geomean): %.2fx@." geomean;
    Exp_common.emit_json ~name:"policy"
      [
        ( "engine",
          J.Str (match tier with `Compiled -> "compiled" | `Interp -> "interp")
        );
        ( "kernels",
          J.List
            (List.map
               (fun (name, tt, tp) ->
                 J.Obj
                   [
                     ("kernel", J.Str name);
                     ("taint_s", J.Float tt);
                     ("plain_s", J.Float tp);
                     ("speedup", J.Float (tt /. tp));
                   ])
               rows) );
        ("geomean_speedup", J.Float geomean);
      ]
  | `Both ->
    (* Cross-tier view: pair each policy's interpreted run against its
       compiled run so the tier speedup is measured under shared noise. *)
    let rows =
      List.map
        (fun kernel ->
          let name, ti, tc, pi, pc = series kernel in
          let tti, ttc = best_of_pair 9 ti tc in
          let tpi, tpc = best_of_pair 9 pi pc in
          Fmt.pr
            "  %-10s taint  interp %9.6f s   compiled %9.6f s   speedup \
             %5.2fx@."
            name tti ttc (tti /. ttc);
          Fmt.pr
            "  %-10s plain  interp %9.6f s   compiled %9.6f s   speedup \
             %5.2fx@."
            "" tpi tpc (tpi /. tpc);
          (name, tti, ttc, tpi, tpc))
        policy_kernels
    in
    let g_taint = pr_geomean (List.map (fun (_, ti, tc, _, _) -> ti /. tc) rows)
    and g_plain = pr_geomean (List.map (fun (_, _, _, pi, pc) -> pi /. pc) rows)
    and g_overhead =
      pr_geomean (List.map (fun (_, _, tc, _, pc) -> tc /. pc) rows)
    in
    Fmt.pr "  compiled-over-interp speedup (geomean): plain %.2fx, taint \
            %.2fx@."
      g_plain g_taint;
    Fmt.pr "  taint-over-plain overhead on the compiled tier (geomean): \
            %.2fx@."
      g_overhead;
    Exp_common.emit_json ~name:"policy"
      [
        ("engine", J.Str "both");
        ( "kernels",
          J.List
            (List.map
               (fun (name, tti, ttc, tpi, tpc) ->
                 J.Obj
                   [
                     ("kernel", J.Str name);
                     ("taint_interp_s", J.Float tti);
                     ("taint_compiled_s", J.Float ttc);
                     ("plain_interp_s", J.Float tpi);
                     ("plain_compiled_s", J.Float tpc);
                     ("taint_speedup", J.Float (tti /. ttc));
                     ("plain_speedup", J.Float (tpi /. tpc));
                   ])
               rows) );
        ("geomean_plain_speedup", J.Float g_plain);
        ("geomean_taint_speedup", J.Float g_taint);
        ("geomean_taint_over_plain", J.Float g_overhead);
        ("plain_target_met", J.Bool (g_plain >= 5.));
        ("taint_target_met", J.Bool (g_taint >= 2.));
      ]

(* -- campaign executor overhead and retry cost ----------------------------- *)

(* The resilient executor's two costs, measured separately: (1) the pure
   bookkeeping overhead of running a fault-free design through
   [Campaign.run] instead of [Experiment.run_design] (the executor is
   bit-identical in output, so any gap is pure harness tax), and (2) the
   wall-clock and simulated core-hour price of retrying through ~10%
   transient faults. *)
let resilience () =
  Exp_common.section "resilience: campaign overhead and retry cost";
  let machine = Mpi_sim.Machine.skylake_cluster in
  let app = Apps.Lulesh_spec.app in
  let design =
    { Exp.grid =
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ];
      reps = 5; mode = Instr.Full; sigma = 0.02; seed = 42 }
  in
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  let faulty_plan =
    { Fault.none with
      Fault.fp_seed = 11; fp_crash = 0.05; fp_hang = 0.05; fp_persistent = 0.;
      fp_transient_attempts = 2 }
  in
  let design_only () = ignore (Exp.run_design app machine design) in
  let campaign plan () =
    ignore (Camp.run ~plan ~retry app machine design)
  in
  design_only ();
  campaign Fault.none ();
  Gc.compact ();
  let t_design, t_clean = best_of_pair 9 design_only (campaign Fault.none) in
  Fmt.pr
    "  run_design %9.6f s   fault-free campaign %9.6f s   overhead %+.1f%%@."
    t_design t_clean
    ((t_clean /. t_design -. 1.) *. 100.);
  let t_faultfree, t_faulty =
    best_of_pair 5 (campaign Fault.none) (campaign faulty_plan)
  in
  let report = Camp.run ~plan:faulty_plan ~retry app machine design in
  Fmt.pr
    "  10%% transient faults: %d attempts for %d runs (%d retries), wall \
     %.2fx fault-free@."
    report.Camp.cp_attempts
    (List.length report.Camp.cp_runs)
    report.Camp.cp_retries
    (t_faulty /. t_faultfree);
  Fmt.pr
    "  simulated waste: %.1f core-hours burned, %.1f core-hours of backoff@."
    report.Camp.cp_wasted_core_hours report.Camp.cp_backoff_core_hours;
  Exp_common.emit_json ~name:"resilience"
    [
      ("run_design_s", J.Float t_design);
      ("clean_campaign_s", J.Float t_clean);
      ("executor_overhead_pct", J.Float ((t_clean /. t_design -. 1.) *. 100.));
      ("faulty_wall_ratio", J.Float (t_faulty /. t_faultfree));
      ("attempts", J.Int report.Camp.cp_attempts);
      ("completed_runs", J.Int (List.length report.Camp.cp_runs));
      ("retries", J.Int report.Camp.cp_retries);
      ("wasted_core_hours", J.Float report.Camp.cp_wasted_core_hours);
      ("backoff_core_hours", J.Float report.Camp.cp_backoff_core_hours);
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

let run () =
  Exp_common.section "microbenchmarks (bechamel)";
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Fmt.pr "  %-32s %12.1f ns/run@." name est;
        rows := (name, est) :: !rows
      | Some ests ->
        Fmt.pr "  %-32s %a@." name Fmt.(list ~sep:comma float) ests
      | None -> Fmt.pr "  %-32s (no estimate)@." name)
    results;
  (* Hashtbl order is unspecified: sort by name so the JSON is stable. *)
  Exp_common.emit_json ~name:"micro"
    [
      ( "benchmarks",
        J.List
          (List.map
             (fun (name, est) ->
               J.Obj [ ("name", J.Str name); ("ns_per_run", J.Float est) ])
             (List.sort compare !rows)) );
    ];
  policy_speedup ()
