(** Figure 3: Score-P instrumentation overhead for LULESH under full,
    default, and taint-based selective instrumentation, across rank counts
    and problem sizes. *)

let modes t =
  [
    ("full", Measure.Instrument.Full);
    ("default", Measure.Instrument.Default);
    ("selective", Measure.Instrument.Selective t);
  ]

let overhead_series app selective ~p_values ~size_values =
  List.map
    (fun size ->
      ( size,
        List.map
          (fun p ->
            let params = [ ("p", p); ("size", size); ("r", 8.) ] in
            let row =
              List.map
                (fun (name, mode) ->
                  let run =
                    Measure.Simulator.measure app Exp_common.machine ~params
                      ~mode
                  in
                  (name, Measure.Simulator.overhead run))
                (modes selective)
            in
            (p, row))
          p_values ))
    size_values

let print_series series =
  List.iter
    (fun (size, rows) ->
      Fmt.pr "  size=%g@." size;
      List.iter
        (fun (p, row) ->
          Fmt.pr "    p=%4g  %a@." p
            Fmt.(
              list ~sep:(any "  ")
                (fun ppf (name, ov) -> pf ppf "%s=%+7.1f%%" name (100. *. ov)))
            row)
        rows)
    series

let series_stats series =
  let collect name =
    List.concat_map
      (fun (_, rows) ->
        List.filter_map
          (fun (_, row) ->
            Option.map (fun ov -> 1. +. ov) (List.assoc_opt name row))
          rows)
      series
  in
  (collect "full", collect "default", collect "selective")

let run () =
  Exp_common.section
    "Figure 3: LULESH instrumentation overhead (full / default / selective)";
  Exp_common.paper_vs
    "full instrumentation slows LULESH down by up to 45x; selective \
     instrumentation removes nearly all of it; default misses relevant \
     functions";
  let series =
    overhead_series Apps.Lulesh_spec.app
      (Lazy.force Exp_common.lulesh_selective)
      ~p_values:Apps.Lulesh_spec.p_values
      ~size_values:[ 25.; 30.; 45. ]
  in
  print_series series;
  let full, dflt, sel = series_stats series in
  Exp_common.measured
    "slowdown factors — full: up to %.1fx (geomean %.1fx); default: geomean \
     %.2fx; selective: geomean %.2fx"
    (List.fold_left Float.max 1. full)
    (Exp_common.geomean full) (Exp_common.geomean dflt)
    (Exp_common.geomean sel);
  (* The default filter's false negatives: relevant functions it skips. *)
  let t = Lazy.force Exp_common.lulesh_analysis in
  let relevant =
    Perf_taint.Pipeline.relevant_functions t
      ~model_params:Apps.Lulesh.model_params
  in
  let missed =
    List.filter
      (fun name ->
        match
          List.find_opt
            (fun (k : Measure.Spec.kernel) -> k.Measure.Spec.kname = name)
            Apps.Lulesh_spec.app.Measure.Spec.kernels
        with
        | Some k -> k.Measure.Spec.tiny
        | None -> false)
      relevant
  in
  Exp_common.measured
    "default filter misses %d of %d performance-relevant functions: %s"
    (List.length missed) (List.length relevant)
    (String.concat ", " missed);
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"fig3"
    [
      ("full_max_slowdown", J.Float (List.fold_left Float.max 1. full));
      ("full_geomean_slowdown", J.Float (Exp_common.geomean full));
      ("default_geomean_slowdown", J.Float (Exp_common.geomean dflt));
      ("selective_geomean_slowdown", J.Float (Exp_common.geomean sel));
      ("default_missed_relevant", J.Int (List.length missed));
      ("relevant_functions", J.Int (List.length relevant));
    ]
