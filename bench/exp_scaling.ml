(** Scalability-bug hunting (the SC'13 use case the paper's introduction
    cites as a primary application of empirical models): fit hybrid
    models from the standard LULESH campaign, extrapolate every function
    to an exascale-style rank count, and rank by projected share.  The
    communication routines — invisible in the measured range — climb the
    ranking because of their sqrt(p)/log(p) terms. *)

let run () =
  Exp_common.section
    "Extension: scalability-bug hunt with the fitted models";
  let t = Lazy.force Exp_common.lulesh_analysis in
  let selective = Lazy.force Exp_common.lulesh_selective in
  let design =
    Exp_common.lulesh_design ~mode:(Measure.Instrument.Selective selective)
  in
  let runs =
    Measure.Experiment.run_design Apps.Lulesh_spec.app Exp_common.machine
      design
  in
  let models =
    List.filter_map
      (fun fname ->
        let data =
          Measure.Experiment.kernel_dataset runs ~params:[ "p"; "size" ]
            ~kernel:fname
        in
        if data.Model.Dataset.points = [] then None
        else
          let c =
            Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
              ~model_params:[ "p"; "size" ] fname
          in
          let r = Model.Search.multi ~constraints:c data in
          Some (fname, r.Model.Search.model))
      (Measure.Instrument.SSet.elements selective)
  in
  let baseline = [ ("p", 64.); ("size", 30.) ] in
  let target = [ ("p", 1048576.); ("size", 30.) ] in
  let ranking = Perf_taint.Scaling.rank ~baseline ~target models in
  Exp_common.measured
    "projections from p=64 to p=2^20 at size=30 (per-invocation time):";
  List.iteri
    (fun i e ->
      if i < 8 then Fmt.pr "    %a@." Perf_taint.Scaling.pp_entry e)
    ranking.Perf_taint.Scaling.entries;
  let bugs =
    Perf_taint.Scaling.bugs ~share:0.2 ~measured_below:0.05 ranking
  in
  Exp_common.measured
    "%d function(s) below 5%% of time at p=64 but above 20%% at p=2^20:"
    (List.length bugs);
  List.iter
    (fun (e : Perf_taint.Scaling.entry) ->
      Fmt.pr "    %s (share %.1f%% -> %.1f%%)@." e.e_func
        (100. *. e.e_share_measured)
        (100. *. e.e_share_projected))
    bugs;
  let module J = Measure.Jsonio in
  Exp_common.emit_json ~name:"scaling"
    [
      ("modeled_functions", J.Int (List.length models));
      ("scalability_bugs", J.Int (List.length bugs));
      ( "bugs",
        J.List
          (List.map
             (fun (e : Perf_taint.Scaling.entry) ->
               J.Obj
                 [
                   ("func", J.Str e.e_func);
                   ("share_measured", J.Float e.e_share_measured);
                   ("share_projected", J.Float e.e_share_projected);
                 ])
             bugs) );
    ];
  (* Model-quality statistics for the top kernels. *)
  Exp_common.note "model quality of the top kernels (stats module):";
  List.iter
    (fun fname ->
      let data =
        Measure.Experiment.kernel_dataset runs ~params:[ "p"; "size" ]
          ~kernel:fname
      in
      match List.assoc_opt fname models with
      | Some m when data.Model.Dataset.points <> [] ->
        Fmt.pr "    %-32s %a@." fname Model.Stats.pp_summary
          (Model.Stats.summarize m data)
      | _ -> ())
    [ "integrate_stress_for_elems"; "calc_q_for_elems"; "comm_reduce_dt" ]
