(** Table 3: per-parameter coverage — how many computational kernels and
    loops each parameter affects, and the combined (p, size) column that
    the paper uses to argue for the two-parameter model choice. *)

let print_app name (t : Perf_taint.Pipeline.t) ~params ~combined =
  Fmt.pr "  %s:@." name;
  List.iter
    (fun (r : Perf_taint.Report.coverage_row) ->
      Fmt.pr "    %-10s functions=%3d loops=%3d@." r.cov_param r.cov_functions
        r.cov_loops)
    (Perf_taint.Report.coverage t ~params);
  let f, l = Perf_taint.Report.combined_coverage t ~params:combined in
  Fmt.pr "    %-10s functions=%3d loops=%3d@."
    (String.concat "," combined) f l

let run () =
  Exp_common.section "Table 3: per-parameter kernel and loop coverage";
  Exp_common.paper_vs
    "LULESH: size affects 40 functions / 78 loops, p only 2/2; iters 4/4, \
     regions 13/27, balance 9/20, cost 2/2; (p,size) covers all 40/78";
  Exp_common.paper_vs
    "MILC: p 54/187, size 53/161, trajecs 12/39, warms+steps 9/31, \
     niter 6/15, mass,beta 1/1, nflavors/u0 4/7; (p,size) covers 56/196";
  let lulesh = Lazy.force Exp_common.lulesh_analysis in
  let milc = Lazy.force Exp_common.milc_analysis in
  print_app "lulesh" lulesh
    ~params:[ "p"; "size"; "regions"; "iters"; "balance"; "cost" ]
    ~combined:[ "p"; "size" ];
  print_app "milc" milc
    ~params:
      [ "p"; "nx"; "ny"; "nz"; "nt"; "trajecs"; "warms"; "steps"; "niter";
        "mass"; "beta"; "nflavors"; "u0" ]
    ~combined:[ "p"; "nx"; "ny"; "nz"; "nt" ];
  Exp_common.note
    "the selection criterion reproduces: size/p give the broadest coverage \
     in LULESH, p and the domain extents dominate MILC";
  (* The paper's parameter-pruning claim: every parameter the experts
     identified is found, and no spurious parameter appears. *)
  let observed =
    Ir.Cfg.SSet.elements (Perf_taint.Pipeline.observed_params milc)
  in
  Exp_common.measured "MILC parameters detected: %s"
    (String.concat ", " observed);
  let module J = Measure.Jsonio in
  let coverage_json t ~params ~combined =
    let rows =
      List.map
        (fun (r : Perf_taint.Report.coverage_row) ->
          J.Obj
            [
              ("param", J.Str r.cov_param);
              ("functions", J.Int r.cov_functions);
              ("loops", J.Int r.cov_loops);
            ])
        (Perf_taint.Report.coverage t ~params)
    in
    let f, l = Perf_taint.Report.combined_coverage t ~params:combined in
    J.Obj
      [
        ("rows", J.List rows);
        ("combined_functions", J.Int f);
        ("combined_loops", J.Int l);
      ]
  in
  Exp_common.emit_json ~name:"table3"
    [
      ( "lulesh",
        coverage_json lulesh
          ~params:[ "p"; "size"; "regions"; "iters"; "balance"; "cost" ]
          ~combined:[ "p"; "size" ] );
      ( "milc",
        coverage_json milc
          ~params:
            [ "p"; "nx"; "ny"; "nz"; "nt"; "trajecs"; "warms"; "steps";
              "niter"; "mass"; "beta"; "nflavors"; "u0" ]
          ~combined:[ "p"; "nx"; "ny"; "nz"; "nt" ] );
      ("milc_params_detected", J.List (List.map (fun p -> J.Str p) observed));
    ]
