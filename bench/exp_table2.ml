(** Table 2: the two-phase identification of computational kernels,
    communication routines and MPI functions, and the loop pruning
    statistics, for LULESH and MILC. *)

let paper_rows =
  (* app, functions, pruned static/dynamic, kernels/comm/mpi,
     loops, loops pruned static, loops relevant *)
  [
    ("lulesh", 356, 296, 11, 40, 2, 7, 275, 52, 78);
    ("milc", 629, 364, 188, 56, 13, 8, 874, 96, 196);
  ]

let row (t : Perf_taint.Pipeline.t) ~model_params =
  Perf_taint.Report.overview t ~model_params

let print_row name (ov : Perf_taint.Report.overview) =
  Fmt.pr
    "  %-8s functions=%3d pruned=%3d/%-3d kernels/comm/MPI=%d/%d/%d \
     loops=%3d pruned-static=%3d relevant=%3d@."
    name ov.ov_functions ov.ov_pruned_static ov.ov_pruned_dynamic
    ov.ov_kernels ov.ov_comm_routines ov.ov_mpi_functions ov.ov_loops
    ov.ov_loops_pruned_static ov.ov_loops_relevant

let run () =
  Exp_common.section "Table 2: two-phase function and loop pruning";
  List.iter
    (fun (name, f, ps, pd, k, c, m, l, lps, lr) ->
      Fmt.pr
        "  paper %-8s functions=%3d pruned=%3d/%-3d kernels/comm/MPI=%d/%d/%d \
         loops=%3d pruned-static=%3d relevant=%3d@."
        name f ps pd k c m l lps lr)
    paper_rows;
  let lulesh = Lazy.force Exp_common.lulesh_analysis in
  let milc = Lazy.force Exp_common.milc_analysis in
  let lov = row lulesh ~model_params:Apps.Lulesh.model_params in
  let mov = row milc ~model_params:[ "p"; "nx"; "ny"; "nz"; "nt" ] in
  print_row "lulesh" lov;
  print_row "milc" mov;
  let pct (ov : Perf_taint.Report.overview) =
    100.
    *. float_of_int (ov.ov_pruned_static + ov.ov_pruned_dynamic)
    /. float_of_int ov.ov_functions
  in
  Exp_common.paper_vs
    "LULESH: 86.2%% of functions constant w.r.t. (p, size); MILC: 87.7%%";
  Exp_common.measured "LULESH: %.1f%%; MILC: %.1f%% of functions constant"
    (pct lov) (pct mov);
  Exp_common.note
    "(mini apps are ~5x smaller than the originals; the split between the \
     static and dynamic phases and the kernel/comm/MPI categories is the \
     reproduced shape)";
  let module J = Measure.Jsonio in
  let app name (ov : Perf_taint.Report.overview) =
    J.Obj
      [
        ("app", J.Str name);
        ("functions", J.Int ov.ov_functions);
        ("pruned_static", J.Int ov.ov_pruned_static);
        ("pruned_dynamic", J.Int ov.ov_pruned_dynamic);
        ("kernels", J.Int ov.ov_kernels);
        ("comm_routines", J.Int ov.ov_comm_routines);
        ("mpi_functions", J.Int ov.ov_mpi_functions);
        ("loops", J.Int ov.ov_loops);
        ("loops_pruned_static", J.Int ov.ov_loops_pruned_static);
        ("loops_relevant", J.Int ov.ov_loops_relevant);
        ("constant_pct", J.Float (pct ov));
      ]
  in
  Exp_common.emit_json ~name:"table2"
    [ ("apps", J.List [ app "lulesh" lov; app "milc" mov ]) ]
