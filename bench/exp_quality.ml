(** B1: noise resilience.  Fit every measured function of the 5x5x5
    campaign with plain Extra-P (black-box) and with the taint-restricted
    search space (tainted), and compare both against the testbed's ground
    truth.  The tainted models must prune the false parameter dependencies
    that noise induces — most visibly on constant functions such as
    MPI_Comm_rank. *)

module E = Model.Expr
module S = Model.Search

type verdict = { v_func : string; v_truth : string list;
                 v_black : E.model; v_tainted : E.model;
                 v_black_ok : bool; v_tainted_ok : bool; v_cov : float }

let truth_deps app fname ~model_params =
  match
    List.find_opt
      (fun (k : Measure.Spec.kernel) -> k.Measure.Spec.kname = fname)
      app.Measure.Spec.kernels
  with
  | Some k ->
    List.filter (fun p -> List.mem p model_params) k.Measure.Spec.truth_deps
    |> List.sort compare
  | None -> []

let model_params_of (m : E.model) = E.parameters m

let evaluate ?(aliases = []) ?config (t : Perf_taint.Pipeline.t) app
    ~model_params datasets =
  List.map
    (fun (fname, data) ->
      let fit mode =
        let c =
          Perf_taint.Modeling.constraints_aliased t mode ~model_params ~aliases
            fname
        in
        (Model.Search.multi ?config ~constraints:c data).S.model
      in
      let black = fit Perf_taint.Modeling.Black_box in
      let tainted = fit Perf_taint.Modeling.Tainted in
      let truth = truth_deps app fname ~model_params in
      {
        v_func = fname;
        v_truth = truth;
        v_black = black;
        v_tainted = tainted;
        v_black_ok = model_params_of black = truth;
        v_tainted_ok = model_params_of tainted = truth;
        v_cov = Model.Dataset.max_cov data;
      })
    datasets

let summarize verdicts =
  (* The paper only trusts datasets with CoV <= 0.1. *)
  let sound = List.filter (fun v -> v.v_cov <= 0.1) verdicts in
  let count f l = List.length (List.filter f l) in
  (sound, count (fun v -> v.v_black_ok) sound, count (fun v -> v.v_tainted_ok) sound)

let print_interesting verdicts =
  List.iter
    (fun v ->
      if (not v.v_black_ok) || not v.v_tainted_ok then
        Fmt.pr
          "    %-36s truth={%s}@.      black-box: %s %s@.      tainted:   %s \
           %s@."
          v.v_func
          (String.concat "," v.v_truth)
          (E.to_string v.v_black)
          (if v.v_black_ok then "(ok)" else "(WRONG DEPS)")
          (E.to_string v.v_tainted)
          (if v.v_tainted_ok then "(ok)" else "(WRONG DEPS)"))
    verdicts

let campaign ?config (t : Perf_taint.Pipeline.t) app ~selective ~designf
    ~model_params ~aliases =
  let design = designf ~mode:(Measure.Instrument.Selective selective) in
  let kernels = Measure.Instrument.SSet.elements selective in
  let _, datasets =
    Exp_common.run_and_collect app design ~params:model_params ~kernels
  in
  let verdicts = evaluate ~aliases ?config t app ~model_params datasets in
  let sound, black_ok, tainted_ok = summarize verdicts in
  Exp_common.measured
    "%s: of %d statistically sound functions (CoV <= 0.1): black-box \
     matches ground truth on %d, tainted on %d"
    app.Measure.Spec.aname (List.length sound) black_ok tainted_ok;
  print_interesting sound;
  verdicts

let run () =
  Exp_common.section "B1: noise resilience of tainted vs black-box models";
  Exp_common.paper_vs
    "tainted models nearly always match the manually established ground \
     truth; black-box models show false parameter dependencies (e.g. four \
     MPI_Comm_rank call sites modeled as parameter-dependent); 77%% of \
     spurious MILC models corrected";
  let lulesh = Lazy.force Exp_common.lulesh_analysis in
  let milc = Lazy.force Exp_common.milc_analysis in
  let lv =
    campaign lulesh Apps.Lulesh_spec.app
      ~selective:(Lazy.force Exp_common.lulesh_selective)
      ~designf:Exp_common.lulesh_design
      ~model_params:[ "p"; "size" ] ~aliases:[]
  in
  let mv =
    (* MILC's per-rank workload shrinks with p: give the search the
       extended (negative-exponent) menu, as a strong-scaling study
       would. *)
    campaign ~config:Model.Search.extended_config milc Apps.Milc_spec.app
      ~selective:(Lazy.force Exp_common.milc_selective)
      ~designf:Exp_common.milc_design
      ~model_params:[ "p"; "size" ] ~aliases:Exp_common.milc_aliases
  in
  (* MPI_Comm_rank: the flagship example of a constant function rescued
     from noise. *)
  List.iter
    (fun (name, verdicts) ->
      match List.find_opt (fun v -> v.v_func = "mpi_comm_rank") verdicts with
      | Some v ->
        Exp_common.measured
          "%s mpi_comm_rank: black-box = %s, tainted = %s (truth: constant)"
          name (E.to_string v.v_black) (E.to_string v.v_tainted)
      | None -> ())
    [ ("lulesh", lv); ("milc", mv) ];
  let module J = Measure.Jsonio in
  let app name verdicts =
    let sound, black_ok, tainted_ok = summarize verdicts in
    J.Obj
      [
        ("app", J.Str name);
        ("functions", J.Int (List.length verdicts));
        ("sound", J.Int (List.length sound));
        ("black_box_correct", J.Int black_ok);
        ("tainted_correct", J.Int tainted_ok);
      ]
  in
  Exp_common.emit_json ~name:"quality"
    [ ("apps", J.List [ app "lulesh" lv; app "milc" mv ]) ]
