(** Extension experiment: what the serving layer buys.  A deterministic
    load generator replays mixed predict queries against an in-process
    daemon ([Serve.Server.handle_line] — the whole daemon minus the
    socket) at 0/50/95% hit-rate sweeps and reports the median latency
    of cache hits against cold fits.  Answers are never paid for with
    correctness: before any time is reported, a sample of hit responses
    is byte-compared against always-cold refits in a fresh catalog, and
    the warm-restart path (a second server reopening the same on-disk
    index) must re-serve every hot key byte-identically.  The
    hit-rate-95 sweep must show a >= 10x median-latency speedup. *)

module J = Measure.Jsonio

let hit_axis = [ 0; 50; 95 ]
let hot_keys = 12
let queries_per_sweep = 160

(* Cheap but real fits: one varying axis, two repetitions — the same
   campaign+search path as a full design, just a small grid. *)
let request ~op ~seed extra =
  Printf.sprintf
    {|{"op":"%s","app":"lulesh"%s,"grid":{"p":[2,4,8,16],"size":[16],"r":[8]},"reps":2,"seed":%d}|}
    op extra seed

let predict_req ~seed ~p =
  request ~op:"predict" ~seed
    (Printf.sprintf {|,"coords":{"p":%d,"size":16}|} p)

let fit_req ~seed = request ~op:"fit" ~seed ""

let hot_seed k = 100 + k
let fresh_seed i = 1000 + i

(* Deterministic query mix. *)
let lcg x = ((1103515245 * x) + 12345) land 0x3FFFFFFF

let is_cached resp =
  (* responses are single-line JSON built by Protocol; substring is safe *)
  let needle = {|"cached":true|} in
  let n = String.length needle and m = String.length resp in
  let rec go i = i + n <= m && (String.sub resp i n = needle || go (i + 1)) in
  go 0

let normalize_cached resp =
  let needle = {|"cached":true|} and repl = {|"cached":false|} in
  let n = String.length needle in
  let b = Buffer.create (String.length resp) in
  let rec go i =
    if i >= String.length resp then ()
    else if
      i + n <= String.length resp && String.sub resp i n = needle
    then begin
      Buffer.add_string b repl;
      go (i + n)
    end
    else begin
      Buffer.add_char b resp.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

(* [nan] is not JSON; the 0%-hit sweep has no hit latencies. *)
let fnum x = if Float.is_nan x then J.Null else J.Float x

let median = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)

let with_tmp_catalog f =
  let dir = Filename.temp_file "bench-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let index = Filename.concat dir "catalog.jsonl" in
      if Sys.file_exists index then Sys.remove index;
      let tmp = index ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp;
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () -> f dir)

let open_server ~metrics ~dir =
  match Serve.Catalog.open_ ~metrics ~dir () with
  | Error e -> failwith e
  | Ok cat ->
    (cat, Serve.Server.create ~metrics ~catalog:cat ())

let ask server line = fst (Serve.Server.handle_line server line)

let run () =
  Exp_common.section
    "serve: memoized catalog vs always-cold fits (load generator)";
  let failures = ref 0 in
  let sweep hit_pct =
    with_tmp_catalog @@ fun dir ->
    let metrics = Obs_metrics.create () in
    let cat, server = open_server ~metrics ~dir in
    (* prepopulate the hot working set, then capture one canonical
       warm predict per hot key (for the restart byte-compare) *)
    for k = 0 to hot_keys - 1 do
      ignore (ask server (fit_req ~seed:(hot_seed k)))
    done;
    let canonical k = predict_req ~seed:(hot_seed k) ~p:8 in
    let warm =
      List.init hot_keys (fun k -> ask server (canonical k))
    in
    (* the timed sweep *)
    let hit_lat = ref [] and miss_lat = ref [] in
    let hits = ref 0 and misses = ref 0 in
    let state = ref (17 + hit_pct) and fresh = ref 0 in
    for _ = 1 to queries_per_sweep do
      state := lcg !state;
      let roll = !state mod 100 in
      state := lcg !state;
      let line =
        if roll < hit_pct then
          let k = !state mod hot_keys in
          let p = [| 2; 4; 8; 16 |].(!state mod 4) in
          predict_req ~seed:(hot_seed k) ~p
        else begin
          incr fresh;
          predict_req ~seed:(fresh_seed ((1000 * hit_pct) + !fresh)) ~p:8
        end
      in
      let resp, dt = Obs_clock.with_timer (fun () -> ask server line) in
      if is_cached resp then begin
        incr hits;
        hit_lat := dt :: !hit_lat
      end
      else begin
        incr misses;
        miss_lat := dt :: !miss_lat
      end
    done;
    (* identity: a fresh always-cold server must answer the first hot
       keys byte-identically (modulo the cached flag) *)
    let identity =
      with_tmp_catalog @@ fun cold_dir ->
      let cold_metrics = Obs_metrics.create () in
      let cold_cat, cold_server = open_server ~metrics:cold_metrics ~dir:cold_dir in
      let ok =
        List.for_all
          (fun k ->
            let cold = ask cold_server (canonical k) in
            String.equal (normalize_cached cold)
              (normalize_cached (List.nth warm k)))
          [ 0; 1; 2 ]
      in
      Serve.Catalog.close cold_cat;
      ok
    in
    (* warm restart: a second server over the same on-disk index must
       re-serve every hot key as a byte-identical hit *)
    Serve.Catalog.close cat;
    let restart_metrics = Obs_metrics.create () in
    let cat2, server2 = open_server ~metrics:restart_metrics ~dir in
    let restart_identity =
      List.for_all
        (fun k ->
          let again = ask server2 (canonical k) in
          is_cached again && String.equal again (List.nth warm k))
        (List.init hot_keys Fun.id)
    in
    let restart_hits =
      Option.value ~default:0
        (Obs_metrics.find_counter
           (Obs_metrics.snapshot restart_metrics)
           "serve.hits")
    in
    Serve.Catalog.close cat2;
    let snap = Obs_metrics.snapshot metrics in
    let counter n = Option.value ~default:0 (Obs_metrics.find_counter snap n) in
    let med_hit = median !hit_lat and med_miss = median !miss_lat in
    let speedup =
      if !hits > 0 && !misses > 0 then med_miss /. med_hit else nan
    in
    if not identity then incr failures;
    if not restart_identity then incr failures;
    Fmt.pr
      "  hit%%=%2d  %3d hits  %3d misses  med(hit) %9.6f s  med(miss) \
       %9.6f s  speedup %8.1fx%s%s@."
      hit_pct !hits !misses med_hit med_miss speedup
      (if identity then "" else "  << NOT IDENTICAL TO COLD")
      (if restart_identity then "" else "  << RESTART NOT IDENTICAL");
    ( hit_pct,
      J.Obj
        [
          ("hit_pct", J.Int hit_pct);
          ("queries", J.Int queries_per_sweep);
          ("hits", J.Int !hits);
          ("misses", J.Int !misses);
          ("evictions", J.Int (counter "serve.evictions"));
          ("identity", J.Bool identity);
          ("restart_hits", J.Int restart_hits);
          ("restart_identity", J.Bool restart_identity);
          ("med_hit_s", fnum med_hit);
          ("med_miss_s", fnum med_miss);
          ("speedup", fnum speedup);
        ],
      speedup )
  in
  let rows = List.map sweep hit_axis in
  let speedup95 =
    List.fold_left
      (fun acc (pct, _, s) -> if pct = 95 then s else acc)
      nan rows
  in
  let target_met = speedup95 >= 10. in
  Exp_common.note "hit-rate-95 sweep: %.1fx median-latency speedup (target \
                   >= 10x)" speedup95;
  Exp_common.emit_json ~name:"serve"
    [
      ("hot_keys", J.Int hot_keys);
      ("sweeps", J.List (List.map (fun (_, row, _) -> row) rows));
      ("speedup_95", fnum speedup95);
      ("speedup_target_met", J.Bool target_met);
    ];
  if !failures > 0 then begin
    Fmt.epr "serve: %d identity check(s) failed@." !failures;
    exit 1
  end;
  if not target_met then begin
    Fmt.epr
      "serve: hit-rate-95 speedup %.1fx is below the 10x target@." speedup95;
    exit 1
  end
