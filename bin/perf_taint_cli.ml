(** The perf-taint command-line interface.

    Mirrors the workflow of the original tool: run the static + dynamic
    taint analysis over a program (a bundled mini-app or a .pir file),
    inspect the per-function parameter dependencies, derive the
    instrumentation selection, fit hybrid models from simulated
    measurement campaigns, and validate experiment designs. *)

open Cmdliner

(* -- program selection ------------------------------------------------------ *)

type target = {
  program : Ir.Types.program;
  args : Ir.Types.value list;
  world : Mpi_sim.Runtime.world;
  model_params : string list;
  spec : Measure.Spec.app option;
  aliases : (string * string list) list;
}

let bundled = [ "lulesh"; "milc"; "minicg"; "iterate"; "foo"; "matrix"; "select" ]

let target_of_app ?ranks ?params name =
  let override_args named =
    match params with
    | None -> List.map snd named
    | Some bindings ->
      List.map
        (fun (pname, v) ->
          match List.assoc_opt pname bindings with
          | Some x -> Ir.Types.VInt x
          | None -> v)
        named
  in
  let world default =
    match ranks with
    | Some r -> { Mpi_sim.Runtime.ranks = r; rank = 0 }
    | None -> default
  in
  let entry_params (p : Ir.Types.program) =
    (Ir.Types.find_func p p.Ir.Types.entry).Ir.Types.fparams
  in
  let with_defaults program defaults w mp spec aliases =
    let named = List.combine (entry_params program) defaults in
    {
      program;
      args = override_args named;
      world = world w;
      model_params = mp;
      spec;
      aliases;
    }
  in
  match name with
  | "lulesh" ->
    Ok
      (with_defaults Apps.Lulesh.program Apps.Lulesh.taint_args
         Apps.Lulesh.taint_world Apps.Lulesh.model_params
         (Some Apps.Lulesh_spec.app) [])
  | "milc" ->
    Ok
      (with_defaults Apps.Milc.program Apps.Milc.taint_args
         Apps.Milc.taint_world Apps.Milc.model_params (Some Apps.Milc_spec.app)
         [ ("size", [ "nx"; "ny"; "nz"; "nt" ]) ])
  | "minicg" ->
    Ok
      (with_defaults Apps.Minicg.program Apps.Minicg.taint_args
         Apps.Minicg.taint_world Apps.Minicg.model_params
         (Some Apps.Minicg_spec.app) [])
  | "iterate" ->
    Ok
      (with_defaults Apps.Didactic.iterate_example
         [ VInt 10; VInt 2 ] Mpi_sim.Runtime.default_world [ "size"; "step" ]
         None [])
  | "foo" ->
    Ok
      (with_defaults Apps.Didactic.foo_example
         [ VInt 3; VInt 1; VInt 0 ] Mpi_sim.Runtime.default_world
         [ "a"; "b"; "c" ] None [])
  | "matrix" ->
    Ok
      (with_defaults Apps.Didactic.matrix_init
         [ VInt 6; VInt 8 ] Mpi_sim.Runtime.default_world [ "rows"; "cols" ]
         None [])
  | "select" ->
    Ok
      (with_defaults Apps.Didactic.algorithm_selection
         [ VInt 2 ] Mpi_sim.Runtime.default_world [ "a" ] None [])
  | other ->
    if Sys.file_exists other && Sys.is_directory other then
      Error (Printf.sprintf "%s is a directory, not a .pir file" other)
    else if Sys.file_exists other then begin
      let program = Ir.Parser.parse_file other in
      let formals = entry_params program in
      (* Unset parameters of a user-supplied program default to 4. *)
      let defaults = List.map (fun _ -> Ir.Types.VInt 4) formals in
      Ok
        (with_defaults program defaults Mpi_sim.Runtime.default_world formals
           None [])
    end
    else
      Error
        (Printf.sprintf "unknown app %s (bundled: %s, or a .pir file path)"
           other
           (String.concat ", " bundled))

(* -- common arguments ------------------------------------------------------- *)

let app_arg =
  let doc =
    "Program to analyze: a bundled mini-app (lulesh, milc, minicg, iterate, \
     foo, matrix, select) or a path to a .pir file."
  in
  Arg.(value & pos 0 string "lulesh" & info [] ~docv:"APP" ~doc)

let ranks_arg =
  let doc = "MPI communicator size for the tainted run." in
  Arg.(value & opt (some int) None & info [ "ranks"; "p" ] ~doc)

let param_arg =
  let doc = "Override an entry parameter, e.g. --set size=8 (repeatable)." in
  Arg.(value & opt_all (pair ~sep:'=' string int) [] & info [ "set" ] ~doc)

let resolve name ranks params =
  match target_of_app ?ranks ~params name with
  | Ok t -> t
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    exit 2

let trace_arg =
  let doc =
    "Write a Chrome trace (chrome://tracing / Perfetto JSON) of the \
     analysis — pipeline phases, function-call spans, loop-entry instants \
     — to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let max_steps_arg =
  let doc =
    "Interpreter instruction budget for program-running commands \
     (default: the engine's 200M steps; the fuzz oracles default to 500k)."
  in
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)

let config_of max_steps =
  Option.map
    (fun n -> { Interp.Machine.default_config with max_steps = n })
    max_steps

let engine_arg =
  let doc =
    "Execution tier for PIR programs: $(b,compiled) (the slot-resolved \
     lowered IR, the default) or $(b,interp) (the tree-walking reference \
     interpreter).  The tiers are bit-identical — results, taint labels, \
     observations, step counts and error messages — checked continuously \
     by the compile-identity fuzz oracle; the compiled one is just \
     faster."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("compiled", Interp.Engine.Compiled);
             ("interp", Interp.Engine.Interpreted);
             ("interpreted", Interp.Engine.Interpreted) ])
        Interp.Engine.default_tier
    & info [ "engine" ] ~docv:"TIER" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel stages (measurement coordinates, \
     model-candidate scoring, fuzz cases).  The default of 1 is exactly \
     the serial code path; any value produces bit-identical output."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Hand the command body [Some pool] only when parallelism was actually
   requested: the [None] branch of every consumer is the untouched
   serial code path, so --jobs 1 (the default) cannot perturb existing
   behavior even through pool bookkeeping. *)
let with_jobs ?metrics jobs f =
  if jobs > 1 then Par.Pool.with_pool ?metrics ~jobs (fun p -> f (Some p))
  else f None

(* Every command maps the pipeline's expected failure modes — bad paths,
   malformed .pir files, runtime errors in user programs, exhausted step
   budgets — to a one-line stderr message and a nonzero exit, never an
   OCaml backtrace.  Unexpected exceptions still escape loudly: masking
   a genuine bug as a polite error would hide it. *)
let error_guard f =
  try `Ok (f ()) with
  | Interp.Machine.Budget_exceeded n ->
    `Error
      ( false,
        Printf.sprintf
          "interpreter instruction budget exceeded after %d steps; raise it \
           with --max-steps"
          n )
  | Interp.Machine.Runtime_error msg ->
    `Error (false, Printf.sprintf "runtime error: %s" msg)
  | Ir.Types.Ir_error msg -> `Error (false, Printf.sprintf "invalid IR: %s" msg)
  | Ir.Parser.Parse_error { line; message } ->
    `Error (false, Printf.sprintf "parse error at line %d: %s" line message)
  | Sys_error msg -> `Error (false, msg)
  | Failure msg -> `Error (false, msg)
  | Invalid_argument msg -> `Error (false, msg)

(* Run the pipeline over a target; when [trace] names a file, record the
   full span/instant stream and dump it as Chrome trace JSON. *)
let analyze_target ?engine ?config ?metrics ?trace ?profile t =
  match trace with
  | None ->
    Perf_taint.Pipeline.analyze ?engine ?config ?metrics ?profile
      ~world:t.world t.program ~args:t.args
  | Some path ->
    let sink = Obs_trace.create () in
    let a =
      Perf_taint.Pipeline.analyze ?engine ?config ?metrics ?profile
        ~trace:sink ~world:t.world t.program ~args:t.args
    in
    (try Obs_trace.write_file sink path
     with Sys_error msg ->
       Fmt.epr "error: cannot write trace: %s@." msg;
       exit 2);
    Fmt.epr "trace: %d events written to %s@."
      (List.length (Obs_trace.events sink))
      path;
    a

let events_arg =
  let doc =
    "Write a structured JSON-lines event log to $(docv): campaign waves, \
     retries, faults, checkpoints and resumes; model-search best-so-far \
     improvements and selections; fuzz oracle summaries and \
     counterexamples.  Events carry sequence numbers instead of \
     timestamps, so the log is byte-identical across runs and across \
     $(b,--jobs) counts (parallel campaigns add their campaign.wave \
     dispatch events)."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

(* Open the event sink only when --events was given; the [disabled] sink
   keeps every emitter a single-match no-op, so the flag's absence is
   exactly the old code path. *)
let with_events path f =
  match path with
  | None -> f Obs_events.disabled
  | Some p ->
    let sink = Obs_events.to_file ~ts:false p in
    Fun.protect
      ~finally:(fun () -> Obs_events.close sink)
      (fun () ->
        let r = f sink in
        Fmt.epr "events: %d written to %s@." (Obs_events.count sink) p;
        r)

(* -- commands ---------------------------------------------------------------- *)

let json_arg =
  let doc = "Emit the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let analyze_cmd =
  let run name ranks params json trace max_steps engine =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let a = analyze_target ~engine ?config:(config_of max_steps) ?trace t in
    if json then
      Fmt.pr "%a@."
        Perf_taint.Export.pp
        (Perf_taint.Export.analysis_json a ~model_params:t.model_params)
    else begin
    let ov = Perf_taint.Report.overview a ~model_params:t.model_params in
    Fmt.pr "%a@.@." Perf_taint.Report.pp_overview ov;
    let ls = Taint.Label.table_stats a.labels in
    Fmt.pr "tainted run: %d instructions, %d taint labels@." a.steps
      ls.Taint.Label.labels;
    Fmt.pr "label table: %d union calls, %d dedup hits@."
      ls.Taint.Label.unions ls.Taint.Label.dedup_hits;
    List.iter
      (fun w -> Fmt.pr "warning: %s@." w)
      a.static.Static_an.Classify.warnings;
    Fmt.pr "@.per-function dependencies:@.@[<v>%a@]@." Perf_taint.Report.pp_deps
      a
    end
  in
  let doc = "Run the static + dynamic taint analysis and print the report." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ json_arg $ trace_arg
        $ max_steps_arg $ engine_arg))

let select_cmd =
  let run name ranks params trace max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let a = analyze_target ?config:(config_of max_steps) ?trace t in
    let relevant =
      Perf_taint.Pipeline.relevant_functions a ~model_params:t.model_params
    in
    Fmt.pr "instrumentation selection (%d functions):@." (List.length relevant);
    List.iter (Fmt.pr "  %s@.") (List.sort compare relevant);
    let mpi = Perf_taint.Pipeline.mpi_routines_used a in
    Fmt.pr "MPI routines: %s@."
      (String.concat ", " (Ir.Cfg.SSet.elements mpi))
  in
  let doc = "Print the taint-derived instrumentation selection." in
  Cmd.v (Cmd.info "select" ~doc)
    Term.(
      ret (const run $ app_arg $ ranks_arg $ param_arg $ trace_arg
          $ max_steps_arg))

let print_cmd =
  let run name ranks params =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    Fmt.pr "%s@." (Ir.Pp.program_to_string t.program)
  in
  let doc = "Print the program in textual PIR syntax." in
  Cmd.v (Cmd.info "print" ~doc)
    Term.(ret (const run $ app_arg $ ranks_arg $ param_arg))

let run_cmd =
  let run name ranks params json trace max_steps engine =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let config =
      Option.value ~default:Interp.Machine.default_config
        (config_of max_steps)
    in
    (* A clean (shadow-free) run on the selected tier: the Plain-policy
       analogue of one measurement run, identical output either way. *)
    let run_via (type a) (module E : Interp.Engine.S with type t = a) =
      let sink =
        match trace with None -> None | Some _ -> Some (Obs_trace.create ())
      in
      let m = E.create ~config ?trace:sink t.program in
      Mpi_sim.Runtime.install_host (module E) t.world m;
      let v, _ = E.run m t.args in
      (match (trace, sink) with
      | Some path, Some sink ->
        (try Obs_trace.write_file sink path
         with Sys_error msg ->
           Fmt.epr "error: cannot write trace: %s@." msg;
           exit 2);
        Fmt.epr "trace: %d events written to %s@."
          (List.length (Obs_trace.events sink))
          path
      | _ -> ());
      (v, E.steps_executed m, E.observations m)
    in
    let v, steps, obs =
      match engine with
      | Interp.Engine.Interpreted -> run_via (module Interp.Plain)
      | Interp.Engine.Compiled -> run_via (module Interp.Compiled.Plain)
    in
    let funcs =
      Interp.Observations.func_list obs
      |> List.filter (fun fo -> fo.Interp.Observations.fo_calls > 0)
      |> List.sort (fun a b ->
             compare a.Interp.Observations.fo_func
               b.Interp.Observations.fo_func)
    in
    if json then begin
      Fmt.pr "{\"engine\": %S, \"result\": \"%a\", \"steps\": %d, \
              \"functions\": [@."
        (Interp.Engine.tier_name engine)
        Ir.Pp.pp_value v steps;
      List.iteri
        (fun i (fo : Interp.Observations.func_obs) ->
          Fmt.pr "  {\"name\": %S, \"calls\": %d, \"instrs\": %d, \
                  \"work\": %d}%s@."
            fo.fo_func fo.fo_calls fo.fo_instrs fo.fo_work
            (if i = List.length funcs - 1 then "" else ","))
        funcs;
      Fmt.pr "]}@."
    end
    else begin
      Fmt.pr "result: %a (%d steps)@." Ir.Pp.pp_value v steps;
      Fmt.pr "%-36s %10s %12s %10s@." "function" "calls" "instructions"
        "work";
      List.iter
        (fun (fo : Interp.Observations.func_obs) ->
          Fmt.pr "%-36s %10d %12d %10d@." fo.fo_func fo.fo_calls fo.fo_instrs
            fo.fo_work)
        funcs
    end
  in
  let doc =
    "Execute a program through the clean (shadow-free) Plain engine on \
     the selected $(b,--engine) tier and print the result value, step \
     count, and per-function statistics — one measurement run, without \
     the taint analysis."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ json_arg $ trace_arg
        $ max_steps_arg $ engine_arg))

let coverage_cmd =
  let blocks_arg =
    let doc =
      "Execute the program through the Coverage policy and print dynamic \
       block/edge hit counts instead of the taint-derived parameter \
       coverage."
    in
    Arg.(value & flag & info [ "blocks" ] ~doc)
  in
  let run name ranks params blocks trace max_steps engine =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    if blocks then begin
      let config =
        Option.value ~default:Interp.Machine.default_config
          (config_of max_steps)
      in
      (* Coverage execution on either tier: same S face, same hit
         tables — the policy state type is pinned so both modules
         return the shared Coverage_policy.state. *)
      let run_via (type a)
          (module E : Interp.Engine.S
            with type t = a
             and type pstate = Interp.Coverage_policy.state) =
        let m = E.create ~config t.program in
        Mpi_sim.Runtime.install_host (module E) t.world m;
        ignore (E.run m t.args);
        (E.policy_state m, E.steps_executed m)
      in
      let cov, steps =
        match engine with
        | Interp.Engine.Interpreted -> run_via (module Interp.Coverage)
        | Interp.Engine.Compiled -> run_via (module Interp.Compiled.Coverage)
      in
      Fmt.pr "block coverage: %d blocks, %d edges, %d steps@."
        (Interp.Coverage_policy.blocks_covered cov)
        (Interp.Coverage_policy.edges_covered cov)
        steps;
      List.iter
        (fun ((f, b), n) -> Fmt.pr "  %-28s %-12s %10d@." f b n)
        (Interp.Coverage_policy.block_hits cov)
    end
    else begin
      let a = analyze_target ~engine ?config:(config_of max_steps) ?trace t in
      let all = Ir.Cfg.SSet.elements (Perf_taint.Pipeline.observed_params a) in
      Fmt.pr "per-parameter coverage:@.";
      List.iter
        (fun (r : Perf_taint.Report.coverage_row) ->
          Fmt.pr "  %-10s functions=%3d loops=%3d@." r.cov_param r.cov_functions
            r.cov_loops)
        (Perf_taint.Report.coverage a ~params:all)
    end
  in
  let doc =
    "Print per-parameter function/loop coverage (Table 3 style), or \
     dynamic block coverage with $(b,--blocks)."
  in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ blocks_arg $ trace_arg
        $ max_steps_arg $ engine_arg))

let volume_cmd =
  let func_arg =
    let doc = "Function whose iteration volume to print (default: all)." in
    Arg.(value & opt (some string) None & info [ "func" ] ~doc)
  in
  let run name ranks params func trace max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let a = analyze_target ?config:(config_of max_steps) ?trace t in
    (match func with
    | Some f ->
      Fmt.pr "%-36s %s@." f
        (Perf_taint.Volume.to_string (Perf_taint.Volume.of_function a f))
    | None ->
      List.iter
        (fun (f : Ir.Types.func) ->
          let v = Perf_taint.Volume.of_function a f.Ir.Types.fname in
          if not (Perf_taint.Volume.is_constant v) then
            Fmt.pr "%-36s %s@." f.Ir.Types.fname
              (Perf_taint.Volume.to_string v))
        t.program.Ir.Types.funcs);
    Fmt.pr "@.program compute volume:@.  %s@."
      (Perf_taint.Volume.to_string (Perf_taint.Volume.of_program a))
  in
  let doc =
    "Print symbolic iteration volumes (paper Sections 4.2/4.3): the \
     scaffolding the empirical modeler parametrises."
  in
  Cmd.v (Cmd.info "volume" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ func_arg $ trace_arg
        $ max_steps_arg))

let mode_arg =
  let doc = "Modeling mode: tainted (hybrid) or black-box." in
  Arg.(
    value
    & opt (enum [ ("tainted", Perf_taint.Modeling.Tainted);
                  ("black-box", Perf_taint.Modeling.Black_box) ])
        Perf_taint.Modeling.Tainted
    & info [ "mode" ] ~doc)

let func_arg =
  let doc = "Function to model (default: every selected function)." in
  Arg.(value & opt (some string) None & info [ "func" ] ~doc)

let model_cmd =
  let run name ranks params mode func events trace max_steps jobs =
    error_guard @@ fun () ->
    with_jobs jobs @@ fun pool ->
    with_events events @@ fun events ->
    let t = resolve name ranks params in
    let spec =
      match t.spec with
      | Some s -> s
      | None ->
        Fmt.epr "error: %s has no measurement spec (use lulesh or milc)@." name;
        exit 2
    in
    let a = analyze_target ?config:(config_of max_steps) ?trace t in
    let machine = Mpi_sim.Machine.skylake_cluster in
    let selective =
      Measure.Instrument.SSet.of_list
        (Perf_taint.Pipeline.relevant_functions a ~model_params:t.model_params
        @ Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used a))
    in
    let grid =
      if name = "milc" then
        [ ("p", Apps.Milc_spec.p_values); ("size", Apps.Milc_spec.size_values);
          ("r", [ 8. ]) ]
      else
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ]
    in
    let design =
      { Measure.Experiment.grid; reps = 5;
        mode = Measure.Instrument.Selective selective; sigma = 0.02; seed = 42 }
    in
    let runs = Measure.Experiment.run_design ?pool spec machine design in
    let config =
      let c =
        if name = "milc" then Model.Search.extended_config
        else Model.Search.default_config
      in
      { c with Model.Search.pool; events }
    in
    let fit fname =
      let data =
        Measure.Experiment.kernel_dataset runs ~params:t.model_params
          ~kernel:fname
      in
      if data.Model.Dataset.points = [] then
        Fmt.pr "  %-36s (not measured)@." fname
      else begin
        let c =
          Perf_taint.Modeling.constraints_aliased a mode
            ~model_params:t.model_params ~aliases:t.aliases fname
        in
        let r = Model.Search.multi ~config ~constraints:c data in
        Fmt.pr "  %-36s %s  (SMAPE %.1f%%)@." fname
          (Model.Expr.to_string r.Model.Search.model)
          r.Model.Search.error
      end
    in
    Fmt.pr "%s models (%s mode):@." name (Perf_taint.Modeling.mode_name mode);
    (match func with
    | Some f -> fit f
    | None ->
      List.iter fit (Measure.Instrument.SSet.elements selective))
  in
  let doc =
    "Run a simulated measurement campaign and fit per-function performance \
     models."
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ mode_arg $ func_arg
        $ events_arg $ trace_arg $ max_steps_arg $ jobs_arg))

let profile_cmd =
  let interval_arg =
    let doc =
      "Steps per profiler sample.  The sampler is driven by the executed \
       instruction count, not a clock, so the profile is bit-identical \
       across runs, machines and $(b,--jobs) counts."
    in
    Arg.(
      value
      & opt int Obs_profile.default_interval
      & info [ "interval" ] ~docv:"N" ~doc)
  in
  let top_arg =
    let doc = "Rows in the sampling-profile table." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)
  in
  let flame_arg =
    let doc =
      "Write collapsed call stacks (one 'main;solve;spmv 42' line per \
       sampled path) to $(docv) — loadable by flamegraph.pl, inferno or \
       speedscope."
    in
    Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"FILE" ~doc)
  in
  let run name ranks params interval top flame json trace max_steps jobs
      engine =
    error_guard @@ fun () ->
    (* The tainted run is inherently serial; --jobs is accepted so that
       scripted invocations can pass one jobs count everywhere, and the
       output is trivially identical at any value. *)
    with_jobs jobs @@ fun _pool ->
    let t = resolve name ranks params in
    let prof = Obs_profile.create ~interval () in
    let a =
      analyze_target ~engine ?config:(config_of max_steps) ?trace
        ~profile:prof t
    in
    let snap = Obs_profile.snapshot prof in
    (match flame with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs_profile.folded_of_snapshot snap);
      close_out oc;
      Fmt.epr "flamegraph: %d call paths written to %s@."
        (List.length snap.Obs_profile.ps_paths)
        path);
    if json then print_string (Obs_profile.to_json prof)
    else begin
      let rows =
        Interp.Observations.func_list a.Perf_taint.Pipeline.obs
        |> List.sort (fun x y ->
               compare y.Interp.Observations.fo_instrs
                 x.Interp.Observations.fo_instrs)
      in
      Fmt.pr "%-36s %10s %12s %10s@." "function" "calls" "instructions" "work";
      List.iter
        (fun (fo : Interp.Observations.func_obs) ->
          Fmt.pr "%-36s %10d %12d %10d@." fo.fo_func fo.fo_calls fo.fo_instrs
            fo.fo_work)
        rows;
      Fmt.pr "@.total interpreted instructions: %d@.@." a.steps;
      Fmt.pr "%a" (Obs_profile.pp_table ~top) snap
    end
  in
  let doc =
    "Profile the tainted run: exact per-function statistics plus a \
     deterministic sampling profile (every $(b,--interval) executed \
     steps) with top-N table, JSON and collapsed-stacks flamegraph \
     export."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ interval_arg $ top_arg
        $ flame_arg $ json_arg $ trace_arg $ max_steps_arg $ jobs_arg
        $ engine_arg))

let stats_cmd =
  let run name ranks params json trace max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let metrics = Obs_metrics.create () in
    let a = analyze_target ?config:(config_of max_steps) ~metrics ?trace t in
    if json then
      Fmt.pr "%a@." Perf_taint.Export.pp (Perf_taint.Export.stats_json a)
    else begin
      Fmt.pr "self-profile: %s@.@." t.program.Ir.Types.pname;
      Fmt.pr "phase timings:@.";
      List.iter
        (fun (phase, s) -> Fmt.pr "  %-12s %12.6f s@." phase s)
        (Perf_taint.Pipeline.phases a);
      let ls = Taint.Label.table_stats a.labels in
      Fmt.pr "@.label table:@.";
      Fmt.pr "  %-12s %12d@." "labels" ls.Taint.Label.labels;
      Fmt.pr "  %-12s %12d@." "unions" ls.Taint.Label.unions;
      Fmt.pr "  %-12s %12d@." "dedup hits" ls.Taint.Label.dedup_hits;
      Fmt.pr "@.metrics:@.%a" Obs_metrics.pp_summary a.snapshot
    end
  in
  let doc =
    "Self-profile of the analysis: phase timings (static / tainted run / \
     post-processing), instruction counts by opcode class, memory and \
     shadow traffic, label-table statistics.  The overhead the paper \
     amortizes against the measurement campaign, measured on our own \
     pipeline."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ json_arg $ trace_arg
        $ max_steps_arg))

let contention_cmd =
  let run name ranks params trace max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let spec =
      match t.spec with
      | Some s -> s
      | None ->
        Fmt.epr "error: %s has no measurement spec@." name;
        exit 2
    in
    let a = analyze_target ?config:(config_of max_steps) ?trace t in
    let selective =
      Measure.Instrument.SSet.of_list
        (Perf_taint.Pipeline.relevant_functions a ~model_params:t.model_params
        @ Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used a))
    in
    let design =
      {
        Measure.Experiment.grid =
          [ ("p", [ 64. ]);
            ((match name with "milc" -> "size" | "minicg" -> "n" | _ -> "size"),
             [ (match name with "minicg" -> 1.0e6 | _ -> 30.) ]);
            ("r", [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18. ]) ];
        reps = 5;
        mode = Measure.Instrument.Selective selective;
        sigma = 0.02;
        seed = 7;
      }
    in
    let runs =
      Measure.Experiment.run_design spec Mpi_sim.Machine.skylake_cluster design
    in
    let datasets =
      List.filter_map
        (fun k ->
          let d =
            Measure.Experiment.kernel_dataset runs ~params:[ "r" ] ~kernel:k
          in
          if d.Model.Dataset.points = [] then None else Some (k, d))
        (Measure.Instrument.SSet.elements selective)
    in
    let findings = Perf_taint.Validation.detect_contention a datasets in
    Fmt.pr
      "%d of %d measured functions grow with ranks-per-node although taint \
       proves they cannot:@."
      (List.length findings) (List.length datasets);
    List.iter
      (fun (f : Perf_taint.Validation.contention_finding) ->
        Fmt.pr "  %-36s %s@." f.cf_func (Model.Expr.to_string f.cf_model))
      findings
  in
  let doc =
    "Sweep ranks-per-node at a fixed configuration and report functions      whose growth contradicts the taint analysis (Figure 5 / C1)."
  in
  Cmd.v (Cmd.info "contention" ~doc)
    Term.(
      ret (const run $ app_arg $ ranks_arg $ param_arg $ trace_arg
          $ max_steps_arg))

let design_cmd =
  let reps_arg =
    let doc = "Repetitions per configuration." in
    Arg.(value & opt int 5 & info [ "reps" ] ~doc)
  in
  let run name ranks params reps trace max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let a = analyze_target ?config:(config_of max_steps) ?trace t in
    (* Five-point axes over every parameter the program declares. *)
    let entry =
      Ir.Types.find_func t.program t.program.Ir.Types.entry
    in
    let axes =
      List.map
        (fun p -> { Perf_taint.Design.param = p; values = [ 1.; 2.; 4.; 8.; 16. ] })
        ("p" :: entry.Ir.Types.fparams)
    in
    let plan = Perf_taint.Design.propose a ~axes ~reps in
    Fmt.pr "%a@." Perf_taint.Design.pp_plan plan
  in
  let doc =
    "Propose an experiment design from the taint results: which parameters      to fix, sweep alone, or sweep jointly (A1/A2)."
  in
  Cmd.v (Cmd.info "design" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ reps_arg $ trace_arg
        $ max_steps_arg))

let validate_cmd =
  let at_arg =
    let doc = "Rank count to analyze at (repeatable), e.g. --at 4 --at 32." in
    Arg.(value & opt_all int [ 4; 32 ] & info [ "at" ] ~doc)
  in
  let run name ranks params ats max_steps =
    error_guard @@ fun () ->
    let t = resolve name ranks params in
    let runs =
      List.map
        (fun p ->
          Perf_taint.Pipeline.analyze
            ?config:(config_of max_steps)
            ~world:{ Mpi_sim.Runtime.ranks = p; rank = 0 }
            t.program ~args:t.args)
        ats
    in
    let findings =
      Perf_taint.Validation.validate_design ~model_params:[ "p" ] runs
    in
    if findings = [] then
      Fmt.pr "no qualitative behavior changes across p in {%s}@."
        (String.concat ", " (List.map string_of_int ats))
    else begin
      Fmt.pr "%d parameter-dependent branches change behavior:@."
        (List.length findings);
      List.iter
        (fun (f : Perf_taint.Validation.design_finding) ->
          Fmt.pr "  %s/%s on {%s}: %s@." f.df_func f.df_block
            (String.concat "," f.df_params)
            (String.concat " "
               (List.map
                  (fun (_, b) -> Perf_taint.Validation.behavior_name b)
                  f.df_behaviors)))
        findings
    end
  in
  let doc = "Compare taint runs across rank counts (C2-style validation)." in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(
      ret (const run $ app_arg $ ranks_arg $ param_arg $ at_arg
          $ max_steps_arg))

let campaign_cmd =
  let faults_arg =
    let doc =
      "Fault plan, e.g. crash=0.05,hang=0.02,straggler=0.03,corrupt=0.02,\
       persistent=0.1,attempts=2,seed=7 (all keys optional; empty = no \
       faults)."
    in
    Arg.(value & opt string "" & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let retries_arg =
    let doc = "Total attempts per run coordinate (including the first)." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Initial retry backoff in simulated seconds (doubles per retry)." in
    Arg.(value & opt float 30. & info [ "backoff" ] ~docv:"S" ~doc)
  in
  let journal_arg =
    let doc = "Checkpoint journal file (JSON lines, one record per run)." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Resume from the journal instead of starting over." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let max_runs_arg =
    let doc =
      "Stop (deliberately interrupted) after $(docv) newly executed \
       coordinates; resume later with --resume."
    in
    Arg.(value & opt (some int) None & info [ "max-runs" ] ~docv:"N" ~doc)
  in
  let dump_arg =
    let doc =
      "Write the final dataset as deterministic JSON lines to $(docv) — \
       byte-comparable across resumed and uninterrupted campaigns."
    in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let reps_arg =
    let doc = "Repetitions per configuration." in
    Arg.(value & opt int 5 & info [ "reps" ] ~doc)
  in
  let sigma_arg =
    let doc = "Relative measurement noise level." in
    Arg.(value & opt float 0.02 & info [ "sigma" ] ~doc)
  in
  let seed_arg =
    let doc = "Measurement-noise seed of the design." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Coordinator mode: partition the campaign into $(docv) shards by \
       deterministic coordinate hash, run each as a supervised worker \
       process (restarted with --resume on death), and merge the shard \
       journals into --journal.  The merged campaign is bit-identical \
       to a single-process run."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"M" ~doc)
  in
  let shard_arg =
    let doc =
      "Worker mode: execute only the coordinates shard $(docv) (as K/M) \
       owns, journaling to --journal.  Spawned by --shards, or run by \
       hand to produce shard journals elsewhere."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"K/M" ~doc)
  in
  let shard_timeout_arg =
    let doc =
      "Wall-clock seconds a shard worker may run before the coordinator \
       kills and restarts it."
    in
    Arg.(
      value & opt float 600. & info [ "shard-timeout" ] ~docv:"S" ~doc)
  in
  let shard_restarts_arg =
    let doc = "Restarts per shard before the coordinator gives up." in
    Arg.(value & opt int 3 & info [ "shard-restarts" ] ~docv:"N" ~doc)
  in
  let kill_shard_arg =
    let doc =
      "Testing hook: make shard $(i,K)'s first launch stop after $(i,N) \
       coordinates (as K=N, repeatable), simulating a mid-shard worker \
       death; the coordinator must detect the short journal and \
       restart/resume it."
    in
    Arg.(
      value
      & opt_all (pair ~sep:'=' int int) []
      & info [ "kill-shard" ] ~docv:"K=N" ~doc)
  in
  let run name ranks params faults retries backoff journal resume max_runs
      dump reps sigma seed shards shard_spec shard_timeout shard_restarts
      kill_shards events trace max_steps jobs (_engine : Interp.Engine.tier) =
    error_guard @@ fun () ->
    (* Campaigns measure through the analytic simulator, which executes
       no PIR; --engine is accepted so scripted invocations can pass one
       tier everywhere, and the output is trivially identical either
       way.  (Program-replaying campaigns go through
       [Measure.Experiment.replay_runs], which honours the tier.) *)
    let t = resolve name ranks params in
    let spec =
      match t.spec with
      | Some s -> s
      | None ->
        Fmt.epr "error: %s has no measurement spec (use lulesh, milc or \
                 minicg)@." name;
        exit 2
    in
    let plan =
      match Measure.Fault.of_spec faults with
      | Ok p -> p
      | Error msg -> failwith msg
    in
    if resume && journal = None then
      failwith "--resume requires --journal FILE";
    let worker =
      match shard_spec with
      | None -> None
      | Some s -> (
        match Measure.Shard.of_spec s with
        | Ok t -> Some t
        | Error msg -> failwith msg)
    in
    (match (worker, shards) with
    | Some _, Some _ -> failwith "--shard and --shards are mutually exclusive"
    | _ -> ());
    (match shards with
    | Some m when m < 1 -> failwith "--shards must be >= 1"
    | _ -> ());
    if (shards <> None || worker <> None) && journal = None then
      failwith "--shards/--shard requires --journal FILE";
    if shards <> None && max_runs <> None then
      failwith "--max-runs is a worker-side limit; it cannot be combined \
                with --shards (use --kill-shard to inject one)";
    if kill_shards <> [] && shards = None then
      failwith "--kill-shard requires --shards";
    let grid =
      match name with
      | "milc" ->
        [ ("p", Apps.Milc_spec.p_values); ("size", Apps.Milc_spec.size_values);
          ("r", [ 8. ]) ]
      | "minicg" ->
        [ ("p", Apps.Minicg_spec.p_values); ("n", Apps.Minicg_spec.n_values);
          ("r", [ 8. ]) ]
      | _ ->
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ]
    in
    let design =
      { Measure.Experiment.grid; reps; mode = Measure.Instrument.Full; sigma;
        seed }
    in
    let retry =
      { Measure.Campaign.default_retry with
        Measure.Campaign.rt_max_attempts = retries;
        rt_backoff_s = backoff }
    in
    let metrics = Obs_metrics.create () in
    let sink =
      match trace with None -> None | Some _ -> Some (Obs_trace.create ())
    in
    with_jobs ~metrics jobs @@ fun pool ->
    with_events events @@ fun events ->
    match worker with
    | Some sh ->
      (* Worker mode: journal only the coordinates this shard owns and
         stop — the coordinator merges, reports, and fits. *)
      let j = Option.get journal in
      let report =
        Measure.Campaign.run_journaled ?pool ~metrics ?trace:sink ~events
          ~plan ~retry ?hang_budget:max_steps
          ~keep:(fun params rep -> Measure.Shard.owns sh ~params ~rep)
          ?limit:max_runs ~journal:j ~resume spec
          Mpi_sim.Machine.skylake_cluster design
      in
      Fmt.pr "shard %s: %d record(s) (%d resumed%s) journaled to %s@."
        (Measure.Shard.spec_of sh)
        (List.length report.Measure.Campaign.cp_records)
        report.Measure.Campaign.cp_resumed
        (if report.Measure.Campaign.cp_interrupted then ", interrupted"
         else "")
        j
    | None ->
    let report =
      match (shards, journal) with
      | Some m, Some j ->
        (* Coordinator mode: spawn one worker per shard (same binary,
           same campaign flags), supervise/restart them, then merge the
           shard journals into [j] in global design order. *)
        let header =
          Measure.Campaign.header_line ~app_name:spec.Measure.Spec.aname
            ~plan ~retry design
        in
        let argv ~shard ~journal:jpath ~resume =
          let opt flag = function
            | None -> []
            | Some v -> [ flag; v ]
          in
          Array.of_list
            ([ Sys.executable_name; "campaign"; name;
               "--faults"; faults;
               "--retries"; string_of_int retries;
               "--backoff"; Printf.sprintf "%.17g" backoff;
               "--reps"; string_of_int reps;
               "--sigma"; Printf.sprintf "%.17g" sigma;
               "--seed"; string_of_int seed;
               "--jobs"; string_of_int jobs;
               "--shard"; Measure.Shard.spec_of shard;
               "--journal"; jpath ]
            @ opt "--ranks" (Option.map string_of_int ranks)
            @ opt "--max-steps" (Option.map string_of_int max_steps)
            @ List.concat_map
                (fun (k, v) ->
                  [ "--set"; Printf.sprintf "%s=%d" k v ])
                params
            @ (if resume then [ "--resume" ] else [])
            @ (if resume then []
               else
                 opt "--max-runs"
                   (Option.map string_of_int
                      (List.assoc_opt shard.Measure.Shard.sh_index
                         kill_shards)))
            )
        in
        (match
           Measure.Shard.run_workers ~metrics ~events
             ~mode:design.Measure.Experiment.mode ~expected_header:header
             ~design ~shards:m ~journal:j ~timeout_s:shard_timeout
             ~max_restarts:shard_restarts ~argv ()
         with
        | Ok () -> ()
        | Error msg -> failwith msg);
        let paths = List.init m (Measure.Shard.journal_path ~journal:j) in
        (match
           Measure.Shard.merge_journals ~metrics ~events
             ~mode:design.Measure.Experiment.mode ~expected_header:header
             ~design paths
         with
        | Error msg -> failwith msg
        | Ok mg ->
          if mg.Measure.Shard.mg_missing <> [] then
            failwith
              (Printf.sprintf
                 "shard merge left %d coordinate(s) unmeasured"
                 (List.length mg.Measure.Shard.mg_missing));
          Measure.Shard.write_journal ~header
            ~records:mg.Measure.Shard.mg_records j;
          Fmt.epr "shards: %d journal(s) merged into %s (%d duplicate \
                   record(s) dropped, %d torn line(s) skipped)@."
            mg.Measure.Shard.mg_journals j mg.Measure.Shard.mg_duplicates
            mg.Measure.Shard.mg_torn;
          Measure.Campaign.summarize ~resumed:0 ~interrupted:false
            mg.Measure.Shard.mg_records)
      | Some _, None -> assert false (* checked above *)
      | None, Some j ->
        Measure.Campaign.run_journaled ?pool ~metrics ?trace:sink ~events
          ~plan ~retry ?hang_budget:max_steps ?limit:max_runs ~journal:j
          ~resume spec Mpi_sim.Machine.skylake_cluster design
      | None, None ->
        Measure.Campaign.run ?pool ~metrics ?trace:sink ~events ~plan ~retry
          ?hang_budget:max_steps ?limit:max_runs spec
          Mpi_sim.Machine.skylake_cluster design
    in
    (match (trace, sink) with
    | Some path, Some sink ->
      (try Obs_trace.write_file sink path
       with Sys_error msg -> Fmt.epr "error: cannot write trace: %s@." msg);
      Fmt.epr "trace: %d events written to %s@."
        (List.length (Obs_trace.events sink))
        path
    | _ -> ());
    Fmt.pr "%s campaign (faults: %s)@." name
      (if Measure.Fault.total_rate plan = 0. then "none"
       else Measure.Fault.spec_of plan);
    Fmt.pr "@[<v>%a@]@." Measure.Campaign.pp_report report;
    let gaps =
      Perf_taint.Validation.grid_gaps ~design report.Measure.Campaign.cp_runs
    in
    Fmt.pr "@[<v>%a@]@." Perf_taint.Validation.pp_gap_report gaps;
    (match dump with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun r ->
          output_string oc (Measure.Campaign.run_to_line r);
          output_char oc '\n')
        report.Measure.Campaign.cp_runs;
      close_out oc;
      Fmt.pr "dataset: %d runs dumped to %s@."
        (List.length report.Measure.Campaign.cp_runs)
        path);
    if report.Measure.Campaign.cp_interrupted then
      Fmt.pr "interrupted by --max-runs; continue with --resume@."
    else begin
      let fit_params =
        List.filter_map
          (fun (name, vs) -> if List.length vs > 1 then Some name else None)
          grid
      in
      let data =
        Measure.Experiment.total_dataset report.Measure.Campaign.cp_runs
          ~params:fit_params
      in
      let config = { Model.Search.default_config with Model.Search.pool } in
      let fit, rejected = Model.Search.multi_robust ~config data in
      Fmt.pr "total model (robust fit, %d outliers rejected): %s  (SMAPE \
              %.1f%%)@."
        rejected
        (Model.Expr.to_string fit.Model.Search.model)
        fit.Model.Search.error
    end
  in
  let doc =
    "Execute a fault-injected simulated measurement campaign with \
     retry/backoff and a checkpoint journal, then fit an outlier-robust \
     total-runtime model from whatever survived.  Hangs are killed via \
     the shared $(b,--max-steps) step budget."
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      ret
        (const run $ app_arg $ ranks_arg $ param_arg $ faults_arg
        $ retries_arg $ backoff_arg $ journal_arg $ resume_arg $ max_runs_arg
        $ dump_arg $ reps_arg $ sigma_arg $ seed_arg $ shards_arg $ shard_arg
        $ shard_timeout_arg $ shard_restarts_arg $ kill_shard_arg $ events_arg
        $ trace_arg $ max_steps_arg $ jobs_arg $ engine_arg))

let fuzz_cmd =
  let seed_arg =
    let doc =
      "PRNG seed for the campaign (also settable via $(b,FUZZ_SEED))."
    in
    Arg.(value & opt int (Fuzz.Seed.get ()) & info [ "seed" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc = "Number of random programs to generate and check." in
    Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc = "Directory where minimized counterexamples are saved." in
    Arg.(value & opt string "fuzz-corpus" & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Corpus .pir files to replay against every oracle instead of running \
       a campaign."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let run seed budget corpus files events max_steps jobs =
    error_guard @@ fun () ->
    match files with
    | _ :: _ ->
      let failed = ref 0 in
      List.iter
        (fun file ->
          Fmt.pr "replay %s:@." file;
          List.iter
            (fun (name, verdict) ->
              match verdict with
              | Fuzz.Oracle.Pass -> Fmt.pr "  %-18s ok@." name
              | Fuzz.Oracle.Fail msg ->
                incr failed;
                Fmt.pr "  %-18s FAIL: %s@." name msg)
            (Fuzz.Driver.replay_file ?max_steps file))
        files;
      if !failed > 0 then exit 1
    | [] ->
      with_jobs jobs @@ fun pool ->
      with_events events @@ fun events ->
      let report =
        Fuzz.Driver.run_campaign ?pool ?max_steps ~events ~seed ~budget ()
      in
      Fmt.pr "fuzz campaign: seed %d, budget %d@." seed budget;
      List.iter
        (fun (r : Fuzz.Driver.oracle_result) ->
          match r.or_cx with
          | None -> Fmt.pr "  %-18s %5d programs, ok@." r.or_name r.or_runs
          | Some cx ->
            Fmt.pr "  %-18s %5d programs, FAIL at program %d@." r.or_name
              r.or_runs cx.cx_index)
        report.rp_results;
      let cxs = Fuzz.Driver.counterexamples report in
      if cxs <> [] then begin
        List.iter
          (fun (cx : Fuzz.Driver.counterexample) ->
            let path = Fuzz.Driver.save ~dir:corpus ~seed cx in
            Fmt.pr "@.%s: %s@." cx.cx_oracle cx.cx_message;
            Fmt.pr "minimized to %d lines, saved to %s:@.%s@." cx.cx_lines path
              cx.cx_text)
          cxs;
        exit 1
      end
  in
  let doc =
    "Fuzz the pipeline with random PIR programs checked against \
     differential oracles (taint soundness under parameter perturbation, \
     printer/parser round trip, validator/interpreter agreement, static \
     vs dynamic trip counts, observability invariance, Taint-vs-Plain \
     policy agreement, coverage accounting).  Counterexamples are \
     minimized and saved to the corpus; pass corpus files to replay them."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ budget_arg $ corpus_arg $ replay_arg
        $ events_arg $ max_steps_arg $ jobs_arg))

let report_cmd =
  let bench_files_arg =
    let doc = "BENCH_<exp>.json result files (from the bench runner)." in
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH" ~doc)
  in
  let baselines_arg =
    let doc =
      "Directory of committed baseline BENCH_*.json files; same-named \
       results gain baseline and delta columns."
    in
    Arg.(
      value & opt (some string) None & info [ "baselines" ] ~docv:"DIR" ~doc)
  in
  let journal_report_arg =
    let doc = "Campaign checkpoint journal to summarize." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "A $(b,stats --json) snapshot to include." in
    Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the markdown report to $(docv) instead of stdout." in
    Arg.(
      value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run files baselines journal stats out =
    error_guard @@ fun () ->
    let md =
      Measure.Bench_report.report ?baselines_dir:baselines ?journal ?stats
        ~bench_files:files ()
    in
    match out with
    | None -> print_string md
    | Some path ->
      let oc = open_out path in
      output_string oc md;
      close_out oc;
      Fmt.epr "report written to %s@." path
  in
  let doc =
    "Merge bench results, a campaign journal and a metrics snapshot into \
     one markdown report, with deltas against committed baselines."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      ret
        (const run $ bench_files_arg $ baselines_arg $ journal_report_arg
        $ stats_arg $ out_arg))

(* -- serve / query ----------------------------------------------------------- *)

let socket_arg =
  let doc = "Listen on (or connect to) the Unix socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen on (or connect to) TCP 127.0.0.1:$(docv)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let endpoint_of socket port =
  match (socket, port) with
  | Some p, None -> Serve.Server.Unix_socket p
  | None, Some p -> Serve.Server.Tcp p
  | Some _, Some _ -> failwith "--socket and --port are mutually exclusive"
  | None, None -> failwith "give --socket PATH or --port PORT"

let serve_cmd =
  let catalog_arg =
    let doc =
      "Catalog directory holding the model index ($(docv)/catalog.jsonl); \
       must exist.  A restarted daemon pointed at the same directory \
       serves every previously fitted model without refitting."
    in
    Arg.(
      required & opt (some string) None & info [ "catalog" ] ~docv:"DIR" ~doc)
  in
  let capacity_arg =
    let doc = "Decoded entries held by the in-memory LRU." in
    Arg.(
      value
      & opt int Serve.Catalog.default_capacity
      & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Simulated core-hour admission budget: once cold fits have charged \
       this much (runs + wasted attempts + backoff), further misses are \
       refused with a one-line error while hits keep being served."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-core-hours" ] ~docv:"HOURS" ~doc)
  in
  let max_requests_arg =
    let doc = "Stop after handling $(docv) request lines (tests/CI)." in
    Arg.(
      value & opt (some int) None & info [ "max-requests" ] ~docv:"N" ~doc)
  in
  let run socket port catalog capacity budget max_requests jobs events =
    error_guard @@ fun () ->
    let ep = endpoint_of socket port in
    let metrics = Obs_metrics.create () in
    with_jobs ~metrics jobs @@ fun pool ->
    with_events events @@ fun events ->
    let cat =
      match
        Serve.Catalog.open_ ~metrics ~events ~capacity ~dir:catalog ()
      with
      | Ok c -> c
      | Error msg -> failwith msg
    in
    Fun.protect ~finally:(fun () -> Serve.Catalog.close cat) @@ fun () ->
    let server =
      Serve.Server.create ?pool ~metrics ~events ?max_core_hours:budget
        ~catalog:cat ()
    in
    let fd =
      match Serve.Server.bind_endpoint ep with
      | Ok fd -> fd
      | Error msg -> failwith msg
    in
    Fmt.epr "serve: listening on %s (catalog %s, %d entries)@."
      (Serve.Server.endpoint_name ep)
      (Serve.Catalog.index_path cat)
      (Serve.Catalog.length cat);
    Fun.protect ~finally:(fun () -> Serve.Server.close_endpoint ep fd)
    @@ fun () -> Serve.Server.serve_loop ?max_requests server fd
  in
  let doc =
    "Run the model-serving daemon: line-delimited JSON requests \
     ($(b,predict), $(b,fit), $(b,invalidate), $(b,stats), $(b,shutdown)) \
     over a Unix or TCP socket, answered from a content-addressed catalog \
     of memoized fits (see doc/SERVE.md).  Cache-hit answers are \
     bit-identical to cold fits."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ catalog_arg $ capacity_arg
        $ budget_arg $ max_requests_arg $ jobs_arg $ events_arg))

let query_cmd =
  let requests_arg =
    let doc =
      "Request lines to send (JSON objects); with none, lines are read \
       from stdin."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let attempts_arg =
    let doc =
      "Connection attempts, 50 ms apart (the daemon may still be \
       starting)."
    in
    Arg.(value & opt int 100 & info [ "attempts" ] ~docv:"N" ~doc)
  in
  let run socket port requests attempts =
    error_guard @@ fun () ->
    let ep = endpoint_of socket port in
    let requests =
      match requests with
      | [] ->
        let rec go acc =
          match input_line stdin with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go []
      | rs -> rs
    in
    let requests = List.filter (fun l -> String.trim l <> "") requests in
    if requests = [] then failwith "no requests to send";
    let ic, oc =
      match Serve.Server.connect ~attempts ep with
      | Ok c -> c
      | Error msg -> failwith msg
    in
    List.iter
      (fun r ->
        output_string oc r;
        output_char oc '\n')
      requests;
    flush oc;
    List.iter
      (fun _ ->
        match input_line ic with
        | line -> print_endline line
        | exception End_of_file ->
          failwith "connection closed before all responses arrived")
      requests;
    close_out_noerr oc
  in
  let doc =
    "Send request lines to a running $(b,serve) daemon and print one \
     JSON response line per request."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      ret (const run $ socket_arg $ port_arg $ requests_arg $ attempts_arg))

let main_cmd =
  let doc = "tainted performance modeling (Perf-Taint reproduction)" in
  Cmd.group (Cmd.info "perf-taint" ~version:"1.0.0" ~doc)
    [ analyze_cmd; select_cmd; run_cmd; coverage_cmd; volume_cmd; print_cmd;
      model_cmd; campaign_cmd; profile_cmd; stats_cmd; contention_cmd;
      design_cmd; validate_cmd; fuzz_cmd; report_cmd; serve_cmd; query_cmd ]

let () = exit (Cmd.eval main_cmd)
