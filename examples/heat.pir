; program heat (entry @main)
; A 1-D explicit heat-equation solver in textual PIR: `steps` sweeps over
; a grid of `n` cells with a halo exchange per sweep.  Used by
; examples/custom_program.ml to demonstrate the textual frontend.
func @main(n, steps) {
entry:
  %n1 = prim !taint:n(%n)
  %steps1 = prim !taint:steps(%steps)
  %p = prim !mpi_comm_size()
  %local = div %n1, %p
  %grid = alloc %local
  call @init(%grid, %local)
  %s = 0
  jump loop.header
loop.header:
  %c = lt %s, %steps1
  br %c ? loop.body : loop.exit
loop.body:
  call @exchange_halo()
  call @sweep(%grid, %local)
  %s = add %s, 1
  jump loop.header
loop.exit:
  call @checksum(%grid, %local)
  ret ()
}

func @init(grid, local) {
entry:
  %i = 0
  jump loop.header
loop.header:
  %c = lt %i, %local
  br %c ? loop.body : loop.exit
loop.body:
  store %grid[%i] := 0
  %i = add %i, 1
  jump loop.header
loop.exit:
  ret ()
}

func @sweep(grid, local) {
entry:
  %i = 1
  %stop = sub %local, 1
  jump loop.header
loop.header:
  %c = lt %i, %stop
  br %c ? loop.body : loop.exit
loop.body:
  %left = sub %i, 1
  %right = add %i, 1
  %a = load %grid[%left]
  %b = load %grid[%right]
  %sum = add %a, %b
  store %grid[%i] := %sum
  prim !work(3)
  %i = add %i, 1
  jump loop.header
loop.exit:
  ret ()
}

func @exchange_halo() {
entry:
  prim !mpi_isend(1)
  prim !mpi_irecv(1)
  prim !mpi_wait()
  prim !mpi_wait()
  ret ()
}

func @checksum(grid, local) {
entry:
  %acc = 0
  %i = 0
  jump loop.header
loop.header:
  %c = lt %i, %local
  br %c ? loop.body : loop.exit
loop.body:
  %v = load %grid[%i]
  %acc = add %acc, %v
  %i = add %i, 1
  jump loop.header
loop.exit:
  %r = prim !mpi_allreduce(1)
  ret %acc
}
