(* Hunting hardware contention with white-box models (paper Figure 5/C1).

   We sweep the number of MPI ranks per node at a fixed problem
   configuration.  The taint analysis proves the application code cannot
   depend on the placement parameter r, so when statistically sound
   measurements of compute kernels *do* grow with r, the pipeline
   concludes the effect is external — here, memory-bandwidth contention.

   Run with: dune exec examples/finding_contention.exe *)

let machine = Mpi_sim.Machine.skylake_cluster

let () =
  let t =
    Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
      Apps.Lulesh.program ~args:Apps.Lulesh.taint_args
  in
  let selective =
    Measure.Instrument.SSet.of_list
      (Perf_taint.Pipeline.relevant_functions t
         ~model_params:Apps.Lulesh.model_params
      @ Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used t))
  in
  (* The r-sweep: p and size fixed, placement varies. *)
  let design =
    {
      Measure.Experiment.grid =
        [ ("p", [ 64. ]); ("size", [ 30. ]);
          ("r", [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18. ]) ];
      reps = 5;
      mode = Measure.Instrument.Selective selective;
      sigma = 0.02;
      seed = 3;
    }
  in
  let runs = Measure.Experiment.run_design Apps.Lulesh_spec.app machine design in

  Fmt.pr "== application wall time vs ranks per node ==@.";
  let total = Measure.Experiment.total_dataset runs ~params:[ "r" ] in
  List.iter
    (fun (pt : Model.Dataset.point) ->
      Fmt.pr "  r=%2.0f  %6.1f s@."
        (Model.Dataset.coord pt "r")
        (Model.Dataset.point_mean pt))
    total.Model.Dataset.points;
  let fit = Model.Search.multi total in
  Fmt.pr "  model: %s@.@." (Model.Expr.to_string fit.Model.Search.model);

  (* Contention detection: models contradicting the taint analysis. *)
  let datasets =
    List.filter_map
      (fun k ->
        let d = Measure.Experiment.kernel_dataset runs ~params:[ "r" ] ~kernel:k in
        if d.Model.Dataset.points = [] then None else Some (k, d))
      (Measure.Instrument.SSet.elements selective)
  in
  let findings = Perf_taint.Validation.detect_contention t datasets in
  Fmt.pr "== contention findings ==@.";
  Fmt.pr "%d of %d functions depend on r empirically but not in the code:@."
    (List.length findings) (List.length datasets);
  List.iter
    (fun (f : Perf_taint.Validation.contention_finding) ->
      Fmt.pr "  %-36s %s@." f.cf_func (Model.Expr.to_string f.cf_model))
    findings;
  Fmt.pr
    "@.-> the placement parameter taints nothing, so the growth must be a \
     hardware effect (shared memory bandwidth).@."
