(* A scaling study of mini-LULESH, following the paper's cost pipeline
   (Section A): pick model parameters with the coverage report, derive the
   instrumentation selection, compare the core-hour cost of the
   measurement campaign under full vs selective instrumentation, and fit
   models for the hottest kernels.

   Run with: dune exec examples/scaling_study.exe *)

let machine = Mpi_sim.Machine.skylake_cluster

let () =
  (* 1. Tainted run at the paper's configuration (size=5, 8 ranks). *)
  let t =
    Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
      Apps.Lulesh.program ~args:Apps.Lulesh.taint_args
  in

  (* 2. Which parameters matter?  The coverage table drives the choice. *)
  Fmt.pr "== parameter coverage ==@.";
  List.iter
    (fun (r : Perf_taint.Report.coverage_row) ->
      Fmt.pr "  %-8s functions=%2d loops=%2d@." r.cov_param r.cov_functions
        r.cov_loops)
    (Perf_taint.Report.coverage t ~params:Apps.Lulesh.all_params);
  let model_params = [ "p"; "size" ] in
  Fmt.pr "-> modeling in (p, size)@.@.";

  (* 3. Instrumentation selection. *)
  let relevant = Perf_taint.Pipeline.relevant_functions t ~model_params in
  let selective =
    Measure.Instrument.SSet.of_list
      (relevant @ Ir.Cfg.SSet.elements (Perf_taint.Pipeline.mpi_routines_used t))
  in
  Fmt.pr "== instrumentation: %d of %d functions selected ==@.@."
    (List.length relevant)
    (List.length Apps.Lulesh.program.Ir.Types.funcs);

  (* 4. Cost of the measurement campaign. *)
  let design mode =
    {
      Measure.Experiment.grid =
        [ ("p", Apps.Lulesh_spec.p_values);
          ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ];
      reps = 5;
      mode;
      sigma = 0.02;
      seed = 42;
    }
  in
  let cost mode =
    Measure.Experiment.core_hours
      (Measure.Experiment.run_design Apps.Lulesh_spec.app machine (design mode))
  in
  Fmt.pr "== campaign cost ==@.";
  Fmt.pr "  full instrumentation:      %8.0f core-hours@."
    (cost Measure.Instrument.Full);
  Fmt.pr "  taint-based instrumentation: %6.0f core-hours@.@."
    (cost (Measure.Instrument.Selective selective));

  (* 5. Models of the hottest kernels from the selective campaign. *)
  let runs =
    Measure.Experiment.run_design Apps.Lulesh_spec.app machine
      (design (Measure.Instrument.Selective selective))
  in
  Fmt.pr "== hybrid models (per-invocation time) ==@.";
  List.iter
    (fun kernel ->
      let data =
        Measure.Experiment.kernel_dataset runs ~params:model_params ~kernel
      in
      let constraints =
        Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
          ~model_params kernel
      in
      let r = Model.Search.multi ~constraints data in
      Fmt.pr "  %-36s %s@." kernel (Model.Expr.to_string r.Model.Search.model))
    [ "integrate_stress_for_elems"; "calc_q_for_elems"; "comm_reduce_dt";
      "calc_force_for_nodes"; "eval_eos_for_elems" ]
