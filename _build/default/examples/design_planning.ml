(* Planning a measurement campaign with the taint-derived design generator
   (paper A1/A2 operationalized).

   Given the parameters an engineer is willing to sweep, the planner
   decides — from one tainted run — which have no performance effect,
   which only scale the whole computation linearly (LULESH's iters) and
   can be fixed, and which must be swept jointly because their loops nest.

   Run with: dune exec examples/design_planning.exe *)

let () =
  let t =
    Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
      Apps.Lulesh.program ~args:Apps.Lulesh.taint_args
  in
  let axes =
    [
      { Perf_taint.Design.param = "p"; values = [ 8.; 27.; 64.; 216.; 729. ] };
      { param = "size"; values = [ 25.; 30.; 35.; 40.; 45. ] };
      { param = "iters"; values = [ 1000.; 2000.; 4000. ] };
      { param = "regions"; values = [ 4.; 8.; 11. ] };
      { param = "balance"; values = [ 1.; 2. ] };
      { param = "cost"; values = [ 1.; 2. ] };
      (* a red herring: logging verbosity *)
      { param = "verbose"; values = [ 0.; 1. ] };
    ]
  in
  let plan = Perf_taint.Design.propose t ~axes ~reps:5 in
  Fmt.pr "%a@." Perf_taint.Design.pp_plan plan;
  Fmt.pr
    "@.The paper's modeling study then narrows further to the two broadest \
     parameters (p, size), giving the 25-point design of Table 2.@."
