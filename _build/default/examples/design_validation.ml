(* Validating an experiment design before spending core-hours on it
   (paper C2).

   MILC's gather layer switches communication algorithm at a rank-count
   threshold.  Tainted runs at a handful of configurations reveal
   parameter-dependent branches that flip inside the planned modeling
   domain — a warning that one PMNF expression cannot represent the data
   and the domain should be split.

   Run with: dune exec examples/design_validation.exe *)

let analyze_at p =
  Perf_taint.Pipeline.analyze
    ~world:{ Mpi_sim.Runtime.ranks = p; rank = 0 }
    Apps.Milc.program ~args:Apps.Milc.taint_args

let () =
  let planned = [ 4; 8; 16; 32; 64 ] in
  Fmt.pr "planned modeling domain: p in {%s}@.@."
    (String.concat ", " (List.map string_of_int planned));

  (* Cheap tainted runs at the domain corners and midpoints. *)
  let runs = List.map analyze_at planned in
  let findings = Perf_taint.Validation.validate_design ~model_params:[ "p" ] runs in

  if findings = [] then Fmt.pr "design ok: no qualitative behavior changes@."
  else begin
    Fmt.pr "== design warnings ==@.";
    List.iter
      (fun (f : Perf_taint.Validation.design_finding) ->
        Fmt.pr "  %s (block %s), condition tainted by {%s}:@." f.df_func
          f.df_block
          (String.concat "," f.df_params);
        Fmt.pr "    behavior per p: %s@."
          (String.concat " "
             (List.map2
                (fun p (_, b) ->
                  Printf.sprintf "p=%d:%s" p
                    (Perf_taint.Validation.behavior_name b))
                planned f.df_behaviors)))
      findings;
    Fmt.pr
      "@.-> split the domain at the algorithm switch (p <= 8 vs p > 8) and \
       model each regime separately.@."
  end;

  (* Show the fit-quality consequence. *)
  let fit p_values =
    let design =
      {
        Measure.Experiment.grid =
          [ ("p", p_values); ("size", [ 128. ]); ("r", [ 8. ]) ];
        reps = 5;
        mode = Measure.Instrument.Full;
        sigma = 0.02;
        seed = 5;
      }
    in
    let runs =
      Measure.Experiment.run_design Apps.Milc_spec.app
        Mpi_sim.Machine.skylake_cluster design
    in
    let data =
      Measure.Experiment.kernel_dataset runs ~params:[ "p" ]
        ~kernel:"start_gather"
    in
    Model.Search.multi data
  in
  let across = fit [ 4.; 8.; 16.; 32.; 64. ] in
  let below = fit [ 2.; 4.; 6.; 8. ] in
  let above = fit [ 16.; 32.; 64.; 128. ] in
  Fmt.pr "@.start_gather fit quality (SMAPE):@.";
  Fmt.pr "  across the switch: %5.1f%%  (%s)@." across.Model.Search.error
    (Model.Expr.to_string across.Model.Search.model);
  Fmt.pr "  p <= 8 only:       %5.1f%%  (%s)@." below.Model.Search.error
    (Model.Expr.to_string below.Model.Search.model);
  Fmt.pr "  p >= 16 only:      %5.1f%%  (%s)@." above.Model.Search.error
    (Model.Expr.to_string above.Model.Search.model)
