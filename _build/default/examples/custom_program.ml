(* Analyzing a user-supplied program written in textual PIR.

   The .pir frontend plays the role of the LLVM IR input of the original
   tool: any program lowered to PIR can be analyzed without touching the
   OCaml API.  This example loads a small heat-equation solver, runs the
   pipeline, and prints what a performance engineer needs before setting
   up experiments.

   Run with: dune exec examples/custom_program.exe *)

let source = Filename.concat (Filename.dirname Sys.argv.(0)) "heat.pir"

let fallback = "examples/heat.pir"

let () =
  let path = if Sys.file_exists source then source else fallback in
  let program = Ir.Parser.parse_file path in
  (match Ir.Validate.check_program program with
  | [] -> ()
  | issues ->
    List.iter (fun i -> Fmt.epr "%a@." Ir.Validate.pp_issue i) issues);

  (* Tainted run: n=64 cells, 5 steps, on 4 simulated ranks. *)
  let t =
    Perf_taint.Pipeline.analyze
      ~world:{ Mpi_sim.Runtime.ranks = 4; rank = 0 }
      program
      ~args:[ Ir.Types.VInt 64; Ir.Types.VInt 5 ]
  in

  Fmt.pr "== %s ==@." program.Ir.Types.pname;
  Fmt.pr "%a@.@."
    Perf_taint.Report.pp_overview
    (Perf_taint.Report.overview t ~model_params:[ "p"; "n"; "steps" ]);

  Fmt.pr "dependencies:@.@[<v>%a@]@." Perf_taint.Report.pp_deps t;

  (* The sweep loop is bounded by n/p: a multi-label condition, so the
     analysis conservatively reports an (n, p) multiplicative pair. *)
  Fmt.pr "sweep: n with p multiplicative? %b@."
    (Perf_taint.Deps.multiplicative_ok t.deps "sweep" "n" "p");
  Fmt.pr "sweep: n with steps multiplicative? %b (steps loop encloses it)@."
    (Perf_taint.Deps.multiplicative_ok t.deps "sweep" "n" "steps");

  (* Static phase results. *)
  Fmt.pr "@.statically constant functions: %s@."
    (String.concat ", "
       (List.filter
          (fun f -> Static_an.Classify.is_pruned t.static f)
          (List.map
             (fun (f : Ir.Types.func) -> f.Ir.Types.fname)
             program.Ir.Types.funcs)))
