examples/quickstart.ml: Apps Fmt Ir List Model Perf_taint Random
