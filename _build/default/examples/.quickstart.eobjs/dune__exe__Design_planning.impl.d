examples/design_planning.ml: Apps Fmt Perf_taint
