examples/finding_contention.mli:
