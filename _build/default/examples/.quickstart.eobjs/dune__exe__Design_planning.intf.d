examples/design_planning.mli:
