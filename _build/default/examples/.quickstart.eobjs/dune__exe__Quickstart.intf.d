examples/quickstart.mli:
