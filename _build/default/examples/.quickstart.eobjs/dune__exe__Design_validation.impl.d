examples/design_validation.ml: Apps Fmt List Measure Model Mpi_sim Perf_taint Printf String
