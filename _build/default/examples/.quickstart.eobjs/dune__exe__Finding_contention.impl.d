examples/finding_contention.ml: Apps Fmt Ir List Measure Model Mpi_sim Perf_taint
