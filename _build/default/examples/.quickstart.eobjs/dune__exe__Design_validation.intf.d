examples/design_validation.mli:
