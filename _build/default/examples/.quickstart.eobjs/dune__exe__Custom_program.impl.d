examples/custom_program.ml: Array Filename Fmt Ir List Mpi_sim Perf_taint Static_an String Sys
