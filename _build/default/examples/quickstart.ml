(* Quickstart: tainted performance modeling of a small program, end to end.

   Build a program in the PIR builder eDSL, mark its performance
   parameters (the paper's one-line register_variable), run the taint
   analysis, inspect which parameters can affect which loops, and use the
   result to keep an empirical modeler from overfitting noisy
   measurements.

   Run with: dune exec examples/quickstart.exe *)

open Ir.Types
module B = Ir.Builder

(* A toy solver: a setup phase linear in n, an iteration phase that runs
   steps * n work items, and a verbose-mode branch that never affects the
   loop structure. *)
let program =
  let setup =
    B.define "setup" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ ->
            B.work b (Int 2));
        B.ret_unit b)
  in
  let solve =
    B.define "solve" ~params:[ "n"; "steps" ] (fun b ->
        B.for_ b "s" ~from:(Int 0) ~below:(Reg "steps") (fun _ ->
            B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ ->
                B.work b (Int 5)));
        B.ret_unit b)
  in
  let log_stats =
    B.define "log_stats" ~params:[ "verbose" ] (fun b ->
        let on = B.gt b (Reg "verbose") (Int 0) in
        B.if_ b on ~then_:(fun () -> B.work b (Int 1)) ();
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "n"; "steps"; "verbose" ] (fun b ->
        (* register_variable(&n, "n") etc. *)
        let n = Apps.Dsl.register b "n" (Reg "n") in
        let steps = Apps.Dsl.register b "steps" (Reg "steps") in
        let verbose = Apps.Dsl.register b "verbose" (Reg "verbose") in
        B.call_unit b "setup" [ n ];
        B.call_unit b "solve" [ n; steps ];
        B.call_unit b "log_stats" [ verbose ];
        B.ret_unit b)
  in
  B.program "quickstart" ~entry:"main" [ main; setup; solve; log_stats ]

let () =
  (* 1. One tainted run at a small configuration. *)
  let t =
    Perf_taint.Pipeline.analyze program ~args:[ VInt 8; VInt 3; VInt 0 ]
  in
  Fmt.pr "== taint analysis ==@.";
  Fmt.pr "@[<v>%a@]@." Perf_taint.Report.pp_deps t;
  (* solve's loops depend on {n, steps}, nested -> multiplicative. *)
  Fmt.pr "solve: n x steps multiplicative? %b@.@."
    (Perf_taint.Deps.multiplicative_ok t.deps "solve" "n" "steps");

  (* 2. Synthetic noisy measurements of solve: truth is 1e-4 * n * steps. *)
  let rng = Random.State.make [| 7 |] in
  let noisy v = v *. (1. +. (0.05 *. (Random.State.float rng 2. -. 1.))) in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun steps ->
            ( [ ("n", n); ("steps", steps) ],
              [ noisy (1e-4 *. n *. steps); noisy (1e-4 *. n *. steps) ] ))
          [ 2.; 4.; 8.; 16.; 32. ])
      [ 16.; 32.; 64.; 128.; 256. ]
  in
  let data = Model.Dataset.of_rows [ "n"; "steps" ] rows in

  (* 3. Fit with and without the taint-derived constraints. *)
  let black = Model.Search.multi data in
  let constraints =
    Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
      ~model_params:[ "n"; "steps" ] "solve"
  in
  let tainted = Model.Search.multi ~constraints data in
  Fmt.pr "== models of solve ==@.";
  Fmt.pr "black-box: %s@." (Model.Expr.to_string black.Model.Search.model);
  Fmt.pr "tainted:   %s@." (Model.Expr.to_string tainted.Model.Search.model);
  Fmt.pr "(truth:    1e-4 * n * steps)@."
