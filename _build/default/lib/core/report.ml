(** Human-readable reports mirroring the paper's tables: the two-phase
    pruning overview (Table 2) and the per-parameter coverage counts used
    for parameter selection (Table 3). *)

module SSet = Ir.Cfg.SSet

type overview = {
  ov_app : string;
  ov_functions : int;          (** application functions + MPI routines used *)
  ov_pruned_static : int;
  ov_pruned_dynamic : int;     (** includes functions never executed *)
  ov_kernels : int;
  ov_comm_routines : int;
  ov_mpi_functions : int;
  ov_loops : int;
  ov_loops_pruned_static : int;
  ov_loops_relevant : int;
}

(** Compute the Table 2 row for an analysis, w.r.t. model parameters. *)
let overview (t : Pipeline.t) ~model_params =
  let app = t.program.Ir.Types.pname in
  let mpi = SSet.cardinal (Pipeline.mpi_routines_used t) in
  let count st = List.length (Pipeline.functions_with t ~model_params st) in
  {
    ov_app = app;
    (* The paper counts the MPI routines themselves among the functions. *)
    ov_functions = List.length t.program.Ir.Types.funcs + mpi;
    ov_pruned_static = count Pipeline.Pruned_static;
    ov_pruned_dynamic =
      count Pipeline.Pruned_dynamic + count Pipeline.Unexecuted;
    ov_kernels = count Pipeline.Kernel;
    ov_comm_routines = count Pipeline.Comm_routine;
    ov_mpi_functions = mpi;
    ov_loops = t.static.Static_an.Classify.total_loops;
    ov_loops_pruned_static = t.static.Static_an.Classify.constant_loops;
    ov_loops_relevant = Pipeline.relevant_loops t ~model_params;
  }

let pp_overview ppf ov =
  Fmt.pf ppf
    "@[<v>%s:@ \
     functions: %d total, %d pruned statically, %d pruned dynamically@ \
     kernels/comm/MPI: %d/%d/%d@ \
     loops: %d total, %d pruned statically, %d relevant@]"
    ov.ov_app ov.ov_functions ov.ov_pruned_static ov.ov_pruned_dynamic
    ov.ov_kernels ov.ov_comm_routines ov.ov_mpi_functions ov.ov_loops
    ov.ov_loops_pruned_static ov.ov_loops_relevant

(** Per-parameter coverage: how many (relevant) functions and loops each
    parameter affects — Table 3. *)
type coverage_row = {
  cov_param : string;
  cov_functions : int;
  cov_loops : int;
}

let coverage (t : Pipeline.t) ~params =
  List.map
    (fun p ->
      {
        cov_param = p;
        cov_functions = List.length (Pipeline.functions_affected_by t p);
        cov_loops = Pipeline.loops_affected_by t p;
      })
    params

(** Functions/loops affected by at least one of [params] (the "p, size"
    column of Table 3: not the sum of the columns, since regions can be
    affected by several parameters). *)
let combined_coverage (t : Pipeline.t) ~params =
  let funcs =
    List.concat_map (fun p -> Pipeline.functions_affected_by t p) params
    |> List.sort_uniq compare
    |> List.length
  in
  let module SMap = Ir.Cfg.SMap in
  let loops =
    SMap.fold
      (fun fname fd acc ->
        List.fold_left
          (fun acc (ld : Deps.loop_dep) ->
            if SSet.exists (fun q -> List.mem q params) ld.Deps.ld_params then
              (fname, ld.Deps.ld_header) :: acc
            else acc)
          acc fd.Deps.fd_loops)
      t.deps []
    |> List.sort_uniq compare
    |> List.length
  in
  (funcs, loops)

let pp_coverage ppf rows =
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s functions=%3d loops=%3d@ " r.cov_param r.cov_functions
        r.cov_loops)
    rows

(** Table of per-function dependency summaries, for debugging and the
    examples. *)
let pp_deps ppf (t : Pipeline.t) =
  let module SMap = Ir.Cfg.SMap in
  SMap.iter
    (fun fname fd ->
      Fmt.pf ppf "@[<h>%-28s params={%a} comm={%a} mult=[%a]@]@ " fname
        Fmt.(list ~sep:(any ",") string)
        (SSet.elements fd.Deps.fd_params)
        Fmt.(list ~sep:(any ",") string)
        (SSet.elements fd.Deps.fd_comm_params)
        Fmt.(list ~sep:(any ";") (pair ~sep:(any "*") string string))
        fd.Deps.fd_multiplicative)
    t.deps
