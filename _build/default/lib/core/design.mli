(** Experiment-design generation from taint results (paper A1/A2):
    which parameters to fix, which to sweep jointly (multiplicative
    dependencies) and which to sweep independently (additive). *)

module SSet = Ir.Cfg.SSet

type axis = { param : string; values : float list }

type decision =
  | Swept_jointly of string list
  | Swept_alone
  | Fixed_irrelevant
  | Fixed_global_factor
      (** scales the whole computation linearly (LULESH's iters) *)

type plan = {
  axes : axis list;
  decisions : (string * decision) list;
  groups : string list list;
  runs_full_factorial : int;
  runs_planned : int;
  reps : int;
}

val is_global_factor : Pipeline.t -> string -> bool
val all_mult_pairs : Pipeline.t -> (string * string) list

val propose : Pipeline.t -> axes:axis list -> reps:int -> plan

val decision_name : decision -> string
val pp_plan : plan Fmt.t
