(** Symbolic iteration volume of loop nests and whole programs — the
    composition rules of paper Sections 4.2/4.3: loop counts are
    constants or unresolved g(params) functions; sequencing adds, nesting
    multiplies; absent recursion the call-tree accumulation yields the
    program's asymptotic compute volume (Theorem 1). *)

module SSet = Ir.Cfg.SSet

type expr =
  | Const of int
  | Count of { func : string; header : string; params : SSet.t }
      (** an unresolved loop-count function g(params) *)
  | Sum of expr list
  | Product of expr list
  | Unknown of string  (** recursion or unsupported structure *)

val sum : expr list -> expr
(** Flattening, constant-folding sum. *)

val product : expr list -> expr
(** Flattening, constant-folding, zero-annihilating product. *)

val eval_with : (func:string -> header:string -> float) -> expr -> float
(** Evaluate with concrete values for the unresolved loop counts; [nan]
    when the expression contains [Unknown]. *)

val normalize : expr -> expr
(** Merge syntactically equal summands: k1*E + k2*E -> (k1+k2)*E. *)

val params : expr -> SSet.t
val is_constant : expr -> bool
val pp : expr Fmt.t
val to_string : expr -> string

val of_function : Pipeline.t -> string -> expr
(** Intraprocedural iteration volume (Section 4.2). *)

val inclusive : ?seen:SSet.t -> Pipeline.t -> string -> expr
(** Inclusive volume: own loops plus callees' volumes multiplied by the
    counts of the loops enclosing each call site (Theorem 1). *)

val of_program : Pipeline.t -> expr
(** Normalised inclusive volume of the entry function. *)

val asymptotic_params : Pipeline.t -> string -> SSet.t
(** Claim 2: parameters bounding how often any basic block of the
    function (inclusively) executes. *)
