(** Hybrid empirical modeling (paper Section 4.5): the taint analysis
    restricts the Extra-P search space per function — parameters proven
    irrelevant are removed, and product terms are only allowed for
    parameter pairs whose loops actually nest. *)

module SSet = Ir.Cfg.SSet

type mode =
  | Black_box  (** plain Extra-P: all parameters, all term shapes *)
  | Tainted    (** Perf-Taint: search space restricted by the analysis *)

let mode_name = function Black_box -> "black-box" | Tainted -> "tainted"

(* Dependency set of a name: an application function's taint-derived set,
   or — for an MPI routine — the library-database set (Section 5.3). *)
let dep_set (t : Pipeline.t) fname =
  match Deps.find t.deps fname with
  | Some fd -> fd.Deps.fd_params
  | None ->
    Option.value ~default:SSet.empty
      (Ir.Cfg.SMap.find_opt fname t.Pipeline.mpi_params)

let is_mpi_routine (t : Pipeline.t) fname =
  Deps.find t.deps fname = None
  && Ir.Cfg.SMap.mem fname t.Pipeline.mpi_params

(** Search constraints for [fname]'s model under [mode]. *)
let constraints (t : Pipeline.t) mode ~model_params fname =
  match mode with
  | Black_box -> Model.Search.unconstrained
  | Tainted ->
    let fd_params = dep_set t fname in
    let allowed = List.filter (fun p -> SSet.mem p fd_params) model_params in
    let multiplicative a b =
      if is_mpi_routine t fname then
        (* Library-database dependencies have no loop structure to refine
           the term shapes: conservatively allow products. *)
        SSet.mem a fd_params && SSet.mem b fd_params
      else Deps.multiplicative_ok t.deps fname a b
    in
    { Model.Search.allowed = Some allowed; multiplicative = Some multiplicative }

(** Like [constraints], but with model-parameter aliases: MILC's modeling
    parameter [size] stands for the four program parameters nx, ny, nz,
    nt, so a dependency on any of them allows [size] in the model.
    [aliases] maps a model parameter to the program parameters it
    represents (itself is always included). *)
let constraints_aliased (t : Pipeline.t) mode ~model_params ~aliases fname =
  match mode with
  | Black_box -> Model.Search.unconstrained
  | Tainted ->
    let expand m =
      m :: (match List.assoc_opt m aliases with Some l -> l | None -> [])
    in
    let fd_params = dep_set t fname in
    let covered m = List.exists (fun q -> SSet.mem q fd_params) (expand m) in
    let allowed = List.filter covered model_params in
    let mult a b =
      if is_mpi_routine t fname then covered a && covered b
      else
        List.exists
          (fun a' ->
            List.exists
              (fun b' -> Deps.multiplicative_ok t.deps fname a' b')
              (expand b))
          (expand a)
    in
    { Model.Search.allowed = Some allowed; multiplicative = Some mult }

(** Model one function's measurements.  In tainted mode, a function whose
    dependency set is empty is constant by construction — the modeler only
    fits the intercept, eliminating the overfitted constant-function models
    of B1. *)
let model_function ?config (t : Pipeline.t) mode ~model_params ~fname data =
  let c = constraints t mode ~model_params fname in
  Model.Search.multi ?config ~constraints:c data

(** Model the total application runtime. *)
let model_total ?config ?(constraints = Model.Search.unconstrained) data =
  Model.Search.multi ?config ~constraints data

(** A function's empirical model shows a dependency the taint analysis
    proved impossible: the signature of external interference such as
    hardware contention (paper C1). *)
let contradicts_taint (t : Pipeline.t) ~fname (result : Model.Search.result) =
  let empirical = SSet.of_list (Model.Expr.parameters result.Model.Search.model) in
  let tainted = Deps.params t.deps fname in
  SSet.diff empirical tainted
