(** Scalability-bug hunting with the fitted models — the flagship
    application of empirical modeling the paper's introduction cites
    (Calotoiu et al., SC'13): extrapolate every function's model to a
    target scale, rank by predicted share of the total time, and flag
    functions whose share grows so fast that they will dominate at scale
    even though they are negligible in the measured range. *)

type entry = {
  e_func : string;
  e_model : Model.Expr.model;
  e_measured : float;   (** predicted time at the baseline configuration *)
  e_projected : float;  (** predicted time at the target configuration *)
  e_share_measured : float;
  e_share_projected : float;
  e_growth : float;     (** projected / measured (1.0 = flat) *)
}

type ranking = {
  baseline : (string * float) list;
  target : (string * float) list;
  entries : entry list;  (** sorted by projected time, descending *)
  total_measured : float;
  total_projected : float;
}

(** Rank fitted per-function models between a baseline and a target
    configuration.  [models] pairs function names with their fitted
    models (per-invocation or aggregate — shares are scale-free as long
    as the metric is consistent). *)
let rank ~baseline ~target models =
  let eval m coords = Float.max 0. (Model.Expr.eval m coords) in
  let raw =
    List.map
      (fun (f, m) -> (f, m, eval m baseline, eval m target))
      models
  in
  let total_measured =
    List.fold_left (fun acc (_, _, b, _) -> acc +. b) 0. raw
  in
  let total_projected =
    List.fold_left (fun acc (_, _, _, t) -> acc +. t) 0. raw
  in
  let entries =
    List.map
      (fun (f, m, b, t) ->
        {
          e_func = f;
          e_model = m;
          e_measured = b;
          e_projected = t;
          e_share_measured = (if total_measured > 0. then b /. total_measured else 0.);
          e_share_projected = (if total_projected > 0. then t /. total_projected else 0.);
          e_growth = (if b > 0. then t /. b else Float.infinity);
        })
      raw
    |> List.sort (fun a b -> compare b.e_projected a.e_projected)
  in
  { baseline; target; entries; total_measured; total_projected }

(** Functions whose share at the target exceeds [share] (default 10%)
    although their measured share was below [measured_below] (default
    5%): the classic scalability-bug signature. *)
let bugs ?(share = 0.10) ?(measured_below = 0.05) ranking =
  List.filter
    (fun e ->
      e.e_share_projected >= share && e.e_share_measured < measured_below)
    ranking.entries

let pp_entry ppf e =
  Fmt.pf ppf "%-32s %8.3gs -> %8.3gs (share %4.1f%% -> %4.1f%%)  %s"
    e.e_func e.e_measured e.e_projected
    (100. *. e.e_share_measured)
    (100. *. e.e_share_projected)
    (Model.Expr.to_string e.e_model)

let pp_ranking ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter (fun e -> Fmt.pf ppf "%a@ " pp_entry e) r.entries;
  Fmt.pf ppf "total: %.3gs -> %.3gs@]" r.total_measured r.total_projected
