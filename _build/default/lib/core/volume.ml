(** Symbolic iteration volume of loop nests and whole programs — the
    composition rules of paper Sections 4.2 and 4.3.

    The base case is a single loop: its volume is its iteration count,
    either a static constant (from the trip-count analysis) or an
    unresolved symbolic function [g(p1..pn)] over the parameters the taint
    analysis found in its exit conditions.  Sequencing adds volumes,
    nesting multiplies them (both over-approximations), and — absent
    recursion — accumulating over the call tree yields the asymptotic
    compute volume of the whole program (Theorem 1).  The expressions are
    the "scaffolding" the empirical modeler parametrises. *)

module SSet = Ir.Cfg.SSet
module SMap = Ir.Cfg.SMap

type expr =
  | Const of int
  | Count of { func : string; header : string; params : SSet.t }
      (** an unresolved loop-count function g(params) *)
  | Sum of expr list
  | Product of expr list
  | Unknown of string  (** recursion or other unsupported structure *)

(* -- smart constructors with flattening/constant folding ------------------- *)

let rec flatten_sum = function
  | Sum es -> List.concat_map flatten_sum es
  | e -> [ e ]

let rec flatten_product = function
  | Product es -> List.concat_map flatten_product es
  | e -> [ e ]

let sum es =
  let es = List.concat_map flatten_sum es in
  let consts, rest =
    List.partition_map
      (function Const k -> Left k | e -> Right e)
      es
  in
  let c = List.fold_left ( + ) 0 consts in
  match (c, rest) with
  | c, [] -> Const c
  | 0, [ e ] -> e
  | 0, es -> Sum es
  | c, es -> Sum (es @ [ Const c ])

let product es =
  let es = List.concat_map flatten_product es in
  if List.exists (function Const 0 -> true | _ -> false) es then Const 0
  else
    let consts, rest =
      List.partition_map (function Const k -> Left k | e -> Right e) es
    in
    let c = List.fold_left ( * ) 1 consts in
    match (c, rest) with
    | c, [] -> Const c
    | 1, [ e ] -> e
    | 1, es -> Product es
    | c, es -> Product (Const c :: es)

(** Normalise: expand nothing, but merge syntactically equal summands —
    k1*E + k2*E becomes (k1+k2)*E — so program volumes stay readable. *)
let rec normalize e =
  match e with
  | Const _ | Count _ | Unknown _ -> e
  | Product es -> product (List.map normalize es)
  | Sum es ->
    let es = List.concat_map flatten_sum (List.map normalize es) in
    (* Split each summand into (coefficient, sorted symbolic factors). *)
    let split e =
      match flatten_product e with
      | fs ->
        let consts, rest =
          List.partition_map (function Const k -> Left k | f -> Right f) fs
        in
        (List.fold_left ( * ) 1 consts, List.sort compare rest)
    in
    let table = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        let k, key = split e in
        match Hashtbl.find_opt table key with
        | None ->
          order := key :: !order;
          Hashtbl.replace table key k
        | Some k0 -> Hashtbl.replace table key (k0 + k))
      es;
    sum
      (List.rev_map
         (fun key ->
           let k = Hashtbl.find table key in
           product (Const k :: key))
         !order)

(** Evaluate an expression given a value for every unresolved loop count
    (e.g. the per-entry iteration averages observed by a tainted run):
    turns the symbolic scaffolding into a concrete basic-block-execution
    bound, letting tests check Claim 2 empirically. *)
let rec eval_with lookup = function
  | Const k -> float_of_int k
  | Count { func; header; _ } -> lookup ~func ~header
  | Sum es -> List.fold_left (fun acc e -> acc +. eval_with lookup e) 0. es
  | Product es ->
    List.fold_left (fun acc e -> acc *. eval_with lookup e) 1. es
  | Unknown _ -> Float.nan

(** Parameters the expression depends on. *)
let rec params = function
  | Const _ -> SSet.empty
  | Count c -> c.params
  | Sum es | Product es ->
    List.fold_left (fun acc e -> SSet.union acc (params e)) SSet.empty es
  | Unknown _ -> SSet.empty

let rec is_constant = function
  | Const _ -> true
  | Count c -> SSet.is_empty c.params
  | Sum es | Product es -> List.for_all is_constant es
  | Unknown _ -> false

let rec pp ppf = function
  | Const k -> Fmt.int ppf k
  | Count { params = ps; _ } when SSet.is_empty ps -> Fmt.string ppf "g()"
  | Count { params = ps; _ } ->
    Fmt.pf ppf "g(%s)" (String.concat "," (SSet.elements ps))
  | Sum es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " + ") pp) es
  | Product es -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any "*") pp) es
  | Unknown why -> Fmt.pf ppf "?[%s]" why

let to_string e = Fmt.str "%a" pp e

(* -- per-function volume ----------------------------------------------------- *)

(* Loop count: static constant when the trip-count analysis resolved it,
   otherwise a symbolic g over the dynamically observed exit-condition
   parameters (empty if the loop was never observed). *)
let loop_count (t : Pipeline.t) fname (ls : Static_an.Tripcount.loop_summary) =
  match ls.Static_an.Tripcount.ls_trip with
  | Static_an.Tripcount.Constant k -> Const k
  | Static_an.Tripcount.Unknown ->
    let params =
      match Deps.find t.deps fname with
      | None -> SSet.empty
      | Some fd ->
        List.fold_left
          (fun acc (ld : Deps.loop_dep) ->
            if ld.Deps.ld_header = ls.Static_an.Tripcount.ls_header then
              SSet.union acc ld.Deps.ld_params
            else acc)
          SSet.empty fd.Deps.fd_loops
    in
    Count { func = fname; header = ls.Static_an.Tripcount.ls_header; params }

(* vol(nest rooted at loop L) = count(L) * (1 + sum of child volumes). *)
let rec nest_volume t fname summaries (ls : Static_an.Tripcount.loop_summary) =
  let children =
    List.filter
      (fun (c : Static_an.Tripcount.loop_summary) ->
        c.Static_an.Tripcount.ls_parent
        = Some ls.Static_an.Tripcount.ls_header)
      summaries
  in
  let body =
    sum (Const 1 :: List.map (nest_volume t fname summaries) children)
  in
  product [ loop_count t fname ls; body ]

(** Intraprocedural iteration volume of [fname]: the sum of its top-level
    loop-nest volumes plus the constant straight-line part (Section 4.2). *)
let of_function (t : Pipeline.t) fname =
  match SMap.find_opt fname t.static.Static_an.Classify.loops with
  | None -> Unknown ("no such function: " ^ fname)
  | Some summaries ->
    let top =
      List.filter
        (fun (ls : Static_an.Tripcount.loop_summary) ->
          ls.Static_an.Tripcount.ls_parent = None)
        summaries
    in
    sum (Const 1 :: List.map (nest_volume t fname summaries) top)

(* -- whole-program (inclusive) volume: Theorem 1 ------------------------------ *)

(* Enclosing static loop chain of an instruction's block within [f]:
   multiplies the callee's volume. *)
let enclosing_counts t fname forest block =
  let rec chain acc header =
    match Ir.Loops.find forest header with
    | None -> acc
    | Some (l : Ir.Loops.loop) -> (
      let summaries = SMap.find fname t.Pipeline.static.Static_an.Classify.loops in
      let ls =
        List.find
          (fun (s : Static_an.Tripcount.loop_summary) ->
            s.Static_an.Tripcount.ls_header = l.Ir.Loops.header)
          summaries
      in
      let acc = loop_count t fname ls :: acc in
      match l.Ir.Loops.parent with
      | Some parent -> chain acc parent
      | None -> acc)
  in
  match Ir.Loops.innermost_containing forest block with
  | None -> []
  | Some l -> chain [] l.Ir.Loops.header

(** Inclusive asymptotic compute volume of [fname]: its own volume plus,
    for every call site, the callee's inclusive volume multiplied by the
    counts of the loops enclosing the call (Theorem 1).  Recursive
    functions yield [Unknown] — the paper's stated limitation. *)
let rec inclusive ?(seen = SSet.empty) (t : Pipeline.t) fname =
  if SSet.mem fname seen then Unknown ("recursion through " ^ fname)
  else
    match
      List.find_opt
        (fun (f : Ir.Types.func) -> f.Ir.Types.fname = fname)
        t.program.Ir.Types.funcs
    with
    | None -> Unknown ("no such function: " ^ fname)
    | Some f ->
      let seen = SSet.add fname seen in
      let cfg = Ir.Cfg.build f in
      let forest = Ir.Loops.detect cfg in
      let call_terms =
        List.concat_map
          (fun (b : Ir.Types.block) ->
            let callees = Ir.Types.calls_of_instrs b.Ir.Types.instrs in
            List.map
              (fun callee ->
                let enclosing = enclosing_counts t fname forest b.Ir.Types.label in
                product (inclusive ~seen t callee :: enclosing))
              callees)
          f.Ir.Types.blocks
      in
      sum (of_function t fname :: call_terms)

(** Asymptotic compute volume of the whole program. *)
let of_program (t : Pipeline.t) =
  normalize (inclusive t t.program.Ir.Types.entry)

(** Claim 2's deliverable: the parameter set that bounds how often any
    basic block of [fname] (inclusively) executes. *)
let asymptotic_params t fname = params (inclusive t fname)
