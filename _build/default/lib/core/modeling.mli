(** Hybrid empirical modeling (paper Section 4.5): the taint analysis
    restricts the Extra-P search space per function. *)

module SSet = Ir.Cfg.SSet

type mode =
  | Black_box  (** plain Extra-P: all parameters, all shapes *)
  | Tainted    (** Perf-Taint: restricted by the analysis *)

val mode_name : mode -> string

val dep_set : Pipeline.t -> string -> SSet.t
(** Taint-derived dependency set of an application function, or the
    library-database set of an MPI routine. *)

val is_mpi_routine : Pipeline.t -> string -> bool

val constraints :
  Pipeline.t -> mode -> model_params:string list -> string ->
  Model.Search.constraints

val constraints_aliased :
  Pipeline.t -> mode -> model_params:string list ->
  aliases:(string * string list) list -> string ->
  Model.Search.constraints
(** Like {!constraints}, with model-parameter aliases (MILC's [size]
    stands for nx, ny, nz, nt). *)

val model_function :
  ?config:Model.Search.config ->
  Pipeline.t -> mode -> model_params:string list -> fname:string ->
  Model.Dataset.t -> Model.Search.result

val model_total :
  ?config:Model.Search.config ->
  ?constraints:Model.Search.constraints ->
  Model.Dataset.t -> Model.Search.result

val contradicts_taint :
  Pipeline.t -> fname:string -> Model.Search.result -> SSet.t
(** Parameters the empirical model uses although taint proves them
    impossible: the contention signature (C1). *)
