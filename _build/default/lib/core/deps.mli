(** Post-processing of a tainted run into per-function parameter
    dependencies (paper Section 5.2): loop-count parameters,
    communication parameters from the library database, and the
    additive/multiplicative dependency structure. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type loop_dep = {
  ld_func : string;
  ld_header : string;
  ld_callpath : string;
  ld_depth : int;
  ld_iters : int;
  ld_entries : int;
  ld_params : SSet.t;
  ld_enclosing_params : SSet.t;
      (** parameters of dynamically enclosing loops, across calls *)
}

type func_deps = {
  fd_func : string;
  fd_loop_params : SSet.t;  (** from loop exit conditions *)
  fd_comm_params : SSet.t;  (** from the MPI library database *)
  fd_params : SSet.t;       (** union of the above *)
  fd_multiplicative : (string * string) list;
      (** unordered pairs that may share a product term *)
  fd_loops : loop_dep list;
  fd_mpi_routines : SSet.t;
}

val norm_pair : string -> string -> string * string

val of_observations :
  Taint.Label.table -> Interp.Observations.t -> func_deps SMap.t

val routine_params :
  Taint.Label.table -> Interp.Observations.t -> SSet.t SMap.t
(** Per-MPI-routine dependencies: implicit parameters plus the labels of
    observed count arguments. *)

val merge : func_deps SMap.t list -> func_deps SMap.t
(** Union the dependency maps of several tainted runs (different
    configurations or SPMD ranks): the mitigation for dynamic analysis
    insights being narrowed to one run. *)

val find : func_deps SMap.t -> string -> func_deps option
val params : func_deps SMap.t -> string -> SSet.t

val multiplicative_ok : func_deps SMap.t -> string -> string -> string -> bool
(** May the pair appear multiplicatively in this function's model? *)

val additive_pairs : func_deps -> (string * string) list
(** Pairs that co-occur in the function but never in a nest: their
    experiment designs can be decoupled (A2). *)
