(** Scalability-bug hunting: extrapolate fitted per-function models to a
    target configuration and flag functions that will dominate at scale
    (the Calotoiu et al. SC'13 use case cited in the paper's
    introduction). *)

type entry = {
  e_func : string;
  e_model : Model.Expr.model;
  e_measured : float;
  e_projected : float;
  e_share_measured : float;
  e_share_projected : float;
  e_growth : float;
}

type ranking = {
  baseline : (string * float) list;
  target : (string * float) list;
  entries : entry list;  (** sorted by projected time, descending *)
  total_measured : float;
  total_projected : float;
}

val rank :
  baseline:(string * float) list ->
  target:(string * float) list ->
  (string * Model.Expr.model) list ->
  ranking

val bugs : ?share:float -> ?measured_below:float -> ranking -> entry list
(** Negligible in the measured range, dominant at the target. *)

val pp_entry : entry Fmt.t
val pp_ranking : ranking Fmt.t
