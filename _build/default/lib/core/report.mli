(** Human-readable reports mirroring the paper's tables. *)

type overview = {
  ov_app : string;
  ov_functions : int;
  ov_pruned_static : int;
  ov_pruned_dynamic : int;  (** includes never-executed functions *)
  ov_kernels : int;
  ov_comm_routines : int;
  ov_mpi_functions : int;
  ov_loops : int;
  ov_loops_pruned_static : int;
  ov_loops_relevant : int;
}

val overview : Pipeline.t -> model_params:string list -> overview
(** The Table 2 row for an analysis. *)

val pp_overview : overview Fmt.t

type coverage_row = {
  cov_param : string;
  cov_functions : int;
  cov_loops : int;
}

val coverage : Pipeline.t -> params:string list -> coverage_row list
(** Per-parameter coverage (Table 3). *)

val combined_coverage : Pipeline.t -> params:string list -> int * int
(** Functions and loops affected by at least one of the parameters. *)

val pp_coverage : coverage_row list Fmt.t

val pp_deps : Pipeline.t Fmt.t
(** Per-function dependency summary table. *)
