(** Validation of measurements and experiment designs (paper Section C):
    hardware-contention detection and qualitative-behavior checks. *)

module SSet = Ir.Cfg.SSet

type contention_finding = {
  cf_func : string;
  cf_external_params : string list;
  cf_model : Model.Expr.model;
  cf_error : float;
}

val detect_contention :
  ?max_cov:float ->
  ?config:Model.Search.config ->
  Pipeline.t ->
  (string * Model.Dataset.t) list ->
  contention_finding list
(** Fit a black-box model per function dataset; report those whose
    statistically sound (CoV <= [max_cov], default 0.1) model contradicts
    the taint-derived dependency set. *)

type branch_behavior = Not_visited | Then_only | Else_only | Both

val behavior_name : branch_behavior -> string

type design_finding = {
  df_func : string;
  df_block : string;
  df_params : string list;
  df_behaviors : ((string * Ir.Types.value) list * branch_behavior) list;
      (** taint-run configuration -> observed behavior *)
}

val branch_behavior : Pipeline.t -> fname:string -> block:string -> branch_behavior

val validate_design :
  model_params:string list -> Pipeline.t list -> design_finding list
(** Compare branch coverage across tainted runs; report parameter-tainted
    static branches whose behavior is not uniform (C2). *)
