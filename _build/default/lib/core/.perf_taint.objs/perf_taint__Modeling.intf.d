lib/core/modeling.mli: Ir Model Pipeline
