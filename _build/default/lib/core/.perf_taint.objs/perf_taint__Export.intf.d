lib/core/export.mli: Deps Fmt Model Pipeline
