lib/core/pipeline.mli: Deps Interp Ir Mpi_sim Static_an Taint
