lib/core/volume.mli: Fmt Ir Pipeline
