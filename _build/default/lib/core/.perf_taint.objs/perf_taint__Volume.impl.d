lib/core/volume.ml: Deps Float Fmt Hashtbl Ir List Pipeline Static_an String
