lib/core/design.mli: Fmt Ir Pipeline
