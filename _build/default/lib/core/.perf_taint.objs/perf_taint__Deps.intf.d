lib/core/deps.mli: Interp Ir Taint
