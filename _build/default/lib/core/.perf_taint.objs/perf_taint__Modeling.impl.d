lib/core/modeling.ml: Deps Ir List Model Option Pipeline
