lib/core/pipeline.ml: Deps Hashtbl Interp Ir List Mpi_sim Static_an Taint
