lib/core/deps.ml: Hashtbl Interp Ir List Mpi_sim Option Taint
