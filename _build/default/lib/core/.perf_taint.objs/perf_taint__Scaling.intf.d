lib/core/scaling.mli: Fmt Model
