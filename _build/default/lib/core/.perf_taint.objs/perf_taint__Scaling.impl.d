lib/core/scaling.ml: Float Fmt List Model
