lib/core/validation.mli: Ir Model Pipeline
