lib/core/design.ml: Deps Fmt Hashtbl Ir List Option Pipeline String
