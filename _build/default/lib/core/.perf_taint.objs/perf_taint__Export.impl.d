lib/core/export.ml: Buffer Char Deps Float Fmt Ir List Model Mpi_sim Pipeline Printf Report Static_an String
