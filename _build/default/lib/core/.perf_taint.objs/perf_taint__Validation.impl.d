lib/core/validation.ml: Hashtbl Interp Ir List Model Modeling Pipeline Taint
