lib/core/report.ml: Deps Fmt Ir List Pipeline Static_an
