(** Experiment-design generation from taint results (paper Sections A1 and
    A2): decide which parameters need experiments at all, which can be
    fixed because they only scale the whole computation, and which must be
    swept jointly (multiplicative dependencies) versus independently
    (additive dependencies — decoupled one-dimensional sweeps sharing a
    base point). *)

module SSet = Ir.Cfg.SSet
module SMap = Ir.Cfg.SMap

type axis = { param : string; values : float list }

type decision =
  | Swept_jointly of string list  (** cartesian product with these params *)
  | Swept_alone                   (** 1-D sweep from the shared base point *)
  | Fixed_irrelevant              (** no effect on any loop or comm routine *)
  | Fixed_global_factor
      (** multiplies the entire computation (LULESH's iters): one value
          suffices *)

type plan = {
  axes : axis list;
  decisions : (string * decision) list;
  groups : string list list;  (** joint-sweep groups, singletons included *)
  runs_full_factorial : int;
  runs_planned : int;
  reps : int;
}

(* Union-find over parameters connected by a multiplicative pair. *)
let group_params candidates mult_pairs =
  let parent = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter (fun p -> Hashtbl.replace parent p p) candidates;
  List.iter
    (fun (a, b) ->
      if List.mem a candidates && List.mem b candidates then union a b)
    mult_pairs;
  let groups = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let r = find p in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups r) in
      Hashtbl.replace groups r (p :: cur))
    candidates;
  Hashtbl.fold (fun _ g acc -> List.sort compare g :: acc) groups []
  |> List.sort compare

(* A parameter is a global linear factor when it taints exactly one loop
   and that loop (dynamically) encloses every other parameter-dependent
   loop — LULESH's iters. *)
let rec is_global_factor (t : Pipeline.t) param =
  let own_loops =
    SMap.fold
      (fun _ (fd : Deps.func_deps) acc ->
        List.fold_left
          (fun acc (ld : Deps.loop_dep) ->
            if SSet.mem param ld.Deps.ld_params then ld :: acc else acc)
          acc fd.Deps.fd_loops)
      t.deps []
  in
  match own_loops with
  | [ only ] when SSet.is_empty only.Deps.ld_enclosing_params ->
    (* The single loop sits at the top of the dynamic nest... *)
    (* ... and is multiplicative with every other loop-relevant parameter:
       the whole (steady-state) computation scales linearly with it. *)
    let loop_params =
      SMap.fold
        (fun _ (fd : Deps.func_deps) acc ->
          SSet.union acc fd.Deps.fd_loop_params)
        t.deps SSet.empty
    in
    let mult = all_mult_pairs t in
    SSet.for_all
      (fun q ->
        q = param
        || List.mem (Deps.norm_pair param q) mult)
      loop_params
  | _ -> false

and all_mult_pairs (t : Pipeline.t) =
  SMap.fold
    (fun _ (fd : Deps.func_deps) acc -> fd.Deps.fd_multiplicative @ acc)
    t.deps []
  |> List.sort_uniq compare

(** Propose a design.  [axes] are the candidate parameters with the values
    the engineer is willing to measure; [reps] the repetition count. *)
let propose (t : Pipeline.t) ~axes ~reps =
  let observed = Pipeline.observed_params t in
  let decisions =
    List.map
      (fun a ->
        if not (SSet.mem a.param observed) then (a.param, Fixed_irrelevant)
        else if is_global_factor t a.param then (a.param, Fixed_global_factor)
        else (a.param, Swept_alone (* refined below *)))
      axes
  in
  let swept =
    List.filter_map
      (fun (p, d) -> match d with Swept_alone -> Some p | _ -> None)
      decisions
  in
  let groups = group_params swept (all_mult_pairs t) in
  let decisions =
    List.map
      (fun (p, d) ->
        match d with
        | Swept_alone -> (
          match List.find_opt (List.mem p) groups with
          | Some g when List.length g > 1 -> (p, Swept_jointly g)
          | _ -> (p, Swept_alone))
        | d -> (p, d))
      decisions
  in
  let values_of p =
    match List.find_opt (fun a -> a.param = p) axes with
    | Some a -> List.length a.values
    | None -> 1
  in
  let runs_planned =
    (* Joint groups: cartesian product; singleton sweeps: one axis each,
       sharing the base configuration point. *)
    let per_group =
      List.map
        (fun g -> List.fold_left (fun acc p -> acc * values_of p) 1 g)
        groups
    in
    let total = List.fold_left ( + ) 0 per_group in
    (* Shared base point counted once across singleton groups. *)
    let singles = List.length (List.filter (fun g -> List.length g = 1) groups) in
    (total - max 0 (singles - 1)) * reps
  in
  let runs_full_factorial =
    List.fold_left (fun acc a -> acc * List.length a.values) 1 axes * reps
  in
  { axes; decisions; groups; runs_full_factorial; runs_planned; reps }

let decision_name = function
  | Swept_jointly g -> "swept jointly with " ^ String.concat "," g
  | Swept_alone -> "swept alone (1-D)"
  | Fixed_irrelevant -> "fixed: no effect on performance"
  | Fixed_global_factor -> "fixed: global linear factor"

let pp_plan ppf plan =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (p, d) -> Fmt.pf ppf "%-10s %s@ " p (decision_name d))
    plan.decisions;
  Fmt.pf ppf "runs: %d (full factorial would need %d)@]" plan.runs_planned
    plan.runs_full_factorial
