(** Post-processing of a tainted run into per-function parameter
    dependencies (paper Section 5.2): which parameters affect each
    function's loops, which dependencies are multiplicative (nested loops,
    or several labels in one exit condition) versus additive (disjoint
    loops), and which dependencies enter through communication routines
    (the library database of Section 5.3). *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet
module Label = Taint.Label
module Obs = Interp.Observations

type loop_dep = {
  ld_func : string;
  ld_header : string;
  ld_callpath : string;
  ld_depth : int;
  ld_iters : int;
  ld_entries : int;
  ld_params : SSet.t;
  ld_enclosing_params : SSet.t;
      (** parameters of all dynamically enclosing loops (interprocedural) *)
}

type func_deps = {
  fd_func : string;
  fd_loop_params : SSet.t;   (** from loop exit conditions *)
  fd_comm_params : SSet.t;   (** from the MPI library database *)
  fd_params : SSet.t;        (** union of the above *)
  fd_multiplicative : (string * string) list;
      (** unordered parameter pairs that may share a product term *)
  fd_loops : loop_dep list;
  fd_mpi_routines : SSet.t;  (** distinct MPI routines invoked *)
}

let norm_pair a b = if a <= b then (a, b) else (b, a)

let pairs_of_sets s1 s2 =
  SSet.fold
    (fun a acc ->
      SSet.fold
        (fun b acc -> if a <> b then norm_pair a b :: acc else acc)
        s2 acc)
    s1 []

let all_pairs s = pairs_of_sets s s

(** Derive per-function dependencies from the observations of a tainted
    run.  [labels] is the run's label table. *)
let of_observations labels (obs : Obs.t) =
  let loop_obs = Obs.loop_list obs in
  (* Index loop observations by their (callpath key, header) key so
     enclosing references resolve. *)
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (lo : Obs.loop_obs) ->
      Hashtbl.replace by_key (Obs.callpath_key lo.lo_callpath, lo.lo_header) lo)
    loop_obs;
  let params_of lo = SSet.of_list (Label.names labels lo.Obs.lo_dep) in
  let loop_deps =
    List.map
      (fun (lo : Obs.loop_obs) ->
        let enclosing_params =
          List.fold_left
            (fun acc key ->
              match Hashtbl.find_opt by_key key with
              | Some enc -> SSet.union acc (params_of enc)
              | None -> acc)
            SSet.empty lo.lo_enclosing
        in
        {
          ld_func = lo.lo_func;
          ld_header = lo.lo_header;
          ld_callpath = Obs.callpath_key lo.lo_callpath;
          ld_depth = lo.lo_depth;
          ld_iters = lo.lo_iters;
          ld_entries = lo.lo_entries;
          ld_params = params_of lo;
          ld_enclosing_params = enclosing_params;
        })
      loop_obs
  in
  (* Communication dependencies from recorded MPI events. *)
  let comm_params = Hashtbl.create 16 in
  let mpi_used = Hashtbl.create 16 in
  List.iter
    (fun (ev : Obs.event) ->
      match Mpi_sim.Costdb.find ev.ev_prim with
      | None -> ()
      | Some routine ->
        let cur =
          Option.value ~default:SSet.empty (Hashtbl.find_opt comm_params ev.ev_func)
        in
        let implicit = SSet.of_list routine.Mpi_sim.Costdb.implicit_params in
        let from_count =
          match routine.Mpi_sim.Costdb.count_arg with
          | Some i when i < List.length ev.ev_args ->
            let _, l = List.nth ev.ev_args i in
            SSet.of_list (Label.names labels l)
          | Some _ | None -> SSet.empty
        in
        Hashtbl.replace comm_params ev.ev_func
          (SSet.union cur (SSet.union implicit from_count));
        let used =
          Option.value ~default:SSet.empty (Hashtbl.find_opt mpi_used ev.ev_func)
        in
        Hashtbl.replace mpi_used ev.ev_func (SSet.add ev.ev_prim used))
    (Obs.event_list obs);
  (* Group loops per function and derive dependency structure. *)
  let funcs =
    List.sort_uniq compare
      (List.map (fun ld -> ld.ld_func) loop_deps
      @ Hashtbl.fold (fun f _ acc -> f :: acc) comm_params []
      @ List.map (fun (fo : Obs.func_obs) -> fo.fo_func) (Obs.func_list obs))
  in
  List.fold_left
    (fun acc fname ->
      let floops = List.filter (fun ld -> ld.ld_func = fname) loop_deps in
      let loop_params =
        List.fold_left (fun acc ld -> SSet.union acc ld.ld_params) SSet.empty floops
      in
      let cp =
        Option.value ~default:SSet.empty (Hashtbl.find_opt comm_params fname)
      in
      let mult =
        List.concat_map
          (fun ld ->
            (* Several labels in one exit condition: conservatively
               multiplicative (Section 5.2). *)
            all_pairs ld.ld_params
            (* A loop nested (possibly across calls) under loops with
               other labels: outer x inner product. *)
            @ pairs_of_sets ld.ld_enclosing_params ld.ld_params)
          floops
        (* Communication routines: the implicit p may interact with any
           message-size parameter used in the same function. *)
        @ all_pairs cp
        |> List.sort_uniq compare
      in
      let fd =
        {
          fd_func = fname;
          fd_loop_params = loop_params;
          fd_comm_params = cp;
          fd_params = SSet.union loop_params cp;
          fd_multiplicative = mult;
          fd_loops = floops;
          fd_mpi_routines =
            Option.value ~default:SSet.empty (Hashtbl.find_opt mpi_used fname);
        }
      in
      SMap.add fname fd acc)
    SMap.empty funcs

(** Parameter dependencies of each MPI routine itself, from the library
    database: implicit parameters plus the taint labels of the count
    arguments observed at every call site (Section 5.3). *)
let routine_params labels (obs : Obs.t) =
  List.fold_left
    (fun acc (ev : Obs.event) ->
      match Mpi_sim.Costdb.find ev.ev_prim with
      | None -> acc
      | Some routine ->
        let implicit = SSet.of_list routine.Mpi_sim.Costdb.implicit_params in
        let from_count =
          match routine.Mpi_sim.Costdb.count_arg with
          | Some i when i < List.length ev.ev_args ->
            let _, l = List.nth ev.ev_args i in
            SSet.of_list (Label.names labels l)
          | Some _ | None -> SSet.empty
        in
        let cur = Option.value ~default:SSet.empty (SMap.find_opt ev.ev_prim acc) in
        SMap.add ev.ev_prim (SSet.union cur (SSet.union implicit from_count)) acc)
    SMap.empty (Obs.event_list obs)

(** Merge the dependency maps of several tainted runs (different
    configurations, different SPMD ranks): parameter sets union, loop
    observations concatenate, multiplicative pairs union.  Dynamic taint
    narrows insights to the runs actually performed (paper Section 3.2);
    merging runs is the standard mitigation. *)
let merge (maps : func_deps SMap.t list) =
  List.fold_left
    (fun acc m ->
      SMap.union
        (fun _ a b ->
          Some
            {
              fd_func = a.fd_func;
              fd_loop_params = SSet.union a.fd_loop_params b.fd_loop_params;
              fd_comm_params = SSet.union a.fd_comm_params b.fd_comm_params;
              fd_params = SSet.union a.fd_params b.fd_params;
              fd_multiplicative =
                List.sort_uniq compare (a.fd_multiplicative @ b.fd_multiplicative);
              fd_loops = a.fd_loops @ b.fd_loops;
              fd_mpi_routines = SSet.union a.fd_mpi_routines b.fd_mpi_routines;
            })
        acc m)
    SMap.empty maps

let find deps fname = SMap.find_opt fname deps

let params deps fname =
  match find deps fname with
  | Some fd -> fd.fd_params
  | None -> SSet.empty

(** Is the pair allowed to appear multiplicatively in [fname]'s model? *)
let multiplicative_ok deps fname a b =
  match find deps fname with
  | Some fd -> List.mem (norm_pair a b) fd.fd_multiplicative
  | None -> false

(** Additive-only pairs: both parameters affect the function but never
    jointly in a nest — their experiment designs can be decoupled (A2). *)
let additive_pairs fd =
  all_pairs fd.fd_params
  |> List.sort_uniq compare
  |> List.filter (fun pr -> not (List.mem pr fd.fd_multiplicative))
