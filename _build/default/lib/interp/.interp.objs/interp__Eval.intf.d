lib/interp/eval.mli: Format Ir
