lib/interp/eval.ml: Float Format Ir
