lib/interp/machine.ml: Array Eval Fmt Hashtbl Ir List Observations Option String Taint
