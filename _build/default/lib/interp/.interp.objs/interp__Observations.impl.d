lib/interp/observations.ml: Hashtbl Ir List String Taint
