lib/interp/machine.mli: Ir Observations Taint
