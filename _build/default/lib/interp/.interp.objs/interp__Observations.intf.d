lib/interp/observations.mli: Hashtbl Ir Taint
