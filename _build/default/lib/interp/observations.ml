(** Observation records produced by a tainted run: loop iteration counts
    with their parameter dependencies, branch coverage, primitive-call
    events (MPI), and per-function execution statistics.  These are the
    raw facts the Perf-Taint pipeline post-processes (paper Section 5.2). *)

(** A call path is the stack of function names from the entry function to
    the observed function, entry first. *)
type callpath = string list

let callpath_key (cp : callpath) = String.concat "/" cp

(** Aggregate dynamic facts about one natural loop on one call path. *)
type loop_obs = {
  lo_func : string;
  lo_header : string;          (** label of the loop header block *)
  lo_callpath : callpath;
  lo_depth : int;              (** static nesting depth, 1 = outermost *)
  lo_parent : string option;   (** header of the enclosing loop, if nested *)
  mutable lo_iters : int;      (** total body executions across all entries *)
  mutable lo_entries : int;    (** times the loop was entered from outside *)
  mutable lo_dep : Taint.Label.t;
      (** union of taint labels observed on the loop's exit conditions *)
  mutable lo_enclosing : (string * string) list;
      (** keys [(callpath key, header)] of loops dynamically enclosing this
          one, across function boundaries; drives the multiplicative
          dependency detection of Section 5.2 *)
}

(** Coverage and taint of one conditional branch on one call path. *)
type branch_obs = {
  br_func : string;
  br_block : string;
  br_callpath : callpath;
  mutable br_taken : int;      (** then-edge executions *)
  mutable br_not_taken : int;  (** else-edge executions *)
  mutable br_dep : Taint.Label.t;
}

(** One primitive-call event (MPI routines etc.), with argument taints. *)
type event = {
  ev_func : string;
  ev_callpath : callpath;
  ev_prim : string;
  ev_args : (Ir.Types.value * Taint.Label.t) list;
}

(** Per-function dynamic execution statistics. *)
type func_obs = {
  fo_func : string;
  mutable fo_calls : int;
  mutable fo_instrs : int;  (** instructions executed inside the function *)
  mutable fo_work : int;    (** abstract work units consumed by [work] *)
}

type t = {
  loops : (string * string, loop_obs) Hashtbl.t;
      (** keyed by (callpath key, header) *)
  branches : (string * string, branch_obs) Hashtbl.t;
      (** keyed by (callpath key, block) *)
  mutable events : event list;  (** reversed during execution *)
  funcs : (string, func_obs) Hashtbl.t;
}

let create () =
  {
    loops = Hashtbl.create 64;
    branches = Hashtbl.create 64;
    events = [];
    funcs = Hashtbl.create 32;
  }

let loop_list t = Hashtbl.fold (fun _ v acc -> v :: acc) t.loops []
let branch_list t = Hashtbl.fold (fun _ v acc -> v :: acc) t.branches []
let event_list t = List.rev t.events
let func_list t = Hashtbl.fold (fun _ v acc -> v :: acc) t.funcs []

let func_obs t name =
  match Hashtbl.find_opt t.funcs name with
  | Some fo -> fo
  | None ->
    let fo = { fo_func = name; fo_calls = 0; fo_instrs = 0; fo_work = 0 } in
    Hashtbl.replace t.funcs name fo;
    fo

(** Loops of [t] grouped per function, dependencies merged over call
    paths. *)
let loops_by_function tbl t =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun lo ->
      let key = (lo.lo_func, lo.lo_header) in
      match Hashtbl.find_opt acc key with
      | None -> Hashtbl.replace acc key lo.lo_dep
      | Some dep -> Hashtbl.replace acc key (Taint.Label.union tbl dep lo.lo_dep))
    (loop_list t);
  acc
