(** Observation records produced by a tainted run (paper Section 5.2):
    loop iteration counts with parameter dependencies, branch coverage,
    primitive-call events, per-function execution statistics. *)

type callpath = string list
(** Stack of function names from the entry function, entry first. *)

val callpath_key : callpath -> string

type loop_obs = {
  lo_func : string;
  lo_header : string;
  lo_callpath : callpath;
  lo_depth : int;
  lo_parent : string option;
  mutable lo_iters : int;    (** total body executions *)
  mutable lo_entries : int;  (** entries from outside the loop *)
  mutable lo_dep : Taint.Label.t;
      (** union of exit-condition labels: the loop-count parameters *)
  mutable lo_enclosing : (string * string) list;
      (** observation keys of dynamically enclosing loops, across calls *)
}

type branch_obs = {
  br_func : string;
  br_block : string;
  br_callpath : callpath;
  mutable br_taken : int;
  mutable br_not_taken : int;
  mutable br_dep : Taint.Label.t;
}

type event = {
  ev_func : string;
  ev_callpath : callpath;
  ev_prim : string;
  ev_args : (Ir.Types.value * Taint.Label.t) list;
}

type func_obs = {
  fo_func : string;
  mutable fo_calls : int;
  mutable fo_instrs : int;
  mutable fo_work : int;
}

type t = {
  loops : (string * string, loop_obs) Hashtbl.t;
      (** keyed by (callpath key, header) *)
  branches : (string * string, branch_obs) Hashtbl.t;
      (** keyed by (callpath key, block) *)
  mutable events : event list;  (** reversed during execution *)
  funcs : (string, func_obs) Hashtbl.t;
}

val create : unit -> t

val loop_list : t -> loop_obs list
val branch_list : t -> branch_obs list
val event_list : t -> event list
val func_list : t -> func_obs list

val func_obs : t -> string -> func_obs
(** Fetch-or-create the statistics record of a function. *)

val loops_by_function :
  Taint.Label.table -> t -> (string * string, Taint.Label.t) Hashtbl.t
(** Loop dependencies merged over call paths, keyed (function, header). *)
