(** Evaluation of PIR scalar operations, with dynamic kind checking. *)

open Ir.Types

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | VInt i -> i
  | v -> error "expected int, got %s" (value_kind v)

let as_float = function
  | VFloat f -> f
  | v -> error "expected float, got %s" (value_kind v)

let as_bool = function
  | VBool b -> b
  | v -> error "expected bool, got %s" (value_kind v)

let as_arr = function
  | VArr h -> h
  | v -> error "expected array, got %s" (value_kind v)

(* Comparisons accept both int and float operands of matching kind. *)
let compare_values op a b =
  let c =
    match (a, b) with
    | VInt x, VInt y -> compare x y
    | VFloat x, VFloat y -> compare x y
    | VBool x, VBool y -> compare x y
    | _ -> error "comparison of %s and %s" (value_kind a) (value_kind b)
  in
  let r =
    match op with
    | Eq -> c = 0 | Ne -> c <> 0
    | Lt -> c < 0 | Le -> c <= 0
    | Gt -> c > 0 | Ge -> c >= 0
    | _ -> assert false
  in
  VBool r

let binop op a b =
  match op with
  | Add -> VInt (as_int a + as_int b)
  | Sub -> VInt (as_int a - as_int b)
  | Mul -> VInt (as_int a * as_int b)
  | Div ->
    let d = as_int b in
    if d = 0 then error "integer division by zero" else VInt (as_int a / d)
  | Rem ->
    let d = as_int b in
    if d = 0 then error "integer remainder by zero" else VInt (as_int a mod d)
  | Min -> VInt (min (as_int a) (as_int b))
  | Max -> VInt (max (as_int a) (as_int b))
  | FAdd -> VFloat (as_float a +. as_float b)
  | FSub -> VFloat (as_float a -. as_float b)
  | FMul -> VFloat (as_float a *. as_float b)
  | FDiv -> VFloat (as_float a /. as_float b)
  | FMin -> VFloat (Float.min (as_float a) (as_float b))
  | FMax -> VFloat (Float.max (as_float a) (as_float b))
  | And -> VBool (as_bool a && as_bool b)
  | Or -> VBool (as_bool a || as_bool b)
  | (Eq | Ne | Lt | Le | Gt | Ge) as cmp -> compare_values cmp a b

let unop op a =
  match op with
  | Neg -> VInt (-as_int a)
  | FNeg -> VFloat (-.as_float a)
  | Not -> VBool (not (as_bool a))
  | FloatOfInt -> VFloat (float_of_int (as_int a))
  | IntOfFloat -> VInt (int_of_float (as_float a))
