lib/taint/label.mli: Fmt
