lib/taint/shadow.ml: Array Hashtbl Label
