lib/taint/shadow.mli: Label
