lib/taint/label.ml: Array Fmt Hashtbl List
