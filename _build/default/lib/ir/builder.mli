(** Imperative construction of PIR functions, with structured control-flow
    helpers that emit the canonical reducible shapes the static analyses
    recognise. *)

open Types

type t
(** A function under construction. *)

val create : string -> params:string list -> t
val fresh_name : t -> string -> string

val emit : t -> instr -> unit
(** @raise Ir_error when the current block is already terminated. *)

val terminate : t -> terminator -> unit
val start_block : t -> string -> unit
val in_block : t -> bool

(** {1 Value helpers} — each emits one instruction into a fresh register
    and returns the register as an operand. *)

val binop : t -> binop -> operand -> operand -> operand
val unop : t -> unop -> operand -> operand

val add : t -> operand -> operand -> operand
val sub : t -> operand -> operand -> operand
val mul : t -> operand -> operand -> operand
val div : t -> operand -> operand -> operand
val rem : t -> operand -> operand -> operand
val fadd : t -> operand -> operand -> operand
val fsub : t -> operand -> operand -> operand
val fmul : t -> operand -> operand -> operand
val fdiv : t -> operand -> operand -> operand
val eq : t -> operand -> operand -> operand
val ne : t -> operand -> operand -> operand
val lt : t -> operand -> operand -> operand
val le : t -> operand -> operand -> operand
val gt : t -> operand -> operand -> operand
val ge : t -> operand -> operand -> operand
val and_ : t -> operand -> operand -> operand
val or_ : t -> operand -> operand -> operand
val imin : t -> operand -> operand -> operand
val imax : t -> operand -> operand -> operand

val set : t -> string -> operand -> unit
(** Bind an operand to a named mutable register. *)

val alloc : t -> operand -> operand
val load : t -> operand -> operand -> operand
val store : t -> operand -> operand -> operand -> unit

val call : t -> string -> operand list -> operand
val call_unit : t -> string -> operand list -> unit
val prim : t -> string -> operand list -> operand
val prim_unit : t -> string -> operand list -> unit

val work : t -> operand -> unit
(** Consume abstract work units (the stand-in for kernel arithmetic). *)

val ret : t -> operand -> unit
val ret_unit : t -> unit

(** {1 Structured control flow} *)

val if_ :
  t -> operand -> then_:(unit -> unit) -> ?else_:(unit -> unit) -> unit -> unit

val while_ : t -> cond:(unit -> operand) -> body:(unit -> unit) -> unit
(** [cond] runs in the loop header; the generated exit branch is the taint
    sink for the loop's iteration count. *)

val for_ :
  t -> string -> from:operand -> below:operand -> ?step:operand ->
  (operand -> unit) -> unit
(** Canonical counted loop [i = from; i < below; i += step]; the induction
    register is recognisable by the static trip-count analysis. *)

val repeat : t -> operand -> (unit -> unit) -> unit

val finish : t -> func
(** Seal the builder (an unterminated current block returns unit). *)

val define : string -> params:string list -> (t -> unit) -> func
val program : string -> entry:string -> func list -> program
