(** Natural-loop detection and the loop-nesting forest of a PIR function.

    A natural loop is identified by its header (the target of one or more
    back edges); its body is found by walking the CFG backwards from each
    back-edge source until the header.  Loops sharing a header are merged,
    per the classical definition (Aho–Sethi–Ullman).  The nesting forest
    orders loops by strict body inclusion and drives the iteration-volume
    composition rules of the paper (Section 4.2). *)

module SMap = Cfg.SMap
module SSet = Cfg.SSet

type loop = {
  header : string;
  body : SSet.t;          (** block labels, header included *)
  latches : string list;  (** sources of back edges into the header *)
  exits : (string * string) list;
      (** (block-in-loop, successor-outside-loop) edges *)
  depth : int;            (** 1 = outermost *)
  parent : string option; (** header of the enclosing loop *)
}

type forest = {
  loops : loop list;      (** ordered outermost-first *)
  by_header : loop SMap.t;
}

(* Body of the natural loop of back edge (latch, header): header plus all
   nodes that reach the latch without passing through the header. *)
let loop_body cfg header latch =
  let body = ref (SSet.singleton header) in
  let rec walk l =
    if not (SSet.mem l !body) then begin
      body := SSet.add l !body;
      List.iter walk (Cfg.predecessors cfg l)
    end
  in
  walk latch;
  !body

let exit_edges cfg body =
  SSet.fold
    (fun l acc ->
      let outside =
        Cfg.successors cfg l |> List.filter (fun s -> not (SSet.mem s body))
      in
      List.map (fun s -> (l, s)) outside @ acc)
    body []

let detect cfg =
  let edges = Cfg.back_edges cfg in
  (* Merge loops with a common header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = loop_body cfg header latch in
      match Hashtbl.find_opt by_header header with
      | None -> Hashtbl.replace by_header header (body, [ latch ])
      | Some (b, ls) -> Hashtbl.replace by_header header (SSet.union b body, latch :: ls))
    edges;
  let raw =
    Hashtbl.fold
      (fun header (body, latches) acc -> (header, body, latches) :: acc)
      by_header []
  in
  (* Sort by decreasing body size so parents precede children. *)
  let raw =
    List.sort (fun (_, b1, _) (_, b2, _) -> compare (SSet.cardinal b2) (SSet.cardinal b1)) raw
  in
  let find_parent header body placed =
    (* The innermost already-placed loop strictly containing this one. *)
    List.fold_left
      (fun best l ->
        if l.header <> header && SSet.subset body l.body then
          match best with
          | Some b when SSet.cardinal b.body <= SSet.cardinal l.body -> best
          | _ -> Some l
        else best)
      None placed
  in
  let loops =
    List.fold_left
      (fun placed (header, body, latches) ->
        let parent = find_parent header body placed in
        let depth = match parent with None -> 1 | Some p -> p.depth + 1 in
        let l = {
          header; body; latches;
          exits = exit_edges cfg body;
          depth;
          parent = Option.map (fun p -> p.header) parent;
        } in
        placed @ [ l ])
      [] raw
  in
  let by_header =
    List.fold_left (fun m l -> SMap.add l.header l m) SMap.empty loops
  in
  { loops; by_header }

let find forest header = SMap.find_opt header forest.by_header

(** Loops whose parent is [header] ([None] = top-level loops). *)
let children forest header =
  List.filter (fun l -> l.parent = header) forest.loops

(** Innermost loop containing block [label], if any. *)
let innermost_containing forest label =
  List.fold_left
    (fun best l ->
      if SSet.mem label l.body then
        match best with
        | Some b when b.depth >= l.depth -> best
        | _ -> Some l
      else best)
    None forest.loops

(** Blocks with a conditional branch leaving the loop: the loop's exit
    conditions, i.e. the taint sinks of the loop-count analysis. *)
let exiting_blocks loop =
  List.map fst loop.exits |> List.sort_uniq compare

let max_depth forest =
  List.fold_left (fun acc l -> max acc l.depth) 0 forest.loops

let pp_loop ppf l =
  Fmt.pf ppf "loop@%s depth=%d body={%a} exits=[%a]" l.header l.depth
    Fmt.(list ~sep:comma string) (SSet.elements l.body)
    Fmt.(list ~sep:semi (pair ~sep:(any "->") string string)) l.exits
