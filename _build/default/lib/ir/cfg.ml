(** Control-flow graph utilities for a single PIR function: successor and
    predecessor maps, reverse postorder, dominators and postdominators.

    Dominators use the Cooper–Harvey–Kennedy iterative algorithm over
    reverse-postorder indices; postdominators run the same algorithm on the
    reversed CFG with a virtual exit node joining every [Return] block.
    Postdominators give the join point of each conditional branch, which the
    interpreter uses to scope control-flow taint. *)

open Types

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  func : func;
  succs : string list SMap.t;
  preds : string list SMap.t;
  rpo : string array;               (** reverse postorder, entry first *)
  rpo_index : int SMap.t;
  idom : string SMap.t;             (** immediate dominator (absent for entry) *)
  ipostdom : string SMap.t;         (** immediate postdominator (absent for exits) *)
}

let successors t label = try SMap.find label t.succs with Not_found -> []
let predecessors t label = try SMap.find label t.preds with Not_found -> []

let build_edges func =
  let add m k v = SMap.update k (function None -> Some [ v ] | Some l -> Some (v :: l)) m in
  List.fold_left
    (fun (succs, preds) b ->
      let ss = term_succs b.term in
      let succs = SMap.add b.label ss succs in
      let preds = List.fold_left (fun preds s -> add preds s b.label) preds ss in
      (succs, preds))
    (SMap.empty, SMap.empty) func.blocks

(* Depth-first postorder from [entry] following [succ]; unreachable blocks
   are dropped (and flagged by Validate). *)
let postorder entry succ =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.add seen label ();
      List.iter go (succ label);
      order := label :: !order
    end
  in
  go entry;
  (* [order] holds reverse postorder already: nodes are prepended when
     finished, so the entry ends up first. *)
  Array.of_list !order

(* Cooper–Harvey–Kennedy: iterate intersection over RPO until fixpoint.
   [preds] must only mention reachable nodes. *)
let compute_idoms rpo rpo_index preds entry =
  let n = Array.length rpo in
  let idom = Array.make n (-1) in
  let entry_ix = SMap.find entry rpo_index in
  idom.(entry_ix) <- entry_ix;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do a := idom.(!a) done;
      while !b > !a do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if i <> entry_ix then begin
        let ps =
          preds rpo.(i)
          |> List.filter_map (fun p -> SMap.find_opt p rpo_index)
          |> List.filter (fun p -> idom.(p) >= 0 || p = entry_ix)
        in
        match ps with
        | [] -> ()
        | first :: rest ->
          let new_idom = List.fold_left (fun acc p ->
            if idom.(p) >= 0 then intersect acc p else acc) first rest
          in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      end
    done
  done;
  let result = ref SMap.empty in
  for i = 0 to n - 1 do
    if i <> entry_ix && idom.(i) >= 0 then
      result := SMap.add rpo.(i) rpo.(idom.(i)) !result
  done;
  !result

let virtual_exit = "$exit"

let build func =
  let succs, preds = build_edges func in
  let entry = (entry_block func).label in
  let succ l = try SMap.find l succs with Not_found -> [] in
  let rpo = postorder entry succ in
  let rpo_index =
    Array.to_seq rpo |> Seq.mapi (fun i l -> (l, i)) |> SMap.of_seq
  in
  let pred l = try SMap.find l preds with Not_found -> [] in
  let idom = compute_idoms rpo rpo_index pred entry in
  (* Postdominators: reverse the CFG, join all returns at a virtual exit. *)
  let exits =
    List.filter_map
      (fun b -> match b.term with Return _ -> Some b.label | _ -> None)
      func.blocks
  in
  let rsucc l =
    if l = virtual_exit then exits
    else pred l |> List.filter (fun p -> SMap.mem p rpo_index)
  in
  let rpred l =
    if List.mem l exits then virtual_exit :: succ l
    else if l = virtual_exit then []
    else succ l
  in
  let post_rpo = postorder virtual_exit rsucc in
  let post_index =
    Array.to_seq post_rpo |> Seq.mapi (fun i l -> (l, i)) |> SMap.of_seq
  in
  let ipostdom =
    if Array.length post_rpo = 0 then SMap.empty
    else
      compute_idoms post_rpo post_index rpred virtual_exit
      |> SMap.filter (fun l _ -> l <> virtual_exit)
  in
  { func; succs; preds; rpo; rpo_index; idom; ipostdom }

let idom t label = SMap.find_opt label t.idom

(** [dominates t a b] is true when every path from the entry to [b] goes
    through [a] (reflexive). *)
let dominates t a b =
  let rec up l = if l = a then true else match idom t l with
    | Some d -> up d
    | None -> false
  in
  up b

(** Immediate postdominator — the join block where control re-converges
    after a branch in [label]; [None] for blocks postdominated only by the
    function exit. *)
let ipostdom t label =
  match SMap.find_opt label t.ipostdom with
  | Some l when l <> virtual_exit -> Some l
  | _ -> None

let reachable_labels t = Array.to_list t.rpo

(** Back edges [(src, dst)]: edges whose destination dominates their
    source.  Each back-edge destination is a natural-loop header. *)
let back_edges t =
  List.concat_map
    (fun b ->
      term_succs b.term
      |> List.filter (fun s -> SMap.mem s t.rpo_index && SMap.mem b.label t.rpo_index)
      |> List.filter (fun s -> dominates t s b.label)
      |> List.map (fun s -> (b.label, s)))
    t.func.blocks

(** Retreating edges that are not back edges indicate irreducible control
    flow (the paper excludes irreducible loops; we detect and report). *)
let irreducible_edges t =
  List.concat_map
    (fun b ->
      match SMap.find_opt b.label t.rpo_index with
      | None -> []
      | Some src_ix ->
        term_succs b.term
        |> List.filter_map (fun s ->
               match SMap.find_opt s t.rpo_index with
               | Some dst_ix
                 when dst_ix <= src_ix && not (dominates t s b.label) ->
                 Some (b.label, s)
               | _ -> None))
    t.func.blocks
