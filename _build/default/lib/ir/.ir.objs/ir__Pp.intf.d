lib/ir/pp.mli: Fmt Types
