lib/ir/parser.ml: Filename Format List String Types Validate
