lib/ir/validate.mli: Fmt Types
