lib/ir/loops.ml: Cfg Fmt Hashtbl List Option
