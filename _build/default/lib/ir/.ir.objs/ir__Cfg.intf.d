lib/ir/cfg.mli: Map Set Types
