lib/ir/parser.mli: Types
