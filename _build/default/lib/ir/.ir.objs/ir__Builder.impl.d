lib/ir/builder.ml: List Printf Types
