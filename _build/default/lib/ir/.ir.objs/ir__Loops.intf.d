lib/ir/loops.mli: Cfg Fmt
