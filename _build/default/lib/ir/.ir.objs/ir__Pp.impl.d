lib/ir/pp.ml: Fmt Types
