lib/ir/cfg.ml: Array Hashtbl List Map Seq Set String Types
