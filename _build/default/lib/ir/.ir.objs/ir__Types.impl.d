lib/ir/types.ml: Format List
