lib/ir/validate.ml: Cfg Fmt Format Hashtbl List Types
