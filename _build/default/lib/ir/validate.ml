(** Well-formedness checking for PIR programs.

    Catches malformed programs at construction time rather than mid
    interpretation: duplicate labels, dangling jump targets, unknown call
    targets, reads of never-written registers, and unreachable blocks. *)

open Types
module SSet = Cfg.SSet

type issue = { severity : [ `Error | `Warning ]; where : string; message : string }

let issue severity where fmt =
  Format.kasprintf (fun message -> { severity; where; message }) fmt

let pp_issue ppf i =
  Fmt.pf ppf "%s: %s: %s"
    (match i.severity with `Error -> "error" | `Warning -> "warning")
    i.where i.message

let check_func program f =
  let issues = ref [] in
  let err fmt = Format.kasprintf (fun m -> issues := issue `Error f.fname "%s" m :: !issues) fmt in
  let warn fmt = Format.kasprintf (fun m -> issues := issue `Warning f.fname "%s" m :: !issues) fmt in
  (* Unique labels. *)
  let labels = List.map (fun b -> b.label) f.blocks in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then err "duplicate block label %s" l
      else Hashtbl.add seen l ())
    labels;
  if f.blocks = [] then err "function has no blocks";
  (* Branch targets exist. *)
  List.iter
    (fun b ->
      List.iter
        (fun s -> if not (Hashtbl.mem seen s) then err "block %s jumps to unknown label %s" b.label s)
        (term_succs b.term))
    f.blocks;
  (* Call targets exist. *)
  let fnames = List.map (fun g -> g.fname) program.funcs in
  List.iter
    (fun b ->
      List.iter
        (fun callee ->
          if not (List.mem callee fnames) then
            err "block %s calls unknown function %s" b.label callee)
        (calls_of_instrs b.instrs))
    f.blocks;
  (* Every register read is written somewhere (or is a parameter).  This is
     a whole-function approximation of def-before-use. *)
  let defs = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace defs p ()) f.fparams;
  List.iter
    (fun b ->
      List.iter
        (fun i -> match instr_def i with Some d -> Hashtbl.replace defs d () | None -> ())
        b.instrs)
    f.blocks;
  List.iter
    (fun b ->
      let check_use r =
        if not (Hashtbl.mem defs r) then
          err "block %s reads undefined register %%%s" b.label r
      in
      List.iter (fun i -> List.iter check_use (instr_uses i)) b.instrs;
      List.iter check_use (term_uses b.term))
    f.blocks;
  (* Reachability and irreducibility. *)
  if f.blocks <> [] && !issues = [] then begin
    let cfg = Cfg.build f in
    let reach = SSet.of_list (Cfg.reachable_labels cfg) in
    List.iter
      (fun b ->
        if not (SSet.mem b.label reach) then warn "block %s is unreachable" b.label)
      f.blocks;
    match Cfg.irreducible_edges cfg with
    | [] -> ()
    | (src, dst) :: _ ->
      warn "irreducible control flow: retreating edge %s -> %s is not a back edge" src dst
  end;
  List.rev !issues

let check_program program =
  let issues = ref [] in
  if not (List.exists (fun f -> f.fname = program.entry) program.funcs) then
    issues := [ issue `Error program.pname "entry function %s not defined" program.entry ];
  let names = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem names f.fname then
        issues := issue `Error program.pname "duplicate function %s" f.fname :: !issues
      else Hashtbl.add names f.fname ())
    program.funcs;
  !issues @ List.concat_map (check_func program) program.funcs

let errors issues = List.filter (fun i -> i.severity = `Error) issues

(** Raise [Ir_error] when the program has validation errors. *)
let check_exn program =
  match errors (check_program program) with
  | [] -> ()
  | e :: _ -> ir_error "%s" (Fmt.str "%a" pp_issue e)
