(** Natural-loop detection and the loop-nesting forest, driving the
    iteration-volume composition of paper Section 4.2. *)

module SMap = Cfg.SMap
module SSet = Cfg.SSet

type loop = {
  header : string;
  body : SSet.t;          (** block labels, header included *)
  latches : string list;  (** back-edge sources *)
  exits : (string * string) list;  (** (inside block, outside successor) *)
  depth : int;            (** 1 = outermost *)
  parent : string option; (** header of the enclosing loop *)
}

type forest = {
  loops : loop list;  (** outermost first *)
  by_header : loop SMap.t;
}

val detect : Cfg.t -> forest
(** Natural loops from back edges; loops sharing a header are merged. *)

val find : forest -> string -> loop option
val children : forest -> string option -> loop list
val innermost_containing : forest -> string -> loop option

val exiting_blocks : loop -> string list
(** Blocks with an edge leaving the loop: the taint sinks of the
    loop-count analysis. *)

val max_depth : forest -> int

val pp_loop : loop Fmt.t
