(** Parser for the textual PIR syntax produced by {!Pp} (round-trip
    guaranteed by the test suite). *)

exception Parse_error of { line : int; message : string }

val parse : ?name:string -> string -> Types.program
(** Parse a program.  The [; program <name> (entry @<f>)] header comment
    sets the program name and entry function; otherwise [?name] (default
    ["program"]) and ["main"] apply. *)

val parse_exn : ?name:string -> string -> Types.program
(** {!parse} followed by {!Validate.check_exn}. *)

val parse_file : string -> Types.program
(** Parse a [.pir] file; the program name defaults to the basename. *)
