(** Well-formedness checking for PIR programs. *)

type issue = {
  severity : [ `Error | `Warning ];
  where : string;   (** function (or program) name *)
  message : string;
}

val pp_issue : issue Fmt.t

val check_func : Types.program -> Types.func -> issue list
val check_program : Types.program -> issue list
val errors : issue list -> issue list

val check_exn : Types.program -> unit
(** @raise Types.Ir_error on the first validation error. *)
