(** Core types of the performance intermediate representation (PIR), the
    LLVM-IR stand-in all analyses operate on. *)

type value =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of int  (** handle into the interpreter heap *)
  | VUnit

type operand =
  | Reg of string
  | Int of int
  | Float of float
  | Bool of bool
  | Unit

type binop =
  | Add | Sub | Mul | Div | Rem
  | FAdd | FSub | FMul | FDiv
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Min | Max | FMin | FMax

type unop = Neg | FNeg | Not | FloatOfInt | IntOfFloat

type instr =
  | Assign of string * operand
  | Binop of string * binop * operand * operand
  | Unop of string * unop * operand
  | Alloc of string * operand
  | Load of string * operand * operand
  | Store of operand * operand * operand
  | Call of string option * string * operand list
  | Prim of string option * string * operand list
      (** host primitive: MPI routines, taint sources, synthetic work *)

type terminator =
  | Jump of string
  | Branch of operand * string * string  (** cond, then, else *)
  | Return of operand

type block = {
  label : string;
  instrs : instr list;
  term : terminator;
}

type func = {
  fname : string;
  fparams : string list;
  blocks : block list;  (** head is the entry block *)
}

type program = {
  pname : string;
  funcs : func list;
  entry : string;
}

exception Ir_error of string

val ir_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val find_func : program -> string -> func
val find_block : func -> string -> block
val entry_block : func -> block

val operand_regs : operand -> string list
val instr_uses : instr -> string list
val instr_def : instr -> string option
val term_uses : terminator -> string list
val term_succs : terminator -> string list

val calls_of_instrs : instr list -> string list
val prims_of_instrs : instr list -> string list

val value_kind : value -> string
