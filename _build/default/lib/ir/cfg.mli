(** Control-flow graph of one PIR function: successor/predecessor maps,
    reverse postorder, dominators and postdominators (Cooper–Harvey–
    Kennedy), back edges and irreducibility detection. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type t

val build : Types.func -> t

val successors : t -> string -> string list
val predecessors : t -> string -> string list

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b]: every path from entry to [b] passes [a]
    (reflexive). *)

val ipostdom : t -> string -> string option
(** Immediate postdominator: the join block where control re-converges —
    the scope boundary of control-flow taint.  [None] when only the
    function exit postdominates. *)

val reachable_labels : t -> string list
(** Reverse postorder, entry first. *)

val back_edges : t -> (string * string) list
(** Edges whose target dominates their source; targets are natural-loop
    headers. *)

val irreducible_edges : t -> (string * string) list
(** Retreating edges that are not back edges: irreducible control flow
    (excluded by the paper; detected and reported here). *)

val virtual_exit : string
