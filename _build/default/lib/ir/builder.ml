(** Imperative construction of PIR functions.

    The builder maintains a current block under construction and provides
    structured control-flow helpers ([if_], [while_], [for_]) that emit the
    canonical reducible CFG shapes the static analyses recognise.  All mini
    applications (LULESH, MILC, didactic examples) are written against this
    module. *)

open Types

type t = {
  bname : string;
  bparams : string list;
  mutable done_blocks : block list;  (** finished blocks, reversed *)
  mutable cur_label : string option;
  mutable cur_instrs : instr list;   (** reversed *)
  mutable fresh : int;
  mutable loop_id : int;
}

let create name ~params =
  {
    bname = name;
    bparams = params;
    done_blocks = [];
    cur_label = Some "entry";
    cur_instrs = [];
    fresh = 0;
    loop_id = 0;
  }

let fresh_name b hint =
  b.fresh <- b.fresh + 1;
  Printf.sprintf "%s%d" hint b.fresh

let emit b instr =
  match b.cur_label with
  | None -> ir_error "emit after terminator in %s" b.bname
  | Some _ -> b.cur_instrs <- instr :: b.cur_instrs

let terminate b term =
  match b.cur_label with
  | None -> ir_error "double terminator in %s" b.bname
  | Some label ->
    b.done_blocks <-
      { label; instrs = List.rev b.cur_instrs; term } :: b.done_blocks;
    b.cur_label <- None;
    b.cur_instrs <- []

let start_block b label =
  (match b.cur_label with
  | Some _ -> terminate b (Jump label)
  | None -> ());
  b.cur_label <- Some label;
  b.cur_instrs <- []

let in_block b = b.cur_label <> None

(* -- value helpers ------------------------------------------------------ *)

let binop b op x y =
  let d = fresh_name b "t" in
  emit b (Binop (d, op, x, y));
  Reg d

let unop b op x =
  let d = fresh_name b "t" in
  emit b (Unop (d, op, x));
  Reg d

let add b x y = binop b Add x y
let sub b x y = binop b Sub x y
let mul b x y = binop b Mul x y
let div b x y = binop b Div x y
let rem b x y = binop b Rem x y
let fadd b x y = binop b FAdd x y
let fsub b x y = binop b FSub x y
let fmul b x y = binop b FMul x y
let fdiv b x y = binop b FDiv x y
let eq b x y = binop b Eq x y
let ne b x y = binop b Ne x y
let lt b x y = binop b Lt x y
let le b x y = binop b Le x y
let gt b x y = binop b Gt x y
let ge b x y = binop b Ge x y
let and_ b x y = binop b And x y
let or_ b x y = binop b Or x y
let imin b x y = binop b Min x y
let imax b x y = binop b Max x y

(** Bind an operand to a named mutable register. *)
let set b name op = emit b (Assign (name, op))

let alloc b n =
  let d = fresh_name b "arr" in
  emit b (Alloc (d, n));
  Reg d

let load b base idx =
  let d = fresh_name b "v" in
  emit b (Load (d, base, idx));
  Reg d

let store b base idx v = emit b (Store (base, idx, v))

let call b f args =
  let d = fresh_name b "r" in
  emit b (Call (Some d, f, args));
  Reg d

let call_unit b f args = emit b (Call (None, f, args))

let prim b p args =
  let d = fresh_name b "r" in
  emit b (Prim (Some d, p, args));
  Reg d

let prim_unit b p args = emit b (Prim (None, p, args))

(** Synthetic computation of [amount] abstract work units: the stand-in for
    a real kernel's arithmetic.  The interpreter charges it to the current
    function's cost counter. *)
let work b amount = prim_unit b "work" [ amount ]

let ret b op = terminate b (Return op)
let ret_unit b = terminate b (Return Unit)

(* -- structured control flow ------------------------------------------- *)

let if_ b cond ~then_ ?(else_ = fun () -> ()) () =
  let id = fresh_name b "if" in
  let then_l = id ^ ".then" and else_l = id ^ ".else" and join_l = id ^ ".join" in
  terminate b (Branch (cond, then_l, else_l));
  start_block b then_l;
  then_ ();
  if in_block b then terminate b (Jump join_l);
  start_block b else_l;
  else_ ();
  if in_block b then terminate b (Jump join_l);
  start_block b join_l

(** [while_ b ~cond ~body] — [cond] runs in the loop header and returns the
    continuation condition; the exit branch of the generated loop is the
    taint sink for this loop's iteration count. *)
let while_ b ~cond ~body =
  b.loop_id <- b.loop_id + 1;
  let id = Printf.sprintf "%s.loop%d" b.bname b.loop_id in
  let header = id ^ ".header" and body_l = id ^ ".body" and exit_l = id ^ ".exit" in
  start_block b header;
  let c = cond () in
  terminate b (Branch (c, body_l, exit_l));
  start_block b body_l;
  body ();
  if in_block b then terminate b (Jump header);
  start_block b exit_l

(** Canonical counted loop: [for_ b "i" ~from ~below body] iterates
    [i = from; i < below; i += step].  The induction register is named so
    the static trip-count analysis can recognise constant bounds. *)
let for_ b name ~from ~below ?(step = Int 1) body =
  let iv = fresh_name b name in
  set b iv from;
  while_ b
    ~cond:(fun () -> lt b (Reg iv) below)
    ~body:(fun () ->
      body (Reg iv);
      set b iv (add b (Reg iv) step))

(** Loop [count] times without exposing an induction variable. *)
let repeat b count body = for_ b "rep" ~from:(Int 0) ~below:count (fun _ -> body ())

let finish b =
  if in_block b then ret_unit b;
  { fname = b.bname; fparams = b.bparams; blocks = List.rev b.done_blocks }

(** Assemble a program; the entry function's parameters are the program's
    input parameters, bound by the interpreter at startup. *)
let program name ~entry funcs = { pname = name; funcs; entry }

(** Define a function in one shot. *)
let define name ~params f =
  let b = create name ~params in
  f b;
  finish b
