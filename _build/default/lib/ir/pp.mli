(** Pretty-printing of PIR in the textual syntax accepted by {!Parser}. *)

val pp_value : Types.value Fmt.t
val pp_operand : Types.operand Fmt.t
val binop_name : Types.binop -> string
val unop_name : Types.unop -> string
val pp_instr : Types.instr Fmt.t
val pp_terminator : Types.terminator Fmt.t
val pp_block : Types.block Fmt.t
val pp_func : Types.func Fmt.t
val pp_program : Types.program Fmt.t
val program_to_string : Types.program -> string
