(** Core types of the performance intermediate representation (PIR).

    PIR is a small register-machine IR playing the role that LLVM IR plays
    in the original Perf-Taint tool: programs are collections of functions,
    each function a list of basic blocks over mutable virtual registers,
    with explicit memory (dynamically allocated arrays) and calls.  The
    dynamic taint analysis, the static loop analyses and the mini
    applications (LULESH/MILC) are all expressed against this IR. *)

(** Scalar runtime values.  PIR is dynamically checked: binary operations
    require matching kinds and the interpreter reports kind mismatches. *)
type value =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of int  (** handle into the interpreter heap *)
  | VUnit

(** Instruction operands: a register read or an immediate literal. *)
type operand =
  | Reg of string
  | Int of int
  | Float of float
  | Bool of bool
  | Unit

(** Binary operations.  Integer comparisons work on both ints and floats;
    arithmetic is kind-specific, mirroring a typed IR. *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | FAdd | FSub | FMul | FDiv
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Min | Max | FMin | FMax

type unop = Neg | FNeg | Not | FloatOfInt | IntOfFloat

(** Instructions.  [Prim] calls a host primitive (MPI routines, taint
    sources, synthetic work) registered with the interpreter; primitives
    are PIR's foreign-function interface and stand in for the library
    calls of a real application. *)
type instr =
  | Assign of string * operand                  (** dst := op *)
  | Binop of string * binop * operand * operand (** dst := a <op> b *)
  | Unop of string * unop * operand             (** dst := <op> a *)
  | Alloc of string * operand                   (** dst := new array(n) *)
  | Load of string * operand * operand          (** dst := base[idx] *)
  | Store of operand * operand * operand        (** base[idx] := v *)
  | Call of string option * string * operand list
  | Prim of string option * string * operand list

(** Block terminators.  [Branch] is the only conditional transfer and
    therefore the only place control-flow taint is introduced. *)
type terminator =
  | Jump of string
  | Branch of operand * string * string  (** cond, then-label, else-label *)
  | Return of operand

type block = {
  label : string;
  instrs : instr list;
  term : terminator;
}

type func = {
  fname : string;
  fparams : string list;
  blocks : block list;  (** head is the entry block *)
}

type program = {
  pname : string;
  funcs : func list;
  entry : string;  (** name of the entry function *)
}

exception Ir_error of string

let ir_error fmt = Format.kasprintf (fun s -> raise (Ir_error s)) fmt

let find_func program name =
  match List.find_opt (fun f -> f.fname = name) program.funcs with
  | Some f -> f
  | None -> ir_error "unknown function %s" name

let find_block func label =
  match List.find_opt (fun b -> b.label = label) func.blocks with
  | Some b -> b
  | None -> ir_error "unknown block %s in %s" label func.fname

let entry_block func =
  match func.blocks with
  | b :: _ -> b
  | [] -> ir_error "function %s has no blocks" func.fname

(** Registers read by an operand. *)
let operand_regs = function
  | Reg r -> [ r ]
  | Int _ | Float _ | Bool _ | Unit -> []

(** Registers read by an instruction. *)
let instr_uses = function
  | Assign (_, a) | Unop (_, _, a) | Alloc (_, a) -> operand_regs a
  | Binop (_, _, a, b) | Load (_, a, b) -> operand_regs a @ operand_regs b
  | Store (a, b, c) -> operand_regs a @ operand_regs b @ operand_regs c
  | Call (_, _, args) | Prim (_, _, args) -> List.concat_map operand_regs args

(** Register written by an instruction, if any. *)
let instr_def = function
  | Assign (d, _) | Binop (d, _, _, _) | Unop (d, _, _)
  | Alloc (d, _) | Load (d, _, _) -> Some d
  | Store _ -> None
  | Call (d, _, _) | Prim (d, _, _) -> d

let term_uses = function
  | Jump _ -> []
  | Branch (c, _, _) -> operand_regs c
  | Return op -> operand_regs op

(** Successor labels of a terminator. *)
let term_succs = function
  | Jump l -> [ l ]
  | Branch (_, t, e) -> [ t; e ]
  | Return _ -> []

(** Callee names of direct calls in an instruction list. *)
let calls_of_instrs instrs =
  List.filter_map (function Call (_, f, _) -> Some f | _ -> None) instrs

(** Primitive names invoked in an instruction list. *)
let prims_of_instrs instrs =
  List.filter_map (function Prim (_, p, _) -> Some p | _ -> None) instrs

let value_kind = function
  | VInt _ -> "int"
  | VFloat _ -> "float"
  | VBool _ -> "bool"
  | VArr _ -> "array"
  | VUnit -> "unit"
