(** Interpreter bindings for the simulated MPI world: one representative
    rank of an SPMD program, with taint-source routines (MPI_Comm_size)
    returning values labelled with the implicit parameter p. *)

type world = {
  ranks : int;  (** communicator size: the implicit parameter p *)
  rank : int;   (** identity of the interpreted rank *)
}

val default_world : world

val install : world -> Interp.Machine.t -> unit
(** Register every database routine as a PIR primitive on the machine. *)
