(** Machine model of the simulated cluster (the Table 1 systems). *)

type t = {
  name : string;
  nodes : int;
  sockets_per_node : int;
  cores_per_socket : int;
  mem_bw_gbs : float;        (** per-socket memory bandwidth, GB/s *)
  rank_demand_gbs : float;   (** bandwidth demand of one busy rank, GB/s *)
  net_latency_s : float;     (** point-to-point latency, seconds *)
  net_byte_time : float;     (** seconds per byte on the network *)
  hook_cost_s : float;       (** one instrumentation enter/exit pair *)
}

val skylake_cluster : t
val piz_daint : t

val cores_per_node : t -> int

val contention_slowdown : t -> ranks_per_node:int -> float
(** Slowdown (>= 1) of fully memory-bound code when this many ranks share
    a node; grows log-quadratically (the Figure 5 shape). *)
