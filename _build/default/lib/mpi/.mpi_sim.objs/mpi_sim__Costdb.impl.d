lib/mpi/costdb.ml: Float List Machine String
