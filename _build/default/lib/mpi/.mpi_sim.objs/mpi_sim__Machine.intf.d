lib/mpi/machine.mli:
