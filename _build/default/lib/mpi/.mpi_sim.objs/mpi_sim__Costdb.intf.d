lib/mpi/costdb.mli: Machine
