lib/mpi/machine.ml: Float
