lib/mpi/runtime.mli: Interp
