lib/mpi/runtime.ml: Costdb Interp Ir List Taint
