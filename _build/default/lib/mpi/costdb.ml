(** The performance-relevant library database of paper Section 5.3.

    For every MPI routine the database records (1) the implicit parameters
    it introduces into the enclosing function's model (the communicator
    size [p]), (2) which argument is the message count, whose taint labels
    become additional parametric dependencies, (3) whether the routine is
    a taint source, and (4) an analytical cost model (Hockney for
    point-to-point, Thakur et al. for collectives) used by the cluster
    simulator. *)

type routine = {
  name : string;                   (** primitive name, e.g. "mpi_allreduce" *)
  implicit_params : string list;   (** parameters added to dependence sets *)
  count_arg : int option;          (** index of the element-count argument *)
  taint_source : bool;             (** writes a [p]-tainted value (comm size) *)
  collective : bool;
  cost : p:int -> count:int -> Machine.t -> float;
      (** simulated execution time in seconds *)
}

let bytes_per_elem = 8.

let p2p_time ~count m =
  m.Machine.net_latency_s
  +. (float_of_int count *. bytes_per_elem *. m.Machine.net_byte_time)

let log2i p = if p <= 1 then 0. else Float.log (float_of_int p) /. Float.log 2.

(* Thakur/Rabenseifner-style collective models: latency term scaled by
   log p plus a bandwidth term. *)
let collective_time ~p ~count ?(bw_factor = 1.) m =
  (log2i p *. m.Machine.net_latency_s)
  +. (bw_factor *. float_of_int count *. bytes_per_elem *. m.Machine.net_byte_time
      *. Float.max 1. (log2i p))

let routines =
  [
    {
      name = "mpi_comm_size";
      implicit_params = [ "p" ];
      count_arg = None;
      taint_source = true;
      collective = false;
      cost = (fun ~p:_ ~count:_ _ -> 1e-8);
    };
    {
      name = "mpi_comm_rank";
      implicit_params = [];
      count_arg = None;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count:_ _ -> 1e-8);
    };
    {
      name = "mpi_send";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count m -> p2p_time ~count m);
    };
    {
      name = "mpi_recv";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count m -> p2p_time ~count m);
    };
    {
      name = "mpi_isend";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count m -> 0.5 *. p2p_time ~count m);
    };
    {
      name = "mpi_irecv";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count m -> 0.5 *. p2p_time ~count m);
    };
    {
      name = "mpi_wait";
      implicit_params = [ "p" ];
      count_arg = None;
      taint_source = false;
      collective = false;
      cost = (fun ~p:_ ~count:_ m -> m.Machine.net_latency_s);
    };
    {
      name = "mpi_barrier";
      implicit_params = [ "p" ];
      count_arg = None;
      taint_source = false;
      collective = true;
      cost = (fun ~p ~count:_ m -> log2i p *. 2. *. m.Machine.net_latency_s);
    };
    {
      name = "mpi_bcast";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = true;
      cost = (fun ~p ~count m -> collective_time ~p ~count m);
    };
    {
      name = "mpi_reduce";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = true;
      cost = (fun ~p ~count m -> collective_time ~p ~count m);
    };
    {
      name = "mpi_allreduce";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = true;
      cost = (fun ~p ~count m -> collective_time ~p ~count ~bw_factor:2. m);
    };
    {
      name = "mpi_allgather";
      implicit_params = [ "p" ];
      count_arg = Some 0;
      taint_source = false;
      collective = true;
      cost =
        (fun ~p ~count m ->
          (* Ring allgather: (p-1) steps moving count elements each. *)
          float_of_int (max 0 (p - 1))
          *. (m.Machine.net_latency_s
              +. (float_of_int count *. bytes_per_elem *. m.Machine.net_byte_time)));
    };
  ]

let find name = List.find_opt (fun r -> r.name = name) routines

let is_mpi_prim name = String.length name >= 4 && String.sub name 0 4 = "mpi_"

(** Performance-relevant primitives: the predicate handed to the static
    pruning phase — a function containing one of these cannot be
    classified constant at compile time. *)
let relevant_prim name =
  match find name with
  | Some r -> r.implicit_params <> [] || r.taint_source
  | None -> false

let routine_names = List.map (fun r -> r.name) routines
