(** Machine model of the simulated cluster.

    Stands in for the Piz Daint and Skylake systems of Table 1: a cluster
    of identical nodes, each with a fixed core count and a shared memory
    bandwidth.  The memory-bandwidth saturation curve drives the hardware
    contention experiment (paper Figure 5): kernels with significant
    memory traffic slow down as more MPI ranks share a socket, even though
    their code has no dependence on the rank count. *)

type t = {
  name : string;
  nodes : int;
  sockets_per_node : int;
  cores_per_socket : int;
  mem_bw_gbs : float;        (** per-socket memory bandwidth, GB/s *)
  rank_demand_gbs : float;   (** bandwidth demand of one busy rank, GB/s *)
  net_latency_s : float;     (** point-to-point latency, seconds *)
  net_byte_time : float;     (** seconds per byte on the network *)
  hook_cost_s : float;       (** cost of one instrumentation enter/exit pair *)
}

(* Loosely calibrated on the Skylake cluster of Table 1: 36 cores,
   ~100 GB/s per socket, s-range MPI latency, and Score-P hooks costing
   a few hundred nanoseconds per call. *)
let skylake_cluster =
  {
    name = "skylake";
    nodes = 32;
    sockets_per_node = 2;
    cores_per_socket = 18;
    mem_bw_gbs = 100.;
    rank_demand_gbs = 12.;
    net_latency_s = 1.5e-6;
    net_byte_time = 1. /. 10e9;
    hook_cost_s = 3.0e-7;
  }

let piz_daint =
  {
    name = "piz-daint";
    nodes = 64;
    sockets_per_node = 2;
    cores_per_socket = 18;
    mem_bw_gbs = 76.8;
    rank_demand_gbs = 10.;
    net_latency_s = 1.0e-6;
    net_byte_time = 1. /. 9.7e9;
    hook_cost_s = 3.0e-7;
  }

let cores_per_node m = m.sockets_per_node * m.cores_per_socket

(** Slowdown factor (>= 1) experienced by fully memory-bound code when
    [ranks_per_node] ranks share a node.  Below the saturation point the
    socket serves every rank at full speed; past it, ranks contend and
    the effective per-rank bandwidth shrinks.  The resulting curve grows
    like log^2 of the rank count — the shape the paper fits in Figure 5
    (2.86 * log2^2 r + 127). *)
let contention_slowdown m ~ranks_per_node =
  if ranks_per_node <= 1 then 1.
  else begin
    (* Queueing delays on the shared memory controllers compound
       log-quadratically with the number of co-located ranks — the shape
       the paper measures in Figure 5 (2.86 * log2^2 r + 127 s).  The
       coefficient scales with how much of the socket bandwidth a single
       rank demands, calibrated so 18 ranks/node slow memory-bound code by
       ~1.8x (a ~50% whole-application slowdown at ~65% memory-boundness). *)
    let l = Float.log (float_of_int ranks_per_node) /. Float.log 2. in
    let intensity = m.rank_demand_gbs /. m.mem_bw_gbs in
    1. +. (0.50 *. intensity *. l *. l)
  end
