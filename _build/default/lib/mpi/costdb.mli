(** The performance-relevant library database (paper Section 5.3): per
    MPI routine, its implicit parameters, the index of its message-count
    argument, whether it is a taint source, and an analytical cost model
    (Hockney point-to-point, Thakur-style collectives). *)

type routine = {
  name : string;
  implicit_params : string list;
  count_arg : int option;
  taint_source : bool;
  collective : bool;
  cost : p:int -> count:int -> Machine.t -> float;
}

val routines : routine list
val find : string -> routine option

val is_mpi_prim : string -> bool
(** Syntactic check: does the primitive name belong to the MPI family? *)

val relevant_prim : string -> bool
(** Is this primitive performance-relevant (cannot be statically pruned)? *)

val routine_names : string list
