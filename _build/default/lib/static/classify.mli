(** Compile-time pruning (paper Section 5.1): functions whose performance
    models are provably constant — no loops or only constant-trip loops,
    no performance-relevant library calls, and only callees with the same
    property. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type func_class = Static_constant | Potentially_parametric

type report = {
  classes : func_class SMap.t;
  loops : Tripcount.loop_summary list SMap.t;  (** per function *)
  recursive : SSet.t;
  total_functions : int;
  pruned_functions : int;
  total_loops : int;
  constant_loops : int;
  warnings : string list;
}

val classify :
  Ir.Types.program -> relevant_prim:(string -> bool) -> report
(** [relevant_prim] marks performance-relevant primitives (the MPI library
    database supplies it). *)

val func_class : report -> string -> func_class
val is_pruned : report -> string -> bool

val surviving : report -> string list
(** Functions that need the dynamic phase, sorted. *)
