(** Direct call graph of a PIR program, reachability and recursion
    detection. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type t

val build : Ir.Types.program -> t

val callees : t -> string -> SSet.t
val callers : t -> string -> SSet.t

val prims : t -> string -> SSet.t
(** Primitive names invoked directly by a function. *)

val reachable : t -> string -> SSet.t
(** Functions reachable from a root, root included. *)

val recursive_functions : t -> SSet.t
(** Functions on a call-graph cycle (directly or mutually recursive). *)

val fold_bottom_up :
  t -> Ir.Types.program -> 'a -> ('a -> string -> 'a) -> 'a
(** Fold callees before callers (cycle members in arbitrary order). *)
