(** Direct call graph of a PIR program, reachability and recursion
    detection.  The paper's analysis rejects recursive functions (warning
    on over-approximation); we flag them the same way. *)

open Ir.Types
module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type t = {
  callees : SSet.t SMap.t;   (** direct callees per function *)
  callers : SSet.t SMap.t;
  prims : SSet.t SMap.t;     (** primitive names invoked per function *)
}

let build program =
  let callees, prims =
    List.fold_left
      (fun (cs, ps) f ->
        let direct =
          List.concat_map (fun b -> calls_of_instrs b.instrs) f.blocks
          |> SSet.of_list
        in
        let prim_names =
          List.concat_map (fun b -> prims_of_instrs b.instrs) f.blocks
          |> SSet.of_list
        in
        (SMap.add f.fname direct cs, SMap.add f.fname prim_names ps))
      (SMap.empty, SMap.empty) program.funcs
  in
  let callers =
    SMap.fold
      (fun caller cs acc ->
        SSet.fold
          (fun callee acc ->
            SMap.update callee
              (function
                | None -> Some (SSet.singleton caller)
                | Some s -> Some (SSet.add caller s))
              acc)
          cs acc)
      callees SMap.empty
  in
  { callees; callers; prims }

let callees t f = Option.value ~default:SSet.empty (SMap.find_opt f t.callees)
let callers t f = Option.value ~default:SSet.empty (SMap.find_opt f t.callers)
let prims t f = Option.value ~default:SSet.empty (SMap.find_opt f t.prims)

(** Functions reachable from [root], [root] included. *)
let reachable t root =
  let seen = ref SSet.empty in
  let rec go f =
    if not (SSet.mem f !seen) then begin
      seen := SSet.add f !seen;
      SSet.iter go (callees t f)
    end
  in
  go root;
  !seen

(** Functions on a call-graph cycle (directly or mutually recursive). *)
let recursive_functions t =
  let on_cycle f =
    (* f is recursive iff f is reachable from one of its callees. *)
    SSet.exists (fun c -> SSet.mem f (reachable t c)) (callees t f)
  in
  SMap.fold
    (fun f _ acc -> if on_cycle f then SSet.add f acc else acc)
    t.callees SSet.empty

(** Fold over functions bottom-up (callees before callers), assuming an
    acyclic graph; members of cycles are visited in arbitrary order. *)
let fold_bottom_up t program init f =
  let visited = ref SSet.empty in
  let acc = ref init in
  let rec go name =
    if not (SSet.mem name !visited) then begin
      visited := SSet.add name !visited;
      SSet.iter go (callees t name);
      acc := f !acc name
    end
  in
  List.iter (fun fn -> go fn.fname) program.funcs;
  !acc
