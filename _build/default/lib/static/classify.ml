(** Compile-time pruning phase (paper Section 5.1): identify functions
    whose performance models are known to be constant without running any
    experiment — functions containing no loops, or only loops with
    statically resolvable constant trip counts, and calling only functions
    with the same property and no performance-relevant library routines. *)

module SMap = Ir.Cfg.SMap
module SSet = Ir.Cfg.SSet

type func_class =
  | Static_constant       (** provably parameter-independent at compile time *)
  | Potentially_parametric

type report = {
  classes : func_class SMap.t;
  loops : Tripcount.loop_summary list SMap.t;  (** per function *)
  recursive : SSet.t;
  total_functions : int;
  pruned_functions : int;      (** classified Static_constant *)
  total_loops : int;
  constant_loops : int;        (** loops with static constant trip count *)
  warnings : string list;
}

(** [classify program ~relevant_prim] computes the static report.
    [relevant_prim] says whether a primitive is performance-relevant (the
    library database supplies e.g. [String.starts_with ~prefix:"mpi_"]). *)
let classify program ~relevant_prim =
  let cg = Callgraph.build program in
  let recursive = Callgraph.recursive_functions cg in
  let loops =
    List.fold_left
      (fun m (f : Ir.Types.func) ->
        SMap.add f.fname (Tripcount.analyze_function f) m)
      SMap.empty program.Ir.Types.funcs
  in
  let own_constant name =
    SMap.find name loops
    |> List.for_all (fun ls -> Tripcount.is_constant ls.Tripcount.ls_trip)
  in
  let has_relevant_prim name =
    SSet.exists relevant_prim (Callgraph.prims cg name)
  in
  let classes =
    Callgraph.fold_bottom_up cg program SMap.empty (fun acc name ->
        let cls =
          if SSet.mem name recursive then Potentially_parametric
          else if not (own_constant name) then Potentially_parametric
          else if has_relevant_prim name then Potentially_parametric
          else if
            SSet.exists
              (fun c ->
                match SMap.find_opt c acc with
                | Some Potentially_parametric -> true
                | Some Static_constant -> false
                | None -> true (* callee in a cycle: conservative *))
              (Callgraph.callees cg name)
          then Potentially_parametric
          else Static_constant
        in
        SMap.add name cls acc)
  in
  let total_functions = List.length program.Ir.Types.funcs in
  let pruned_functions =
    SMap.fold
      (fun _ c n -> if c = Static_constant then n + 1 else n)
      classes 0
  in
  let all_loops = SMap.fold (fun _ ls acc -> ls @ acc) loops [] in
  let total_loops = List.length all_loops in
  let constant_loops =
    List.length
      (List.filter (fun ls -> Tripcount.is_constant ls.Tripcount.ls_trip) all_loops)
  in
  let warnings =
    SSet.fold
      (fun f acc ->
        Fmt.str
          "function %s is recursive: loop analysis over-approximates (paper \
           Section 4.1 limitation)"
          f
        :: acc)
      recursive []
  in
  {
    classes;
    loops;
    recursive;
    total_functions;
    pruned_functions;
    total_loops;
    constant_loops;
    warnings;
  }

let func_class report name =
  Option.value ~default:Potentially_parametric (SMap.find_opt name report.classes)

let is_pruned report name = func_class report name = Static_constant

(** Names of functions surviving static pruning. *)
let surviving report =
  SMap.fold
    (fun name c acc -> if c = Potentially_parametric then name :: acc else acc)
    report.classes []
  |> List.sort compare
