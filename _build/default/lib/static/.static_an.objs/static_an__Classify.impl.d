lib/static/classify.ml: Callgraph Fmt Ir List Option Tripcount
