lib/static/callgraph.mli: Ir
