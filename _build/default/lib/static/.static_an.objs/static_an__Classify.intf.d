lib/static/classify.mli: Ir Tripcount
