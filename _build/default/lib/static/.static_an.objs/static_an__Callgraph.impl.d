lib/static/callgraph.ml: Ir List Option
