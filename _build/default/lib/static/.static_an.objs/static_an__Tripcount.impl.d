lib/static/tripcount.ml: Fmt Hashtbl Ir List Option
