lib/static/tripcount.mli: Fmt Ir
