(** Ground-truth performance specification of mini-MILC (su3_rmd).

    The modeling parameter [size] is the space-time domain size swept in
    the paper (32..512); the local per-rank site count is
    L = size * 2048 / p, so every site loop carries the {size, p}
    multiplicative dependency.  MILC is C code with few trivially
    inlinable functions, so — unlike LULESH — the default Score-P filter
    instruments nearly everything and provides "little to no benefit"
    over full instrumentation (paper Figure 4), while the taint-based
    selection keeps only the ~60 relevant routines. *)

module Spec = Measure.Spec
module Machine = Mpi_sim.Machine

let defaults =
  [ ("p", 32.); ("size", 128.); ("warms", 2.); ("trajecs", 10.);
    ("steps", 15.); ("niter", 300.); ("mass", 2.); ("beta", 6.);
    ("nflavors", 2.); ("u0", 8.); ("r", 8.) ]

let g ps name =
  match List.assoc_opt name ps with
  | Some v -> v
  | None -> List.assoc name defaults

let log2 x = Float.log x /. Float.log 2.

(** Local lattice sites per rank. *)
let sites ps = g ps "size" *. 2048. /. g ps "p"

(** Halo message size in elements: one hypersurface slice. *)
let msg ps = sites ps /. 8.

let restarts ps = 1. +. Float.rem (g ps "mass" +. g ps "beta") 2.

(* MD steps across warmup and measured trajectories. *)
let md_steps ps = (g ps "warms" +. g ps "trajecs") *. g ps "steps"

(* CG solves: one per MD step plus one per measured trajectory. *)
let solves ps = md_steps ps +. g ps "trajecs"

let cg_iters ps = solves ps *. g ps "niter" *. restarts ps

let dslash_calls ps = 2. *. cg_iters ps

let gather_calls ps = dslash_calls ps +. (md_steps ps *. g ps "nflavors")

let site_kernel ?(memory_bound = 0.5) ?(tiny = false) name ~calls ~per_site
    deps =
  Spec.kernel ~kind:Spec.Compute ~memory_bound ~tiny ~calls
    ~base_time:(fun ps _ -> calls ps *. per_site *. sites ps)
    ~truth_deps:deps name

(* C helper: not tiny (the compiler will not inline across translation
   units), so the default filter instruments it — MILC's Figure 4 story. *)
let helper ?(unit_time = 3.0e-8) ?(rate = 8.) name =
  Spec.kernel ~kind:Spec.Helper ~tiny:false
    ~calls:(fun ps -> rate *. sites ps *. md_steps ps)
    ~base_time:(fun ps _ -> unit_time *. rate *. sites ps *. md_steps ps)
    ~truth_deps:[] name

let const_time c = fun _ _ -> c

let gather_small_path ps = g ps "p" <= 8.

let kernels =
  [
    (* -- the CG solver: the dominant cost ---------------------------------- *)
    site_kernel ~memory_bound:0.6 "dslash" ~calls:dslash_calls ~per_site:3.0e-7
      [ "p"; "size"; "niter" ];
    site_kernel ~memory_bound:0.8 "axpy_sites" ~calls:cg_iters ~per_site:6.0e-8
      [ "p"; "size"; "niter" ];
    site_kernel ~memory_bound:0.7 "dot_product_sites" ~calls:cg_iters
      ~per_site:5.0e-8 [ "p"; "size"; "niter" ];
    (* ks_congrad's exclusive time: the iteration loop itself. *)
    Spec.kernel ~kind:Spec.Compute ~calls:solves
      ~base_time:(fun ps _ ->
        1.0e-7 *. g ps "niter" *. restarts ps *. solves ps)
      ~truth_deps:[ "niter"; "mass"; "beta" ] "ks_congrad";
    site_kernel ~memory_bound:0.5 "load_fatlinks" ~calls:md_steps
      ~per_site:6.0e-7 [ "p"; "size" ];
    site_kernel ~memory_bound:0.5 "load_longlinks" ~calls:md_steps
      ~per_site:4.0e-7 [ "p"; "size" ];
    site_kernel ~memory_bound:0.8 "rephase" ~calls:(fun _ -> 1.)
      ~per_site:5.0e-8 [ "p"; "size" ];
    site_kernel ~memory_bound:0.9 "clear_latvec" ~calls:solves
      ~per_site:2.0e-8 [ "p"; "size" ];
    site_kernel ~memory_bound:0.9 "copy_latvec" ~calls:solves
      ~per_site:3.0e-8 [ "p"; "size" ];
    site_kernel ~memory_bound:0.9 "scalar_mult_latvec"
      ~calls:(fun ps -> solves ps *. restarts ps)
      ~per_site:3.0e-8 [ "p"; "size" ];
    site_kernel ~memory_bound:0.4 "check_unitarity"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:1.5e-7 [ "p"; "size" ];
    (* -- force computation and MD updates ---------------------------------- *)
    site_kernel ~memory_bound:0.4 "fermion_force"
      ~calls:(fun ps -> md_steps ps *. g ps "nflavors")
      ~per_site:4.0e-7 [ "p"; "size"; "nflavors" ];
    site_kernel ~memory_bound:0.4 "gauge_force" ~calls:md_steps ~per_site:5.0e-7
      [ "p"; "size" ];
    site_kernel ~memory_bound:0.6 "update_u" ~calls:md_steps ~per_site:2.5e-7
      [ "p"; "size" ];
    site_kernel "grsource_imp" ~calls:md_steps ~per_site:4.0e-8
      [ "p"; "size"; "nflavors" ];
    Spec.kernel ~kind:Spec.Compute
      ~calls:(fun ps -> g ps "warms" +. g ps "trajecs")
      ~base_time:(fun ps _ ->
        1.0e-7 *. sites ps *. (g ps "warms" +. g ps "trajecs"))
      ~truth_deps:[ "p"; "size" ] "ranmom";
    Spec.kernel ~kind:Spec.Compute
      ~calls:(fun ps -> g ps "warms" +. g ps "trajecs")
      ~base_time:(fun ps _ ->
        1.2e-7 *. sites ps
        *. (1. +. Float.rem (g ps "u0") 3.)
        *. (g ps "warms" +. g ps "trajecs"))
      ~truth_deps:[ "p"; "size"; "u0" ] "reunitarize";
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> g ps "warms" +. g ps "trajecs")
      ~base_time:(fun ps _ -> 3.0e-7 *. (g ps "warms" +. g ps "trajecs"))
      ~truth_deps:[] "update";
    Spec.kernel ~kind:Spec.Helper ~calls:md_steps
      ~base_time:(fun ps _ -> 2.0e-7 *. md_steps ps)
      ~truth_deps:[] "update_h";
    site_kernel ~memory_bound:0.3 "gauge_action"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:2.5e-7 [ "p"; "size" ];
    site_kernel ~memory_bound:0.4 "mom_action"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:8.0e-8 [ "p"; "size" ];
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> g ps "trajecs")
      ~base_time:(fun ps _ -> 3.0e-7 *. g ps "trajecs")
      ~truth_deps:[] "d_action";
    site_kernel ~memory_bound:0.8 "boundary_flip" ~calls:(fun _ -> 1.)
      ~per_site:3.0e-8 [ "p"; "size" ];
    (* -- observables -------------------------------------------------------- *)
    site_kernel ~memory_bound:0.3 "plaquette"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:3.0e-7 [ "p"; "size" ];
    site_kernel ~memory_bound:0.3 "ploop"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:2.0e-7 [ "p"; "size" ];
    site_kernel "f_measure"
      ~calls:(fun ps -> g ps "trajecs")
      ~per_site:1.0e-7 [ "p"; "size" ];
    (* -- setup --------------------------------------------------------------- *)
    site_kernel "setup_layout" ~calls:(fun _ -> 1.) ~per_site:4.0e-8
      [ "p"; "size" ];
    site_kernel "make_lattice" ~calls:(fun _ -> 1.) ~per_site:6.0e-8
      [ "p"; "size" ];
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(const_time 1.0e-5) ~truth_deps:[] "main";
    (* -- communication: the gather layer with its algorithm switch ---------- *)
    Spec.kernel ~kind:Spec.Communication ~calls:gather_calls
      ~base_time:(fun ps m ->
        let bytes = msg ps *. 8. in
        let per_call =
          if gather_small_path ps then
            4. *. (m.Machine.net_latency_s +. (bytes *. m.Machine.net_byte_time))
          else
            (16.
             *. (m.Machine.net_latency_s +. (bytes *. m.Machine.net_byte_time)))
            +. (2. *. m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))
        in
        gather_calls ps *. per_call)
      ~truth_deps:[ "p"; "size" ] "start_gather";
    Spec.kernel ~kind:Spec.Communication ~calls:gather_calls
      ~base_time:(fun ps m ->
        let waits = if gather_small_path ps then 4. else 16. in
        gather_calls ps *. waits *. m.Machine.net_latency_s *. 0.5)
      ~truth_deps:[ "p" ] "wait_gather";
    Spec.kernel ~kind:Spec.Communication ~calls:cg_iters
      ~base_time:(fun ps m ->
        cg_iters ps *. 2. *. m.Machine.net_latency_s
        *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "global_sum";
    Spec.kernel ~kind:Spec.Communication
      ~calls:(fun ps -> g ps "trajecs")
      ~base_time:(fun ps m ->
        g ps "trajecs" *. m.Machine.net_latency_s
        *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "plaq_reduce";
    Spec.kernel ~kind:Spec.Communication ~calls:(fun _ -> 1.)
      ~base_time:(fun ps m ->
        m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "bcast_parameters";
    (* -- MPI routines -------------------------------------------------------- *)
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps ->
        gather_calls ps *. if gather_small_path ps then 2. else 8.)
      ~base_time:(fun ps m ->
        gather_calls ps
        *. (if gather_small_path ps then 2. else 8.)
        *. (m.Machine.net_latency_s +. (msg ps *. 8. *. m.Machine.net_byte_time)))
      ~truth_deps:[ "p"; "size" ] "mpi_isend";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps ->
        gather_calls ps *. if gather_small_path ps then 2. else 8.)
      ~base_time:(fun ps m ->
        gather_calls ps
        *. (if gather_small_path ps then 2. else 8.)
        *. m.Machine.net_latency_s)
      ~truth_deps:[] "mpi_irecv";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps ->
        gather_calls ps *. if gather_small_path ps then 4. else 16.)
      ~base_time:(fun ps m ->
        gather_calls ps
        *. (if gather_small_path ps then 4. else 16.)
        *. m.Machine.net_latency_s)
      ~truth_deps:[ "p" ] "mpi_wait";
    Spec.kernel ~kind:Spec.Mpi ~calls:cg_iters
      ~base_time:(fun ps m ->
        cg_iters ps *. 2. *. m.Machine.net_latency_s
        *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "mpi_allreduce";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> if gather_small_path ps then 0. else gather_calls ps)
      ~base_time:(fun ps m ->
        if gather_small_path ps then 0.
        else
          gather_calls ps *. 2. *. m.Machine.net_latency_s
          *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "mpi_barrier";
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 1.)
      ~base_time:(fun ps m ->
        2. *. m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "mpi_bcast";
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 4.)
      ~base_time:(const_time 4.0e-8) ~truth_deps:[] "mpi_comm_size";
    (* The four MPI_Comm_rank call sites of the paper's B1 discussion:
       constant, short, and therefore noise-dominated. *)
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 4.)
      ~base_time:(const_time 4.0e-8) ~truth_deps:[] "mpi_comm_rank";
    (* -- C helpers: SU(3) algebra ------------------------------------------- *)
    helper ~rate:24. "su3_mat_mul";
    helper ~rate:16. "su3_mat_vec";
    helper ~rate:8. "su3_adjoint";
    helper ~rate:6. "add_su3_vector";
    helper ~rate:6. "su3_rdot";
    helper ~rate:5. "scalar_mult_su3";
    helper ~rate:4. "make_anti_hermitian";
    helper ~rate:4. "uncompress_anti_hermitian";
    helper ~rate:4. "su3_vec_scale";
    helper ~rate:3. "magsq_su3_vector";
    helper ~rate:2. "copy_su3_vector";
    helper ~rate:2. "clear_su3_vector";
    helper ~rate:2. "rand_gauss";
    helper ~rate:2. "path_product";
    helper ~rate:1. "trace_su3";
    helper ~rate:1. "realtrace_su3";
    helper ~rate:1. "complex_mul";
    helper ~rate:1. "complex_add";
    helper ~rate:0.5 "complex_conjugate";
    helper ~rate:0.5 "site_index";
    helper ~rate:0.5 "neighbor_index";
    helper ~rate:0.25 "ks_phase";
    helper ~rate:0.25 "boundary_phase";
    helper ~rate:0.25 "set_su3_identity";
    helper ~rate:0.1 "z2_random";
    helper ~rate:0.1 "dirac_phase";
    helper ~rate:0.1 "mom_update_leaf";
    helper ~rate:0.05 "momentum_twist";
    helper ~rate:0.05 "lattice_coordinate";
    helper ~rate:0.05 "parity_of_site";
  ]

let app = { Spec.aname = "milc"; kernels; model_params = [ "p"; "size" ] }

(** The paper's experiment grid: p = 2^n (4..64), size = 32..512. *)
let p_values = [ 4.; 8.; 16.; 32.; 64. ]
let size_values = [ 32.; 64.; 128.; 256.; 512. ]
