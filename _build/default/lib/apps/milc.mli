(** Mini-MILC (su3_rmd): lattice QCD with the nx*ny*nz*nt/p site loops,
    the warms/trajecs/steps molecular-dynamics structure, the
    niter-bounded CG solver with mass/beta-dependent restarts, the gather
    layer with its rank-count algorithm switch (C2), and a tail of
    never-executed alternative actions. *)

val program : Ir.Types.program

val taint_args : Ir.Types.value list
(** The paper's configuration: lattice volume 128 (4x4x2x4). *)

val taint_world : Mpi_sim.Runtime.world
(** 32 MPI ranks, as in the paper. *)

val model_params : string list
val all_params : string list
