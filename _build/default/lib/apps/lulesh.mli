(** Mini-LULESH: a PIR reconstruction of the LULESH 2.0 hydrodynamics
    proxy app — ~30 computational kernels over a size^3 element mesh, a
    region-based EOS phase driven by {regions, balance, cost}, halo
    exchange and dt reduction, an iters time loop enclosing everything,
    and the long tail of tiny C++ helpers. *)

val program : Ir.Types.program

val taint_args : Ir.Types.value list
(** The paper's tainted-run configuration: size 5, 3 iterations. *)

val taint_world : Mpi_sim.Runtime.world
(** 8 MPI ranks, as in the paper. *)

val model_params : string list
(** The two modeling parameters of the paper's study: p and size. *)

val all_params : string list
