(** MiniCG: a third, HPCG-style application — a distributed conjugate
    gradient solver on a sparse banded matrix.

    It exercises a dependency structure different from both LULESH
    (C++ helpers, region loops) and MILC (multi-extent lattice): the
    sparse matrix-vector product carries a clean multiplicative pair
    (rows x nonzeros-per-row), the solver loop is bounded by maxit, the
    dot products reduce over the communicator, and the halo exchange
    size depends on the bandwidth parameter.  Used by the appendix bench
    and the test suite to show the pipeline is not tuned to the two paper
    applications. *)

open Ir.Types
module B = Ir.Builder

let leaf = Dsl.leaf_helper
let cloop = Dsl.const_loop_helper

let helpers =
  [
    leaf ~units:1 "row_start";
    leaf ~units:1 "row_end";
    leaf ~units:1 "column_of";
    leaf ~units:1 "value_of";
    leaf ~units:1 "owner_of_row";
    leaf ~units:1 "local_index";
    cloop ~trip:4 ~units:1 "pack_boundary_row";
    cloop ~trip:4 ~units:1 "unpack_halo_row";
    leaf ~units:1 "residual_norm_leaf";
    leaf ~units:1 "preconditioner_diag";
    leaf ~units:1 "alpha_update";
    leaf ~units:1 "beta_update";
  ]

(* y = A x over the local rows: the rows x nnz multiplicative pair. *)
let spmv =
  B.define "spmv" ~params:[ "rows"; "nnz" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun i ->
          B.for_ b "j" ~from:(Int 0) ~below:(Reg "nnz") (fun j ->
              ignore (B.call b "column_of" [ j ]);
              ignore (B.call b "value_of" [ j ]);
              B.work b (Int 2));
          ignore (B.call b "row_start" [ i ]));
      B.ret_unit b)

let dot_product =
  B.define "dot_product" ~params:[ "rows" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun _ ->
          B.work b (Int 2));
      Dsl.allreduce b (Int 1);
      B.ret b (Int 1))

let axpy =
  B.define "axpy" ~params:[ "rows" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun i ->
          ignore (B.call b "alpha_update" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let apply_preconditioner =
  B.define "apply_preconditioner" ~params:[ "rows" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun i ->
          ignore (B.call b "preconditioner_diag" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

(* Neighbour halo exchange: message size scales with the matrix band. *)
let exchange_halo =
  B.define "exchange_halo" ~params:[ "band" ] (fun b ->
      B.for_ b "n" ~from:(Int 0) ~below:(Int 2) (fun _ ->
          Dsl.irecv b (Reg "band");
          Dsl.isend b (Reg "band"));
      B.for_ b "n" ~from:(Int 0) ~below:(Int 4) (fun _ -> Dsl.wait b);
      B.ret_unit b)

(* One CG iteration. *)
let cg_step =
  B.define "cg_step" ~params:[ "rows"; "nnz"; "band" ] (fun b ->
      B.call_unit b "exchange_halo" [ Reg "band" ];
      B.call_unit b "spmv" [ Reg "rows"; Reg "nnz" ];
      ignore (B.call b "dot_product" [ Reg "rows" ]);
      B.call_unit b "axpy" [ Reg "rows" ];
      B.call_unit b "apply_preconditioner" [ Reg "rows" ];
      ignore (B.call b "dot_product" [ Reg "rows" ]);
      B.call_unit b "axpy" [ Reg "rows" ];
      B.ret_unit b)

let cg_solve =
  B.define "cg_solve" ~params:[ "rows"; "nnz"; "band"; "maxit" ] (fun b ->
      B.for_ b "it" ~from:(Int 0) ~below:(Reg "maxit") (fun _ ->
          B.call_unit b "cg_step" [ Reg "rows"; Reg "nnz"; Reg "band" ]);
      ignore (B.call b "dot_product" [ Reg "rows" ]);
      B.ret_unit b)

let setup_matrix =
  B.define "setup_matrix" ~params:[ "rows"; "nnz" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun i ->
          B.for_ b "j" ~from:(Int 0) ~below:(Reg "nnz") (fun _ ->
              B.work b (Int 1));
          ignore (B.call b "owner_of_row" [ i ]));
      B.ret_unit b)

let main =
  B.define "main" ~params:[ "n"; "nnz"; "band"; "maxit" ] (fun b ->
      let n = Dsl.register b "n" (Reg "n") in
      let nnz = Dsl.register b "nnz" (Reg "nnz") in
      let band = Dsl.register b "band" (Reg "band") in
      let maxit = Dsl.register b "maxit" (Reg "maxit") in
      let p = Dsl.comm_size b in
      let _rank = Dsl.comm_rank b in
      let rows = B.div b n p in
      B.call_unit b "setup_matrix" [ rows; nnz ];
      B.call_unit b "cg_solve" [ rows; nnz; band; maxit ];
      B.ret_unit b)

let program =
  B.program "minicg" ~entry:"main"
    ([ main; cg_solve; cg_step; spmv; dot_product; axpy;
       apply_preconditioner; exchange_halo; setup_matrix ]
    @ helpers)

(** Tainted-run configuration: 64 global rows on 4 ranks, 3 iterations. *)
let taint_args = [ VInt 64; VInt 5; VInt 4; VInt 3 ]

let taint_world = { Mpi_sim.Runtime.ranks = 4; rank = 0 }

let model_params = [ "p"; "n"; "maxit" ]

let all_params = [ "p"; "n"; "nnz"; "band"; "maxit" ]
