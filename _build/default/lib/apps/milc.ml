(** Mini-MILC: a PIR reconstruction of the su3_rmd application from the
    MIMD Lattice Computation suite (lattice QCD with staggered fermions),
    the second evaluation target of the paper.

    Preserved structure: the four lattice-extent parameters nx, ny, nz, nt
    whose product (divided by p) bounds every site loop — a multi-label
    exit condition that the analysis conservatively reports as
    multiplicative; the molecular-dynamics trajectory structure (warms +
    trajecs trajectories of steps MD steps); the conjugate-gradient solver
    bounded by niter with restart loops; a gather communication layer that
    switches algorithm at a rank-count threshold (the C2 experiment); and
    the physics parameters mass, beta, nflavors, u0 with their narrow loop
    footprint (Table 3's last column). *)

open Ir.Types
module B = Ir.Builder

(* -- tiny helpers: SU(3) algebra etc. (statically prunable) --------------- *)

let leaf = Dsl.leaf_helper
let cloop = Dsl.const_loop_helper

let helpers =
  [
    cloop ~trip:9 ~units:2 "su3_mat_mul";
    cloop ~trip:9 ~units:1 "su3_mat_vec";
    cloop ~trip:9 ~units:1 "su3_adjoint";
    cloop ~trip:3 ~units:1 "su3_rdot";
    cloop ~trip:3 ~units:1 "add_su3_vector";
    cloop ~trip:9 ~units:1 "scalar_mult_su3";
    cloop ~trip:9 ~units:1 "make_anti_hermitian";
    cloop ~trip:9 ~units:1 "uncompress_anti_hermitian";
    leaf ~units:2 "rand_gauss";
    leaf ~units:1 "site_index";
    leaf ~units:1 "neighbor_index";
    leaf ~units:1 "ks_phase";
    leaf ~units:1 "boundary_phase";
    cloop ~trip:3 ~units:1 "clear_su3_vector";
    cloop ~trip:3 ~units:1 "copy_su3_vector";
    cloop ~trip:3 ~units:1 "magsq_su3_vector";
    leaf ~units:1 "z2_random";
    cloop ~trip:9 ~units:1 "set_su3_identity";
    cloop ~trip:3 ~units:1 "trace_su3";
    leaf ~units:1 "realtrace_su3";
    leaf ~units:1 "complex_mul";
    leaf ~units:1 "complex_add";
    leaf ~units:1 "complex_conjugate";
    leaf ~units:1 "mom_update_leaf";
    leaf ~units:1 "dirac_phase";
    cloop ~trip:4 ~units:1 "path_product";
    leaf ~units:1 "momentum_twist";
    cloop ~trip:3 ~units:1 "su3_vec_scale";
    leaf ~units:1 "lattice_coordinate";
    leaf ~units:1 "parity_of_site";
  ]

(* Functions present in the binary but never executed by the taint run:
   the dynamic phase reports them as not visited (Section 4.4).  MILC
   carries a lot of these — alternative actions, IO formats, measurement
   routines for other physics — which is why the paper's dynamic phase
   prunes 188 functions. *)
let unexecuted =
  [
    Dsl.elem_kernel ~units:2 "reload_lattice_from_file";
    Dsl.elem_kernel ~units:2 "save_lattice_to_file";
    Dsl.elem_kernel ~units:3 "gauge_fix_coulomb";
    Dsl.leaf_helper ~units:1 "io_detect_format";
    Dsl.elem_kernel ~units:2 "spectrum_measurement";
    Dsl.elem_kernel ~units:2 "meson_propagator";
    Dsl.elem_kernel ~units:2 "baryon_propagator";
    Dsl.elem_kernel ~units:2 "wilson_loop_measure";
    Dsl.elem_kernel ~units:2 "smear_links";
    Dsl.elem_kernel ~units:2 "ape_smearing";
    Dsl.elem_kernel ~units:2 "fuzzy_links";
    Dsl.elem_kernel ~units:3 "eigenvalue_measure";
    Dsl.elem_kernel ~units:2 "topological_charge";
    Dsl.leaf_helper ~units:1 "io_swap_bytes";
    Dsl.leaf_helper ~units:1 "io_checksum";
    Dsl.leaf_helper ~units:1 "io_read_header";
    Dsl.leaf_helper ~units:1 "io_write_header";
    Dsl.leaf_helper ~units:1 "terse_output_mode";
    Dsl.leaf_helper ~units:1 "ask_starting_lattice";
    Dsl.leaf_helper ~units:1 "ask_ending_lattice";
    Dsl.const_loop_helper ~trip:4 ~units:1 "reunit_report";
    Dsl.const_loop_helper ~trip:4 ~units:1 "check_unitarity_strict";
    Dsl.leaf_helper ~units:1 "print_lattice_info";
  ]

(* -- communication layer -------------------------------------------------- *)

(* The gather with an algorithm switch: at small rank counts a cheap
   nearest-neighbour exchange suffices; beyond the threshold a general
   (qualitatively different) path runs.  The branch condition is tainted
   by the implicit parameter p — exactly the C2 situation. *)
let start_gather =
  B.define "start_gather" ~params:[ "msgsize" ] (fun b ->
      let p = Dsl.comm_size b in
      let small = B.le b p (Int 8) in
      B.if_ b small
        ~then_:(fun () ->
          (* Nearest-neighbour path: 2 directions. *)
          B.for_ b "d" ~from:(Int 0) ~below:(Int 2) (fun _ ->
              Dsl.irecv b (Reg "msgsize");
              Dsl.isend b (Reg "msgsize")))
        ~else_:(fun () ->
          (* General path: all 8 directions plus a handshake. *)
          B.for_ b "d" ~from:(Int 0) ~below:(Int 8) (fun _ ->
              Dsl.irecv b (Reg "msgsize");
              Dsl.isend b (Reg "msgsize"));
          Dsl.barrier b)
        ();
      B.ret_unit b)

let wait_gather =
  B.define "wait_gather" ~params:[ "msgsize" ] (fun b ->
      let p = Dsl.comm_size b in
      let small = B.le b p (Int 8) in
      B.if_ b small
        ~then_:(fun () ->
          B.for_ b "d" ~from:(Int 0) ~below:(Int 4) (fun _ -> Dsl.wait b))
        ~else_:(fun () ->
          B.for_ b "d" ~from:(Int 0) ~below:(Int 16) (fun _ -> Dsl.wait b))
        ();
      B.ret_unit b)

let global_sum =
  B.define "global_sum" ~params:[ "x" ] (fun b ->
      Dsl.allreduce b (Int 1);
      B.ret b (Reg "x"))

let bcast_parameters =
  B.define "bcast_parameters" ~params:[ "n" ] (fun b ->
      Dsl.bcast b (Reg "n");
      B.ret_unit b)

let plaq_reduce =
  B.define "plaq_reduce" ~params:[ "x" ] (fun b ->
      Dsl.allreduce b (Int 2);
      B.ret b (Reg "x"))

let comm_routines =
  [ start_gather; wait_gather; global_sum; bcast_parameters; plaq_reduce ]

(* -- solver and force kernels --------------------------------------------- *)

(* Fat/long link construction: recomputed per MD step in improved
   staggered actions — heavy su3 site loops. *)
let load_fatlinks =
  B.define "load_fatlinks" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "path_product" [ i ]);
          B.work b (Int 16));
      B.ret_unit b)

let load_longlinks =
  B.define "load_longlinks" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "path_product" [ i ]);
          B.work b (Int 10));
      B.ret_unit b)

(* KS phase application over the local lattice. *)
let rephase =
  B.define "rephase" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "ks_phase" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

(* Lattice-wide vector utilities used by the CG driver. *)
let clear_latvec =
  B.define "clear_latvec" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "clear_su3_vector" [ i ]));
      B.ret_unit b)

let copy_latvec =
  B.define "copy_latvec" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "copy_su3_vector" [ i ]));
      B.ret_unit b)

let scalar_mult_latvec =
  B.define "scalar_mult_latvec" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_vec_scale" [ i ]));
      B.ret_unit b)

(* Unitarity check over the gauge field, once per trajectory. *)
let check_unitarity =
  B.define "check_unitarity" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_adjoint" [ i ]);
          ignore (B.call b "realtrace_su3" [ i ]);
          B.work b (Int 4));
      B.ret_unit b)

(* Staggered Dslash: the hot loop over local sites with a halo gather.
   The site count is vol/p, so the exit condition carries all of
   {nx, ny, nz, nt, p}. *)
let dslash =
  B.define "dslash" ~params:[ "sites"; "msgsize" ] (fun b ->
      B.call_unit b "start_gather" [ Reg "msgsize" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_vec" [ i ]);
          ignore (B.call b "add_su3_vector" [ i ]);
          B.work b (Int 8));
      B.call_unit b "wait_gather" [ Reg "msgsize" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_vec" [ i ]);
          B.work b (Int 4));
      B.ret_unit b)

(* CG vector updates over local sites. *)
let axpy_sites =
  B.define "axpy_sites" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_vec_scale" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let dot_product_sites =
  B.define "dot_product_sites" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "magsq_su3_vector" [ i ]);
          B.work b (Int 2));
      ignore (B.call b "global_sum" [ Int 1 ]);
      B.ret b (Int 1))

(* The Kogut-Susskind conjugate gradient: restart loop whose count is a
   pure function of mass and beta (the narrow mass/beta loop of Table 3),
   and an inner iteration loop bounded by niter. *)
let ks_congrad =
  B.define "ks_congrad" ~params:[ "sites"; "niter"; "restarts"; "msgsize" ]
    (fun b ->
      B.call_unit b "clear_latvec" [ Reg "sites" ];
      B.call_unit b "copy_latvec" [ Reg "sites" ];
      B.for_ b "r" ~from:(Int 0) ~below:(Reg "restarts") (fun _ ->
          B.call_unit b "scalar_mult_latvec" [ Reg "sites" ];
          B.for_ b "it" ~from:(Int 0) ~below:(Reg "niter") (fun _ ->
              B.call_unit b "dslash" [ Reg "sites"; Reg "msgsize" ];
              B.call_unit b "dslash" [ Reg "sites"; Reg "msgsize" ];
              B.call_unit b "axpy_sites" [ Reg "sites" ];
              ignore (B.call b "dot_product_sites" [ Reg "sites" ])));
      B.ret_unit b)

(* Gaussian random source, once per flavor: the nflavors loop. *)
let grsource_imp =
  B.define "grsource_imp" ~params:[ "sites"; "nflavors" ] (fun b ->
      B.for_ b "fl" ~from:(Int 0) ~below:(Reg "nflavors") (fun _ ->
          B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
              ignore (B.call b "rand_gauss" [ i ]);
              B.work b (Int 2)));
      B.ret_unit b)

let fermion_force =
  B.define "fermion_force" ~params:[ "sites"; "msgsize" ] (fun b ->
      B.call_unit b "start_gather" [ Reg "msgsize" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "make_anti_hermitian" [ i ]);
          B.work b (Int 10));
      B.call_unit b "wait_gather" [ Reg "msgsize" ];
      B.ret_unit b)

let gauge_force =
  B.define "gauge_force" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "path_product" [ i ]);
          ignore (B.call b "su3_mat_mul" [ i ]);
          B.work b (Int 12));
      B.ret_unit b)

(* Reunitarisation: the per-site Newton iteration count is a (synthetic)
   pure function of u0 — giving u0 its small loop footprint. *)
let reunitarize =
  B.define "reunitarize" ~params:[ "sites"; "u0" ] (fun b ->
      let extra = B.rem b (Reg "u0") (Int 3) in
      let iters = B.add b (Int 1) extra in
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          B.for_ b "k" ~from:(Int 0) ~below:iters (fun _ ->
              ignore (B.call b "su3_adjoint" [ i ]);
              B.work b (Int 3)));
      B.ret_unit b)

let ranmom =
  B.define "ranmom" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "rand_gauss" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let update_u =
  B.define "update_u" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "uncompress_anti_hermitian" [ i ]);
          ignore (B.call b "su3_mat_mul" [ i ]);
          B.work b (Int 6));
      B.ret_unit b)

let update_h =
  B.define "update_h" ~params:[ "sites"; "nflavors"; "msgsize" ] (fun b ->
      B.call_unit b "load_fatlinks" [ Reg "sites" ];
      B.call_unit b "load_longlinks" [ Reg "sites" ];
      B.call_unit b "gauge_force" [ Reg "sites" ];
      B.for_ b "fl" ~from:(Int 0) ~below:(Reg "nflavors") (fun _ ->
          B.call_unit b "fermion_force" [ Reg "sites"; Reg "msgsize" ]);
      B.ret_unit b)

(* One MD trajectory: steps leapfrog steps, each ending in a CG solve. *)
let update =
  B.define "update"
    ~params:[ "sites"; "steps"; "niter"; "restarts"; "nflavors"; "u0"; "msgsize" ]
    (fun b ->
      B.call_unit b "ranmom" [ Reg "sites" ];
      B.for_ b "s" ~from:(Int 0) ~below:(Reg "steps") (fun _ ->
          B.call_unit b "update_u" [ Reg "sites" ];
          B.call_unit b "update_h"
            [ Reg "sites"; Reg "nflavors"; Reg "msgsize" ];
          B.call_unit b "grsource_imp" [ Reg "sites"; Reg "nflavors" ];
          B.call_unit b "ks_congrad"
            [ Reg "sites"; Reg "niter"; Reg "restarts"; Reg "msgsize" ]);
      B.call_unit b "reunitarize" [ Reg "sites"; Reg "u0" ];
      B.ret_unit b)

(* Momentum and gauge action measurements, once per trajectory. *)
let gauge_action =
  B.define "gauge_action" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "trace_su3" [ i ]);
          B.work b (Int 8));
      ignore (B.call b "global_sum" [ Int 1 ]);
      B.ret b (Int 1))

let mom_action =
  B.define "mom_action" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_rdot" [ i ]);
          B.work b (Int 3));
      ignore (B.call b "global_sum" [ Int 1 ]);
      B.ret b (Int 1))

let d_action =
  B.define "d_action" ~params:[ "sites" ] (fun b ->
      ignore (B.call b "gauge_action" [ Reg "sites" ]);
      ignore (B.call b "mom_action" [ Reg "sites" ]);
      B.ret b (Int 1))

(* Antiperiodic boundary flip in the time direction, once at setup. *)
let boundary_flip =
  B.define "boundary_flip" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "boundary_phase" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

(* -- observables ----------------------------------------------------------- *)

let plaquette =
  B.define "plaquette" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          ignore (B.call b "realtrace_su3" [ i ]);
          B.work b (Int 6));
      ignore (B.call b "plaq_reduce" [ Int 1 ]);
      B.ret b (Int 1))

let ploop =
  B.define "ploop" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_mat_mul" [ i ]);
          B.work b (Int 4));
      ignore (B.call b "global_sum" [ Int 1 ]);
      B.ret b (Int 1))

let f_measure =
  B.define "f_measure" ~params:[ "sites"; "niter"; "restarts"; "msgsize" ]
    (fun b ->
      B.call_unit b "ks_congrad"
        [ Reg "sites"; Reg "niter"; Reg "restarts"; Reg "msgsize" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "su3_rdot" [ i ]);
          B.work b (Int 3));
      B.ret b (Int 1))

(* -- setup ------------------------------------------------------------------ *)

let setup_layout =
  B.define "setup_layout" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "site_index" [ i ]);
          ignore (B.call b "lattice_coordinate" [ i ]));
      B.ret_unit b)

let make_lattice =
  B.define "make_lattice" ~params:[ "sites" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "sites") (fun i ->
          ignore (B.call b "set_su3_identity" [ i ]);
          ignore (B.call b "ks_phase" [ i ]));
      B.ret_unit b)

let main =
  B.define "main"
    ~params:
      [ "nx"; "ny"; "nz"; "nt"; "warms"; "trajecs"; "steps"; "niter"; "mass";
        "beta"; "nflavors"; "u0" ] (fun b ->
      let nx = Dsl.register b "nx" (Reg "nx") in
      let ny = Dsl.register b "ny" (Reg "ny") in
      let nz = Dsl.register b "nz" (Reg "nz") in
      let nt = Dsl.register b "nt" (Reg "nt") in
      let warms = Dsl.register b "warms" (Reg "warms") in
      let trajecs = Dsl.register b "trajecs" (Reg "trajecs") in
      let steps = Dsl.register b "steps" (Reg "steps") in
      let niter = Dsl.register b "niter" (Reg "niter") in
      let mass = Dsl.register b "mass" (Reg "mass") in
      let beta = Dsl.register b "beta" (Reg "beta") in
      let nflavors = Dsl.register b "nflavors" (Reg "nflavors") in
      let u0 = Dsl.register b "u0" (Reg "u0") in
      let p = Dsl.comm_size b in
      let _rank = Dsl.comm_rank b in
      B.call_unit b "bcast_parameters" [ Int 16 ];
      let vol = B.mul b (B.mul b nx ny) (B.mul b nz nt) in
      let sites = B.div b vol p in
      (* Halo message size: a surface slice of the local volume. *)
      let msgsize = B.div b sites (B.imax b nt (Int 1)) in
      (* CG restart count: a pure function of mass and beta. *)
      let restarts = B.add b (Int 1) (B.rem b (B.add b mass beta) (Int 2)) in
      B.call_unit b "setup_layout" [ sites ];
      B.call_unit b "make_lattice" [ sites ];
      B.for_ b "w" ~from:(Int 0) ~below:warms (fun _ ->
          B.call_unit b "update"
            [ sites; steps; niter; restarts; nflavors; u0; msgsize ]);
      B.call_unit b "rephase" [ sites ];
      B.call_unit b "boundary_flip" [ sites ];
      B.for_ b "tr" ~from:(Int 0) ~below:trajecs (fun _ ->
          B.call_unit b "update"
            [ sites; steps; niter; restarts; nflavors; u0; msgsize ];
          B.call_unit b "check_unitarity" [ sites ];
          ignore (B.call b "d_action" [ sites ]);
          ignore (B.call b "plaquette" [ sites ]);
          ignore (B.call b "ploop" [ sites ]);
          ignore
            (B.call b "f_measure" [ sites; niter; restarts; msgsize ]));
      B.ret_unit b)

let kernels =
  [
    main;
    update;
    update_h;
    update_u;
    ranmom;
    grsource_imp;
    ks_congrad;
    dslash;
    load_fatlinks;
    load_longlinks;
    rephase;
    clear_latvec;
    copy_latvec;
    scalar_mult_latvec;
    check_unitarity;
    gauge_action;
    mom_action;
    d_action;
    boundary_flip;
    axpy_sites;
    dot_product_sites;
    fermion_force;
    gauge_force;
    reunitarize;
    plaquette;
    ploop;
    f_measure;
    setup_layout;
    make_lattice;
  ]

let program =
  B.program "milc" ~entry:"main"
    (kernels @ comm_routines @ helpers @ unexecuted)

(** Taint-run configuration: the paper analyses MILC with size 128 on 32
    ranks (4 sites per rank). *)
let taint_args =
  [ VInt 4 (* nx *); VInt 4 (* ny *); VInt 2 (* nz *); VInt 4 (* nt *);
    VInt 1 (* warms *); VInt 2 (* trajecs *); VInt 2 (* steps *);
    VInt 5 (* niter *); VInt 2 (* mass *); VInt 6 (* beta *);
    VInt 2 (* nflavors *); VInt 8 (* u0 *) ]

let taint_world = { Mpi_sim.Runtime.ranks = 32; rank = 0 }

(** The paper's two modeling parameters: the domain size (nx*ny*nz*nt) and
    the rank count.  In the measurement harness the four extents are swept
    together through a single [size] value. *)
let model_params = [ "p"; "size" ]

let all_params =
  [ "p"; "nx"; "ny"; "nz"; "nt"; "warms"; "trajecs"; "steps"; "niter";
    "mass"; "beta"; "nflavors"; "u0" ]
