(** The small example programs from the paper's listings. *)

val iterate_example : Ir.Types.program
(** Section 4.1: [iterate(pow(size,2), optimize_step(step))]. *)

val foo_example : Ir.Types.program
(** Section 3.2: data-flow label a, control-flow label b, implicit c. *)

val algorithm_selection : Ir.Types.program
(** Section C2: an implementation switch at a parameter threshold. *)

val matrix_init : Ir.Types.program
(** Section 3.1, C99 flavour: the rows x columns doubly nested
    initialisation with scalar bounds. *)

val matrix_init_cpp : Ir.Types.program
(** Section 3.1, C++ flavour: the dimensions hide behind pointer
    indirection and getters, defeating the static analysis while the
    dynamic taint analysis still succeeds. *)

val control_dependence : Ir.Types.program
(** Section 5.2: region sizes counted under a size-bounded loop. *)
