(** Shared construction helpers for the mini applications. *)

open Ir.Types

val register : Ir.Builder.t -> string -> operand -> operand
(** The paper's [register_variable] one-liner: returns the operand carrying
    the parameter's base taint label. *)

val comm_size : Ir.Builder.t -> operand
val comm_rank : Ir.Builder.t -> operand
val allreduce : Ir.Builder.t -> operand -> unit
val barrier : Ir.Builder.t -> unit
val isend : Ir.Builder.t -> operand -> unit
val irecv : Ir.Builder.t -> operand -> unit
val wait : Ir.Builder.t -> unit
val send : Ir.Builder.t -> operand -> unit
val recv : Ir.Builder.t -> operand -> unit
val bcast : Ir.Builder.t -> operand -> unit
val allgather : Ir.Builder.t -> operand -> unit

val leaf_helper : ?units:int -> string -> func
(** A loop-free constant helper (C++ accessor). *)

val const_loop_helper : ?trip:int -> ?units:int -> string -> func
(** A helper with one constant-trip loop (statically prunable). *)

val elem_kernel : ?units:int -> ?callees:string list -> string -> func
(** [for i < n] kernel calling [callees] once per element. *)

val names : func list -> string list
