(** Ground-truth performance specification of mini-LULESH for the cluster
    simulator (weak scaling: size is the per-rank edge). *)

val defaults : (string * float) list
(** Parameter defaults merged under every configuration. *)

val app : Measure.Spec.app

val p_values : float list
(** The paper's 5 rank counts. *)

val size_values : float list
(** The paper's 5 problem sizes (25..45). *)
