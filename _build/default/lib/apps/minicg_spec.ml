(** Ground-truth performance specification of miniCG: per-rank rows
    R = n/p, so compute shrinks with p (strong scaling) while the
    reductions grow with log p — the classic CG crossover. *)

module Spec = Measure.Spec
module Machine = Mpi_sim.Machine

let defaults =
  [ ("p", 4.); ("n", 1.0e6); ("nnz", 27.); ("band", 1024.); ("maxit", 500.);
    ("r", 8.) ]

let g ps name =
  match List.assoc_opt name ps with
  | Some v -> v
  | None -> List.assoc name defaults

let log2 x = Float.log x /. Float.log 2.

(** Local rows per rank. *)
let rows ps = g ps "n" /. g ps "p"

let iters ps = g ps "maxit"

let kernels =
  [
    (* SpMV: the rows x nnz multiplicative kernel, heavily memory bound. *)
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.85 ~calls:iters
      ~base_time:(fun ps _ -> 1.2e-9 *. rows ps *. g ps "nnz" *. iters ps)
      ~truth_deps:[ "p"; "n"; "nnz" ] "spmv";
    (* Dot products: linear compute plus a log p reduction. *)
    Spec.kernel ~kind:Spec.Communication ~memory_bound:0.6
      ~calls:(fun ps -> (2. *. iters ps) +. 1.)
      ~base_time:(fun ps m ->
        ((2. *. iters ps) +. 1.)
        *. ((4.0e-10 *. rows ps)
            +. (2. *. m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))))
      ~truth_deps:[ "p"; "n" ] "dot_product";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.9
      ~calls:(fun ps -> 2. *. iters ps)
      ~base_time:(fun ps _ -> 2. *. 5.0e-10 *. rows ps *. iters ps)
      ~truth_deps:[ "p"; "n" ] "axpy";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.9 ~calls:iters
      ~base_time:(fun ps _ -> 4.0e-10 *. rows ps *. iters ps)
      ~truth_deps:[ "p"; "n" ] "apply_preconditioner";
    Spec.kernel ~kind:Spec.Communication ~calls:iters
      ~base_time:(fun ps m ->
        iters ps
        *. 4.
        *. (m.Machine.net_latency_s
            +. (g ps "band" *. 8. *. m.Machine.net_byte_time)))
      ~truth_deps:[ "band" ] "exchange_halo";
    Spec.kernel ~kind:Spec.Helper ~calls:iters
      ~base_time:(fun ps _ -> 3.0e-7 *. iters ps)
      ~truth_deps:[] "cg_step";
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 1.0e-7 *. iters ps)
      ~truth_deps:[ "maxit" ] "cg_solve";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 8.0e-10 *. rows ps *. g ps "nnz")
      ~truth_deps:[ "p"; "n"; "nnz" ] "setup_matrix";
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(fun _ _ -> 1.0e-5) ~truth_deps:[] "main";
    (* MPI routines. *)
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> (2. *. iters ps) +. 1.)
      ~base_time:(fun ps m ->
        ((2. *. iters ps) +. 1.)
        *. 2. *. m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "mpi_allreduce";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 2. *. iters ps)
      ~base_time:(fun ps m ->
        2. *. iters ps
        *. (m.Machine.net_latency_s
            +. (g ps "band" *. 8. *. m.Machine.net_byte_time)))
      ~truth_deps:[ "band" ] "mpi_isend";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 2. *. iters ps)
      ~base_time:(fun ps m -> 2. *. iters ps *. m.Machine.net_latency_s)
      ~truth_deps:[] "mpi_irecv";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 4. *. iters ps)
      ~base_time:(fun ps m -> 4. *. iters ps *. m.Machine.net_latency_s)
      ~truth_deps:[] "mpi_wait";
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 1.)
      ~base_time:(fun _ _ -> 4.0e-8) ~truth_deps:[] "mpi_comm_size";
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 1.)
      ~base_time:(fun _ _ -> 4.0e-8) ~truth_deps:[] "mpi_comm_rank";
    (* C helpers (not inline candidates). *)
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> rows ps *. g ps "nnz" *. iters ps)
      ~base_time:(fun ps _ -> 5.0e-10 *. rows ps *. g ps "nnz" *. iters ps)
      ~truth_deps:[] "column_of";
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> rows ps *. g ps "nnz" *. iters ps)
      ~base_time:(fun ps _ -> 5.0e-10 *. rows ps *. g ps "nnz" *. iters ps)
      ~truth_deps:[] "value_of";
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> rows ps *. iters ps)
      ~base_time:(fun ps _ -> 1.0e-9 *. rows ps *. iters ps)
      ~truth_deps:[] "row_start";
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> rows ps *. iters ps)
      ~base_time:(fun ps _ -> 1.0e-9 *. rows ps *. iters ps)
      ~truth_deps:[] "alpha_update";
    Spec.kernel ~kind:Spec.Helper
      ~calls:(fun ps -> rows ps *. iters ps)
      ~base_time:(fun ps _ -> 1.0e-9 *. rows ps *. iters ps)
      ~truth_deps:[] "preconditioner_diag";
  ]

let app = { Spec.aname = "minicg"; kernels; model_params = [ "p"; "n" ] }

let p_values = [ 2.; 4.; 8.; 16.; 32. ]
let n_values = [ 2.5e5; 5.0e5; 1.0e6; 2.0e6; 4.0e6 ]
