(** MiniCG: a third, HPCG-style application — a distributed conjugate
    gradient solver exercising a rows x nonzeros multiplicative pair, a
    maxit-bounded solver loop, reductions and a band-sized halo. *)

val program : Ir.Types.program
val taint_args : Ir.Types.value list
val taint_world : Mpi_sim.Runtime.world
val model_params : string list
val all_params : string list
