(** The small programs used as running examples in the paper, expressed in
    PIR.  They serve as documentation, as unit-test subjects, and as the
    quickstart example's target. *)

open Ir.Types
module B = Ir.Builder

(** Section 4.1's listing:

    {v
    struct params = parse_args();
    write_label(&params.size, "size", &params.step, "step");
    iterate(pow(params.size, 2), optimize_step(params));
    void iterate(int size, int step) {
      for (int i = 0; i < size; i += step) { compute(); }
    }
    v}

    The loop count of [iterate] must depend on both [size] (through the
    squared argument) and [step] (through the optimised stride). *)
let iterate_example =
  let compute = Dsl.leaf_helper ~units:8 "compute" in
  let optimize_step =
    B.define "optimize_step" ~params:[ "step" ] (fun b ->
        (* A data-flow transformation of the step: 2*step - step. *)
        let doubled = B.mul b (Reg "step") (Int 2) in
        B.ret b (B.sub b doubled (Reg "step")))
  in
  let iterate =
    B.define "iterate" ~params:[ "size"; "step" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "size") ~step:(Reg "step")
          (fun i -> B.call_unit b "compute" [ i ]);
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "size"; "step" ] (fun b ->
        let size = Dsl.register b "size" (Reg "size") in
        let step = Dsl.register b "step" (Reg "step") in
        let size2 = B.mul b size size in
        let opt = B.call b "optimize_step" [ step ] in
        B.call_unit b "iterate" [ size2; opt ];
        B.ret_unit b)
  in
  B.program "iterate-example" ~entry:"main" [ main; iterate; optimize_step; compute ]

(** Section 3.2's propagation-policy listing:

    {v
    int foo(int a, int b, int c) {
      int d = 2 * a;            // data-flow taint "a"
      if (b) d++; else d--;     // explicit control-flow taint "b"
      if (c) d = pow(d, 2);     // (implicit) taint "c"
      return d;
    }
    v}

    With data- and control-flow propagation the return value carries
    labels a, b, and (when the branch executes) c. *)
let foo_example =
  let foo =
    B.define "foo" ~params:[ "a"; "b"; "c" ] (fun b ->
        B.set b "d" (B.mul b (Int 2) (Reg "a"));
        let bnz = B.ne b (Reg "b") (Int 0) in
        B.if_ b bnz
          ~then_:(fun () -> B.set b "d" (B.add b (Reg "d") (Int 1)))
          ~else_:(fun () -> B.set b "d" (B.sub b (Reg "d") (Int 1)))
          ();
        let cnz = B.ne b (Reg "c") (Int 0) in
        B.if_ b cnz
          ~then_:(fun () -> B.set b "d" (B.mul b (Reg "d") (Reg "d")))
          ();
        B.ret b (Reg "d"))
  in
  let main =
    B.define "main" ~params:[ "a"; "b"; "c" ] (fun b ->
        let a = Dsl.register b "a" (Reg "a") in
        let bb = Dsl.register b "b" (Reg "b") in
        let c = Dsl.register b "c" (Reg "c") in
        B.ret b (B.call b "foo" [ a; bb; c ]))
  in
  B.program "foo-example" ~entry:"main" [ main; foo ]

(** Section C2's algorithm-selection listing: a routine that switches
    implementation at a parameter threshold, making measurements across
    the threshold qualitatively inconsistent.

    {v
    int foo(int a) {
      if (a < 4) kernel_linear(a);
      else       kernel_log(a);
    }
    v} *)
let algorithm_selection =
  let kernel_linear = Dsl.elem_kernel ~units:2 "kernel_linear" in
  let kernel_log =
    B.define "kernel_log" ~params:[ "n" ] (fun b ->
        (* while (m > 1) m /= 2 : a log2(n)-trip loop. *)
        B.set b "m" (Reg "n");
        B.while_ b
          ~cond:(fun () -> B.gt b (Reg "m") (Int 1))
          ~body:(fun () ->
            B.work b (Int 4);
            B.set b "m" (B.div b (Reg "m") (Int 2)));
        B.ret_unit b)
  in
  let select =
    B.define "select" ~params:[ "a" ] (fun b ->
        let small = B.lt b (Reg "a") (Int 4) in
        B.if_ b small
          ~then_:(fun () -> B.call_unit b "kernel_linear" [ Reg "a" ])
          ~else_:(fun () -> B.call_unit b "kernel_log" [ Reg "a" ])
          ();
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "a" ] (fun b ->
        let a = Dsl.register b "a" (Reg "a") in
        B.call_unit b "select" [ a ];
        B.ret_unit b)
  in
  B.program "algorithm-selection" ~entry:"main"
    [ main; select; kernel_linear; kernel_log ]

(** The matrix-initialisation pair from Section 3.1, in its C99 flavour: a
    doubly nested loop whose volume is rows * columns — the canonical
    multiplicative dependency. *)
let matrix_init =
  let init =
    B.define "init" ~params:[ "rows"; "cols" ] (fun b ->
        let a = B.alloc b (B.mul b (Reg "rows") (Reg "cols")) in
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "rows") (fun i ->
            B.for_ b "j" ~from:(Int 0) ~below:(Reg "cols") (fun j ->
                let idx = B.add b (B.mul b i (Reg "cols")) j in
                B.store b a idx (Int 0)));
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "rows"; "cols" ] (fun b ->
        let rows = Dsl.register b "rows" (Reg "rows") in
        let cols = Dsl.register b "cols" (Reg "cols") in
        B.call_unit b "init" [ rows; cols ];
        B.ret_unit b)
  in
  B.program "matrix-init" ~entry:"main" [ main; init ]

(** The C++ flavour of the same initialisation (Section 3.1): the matrix
    dimensions live in memory behind a pointer (class members accessed
    through getters), so the static trip-count analysis cannot resolve
    the bounds — but the dynamic taint analysis still recovers the
    {rows, cols} dependency.  This is the paper's argument for why purely
    static performance modeling fails on abstraction-heavy code. *)
let matrix_init_cpp =
  (* struct matrix { int rows, cols; float *a; } — slot 0: rows, 1: cols. *)
  let get_rows =
    B.define "get_rows" ~params:[ "m" ] (fun b ->
        B.ret b (B.load b (Reg "m") (Int 0)))
  in
  let get_cols =
    B.define "get_cols" ~params:[ "m" ] (fun b ->
        B.ret b (B.load b (Reg "m") (Int 1)))
  in
  let at =
    B.define "at" ~params:[ "m"; "i"; "j" ] (fun b ->
        let cols = B.call b "get_cols" [ Reg "m" ] in
        B.ret b (B.add b (B.mul b (Reg "i") cols) (Reg "j")))
  in
  let init =
    B.define "init_cpp" ~params:[ "m" ] (fun b ->
        B.for_ b "i" ~from:(Int 0)
          ~below:(B.call b "get_rows" [ Reg "m" ])
          (fun i ->
            (* The inner bound is re-fetched through the getter each
               iteration, exactly like the C++ listing. *)
            B.for_ b "j" ~from:(Int 0)
              ~below:(B.call b "get_cols" [ Reg "m" ])
              (fun j -> ignore (B.call b "at" [ Reg "m"; i; j ])));
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "rows"; "cols" ] (fun b ->
        let rows = Dsl.register b "rows" (Reg "rows") in
        let cols = Dsl.register b "cols" (Reg "cols") in
        B.set b "m" (B.alloc b (Int 2));
        B.store b (Reg "m") (Int 0) rows;
        B.store b (Reg "m") (Int 1) cols;
        B.call_unit b "init_cpp" [ Reg "m" ];
        B.ret_unit b)
  in
  B.program "matrix-init-cpp" ~entry:"main" [ main; init; at; get_rows; get_cols ]

(** The LULESH control-dependence example from Section 5.2: the region
    sizes are computed by counting elements, so their values depend on the
    loop trip count [numElem] only through control flow.

    {v
    for (Index_t i = 0; i < numElem(); ++i) {
      int r = regNumList(i) - 1;
      regElemSize(r)++;
    }
    v} *)
let control_dependence =
  let count_regions =
    B.define "count_regions" ~params:[ "numelem"; "nreg" ] (fun b ->
        let sizes = B.alloc b (Reg "nreg") in
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
            let r = B.rem b i (Reg "nreg") in
            let cur = B.load b sizes r in
            B.store b sizes r (B.add b cur (Int 1)));
        (* Iterate one region: its bound is control-tainted by numelem. *)
        let r0 = B.load b sizes (Int 0) in
        B.for_ b "j" ~from:(Int 0) ~below:r0 (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "size"; "regions" ] (fun b ->
        let size = Dsl.register b "size" (Reg "size") in
        let regions = Dsl.register b "regions" (Reg "regions") in
        let numelem = B.mul b size (B.mul b size size) in
        B.call_unit b "count_regions" [ numelem; regions ];
        B.ret_unit b)
  in
  B.program "control-dependence" ~entry:"main" [ main; count_regions ]
