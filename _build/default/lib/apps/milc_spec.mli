(** Ground-truth performance specification of mini-MILC: local site count
    L = size * 2048 / p, so per-rank times shrink with p (strong-scaling
    metrics needing the extended exponent menu). *)

val defaults : (string * float) list

val sites : Measure.Spec.params -> float
(** Local lattice sites per rank. *)

val app : Measure.Spec.app

val p_values : float list
(** The paper's rank counts: 2^n, 4..64. *)

val size_values : float list
(** The paper's domain sizes: 32..512. *)
