(** Mini-LULESH: a PIR reconstruction of the LULESH 2.0 hydrodynamics
    proxy app used throughout the paper's evaluation.

    The reconstruction preserves what the analyses observe: the function
    inventory (many tiny C++-style helpers around ~40 computational
    kernels and a handful of communication routines), the loop structure
    (element loops over size^3, node loops over (size+1)^3, region loops
    with cost/balance-dependent repetition, the iters time loop enclosing
    everything), and the parameter set {size, iters, regions, balance,
    cost} plus the implicit communicator size p.

    Physics is reduced to synthetic [work]: the taint analysis never looks
    at arithmetic results, only at which values reach loop bounds and
    branch conditions. *)

open Ir.Types
module B = Ir.Builder

(* Domain layout: a single "domain" array of array handles, mirroring the
   C++ Domain class whose members live behind a pointer (the paper's
   Section 3.1 argument for why static analysis fails here). *)
let d_x = 0
let d_xd = 1
let d_xdd = 2
let d_force = 3
let d_energy = 4
let d_pressure = 5
let d_q = 6
let d_vol = 7
let d_volo = 8
let d_delv = 9
let d_arealg = 10
let d_ss = 11
let d_nodelist = 12
let d_regnum = 13
let d_regsize = 14
let d_dtcourant = 15
let d_slots = 16

(* -- tiny helper functions (statically prunable) ------------------------- *)

let leaf = Dsl.leaf_helper
let cloop = Dsl.const_loop_helper

(* Second-tier math utilities: the long tail of tiny C++ functions that
   dominates the original LULESH function count (356 functions, 296
   statically pruned). *)
let math_helpers =
  List.map
    (fun name -> leaf ~units:1 name)
    [
      "det2x2"; "cross_x"; "cross_y"; "cross_z"; "dot3"; "norm3"; "scale3";
      "add3"; "sub3"; "lerp"; "abs_val"; "square_of"; "cube_of"; "half_of";
      "twice_of"; "fmadd"; "reciprocal"; "guard_nonzero"; "wrap_index";
      "saturate"; "node_x"; "node_y"; "node_z"; "elem_index"; "sym_index";
      "face_index"; "corner_offset"; "region_of"; "volume_guard"; "dt_scale";
    ]

(* Geometry helpers that themselves call the math tier, mirroring the C++
   abstraction layers of Section 3.1. *)
let area_face =
  B.define "area_face" ~params:[ "f" ] (fun b ->
      ignore (B.call b "dot3" [ Reg "f" ]);
      ignore (B.call b "norm3" [ Reg "f" ]);
      B.work b (Int 1);
      B.ret b (Reg "f"))

let triple_product =
  B.define "triple_product" ~params:[ "x" ] (fun b ->
      ignore (B.call b "det2x2" [ Reg "x" ]);
      ignore (B.call b "cross_x" [ Reg "x" ]);
      B.work b (Int 1);
      B.ret b (Reg "x"))

let dot8 =
  B.define "dot8" ~params:[ "x" ] (fun b ->
      B.for_ b "c" ~from:(Int 0) ~below:(Int 8) (fun c ->
          ignore (B.call b "fmadd" [ c ]));
      B.ret b (Reg "x"))

let helpers =
  math_helpers
  @ [
    area_face;
    triple_product;
    dot8;
    cloop ~trip:3 ~units:1 "cbrt_newton";
    cloop ~trip:3 ~units:1 "sqrt_newton";
    leaf ~units:1 "clamp_value";
    cloop ~trip:8 ~units:1 "gather_elem_nodes";
    cloop ~trip:8 ~units:1 "scatter_elem_force";
    cloop ~trip:8 ~units:2 "calc_elem_shape_derivs";
    cloop ~trip:6 ~units:1 "calc_elem_velocity_gradient";
    cloop ~trip:4 ~units:1 "hourglass_mode_sums";
    leaf ~units:1 "voln_ratio";
    leaf ~units:1 "elem_mass";
    leaf ~units:1 "node_mass";
    leaf ~units:1 "init_stress_terms";
    leaf ~units:1 "vdov_term";
    leaf ~units:1 "q_limiter";
    leaf ~units:1 "pressure_eos_leaf";
    leaf ~units:1 "energy_eos_leaf";
    leaf ~units:1 "sound_speed_leaf";
    leaf ~units:1 "material_index";
    cloop ~trip:8 ~units:1 "copy_block";
    leaf ~units:1 "min3";
    leaf ~units:1 "max3";
    leaf ~units:1 "sign_of";
    leaf ~units:1 "elem_delta_v";
    leaf ~units:1 "elem_area_ratio";
    cloop ~trip:8 ~units:1 "init_single_elem";
    leaf ~units:1 "time_step_scale";
    leaf ~units:1 "boundary_flag";
  ]

(* calc_elem_volume calls triple_product three times over the 8 corners:
   a helper calling helpers, all constant. *)
let calc_elem_volume =
  B.define "calc_elem_volume" ~params:[ "e" ] (fun b ->
      B.for_ b "c" ~from:(Int 0) ~below:(Int 8) (fun c ->
          ignore (B.call b "triple_product" [ c ]));
      B.ret b (Reg "e"))

let sum_elem_face_normal =
  B.define "sum_elem_face_normal" ~params:[ "f" ] (fun b ->
      ignore (B.call b "area_face" [ Reg "f" ]);
      B.work b (Int 1);
      B.ret b (Reg "f"))

let calc_elem_node_normals =
  B.define "calc_elem_node_normals" ~params:[ "e" ] (fun b ->
      B.for_ b "f" ~from:(Int 0) ~below:(Int 6) (fun f ->
          ignore (B.call b "sum_elem_face_normal" [ f ]));
      B.ret b (Reg "e"))

let calc_elem_char_length =
  B.define "calc_elem_char_length" ~params:[ "e" ] (fun b ->
      B.for_ b "f" ~from:(Int 0) ~below:(Int 6) (fun f ->
          ignore (B.call b "area_face" [ f ]));
      ignore (B.call b "sqrt_newton" [ Reg "e" ]);
      B.ret b (Reg "e"))

(* The per-region repetition count: pure data flow from cost and balance,
   no loops — the value later bounds the EOS loop. *)
let region_rep_count =
  B.define "region_rep_count" ~params:[ "r"; "balance"; "cost" ] (fun b ->
      let bucket = B.rem b (Reg "r") (B.imax b (Reg "balance") (Int 1)) in
      let extra = B.mul b bucket (Reg "cost") in
      B.ret b (B.add b (Int 1) extra))

let more_helpers =
  [
    calc_elem_volume;
    sum_elem_face_normal;
    calc_elem_node_normals;
    calc_elem_char_length;
    region_rep_count;
  ]

(* -- communication routines ---------------------------------------------- *)

(* Halo exchange of node-centred fields: 6 faces of size^2 values.  The
   message count is tainted by size; the routine's model additionally
   depends on the implicit p through the library database. *)
let comm_halo_nodes =
  B.define "comm_halo_nodes" ~params:[ "facesize" ] (fun b ->
      B.for_ b "n" ~from:(Int 0) ~below:(Int 6) (fun _ ->
          Dsl.irecv b (Reg "facesize"));
      B.for_ b "n" ~from:(Int 0) ~below:(Int 6) (fun _ ->
          Dsl.isend b (Reg "facesize"));
      B.for_ b "n" ~from:(Int 0) ~below:(Int 12) (fun _ -> Dsl.wait b);
      B.ret_unit b)

let comm_reduce_dt =
  B.define "comm_reduce_dt" ~params:[ "dt" ] (fun b ->
      Dsl.allreduce b (Int 1);
      B.ret b (Reg "dt"))

(* -- element and node kernels -------------------------------------------- *)

let get dom idx b = B.load b dom (Int idx)

let init_stress_terms_for_elems =
  B.define "init_stress_terms_for_elems" ~params:[ "dom"; "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "init_stress_terms" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let collect_domain_nodes_to_elem_nodes =
  B.define "collect_domain_nodes_to_elem_nodes" ~params:[ "dom"; "numelem" ]
    (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "gather_elem_nodes" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let integrate_stress_for_elems =
  B.define "integrate_stress_for_elems" ~params:[ "dom"; "numelem" ] (fun b ->
      let force = get (Reg "dom") d_force b in
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "gather_elem_nodes" [ i ]);
          ignore (B.call b "dot8" [ i ]);
          ignore (B.call b "scatter_elem_force" [ i ]);
          let idx = B.rem b i (Int 64) in
          B.store b force idx i;
          B.work b (Int 6));
      B.ret_unit b)

let calc_fb_hourglass_force_for_elems =
  B.define "calc_fb_hourglass_force_for_elems" ~params:[ "dom"; "numelem" ]
    (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "hourglass_mode_sums" [ i ]);
          ignore (B.call b "scatter_elem_force" [ i ]);
          B.work b (Int 8));
      B.ret_unit b)

let calc_hourglass_control_for_elems =
  B.define "calc_hourglass_control_for_elems" ~params:[ "dom"; "numelem" ]
    (fun b ->
      B.call_unit b "calc_elem_volume_derivative" [ Reg "dom"; Reg "numelem" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "calc_elem_shape_derivs" [ i ]);
          ignore (B.call b "calc_elem_volume" [ i ]);
          B.work b (Int 4));
      B.call_unit b "calc_fb_hourglass_force_for_elems"
        [ Reg "dom"; Reg "numelem" ];
      B.ret_unit b)

let calc_volume_force_for_elems =
  B.define "calc_volume_force_for_elems" ~params:[ "dom"; "numelem" ] (fun b ->
      B.call_unit b "init_stress_terms_for_elems" [ Reg "dom"; Reg "numelem" ];
      B.call_unit b "collect_domain_nodes_to_elem_nodes"
        [ Reg "dom"; Reg "numelem" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "calc_elem_volume" [ i ]);
          ignore (B.call b "calc_elem_node_normals" [ i ]);
          B.work b (Int 2));
      B.call_unit b "integrate_stress_for_elems" [ Reg "dom"; Reg "numelem" ];
      B.call_unit b "calc_hourglass_control_for_elems"
        [ Reg "dom"; Reg "numelem" ];
      B.ret_unit b)

let calc_force_for_nodes =
  B.define "calc_force_for_nodes" ~params:[ "dom"; "numelem"; "numnode"; "facesize" ]
    (fun b ->
      let force = get (Reg "dom") d_force b in
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numnode") (fun i ->
          let idx = B.rem b i (Int 64) in
          B.store b force idx (Int 0));
      B.call_unit b "calc_volume_force_for_elems" [ Reg "dom"; Reg "numelem" ];
      B.call_unit b "comm_halo_nodes" [ Reg "facesize" ];
      B.ret_unit b)

let calc_accel_for_nodes =
  B.define "calc_accel_for_nodes" ~params:[ "dom"; "numnode" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numnode") (fun i ->
          ignore (B.call b "node_mass" [ i ]);
          B.work b (Int 3));
      B.ret_unit b)

let apply_accel_bc_for_nodes =
  B.define "apply_accel_bc_for_nodes" ~params:[ "dom"; "facesize" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "facesize") (fun i ->
          ignore (B.call b "boundary_flag" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

let calc_vel_for_nodes =
  B.define "calc_vel_for_nodes" ~params:[ "dom"; "numnode" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numnode") (fun i ->
          ignore (B.call b "clamp_value" [ i ]);
          B.work b (Int 3));
      B.ret_unit b)

let calc_pos_for_nodes =
  B.define "calc_pos_for_nodes" ~params:[ "dom"; "numnode" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numnode") (fun _ ->
          B.work b (Int 3));
      B.ret_unit b)

let lagrange_nodal =
  B.define "lagrange_nodal"
    ~params:[ "dom"; "numelem"; "numnode"; "facesize" ] (fun b ->
      B.call_unit b "calc_force_for_nodes"
        [ Reg "dom"; Reg "numelem"; Reg "numnode"; Reg "facesize" ];
      B.call_unit b "calc_accel_for_nodes" [ Reg "dom"; Reg "numnode" ];
      B.call_unit b "apply_accel_bc_for_nodes" [ Reg "dom"; Reg "facesize" ];
      B.call_unit b "calc_vel_for_nodes" [ Reg "dom"; Reg "numnode" ];
      B.call_unit b "calc_pos_for_nodes" [ Reg "dom"; Reg "numnode" ];
      B.ret_unit b)

let calc_kinematics_for_elems =
  B.define "calc_kinematics_for_elems" ~params:[ "dom"; "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "calc_elem_volume" [ i ]);
          ignore (B.call b "calc_elem_char_length" [ i ]);
          ignore (B.call b "calc_elem_velocity_gradient" [ i ]);
          B.work b (Int 4));
      B.ret_unit b)

let calc_lagrange_elements =
  B.define "calc_lagrange_elements" ~params:[ "dom"; "numelem" ] (fun b ->
      B.call_unit b "calc_kinematics_for_elems" [ Reg "dom"; Reg "numelem" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "vdov_term" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let calc_monotonic_q_gradients_for_elems =
  B.define "calc_monotonic_q_gradients_for_elems" ~params:[ "dom"; "numelem" ]
    (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "elem_delta_v" [ i ]);
          B.work b (Int 5));
      B.ret_unit b)

(* Region-based Q calculation: loops over each region's element count,
   which is control-tainted by size (the Section 5.2 example). *)
let calc_monotonic_q_region_for_elems =
  B.define "calc_monotonic_q_region_for_elems" ~params:[ "dom"; "nreg" ]
    (fun b ->
      let regsize = get (Reg "dom") d_regsize b in
      B.for_ b "r" ~from:(Int 0) ~below:(Reg "nreg") (fun r ->
          let relems = B.load b regsize r in
          B.for_ b "j" ~from:(Int 0) ~below:relems (fun j ->
              ignore (B.call b "q_limiter" [ j ]);
              B.work b (Int 3)));
      B.ret_unit b)

(* CalcQForElems — the B2 example.  It mixes a per-element pass with the
   monotonic-Q halo exchange, so its true model multiplies a communication
   surface factor with the element volume: c * p^0.25 * size^3. *)
let calc_q_for_elems =
  B.define "calc_q_for_elems" ~params:[ "dom"; "numelem"; "nreg"; "facesize" ]
    (fun b ->
      B.call_unit b "calc_monotonic_q_gradients_for_elems"
        [ Reg "dom"; Reg "numelem" ];
      B.for_ b "n" ~from:(Int 0) ~below:(Int 6) (fun _ ->
          Dsl.irecv b (Reg "facesize");
          Dsl.isend b (Reg "facesize"));
      B.for_ b "n" ~from:(Int 0) ~below:(Int 12) (fun _ -> Dsl.wait b);
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "q_limiter" [ i ]);
          B.work b (Int 2));
      B.call_unit b "calc_monotonic_q_region_for_elems" [ Reg "dom"; Reg "nreg" ];
      B.ret_unit b)

let calc_pressure_for_elems =
  B.define "calc_pressure_for_elems" ~params:[ "relems" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "relems") (fun i ->
          ignore (B.call b "pressure_eos_leaf" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let calc_pbvc_for_elems =
  B.define "calc_pbvc_for_elems" ~params:[ "relems" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "relems") (fun i ->
          ignore (B.call b "vdov_term" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

let calc_work_for_elems =
  B.define "calc_work_for_elems" ~params:[ "relems" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "relems") (fun i ->
          ignore (B.call b "elem_delta_v" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

let calc_energy_for_elems =
  B.define "calc_energy_for_elems" ~params:[ "relems" ] (fun b ->
      B.call_unit b "calc_pbvc_for_elems" [ Reg "relems" ];
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "relems") (fun i ->
          ignore (B.call b "energy_eos_leaf" [ i ]);
          B.work b (Int 3));
      B.call_unit b "calc_pressure_for_elems" [ Reg "relems" ];
      B.call_unit b "calc_work_for_elems" [ Reg "relems" ];
      B.ret_unit b)

let calc_sound_speed_for_elems =
  B.define "calc_sound_speed_for_elems" ~params:[ "relems" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "relems") (fun i ->
          ignore (B.call b "sound_speed_leaf" [ i ]);
          ignore (B.call b "sqrt_newton" [ i ]);
          B.work b (Int 2));
      B.ret_unit b)

(* EOS evaluation: per region, repeated rep(r) times where rep is a pure
   function of cost and balance — the loops here depend on {size (via the
   region size), regions, cost, balance}. *)
let eval_eos_for_elems =
  B.define "eval_eos_for_elems" ~params:[ "relems"; "reps" ] (fun b ->
      B.for_ b "rep" ~from:(Int 0) ~below:(Reg "reps") (fun _ ->
          B.call_unit b "calc_energy_for_elems" [ Reg "relems" ]);
      B.call_unit b "calc_sound_speed_for_elems" [ Reg "relems" ];
      B.ret_unit b)

let apply_material_properties_for_elems =
  B.define "apply_material_properties_for_elems"
    ~params:[ "dom"; "nreg"; "balance"; "cost" ] (fun b ->
      let regsize = get (Reg "dom") d_regsize b in
      B.for_ b "r" ~from:(Int 0) ~below:(Reg "nreg") (fun r ->
          let relems = B.load b regsize r in
          let reps =
            B.call b "region_rep_count" [ r; Reg "balance"; Reg "cost" ]
          in
          B.call_unit b "eval_eos_for_elems" [ relems; reps ]);
      B.ret_unit b)

let update_volumes_for_elems =
  B.define "update_volumes_for_elems" ~params:[ "dom"; "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "voln_ratio" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

let lagrange_elements =
  B.define "lagrange_elements"
    ~params:[ "dom"; "numelem"; "nreg"; "balance"; "cost"; "facesize" ]
    (fun b ->
      B.call_unit b "calc_lagrange_elements" [ Reg "dom"; Reg "numelem" ];
      B.call_unit b "calc_q_for_elems"
        [ Reg "dom"; Reg "numelem"; Reg "nreg"; Reg "facesize" ];
      B.call_unit b "apply_material_properties_for_elems"
        [ Reg "dom"; Reg "nreg"; Reg "balance"; Reg "cost" ];
      B.call_unit b "update_volumes_for_elems" [ Reg "dom"; Reg "numelem" ];
      B.ret_unit b)

let calc_courant_constraint =
  B.define "calc_courant_constraint" ~params:[ "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "min3" [ i ]);
          B.work b (Int 1));
      B.ret b (Int 1))

let calc_hydro_constraint =
  B.define "calc_hydro_constraint" ~params:[ "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "vdov_term" [ i ]);
          B.work b (Int 1));
      B.ret b (Int 1))

let time_increment =
  B.define "time_increment" ~params:[ "dom" ] (fun b ->
      ignore (B.call b "time_step_scale" [ Int 0 ]);
      ignore (B.call b "comm_reduce_dt" [ Int 1 ]);
      B.ret_unit b)

let calc_time_constraints =
  B.define "calc_time_constraints" ~params:[ "dom"; "numelem" ] (fun b ->
      let dtc = B.call b "calc_courant_constraint" [ Reg "numelem" ] in
      let dth = B.call b "calc_hydro_constraint" [ Reg "numelem" ] in
      let dt = B.imin b dtc dth in
      ignore (B.call b "comm_reduce_dt" [ dt ]);
      B.ret_unit b)

let lagrange_leap_frog =
  B.define "lagrange_leap_frog"
    ~params:
      [ "dom"; "numelem"; "numnode"; "nreg"; "balance"; "cost"; "facesize" ]
    (fun b ->
      B.call_unit b "lagrange_nodal"
        [ Reg "dom"; Reg "numelem"; Reg "numnode"; Reg "facesize" ];
      B.call_unit b "lagrange_elements"
        [ Reg "dom"; Reg "numelem"; Reg "nreg"; Reg "balance"; Reg "cost";
          Reg "facesize" ];
      B.call_unit b "calc_time_constraints" [ Reg "dom"; Reg "numelem" ];
      B.ret_unit b)

(* -- setup ---------------------------------------------------------------- *)

let init_mesh_coords =
  B.define "init_mesh_coords" ~params:[ "dom"; "numnode" ] (fun b ->
      let x = get (Reg "dom") d_x b in
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numnode") (fun i ->
          let idx = B.rem b i (Int 64) in
          B.store b x idx i);
      B.ret_unit b)

let init_elem_connectivity =
  B.define "init_elem_connectivity" ~params:[ "dom"; "numelem" ] (fun b ->
      let nodelist = get (Reg "dom") d_nodelist b in
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "init_single_elem" [ i ]);
          let idx = B.rem b i (Int 64) in
          B.store b nodelist idx i);
      B.ret_unit b)

(* The paper's control-dependence poster child: region sizes are counted
   by iterating over elements, so their values are only control-dependent
   on size. *)
let build_region_index_sets =
  B.define "build_region_index_sets" ~params:[ "dom"; "numelem"; "nreg" ]
    (fun b ->
      let regnum = get (Reg "dom") d_regnum b in
      let regsize = get (Reg "dom") d_regsize b in
      B.for_ b "r" ~from:(Int 0) ~below:(Reg "nreg") (fun r ->
          B.store b regsize r (Int 0));
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          let idx = B.rem b i (Int 64) in
          let rn = B.load b regnum idx in
          let r = B.rem b (B.add b rn i) (Reg "nreg") in
          let cur = B.load b regsize r in
          B.store b regsize r (B.add b cur (Int 1)));
      B.ret_unit b)

(* Mesh construction wrapper and boundary setup, as in LULESH 2.0's
   Domain constructor. *)
let setup_symmetry_planes =
  B.define "setup_symmetry_planes" ~params:[ "facesize" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "facesize") (fun i ->
          ignore (B.call b "boundary_flag" [ i ]));
      B.ret_unit b)

let setup_boundary_conditions =
  B.define "setup_boundary_conditions" ~params:[ "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "face_index" [ i ]);
          B.work b (Int 1));
      B.ret_unit b)

let build_mesh =
  B.define "build_mesh" ~params:[ "dom"; "numelem"; "numnode"; "facesize" ]
    (fun b ->
      B.call_unit b "init_mesh_coords" [ Reg "dom"; Reg "numnode" ];
      B.call_unit b "init_elem_connectivity" [ Reg "dom"; Reg "numelem" ];
      B.call_unit b "setup_symmetry_planes" [ Reg "facesize" ];
      B.call_unit b "setup_boundary_conditions" [ Reg "numelem" ];
      B.ret_unit b)

(* Volume derivatives for the hourglass force, per element. *)
let calc_elem_volume_derivative =
  B.define "calc_elem_volume_derivative" ~params:[ "dom"; "numelem" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "numelem") (fun i ->
          ignore (B.call b "calc_elem_volume" [ i ]);
          ignore (B.call b "cross_x" [ i ]);
          B.work b (Int 3));
      B.ret_unit b)

let setup_comm_buffers =
  B.define "setup_comm_buffers" ~params:[ "facesize" ] (fun b ->
      B.for_ b "n" ~from:(Int 0) ~below:(Int 6) (fun _ -> B.work b (Int 2));
      B.ret b (Reg "facesize"))

let main =
  B.define "main"
    ~params:[ "size"; "iters"; "regions"; "balance"; "cost" ] (fun b ->
      (* register_variable(...) for every command-line parameter. *)
      let size = Dsl.register b "size" (Reg "size") in
      let iters = Dsl.register b "iters" (Reg "iters") in
      let regions = Dsl.register b "regions" (Reg "regions") in
      let balance = Dsl.register b "balance" (Reg "balance") in
      let cost = Dsl.register b "cost" (Reg "cost") in
      let _p = Dsl.comm_size b in
      let _rank = Dsl.comm_rank b in
      let numelem = B.mul b size (B.mul b size size) in
      let size1 = B.add b size (Int 1) in
      let numnode = B.mul b size1 (B.mul b size1 size1) in
      let facesize = B.mul b size1 size1 in
      (* Domain: one 64-cell backing array per field (the taint analysis
         cares about the handles and the region-size cells only). *)
      B.set b "dom" (B.alloc b (Int d_slots));
      List.iter
        (fun slot -> B.store b (Reg "dom") (Int slot) (B.alloc b (Int 64)))
        [ d_x; d_xd; d_xdd; d_force; d_energy; d_pressure; d_q; d_vol; d_volo;
          d_delv; d_arealg; d_ss; d_nodelist; d_regnum ];
      B.store b (Reg "dom") (Int d_regsize) (B.alloc b regions);
      B.store b (Reg "dom") (Int d_dtcourant) (B.alloc b (Int 4));
      B.call_unit b "build_mesh" [ Reg "dom"; numelem; numnode; facesize ];
      B.call_unit b "build_region_index_sets" [ Reg "dom"; numelem; regions ];
      let fs = B.call b "setup_comm_buffers" [ facesize ] in
      B.for_ b "it" ~from:(Int 0) ~below:iters (fun _ ->
          B.call_unit b "time_increment" [ Reg "dom" ];
          B.call_unit b "lagrange_leap_frog"
            [ Reg "dom"; numelem; numnode; regions; balance; cost; fs ]);
      B.ret_unit b)

let kernels =
  [
    main;
    lagrange_leap_frog;
    lagrange_nodal;
    lagrange_elements;
    calc_force_for_nodes;
    calc_volume_force_for_elems;
    init_stress_terms_for_elems;
    collect_domain_nodes_to_elem_nodes;
    integrate_stress_for_elems;
    calc_hourglass_control_for_elems;
    calc_fb_hourglass_force_for_elems;
    calc_accel_for_nodes;
    apply_accel_bc_for_nodes;
    calc_vel_for_nodes;
    calc_pos_for_nodes;
    calc_lagrange_elements;
    calc_kinematics_for_elems;
    calc_monotonic_q_gradients_for_elems;
    calc_monotonic_q_region_for_elems;
    calc_q_for_elems;
    apply_material_properties_for_elems;
    eval_eos_for_elems;
    calc_energy_for_elems;
    calc_pbvc_for_elems;
    calc_work_for_elems;
    calc_pressure_for_elems;
    calc_sound_speed_for_elems;
    update_volumes_for_elems;
    calc_courant_constraint;
    calc_hydro_constraint;
    calc_time_constraints;
    time_increment;
    build_region_index_sets;
    build_mesh;
    setup_symmetry_planes;
    setup_boundary_conditions;
    calc_elem_volume_derivative;
    init_mesh_coords;
    init_elem_connectivity;
    setup_comm_buffers;
  ]

let comm_routines = [ comm_halo_nodes; comm_reduce_dt ]

let program =
  B.program "lulesh" ~entry:"main" (kernels @ comm_routines @ more_helpers @ helpers)

(** Default arguments of the tainted run: the paper uses size 5 on 8 MPI
    ranks, other parameters at their defaults. *)
let taint_args =
  [ VInt 5 (* size *); VInt 3 (* iters *); VInt 4 (* regions *);
    VInt 2 (* balance *); VInt 1 (* cost *) ]

let taint_world = { Mpi_sim.Runtime.ranks = 8; rank = 0 }

(** The two model parameters of the paper's LULESH study. *)
let model_params = [ "p"; "size" ]

let all_params = [ "p"; "size"; "iters"; "regions"; "balance"; "cost" ]
