lib/apps/lulesh.ml: Dsl Ir List Mpi_sim
