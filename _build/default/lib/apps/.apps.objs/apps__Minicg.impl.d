lib/apps/minicg.ml: Dsl Ir Mpi_sim
