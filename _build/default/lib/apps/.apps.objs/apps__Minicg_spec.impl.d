lib/apps/minicg_spec.ml: Float List Measure Mpi_sim
