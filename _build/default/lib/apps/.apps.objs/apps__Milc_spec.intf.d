lib/apps/milc_spec.mli: Measure
