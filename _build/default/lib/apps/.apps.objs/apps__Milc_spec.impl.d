lib/apps/milc_spec.ml: Float List Measure Mpi_sim
