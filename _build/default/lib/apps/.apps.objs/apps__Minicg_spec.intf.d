lib/apps/minicg_spec.mli: Measure
