lib/apps/didactic.ml: Dsl Ir
