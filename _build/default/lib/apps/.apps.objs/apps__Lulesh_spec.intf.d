lib/apps/lulesh_spec.mli: Measure
