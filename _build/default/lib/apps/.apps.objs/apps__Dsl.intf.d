lib/apps/dsl.mli: Ir
