lib/apps/dsl.ml: Ir List
