lib/apps/milc.ml: Dsl Ir Mpi_sim
