lib/apps/minicg.mli: Ir Mpi_sim
