lib/apps/lulesh.mli: Ir Mpi_sim
