lib/apps/lulesh_spec.ml: Float List Measure Mpi_sim
