lib/apps/milc.mli: Ir Mpi_sim
