lib/apps/didactic.mli: Ir
