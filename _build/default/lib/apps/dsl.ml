(** Shared construction helpers for the mini applications.

    The mini apps are PIR programs built with [Ir.Builder]; this module
    adds the recurring idioms: registering a performance parameter (the
    paper's [register_variable] one-liner), MPI calls, and the common
    kernel shapes (a loop over elements calling helpers and consuming
    synthetic work). *)

open Ir.Types
module B = Ir.Builder

(** [register b "size" (Reg "size")] marks a parameter exactly like the
    paper's [register_variable(&opts.nx, "size")]: the returned operand
    carries the base taint label. *)
let register b name op = B.prim b ("taint:" ^ name) [ op ]

let comm_size b = B.prim b "mpi_comm_size" []
let comm_rank b = B.prim b "mpi_comm_rank" []

let allreduce b count = B.prim_unit b "mpi_allreduce" [ count ]
let barrier b = B.prim_unit b "mpi_barrier" []
let isend b count = B.prim_unit b "mpi_isend" [ count ]
let irecv b count = B.prim_unit b "mpi_irecv" [ count ]
let wait b = B.prim_unit b "mpi_wait" []
let send b count = B.prim_unit b "mpi_send" [ count ]
let recv b count = B.prim_unit b "mpi_recv" [ count ]
let bcast b count = B.prim_unit b "mpi_bcast" [ count ]
let allgather b count = B.prim_unit b "mpi_allgather" [ count ]

(** A leaf function performing only constant work: the tiny C++ accessor /
    helper functions that dominate LULESH's function count and that the
    static phase must prune. *)
let leaf_helper ?(units = 2) name =
  B.define name ~params:[ "x" ] (fun b ->
      B.work b (Int units);
      B.ret b (Reg "x"))

(** A helper with a constant-trip-count loop (e.g. iterating over the 8
    corners of a hexahedral element): still statically prunable thanks to
    the trip-count analysis. *)
let const_loop_helper ?(trip = 8) ?(units = 1) name =
  B.define name ~params:[ "x" ] (fun b ->
      B.for_ b "c" ~from:(Int 0) ~below:(Int trip) (fun _ ->
          B.work b (Int units));
      B.ret b (Reg "x"))

(** An element kernel: [for i < n { helpers; work }].  [callees] are
    invoked once per element with the index. *)
let elem_kernel ?(units = 4) ?(callees = []) name =
  B.define name ~params:[ "n" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun i ->
          List.iter (fun callee -> ignore (B.call b callee [ i ])) callees;
          B.work b (Int units));
      B.ret_unit b)

(** Names of every function defined by a list of [func]s. *)
let names funcs = List.map (fun f -> f.fname) funcs
