(** Ground-truth performance specification of mini-LULESH for the cluster
    simulator (the synthetic testbed standing in for Piz Daint / the
    Skylake cluster).

    Times are per rank.  [size] is the per-domain edge (weak scaling, as
    in the paper), [p] the rank count; e = size^3 elements and
    n = (size+1)^3 nodes per rank.  Calibration targets the paper's
    magnitudes: the hot kernels cost O(100ns) per element per timestep;
    the C++ helper functions are a few nanoseconds each but are called
    tens of times per element per timestep, so full instrumentation
    multiplies the run time by one to two orders of magnitude (Figure 3),
    while the taint-selected instrumentation is almost free. *)

module Spec = Measure.Spec
module Machine = Mpi_sim.Machine

let defaults =
  [ ("p", 8.); ("size", 30.); ("iters", 2000.); ("regions", 11.);
    ("balance", 2.); ("cost", 1.); ("r", 0.) ]

let g ps name =
  match List.assoc_opt name ps with
  | Some v -> v
  | None -> List.assoc name defaults

let elems ps = g ps "size" ** 3.
let nodes ps = (g ps "size" +. 1.) ** 3.
let face ps = (g ps "size" +. 1.) ** 2.
let iters ps = g ps "iters"
let log2 x = Float.log x /. Float.log 2.

(* Average EOS repetition count over regions: region r repeats
   1 + (r mod balance) * cost times. *)
let rep_avg ps =
  let balance = Float.max 1. (g ps "balance") and cost = g ps "cost" in
  1. +. (cost *. (balance -. 1.) /. 2.)

let const_time c = fun _ _ -> c
let no_extra _ _ = 0.

(* One invocation per timestep; per-invocation time c seconds per element. *)
let elem_kernel ?(memory_bound = 0.6) ?(tiny = false)
    ?(full_instr_extra = no_extra) name c deps =
  Spec.kernel ~kind:Spec.Compute ~memory_bound ~tiny ~full_instr_extra
    ~calls:iters
    ~base_time:(fun ps _ -> c *. elems ps *. iters ps)
    ~truth_deps:deps name

let node_kernel ?(memory_bound = 0.85) name c =
  Spec.kernel ~kind:Spec.Compute ~memory_bound
    ~calls:iters
    ~base_time:(fun ps _ -> c *. nodes ps *. iters ps)
    ~truth_deps:[ "size" ] name

(* Dispatcher functions: constant per-invocation cost. *)
let dispatcher name c =
  Spec.kernel ~kind:Spec.Helper ~calls:iters ~base_time:(fun ps _ -> c *. iters ps)
    ~truth_deps:[] name

(* Tiny C++ helper called [rate] times per element (or node) per step. *)
let helper ?(per = `Elem) ?(unit_time = 1.0e-8) name rate =
  let volume ps = match per with `Elem -> elems ps | `Node -> nodes ps in
  Spec.kernel ~kind:Spec.Helper ~tiny:true
    ~calls:(fun ps -> rate *. volume ps *. iters ps)
    ~base_time:(fun ps _ -> unit_time *. rate *. volume ps *. iters ps)
    ~truth_deps:[] name

let kernels =
  [
    (* -- hot element kernels --------------------------------------------- *)
    elem_kernel "integrate_stress_for_elems" 2.2e-7 [ "size" ];
    elem_kernel ~memory_bound:0.7 "calc_fb_hourglass_force_for_elems" 1.8e-7
      [ "size" ];
    elem_kernel "calc_hourglass_control_for_elems" 1.5e-7 [ "size" ];
    elem_kernel ~memory_bound:0.5 "calc_volume_force_for_elems" 1.2e-7
      [ "size" ];
    elem_kernel ~memory_bound:0.9 ~tiny:true "init_stress_terms_for_elems"
      2.0e-8 [ "size" ];
    elem_kernel ~memory_bound:0.8 "collect_domain_nodes_to_elem_nodes" 4.0e-8
      [ "size" ];
    elem_kernel ~memory_bound:0.5 "calc_kinematics_for_elems" 1.6e-7 [ "size" ];
    elem_kernel ~memory_bound:0.7 "calc_monotonic_q_gradients_for_elems" 1.1e-7
      [ "size" ];
    elem_kernel "calc_monotonic_q_region_for_elems" 6.0e-8 [ "size" ];
    elem_kernel ~memory_bound:0.9 "update_volumes_for_elems" 3.0e-8 [ "size" ];
    elem_kernel ~memory_bound:0.8 "calc_courant_constraint" 2.5e-8 [ "size" ];
    elem_kernel ~memory_bound:0.8 "calc_hydro_constraint" 2.5e-8 [ "size" ];
    elem_kernel ~memory_bound:0.5 "calc_lagrange_elements" 3.0e-8 [ "size" ];
    (* CalcQForElems (B2): true model 2.4e-8 * p^0.25 * size^3 per call;
       under full instrumentation the measurement is polluted by an
       additive 3e-3 * p^0.5 + 1e-5 * size^3 term (hooks in its tiny
       callees and amplified communication imbalance). *)
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.5
      ~calls:iters
      ~base_time:(fun ps _ ->
        2.4e-8 *. (g ps "p" ** 0.25) *. elems ps *. iters ps)
      ~full_instr_extra:(fun ps _ ->
        (3.0e-3 *. sqrt (g ps "p")) +. (1.0e-5 *. elems ps))
      ~truth_deps:[ "p"; "size" ] "calc_q_for_elems";
    (* -- EOS region kernels ---------------------------------------------- *)
    (* calc_energy/pressure run once per region per repetition. *)
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.4 ~tiny:true
      ~calls:(fun ps -> iters ps *. g ps "regions" *. rep_avg ps)
      ~base_time:(fun ps _ -> 9.0e-8 *. elems ps *. rep_avg ps *. iters ps)
      ~truth_deps:[ "size"; "cost"; "balance" ] "calc_energy_for_elems";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.4 ~tiny:true
      ~calls:(fun ps -> iters ps *. g ps "regions" *. rep_avg ps)
      ~base_time:(fun ps _ -> 5.0e-8 *. elems ps *. rep_avg ps *. iters ps)
      ~truth_deps:[ "size"; "cost"; "balance" ] "calc_pressure_for_elems";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.4 ~tiny:true
      ~calls:(fun ps -> iters ps *. g ps "regions")
      ~base_time:(fun ps _ -> 4.0e-8 *. elems ps *. iters ps)
      ~truth_deps:[ "size" ] "calc_sound_speed_for_elems";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.4 ~tiny:true
      ~calls:(fun ps -> iters ps *. g ps "regions" *. rep_avg ps)
      ~base_time:(fun ps _ -> 2.0e-8 *. elems ps *. rep_avg ps *. iters ps)
      ~truth_deps:[ "size"; "cost"; "balance" ] "calc_pbvc_for_elems";
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.4 ~tiny:true
      ~calls:(fun ps -> iters ps *. g ps "regions" *. rep_avg ps)
      ~base_time:(fun ps _ -> 3.0e-8 *. elems ps *. rep_avg ps *. iters ps)
      ~truth_deps:[ "size"; "cost"; "balance" ] "calc_work_for_elems";
    (* eval_eos's exclusive time is just its repetition loop. *)
    Spec.kernel ~kind:Spec.Compute
      ~calls:(fun ps -> iters ps *. g ps "regions")
      ~base_time:(fun ps _ ->
        5.0e-8 *. rep_avg ps *. g ps "regions" *. iters ps)
      ~truth_deps:[ "cost"; "balance" ] "eval_eos_for_elems";
    Spec.kernel ~kind:Spec.Compute ~calls:iters
      ~base_time:(fun ps _ -> 2.0e-7 *. g ps "regions" *. iters ps)
      ~truth_deps:[ "regions" ] "apply_material_properties_for_elems";
    (* -- node kernels ----------------------------------------------------- *)
    node_kernel ~memory_bound:0.8 "calc_force_for_nodes" 4.0e-8;
    node_kernel "calc_accel_for_nodes" 2.0e-8;
    node_kernel "calc_vel_for_nodes" 2.0e-8;
    node_kernel "calc_pos_for_nodes" 2.0e-8;
    Spec.kernel ~kind:Spec.Compute ~memory_bound:0.7 ~tiny:true ~calls:iters
      ~base_time:(fun ps _ -> 1.0e-8 *. face ps *. iters ps)
      ~truth_deps:[ "size" ] "apply_accel_bc_for_nodes";
    (* -- dispatchers ------------------------------------------------------ *)
    dispatcher "lagrange_leap_frog" 2.0e-7;
    dispatcher "lagrange_nodal" 2.0e-7;
    dispatcher "lagrange_elements" 2.0e-7;
    dispatcher "calc_time_constraints" 5.0e-7;
    dispatcher "time_increment" 4.0e-7;
    (* -- communication ---------------------------------------------------- *)
    Spec.kernel ~kind:Spec.Communication ~calls:iters
      ~base_time:(fun ps m ->
        let msg = face ps *. 8. in
        iters ps
        *. ((12. *. (m.Machine.net_latency_s +. (msg *. m.Machine.net_byte_time)))
            +. (2.0e-6 *. log2 (Float.max 2. (g ps "p")))))
      ~truth_deps:[ "p"; "size" ] "comm_halo_nodes";
    Spec.kernel ~kind:Spec.Communication ~calls:iters
      ~base_time:(fun ps m ->
        iters ps
        *. ((2. *. m.Machine.net_latency_s *. log2 (Float.max 2. (g ps "p")))
            +. (5.0e-7 *. sqrt (g ps "p"))))
      ~truth_deps:[ "p" ] "comm_reduce_dt";
    (* -- setup (one invocation per run) ----------------------------------- *)
    elem_kernel ~memory_bound:0.5 "calc_elem_volume_derivative" 7.0e-8
      [ "size" ];
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(const_time 2.0e-6) ~truth_deps:[] "build_mesh";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 1.0e-8 *. face ps)
      ~truth_deps:[ "size" ] "setup_symmetry_planes";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 1.0e-8 *. elems ps)
      ~truth_deps:[ "size" ] "setup_boundary_conditions";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 3.0e-8 *. nodes ps)
      ~truth_deps:[ "size" ] "init_mesh_coords";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 4.0e-8 *. elems ps)
      ~truth_deps:[ "size" ] "init_elem_connectivity";
    Spec.kernel ~kind:Spec.Compute ~calls:(fun _ -> 1.)
      ~base_time:(fun ps _ -> 2.0e-8 *. elems ps)
      ~truth_deps:[ "size" ] "build_region_index_sets";
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(const_time 1.0e-6) ~truth_deps:[] "setup_comm_buffers";
    Spec.kernel ~kind:Spec.Helper ~calls:(fun _ -> 1.)
      ~base_time:(const_time 1.0e-5) ~truth_deps:[] "main";
    (* -- MPI routines (instrumented as functions by Score-P) -------------- *)
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 12. *. iters ps)
      ~base_time:(fun ps m ->
        12. *. iters ps
        *. (m.Machine.net_latency_s +. (face ps *. 8. *. m.Machine.net_byte_time)))
      ~truth_deps:[ "size" ] "mpi_isend";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 12. *. iters ps)
      ~base_time:(fun ps m -> 12. *. iters ps *. m.Machine.net_latency_s)
      ~truth_deps:[] "mpi_irecv";
    Spec.kernel ~kind:Spec.Mpi
      ~calls:(fun ps -> 24. *. iters ps)
      ~base_time:(fun ps m -> 24. *. iters ps *. m.Machine.net_latency_s)
      ~truth_deps:[] "mpi_wait";
    Spec.kernel ~kind:Spec.Mpi ~calls:iters
      ~base_time:(fun ps m ->
        iters ps *. 2. *. m.Machine.net_latency_s
        *. log2 (Float.max 2. (g ps "p")))
      ~truth_deps:[ "p" ] "mpi_allreduce";
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 1.)
      ~base_time:(const_time 1.0e-8) ~truth_deps:[] "mpi_comm_size";
    (* Four call sites in the paper's MILC study were MPI_Comm_rank: a
       short constant function that noise renders hard to model. *)
    Spec.kernel ~kind:Spec.Mpi ~calls:(fun _ -> 1.)
      ~base_time:(const_time 1.0e-8) ~truth_deps:[] "mpi_comm_rank";
    (* -- tiny C++ helpers: the instrumentation-overhead culprits ---------- *)
    helper "triple_product" 24.;
    helper "area_face" 12.;
    helper "dot8" 1.;
    helper "gather_elem_nodes" 1.;
    helper "scatter_elem_force" 2.;
    helper "calc_elem_shape_derivs" 1.;
    helper "calc_elem_velocity_gradient" 1.;
    helper "hourglass_mode_sums" 1.;
    helper "calc_elem_volume" 3.;
    helper "sum_elem_face_normal" 6.;
    helper "calc_elem_node_normals" 1.;
    helper "calc_elem_char_length" 1.;
    helper ~per:`Node "node_mass" 1.;
    helper ~per:`Node "clamp_value" 1.;
    helper "vdov_term" 2.;
    helper "q_limiter" 2.;
    helper "pressure_eos_leaf" 1.5;
    helper "energy_eos_leaf" 1.5;
    helper "sound_speed_leaf" 1.;
    helper "sqrt_newton" 2.;
    helper "cbrt_newton" 1.;
    helper "min3" 1.;
    helper "max3" 1.;
    helper "voln_ratio" 1.;
    helper "elem_delta_v" 1.;
    helper "elem_area_ratio" 1.;
    helper "copy_block" 1.;
    helper "init_stress_terms" 1.;
    helper "elem_mass" 1.;
    helper "boundary_flag" 0.5;
    helper "sign_of" 0.5;
    helper "material_index" 0.5;
    helper "time_step_scale" 0.1;
    helper ~unit_time:5.0e-9 "region_rep_count" 0.01;
    helper ~unit_time:5.0e-9 "init_single_elem" 0.01;
  ]

let app =
  { Spec.aname = "lulesh"; kernels; model_params = [ "p"; "size" ] }

(** The paper's experiment grid: 5 values per parameter, 25 points. *)
let p_values = [ 8.; 27.; 64.; 216.; 729. ]
let size_values = [ 25.; 30.; 35.; 40.; 45. ]
