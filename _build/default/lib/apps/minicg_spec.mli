(** Ground-truth performance specification of miniCG (strong scaling:
    local rows n/p). *)

val defaults : (string * float) list
val rows : Measure.Spec.params -> float
val app : Measure.Spec.app
val p_values : float list
val n_values : float list
