(** Small dense linear algebra for PMNF coefficient fitting. *)

val solve : float array array -> float array -> float array option
(** Gaussian elimination with partial pivoting; [None] when singular. *)

val least_squares : float array array -> float array -> float array option
(** Ordinary least squares via normal equations: coefficients minimising
    ||design * c - y||^2; [None] for under-determined or singular
    systems. *)

val residual_sum_of_squares :
  float array array -> float array -> float array -> float
