(** Performance-model expressions in Extra-P's performance model normal
    form (PMNF, paper Equation 1):

      f(x_1..x_m) = c_0 + sum_k c_k * prod_l x_l^{i_kl} * log2^{j_kl}(x_l)

    A [simple_term] is one x^i * log2(x)^j factor; a [compound_term] is a
    product of simple terms over distinct parameters with a coefficient. *)

type simple_term = {
  expo : float;    (** polynomial exponent i, a small rational *)
  logexp : int;    (** logarithm exponent j *)
}

type compound_term = {
  coeff : float;
  factors : (string * simple_term) list;  (** parameter name -> factor *)
}

type model = {
  const : float;
  terms : compound_term list;
}

let constant c = { const = c; terms = [] }

let is_constant m = m.terms = []

(* log2 clamped away from 0 so that parameter value 1 doesn't zero out an
   otherwise-informative term row during regression. *)
let log2 x = Float.log x /. Float.log 2.

let eval_simple t x =
  let p = if t.expo = 0. then 1. else Float.pow x t.expo in
  let l = if t.logexp = 0 then 1. else Float.pow (log2 x) (float_of_int t.logexp) in
  p *. l

let eval_factors factors bindings =
  List.fold_left
    (fun acc (param, st) ->
      match List.assoc_opt param bindings with
      | Some x -> acc *. eval_simple st x
      | None -> invalid_arg ("Expr.eval: missing parameter " ^ param))
    1. factors

let eval m bindings =
  List.fold_left
    (fun acc t -> acc +. (t.coeff *. eval_factors t.factors bindings))
    m.const m.terms

(** Parameters appearing in the model with a non-degenerate factor. *)
let parameters m =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun (p, st) ->
          if st.expo = 0. && st.logexp = 0 then None else Some p)
        t.factors)
    m.terms
  |> List.sort_uniq compare

(** True when some term multiplies factors of [p1] and [p2] together. *)
let has_interaction m p1 p2 =
  List.exists
    (fun t ->
      let non_trivial p =
        match List.assoc_opt p t.factors with
        | Some st -> not (st.expo = 0. && st.logexp = 0)
        | None -> false
      in
      non_trivial p1 && non_trivial p2)
    m.terms

let pp_simple param ppf t =
  match (t.expo, t.logexp) with
  | 0., 0 -> Fmt.string ppf "1"
  | e, 0 -> if e = 1. then Fmt.string ppf param else Fmt.pf ppf "%s^%g" param e
  | 0., j -> Fmt.pf ppf "log2(%s)%s" param (if j = 1 then "" else Fmt.str "^%d" j)
  | e, j ->
    Fmt.pf ppf "%s^%g*log2(%s)%s" param e param
      (if j = 1 then "" else Fmt.str "^%d" j)

let pp_compound ppf t =
  let non_trivial =
    List.filter (fun (_, st) -> not (st.expo = 0. && st.logexp = 0)) t.factors
  in
  match non_trivial with
  | [] -> Fmt.pf ppf "%.3g" t.coeff
  | fs ->
    Fmt.pf ppf "%.3g * %a" t.coeff
      Fmt.(list ~sep:(any " * ") (fun ppf (p, st) -> pp_simple p ppf st))
      fs

let pp ppf m =
  if m.terms = [] then Fmt.pf ppf "%.4g" m.const
  else
    Fmt.pf ppf "%.4g + %a" m.const Fmt.(list ~sep:(any " + ") pp_compound) m.terms

let to_string m = Fmt.str "%a" pp m

(** Structural equality of the model's shape (parameters and exponents),
    ignoring coefficient values: used to compare a discovered model with a
    ground-truth form. *)
let same_shape a b =
  let shape m =
    List.map
      (fun t ->
        List.filter (fun (_, st) -> not (st.expo = 0. && st.logexp = 0)) t.factors
        |> List.sort compare)
      m.terms
    |> List.sort compare
  in
  shape a = shape b
