(** Performance-model expressions in Extra-P's performance model normal
    form (PMNF, paper Equation 1):

    {math f(x_1..x_m) = c_0 + \sum_k c_k \prod_l x_l^{i_kl} log2^{j_kl}(x_l)} *)

type simple_term = {
  expo : float;  (** polynomial exponent i (a small rational) *)
  logexp : int;  (** logarithm exponent j *)
}

type compound_term = {
  coeff : float;
  factors : (string * simple_term) list;  (** parameter -> factor *)
}

type model = {
  const : float;              (** the intercept c_0 *)
  terms : compound_term list;
}

val constant : float -> model
val is_constant : model -> bool

val log2 : float -> float

val eval_simple : simple_term -> float -> float
(** Value of one x^i * log2(x)^j factor at x. *)

val eval_factors : (string * simple_term) list -> (string * float) list -> float
(** Product of a term's factors at a parameter binding.
    @raise Invalid_argument when a parameter is unbound. *)

val eval : model -> (string * float) list -> float

val parameters : model -> string list
(** Parameters with a non-degenerate factor, sorted. *)

val has_interaction : model -> string -> string -> bool
(** Does some term multiply non-trivial factors of both parameters? *)

val pp : model Fmt.t
val to_string : model -> string

val same_shape : model -> model -> bool
(** Structural equality ignoring coefficient values — used to compare a
    discovered model against a ground-truth form. *)
