lib/model/search.ml: Array Dataset Expr Float Linalg List Option
