lib/model/expr.ml: Float Fmt List
