lib/model/dataset.ml: Float List
