lib/model/search.mli: Dataset Expr
