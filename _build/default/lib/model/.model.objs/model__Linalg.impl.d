lib/model/linalg.ml: Array Float
