lib/model/stats.mli: Dataset Expr Fmt
