lib/model/expr.mli: Fmt
