lib/model/dataset.mli:
