lib/model/linalg.mli:
