lib/model/stats.ml: Array Dataset Expr Float Fmt List Random
