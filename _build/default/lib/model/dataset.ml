(** Measurement datasets for empirical modeling: a set of parameter-space
    coordinates, each with repeated measurements of the target metric. *)

type point = {
  coords : (string * float) list;  (** parameter name -> value *)
  reps : float list;               (** repeated measurements *)
}

type t = {
  params : string list;
  points : point list;
}

let create params points = { params; points }

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

(** Coefficient of variation of one point's repetitions. *)
let cov point =
  let m = mean point.reps in
  if m = 0. then 0. else stddev point.reps /. Float.abs m

(** Maximum coefficient of variation across points — the paper filters out
    functions whose data has CoV > 0.1 as too noisy to model (B1). *)
let max_cov t = List.fold_left (fun acc p -> Float.max acc (cov p)) 0. t.points

let point_mean p = mean p.reps

let coord p param =
  match List.assoc_opt param p.coords with
  | Some v -> v
  | None -> invalid_arg ("Dataset.coord: missing parameter " ^ param)

(** Restrict to points where every parameter in [fixed] has the given
    value, projecting measurements onto the remaining free parameter(s). *)
let slice t ~fixed =
  let keep p =
    List.for_all (fun (param, v) -> Float.abs (coord p param -. v) < 1e-9) fixed
  in
  {
    params = List.filter (fun q -> not (List.mem_assoc q fixed)) t.params;
    points = List.filter keep t.points;
  }

(** Distinct sorted values taken by [param] in the dataset. *)
let values t param =
  List.map (fun p -> coord p param) t.points |> List.sort_uniq compare

(** Minimum value of [param]. *)
let min_value t param =
  match values t param with
  | [] -> invalid_arg "Dataset.min_value: empty dataset"
  | v :: _ -> v

(** Symmetric mean absolute percentage error between predictions and
    observed means, in percent (Extra-P's model-selection metric). *)
let smape pairs =
  match pairs with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left
        (fun acc (pred, obs) ->
          let denom = (Float.abs pred +. Float.abs obs) /. 2. in
          if denom = 0. then acc else acc +. (Float.abs (pred -. obs) /. denom))
        0. pairs
    in
    100. *. total /. float_of_int (List.length pairs)

(** Build a dataset from [(coords, reps)] rows. *)
let of_rows params rows =
  { params; points = List.map (fun (coords, reps) -> { coords; reps }) rows }
