(** Small dense linear algebra: ordinary least squares via normal
    equations with Gaussian elimination and partial pivoting.  The PMNF
    hypothesis spaces are tiny (at most ~5 columns), so numerical
    sophistication beyond pivoting is unnecessary. *)

(** Solve [a] x = [b] in place for a square system; returns [None] when the
    matrix is (numerically) singular. *)
let solve a b =
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    (* partial pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in a.(col) <- a.(!piv); a.(!piv) <- tmp;
      let tb = b.(col) in b.(col) <- b.(!piv); b.(!piv) <- tb
    end;
    if Float.abs a.(col).(col) < 1e-12 then ok := false
    else
      for r = col + 1 to n - 1 do
        let f = a.(r).(col) /. a.(col).(col) in
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      done
  done;
  if not !ok then None
  else begin
    let x = Array.make n 0. in
    for r = n - 1 downto 0 do
      let s = ref b.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (a.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. a.(r).(r)
    done;
    if Array.exists (fun v -> Float.is_nan v || Float.abs v = Float.infinity) x
    then None
    else Some x
  end

(** Least squares fit: [design] is rows of basis-function values, [y] the
    observations; returns coefficients minimising ||design * c - y||^2. *)
let least_squares design y =
  let rows = Array.length design in
  if rows = 0 then None
  else
    let cols = Array.length design.(0) in
    if rows < cols then None
    else begin
      (* Normal equations: (X^T X) c = X^T y. *)
      let xtx = Array.make_matrix cols cols 0. in
      let xty = Array.make cols 0. in
      for r = 0 to rows - 1 do
        for i = 0 to cols - 1 do
          xty.(i) <- xty.(i) +. (design.(r).(i) *. y.(r));
          for j = 0 to cols - 1 do
            xtx.(i).(j) <- xtx.(i).(j) +. (design.(r).(i) *. design.(r).(j))
          done
        done
      done;
      solve xtx xty
    end

let residual_sum_of_squares design y coeffs =
  let rss = ref 0. in
  Array.iteri
    (fun r row ->
      let pred = ref 0. in
      Array.iteri (fun c v -> pred := !pred +. (v *. coeffs.(c))) row;
      let d = y.(r) -. !pred in
      rss := !rss +. (d *. d))
    design;
  !rss
