(** Measurement datasets for empirical modeling: parameter-space points
    with repeated measurements of the target metric. *)

type point = {
  coords : (string * float) list;  (** parameter name -> value *)
  reps : float list;               (** repeated measurements *)
}

type t = {
  params : string list;
  points : point list;
}

val create : string list -> point list -> t
val of_rows : string list -> ((string * float) list * float list) list -> t

val mean : float list -> float
val stddev : float list -> float

val cov : point -> float
(** Coefficient of variation of one point's repetitions. *)

val max_cov : t -> float
(** Worst CoV over all points — the paper's soundness filter is 0.1. *)

val point_mean : point -> float

val coord : point -> string -> float
(** @raise Invalid_argument when the parameter is absent. *)

val slice : t -> fixed:(string * float) list -> t
(** Restrict to points matching [fixed]; those parameters are dropped. *)

val values : t -> string -> float list
(** Distinct sorted values of a parameter. *)

val min_value : t -> string -> float

val smape : (float * float) list -> float
(** Symmetric mean absolute percentage error of (prediction, observation)
    pairs, in percent. *)
