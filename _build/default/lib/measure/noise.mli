(** Deterministic measurement noise: multiplicative Gaussian jitter plus
    an additive floor that short functions cannot amortise.  Seeded from
    the run coordinates, so campaigns are reproducible. *)

type t

val create : seed:int -> salt:'a -> t
(** [salt] (any hashable value) mixes the run coordinates into the
    stream. *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val perturb : ?floor:float -> t -> sigma:float -> float -> float
(** Perturb a duration: multiplicative noise at relative level [sigma]
    plus additive jitter at scale [floor] (seconds).  Never negative. *)
