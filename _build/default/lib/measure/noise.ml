(** Deterministic measurement noise.

    Every simulated measurement is perturbed by multiplicative Gaussian
    noise (system jitter scales with run time) plus a small additive floor
    (timer granularity, OS interference) — the disturbances the paper
    identifies as disproportionately affecting short-running functions.
    The generator is seeded from the run coordinates so experiments are
    reproducible run-to-run. *)

type t = { state : Random.State.t }

(** Mix the textual run coordinates into a seed. *)
let create ~seed ~salt =
  let h = Hashtbl.hash (seed, salt) in
  { state = Random.State.make [| seed; h |] }

(* Box-Muller. *)
let gaussian t =
  let u1 = Float.max 1e-12 (Random.State.float t.state 1.) in
  let u2 = Random.State.float t.state 1. in
  sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

(** Perturb a true duration [x] (seconds).  [sigma] is the relative noise
    level; [floor] the additive jitter scale in seconds. *)
let perturb ?(floor = 2e-6) t ~sigma x =
  let mult = 1. +. (sigma *. gaussian t) in
  let add = floor *. Float.abs (gaussian t) in
  Float.max 0. ((x *. Float.max 0.05 mult) +. add)
