(** Ground-truth performance specification of a simulated application.

    The paper measures real applications on a real cluster; our testbed is
    synthetic, so each application carries an explicit ground truth: for
    every kernel, its true invocation count and true execution time as
    functions of the program parameters.  The simulator derives noisy,
    instrumented, contended measurements from this truth — and the truth
    doubles as the reference that the paper obtained from manual
    performance modeling (their "ground truth established with code
    inspection"). *)

module Machine = Mpi_sim.Machine

type params = (string * float) list

let param ps name =
  match List.assoc_opt name ps with
  | Some v -> v
  | None -> invalid_arg ("Spec.param: missing parameter " ^ name)

type kernel_kind =
  | Compute         (** an application computational kernel *)
  | Communication   (** an application routine dominated by MPI calls *)
  | Mpi             (** an MPI library routine itself *)
  | Helper          (** tiny accessor/setup code with constant runtime *)

type kernel = {
  kname : string;
  kind : kernel_kind;
  calls : params -> float;
      (** invocations per application run (per rank) *)
  base_time : params -> Machine.t -> float;
      (** total exclusive run time of all invocations, seconds, per rank *)
  memory_bound : float;
      (** fraction of [base_time] subject to memory-bandwidth contention *)
  tiny : bool;
      (** small enough that the compiler would inline it — excluded by the
          default Score-P filter, kept under full instrumentation *)
  full_instr_extra : params -> Machine.t -> float;
      (** additional *measured* time per invocation when the whole
          application is instrumented: the intrusion of hooks in its
          (otherwise invisible) callees — the B2 perturbation *)
  truth_deps : string list;
      (** parameters the kernel truly depends on (reference for quality
          experiments) *)
}

type app = {
  aname : string;
  kernels : kernel list;
  model_params : string list;
      (** the parameters varied in the modeling experiments *)
}

let kernel ?(kind = Compute) ?(memory_bound = 0.) ?(tiny = false)
    ?(full_instr_extra = fun _ _ -> 0.) ~calls ~base_time ~truth_deps kname =
  { kname; kind; calls; base_time; memory_bound; tiny; full_instr_extra;
    truth_deps }

let find_kernel app name =
  match List.find_opt (fun k -> k.kname = name) app.kernels with
  | Some k -> k
  | None -> invalid_arg ("Spec.find_kernel: unknown kernel " ^ name)

let kernel_names app = List.map (fun k -> k.kname) app.kernels
