(** Instrumentation modes of the measurement infrastructure (paper A3).

    - [Uninstrumented]: the baseline run, no hooks.
    - [Full]: every function carries enter/exit hooks — the mode empirical
      modeling is forced into when the filter cannot be trusted.
    - [Default]: Score-P's compiler-assisted filter, which skips functions
      the compiler would inline; cheap, but it also skips small
      performance-relevant functions (false negatives, paper A3/B2).
    - [Selective names]: Perf-Taint's taint-derived selection — only the
      functions proven performance-relevant are instrumented. *)

module SSet = Set.Make (String)

type mode =
  | Uninstrumented
  | Full
  | Default
  | Selective of SSet.t

let mode_name = function
  | Uninstrumented -> "none"
  | Full -> "full"
  | Default -> "default"
  | Selective _ -> "selective"

(** Is this kernel instrumented under [mode]? *)
let instrumented mode (k : Spec.kernel) =
  match mode with
  | Uninstrumented -> false
  | Full -> true
  | Default -> not k.Spec.tiny
  | Selective names -> SSet.mem k.Spec.kname names

(** Instrumented functions can be *observed*; uninstrumented ones produce
    no measurements at all (the source of default-mode false negatives). *)
let observed = instrumented
