(** Instrumentation modes of the measurement infrastructure (paper A3). *)

module SSet : Set.S with type elt = string

type mode =
  | Uninstrumented
  | Full                  (** every function hooked *)
  | Default               (** the compiler-assisted filter: skips inline
                              candidates — including relevant ones *)
  | Selective of SSet.t   (** the taint-derived selection *)

val mode_name : mode -> string

val instrumented : mode -> Spec.kernel -> bool
val observed : mode -> Spec.kernel -> bool
(** Uninstrumented functions produce no measurements at all. *)
