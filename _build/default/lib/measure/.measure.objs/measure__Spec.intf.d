lib/measure/spec.mli: Mpi_sim
