lib/measure/noise.ml: Float Hashtbl Random
