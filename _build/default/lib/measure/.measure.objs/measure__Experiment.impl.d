lib/measure/experiment.ml: Hashtbl Instrument List Model Simulator Spec
