lib/measure/instrument.mli: Set Spec
