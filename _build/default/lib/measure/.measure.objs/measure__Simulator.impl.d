lib/measure/simulator.ml: Instrument List Mpi_sim Noise Option Spec
