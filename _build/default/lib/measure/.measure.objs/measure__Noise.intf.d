lib/measure/noise.mli:
