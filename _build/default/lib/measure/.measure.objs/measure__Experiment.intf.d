lib/measure/experiment.mli: Instrument Model Mpi_sim Simulator Spec
