lib/measure/simulator.mli: Instrument Mpi_sim Spec
