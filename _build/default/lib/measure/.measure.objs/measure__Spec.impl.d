lib/measure/spec.ml: List Mpi_sim
