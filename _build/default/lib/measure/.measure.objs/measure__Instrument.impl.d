lib/measure/instrument.ml: Set Spec String
