(** Ground-truth performance specification of a simulated application:
    per kernel, its true invocation count and execution time as functions
    of the program parameters.  The simulator derives noisy, instrumented,
    contended measurements from this truth; the truth also serves as the
    reference the paper obtained from manual performance modeling. *)

module Machine = Mpi_sim.Machine

type params = (string * float) list

val param : params -> string -> float
(** @raise Invalid_argument when the parameter is absent. *)

type kernel_kind =
  | Compute         (** an application computational kernel *)
  | Communication   (** an application routine dominated by MPI calls *)
  | Mpi             (** an MPI library routine itself *)
  | Helper          (** tiny accessor/setup code with constant runtime *)

type kernel = {
  kname : string;
  kind : kernel_kind;
  calls : params -> float;  (** invocations per run (per rank) *)
  base_time : params -> Machine.t -> float;
      (** total exclusive seconds per run, per rank *)
  memory_bound : float;
      (** fraction of time subject to memory-bandwidth contention *)
  tiny : bool;
      (** inline candidate: excluded by the default Score-P filter *)
  full_instr_extra : params -> Machine.t -> float;
      (** extra measured seconds per invocation under full
          instrumentation: the B2 intrusion *)
  truth_deps : string list;
      (** parameters the kernel truly depends on (quality reference) *)
}

type app = {
  aname : string;
  kernels : kernel list;
  model_params : string list;
}

val kernel :
  ?kind:kernel_kind ->
  ?memory_bound:float ->
  ?tiny:bool ->
  ?full_instr_extra:(params -> Machine.t -> float) ->
  calls:(params -> float) ->
  base_time:(params -> Machine.t -> float) ->
  truth_deps:string list ->
  string ->
  kernel

val find_kernel : app -> string -> kernel
(** @raise Invalid_argument on unknown kernels. *)

val kernel_names : app -> string list
