(** Integration tests of the full Perf-Taint pipeline on the didactic
    programs from the paper's listings. *)

open Ir.Types
module SSet = Ir.Cfg.SSet

let analyze ?world program args = Perf_taint.Pipeline.analyze ?world program ~args

let params_of t fname = Perf_taint.Deps.params t.Perf_taint.Pipeline.deps fname

let check_params t fname expected =
  Alcotest.(check (slist string compare))
    (fname ^ " parameter set") expected
    (SSet.elements (params_of t fname))

(* Section 4.1 listing: iterate's loop depends on both size and step,
   through an arithmetic transformation and a helper call. *)
let test_iterate () =
  let t = analyze Apps.Didactic.iterate_example [ VInt 10; VInt 2 ] in
  check_params t "iterate" [ "size"; "step" ];
  (* The multi-label exit condition is conservatively multiplicative. *)
  Alcotest.(check bool)
    "size*step multiplicative" true
    (Perf_taint.Deps.multiplicative_ok t.deps "iterate" "size" "step")

(* Section 3.2 listing: data-flow label a, control-flow label b reach the
   return value of foo. *)
let test_foo_dataflow_and_controlflow () =
  let t = analyze Apps.Didactic.foo_example [ VInt 3; VInt 1; VInt 0 ] in
  let m = Interp.Machine.create Apps.Didactic.foo_example in
  let _, label = Interp.Machine.run m [ VInt 3; VInt 1; VInt 0 ] in
  let names = Taint.Label.names (Interp.Machine.label_table m) label in
  Alcotest.(check bool) "label a present" true (List.mem "a" names);
  Alcotest.(check bool) "label b present (control flow)" true (List.mem "b" names);
  ignore t

(* Without control-flow tainting, label b must NOT reach the return value:
   the ablation that motivates the DFSan extension. *)
let test_foo_without_control_flow () =
  let config = { Interp.Machine.default_config with control_flow_taint = false } in
  let m = Interp.Machine.create ~config Apps.Didactic.foo_example in
  let _, label = Interp.Machine.run m [ VInt 3; VInt 1; VInt 0 ] in
  let names = Taint.Label.names (Interp.Machine.label_table m) label in
  Alcotest.(check bool) "label a still present" true (List.mem "a" names);
  Alcotest.(check bool) "label b absent" false (List.mem "b" names)

(* Section 5.2 control-dependence example: the region loop bound is
   tainted by size only through control flow. *)
let test_control_dependence () =
  let t = analyze Apps.Didactic.control_dependence [ VInt 4; VInt 3 ] in
  let fd = Option.get (Perf_taint.Deps.find t.deps "count_regions") in
  Alcotest.(check bool)
    "size reaches region loop via control flow" true
    (SSet.mem "size" fd.Perf_taint.Deps.fd_loop_params);
  Alcotest.(check bool)
    "regions label present" true
    (SSet.mem "regions" fd.Perf_taint.Deps.fd_loop_params)

(* Matrix init: rows and columns must form a multiplicative pair. *)
let test_matrix_multiplicative () =
  let t = analyze Apps.Didactic.matrix_init [ VInt 5; VInt 7 ] in
  check_params t "init" [ "cols"; "rows" ];
  Alcotest.(check bool)
    "rows*cols multiplicative" true
    (Perf_taint.Deps.multiplicative_ok t.deps "init" "rows" "cols")

(* The C++ matrix variant (Section 3.1): bounds behind pointer
   indirection defeat the static analysis, but the dynamic analysis still
   recovers the multiplicative {rows, cols} dependency. *)
let test_matrix_cpp_static_vs_dynamic () =
  let program = Apps.Didactic.matrix_init_cpp in
  (* Static: every loop of init_cpp is unresolvable. *)
  let init = Ir.Types.find_func program "init_cpp" in
  List.iter
    (fun (ls : Static_an.Tripcount.loop_summary) ->
      Alcotest.(check bool) "trip unknown" true
        (ls.Static_an.Tripcount.ls_trip = Static_an.Tripcount.Unknown))
    (Static_an.Tripcount.analyze_function init);
  (* Dynamic: the taint analysis recovers both parameters anyway. *)
  let t = analyze program [ VInt 5; VInt 7 ] in
  check_params t "init_cpp" [ "cols"; "rows" ];
  Alcotest.(check bool) "rows x cols multiplicative" true
    (Perf_taint.Deps.multiplicative_ok t.deps "init_cpp" "rows" "cols");
  (* The getters themselves stay constant-per-invocation. *)
  check_params t "get_rows" []

(* Algorithm selection: taint runs on the two sides of the threshold
   cover different branches -> a design finding. *)
let test_algorithm_selection_validation () =
  let t_small = analyze Apps.Didactic.algorithm_selection [ VInt 2 ] in
  let t_large = analyze Apps.Didactic.algorithm_selection [ VInt 64 ] in
  let findings =
    Perf_taint.Validation.validate_design ~model_params:[ "a" ]
      [ t_small; t_large ]
  in
  Alcotest.(check bool)
    "qualitative behavior change detected" true
    (List.exists
       (fun f -> f.Perf_taint.Validation.df_func = "select")
       findings);
  (* A single run cannot produce a finding. *)
  Alcotest.(check int)
    "no finding from one run" 0
    (List.length
       (Perf_taint.Validation.validate_design ~model_params:[ "a" ] [ t_small ]))

(* Loop iteration counts recorded by the interpreter are exact. *)
let test_loop_iteration_counts () =
  let t = analyze Apps.Didactic.iterate_example [ VInt 10; VInt 2 ] in
  let loops =
    Interp.Observations.loop_list t.obs
    |> List.filter (fun lo -> lo.Interp.Observations.lo_func = "iterate")
  in
  match loops with
  | [ lo ] ->
    (* size^2 = 100, step optimised to 2 -> 50 iterations. *)
    Alcotest.(check int) "iterate iterations" 50 lo.Interp.Observations.lo_iters;
    Alcotest.(check int) "iterate entries" 1 lo.Interp.Observations.lo_entries
  | l -> Alcotest.failf "expected exactly one loop in iterate, got %d" (List.length l)

let tests =
  [
    Alcotest.test_case "iterate: size+step dependency" `Quick test_iterate;
    Alcotest.test_case "foo: data+control flow taint" `Quick
      test_foo_dataflow_and_controlflow;
    Alcotest.test_case "foo: ablation without control flow" `Quick
      test_foo_without_control_flow;
    Alcotest.test_case "control dependence (LULESH regions)" `Quick
      test_control_dependence;
    Alcotest.test_case "matrix init: multiplicative pair" `Quick
      test_matrix_multiplicative;
    Alcotest.test_case "matrix init C++: static fails, dynamic succeeds"
      `Quick test_matrix_cpp_static_vs_dynamic;
    Alcotest.test_case "algorithm selection: design validation" `Quick
      test_algorithm_selection_validation;
    Alcotest.test_case "exact loop iteration counts" `Quick
      test_loop_iteration_counts;
  ]
