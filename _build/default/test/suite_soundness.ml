(** Property tests of Claim 1 on randomly generated programs: whenever
    changing a marked parameter changes a loop's observed iteration count,
    that loop (or a loop dynamically enclosing it) must carry the
    parameter's taint label.  Also: exact search-space cardinality checks
    for the Extra-P heuristics. *)

open Ir.Types
module B = Ir.Builder
module Obs = Interp.Observations

(* -- random programs with a parameter in some loop bounds ------------------- *)

(* Body grammar: work | seq | for over (constant | x | x/2 | stored-x) |
   if on x. *)
type bound = Bconst of int | Bparam | Bhalf | Bmem

type body =
  | Work
  | Seq of body * body
  | For of bound * body
  | If of body * body

let gen_bound =
  QCheck.Gen.(
    frequency
      [ (3, map (fun k -> Bconst (k mod 4)) small_nat); (3, return Bparam);
        (2, return Bhalf); (2, return Bmem) ])

let gen_body =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        if n = 0 then return Work
        else
          frequency
            [
              (2, return Work);
              (2, map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2)));
              (3, map2 (fun bd t -> For (bd, t)) gen_bound (self (n - 1)));
              (1, map2 (fun a b -> If (a, b)) (self (n / 2)) (self (n / 2)));
            ]))

let rec emit b depth = function
  | Work -> B.work b (Int 1)
  | Seq (x, y) ->
    emit b depth x;
    emit b depth y
  | For (bound, t) ->
    let below =
      match bound with
      | Bconst k -> Int k
      | Bparam -> Reg "x"
      | Bhalf -> B.div b (Reg "x") (Int 2)
      | Bmem ->
        (* Parameter round-trips through memory: tests the shadow. *)
        let a = B.alloc b (Int 1) in
        B.store b a (Int 0) (Reg "x");
        B.load b a (Int 0)
    in
    B.for_ b (Printf.sprintf "i%d" depth) ~from:(Int 0) ~below (fun _ ->
        emit b (depth + 1) t)
  | If (x, y) ->
    let c = B.gt b (Reg "x") (Int 3) in
    B.if_ b c
      ~then_:(fun () -> emit b (depth + 1) x)
      ~else_:(fun () -> emit b (depth + 1) y)
      ()

let program_of body =
  let main =
    B.define "main" ~params:[ "x0" ] (fun b ->
        let x = B.prim b "taint:x" [ Reg "x0" ] in
        B.set b "x" x;
        emit b 0 body;
        B.ret_unit b)
  in
  { pname = "rand"; funcs = [ main ]; entry = "main" }

let run_and_observe program x =
  let m = Interp.Machine.create program in
  let _ = Interp.Machine.run m [ VInt x ] in
  (Interp.Machine.observations m, Interp.Machine.label_table m)

(* Claim 1 on random programs: loops whose iteration totals differ between
   two values of x must account for x (directly or via an enclosing
   loop). *)
let prop_loop_taint_soundness =
  QCheck.Test.make ~count:300 ~name:"Claim 1 on random programs"
    (QCheck.make gen_body)
    (fun body ->
      let program = program_of body in
      let obs1, _ = run_and_observe program 2 in
      let obs2, labels2 = run_and_observe program 7 in
      let key lo = (Obs.callpath_key lo.Obs.lo_callpath, lo.Obs.lo_header) in
      let iters1 =
        List.map (fun lo -> (key lo, lo.Obs.lo_iters)) (Obs.loop_list obs1)
      in
      let loops2 = Obs.loop_list obs2 in
      let carries lo = List.mem "x" (Taint.Label.names labels2 lo.Obs.lo_dep) in
      let enclosing_carries lo =
        List.exists
          (fun k ->
            List.exists (fun lo' -> key lo' = k && carries lo') loops2)
          lo.Obs.lo_enclosing
      in
      List.for_all
        (fun lo ->
          match List.assoc_opt (key lo) iters1 with
          | Some n1 when n1 <> lo.Obs.lo_iters ->
            carries lo || enclosing_carries lo
          | _ -> true)
        loops2)

(* The ablation direction: without control-flow taint, the data-flow-only
   dependency sets are a subset of the full ones. *)
let prop_control_flow_monotone =
  QCheck.Test.make ~count:150
    ~name:"control-flow taint only adds dependencies"
    (QCheck.make gen_body)
    (fun body ->
      let program = program_of body in
      let deps config =
        let m = Interp.Machine.create ~config program in
        let _ = Interp.Machine.run m [ VInt 6 ] in
        Obs.loop_list (Interp.Machine.observations m)
        |> List.map (fun lo ->
               ( (Obs.callpath_key lo.Obs.lo_callpath, lo.Obs.lo_header),
                 Taint.Label.names (Interp.Machine.label_table m) lo.Obs.lo_dep
               ))
      in
      let full = deps Interp.Machine.default_config in
      let dataflow_only =
        deps { Interp.Machine.default_config with control_flow_taint = false }
      in
      List.for_all
        (fun (k, names) ->
          match List.assoc_opt k full with
          | Some full_names -> List.for_all (fun n -> List.mem n full_names) names
          | None -> false)
        dataflow_only)

(* -- search-space cardinality (the paper's heuristics) ------------------------ *)

let test_single_search_space_size () =
  (* 18 exponents x 3 log exponents - (0,0) = 53 simple terms;
     hypotheses: constant + 53 one-term + C(53,2) two-term = 1432. *)
  let r =
    Model.Search.single ~param:"p"
      (List.map (fun x -> (x, 1. +. x)) [ 2.; 4.; 8.; 16.; 32. ])
  in
  Alcotest.(check int) "single-parameter hypothesis count" 1432
    r.Model.Search.hypotheses_tried

let test_multi_search_space_small () =
  (* The paper: hundreds of billions reduced to "under a thousand"; for two
     parameters our composition stage tries at most a few dozen. *)
  let rows =
    List.concat_map
      (fun p ->
        List.map (fun n -> ([ ("p", p); ("n", n) ], [ p +. n ])) [ 1.; 2.; 4. ])
      [ 2.; 4.; 8. ]
  in
  let r = Model.Search.multi (Model.Dataset.of_rows [ "p"; "n" ] rows) in
  Alcotest.(check bool)
    (Printf.sprintf "composition stage is small (%d)" r.Model.Search.hypotheses_tried)
    true
    (r.Model.Search.hypotheses_tried < 1000)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_loop_taint_soundness;
    QCheck_alcotest.to_alcotest prop_control_flow_monotone;
    Alcotest.test_case "single search space = 1432 hypotheses" `Quick
      test_single_search_space_size;
    Alcotest.test_case "multi search space stays under 1000" `Quick
      test_multi_search_space_small;
  ]
