(** Tests of the symbolic iteration-volume composition (paper Sections
    4.2/4.3) and the experiment-design planner (A1/A2). *)

open Ir.Types
module B = Ir.Builder
module V = Perf_taint.Volume
module SSet = Ir.Cfg.SSet

let prog funcs entry = { pname = "t"; funcs; entry }

let analyze ?world p args = Perf_taint.Pipeline.analyze ?world p ~args

(* -- expression algebra -------------------------------------------------------- *)

let test_sum_folding () =
  Alcotest.(check string) "constants fold" "5"
    (V.to_string (V.sum [ V.Const 2; V.Const 3 ]));
  Alcotest.(check string) "nested sums flatten" "6"
    (V.to_string (V.sum [ V.Sum [ V.Const 1; V.Const 2 ]; V.Const 3 ]))

let test_product_folding () =
  Alcotest.(check string) "zero annihilates" "0"
    (V.to_string (V.product [ V.Const 0; V.Const 9 ]));
  Alcotest.(check string) "constants fold" "12"
    (V.to_string (V.product [ V.Const 3; V.Const 4 ]))

let count name ps =
  V.Count { func = "f"; header = name; params = SSet.of_list ps }

let test_normalize_merges () =
  let g = count "h" [ "n" ] in
  let e = V.normalize (V.sum [ g; g; V.product [ V.Const 3; g ] ]) in
  Alcotest.(check string) "5*g(n)" "5*g(n)" (V.to_string e)

let test_params_and_constant () =
  let e = V.product [ count "a" [ "n" ]; count "b" [ "m" ] ] in
  Alcotest.(check (slist string compare)) "params" [ "m"; "n" ]
    (SSet.elements (V.params e));
  Alcotest.(check bool) "not constant" false (V.is_constant e);
  Alcotest.(check bool) "const is constant" true (V.is_constant (V.Const 7))

(* -- per-function volumes -------------------------------------------------------- *)

let test_single_loop_volume () =
  let f =
    B.define "main" ~params:[ "n" ] (fun b ->
        let n = B.prim b "taint:n" [ Reg "n" ] in
        B.for_ b "i" ~from:(Int 0) ~below:n (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [ VInt 4 ] in
  let v = V.of_function t "main" in
  Alcotest.(check string) "g(n) + 1" "(g(n) + 1)" (V.to_string v);
  Alcotest.(check (list string)) "depends on n" [ "n" ]
    (SSet.elements (V.params v))

let test_constant_loop_volume () =
  let f =
    B.define "main" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 8) (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [] in
  Alcotest.(check string) "8 + 1" "9" (V.to_string (V.of_function t "main"));
  Alcotest.(check bool) "constant" true (V.is_constant (V.of_function t "main"))

let test_nested_volume_multiplies () =
  let t = analyze Apps.Didactic.matrix_init [ VInt 3; VInt 4 ] in
  let v = V.of_function t "init" in
  (* rows loop * (cols loop + 1) + 1 *)
  Alcotest.(check (slist string compare)) "rows and cols" [ "cols"; "rows" ]
    (SSet.elements (V.params v));
  match v with
  | V.Sum [ V.Product _; V.Const 1 ] -> ()
  | _ -> Alcotest.failf "unexpected shape %s" (V.to_string v)

let test_inclusive_volume_call_in_loop () =
  (* iterate's loop multiplies compute's (constant) volume: inclusive
     volume of main must contain 2*g(size,step). *)
  let t = analyze Apps.Didactic.iterate_example [ VInt 10; VInt 2 ] in
  let v = V.of_program t in
  Alcotest.(check string) "2g + 3" "(2*g(size,step) + 3)" (V.to_string v)

let test_lulesh_program_volume_params () =
  let t =
    analyze ~world:Apps.Lulesh.taint_world Apps.Lulesh.program
      Apps.Lulesh.taint_args
  in
  let v = V.of_program t in
  (* Theorem 1: compute volume covers every loop-relevant parameter. *)
  Alcotest.(check (slist string compare))
    "volume parameters"
    [ "balance"; "cost"; "iters"; "regions"; "size" ]
    (SSet.elements (V.params v))

(* Claim 2, empirically: evaluating the inclusive volume with the
   per-entry iteration averages observed by the tainted run bounds the
   number of loop-body executions the interpreter actually performed. *)
let test_volume_bounds_execution () =
  let t = analyze Apps.Didactic.matrix_init [ VInt 3; VInt 4 ] in
  (* Per-entry average iterations per static loop. *)
  let avg_iters ~func ~header =
    let matching =
      Interp.Observations.loop_list t.Perf_taint.Pipeline.obs
      |> List.filter (fun lo ->
             lo.Interp.Observations.lo_func = func
             && lo.Interp.Observations.lo_header = header)
    in
    match matching with
    | [] -> 0.
    | _ ->
      let iters =
        List.fold_left
          (fun acc lo -> acc + lo.Interp.Observations.lo_iters)
          0 matching
      in
      let entries =
        List.fold_left
          (fun acc lo -> acc + lo.Interp.Observations.lo_entries)
          0 matching
      in
      if entries = 0 then 0. else float_of_int iters /. float_of_int entries
  in
  let v = Perf_taint.Volume.inclusive t "main" in
  let bound = Perf_taint.Volume.eval_with avg_iters v in
  (* Total observed loop-body executions. *)
  let total_iters =
    List.fold_left
      (fun acc lo -> acc + lo.Interp.Observations.lo_iters)
      0
      (Interp.Observations.loop_list t.Perf_taint.Pipeline.obs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "volume bound %.0f >= %d executed bodies" bound total_iters)
    true
    (bound >= float_of_int total_iters)

let test_minicg_spmv_volume () =
  let t =
    Perf_taint.Pipeline.analyze ~world:Apps.Minicg.taint_world
      Apps.Minicg.program ~args:Apps.Minicg.taint_args
  in
  let v = Perf_taint.Volume.of_function t "spmv" in
  Alcotest.(check (slist string compare)) "spmv volume parameters"
    [ "n"; "nnz"; "p" ]
    (SSet.elements (Perf_taint.Volume.params v))

(* -- design planner ----------------------------------------------------------------- *)

let test_design_lulesh () =
  let t =
    analyze ~world:Apps.Lulesh.taint_world Apps.Lulesh.program
      Apps.Lulesh.taint_args
  in
  let axes =
    [
      { Perf_taint.Design.param = "p"; values = [ 8.; 64. ] };
      { param = "size"; values = [ 25.; 35.; 45. ] };
      { param = "iters"; values = [ 1000.; 2000. ] };
      { param = "verbose"; values = [ 0.; 1. ] };
    ]
  in
  let plan = Perf_taint.Design.propose t ~axes ~reps:3 in
  let decision p = List.assoc p plan.Perf_taint.Design.decisions in
  Alcotest.(check string) "iters is a global factor" "fixed: global linear factor"
    (Perf_taint.Design.decision_name (decision "iters"));
  Alcotest.(check string) "verbose is irrelevant"
    "fixed: no effect on performance"
    (Perf_taint.Design.decision_name (decision "verbose"));
  (match decision "p" with
  | Perf_taint.Design.Swept_jointly g ->
    Alcotest.(check bool) "p joint with size" true (List.mem "size" g)
  | _ -> Alcotest.fail "p must be swept jointly");
  (* Joint (p,size): 2*3 = 6 configs, times 3 reps. *)
  Alcotest.(check int) "planned runs" 18 plan.Perf_taint.Design.runs_planned;
  Alcotest.(check int) "full factorial" 72
    plan.Perf_taint.Design.runs_full_factorial

let test_design_additive_decoupled () =
  (* Two additive parameters: two 1-D sweeps sharing the base point. *)
  let f =
    B.define "main" ~params:[ "a"; "b" ] (fun b ->
        let a = B.prim b "taint:a" [ Reg "a" ] in
        let bb = B.prim b "taint:b" [ Reg "b" ] in
        B.for_ b "i" ~from:(Int 0) ~below:a (fun _ -> B.work b (Int 1));
        B.for_ b "j" ~from:(Int 0) ~below:bb (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [ VInt 3; VInt 4 ] in
  let axes =
    [
      { Perf_taint.Design.param = "a"; values = [ 1.; 2.; 3.; 4. ] };
      { param = "b"; values = [ 1.; 2.; 3.; 4. ] };
    ]
  in
  let plan = Perf_taint.Design.propose t ~axes ~reps:1 in
  Alcotest.(check string) "a swept alone" "swept alone (1-D)"
    (Perf_taint.Design.decision_name
       (List.assoc "a" plan.Perf_taint.Design.decisions));
  (* 4 + 4 - 1 shared base point = 7 runs, vs 16 full factorial. *)
  Alcotest.(check int) "planned" 7 plan.Perf_taint.Design.runs_planned;
  Alcotest.(check int) "full" 16 plan.Perf_taint.Design.runs_full_factorial

let tests =
  [
    Alcotest.test_case "sum folding" `Quick test_sum_folding;
    Alcotest.test_case "product folding" `Quick test_product_folding;
    Alcotest.test_case "normalize merges summands" `Quick test_normalize_merges;
    Alcotest.test_case "params and constancy" `Quick test_params_and_constant;
    Alcotest.test_case "single-loop volume" `Quick test_single_loop_volume;
    Alcotest.test_case "constant-loop volume" `Quick test_constant_loop_volume;
    Alcotest.test_case "nested volume multiplies" `Quick
      test_nested_volume_multiplies;
    Alcotest.test_case "inclusive volume through calls" `Quick
      test_inclusive_volume_call_in_loop;
    Alcotest.test_case "lulesh volume parameters (Theorem 1)" `Quick
      test_lulesh_program_volume_params;
    Alcotest.test_case "minicg spmv volume parameters" `Quick
      test_minicg_spmv_volume;
    Alcotest.test_case "volume bounds executed bodies (Claim 2)" `Quick
      test_volume_bounds_execution;
    Alcotest.test_case "design: lulesh plan" `Quick test_design_lulesh;
    Alcotest.test_case "design: additive decoupling" `Quick
      test_design_additive_decoupled;
  ]
