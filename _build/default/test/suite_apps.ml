(** Integration tests of the mini applications: structural validity, the
    key dependency facts the paper's experiments rely on, alignment
    between each app's PIR program and its measurement spec, and a taint
    soundness property (a parameter that changes observed loop counts must
    appear in the loop's taint set). *)

module SSet = Ir.Cfg.SSet
module P = Perf_taint.Pipeline

let lulesh =
  lazy (P.analyze ~world:Apps.Lulesh.taint_world Apps.Lulesh.program
          ~args:Apps.Lulesh.taint_args)

let milc =
  lazy (P.analyze ~world:Apps.Milc.taint_world Apps.Milc.program
          ~args:Apps.Milc.taint_args)

let deps_of t f = Perf_taint.Deps.params t.P.deps f

(* -- structural ------------------------------------------------------------- *)

let test_programs_validate () =
  List.iter
    (fun p ->
      Alcotest.(check int)
        (p.Ir.Types.pname ^ " validates")
        0
        (List.length (Ir.Validate.errors (Ir.Validate.check_program p))))
    [ Apps.Lulesh.program; Apps.Milc.program; Apps.Didactic.iterate_example;
      Apps.Didactic.foo_example; Apps.Didactic.matrix_init;
      Apps.Didactic.algorithm_selection; Apps.Didactic.control_dependence ]

let test_heat_pir_parses () =
  let p = Ir.Parser.parse_file "../../../examples/heat.pir" in
  Alcotest.(check string) "name" "heat" p.Ir.Types.pname;
  Alcotest.(check int) "errors" 0
    (List.length (Ir.Validate.errors (Ir.Validate.check_program p)))

(* Every kernel in the measurement spec must exist in the program (or be
   an MPI routine): catches drift between the PIR app and its spec. *)
let test_spec_program_alignment () =
  List.iter
    (fun ((app : Measure.Spec.app), (program : Ir.Types.program)) ->
      let fnames =
        List.map (fun (f : Ir.Types.func) -> f.Ir.Types.fname)
          program.Ir.Types.funcs
      in
      List.iter
        (fun (k : Measure.Spec.kernel) ->
          let name = k.Measure.Spec.kname in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s exists" app.Measure.Spec.aname name)
            true
            (List.mem name fnames || Mpi_sim.Costdb.is_mpi_prim name))
        app.Measure.Spec.kernels)
    [ (Apps.Lulesh_spec.app, Apps.Lulesh.program);
      (Apps.Milc_spec.app, Apps.Milc.program) ]

(* Conversely: every relevant function found by the analysis must carry a
   spec entry, or the simulator would silently never measure it. *)
let test_relevant_functions_have_specs () =
  List.iter
    (fun (t, (app : Measure.Spec.app), model_params) ->
      let spec_names =
        List.map (fun k -> k.Measure.Spec.kname) app.Measure.Spec.kernels
      in
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has a spec" app.Measure.Spec.aname f)
            true (List.mem f spec_names))
        (P.relevant_functions (Lazy.force t) ~model_params))
    [ (lulesh, Apps.Lulesh_spec.app, Apps.Lulesh.model_params);
      (milc, Apps.Milc_spec.app, [ "p"; "nx"; "ny"; "nz"; "nt" ]) ]

(* -- LULESH dependency facts --------------------------------------------------- *)

let test_lulesh_kernel_deps () =
  let t = Lazy.force lulesh in
  let check f expected =
    Alcotest.(check (slist string compare))
      (f ^ " deps") expected (SSet.elements (deps_of t f))
  in
  check "integrate_stress_for_elems" [ "size" ];
  check "calc_force_for_nodes" [ "size" ];
  check "eval_eos_for_elems" [ "balance"; "cost"; "regions" ];
  check "comm_reduce_dt" [ "p" ];
  check "calc_q_for_elems" [ "p"; "size" ]

let test_lulesh_iters_multiplicative_with_size () =
  let t = Lazy.force lulesh in
  Alcotest.(check bool) "iters x size in stress kernel" true
    (Perf_taint.Deps.multiplicative_ok t.deps "integrate_stress_for_elems"
       "iters" "size")

let test_lulesh_regions_control_dependence () =
  (* The region loop bound is control-tainted by size (Section 5.2). *)
  let t = Lazy.force lulesh in
  Alcotest.(check bool) "size in region Q kernel" true
    (SSet.mem "size" (deps_of t "calc_monotonic_q_region_for_elems"))

let test_lulesh_comm_p () =
  let t = Lazy.force lulesh in
  let fd = Option.get (Perf_taint.Deps.find t.deps "comm_halo_nodes") in
  Alcotest.(check bool) "p from library database" true
    (SSet.mem "p" fd.Perf_taint.Deps.fd_comm_params);
  Alcotest.(check bool) "message size taints count" true
    (SSet.mem "size" fd.Perf_taint.Deps.fd_comm_params)

let test_lulesh_statuses () =
  let t = Lazy.force lulesh in
  let model_params = Apps.Lulesh.model_params in
  Alcotest.(check string) "helper pruned statically" "pruned-static"
    (P.status_name (P.status t ~model_params "triple_product"));
  Alcotest.(check string) "stress kernel is a kernel" "kernel"
    (P.status_name (P.status t ~model_params "integrate_stress_for_elems"));
  Alcotest.(check string) "halo exchange is comm" "comm"
    (P.status_name (P.status t ~model_params "comm_halo_nodes"));
  (* eval_eos depends only on cost/balance/regions: constant w.r.t.
     (p, size) -> dynamically pruned. *)
  Alcotest.(check string) "eval_eos pruned dynamically" "pruned-dynamic"
    (P.status_name (P.status t ~model_params "eval_eos_for_elems"))

let test_lulesh_no_false_parameters () =
  (* No LULESH function may depend on a parameter that does not exist. *)
  let t = Lazy.force lulesh in
  let all = P.observed_params t in
  Alcotest.(check (slist string compare))
    "only real parameters observed"
    [ "balance"; "cost"; "iters"; "p"; "regions"; "size" ]
    (SSet.elements all)

(* -- MILC dependency facts -------------------------------------------------------- *)

let test_milc_dslash_deps () =
  let t = Lazy.force milc in
  let d = deps_of t "dslash" in
  List.iter
    (fun pr ->
      Alcotest.(check bool) ("dslash depends on " ^ pr) true (SSet.mem pr d))
    [ "nx"; "ny"; "nz"; "nt"; "p" ]

let test_milc_extent_multiplicative () =
  (* The multi-label site-loop exit condition is conservatively
     multiplicative across all extents and p. *)
  let t = Lazy.force milc in
  Alcotest.(check bool) "nx x p" true
    (Perf_taint.Deps.multiplicative_ok t.deps "dslash" "nx" "p");
  Alcotest.(check bool) "nx x nt" true
    (Perf_taint.Deps.multiplicative_ok t.deps "dslash" "nx" "nt")

let test_milc_narrow_parameters () =
  let t = Lazy.force milc in
  (* u0 only drives reunitarize; nflavors only grsource/update_h. *)
  Alcotest.(check (list string)) "u0 footprint" [ "reunitarize" ]
    (P.functions_affected_by t "u0" |> List.filter (fun f -> f <> "main"));
  Alcotest.(check bool) "nflavors in grsource" true
    (SSet.mem "nflavors" (deps_of t "grsource_imp"))

let test_milc_unexecuted_detected () =
  let t = Lazy.force milc in
  List.iter
    (fun f ->
      Alcotest.(check string) (f ^ " unexecuted") "unexecuted"
        (P.status_name (P.status t ~model_params:[ "p" ] f)))
    [ "reload_lattice_from_file"; "gauge_fix_coulomb" ]

let test_milc_gather_branch_on_p () =
  let t = Lazy.force milc in
  let bo =
    Interp.Observations.branch_list t.obs
    |> List.filter (fun b -> b.Interp.Observations.br_func = "start_gather")
  in
  Alcotest.(check bool) "gather branch observed" true (bo <> []);
  Alcotest.(check bool) "condition tainted by p" true
    (List.exists
       (fun b ->
         List.mem "p"
           (Taint.Label.names t.labels b.Interp.Observations.br_dep))
       bo)

(* Regression guard: pin the Table-2 overview counts so structural changes
   to the apps or the pruning phases are caught explicitly. *)
let test_overview_regression () =
  let check name (t : Perf_taint.Pipeline.t) ~model_params expected =
    let ov = Perf_taint.Report.overview t ~model_params in
    Alcotest.(check (list int)) (name ^ " overview")
      expected
      [ ov.Perf_taint.Report.ov_functions; ov.ov_pruned_static;
        ov.ov_pruned_dynamic; ov.ov_kernels; ov.ov_comm_routines;
        ov.ov_mpi_functions; ov.ov_loops; ov.ov_loops_pruned_static;
        ov.ov_loops_relevant ]
  in
  check "lulesh" (Lazy.force lulesh) ~model_params:Apps.Lulesh.model_params
    [ 113; 66; 8; 29; 4; 6; 54; 19; 30 ];
  check "milc" (Lazy.force milc) ~model_params:[ "p"; "nx"; "ny"; "nz"; "nt" ]
    [ 95; 41; 16; 24; 6; 8; 66; 21; 28 ]

(* -- miniCG (third application) -------------------------------------------------- *)

let minicg =
  lazy (P.analyze ~world:Apps.Minicg.taint_world Apps.Minicg.program
          ~args:Apps.Minicg.taint_args)

let test_minicg_deps () =
  let t = Lazy.force minicg in
  let d = deps_of t "spmv" in
  List.iter
    (fun pr ->
      Alcotest.(check bool) ("spmv depends on " ^ pr) true (SSet.mem pr d))
    [ "n"; "nnz"; "p" ];
  Alcotest.(check bool) "n x nnz multiplicative" true
    (Perf_taint.Deps.multiplicative_ok t.deps "spmv" "n" "nnz");
  Alcotest.(check bool) "band only in halo" true
    (SSet.mem "band"
       (Option.get (Perf_taint.Deps.find t.deps "exchange_halo")).fd_comm_params)

let test_minicg_maxit_global_factor () =
  let t = Lazy.force minicg in
  Alcotest.(check bool) "maxit is a global factor" true
    (Perf_taint.Design.is_global_factor t "maxit");
  Alcotest.(check bool) "n is not" false
    (Perf_taint.Design.is_global_factor t "n")

let test_minicg_spec_alignment () =
  let t = Lazy.force minicg in
  let spec_names =
    List.map (fun k -> k.Measure.Spec.kname) Apps.Minicg_spec.app.Measure.Spec.kernels
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " has a spec") true (List.mem f spec_names))
    (P.relevant_functions t ~model_params:Apps.Minicg.model_params)

(* -- taint soundness property -------------------------------------------------------- *)

(* Run LULESH at two sizes; any loop whose total iteration count differs
   must carry the size label.  This is Claim 1 exercised end to end. *)
let test_taint_soundness_size () =
  let run size =
    let t =
      P.analyze ~world:Apps.Lulesh.taint_world Apps.Lulesh.program
        ~args:
          [ Ir.Types.VInt size; Ir.Types.VInt 2; Ir.Types.VInt 4;
            Ir.Types.VInt 2; Ir.Types.VInt 1 ]
    in
    t
  in
  let t1 = run 4 and t2 = run 5 in
  let iters t =
    Interp.Observations.loop_list t.P.obs
    |> List.map (fun lo ->
           ( (Interp.Observations.callpath_key lo.Interp.Observations.lo_callpath,
              lo.Interp.Observations.lo_header),
             lo ))
  in
  let m1 = iters t1 in
  let m2 = iters t2 in
  let carries_size lo =
    List.mem "size"
      (Taint.Label.names t2.P.labels lo.Interp.Observations.lo_dep)
  in
  (* A loop whose total count changed either is itself size-tainted or is
     (interprocedurally) enclosed by a size-tainted loop — constant-trip
     helper loops run more often because their caller's loop grew. *)
  let enclosing_carries_size lo =
    List.exists
      (fun key ->
        match List.assoc_opt key m2 with
        | Some enc -> carries_size enc
        | None -> false)
      lo.Interp.Observations.lo_enclosing
  in
  List.iter
    (fun (key, lo2) ->
      match List.assoc_opt key m1 with
      | Some lo1
        when lo1.Interp.Observations.lo_iters
             <> lo2.Interp.Observations.lo_iters ->
        Alcotest.(check bool)
          (Printf.sprintf "loop %s/%s accounts for size" (fst key) (snd key))
          true
          (carries_size lo2 || enclosing_carries_size lo2)
      | _ -> ())
    m2

let test_taint_soundness_niter () =
  let run niter =
    P.analyze ~world:Apps.Milc.taint_world Apps.Milc.program
      ~args:
        [ Ir.Types.VInt 4; Ir.Types.VInt 4; Ir.Types.VInt 2; Ir.Types.VInt 4;
          Ir.Types.VInt 1; Ir.Types.VInt 1; Ir.Types.VInt 1;
          Ir.Types.VInt niter; Ir.Types.VInt 2; Ir.Types.VInt 6;
          Ir.Types.VInt 2; Ir.Types.VInt 8 ]
  in
  let t1 = run 3 and t2 = run 6 in
  let iters t =
    Interp.Observations.loop_list t.P.obs
    |> List.map (fun lo ->
           ( (Interp.Observations.callpath_key lo.Interp.Observations.lo_callpath,
              lo.Interp.Observations.lo_header),
             lo.Interp.Observations.lo_iters ))
  in
  let changed =
    List.filter_map
      (fun (key, n2) ->
        match List.assoc_opt key (iters t1) with
        | Some n1 when n1 <> n2 -> Some key
        | _ -> None)
      (iters t2)
  in
  Alcotest.(check bool) "niter changes some loop" true (changed <> []);
  List.iter
    (fun (cp, header) ->
      let lo =
        List.find
          (fun lo ->
            Interp.Observations.callpath_key lo.Interp.Observations.lo_callpath
            = cp
            && lo.Interp.Observations.lo_header = header)
          (Interp.Observations.loop_list t2.P.obs)
      in
      let names = Taint.Label.names t2.P.labels lo.Interp.Observations.lo_dep in
      (* Directly tainted, or nested below a niter-tainted loop. *)
      let enclosing_ok =
        List.exists
          (fun (cp', h') ->
            List.exists
              (fun lo' ->
                Interp.Observations.callpath_key
                  lo'.Interp.Observations.lo_callpath
                = cp'
                && lo'.Interp.Observations.lo_header = h'
                && List.mem "niter"
                     (Taint.Label.names t2.P.labels
                        lo'.Interp.Observations.lo_dep))
              (Interp.Observations.loop_list t2.P.obs))
          lo.Interp.Observations.lo_enclosing
      in
      Alcotest.(check bool)
        (Printf.sprintf "loop %s/%s accounts for niter" cp header)
        true
        (List.mem "niter" names || enclosing_ok))
    changed

let tests =
  [
    Alcotest.test_case "programs validate" `Quick test_programs_validate;
    Alcotest.test_case "heat.pir parses" `Quick test_heat_pir_parses;
    Alcotest.test_case "spec/program alignment" `Quick
      test_spec_program_alignment;
    Alcotest.test_case "relevant functions have specs" `Quick
      test_relevant_functions_have_specs;
    Alcotest.test_case "lulesh kernel dependencies" `Quick
      test_lulesh_kernel_deps;
    Alcotest.test_case "lulesh iters multiplicative" `Quick
      test_lulesh_iters_multiplicative_with_size;
    Alcotest.test_case "lulesh region control dependence" `Quick
      test_lulesh_regions_control_dependence;
    Alcotest.test_case "lulesh comm routine deps" `Quick test_lulesh_comm_p;
    Alcotest.test_case "lulesh function statuses" `Quick test_lulesh_statuses;
    Alcotest.test_case "lulesh: no phantom parameters" `Quick
      test_lulesh_no_false_parameters;
    Alcotest.test_case "milc dslash deps" `Quick test_milc_dslash_deps;
    Alcotest.test_case "milc extents multiplicative" `Quick
      test_milc_extent_multiplicative;
    Alcotest.test_case "milc narrow parameters" `Quick
      test_milc_narrow_parameters;
    Alcotest.test_case "milc unexecuted functions" `Quick
      test_milc_unexecuted_detected;
    Alcotest.test_case "milc gather branch tainted by p" `Quick
      test_milc_gather_branch_on_p;
    Alcotest.test_case "overview counts regression (Table 2)" `Quick
      test_overview_regression;
    Alcotest.test_case "minicg dependencies" `Quick test_minicg_deps;
    Alcotest.test_case "minicg maxit global factor" `Quick
      test_minicg_maxit_global_factor;
    Alcotest.test_case "minicg spec alignment" `Quick test_minicg_spec_alignment;
    Alcotest.test_case "taint soundness: lulesh size" `Slow
      test_taint_soundness_size;
    Alcotest.test_case "taint soundness: milc niter" `Slow
      test_taint_soundness_niter;
  ]
