(** Unit tests of the core pipeline pieces: dependency post-processing
    (additive vs multiplicative), hybrid model constraints (including MPI
    library-database fallbacks and parameter aliases), contention
    detection, and report consistency. *)

open Ir.Types
module B = Ir.Builder
module SSet = Ir.Cfg.SSet
module P = Perf_taint.Pipeline

let prog funcs entry = { pname = "t"; funcs; entry }

let analyze ?world p args = P.analyze ?world p ~args

(* Two disjoint loops over a and b: an additive pair. *)
let additive_program =
  let f =
    B.define "main" ~params:[ "a"; "b" ] (fun b ->
        let a = B.prim b "taint:a" [ Reg "a" ] in
        let bb = B.prim b "taint:b" [ Reg "b" ] in
        B.for_ b "i" ~from:(Int 0) ~below:a (fun _ -> B.work b (Int 1));
        B.for_ b "j" ~from:(Int 0) ~below:bb (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  prog [ f ] "main"

(* Nested loops over a then b: a multiplicative pair. *)
let nested_program =
  let f =
    B.define "main" ~params:[ "a"; "b" ] (fun b ->
        let a = B.prim b "taint:a" [ Reg "a" ] in
        let bb = B.prim b "taint:b" [ Reg "b" ] in
        B.for_ b "i" ~from:(Int 0) ~below:a (fun _ ->
            B.for_ b "j" ~from:(Int 0) ~below:bb (fun _ -> B.work b (Int 1)));
        B.ret_unit b)
  in
  prog [ f ] "main"

let test_additive_pair () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  Alcotest.(check bool) "a,b not multiplicative" false
    (Perf_taint.Deps.multiplicative_ok t.deps "main" "a" "b");
  let fd = Option.get (Perf_taint.Deps.find t.deps "main") in
  Alcotest.(check (list (pair string string))) "additive pair" [ ("a", "b") ]
    (Perf_taint.Deps.additive_pairs fd)

let test_multiplicative_pair () =
  let t = analyze nested_program [ VInt 3; VInt 4 ] in
  Alcotest.(check bool) "a,b multiplicative" true
    (Perf_taint.Deps.multiplicative_ok t.deps "main" "a" "b");
  let fd = Option.get (Perf_taint.Deps.find t.deps "main") in
  Alcotest.(check (list (pair string string))) "no additive pair" []
    (Perf_taint.Deps.additive_pairs fd)

(* -- constraints -------------------------------------------------------------------- *)

let test_constraints_additive_forbids_product () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  let c =
    Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
      ~model_params:[ "a"; "b" ] "main"
  in
  (match c.Model.Search.allowed with
  | Some l -> Alcotest.(check (slist string compare)) "both allowed" [ "a"; "b" ] l
  | None -> Alcotest.fail "tainted mode must restrict");
  match c.Model.Search.multiplicative with
  | Some ok -> Alcotest.(check bool) "product forbidden" false (ok "a" "b")
  | None -> Alcotest.fail "tainted mode must restrict products"

let test_constraints_blackbox_unrestricted () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  let c =
    Perf_taint.Modeling.constraints t Perf_taint.Modeling.Black_box
      ~model_params:[ "a"; "b" ] "main"
  in
  Alcotest.(check bool) "no allowed restriction" true
    (c.Model.Search.allowed = None)

let test_constraints_mpi_fallback () =
  (* mpi_allreduce is not an application function; its dependencies come
     from the library database. *)
  let f =
    B.define "main" ~params:[ "n" ] (fun b ->
        let n = B.prim b "taint:n" [ Reg "n" ] in
        B.prim_unit b "mpi_allreduce" [ n ];
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [ VInt 8 ] in
  let c =
    Perf_taint.Modeling.constraints t Perf_taint.Modeling.Tainted
      ~model_params:[ "p"; "n" ] "mpi_allreduce"
  in
  match c.Model.Search.allowed with
  | Some l ->
    Alcotest.(check (slist string compare))
      "implicit p and the count's label" [ "n"; "p" ] l
  | None -> Alcotest.fail "expected restriction"

let test_constraints_aliases () =
  (* A function depending on nx must admit the model parameter size when
     size aliases the extents. *)
  let f =
    B.define "main" ~params:[ "nx" ] (fun b ->
        let nx = B.prim b "taint:nx" [ Reg "nx" ] in
        B.for_ b "i" ~from:(Int 0) ~below:nx (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [ VInt 4 ] in
  let c =
    Perf_taint.Modeling.constraints_aliased t Perf_taint.Modeling.Tainted
      ~model_params:[ "p"; "size" ]
      ~aliases:[ ("size", [ "nx"; "ny"; "nz"; "nt" ]) ]
      "main"
  in
  match c.Model.Search.allowed with
  | Some l -> Alcotest.(check (list string)) "size allowed via nx" [ "size" ] l
  | None -> Alcotest.fail "expected restriction"

(* -- contention detection ------------------------------------------------------------- *)

let test_contradicts_taint () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  let model =
    {
      Model.Expr.const = 1.;
      terms =
        [ { Model.Expr.coeff = 2.; factors = [ ("r", { expo = 1.; logexp = 0 }) ] } ];
    }
  in
  let result =
    { Model.Search.model; error = 0.; rss = 0.; hypotheses_tried = 1 }
  in
  let external_params =
    Perf_taint.Modeling.contradicts_taint t ~fname:"main" result
  in
  Alcotest.(check (list string)) "r contradicts" [ "r" ]
    (SSet.elements external_params)

let test_detect_contention_api () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  (* Clean r-dependent data for main: taint says r cannot matter. *)
  let rows =
    List.map
      (fun r -> ([ ("r", r) ], [ 1. +. (0.1 *. r); 1. +. (0.1 *. r) ]))
      [ 2.; 4.; 8.; 16. ]
  in
  let data = Model.Dataset.of_rows [ "r" ] rows in
  let findings = Perf_taint.Validation.detect_contention t [ ("main", data) ] in
  Alcotest.(check int) "one finding" 1 (List.length findings);
  let f = List.hd findings in
  Alcotest.(check string) "on main" "main" f.Perf_taint.Validation.cf_func;
  Alcotest.(check (list string)) "r external" [ "r" ]
    f.Perf_taint.Validation.cf_external_params

let test_noisy_data_not_flagged () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  (* CoV > 0.1: statistically unsound, must be skipped. *)
  let rows =
    List.map
      (fun r -> ([ ("r", r) ], [ 1. +. (0.1 *. r); 3. +. (0.4 *. r) ]))
      [ 2.; 4.; 8.; 16. ]
  in
  let data = Model.Dataset.of_rows [ "r" ] rows in
  Alcotest.(check int) "no finding on noisy data" 0
    (List.length (Perf_taint.Validation.detect_contention t [ ("main", data) ]))

(* -- merging runs ------------------------------------------------------------------ *)

let test_merge_unions_runs () =
  (* The algorithm-selection program covers different code on the two
     sides of the threshold: merged runs see both kernels. *)
  let t_small = analyze Apps.Didactic.algorithm_selection [ VInt 2 ] in
  let t_large = analyze Apps.Didactic.algorithm_selection [ VInt 64 ] in
  let merged = Perf_taint.Deps.merge [ t_small.P.deps; t_large.P.deps ] in
  (* kernel_log only runs on the large side. *)
  Alcotest.(check bool) "kernel_log missing from small run" true
    (SSet.is_empty (Perf_taint.Deps.params t_small.deps "kernel_log"));
  Alcotest.(check bool) "kernel_log covered after merge" true
    (SSet.mem "a" (Perf_taint.Deps.params merged "kernel_log"));
  (* kernel_linear only runs on the small side; merged keeps it too. *)
  Alcotest.(check bool) "kernel_linear covered after merge" true
    (SSet.mem "a" (Perf_taint.Deps.params merged "kernel_linear"))

let test_merge_identity () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  let merged = Perf_taint.Deps.merge [ t.P.deps ] in
  Alcotest.(check (slist string compare)) "single merge is identity"
    (SSet.elements (Perf_taint.Deps.params t.deps "main"))
    (SSet.elements (Perf_taint.Deps.params merged "main"))

(* -- reports ---------------------------------------------------------------------------- *)

let test_overview_counts_consistent () =
  List.iter
    (fun (t, model_params) ->
      let t = Lazy.force t in
      let ov = Perf_taint.Report.overview t ~model_params in
      let sum =
        ov.ov_pruned_static + ov.ov_pruned_dynamic + ov.ov_kernels
        + ov.ov_comm_routines + ov.ov_mpi_functions
      in
      Alcotest.(check int)
        (ov.ov_app ^ ": categories partition the function count")
        ov.ov_functions sum)
    [ (lazy (analyze ~world:Apps.Lulesh.taint_world Apps.Lulesh.program
               Apps.Lulesh.taint_args),
       Apps.Lulesh.model_params);
      (lazy (analyze ~world:Apps.Milc.taint_world Apps.Milc.program
               Apps.Milc.taint_args),
       [ "p"; "nx"; "ny"; "nz"; "nt" ]) ]

let test_coverage_rows () =
  let t = analyze additive_program [ VInt 3; VInt 4 ] in
  let rows = Perf_taint.Report.coverage t ~params:[ "a"; "b"; "ghost" ] in
  let row p = List.find (fun r -> r.Perf_taint.Report.cov_param = p) rows in
  Alcotest.(check int) "a affects one function" 1 (row "a").cov_functions;
  Alcotest.(check int) "a affects one loop" 1 (row "a").cov_loops;
  Alcotest.(check int) "ghost affects nothing" 0 (row "ghost").cov_functions;
  let funcs, loops =
    Perf_taint.Report.combined_coverage t ~params:[ "a"; "b" ]
  in
  Alcotest.(check int) "combined functions (not a sum)" 1 funcs;
  Alcotest.(check int) "combined loops" 2 loops

let test_distinct_loops_observed () =
  let t = analyze nested_program [ VInt 3; VInt 4 ] in
  Alcotest.(check int) "two static loops observed" 2
    (P.distinct_loops_observed t)

let test_volume_asymptotic_params () =
  let t = analyze nested_program [ VInt 3; VInt 4 ] in
  Alcotest.(check (slist string compare)) "Claim 2 parameters" [ "a"; "b" ]
    (SSet.elements (Perf_taint.Volume.asymptotic_params t "main"))

let test_loops_by_function_merges_callpaths () =
  (* g is called from two different paths; its loop's deps merge. *)
  let g =
    B.define "g" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let h1 =
    B.define "h1" ~params:[ "x" ] (fun b ->
        B.call_unit b "g" [ Reg "x" ];
        B.ret_unit b)
  in
  let h2 =
    B.define "h2" ~params:[ "y" ] (fun b ->
        B.call_unit b "g" [ Reg "y" ];
        B.ret_unit b)
  in
  let main =
    B.define "main" ~params:[ "a"; "b" ] (fun b ->
        let a = B.prim b "taint:a" [ Reg "a" ] in
        let bb = B.prim b "taint:b" [ Reg "b" ] in
        B.call_unit b "h1" [ a ];
        B.call_unit b "h2" [ bb ];
        B.ret_unit b)
  in
  let t = analyze (prog [ main; h1; h2; g ] "main") [ VInt 2; VInt 3 ] in
  let merged =
    Interp.Observations.loops_by_function t.P.labels t.P.obs
  in
  let deps =
    Hashtbl.fold
      (fun (fname, _) l acc ->
        if fname = "g" then Taint.Label.names t.P.labels l else acc)
      merged []
  in
  Alcotest.(check (slist string compare))
    "g's loop sees both call paths' labels" [ "a"; "b" ] deps;
  (* And the per-function dependency map unions them too. *)
  Alcotest.(check (slist string compare)) "fd_params union" [ "a"; "b" ]
    (SSet.elements (Perf_taint.Deps.params t.deps "g"))

let test_mpi_routine_params () =
  let f =
    B.define "main" ~params:[ "n" ] (fun b ->
        let n = B.prim b "taint:n" [ Reg "n" ] in
        B.prim_unit b "mpi_send" [ n ];
        B.ret_unit b)
  in
  let t = analyze (prog [ f ] "main") [ VInt 8 ] in
  match Ir.Cfg.SMap.find_opt "mpi_send" t.P.mpi_params with
  | Some s ->
    Alcotest.(check (slist string compare)) "send depends on p and n"
      [ "n"; "p" ] (SSet.elements s)
  | None -> Alcotest.fail "mpi_send must have routine params"

let tests =
  [
    Alcotest.test_case "additive pair detection" `Quick test_additive_pair;
    Alcotest.test_case "multiplicative pair detection" `Quick
      test_multiplicative_pair;
    Alcotest.test_case "constraints: additive forbids products" `Quick
      test_constraints_additive_forbids_product;
    Alcotest.test_case "constraints: black-box unrestricted" `Quick
      test_constraints_blackbox_unrestricted;
    Alcotest.test_case "constraints: MPI library fallback" `Quick
      test_constraints_mpi_fallback;
    Alcotest.test_case "constraints: parameter aliases" `Quick
      test_constraints_aliases;
    Alcotest.test_case "taint contradiction detection" `Quick
      test_contradicts_taint;
    Alcotest.test_case "contention finding" `Quick test_detect_contention_api;
    Alcotest.test_case "noisy data skipped (CoV filter)" `Quick
      test_noisy_data_not_flagged;
    Alcotest.test_case "merge unions tainted runs" `Quick
      test_merge_unions_runs;
    Alcotest.test_case "merge of one run is the identity" `Quick
      test_merge_identity;
    Alcotest.test_case "overview counts partition functions" `Quick
      test_overview_counts_consistent;
    Alcotest.test_case "MPI routine parameter map" `Quick
      test_mpi_routine_params;
    Alcotest.test_case "coverage rows (Table 3 mechanics)" `Quick
      test_coverage_rows;
    Alcotest.test_case "distinct loops observed" `Quick
      test_distinct_loops_observed;
    Alcotest.test_case "asymptotic params (Claim 2)" `Quick
      test_volume_asymptotic_params;
    Alcotest.test_case "loop deps merge across call paths" `Quick
      test_loops_by_function_merges_callpaths;
  ]
