test/suite_core.ml: Alcotest Apps Hashtbl Interp Ir Lazy List Model Option Perf_taint Taint
