test/suite_ir.ml: Alcotest Apps Bytes Filename Fmt Hashtbl Interp Ir List Printf QCheck QCheck_alcotest String
