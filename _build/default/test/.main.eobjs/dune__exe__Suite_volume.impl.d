test/suite_volume.ml: Alcotest Apps Interp Ir List Perf_taint Printf
