test/suite_soundness.ml: Alcotest Interp Ir List Model Printf QCheck QCheck_alcotest Taint
