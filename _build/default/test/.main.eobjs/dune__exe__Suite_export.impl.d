test/suite_export.ml: Alcotest Apps Float Model Perf_taint String
