test/suite_taint.ml: Alcotest List Printf QCheck QCheck_alcotest Taint
