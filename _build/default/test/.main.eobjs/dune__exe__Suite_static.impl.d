test/suite_static.ml: Alcotest Apps Ir List Mpi_sim Perf_taint QCheck QCheck_alcotest Static_an
