test/main.mli:
