test/suite_interp.ml: Alcotest Interp Ir List Mpi_sim Taint
