test/suite_model.ml: Alcotest Array Float List Model QCheck QCheck_alcotest Random
