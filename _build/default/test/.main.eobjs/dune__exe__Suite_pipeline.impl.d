test/suite_pipeline.ml: Alcotest Apps Interp Ir List Option Perf_taint Static_an Taint
