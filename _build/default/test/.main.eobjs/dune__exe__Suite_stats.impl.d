test/suite_stats.ml: Alcotest Array Float List Model Option Perf_taint Random
