test/suite_apps.ml: Alcotest Apps Interp Ir Lazy List Measure Mpi_sim Option Perf_taint Printf Taint
