test/suite_measure.ml: Alcotest Float List Measure Model Mpi_sim Printf QCheck QCheck_alcotest
