(** Tests of the compile-time phase: trip-count analysis (the
    ScalarEvolution stand-in), call-graph construction, recursion
    detection, and the static constant-function classification. *)

open Ir.Types
module B = Ir.Builder
module T = Static_an.Tripcount
module C = Static_an.Callgraph

let prog funcs entry = { pname = "t"; funcs; entry }

let trips f = T.analyze_function f

let the_trip f =
  match trips f with
  | [ ls ] -> ls.T.ls_trip
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

(* -- trip counts --------------------------------------------------------------- *)

let test_constant_trip () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 10) (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  Alcotest.(check bool) "trip 10" true (the_trip f = T.Constant 10)

let test_constant_trip_with_step () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 10) ~step:(Int 3) (fun _ ->
            B.work b (Int 1));
        B.ret_unit b)
  in
  (* 0,3,6,9 -> 4 iterations *)
  Alcotest.(check bool) "trip ceil(10/3)" true (the_trip f = T.Constant 4)

let test_constant_trip_nonzero_start () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 2) ~below:(Int 9) ~step:(Int 2) (fun _ ->
            B.work b (Int 1));
        B.ret_unit b)
  in
  (* 2,4,6,8 -> 4 *)
  Alcotest.(check bool) "trip 4" true (the_trip f = T.Constant 4)

let test_empty_range () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 5) ~below:(Int 5) (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  Alcotest.(check bool) "trip 0" true (the_trip f = T.Constant 0)

let test_parametric_bound_unknown () =
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  Alcotest.(check bool) "unknown" true (the_trip f = T.Unknown)

let test_constant_through_arithmetic () =
  (* Bound is 4*8 computed through registers: still constant. *)
  let f =
    B.define "f" ~params:[] (fun b ->
        let bound = B.mul b (Int 4) (Int 8) in
        B.for_ b "i" ~from:(Int 0) ~below:bound (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  Alcotest.(check bool) "trip 32" true (the_trip f = T.Constant 32)

let test_memory_bound_unknown () =
  (* A bound loaded from memory cannot be resolved statically. *)
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.alloc b (Int 1) in
        B.store b a (Int 0) (Int 7);
        let bound = B.load b a (Int 0) in
        B.for_ b "i" ~from:(Int 0) ~below:bound (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  Alcotest.(check bool) "unknown (memory)" true (the_trip f = T.Unknown)

let test_while_loop_unknown () =
  (* A halving loop does not match the canonical induction pattern. *)
  let f =
    B.define "f" ~params:[] (fun b ->
        B.set b "m" (Int 64);
        B.while_ b
          ~cond:(fun () -> B.gt b (Reg "m") (Int 1))
          ~body:(fun () -> B.set b "m" (B.div b (Reg "m") (Int 2)));
        B.ret_unit b)
  in
  Alcotest.(check bool) "unknown (non-affine)" true (the_trip f = T.Unknown)

let test_nested_trips () =
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 8) (fun _ ->
            B.for_ b "j" ~from:(Int 0) ~below:(Reg "n") (fun _ ->
                B.work b (Int 1)));
        B.ret_unit b)
  in
  let summaries = trips f in
  Alcotest.(check int) "two loops" 2 (List.length summaries);
  let outer = List.find (fun s -> s.T.ls_depth = 1) summaries in
  let inner = List.find (fun s -> s.T.ls_depth = 2) summaries in
  Alcotest.(check bool) "outer constant" true (outer.T.ls_trip = T.Constant 8);
  Alcotest.(check bool) "inner unknown" true (inner.T.ls_trip = T.Unknown)

(* -- call graph ------------------------------------------------------------------ *)

let leafy = B.define "leaf" ~params:[] (fun b -> B.ret_unit b)

let caller =
  B.define "caller" ~params:[] (fun b ->
      B.call_unit b "leaf" [];
      B.ret_unit b)

let test_callgraph_edges () =
  let cg = C.build (prog [ caller; leafy ] "caller") in
  Alcotest.(check (list string)) "caller -> leaf" [ "leaf" ]
    (Ir.Cfg.SSet.elements (C.callees cg "caller"));
  Alcotest.(check (list string)) "leaf <- caller" [ "caller" ]
    (Ir.Cfg.SSet.elements (C.callers cg "leaf"))

let test_reachability () =
  let cg = C.build (prog [ caller; leafy ] "caller") in
  Alcotest.(check (list string)) "reachable from caller" [ "caller"; "leaf" ]
    (Ir.Cfg.SSet.elements (C.reachable cg "caller"))

let test_direct_recursion () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.call_unit b "f" [];
        B.ret_unit b)
  in
  let cg = C.build (prog [ f ] "f") in
  Alcotest.(check (list string)) "f is recursive" [ "f" ]
    (Ir.Cfg.SSet.elements (C.recursive_functions cg))

let test_mutual_recursion () =
  let f =
    B.define "f" ~params:[] (fun b -> B.call_unit b "g" []; B.ret_unit b)
  in
  let g =
    B.define "g" ~params:[] (fun b -> B.call_unit b "f" []; B.ret_unit b)
  in
  let cg = C.build (prog [ f; g ] "f") in
  Alcotest.(check (list string)) "both recursive" [ "f"; "g" ]
    (Ir.Cfg.SSet.elements (C.recursive_functions cg))

let test_no_false_recursion () =
  let cg = C.build (prog [ caller; leafy ] "caller") in
  Alcotest.(check (list string)) "acyclic graph" []
    (Ir.Cfg.SSet.elements (C.recursive_functions cg))

let test_bottom_up_order () =
  let cg = C.build (prog [ caller; leafy ] "caller") in
  let order =
    C.fold_bottom_up cg (prog [ caller; leafy ] "caller") [] (fun acc f ->
        f :: acc)
  in
  Alcotest.(check (list string)) "callee first" [ "caller"; "leaf" ] order

(* -- classification ----------------------------------------------------------------- *)

let classify p =
  Static_an.Classify.classify p ~relevant_prim:Mpi_sim.Costdb.relevant_prim

let test_classify_constant_leaf () =
  let report = classify (prog [ caller; leafy ] "caller") in
  Alcotest.(check bool) "leaf pruned" true
    (Static_an.Classify.is_pruned report "leaf");
  Alcotest.(check bool) "caller pruned (constant callee)" true
    (Static_an.Classify.is_pruned report "caller")

let test_classify_parametric_loop () =
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let report = classify (prog [ f ] "f") in
  Alcotest.(check bool) "parametric loop not pruned" false
    (Static_an.Classify.is_pruned report "f")

let test_classify_constant_loop_pruned () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 8) (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let report = classify (prog [ f ] "f") in
  Alcotest.(check bool) "constant-trip loop pruned" true
    (Static_an.Classify.is_pruned report "f")

let test_classify_mpi_not_pruned () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.prim_unit b "mpi_barrier" [];
        B.ret_unit b)
  in
  let report = classify (prog [ f ] "f") in
  Alcotest.(check bool) "MPI caller not pruned" false
    (Static_an.Classify.is_pruned report "f")

let test_classify_taints_through_callees () =
  (* A loop-free function calling a parametric one is itself parametric. *)
  let g =
    B.define "g" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.call_unit b "g" [ Reg "n" ];
        B.ret_unit b)
  in
  let report = classify (prog [ f; g ] "f") in
  Alcotest.(check bool) "wrapper inherits relevance" false
    (Static_an.Classify.is_pruned report "f")

let test_recursion_warning () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.call_unit b "f" [];
        B.ret_unit b)
  in
  let report = classify (prog [ f ] "f") in
  Alcotest.(check bool) "recursion warned" true
    (report.Static_an.Classify.warnings <> []);
  Alcotest.(check bool) "recursive not pruned" false
    (Static_an.Classify.is_pruned report "f")

let test_lulesh_static_counts () =
  let report = classify Apps.Lulesh.program in
  (* The tiny helpers must all be statically pruned. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " pruned") true
        (Static_an.Classify.is_pruned report name))
    [ "area_face"; "triple_product"; "dot8"; "calc_elem_volume";
      "calc_elem_node_normals"; "min3"; "clamp_value" ];
  (* Kernels with parametric loops must survive. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " survives") false
        (Static_an.Classify.is_pruned report name))
    [ "integrate_stress_for_elems"; "calc_q_for_elems"; "main";
      "comm_halo_nodes" ]

(* -- property: static constants never show dynamic parameter deps ---------------- *)

let prop_static_prune_sound =
  (* Any function statically classified constant must show an empty
     dependency set in the dynamic analysis of LULESH and MILC. *)
  QCheck.Test.make ~count:1 ~name:"static pruning is sound w.r.t. taint"
    QCheck.(always ())
    (fun () ->
      List.for_all
        (fun (program, args, world) ->
          let t = Perf_taint.Pipeline.analyze ~world program ~args in
          let report = t.Perf_taint.Pipeline.static in
          List.for_all
            (fun (f : Ir.Types.func) ->
              (not (Static_an.Classify.is_pruned report f.fname))
              || Ir.Cfg.SSet.is_empty
                   (Perf_taint.Deps.params t.Perf_taint.Pipeline.deps f.fname))
            program.funcs)
        [ (Apps.Lulesh.program, Apps.Lulesh.taint_args, Apps.Lulesh.taint_world);
          (Apps.Milc.program, Apps.Milc.taint_args, Apps.Milc.taint_world) ])

let tests =
  [
    Alcotest.test_case "constant trip" `Quick test_constant_trip;
    Alcotest.test_case "constant trip with step" `Quick
      test_constant_trip_with_step;
    Alcotest.test_case "constant trip from 2 by 2" `Quick
      test_constant_trip_nonzero_start;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "parametric bound" `Quick test_parametric_bound_unknown;
    Alcotest.test_case "constant through arithmetic" `Quick
      test_constant_through_arithmetic;
    Alcotest.test_case "memory bound is unknown" `Quick
      test_memory_bound_unknown;
    Alcotest.test_case "non-affine while is unknown" `Quick
      test_while_loop_unknown;
    Alcotest.test_case "nested trips" `Quick test_nested_trips;
    Alcotest.test_case "call graph edges" `Quick test_callgraph_edges;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "direct recursion" `Quick test_direct_recursion;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "no false recursion" `Quick test_no_false_recursion;
    Alcotest.test_case "bottom-up fold order" `Quick test_bottom_up_order;
    Alcotest.test_case "classify: constant leaf chain" `Quick
      test_classify_constant_leaf;
    Alcotest.test_case "classify: parametric loop" `Quick
      test_classify_parametric_loop;
    Alcotest.test_case "classify: constant loop pruned" `Quick
      test_classify_constant_loop_pruned;
    Alcotest.test_case "classify: MPI caller kept" `Quick
      test_classify_mpi_not_pruned;
    Alcotest.test_case "classify: relevance through callees" `Quick
      test_classify_taints_through_callees;
    Alcotest.test_case "classify: recursion warning" `Quick
      test_recursion_warning;
    Alcotest.test_case "classify: lulesh helpers vs kernels" `Quick
      test_lulesh_static_counts;
    QCheck_alcotest.to_alcotest prop_static_prune_sound;
  ]
