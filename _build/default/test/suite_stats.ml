(** Tests of the model-quality statistics and the scalability-bug
    ranking. *)

module St = Model.Stats
module E = Model.Expr

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let perfect = [ (1., 1.); (2., 2.); (3., 3.) ]
let off = [ (1., 2.); (2., 4.); (3., 6.) ]

let test_rss () =
  close "zero on perfect" 0. (St.rss perfect);
  close "rss of off" (1. +. 4. +. 9.) (St.rss off)

let test_r_squared () =
  close "perfect fit" 1. (St.r_squared perfect);
  Alcotest.(check bool) "bad fit below 1" true (St.r_squared off < 1.)

let test_r_squared_constant_observations () =
  (* TSS = 0: degenerate case must not divide by zero. *)
  close "constant obs, perfect" 1. (St.r_squared [ (5., 5.); (5., 5.) ]);
  close "constant obs, wrong" 0. (St.r_squared [ (4., 5.); (6., 5.) ])

let test_adjusted_r2_penalises () =
  let pairs = [ (1., 1.1); (2., 1.9); (3., 3.2); (4., 3.9); (5., 5.1) ] in
  let a1 = St.adjusted_r_squared ~k:1 pairs in
  let a3 = St.adjusted_r_squared ~k:3 pairs in
  Alcotest.(check bool) "more coefficients, lower adjusted R2" true (a3 < a1)

let test_aic_prefers_simpler () =
  let pairs = [ (1., 1.01); (2., 1.99); (3., 3.02); (4., 3.97); (5., 5.02); (6., 6.01) ] in
  Alcotest.(check bool) "same fit, fewer params wins" true
    (St.aic ~k:1 pairs < St.aic ~k:3 pairs)

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  close "median" 3. (St.percentile 50. xs);
  close "min" 1. (St.percentile 0. xs);
  close "max" 5. (St.percentile 100. xs)

let test_summary_on_dataset () =
  let m =
    { E.const = 0.; terms = [ { E.coeff = 2.; factors = [ ("x", { expo = 1.; logexp = 0 }) ] } ] }
  in
  let data =
    Model.Dataset.of_rows [ "x" ]
      (List.map (fun x -> ([ ("x", x) ], [ 2. *. x ])) [ 1.; 2.; 3.; 4. ])
  in
  let s = St.summarize m data in
  close "R2 = 1" 1. s.St.s_r2;
  close "SMAPE = 0" 0. s.St.s_smape

let test_bootstrap_ci_brackets () =
  (* Fit y = a*x on noisy data; the CI should bracket the true value. *)
  let rng = Random.State.make [| 5 |] in
  let points =
    List.init 20 (fun i ->
        let x = float_of_int (i + 1) in
        (x, (3. *. x) +. (Random.State.float rng 0.2 -. 0.1)))
  in
  let fitter pts =
    let design = Array.of_list (List.map (fun (x, _) -> [| x |]) pts) in
    let y = Array.of_list (List.map snd pts) in
    Option.map
      (fun c coords -> c.(0) *. List.assoc "x" coords)
      (Model.Linalg.least_squares design y)
  in
  let lo, hi = St.bootstrap_ci ~fitter ~coords:[ ("x", 10.) ] points in
  Alcotest.(check bool) "CI brackets 30" true (lo <= 30. && 30. <= hi);
  Alcotest.(check bool) "CI is tight-ish" true (hi -. lo < 2.)

(* -- scaling ------------------------------------------------------------------ *)

let model_linear_p =
  { E.const = 0.; terms = [ { E.coeff = 1e-4; factors = [ ("p", { expo = 1.; logexp = 0 }) ] } ] }

let model_const = E.constant 1.0

let test_rank_orders_by_projection () =
  let ranking =
    Perf_taint.Scaling.rank
      ~baseline:[ ("p", 10.) ]
      ~target:[ ("p", 100000.) ]
      [ ("flat", model_const); ("growing", model_linear_p) ]
  in
  (match ranking.Perf_taint.Scaling.entries with
  | first :: _ ->
    Alcotest.(check string) "growing ranks first" "growing"
      first.Perf_taint.Scaling.e_func
  | [] -> Alcotest.fail "empty ranking");
  close "totals: baseline" (1.0 +. 1e-3) ranking.total_measured;
  close "totals: target" (1.0 +. 10.) ranking.total_projected

let test_bugs_detects_flip () =
  let ranking =
    Perf_taint.Scaling.rank
      ~baseline:[ ("p", 10.) ]
      ~target:[ ("p", 100000.) ]
      [ ("flat", model_const); ("growing", model_linear_p) ]
  in
  match Perf_taint.Scaling.bugs ~share:0.5 ~measured_below:0.05 ranking with
  | [ bug ] -> Alcotest.(check string) "the growing one" "growing" bug.e_func
  | l -> Alcotest.failf "expected one bug, got %d" (List.length l)

let test_no_bugs_when_flat () =
  let ranking =
    Perf_taint.Scaling.rank ~baseline:[ ("p", 10.) ] ~target:[ ("p", 1000.) ]
      [ ("a", model_const); ("b", model_const) ]
  in
  Alcotest.(check int) "no bugs" 0
    (List.length (Perf_taint.Scaling.bugs ranking))

let tests =
  [
    Alcotest.test_case "rss" `Quick test_rss;
    Alcotest.test_case "r-squared" `Quick test_r_squared;
    Alcotest.test_case "r-squared degenerate" `Quick
      test_r_squared_constant_observations;
    Alcotest.test_case "adjusted r2 penalises" `Quick test_adjusted_r2_penalises;
    Alcotest.test_case "AIC prefers simpler" `Quick test_aic_prefers_simpler;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "summary on dataset" `Quick test_summary_on_dataset;
    Alcotest.test_case "bootstrap CI brackets truth" `Quick
      test_bootstrap_ci_brackets;
    Alcotest.test_case "scaling rank order" `Quick test_rank_orders_by_projection;
    Alcotest.test_case "scalability bug detection" `Quick test_bugs_detects_flip;
    Alcotest.test_case "no bugs when flat" `Quick test_no_bugs_when_flat;
  ]
