(** Table 2: the two-phase identification of computational kernels,
    communication routines and MPI functions, and the loop pruning
    statistics, for LULESH and MILC. *)

let paper_rows =
  (* app, functions, pruned static/dynamic, kernels/comm/mpi,
     loops, loops pruned static, loops relevant *)
  [
    ("lulesh", 356, 296, 11, 40, 2, 7, 275, 52, 78);
    ("milc", 629, 364, 188, 56, 13, 8, 874, 96, 196);
  ]

let row (t : Perf_taint.Pipeline.t) ~model_params =
  Perf_taint.Report.overview t ~model_params

let print_row name (ov : Perf_taint.Report.overview) =
  Fmt.pr
    "  %-8s functions=%3d pruned=%3d/%-3d kernels/comm/MPI=%d/%d/%d \
     loops=%3d pruned-static=%3d relevant=%3d@."
    name ov.ov_functions ov.ov_pruned_static ov.ov_pruned_dynamic
    ov.ov_kernels ov.ov_comm_routines ov.ov_mpi_functions ov.ov_loops
    ov.ov_loops_pruned_static ov.ov_loops_relevant

let run () =
  Exp_common.section "Table 2: two-phase function and loop pruning";
  List.iter
    (fun (name, f, ps, pd, k, c, m, l, lps, lr) ->
      Fmt.pr
        "  paper %-8s functions=%3d pruned=%3d/%-3d kernels/comm/MPI=%d/%d/%d \
         loops=%3d pruned-static=%3d relevant=%3d@."
        name f ps pd k c m l lps lr)
    paper_rows;
  let lulesh = Lazy.force Exp_common.lulesh_analysis in
  let milc = Lazy.force Exp_common.milc_analysis in
  print_row "lulesh" (row lulesh ~model_params:Apps.Lulesh.model_params);
  print_row "milc"
    (row milc ~model_params:[ "p"; "nx"; "ny"; "nz"; "nt" ]);
  let pct (ov : Perf_taint.Report.overview) =
    100.
    *. float_of_int (ov.ov_pruned_static + ov.ov_pruned_dynamic)
    /. float_of_int ov.ov_functions
  in
  Exp_common.paper_vs
    "LULESH: 86.2%% of functions constant w.r.t. (p, size); MILC: 87.7%%";
  Exp_common.measured "LULESH: %.1f%%; MILC: %.1f%% of functions constant"
    (pct (row lulesh ~model_params:Apps.Lulesh.model_params))
    (pct (row milc ~model_params:[ "p"; "nx"; "ny"; "nz"; "nt" ]));
  Exp_common.note
    "(mini apps are ~5x smaller than the originals; the split between the \
     static and dynamic phases and the kernel/comm/MPI categories is the \
     reproduced shape)"
