bench/exp_scaling.ml: Apps Exp_common Fmt Lazy List Measure Model Perf_taint
