bench/exp_fig3.ml: Apps Exp_common Float Fmt Lazy List Measure Option Perf_taint String
