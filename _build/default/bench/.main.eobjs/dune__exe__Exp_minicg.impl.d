bench/exp_minicg.ml: Apps Exp_common Exp_quality Fmt Ir Lazy List Measure Model Perf_taint String
