bench/micro.ml: Analyze Apps Bechamel Benchmark Exp_common Fmt Hashtbl Instance Interp Ir List Measure Model Mpi_sim Perf_taint Staged Static_an Taint Test Time Toolkit
