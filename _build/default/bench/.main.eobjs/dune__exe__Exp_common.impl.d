bench/exp_common.ml: Apps Float Fmt Ir Lazy List Measure Model Mpi_sim Perf_taint
