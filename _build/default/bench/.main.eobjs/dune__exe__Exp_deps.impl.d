bench/exp_deps.ml: Exp_common Fmt Ir Lazy List Perf_taint Printf String
