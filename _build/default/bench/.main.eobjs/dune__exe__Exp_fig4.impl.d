bench/exp_fig4.ml: Apps Exp_common Exp_fig3 Lazy
