bench/main.ml: Exp_ablation Exp_c2 Exp_catalog Exp_cost Exp_deps Exp_fig3 Exp_fig4 Exp_fig5 Exp_intrusion Exp_minicg Exp_noise Exp_quality Exp_scaling Exp_table2 Exp_table3 Fmt List Micro Sys
