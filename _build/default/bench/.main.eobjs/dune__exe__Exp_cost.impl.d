bench/exp_cost.ml: Apps Exp_common Lazy Measure Perf_taint
