bench/exp_catalog.ml: Apps Exp_common Fmt Lazy List Measure Model Perf_taint String
