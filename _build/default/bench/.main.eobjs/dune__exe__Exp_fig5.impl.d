bench/exp_fig5.ml: Apps Exp_common Fmt Lazy List Measure Model Perf_taint
