bench/exp_intrusion.ml: Apps Exp_common Lazy List Measure Model
