bench/exp_table2.ml: Apps Exp_common Fmt Lazy List Perf_taint
