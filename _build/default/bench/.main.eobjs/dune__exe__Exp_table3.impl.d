bench/exp_table3.ml: Exp_common Fmt Ir Lazy List Perf_taint String
