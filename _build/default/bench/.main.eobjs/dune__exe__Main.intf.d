bench/main.mli:
