bench/exp_ablation.ml: Apps Exp_common Fmt Interp Ir Lazy List Perf_taint Static_an String
