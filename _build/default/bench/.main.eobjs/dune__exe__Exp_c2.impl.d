bench/exp_c2.ml: Apps Exp_common Fmt Lazy List Measure Model Mpi_sim Perf_taint String
