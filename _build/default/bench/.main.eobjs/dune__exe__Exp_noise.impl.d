bench/exp_noise.ml: Apps Exp_common Exp_quality Fmt Lazy List Measure
